module Alias = Rumor_prob.Alias
module Graph = Rumor_graph.Graph

type spec =
  | Stationary of int
  | One_per_vertex
  | All_at of int * int
  | Linear of float

let count spec g =
  match spec with
  | Stationary k -> k
  | One_per_vertex -> Graph.n g
  | All_at (_, k) -> k
  | Linear alpha ->
      let k = int_of_float (Float.round (alpha *. float_of_int (Graph.n g))) in
      max k 1

let stationary_weights g = Alias.of_ints (Graph.degrees g)

let place rng spec g =
  let k = count spec g in
  if k <= 0 then invalid_arg "Placement.place: no agents";
  match spec with
  | Stationary _ | Linear _ ->
      let alias = stationary_weights g in
      Array.init k (fun _ -> Alias.sample alias rng)
  | One_per_vertex -> Array.init (Graph.n g) (fun v -> v)
  | All_at (v, _) ->
      if v < 0 || v >= Graph.n g then invalid_arg "Placement.place: vertex out of range";
      Array.make k v
