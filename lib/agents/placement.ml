module Alias = Rumor_prob.Alias
module Graph = Rumor_graph.Graph

type spec =
  | Stationary of int
  | One_per_vertex
  | All_at of int * int
  | Linear of float

let count spec g =
  match spec with
  | Stationary k -> k
  | One_per_vertex -> Graph.n g
  | All_at (_, k) -> k
  | Linear alpha ->
      let k = int_of_float (Float.round (alpha *. float_of_int (Graph.n g))) in
      max k 1

let stationary_weights g = Alias.of_ints (Graph.degrees g)

let place rng spec g =
  let k = count spec g in
  if k <= 0 then invalid_arg "Placement.place: no agents";
  match spec with
  | Stationary _ | Linear _ ->
      let alias = stationary_weights g in
      Array.init k (fun _ -> Alias.sample alias rng)
  | One_per_vertex -> Array.init (Graph.n g) (fun v -> v)
  | All_at (v, _) ->
      if v < 0 || v >= Graph.n g then invalid_arg "Placement.place: vertex out of range";
      Array.make k v

let place_counts rng spec g =
  let k = count spec g in
  if k <= 0 then invalid_arg "Placement.place_counts: no agents";
  let n = Graph.n g in
  let counts = Array.make n 0 in
  (match spec with
  | Stationary _ | Linear _ ->
      (* same draw sequence as {!place}, histogrammed on the fly: O(n + k)
         memory-independent of per-agent identity *)
      let alias = stationary_weights g in
      for _ = 1 to k do
        let v = Alias.sample alias rng in
        counts.(v) <- counts.(v) + 1
      done
  | One_per_vertex -> Array.fill counts 0 n 1
  | All_at (v, _) ->
      if v < 0 || v >= n then invalid_arg "Placement.place_counts: vertex out of range";
      counts.(v) <- k);
  counts
