(** Initial placement of agents on a graph.

    The paper's default is the stationary distribution of the simple random
    walk — vertex [v] with probability [deg v / 2|E|] — which makes the
    per-round number of visits to every vertex exactly degree-fair from
    round zero.  The one-agent-per-vertex variant is the alternative under
    which the paper notes its regular-graph results still hold. *)

type spec =
  | Stationary of int  (** [Stationary k]: k agents, i.i.d. degree-biased *)
  | One_per_vertex     (** exactly one agent starting on each vertex *)
  | All_at of int * int  (** [All_at (v, k)]: k agents all on vertex [v] *)
  | Linear of float
      (** [Linear alpha]: [round (alpha * n)] agents, i.i.d. stationary —
          the paper's [|A| = alpha * n] convention *)

val count : spec -> Rumor_graph.Graph.t -> int
(** Number of agents the spec yields on the given graph. *)

val place : Rumor_prob.Rng.t -> spec -> Rumor_graph.Graph.t -> int array
(** [place rng spec g] materializes initial positions, one entry per
    agent.  @raise Invalid_argument if the spec is empty or invalid for
    [g] (e.g. [All_at] with an out-of-range vertex). *)

val place_counts : Rumor_prob.Rng.t -> spec -> Rumor_graph.Graph.t -> int array
(** [place_counts rng spec g] is the per-vertex histogram of {!place} — the
    count-compressed placement used by the sparse walker kernels.  For the
    stationary specs it consumes the rng in exactly the same order as
    {!place}, so [place_counts rng spec g] equals the histogram of
    [place rng' spec g] when [rng] and [rng'] start from the same state.
    @raise Invalid_argument under the same conditions as {!place}. *)

val stationary_weights : Rumor_graph.Graph.t -> Rumor_prob.Alias.t
(** The alias table for the stationary distribution of [g], exposed for
    tests and for callers that place agents repeatedly. *)
