(** Grouped summaries over recorded runs.

    The paper's claims — and the related-work evaluations (Doerr–Fouz,
    Daknama) — are about broadcast-time {e distributions}, so an aggregate
    reports order statistics (median, p90, p99) next to the mean for every
    metric, not just averages.  Records are grouped by their
    [(graph, protocol)] label pair: one group per table row in
    [rumor_report summary], one comparison unit in {!Baseline}. *)

(** A {!Rumor_prob.Stats.summary} extended with the tail quantiles the
    regression gate cares about. *)
type metric = {
  summary : Rumor_prob.Stats.summary;
  p90 : float;
  p99 : float;
}

type group = {
  graph : string;
  protocol : string;
  runs : int;  (** number of records in the group *)
  capped : int;  (** how many of them hit their round cap *)
  vertices : int;  (** largest |V| seen in the group *)
  broadcast : metric;
      (** broadcast times; a capped run contributes its [rounds_run]
          (an under-estimate, same convention as
          [Rumor_sim.Replicate]'s [`Keep]) — check [capped] *)
  contacts : metric;
  wall_seconds : metric;
  alloc_words : metric;
      (** GC words allocated per run: [minor + major - promoted] *)
  mean_curve : float array;
      (** pointwise mean informed-count curve; shorter replicate curves are
          padded with their final value (curves are monotone, so that is
          the count they hold at every later round).  [[||]] if no record
          carried a curve. *)
}

type t = group list
(** Sorted by [(graph, protocol)]. *)

val metric_of_samples : float array -> metric
(** Summary + p90/p99 (via {!Rumor_prob.Stats.quantile}) of a non-empty
    sample.  @raise Invalid_argument on an empty sample. *)

val alloc_words : Run_record.gc_counters -> float
(** Total words allocated: [minor +. major -. promoted]. *)

val of_records : Run_record.t list -> t
(** Group and summarize; records with the same [(graph, protocol)] label
    land in one group regardless of seed or rep, so multi-seed sweeps
    aggregate naturally. *)

val find : t -> graph:string -> protocol:string -> group option
