(** Low-overhead execution tracing: spans, instants and counter samples.

    A tracer is a flat, preallocated, growable event buffer.  Recording a
    span costs two clock reads, two GC-counter reads and a handful of array
    stores — no per-event allocation (event names are stored as the string
    pointers the caller passes, so literals cost nothing).  The layers that
    carry a [?trace] argument ({!Rumor_protocols.Engine} round kernels,
    [Rumor_par.Pool] workers, [Graph.Builder] phases, [Replicate], the DES
    loops) match on the option at every site, so a run with tracing
    disabled executes exactly the pre-trace instruction stream: no closures,
    no [Some] cells, no clock reads.

    {2 Spans and nesting}

    [begin_span]/[end_span] must bracket properly — [end_span] closes the
    innermost open span (a per-tracer stack tracks them).  Span durations
    and GC deltas (minor words allocated, major collections) are filled in
    at [end_span]; both exporters refuse a tracer with open spans, which is
    what keeps committed traces structurally valid.

    {2 Domains}

    A tracer belongs to one domain.  Parallel sections give each worker its
    own child via {!fork} (same epoch, its own [tid]) and the owner calls
    {!join} after the worker is joined — the single-writer discipline that
    keeps [lib/obs] free of locks (concurrency primitives stay confined to
    [lib/par], rule R7).  In the exported trace each [tid] renders as its
    own track, so domain timelines sit side by side with their fork/join
    markers and idle gaps visible.

    {2 Export}

    Two formats, chosen by file extension at the CLIs:
    - Chrome [trace_event] JSON ([.json]): load in Perfetto
      ({:https://ui.perfetto.dev}) or [chrome://tracing].
    - [rumor-trace/1] JSONL ([.jsonl]): one event per line, streaming-friendly,
      the same family as {!Run_record} metrics files.

    [rumor_report trace] reads either. *)

type t

val create : ?hint:int -> ?pid:int -> ?tid:int -> unit -> t
(** [create ()] starts an empty tracer whose epoch is "now"; all event
    timestamps are microseconds since that epoch.  [hint] pre-sizes the
    event buffer (default 1024 events; it grows by doubling).  [pid]/[tid]
    default to 0 — [pid] identifies the process track group in the Chrome
    UI, [tid] the track events record on. *)

val counters : t -> Counters.t
(** The scalar registry riding along with this tracer; serialized into both
    export formats. *)

val tid : t -> int

val events : t -> int
(** Number of recorded events (open spans included). *)

val open_spans : t -> int
(** Depth of the open-span stack; 0 iff the tracer is balanced. *)

(** {1 Recording} *)

val begin_span : t -> ?arg:int -> string -> unit
(** Open a span named [name].  [arg] is an optional small integer payload
    (round number, shard id, replicate index) exported as [args.arg]. *)

val end_span : t -> unit
(** Close the innermost open span, fixing its duration and GC deltas.
    @raise Invalid_argument if no span is open. *)

val instant : t -> ?arg:int -> string -> unit
(** A point event (fork/join markers and the like). *)

val counter : t -> string -> int -> unit
(** [counter t name v] records a time-stamped sample of a numeric series
    (frontier size, queue length, ...); renders as a counter track. *)

val with_span : t option -> ?arg:int -> string -> (unit -> 'a) -> 'a
(** Bracket [f] in a span when a tracer is present; just run [f] otherwise.
    The exception-safe convenience for cold paths — hot loops match on the
    option and call {!begin_span}/{!end_span} directly instead. *)

(** {1 Worker forking} *)

val fork : t -> tid:int -> t
(** A child tracer with the parent's epoch and pid, an empty buffer, its
    own counter registry, and the given [tid].  Hand exactly one child to
    each worker domain. *)

val join : t -> t -> unit
(** [join parent child] appends the child's events into the parent and
    folds the child's counter registry into the parent's (the child keeps
    its state; join it once).  Call only after the worker domain is
    joined.  @raise Invalid_argument if the child has open spans or was not
    forked from [parent]. *)

(** {1 Export} *)

val schema : string
(** ["rumor-trace/1"], the JSONL schema tag. *)

val to_chrome_json : t -> Json.t
(** The Chrome [trace_event] document: [{"traceEvents": [...],
    "displayTimeUnit": "ms", "counters": {...}}] with process/thread
    metadata records so tracks are named ("main", "worker-1", ...).
    @raise Invalid_argument if spans are still open. *)

val write_chrome : t -> string -> unit
val write_jsonl : t -> string -> unit
(** Write the trace to a file; same open-span precondition. *)

(** {1 Reading}

    The inverse direction, used by [rumor_report trace] and the tests. *)

type event = {
  ph : [ `Span | `Instant | `Counter ];
  name : string;
  ts_us : float;  (** microseconds since the tracer's epoch *)
  dur_us : float;  (** 0 for instants and counter samples *)
  tid : int;
  arg : int option;
  value : int;  (** counter sample value; 0 for spans/instants *)
  alloc_w : float;  (** minor words allocated during a span *)
  major_gcs : int;  (** major collections finished during a span *)
}

type file = { file_events : event list; file_counters : Counters.t }

val read_file : string -> (file, string) result
(** Load a trace in either format (auto-detected: a Chrome document is one
    JSON object with a [traceEvents] field, a JSONL stream leads with the
    [rumor-trace/1] schema line). *)
