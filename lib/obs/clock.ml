let now_s () = Unix.gettimeofday ()
let now_us () = 1e6 *. Unix.gettimeofday ()
let elapsed_s ~since = Unix.gettimeofday () -. since
let elapsed_ns ~since_s = 1e9 *. (Unix.gettimeofday () -. since_s)
