(** Per-round observation hooks for protocol runs.

    Every protocol in [lib/protocols/] accepts an optional [?obs] argument of
    type {!t} and reports its progress through these four hooks instead of
    (only) its private curve arrays.  Passing no instrument costs one [match]
    on an option per hook site; the protocols' return values are unchanged.

    Round numbering follows the paper and {!Rumor_protocols.Run_result}:
    round 0 is the initial state and is {e not} announced through
    [on_round_start]/[on_round_end]; the hooks fire once per simulated round
    [1 .. rounds_run].  The continuous-time protocols ([Async_push],
    [Async_meet_exchange]) have no rounds and only fire [on_contact] /
    [on_walker_move]. *)

type t = {
  on_round_start : int -> unit;  (** [on_round_start round] before the round *)
  on_round_end : round:int -> informed:int -> contacts:int -> unit;
      (** after the round: the protocol's informed-party count and its
          cumulative contact count so far *)
  on_contact : int -> int -> unit;
      (** [on_contact u v]: a pairwise communication from party [u] to party
          [v].  For vertex protocols these are vertices; for agent-based
          protocols the endpoints are vertices (source/vertex hand-offs) or
          agent indices (agent–agent exchanges), mirroring what the
          protocol's [contacts] counter counts. *)
  on_walker_move : agent:int -> from_:int -> to_:int -> unit;
      (** one walker step; lazy stays report [from_ = to_] *)
  on_occupancy : round:int -> occupied:int -> walkers:int -> unit;
      (** aggregate walker occupancy after a round's walk phase: [occupied]
          vertices currently hold at least one of the [walkers] agents.
          Fired by the count-compressed (sparse) walker kernels, which erase
          agent identity and therefore cannot fire [on_contact] or
          [on_walker_move] per agent; dense kernels do not fire it. *)
}

val nop : t
(** An instrument whose hooks all do nothing. *)

val make :
  ?on_round_start:(int -> unit) ->
  ?on_round_end:(round:int -> informed:int -> contacts:int -> unit) ->
  ?on_contact:(int -> int -> unit) ->
  ?on_walker_move:(agent:int -> from_:int -> to_:int -> unit) ->
  ?on_occupancy:(round:int -> occupied:int -> walkers:int -> unit) ->
  unit ->
  t
(** Build an instrument; omitted hooks default to no-ops. *)

val pair : t -> t -> t
(** [pair a b] calls [a]'s hook then [b]'s at every site. *)

(** {1 Option-threading helpers}

    Protocols receive [t option] and call these; they compile to a single
    option match when no instrument is attached. *)

val round_start : t option -> int -> unit
val round_end : t option -> round:int -> informed:int -> contacts:int -> unit
val contact : t option -> int -> int -> unit
val walker_move : t option -> agent:int -> from_:int -> to_:int -> unit
val occupancy : t option -> round:int -> occupied:int -> walkers:int -> unit

(** {1 Recording instrument}

    An instrument that accumulates everything it sees, for tests and for
    capturing per-round curves without touching protocol internals. *)
module Recorder : sig
  type r

  val create : unit -> r

  val instrument : r -> t
  (** The hooks backed by this recorder. *)

  val rounds_started : r -> int
  val rounds_ended : r -> int
  val contacts : r -> int  (** number of [on_contact] firings *)

  val walker_moves : r -> int
  val occupancy_events : r -> int  (** number of [on_occupancy] firings *)

  val last_occupied : r -> int option
  (** [occupied] from the most recent occupancy event, if any. *)

  val curve : r -> int array
  (** Informed counts in [on_round_end] order (rounds [1 .. rounds_ended]). *)

  val last_informed : r -> int option
  (** Informed count of the most recent round end, if any. *)
end
