(** Performance baselines and the regression gate over them.

    A baseline is an {!Aggregate.t} snapshotted to one JSON file (schema
    ["rumor-baseline/1"]; per-replicate curves are not persisted — only
    summaries).  {!check} diffs a freshly aggregated run against it, metric
    by metric, and renders a structured verdict: the CI job and
    [rumor_report check] exit nonzero iff [passed] is false. *)

(** Relative tolerance per compared metric: a group {e regresses} on a
    metric when [current_mean > baseline_mean *. (1. +. tol)], and
    {e improves} when [current_mean < baseline_mean *. (1. -. tol)].
    Equality at either boundary still passes. *)
type tolerances = {
  broadcast : float;
  contacts : float;
  wall : float;
  alloc : float;
}

val default_tolerances : tolerances
(** Broadcast time and contacts are deterministic given the seed, so they
    get tight 10% tolerances; wall-clock is machine-noisy (50%); allocation
    is deterministic but build-flag-sensitive (15%). *)

val uniform : float -> tolerances
(** The same relative tolerance for every metric ([rumor_report
    --tolerance]). *)

type status = Pass | Regressed | Improved

type check = {
  graph : string;
  protocol : string;
  metric : string;  (** ["broadcast"], ["contacts"], ["wall_seconds"] or
                        ["alloc_words"] *)
  baseline_mean : float;
  current_mean : float;
  ratio : float;  (** [current /. baseline]; [infinity] when the baseline
                      mean is zero and the current one is not *)
  tolerance : float;
  status : status;
}

type report = {
  checks : check list;
  missing : (string * string) list;
      (** baseline groups absent from the current run — the gate cannot
          vouch for them, so they fail {!passed} *)
  added : (string * string) list;
      (** current groups with no baseline; informational only *)
}

val check :
  ?tol:tolerances -> baseline:Aggregate.t -> current:Aggregate.t -> unit -> report

val regressions : report -> check list
val passed : report -> bool
(** No regressed metric and no missing group. *)

(** {1 Snapshot persistence} *)

val to_json : Aggregate.t -> string
val of_json : string -> (Aggregate.t, string) result
(** Loaded groups carry an empty [mean_curve]. *)

val save : string -> Aggregate.t -> unit
val load : string -> (Aggregate.t, string) result
(** [Error] covers both I/O and parse failures, prefixed with the path. *)
