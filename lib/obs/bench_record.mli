(** Machine-readable microbenchmark results ([BENCH_<seed>.json]).

    [bench/main.exe --micro-only] snapshots its Bechamel OLS estimates to
    one JSON file per invocation (schema ["rumor-bench/1"]), so the perf
    trajectory accumulates across PRs and [rumor_report compare] can diff
    any two snapshots. *)

type entry = {
  name : string;  (** Bechamel test name, e.g. ["rumor/push/regular-1024"] *)
  time_ns : float;  (** OLS estimate of nanoseconds per run *)
  r_square : float;  (** fit quality; [nan] when unavailable *)
}

type t = {
  seed : int;
  jobs : int;
      (** replication parallelism the run used; snapshots written before the
          field existed read back as [1] *)
  meta : (string * string) list;
      (** free-form run metadata (e.g. the DES benches record the calendar
          queue's resize count and final bucket width); emitted only when
          non-empty, and snapshots written before the field existed read
          back as [[]] *)
  entries : entry list;
}

val to_json : t -> string
val of_json : string -> (t, string) result

val save : string -> t -> unit
val load : string -> (t, string) result
(** [Error] covers both I/O and parse failures, prefixed with the path. *)

(** One benchmark present in both snapshots; [ratio = current /. base]. *)
type delta = { name : string; base_ns : float; current_ns : float; ratio : float }

type diff = {
  deltas : delta list;  (** in [current] order *)
  missing : string list;  (** in [base] but not [current] *)
  added : string list;  (** in [current] but not [base] *)
}

val diff : base:t -> current:t -> diff
