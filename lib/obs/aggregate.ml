module Stats = Rumor_prob.Stats

type metric = { summary : Stats.summary; p90 : float; p99 : float }

type group = {
  graph : string;
  protocol : string;
  runs : int;
  capped : int;
  vertices : int;
  broadcast : metric;
  contacts : metric;
  wall_seconds : metric;
  alloc_words : metric;
  mean_curve : float array;
}

type t = group list

let metric_of_samples xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  {
    summary = Stats.summarize xs;
    p90 = Stats.quantile sorted 0.9;
    p99 = Stats.quantile sorted 0.99;
  }

let alloc_words (gc : Run_record.gc_counters) =
  gc.Run_record.minor_words +. gc.Run_record.major_words
  -. gc.Run_record.promoted_words

let mean_curve_of records =
  let curves =
    List.filter_map
      (fun (r : Run_record.t) ->
        if Array.length r.Run_record.informed_curve > 0 then
          Some r.Run_record.informed_curve
        else None)
      records
  in
  match curves with
  | [] -> [||]
  | _ ->
      let len = List.fold_left (fun m c -> max m (Array.length c)) 0 curves in
      let sum = Array.make len 0.0 in
      List.iter
        (fun c ->
          let cl = Array.length c in
          for i = 0 to len - 1 do
            let v = if i < cl then c.(i) else c.(cl - 1) in
            sum.(i) <- sum.(i) +. float_of_int v
          done)
        curves;
      let k = float_of_int (List.length curves) in
      Array.map (fun x -> x /. k) sum

let group_of ~graph ~protocol records =
  let arr f = Array.of_list (List.map f records) in
  {
    graph;
    protocol;
    runs = List.length records;
    capped =
      List.length (List.filter (fun (r : Run_record.t) -> r.Run_record.capped) records);
    vertices =
      List.fold_left (fun m (r : Run_record.t) -> max m r.Run_record.vertices) 0 records;
    broadcast =
      metric_of_samples
        (arr (fun (r : Run_record.t) ->
             match r.Run_record.broadcast_time with
             | Some t -> float_of_int t
             | None -> float_of_int r.Run_record.rounds_run));
    contacts =
      metric_of_samples
        (arr (fun (r : Run_record.t) -> float_of_int r.Run_record.contacts));
    wall_seconds =
      metric_of_samples (arr (fun (r : Run_record.t) -> r.Run_record.wall_seconds));
    alloc_words =
      metric_of_samples (arr (fun (r : Run_record.t) -> alloc_words r.Run_record.gc));
    mean_curve = mean_curve_of records;
  }

let of_records records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (r : Run_record.t) ->
      let key = (r.Run_record.graph, r.Run_record.protocol) in
      let existing = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
      Hashtbl.replace tbl key (r :: existing))
    records;
  Hashtbl.fold
    (fun (graph, protocol) rs acc ->
      group_of ~graph ~protocol (List.rev rs) :: acc)
    tbl []
  |> List.sort (fun a b ->
         match String.compare a.graph b.graph with
         | 0 -> String.compare a.protocol b.protocol
         | c -> c)

let find t ~graph ~protocol =
  List.find_opt (fun g -> g.graph = graph && g.protocol = protocol) t
