(* Struct-of-arrays event buffer.  One logical event is a slot across the
   parallel arrays below; spans additionally get their [dur]/[alloc_w]/
   [major_gcs] cells back-filled by [end_span] (the open-span stack holds
   the slot index).  Everything grows by doubling from the [create] hint.

   Cost model (enabled): begin+end of a span is 2 clock reads, 2 GC counter
   reads and ~12 array stores; no allocation beyond the amortized buffer
   doubling.  Disabled is not this module's concern — instrumented call
   sites match on [t option] before touching us. *)

type kind = Span | Instant | Counter_sample

type t = {
  epoch_us : float;
  pid : int;
  tr_tid : int;
  cs : Counters.t;
  mutable kinds : kind array;
  mutable names : string array;  (* caller's pointer; literals alloc nothing *)
  mutable ts : float array;  (* us since epoch *)
  mutable dur : float array;  (* span duration; 0 otherwise *)
  mutable tids : int array;
  mutable args : int array;  (* [no_arg] when absent; counter value for C *)
  mutable alloc_w : float array;  (* begin: abs minor words; end: delta *)
  mutable major_gcs : int array;  (* same trick for major collections *)
  mutable len : int;
  mutable stack : int array;  (* slot indices of open spans *)
  mutable depth : int;
}

let no_arg = min_int

let make ~epoch_us ~pid ~tid ~hint cs =
  let cap = max 16 hint in
  {
    epoch_us;
    pid;
    tr_tid = tid;
    cs;
    kinds = Array.make cap Span;
    names = Array.make cap "";
    ts = Array.make cap 0.0;
    dur = Array.make cap 0.0;
    tids = Array.make cap 0;
    args = Array.make cap no_arg;
    alloc_w = Array.make cap 0.0;
    major_gcs = Array.make cap 0;
    len = 0;
    stack = Array.make 64 0;
    depth = 0;
  }

let create ?(hint = 1024) ?(pid = 0) ?(tid = 0) () =
  if hint < 0 then invalid_arg "Trace.create: negative hint";
  make ~epoch_us:(Clock.now_us ()) ~pid ~tid ~hint (Counters.create ())

let counters t = t.cs
let tid t = t.tr_tid
let events t = t.len
let open_spans t = t.depth

let grow t =
  let old = Array.length t.names in
  let cap = 2 * old in
  let extend a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 old;
    b
  in
  t.kinds <- extend t.kinds Span;
  t.names <- extend t.names "";
  t.ts <- extend t.ts 0.0;
  t.dur <- extend t.dur 0.0;
  t.tids <- extend t.tids 0;
  t.args <- extend t.args no_arg;
  t.alloc_w <- extend t.alloc_w 0.0;
  t.major_gcs <- extend t.major_gcs 0

let push t kind name ~arg =
  if t.len = Array.length t.names then grow t;
  let i = t.len in
  t.kinds.(i) <- kind;
  t.names.(i) <- name;
  t.ts.(i) <- Clock.now_us () -. t.epoch_us;
  t.dur.(i) <- 0.0;
  t.tids.(i) <- t.tr_tid;
  t.args.(i) <- arg;
  t.alloc_w.(i) <- 0.0;
  t.major_gcs.(i) <- 0;
  t.len <- i + 1;
  i

let begin_span t ?(arg = no_arg) name =
  let i = push t Span name ~arg in
  (* stash the absolute GC readings; end_span turns them into deltas *)
  t.alloc_w.(i) <- Gc.minor_words ();
  t.major_gcs.(i) <- (Gc.quick_stat ()).Gc.major_collections;
  if t.depth = Array.length t.stack then begin
    let bigger = Array.make (2 * t.depth) 0 in
    Array.blit t.stack 0 bigger 0 t.depth;
    t.stack <- bigger
  end;
  t.stack.(t.depth) <- i;
  t.depth <- t.depth + 1

let end_span t =
  if t.depth = 0 then invalid_arg "Trace.end_span: no open span";
  t.depth <- t.depth - 1;
  let i = t.stack.(t.depth) in
  t.dur.(i) <- Clock.now_us () -. t.epoch_us -. t.ts.(i);
  t.alloc_w.(i) <- Gc.minor_words () -. t.alloc_w.(i);
  t.major_gcs.(i) <-
    (Gc.quick_stat ()).Gc.major_collections - t.major_gcs.(i)

let instant t ?(arg = no_arg) name = ignore (push t Instant name ~arg)
let counter t name v = ignore (push t Counter_sample name ~arg:v)

let with_span trace ?arg name f =
  match trace with
  | None -> f ()
  | Some t ->
      begin_span t ?arg name;
      Fun.protect ~finally:(fun () -> end_span t) f

(* The child gets its own counter registry: a worker domain must never
   write into the parent's mutable cells (single-writer discipline, and
   lib/obs carries no locks).  [join] folds it back. *)
let fork t ~tid =
  make ~epoch_us:t.epoch_us ~pid:t.pid ~tid ~hint:256 (Counters.create ())

let join parent child =
  if child.depth > 0 then
    invalid_arg "Trace.join: child has open spans";
  if not (Float.equal child.epoch_us parent.epoch_us) then
    invalid_arg "Trace.join: child was not forked from this tracer";
  Counters.merge_into ~dst:parent.cs ~src:child.cs;
  for i = 0 to child.len - 1 do
    if parent.len = Array.length parent.names then grow parent;
    let j = parent.len in
    parent.kinds.(j) <- child.kinds.(i);
    parent.names.(j) <- child.names.(i);
    parent.ts.(j) <- child.ts.(i);
    parent.dur.(j) <- child.dur.(i);
    parent.tids.(j) <- child.tids.(i);
    parent.args.(j) <- child.args.(i);
    parent.alloc_w.(j) <- child.alloc_w.(i);
    parent.major_gcs.(j) <- child.major_gcs.(i);
    parent.len <- j + 1
  done

(* ------------------------------------------------------------- export -- *)

let schema = "rumor-trace/1"

let check_balanced ~who t =
  if t.depth > 0 then
    invalid_arg
      (Printf.sprintf "%s: %d span(s) still open — end them before exporting"
         who t.depth)

let distinct_tids t =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  for i = 0 to t.len - 1 do
    if not (Hashtbl.mem seen t.tids.(i)) then begin
      Hashtbl.add seen t.tids.(i) ();
      order := t.tids.(i) :: !order
    end
  done;
  List.sort Int.compare !order

let thread_label tid = if tid = 0 then "main" else Printf.sprintf "worker-%d" tid

let span_args t i =
  let args = [ ("alloc_w", Json.Float t.alloc_w.(i));
               ("major_gcs", Json.Int t.major_gcs.(i)) ] in
  if t.args.(i) = no_arg then args
  else ("arg", Json.Int t.args.(i)) :: args

let event_to_chrome t i =
  let common ph extra =
    Json.Obj
      ([
         ("name", Json.String t.names.(i));
         ("cat", Json.String "rumor");
         ("ph", Json.String ph);
         ("ts", Json.Float t.ts.(i));
         ("pid", Json.Int t.pid);
         ("tid", Json.Int t.tids.(i));
       ]
      @ extra)
  in
  match t.kinds.(i) with
  | Span ->
      common "X"
        [ ("dur", Json.Float t.dur.(i)); ("args", Json.Obj (span_args t i)) ]
  | Instant ->
      common "i"
        [
          ("s", Json.String "t");
          ( "args",
            Json.Obj
              (if t.args.(i) = no_arg then []
               else [ ("arg", Json.Int t.args.(i)) ]) );
        ]
  | Counter_sample ->
      common "C" [ ("args", Json.Obj [ ("value", Json.Int t.args.(i)) ]) ]

let to_chrome_json t =
  check_balanced ~who:"Trace.to_chrome_json" t;
  let metadata =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int t.pid);
        ("args", Json.Obj [ ("name", Json.String "rumor") ]);
      ]
    :: List.map
         (fun tid ->
           Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int t.pid);
               ("tid", Json.Int tid);
               ("args", Json.Obj [ ("name", Json.String (thread_label tid)) ]);
             ])
         (distinct_tids t)
  in
  let events = List.init t.len (fun i -> event_to_chrome t i) in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ events));
      ("displayTimeUnit", Json.String "ms");
      ("counters", Counters.to_json t.cs);
    ]

let write_file path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc text;
      output_char oc '\n')

let write_chrome t path = write_file path (Json.to_string_json (to_chrome_json t))

let event_to_jsonl t i =
  let common ph extra =
    Json.Obj
      ([
         ("ph", Json.String ph);
         ("name", Json.String t.names.(i));
         ("ts", Json.Float t.ts.(i));
         ("tid", Json.Int t.tids.(i));
       ]
      @ extra)
  in
  match t.kinds.(i) with
  | Span ->
      common "X" (("dur", Json.Float t.dur.(i)) :: span_args t i)
  | Instant ->
      common "I"
        (if t.args.(i) = no_arg then [] else [ ("arg", Json.Int t.args.(i)) ])
  | Counter_sample -> common "C" [ ("value", Json.Int t.args.(i)) ]

let write_jsonl t path =
  check_balanced ~who:"Trace.write_jsonl" t;
  let buf = Buffer.create (256 + (64 * t.len)) in
  Buffer.add_string buf
    (Json.to_string_json
       (Json.Obj [ ("schema", Json.String schema); ("pid", Json.Int t.pid) ]));
  Buffer.add_char buf '\n';
  for i = 0 to t.len - 1 do
    Buffer.add_string buf (Json.to_string_json (event_to_jsonl t i));
    Buffer.add_char buf '\n'
  done;
  if not (Counters.is_empty t.cs) then begin
    Buffer.add_string buf
      (Json.to_string_json (Json.Obj [ ("counters", Counters.to_json t.cs) ]));
    Buffer.add_char buf '\n'
  end;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf)

(* ------------------------------------------------------------- reading -- *)

type event = {
  ph : [ `Span | `Instant | `Counter ];
  name : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  arg : int option;
  value : int;
  alloc_w : float;
  major_gcs : int;
}

type file = { file_events : event list; file_counters : Counters.t }

let ( let* ) r f = Result.bind r f

let field j name conv =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let opt_field j name conv ~default =
  match Json.member name j with
  | None -> Ok default
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let event_of_json ~chrome j =
  let* ph = field j "ph" Json.to_string in
  match ph with
  | "M" -> Ok None (* chrome metadata: track names, not events *)
  | "X" | "I" | "i" | "C" ->
      let* name = field j "name" Json.to_string in
      let* ts_us = field j "ts" Json.to_float in
      let* tid = opt_field j "tid" Json.to_int ~default:0 in
      (* chrome nests the payload under "args"; the JSONL form is flat *)
      let payload =
        if chrome then
          match Json.member "args" j with Some a -> a | None -> Json.Obj []
        else j
      in
      let* arg =
        match Json.member "arg" payload with
        | None -> Ok None
        | Some v -> (
            match Json.to_int v with
            | Some a -> Ok (Some a)
            | None -> Error "field \"arg\" has the wrong type")
      in
      let* value = opt_field payload "value" Json.to_int ~default:0 in
      let* alloc_w = opt_field payload "alloc_w" Json.to_float ~default:0.0 in
      let* major_gcs = opt_field payload "major_gcs" Json.to_int ~default:0 in
      if ph = "X" then
        let* dur_us = field j "dur" Json.to_float in
        Ok (Some { ph = `Span; name; ts_us; dur_us; tid; arg; value; alloc_w; major_gcs })
      else if ph = "C" then
        Ok (Some { ph = `Counter; name; ts_us; dur_us = 0.0; tid; arg; value; alloc_w; major_gcs })
      else
        Ok (Some { ph = `Instant; name; ts_us; dur_us = 0.0; tid; arg; value; alloc_w; major_gcs })
  | other -> Error (Printf.sprintf "unsupported event phase %S" other)

let read_counters j =
  match Json.member "counters" j with
  | None -> Ok (Counters.create ())
  | Some c -> Counters.of_json c

let read_chrome j =
  let* items = field j "traceEvents" Json.to_list in
  let* events =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* ev = event_of_json ~chrome:true item in
        match ev with None -> Ok acc | Some e -> Ok (e :: acc))
      (Ok []) items
  in
  let* cs = read_counters j in
  Ok { file_events = List.rev events; file_counters = cs }

let read_jsonl_lines lines =
  match lines with
  | [] -> Error "empty trace file"
  | header :: rest ->
      let* hj = Json.parse_result header in
      let* () =
        match Json.member "schema" hj with
        | Some (Json.String s) when s = schema -> Ok ()
        | Some (Json.String s) ->
            Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
        | _ -> Error "not a rumor-trace JSONL stream (no \"schema\" header line)"
      in
      let* events, cs =
        List.fold_left
          (fun acc line ->
            let* events, cs = acc in
            if String.trim line = "" then Ok (events, cs)
            else
              let* j = Json.parse_result line in
              match Json.member "counters" j with
              | Some c ->
                  let* cs = Counters.of_json c in
                  Ok (events, cs)
              | None -> (
                  let* ev = event_of_json ~chrome:false j in
                  match ev with
                  | None -> Ok (events, cs)
                  | Some e -> Ok (e :: events, cs)))
          (Ok ([], Counters.create ()))
          rest
      in
      Ok { file_events = List.rev events; file_counters = cs }

let read_file path =
  let read () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match read () with
  | exception Sys_error msg -> Error msg
  | text -> (
      let result =
        match Json.parse_result (String.trim text) with
        | Ok (Json.Obj _ as j) when Option.is_some (Json.member "traceEvents" j)
          ->
            read_chrome j
        | Ok _ | Error _ ->
            read_jsonl_lines (String.split_on_char '\n' (String.trim text))
      in
      match result with
      | Ok _ as ok -> ok
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
