(** Named monotonic counters and fixed-bucket histograms.

    A registry is the scalar side of the tracing subsystem ({!Trace} is the
    time-series side): protocol engines bump counters (contacts, rounds,
    merges) and observe histograms (contacts per round, span durations)
    while a run executes, and the whole registry serializes into the trace
    file so [rumor_report trace] can print it next to the span profile.

    Counters and histograms are plain mutable cells with no locking — a
    registry belongs to one domain.  Worker domains that need their own
    tallies get their own registry (or their own {!Trace.t}, whose registry
    rides along) and the owner folds them together after the join, the same
    single-writer discipline the rest of the pipeline uses. *)

type t
(** A registry: an ordered collection of named counters and histograms. *)

type counter
type histogram

val create : unit -> t

(** {1 Counters} *)

val counter : t -> string -> counter
(** [counter t name] returns the counter registered under [name], creating
    it at zero on first request — callers may re-request by name instead of
    holding the handle. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Monotonic bump.  @raise Invalid_argument on a negative amount. *)

val value : counter -> int

(** {1 Histograms} *)

val histogram : t -> string -> buckets:float array -> histogram
(** [histogram t name ~buckets] returns the histogram registered under
    [name], creating it on first request.  [buckets] lists the upper bounds
    of the finite buckets in strictly increasing order; an observation [x]
    lands in the first bucket with [x <= bound], or in the implicit overflow
    bucket after the last bound.
    @raise Invalid_argument on an empty or non-increasing bound array, or if
    [name] is already registered with different bounds. *)

val observe : histogram -> float -> unit

val bucket_counts : histogram -> int array
(** Length [Array.length buckets + 1]; the last cell is the overflow
    bucket. *)

val bounds : histogram -> float array

val merge_into : dst:t -> src:t -> unit
(** Fold [src] into [dst]: counter values add; histogram bucket counts add
    when the bounds match.  Used by [Trace.join] to fold a worker domain's
    registry back into its parent's after the domain is joined.
    @raise Invalid_argument if a histogram exists in both registries with
    different bounds. *)

(** {1 Export} *)

val is_empty : t -> bool
(** No counters and no histograms registered. *)

val to_json : t -> Json.t
(** {v
    { "counters":   { "contacts": 12345, ... },
      "histograms": { "contacts_per_round":
                        { "bounds": [1, 10, 100], "counts": [0, 3, 7, 1] },
                      ... } }
    v}
    Names are emitted sorted so the rendering is deterministic. *)

val of_json : Json.t -> (t, string) result
(** Rebuild a registry from {!to_json} output (used by the trace reader). *)
