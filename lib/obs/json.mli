(** A minimal JSON reader/writer for the observability pipeline.

    Covers exactly the JSON subset the repo emits ({!Run_record.to_json},
    {!Baseline}, {!Bench_record}): objects, arrays, strings (with the
    standard escapes plus [\uXXXX], including surrogate pairs), numbers,
    booleans and [null].  Numbers without a fraction or exponent parse as
    {!Int} when they fit in an OCaml [int], otherwise as {!Float}.

    This is deliberately not a general JSON library: no lazy parsing, no
    streaming, no number-preserving round-trips beyond what the metrics
    pipeline needs — and therefore no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** fields in source order; duplicates kept *)

exception Error of { pos : int; msg : string }
(** Parse failure at byte offset [pos] (0-based) of the input.  A printer
    is registered, so the exception formats as ["JSON error at byte N: msg"]. *)

val parse : string -> t
(** Parse one JSON value occupying the whole string (surrounding
    whitespace allowed; anything after the value is an error).
    @raise Error on malformed input or trailing garbage. *)

val parse_result : string -> (t, string) result
(** {!parse} with the error rendered to a message instead of raised. *)

(** {1 Accessors} — shape-checked extraction, [None] on mismatch. *)

val member : string -> t -> t option
(** First binding of the key in an object; [None] otherwise. *)

val to_int : t -> int option
val to_float : t -> float option
(** Accepts both {!Float} and {!Int}; [Null] maps to [Some nan] so that
    metrics serialized from non-finite floats read back as they were. *)

val to_string : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

(** {1 Emission} *)

val to_string_json : t -> string
(** Compact single-line rendering.  Non-finite floats emit as [null]
    (JSON has no representation for them). *)

val buf_add_string_literal : Buffer.t -> string -> unit
(** Append a quoted, escaped JSON string literal.  Bytes are passed
    through untouched except for the mandatory escapes, so UTF-8 input
    stays UTF-8. *)

val buf_add_float : Buffer.t -> float -> unit
(** Append a float as its shortest round-trippable decimal ([%.17g]);
    non-finite values emit as [null]. *)
