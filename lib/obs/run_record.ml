type gc_counters = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

type t = {
  seed : int;
  rep : int;
  graph : string;
  protocol : string;
  vertices : int;
  broadcast_time : int option;
  rounds_run : int;
  capped : bool;
  contacts : int;
  informed_curve : int array;
  wall_seconds : float;
  gc : gc_counters;
  engine : bool;
  shards : int;
}

type sink = t -> unit

let gc_now () =
  let minor, promoted, major = Gc.counters () in
  { minor_words = minor; major_words = major; promoted_words = promoted }

let timed f =
  let g0 = gc_now () in
  let t0 = Clock.now_s () in
  let result = f () in
  let wall = Clock.elapsed_s ~since:t0 in
  let g1 = gc_now () in
  ( result,
    wall,
    {
      minor_words = g1.minor_words -. g0.minor_words;
      major_words = g1.major_words -. g0.major_words;
      promoted_words = g1.promoted_words -. g0.promoted_words;
    } )

(* JSON emission stays hand-rolled (the schema is flat and small); string
   and float rendering is shared with the parser side in {!Json}. *)

let buf_add_json_string = Json.buf_add_string_literal
let buf_add_float = Json.buf_add_float

let to_json t =
  let buf = Buffer.create (256 + (8 * Array.length t.informed_curve)) in
  Buffer.add_string buf "{\"seed\":";
  Buffer.add_string buf (string_of_int t.seed);
  Buffer.add_string buf ",\"rep\":";
  Buffer.add_string buf (string_of_int t.rep);
  Buffer.add_string buf ",\"graph\":";
  buf_add_json_string buf t.graph;
  Buffer.add_string buf ",\"protocol\":";
  buf_add_json_string buf t.protocol;
  Buffer.add_string buf ",\"vertices\":";
  Buffer.add_string buf (string_of_int t.vertices);
  Buffer.add_string buf ",\"broadcast_time\":";
  (match t.broadcast_time with
  | Some r -> Buffer.add_string buf (string_of_int r)
  | None -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\"rounds_run\":";
  Buffer.add_string buf (string_of_int t.rounds_run);
  Buffer.add_string buf ",\"capped\":";
  Buffer.add_string buf (if t.capped then "true" else "false");
  Buffer.add_string buf ",\"contacts\":";
  Buffer.add_string buf (string_of_int t.contacts);
  Buffer.add_string buf ",\"informed_curve\":[";
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int x))
    t.informed_curve;
  Buffer.add_string buf "],\"wall_seconds\":";
  buf_add_float buf t.wall_seconds;
  Buffer.add_string buf ",\"gc\":{\"minor_words\":";
  buf_add_float buf t.gc.minor_words;
  Buffer.add_string buf ",\"major_words\":";
  buf_add_float buf t.gc.major_words;
  Buffer.add_string buf ",\"promoted_words\":";
  buf_add_float buf t.gc.promoted_words;
  Buffer.add_string buf "},\"engine\":";
  Buffer.add_string buf (if t.engine then "true" else "false");
  Buffer.add_string buf ",\"shards\":";
  Buffer.add_string buf (string_of_int t.shards);
  Buffer.add_char buf '}';
  Buffer.contents buf

let output oc t =
  output_string oc (to_json t);
  output_char oc '\n'

let to_channel oc t = output oc t

let with_jsonl_file ?(append = false) path f =
  let oc =
    if append then
      open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
    else open_out path
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> f (to_channel oc))

(* --- reading back ----------------------------------------------------- *)

let of_json line =
  match Json.parse_result line with
  | Result.Error msg -> Error msg
  | Ok j ->
      let ( let* ) r f = Result.bind r f in
      let field ?(where = j) name conv =
        match Json.member name where with
        | None -> Error (Printf.sprintf "missing field %S" name)
        | Some v -> (
            match conv v with
            | Some x -> Ok x
            | None -> Error (Printf.sprintf "field %S has the wrong type" name))
      in
      let* seed = field "seed" Json.to_int in
      let* rep = field "rep" Json.to_int in
      let* graph = field "graph" Json.to_string in
      let* protocol = field "protocol" Json.to_string in
      let* vertices = field "vertices" Json.to_int in
      let* broadcast_time =
        field "broadcast_time" (function
          | Json.Null -> Some None
          | Json.Int k -> Some (Some k)
          | _ -> None)
      in
      let* rounds_run = field "rounds_run" Json.to_int in
      let* capped = field "capped" Json.to_bool in
      let* contacts = field "contacts" Json.to_int in
      let* curve_items = field "informed_curve" Json.to_list in
      let* informed_curve =
        let rec ints acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | item :: rest -> (
              match Json.to_int item with
              | Some k -> ints (k :: acc) rest
              | None -> Error "field \"informed_curve\" has a non-integer entry")
        in
        ints [] curve_items
      in
      let* wall_seconds = field "wall_seconds" Json.to_float in
      let* gc_obj =
        field "gc" (function Json.Obj _ as o -> Some o | _ -> None)
      in
      let* minor_words = field ~where:gc_obj "minor_words" Json.to_float in
      let* major_words = field ~where:gc_obj "major_words" Json.to_float in
      let* promoted_words = field ~where:gc_obj "promoted_words" Json.to_float in
      (* schema evolution: records written before the engine fields existed
         read back as legacy-path runs *)
      let optional name conv ~default =
        match Json.member name j with
        | None -> Ok default
        | Some v -> (
            match conv v with
            | Some x -> Ok x
            | None -> Error (Printf.sprintf "field %S has the wrong type" name))
      in
      let* engine = optional "engine" Json.to_bool ~default:false in
      let* shards = optional "shards" Json.to_int ~default:1 in
      Ok
        {
          seed;
          rep;
          graph;
          protocol;
          vertices;
          broadcast_time;
          rounds_run;
          capped;
          contacts;
          informed_curve;
          wall_seconds;
          gc = { minor_words; major_words; promoted_words };
          engine;
          shards;
        }

exception Jsonl_error of { path : string; line : int; msg : string }

let () =
  Printexc.register_printer (function
    | Jsonl_error { path; line; msg } ->
        Some (Printf.sprintf "%s:%d: %s" path line msg)
    | _ -> None)

let read_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line ->
            if String.trim line = "" then go (lineno + 1) acc
            else begin
              match of_json line with
              | Ok r -> go (lineno + 1) (r :: acc)
              | Error msg -> raise (Jsonl_error { path; line = lineno; msg })
            end
      in
      go 1 [])
