type gc_counters = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

type t = {
  seed : int;
  rep : int;
  graph : string;
  protocol : string;
  vertices : int;
  broadcast_time : int option;
  rounds_run : int;
  capped : bool;
  contacts : int;
  informed_curve : int array;
  wall_seconds : float;
  gc : gc_counters;
}

type sink = t -> unit

let gc_now () =
  let minor, promoted, major = Gc.counters () in
  { minor_words = minor; major_words = major; promoted_words = promoted }

let timed f =
  let g0 = gc_now () in
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let wall = Unix.gettimeofday () -. t0 in
  let g1 = gc_now () in
  ( result,
    wall,
    {
      minor_words = g1.minor_words -. g0.minor_words;
      major_words = g1.major_words -. g0.major_words;
      promoted_words = g1.promoted_words -. g0.promoted_words;
    } )

(* JSON helpers — the schema is flat and small, so we emit by hand rather
   than pull in a JSON dependency. *)

let buf_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let buf_add_float buf x =
  (* shortest round-trippable decimal; JSON forbids inf/nan but runs never
     produce them *)
  Buffer.add_string buf (Printf.sprintf "%.17g" x)

let to_json t =
  let buf = Buffer.create (256 + (8 * Array.length t.informed_curve)) in
  Buffer.add_string buf "{\"seed\":";
  Buffer.add_string buf (string_of_int t.seed);
  Buffer.add_string buf ",\"rep\":";
  Buffer.add_string buf (string_of_int t.rep);
  Buffer.add_string buf ",\"graph\":";
  buf_add_json_string buf t.graph;
  Buffer.add_string buf ",\"protocol\":";
  buf_add_json_string buf t.protocol;
  Buffer.add_string buf ",\"vertices\":";
  Buffer.add_string buf (string_of_int t.vertices);
  Buffer.add_string buf ",\"broadcast_time\":";
  (match t.broadcast_time with
  | Some r -> Buffer.add_string buf (string_of_int r)
  | None -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\"rounds_run\":";
  Buffer.add_string buf (string_of_int t.rounds_run);
  Buffer.add_string buf ",\"capped\":";
  Buffer.add_string buf (if t.capped then "true" else "false");
  Buffer.add_string buf ",\"contacts\":";
  Buffer.add_string buf (string_of_int t.contacts);
  Buffer.add_string buf ",\"informed_curve\":[";
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int x))
    t.informed_curve;
  Buffer.add_string buf "],\"wall_seconds\":";
  buf_add_float buf t.wall_seconds;
  Buffer.add_string buf ",\"gc\":{\"minor_words\":";
  buf_add_float buf t.gc.minor_words;
  Buffer.add_string buf ",\"major_words\":";
  buf_add_float buf t.gc.major_words;
  Buffer.add_string buf ",\"promoted_words\":";
  buf_add_float buf t.gc.promoted_words;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let output oc t =
  output_string oc (to_json t);
  output_char oc '\n'

let to_channel oc t = output oc t

let with_jsonl_file path f =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> f (to_channel oc))
