type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Error of { pos : int; msg : string }

let () =
  Printexc.register_printer (function
    | Error { pos; msg } ->
        Some (Printf.sprintf "JSON error at byte %d: %s" pos msg)
    | _ -> None)

let error pos msg = raise (Error { pos; msg })

(* UTF-8 encoding of one code point, for \uXXXX escapes. *)
let buf_add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse s =
  let n = String.length s in
  let i = ref 0 in
  let peek () = if !i < n then Some s.[!i] else None in
  let skip_ws () =
    while
      !i < n && (match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr i
    done
  in
  let expect c =
    if !i < n && s.[!i] = c then incr i
    else error !i (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !i + l <= n && String.sub s !i l = word then begin
      i := !i + l;
      v
    end
    else error !i (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !i + 4 > n then error !i "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!i] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> error !i "bad hex digit in \\u escape"
      in
      v := (!v lsl 4) lor d;
      incr i
    done;
    !v
  in
  (* called with [!i] just past the opening quote *)
  let parse_string_body () =
    let buf = Buffer.create 16 in
    let rec go () =
      if !i >= n then error !i "unterminated string"
      else
        match s.[!i] with
        | '"' ->
            incr i;
            Buffer.contents buf
        | '\\' ->
            incr i;
            if !i >= n then error !i "unterminated escape";
            (match s.[!i] with
            | '"' -> Buffer.add_char buf '"'; incr i
            | '\\' -> Buffer.add_char buf '\\'; incr i
            | '/' -> Buffer.add_char buf '/'; incr i
            | 'b' -> Buffer.add_char buf '\b'; incr i
            | 'f' -> Buffer.add_char buf '\012'; incr i
            | 'n' -> Buffer.add_char buf '\n'; incr i
            | 'r' -> Buffer.add_char buf '\r'; incr i
            | 't' -> Buffer.add_char buf '\t'; incr i
            | 'u' ->
                incr i;
                let cp = hex4 () in
                if cp >= 0xD800 && cp <= 0xDBFF then begin
                  (* high surrogate: a \uXXXX low surrogate must follow *)
                  if !i + 2 <= n && s.[!i] = '\\' && s.[!i + 1] = 'u' then begin
                    i := !i + 2;
                    let lo = hex4 () in
                    if lo < 0xDC00 || lo > 0xDFFF then
                      error !i "invalid low surrogate"
                    else
                      buf_add_utf8 buf
                        (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                  end
                  else error !i "unpaired high surrogate"
                end
                else if cp >= 0xDC00 && cp <= 0xDFFF then
                  error !i "unpaired low surrogate"
                else buf_add_utf8 buf cp
            | c -> error !i (Printf.sprintf "invalid escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            incr i;
            go ()
    in
    go ()
  in
  let parse_number () =
    let start = !i in
    if peek () = Some '-' then incr i;
    let is_float = ref false in
    let continue = ref true in
    while !continue && !i < n do
      (match s.[!i] with
      | '0' .. '9' -> incr i
      | '.' | 'e' | 'E' ->
          is_float := true;
          incr i
      | '+' | '-' ->
          (* only valid inside an exponent; a lenient scan is fine because
             float_of_string rejects the bad cases below *)
          incr i
      | _ -> continue := false)
    done;
    let text = String.sub s start (!i - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error start (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some k -> Int k
      | None -> (
          (* out of int range: fall back to float *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error start (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    if !i >= n then error !i "unexpected end of input"
    else
      match s.[!i] with
      | '{' ->
          incr i;
          parse_obj []
      | '[' ->
          incr i;
          parse_list []
      | '"' ->
          incr i;
          String (parse_string_body ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | '-' | '0' .. '9' -> parse_number ()
      | c -> error !i (Printf.sprintf "unexpected character %C" c)
  and parse_obj acc =
    skip_ws ();
    match peek () with
    | Some '}' ->
        incr i;
        Obj (List.rev acc)
    | _ ->
        if not (List.is_empty acc) then begin
          expect ',';
          skip_ws ()
        end;
        (match peek () with
        | Some '"' -> incr i
        | _ -> error !i "expected object key");
        let k = parse_string_body () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        parse_obj ((k, v) :: acc)
  and parse_list acc =
    skip_ws ();
    match peek () with
    | Some ']' ->
        incr i;
        List (List.rev acc)
    | _ ->
        if not (List.is_empty acc) then expect ',';
        let v = parse_value () in
        skip_ws ();
        parse_list (v :: acc)
  in
  let v = parse_value () in
  skip_ws ();
  if !i < n then error !i "trailing garbage after JSON value";
  v

let parse_result s =
  match parse s with
  | v -> Ok v
  | exception Error { pos; msg } ->
      Result.Error (Printf.sprintf "byte %d: %s" pos msg)

(* --- accessors ------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_int = function Int k -> Some k | _ -> None

let to_float = function
  | Float f -> Some f
  | Int k -> Some (float_of_int k)
  | Null -> Some nan
  | _ -> None

let to_string = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

(* --- emission -------------------------------------------------------- *)

let buf_add_string_literal buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let buf_add_float buf x =
  if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.17g" x)
  else Buffer.add_string buf "null"

let to_string_json v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int k -> Buffer.add_string buf (string_of_int k)
    | Float f -> buf_add_float buf f
    | String s -> buf_add_string_literal buf s
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            buf_add_string_literal buf k;
            Buffer.add_char buf ':';
            go item)
          kvs;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf
