(** One machine-readable record per protocol replicate.

    A run record captures everything the paper's evaluation judges a
    protocol on — the full informed-count trajectory, not just a scalar
    broadcast time — plus the bookkeeping later perf PRs need as a baseline:
    wall-clock seconds and GC allocation counters.

    Records serialize to single-line JSON so a file of them is JSONL,
    consumable with [jq] or any dataframe library.  Schema (one object per
    line):

    {v
    { "seed": int,            // master seed of the replication batch
      "rep": int,             // replicate index within the batch, from 0
      "graph": string,        // graph spec or experiment label
      "protocol": string,     // protocol name (Protocol.name)
      "vertices": int,        // |V| of the run's graph
      "broadcast_time": int | null,   // null iff the run was capped
      "rounds_run": int,
      "capped": bool,
      "contacts": int,
      "informed_curve": [int, ...],   // index r = informed after round r
      "wall_seconds": float,
      "gc": { "minor_words": float,
              "major_words": float,
              "promoted_words": float },
      "engine": bool,         // flat-frontier engine kernels? (absent = false)
      "shards": int }         // engine randomness shards (absent = 1)
    v}

    The [engine]/[shards] fields were added after the first release; the
    reader accepts records without them ([false]/[1]), so old metrics files
    keep loading. *)

(** Allocation counters, as deltas over one run (in words, the unit
    [Gc.minor_words] et al. report). *)
type gc_counters = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

type t = {
  seed : int;
  rep : int;
  graph : string;
  protocol : string;
  vertices : int;
  broadcast_time : int option;
  rounds_run : int;
  capped : bool;
  contacts : int;
  informed_curve : int array;
  wall_seconds : float;
  gc : gc_counters;
  engine : bool;  (** run through the {!Rumor_protocols.Engine} kernels *)
  shards : int;  (** engine randomness shards (1 on the legacy path) *)
}

type sink = t -> unit
(** A consumer of records; see {!to_channel} and {!with_jsonl_file}. *)

val timed : (unit -> 'a) -> 'a * float * gc_counters
(** [timed f] runs [f ()] and returns its result together with elapsed
    wall-clock seconds and the GC allocation delta. *)

val to_json : t -> string
(** Single-line JSON rendering of the record (no trailing newline). *)

val output : out_channel -> t -> unit
(** Write [to_json] plus a newline. *)

val to_channel : out_channel -> sink
(** A sink writing JSONL to the channel. *)

val with_jsonl_file : ?append:bool -> string -> (sink -> 'a) -> 'a
(** [with_jsonl_file path f] opens [path], hands [f] a sink appending one
    JSONL line per record, and closes the file when [f] returns or raises.

    By default the file is truncated; with [~append:true] new records are
    appended after any existing ones, so a sweep that invokes the CLI many
    times (one graph size or seed per invocation) can accumulate a single
    metrics file and analyze it in one [rumor_report summary] call. *)

(** {1 Reading records back}

    The inverse direction of {!to_json}/{!with_jsonl_file}, used by the
    analysis layer ({!Aggregate}, {!Baseline}, [rumor_report]). *)

val of_json : string -> (t, string) result
(** Parse one record from its single-line JSON form.  Unknown fields are
    ignored (forward compatibility); a missing or ill-typed field is an
    [Error] naming it. *)

exception Jsonl_error of { path : string; line : int; msg : string }
(** Raised by {!read_jsonl} on the first malformed line; [line] is 1-based.
    A printer is registered, so it formats as ["path:line: msg"]. *)

val read_jsonl : string -> t list
(** [read_jsonl path] reads a metrics file line by line (streaming — the
    file is never held in memory wholesale), skipping blank lines, and
    returns the records in file order.  Any other malformed content —
    including trailing garbage from a truncated final write — raises
    {!Jsonl_error} with the offending line number.
    @raise Sys_error if the file cannot be opened. *)
