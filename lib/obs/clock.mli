(** The tree's single clock.

    Every wall-clock read in the repository goes through this module — lint
    rule R8 ("clock confinement") rejects [Unix.gettimeofday] / [Sys.time] /
    [Mtime]-style calls anywhere outside [lib/obs/].  Confinement buys the
    same things R7 bought for concurrency: one audited call site, one place
    to swap the time source (e.g. for a monotonic clock or a fake clock in
    tests), and a guarantee that simulation *logic* never reads real time —
    only the observability layer does.

    Resolution is microseconds (the resolution of the underlying
    [gettimeofday]), which is far below the span granularity the tracer
    records (rounds, shards, graph-build phases — all >= tens of
    microseconds at the scales that matter). *)

val now_s : unit -> float
(** Seconds since the Unix epoch, as a float. *)

val now_us : unit -> float
(** Microseconds since the Unix epoch ([1e6 *. now_s ()]); the unit the
    Chrome [trace_event] format uses for its [ts]/[dur] fields. *)

val elapsed_s : since:float -> float
(** [elapsed_s ~since:t0] is [now_s () -. t0]. *)

val elapsed_ns : since_s:float -> float
(** Elapsed nanoseconds since a [now_s] reading — the unit
    {!Bench_record} entries are stored in. *)
