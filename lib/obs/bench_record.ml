type entry = { name : string; time_ns : float; r_square : float }
type t = { seed : int; jobs : int; meta : (string * string) list; entries : entry list }

let schema = "rumor-bench/1"

let to_json t =
  Json.to_string_json
    (Json.Obj
       ([
          ("schema", Json.String schema);
          ("seed", Json.Int t.seed);
          ("jobs", Json.Int t.jobs);
        ]
       @ (match t.meta with
         | [] -> []
         | meta ->
             [
               ( "meta",
                 Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) meta) );
             ])
       @ [
           ( "entries",
             Json.List
               (List.map
                  (fun e ->
                    Json.Obj
                      [
                        ("name", Json.String e.name);
                        ("time_ns", Json.Float e.time_ns);
                        ("r_square", Json.Float e.r_square);
                      ])
                  t.entries) );
         ]))

let ( let* ) r f = Result.bind r f

let field where name conv =
  match Json.member name where with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let of_json text =
  let* j = Json.parse_result text in
  let* () =
    match Json.member "schema" j with
    | Some (Json.String s) when s = schema -> Ok ()
    | Some (Json.String s) ->
        Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
    | _ -> Error "not a bench snapshot (no \"schema\" field)"
  in
  let* seed = field j "seed" Json.to_int in
  (* [jobs] arrived after the first snapshots shipped; absent means the
     sequential engine of those runs *)
  let* jobs =
    match Json.member "jobs" j with
    | None -> Ok 1
    | Some v -> (
        match Json.to_int v with
        | Some n -> Ok n
        | None -> Error "field \"jobs\" has the wrong type")
  in
  (* [meta] is newer still; absent reads back as the empty list *)
  let* meta =
    match Json.member "meta" j with
    | None -> Ok []
    | Some (Json.Obj fields) ->
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | (k, Json.String v) :: rest -> conv ((k, v) :: acc) rest
          | (k, _) :: _ ->
              Error (Printf.sprintf "meta field %S is not a string" k)
        in
        conv [] fields
    | Some _ -> Error "field \"meta\" has the wrong type"
  in
  let* items = field j "entries" Json.to_list in
  let rec go acc = function
    | [] -> Ok { seed; jobs; meta; entries = List.rev acc }
    | item :: rest -> (
        let entry =
          let* name = field item "name" Json.to_string in
          let* time_ns = field item "time_ns" Json.to_float in
          let* r_square = field item "r_square" Json.to_float in
          Ok { name; time_ns; r_square }
        in
        match entry with
        | Ok e -> go (e :: acc) rest
        | Error msg ->
            Error (Printf.sprintf "entry %d: %s" (List.length acc) msg))
  in
  go [] items

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')

let load path =
  let read () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match read () with
  | exception Sys_error msg -> Error msg
  | text -> (
      match of_json text with
      | Ok t -> Ok t
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

type delta = { name : string; base_ns : float; current_ns : float; ratio : float }
type diff = { deltas : delta list; missing : string list; added : string list }

let diff ~base ~current =
  let find (entries : entry list) name =
    List.find_opt (fun (e : entry) -> e.name = name) entries
  in
  let deltas =
    List.filter_map
      (fun (c : entry) ->
        match find base.entries c.name with
        | None -> None
        | Some b ->
            Some
              {
                name = c.name;
                base_ns = b.time_ns;
                current_ns = c.time_ns;
                ratio =
                  (if Float.equal b.time_ns 0.0 then
                     if Float.equal c.time_ns 0.0 then 1.0 else infinity
                   else c.time_ns /. b.time_ns);
              })
      current.entries
  in
  let missing =
    List.filter_map
      (fun (b : entry) ->
        match find current.entries b.name with
        | None -> Some b.name
        | Some _ -> None)
      base.entries
  in
  let added =
    List.filter_map
      (fun (c : entry) ->
        match find base.entries c.name with None -> Some c.name | Some _ -> None)
      current.entries
  in
  { deltas; missing; added }
