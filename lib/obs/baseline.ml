module Stats = Rumor_prob.Stats

type tolerances = {
  broadcast : float;
  contacts : float;
  wall : float;
  alloc : float;
}

let default_tolerances =
  { broadcast = 0.10; contacts = 0.10; wall = 0.50; alloc = 0.15 }

let uniform tol = { broadcast = tol; contacts = tol; wall = tol; alloc = tol }

type status = Pass | Regressed | Improved

type check = {
  graph : string;
  protocol : string;
  metric : string;
  baseline_mean : float;
  current_mean : float;
  ratio : float;
  tolerance : float;
  status : status;
}

type report = {
  checks : check list;
  missing : (string * string) list;
  added : (string * string) list;
}

let classify ~tolerance ~baseline ~current =
  if Float.equal baseline current then Pass
  else if Float.equal baseline 0.0 then
    Regressed (* a cost appeared out of nothing *)
  else if current > baseline *. (1.0 +. tolerance) then Regressed
  else if current < baseline *. (1.0 -. tolerance) then Improved
  else Pass

let check_metric ~(g : Aggregate.group) ~metric ~tolerance ~baseline ~current =
  {
    graph = g.Aggregate.graph;
    protocol = g.Aggregate.protocol;
    metric;
    baseline_mean = baseline;
    current_mean = current;
    ratio =
      (if Float.equal baseline 0.0 then
         if Float.equal current 0.0 then 1.0 else infinity
       else current /. baseline);
    tolerance;
    status = classify ~tolerance ~baseline ~current;
  }

let check ?(tol = default_tolerances) ~baseline ~current () =
  let checks = ref [] and missing = ref [] in
  List.iter
    (fun (b : Aggregate.group) ->
      match
        Aggregate.find current ~graph:b.Aggregate.graph
          ~protocol:b.Aggregate.protocol
      with
      | None -> missing := (b.Aggregate.graph, b.Aggregate.protocol) :: !missing
      | Some c ->
          let mean (m : Aggregate.metric) = m.Aggregate.summary.Stats.mean in
          let one metric tolerance bm cm =
            checks :=
              check_metric ~g:b ~metric ~tolerance ~baseline:(mean bm)
                ~current:(mean cm)
              :: !checks
          in
          one "broadcast" tol.broadcast b.Aggregate.broadcast c.Aggregate.broadcast;
          one "contacts" tol.contacts b.Aggregate.contacts c.Aggregate.contacts;
          one "wall_seconds" tol.wall b.Aggregate.wall_seconds
            c.Aggregate.wall_seconds;
          one "alloc_words" tol.alloc b.Aggregate.alloc_words
            c.Aggregate.alloc_words)
    baseline;
  let added =
    List.filter_map
      (fun (c : Aggregate.group) ->
        match
          Aggregate.find baseline ~graph:c.Aggregate.graph
            ~protocol:c.Aggregate.protocol
        with
        | None -> Some (c.Aggregate.graph, c.Aggregate.protocol)
        | Some _ -> None)
      current
  in
  { checks = List.rev !checks; missing = List.rev !missing; added }

let regressions report =
  List.filter (fun c -> c.status = Regressed) report.checks

let passed report =
  List.is_empty (regressions report) && List.is_empty report.missing

(* --- snapshot persistence --------------------------------------------- *)

let schema = "rumor-baseline/1"

let json_of_metric (m : Aggregate.metric) =
  let s = m.Aggregate.summary in
  Json.Obj
    [
      ("n", Json.Int s.Stats.n);
      ("mean", Json.Float s.Stats.mean);
      ("stddev", Json.Float s.Stats.stddev);
      ("min", Json.Float s.Stats.min);
      ("q25", Json.Float s.Stats.q25);
      ("median", Json.Float s.Stats.median);
      ("q75", Json.Float s.Stats.q75);
      ("max", Json.Float s.Stats.max);
      ("p90", Json.Float m.Aggregate.p90);
      ("p99", Json.Float m.Aggregate.p99);
    ]

let json_of_group (g : Aggregate.group) =
  Json.Obj
    [
      ("graph", Json.String g.Aggregate.graph);
      ("protocol", Json.String g.Aggregate.protocol);
      ("runs", Json.Int g.Aggregate.runs);
      ("capped", Json.Int g.Aggregate.capped);
      ("vertices", Json.Int g.Aggregate.vertices);
      ("broadcast", json_of_metric g.Aggregate.broadcast);
      ("contacts", json_of_metric g.Aggregate.contacts);
      ("wall_seconds", json_of_metric g.Aggregate.wall_seconds);
      ("alloc_words", json_of_metric g.Aggregate.alloc_words);
    ]

let to_json agg =
  Json.to_string_json
    (Json.Obj
       [
         ("schema", Json.String schema);
         ("groups", Json.List (List.map json_of_group agg));
       ])

let ( let* ) r f = Result.bind r f

let field where name conv =
  match Json.member name where with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let metric_of_json j =
  let* n = field j "n" Json.to_int in
  let* mean = field j "mean" Json.to_float in
  let* stddev = field j "stddev" Json.to_float in
  let* min = field j "min" Json.to_float in
  let* q25 = field j "q25" Json.to_float in
  let* median = field j "median" Json.to_float in
  let* q75 = field j "q75" Json.to_float in
  let* max = field j "max" Json.to_float in
  let* p90 = field j "p90" Json.to_float in
  let* p99 = field j "p99" Json.to_float in
  Ok
    {
      Aggregate.summary = { Stats.n; mean; stddev; min; q25; median; q75; max };
      p90;
      p99;
    }

let group_of_json j =
  let* graph = field j "graph" Json.to_string in
  let* protocol = field j "protocol" Json.to_string in
  let* runs = field j "runs" Json.to_int in
  let* capped = field j "capped" Json.to_int in
  let* vertices = field j "vertices" Json.to_int in
  let metric name = Result.bind (field j name (fun v -> Some v)) metric_of_json in
  let* broadcast = metric "broadcast" in
  let* contacts = metric "contacts" in
  let* wall_seconds = metric "wall_seconds" in
  let* alloc_words = metric "alloc_words" in
  Ok
    {
      Aggregate.graph;
      protocol;
      runs;
      capped;
      vertices;
      broadcast;
      contacts;
      wall_seconds;
      alloc_words;
      mean_curve = [||];
    }

let of_json text =
  let* j = Json.parse_result text in
  let* () =
    match Json.member "schema" j with
    | Some (Json.String s) when s = schema -> Ok ()
    | Some (Json.String s) ->
        Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
    | _ -> Error "not a baseline snapshot (no \"schema\" field)"
  in
  let* groups = field j "groups" Json.to_list in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | g :: rest -> (
        match group_of_json g with
        | Ok group -> go (group :: acc) rest
        | Error msg ->
            Error (Printf.sprintf "group %d: %s" (List.length acc) msg))
  in
  go [] groups

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save path agg =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json agg);
      output_char oc '\n')

let load path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text -> (
      match of_json text with
      | Ok agg -> Ok agg
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
