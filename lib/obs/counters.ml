type counter = { c_name : string; mutable count : int }

type histogram = {
  h_name : string;
  h_bounds : float array;  (* strictly increasing upper bounds *)
  h_counts : int array;  (* length = bounds + 1, overflow last *)
}

(* Registration order is kept (assoc lists, first-registered first) but
   export sorts by name, so neither order is observable downstream. *)
type t = {
  mutable counters : (string * counter) list;
  mutable histograms : (string * histogram) list;
}

let create () = { counters = []; histograms = [] }

let counter t name =
  match List.assoc_opt name t.counters with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      t.counters <- t.counters @ [ (name, c) ];
      c

let incr c = c.count <- c.count + 1

let add c n =
  if n < 0 then
    invalid_arg (Printf.sprintf "Counters.add: negative bump on %S" c.c_name);
  c.count <- c.count + n

let value c = c.count

let check_bounds name bounds =
  if Array.length bounds = 0 then
    invalid_arg (Printf.sprintf "Counters.histogram %S: empty bounds" name);
  for i = 1 to Array.length bounds - 1 do
    if not (bounds.(i) > bounds.(i - 1)) then
      invalid_arg
        (Printf.sprintf "Counters.histogram %S: bounds not strictly increasing"
           name)
  done

let histogram t name ~buckets =
  match List.assoc_opt name t.histograms with
  | Some h ->
      if
        Array.length h.h_bounds <> Array.length buckets
        || not (Array.for_all2 Float.equal h.h_bounds buckets)
      then
        invalid_arg
          (Printf.sprintf "Counters.histogram %S: re-registered with different bounds"
             h.h_name);
      h
  | None ->
      check_bounds name buckets;
      let h =
        {
          h_name = name;
          h_bounds = Array.copy buckets;
          h_counts = Array.make (Array.length buckets + 1) 0;
        }
      in
      t.histograms <- t.histograms @ [ (name, h) ];
      h

(* linear scan: bucket arrays are a handful of cells, and the scan beats
   binary search at that size *)
let observe h x =
  let n = Array.length h.h_bounds in
  let i = ref 0 in
  while !i < n && not (x <= h.h_bounds.(!i)) do
    i := !i + 1
  done;
  h.h_counts.(!i) <- h.h_counts.(!i) + 1

let bucket_counts h = Array.copy h.h_counts
let bounds h = Array.copy h.h_bounds

let merge_into ~dst ~src =
  List.iter
    (fun (name, c) ->
      let d = counter dst name in
      d.count <- d.count + c.count)
    src.counters;
  List.iter
    (fun (name, h) ->
      let d = histogram dst name ~buckets:h.h_bounds in
      Array.iteri (fun i n -> d.h_counts.(i) <- d.h_counts.(i) + n) h.h_counts)
    src.histograms

let is_empty t = List.is_empty t.counters && List.is_empty t.histograms

let sorted_names l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let to_json t =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map
             (fun (name, c) -> (name, Json.Int c.count))
             (sorted_names t.counters)) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (name, h) ->
               ( name,
                 Json.Obj
                   [
                     ( "bounds",
                       Json.List
                         (Array.to_list
                            (Array.map (fun b -> Json.Float b) h.h_bounds)) );
                     ( "counts",
                       Json.List
                         (Array.to_list
                            (Array.map (fun c -> Json.Int c) h.h_counts)) );
                   ] ))
             (sorted_names t.histograms)) );
    ]

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let t = create () in
  let* counter_fields =
    match Json.member "counters" j with
    | Some (Json.Obj fields) -> Ok fields
    | Some _ -> Error "\"counters\" is not an object"
    | None -> Ok []
  in
  let* () =
    List.fold_left
      (fun acc (name, v) ->
        let* () = acc in
        match Json.to_int v with
        | Some n ->
            (counter t name).count <- n;
            Ok ()
        | None -> Error (Printf.sprintf "counter %S is not an integer" name))
      (Ok ()) counter_fields
  in
  let* hist_fields =
    match Json.member "histograms" j with
    | Some (Json.Obj fields) -> Ok fields
    | Some _ -> Error "\"histograms\" is not an object"
    | None -> Ok []
  in
  List.fold_left
    (fun acc (name, v) ->
      let* () = acc in
      let floats l =
        List.fold_left
          (fun acc item ->
            match (acc, Json.to_float item) with
            | Ok xs, Some x -> Ok (x :: xs)
            | Ok _, None -> Error ()
            | (Error _ as e), _ -> e)
          (Ok []) l
        |> Result.map (fun xs -> Array.of_list (List.rev xs))
      in
      let ints l =
        List.fold_left
          (fun acc item ->
            match (acc, Json.to_int item) with
            | Ok xs, Some x -> Ok (x :: xs)
            | Ok _, None -> Error ()
            | (Error _ as e), _ -> e)
          (Ok []) l
        |> Result.map (fun xs -> Array.of_list (List.rev xs))
      in
      match
        ( Option.bind (Json.member "bounds" v) Json.to_list,
          Option.bind (Json.member "counts" v) Json.to_list )
      with
      | Some bs, Some cs -> (
          match (floats bs, ints cs) with
          | Ok bounds, Ok counts
            when Array.length counts = Array.length bounds + 1 -> (
              match histogram t name ~buckets:bounds with
              | h ->
                  Array.blit counts 0 h.h_counts 0 (Array.length counts);
                  Ok ()
              | exception Invalid_argument msg -> Error msg)
          | _ -> Error (Printf.sprintf "histogram %S is malformed" name))
      | _ -> Error (Printf.sprintf "histogram %S is missing bounds/counts" name))
    (Ok ()) hist_fields
  |> Result.map (fun () -> t)
