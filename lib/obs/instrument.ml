type t = {
  on_round_start : int -> unit;
  on_round_end : round:int -> informed:int -> contacts:int -> unit;
  on_contact : int -> int -> unit;
  on_walker_move : agent:int -> from_:int -> to_:int -> unit;
  on_occupancy : round:int -> occupied:int -> walkers:int -> unit;
}

let nop =
  {
    on_round_start = (fun _ -> ());
    on_round_end = (fun ~round:_ ~informed:_ ~contacts:_ -> ());
    on_contact = (fun _ _ -> ());
    on_walker_move = (fun ~agent:_ ~from_:_ ~to_:_ -> ());
    on_occupancy = (fun ~round:_ ~occupied:_ ~walkers:_ -> ());
  }

let make ?(on_round_start = nop.on_round_start) ?(on_round_end = nop.on_round_end)
    ?(on_contact = nop.on_contact) ?(on_walker_move = nop.on_walker_move)
    ?(on_occupancy = nop.on_occupancy) () =
  { on_round_start; on_round_end; on_contact; on_walker_move; on_occupancy }

let pair a b =
  {
    on_round_start =
      (fun r ->
        a.on_round_start r;
        b.on_round_start r);
    on_round_end =
      (fun ~round ~informed ~contacts ->
        a.on_round_end ~round ~informed ~contacts;
        b.on_round_end ~round ~informed ~contacts);
    on_contact =
      (fun u v ->
        a.on_contact u v;
        b.on_contact u v);
    on_walker_move =
      (fun ~agent ~from_ ~to_ ->
        a.on_walker_move ~agent ~from_ ~to_;
        b.on_walker_move ~agent ~from_ ~to_);
    on_occupancy =
      (fun ~round ~occupied ~walkers ->
        a.on_occupancy ~round ~occupied ~walkers;
        b.on_occupancy ~round ~occupied ~walkers);
  }

let[@inline] round_start obs r =
  match obs with None -> () | Some i -> i.on_round_start r

let[@inline] round_end obs ~round ~informed ~contacts =
  match obs with None -> () | Some i -> i.on_round_end ~round ~informed ~contacts

let[@inline] contact obs u v =
  match obs with None -> () | Some i -> i.on_contact u v

let[@inline] walker_move obs ~agent ~from_ ~to_ =
  match obs with None -> () | Some i -> i.on_walker_move ~agent ~from_ ~to_

let[@inline] occupancy obs ~round ~occupied ~walkers =
  match obs with None -> () | Some i -> i.on_occupancy ~round ~occupied ~walkers

module Recorder = struct
  type r = {
    mutable rounds_started : int;
    mutable rounds_ended : int;
    mutable contacts : int;
    mutable walker_moves : int;
    mutable occupancy_events : int;
    mutable last_occupied : int;  (* -1 until the first occupancy event *)
    mutable curve : int array;  (* filled prefix has length rounds_ended *)
  }

  let create () =
    {
      rounds_started = 0;
      rounds_ended = 0;
      contacts = 0;
      walker_moves = 0;
      occupancy_events = 0;
      last_occupied = -1;
      curve = Array.make 16 0;
    }

  let push_curve r informed =
    let len = Array.length r.curve in
    if r.rounds_ended >= len then begin
      let bigger = Array.make (2 * len) 0 in
      Array.blit r.curve 0 bigger 0 len;
      r.curve <- bigger
    end;
    r.curve.(r.rounds_ended) <- informed;
    r.rounds_ended <- r.rounds_ended + 1

  let instrument r =
    {
      on_round_start = (fun _ -> r.rounds_started <- r.rounds_started + 1);
      on_round_end =
        (fun ~round:_ ~informed ~contacts:_ -> push_curve r informed);
      on_contact = (fun _ _ -> r.contacts <- r.contacts + 1);
      on_walker_move =
        (fun ~agent:_ ~from_:_ ~to_:_ -> r.walker_moves <- r.walker_moves + 1);
      on_occupancy =
        (fun ~round:_ ~occupied ~walkers:_ ->
          r.occupancy_events <- r.occupancy_events + 1;
          r.last_occupied <- occupied);
    }

  let rounds_started r = r.rounds_started
  let rounds_ended r = r.rounds_ended
  let contacts r = r.contacts
  let walker_moves r = r.walker_moves
  let occupancy_events r = r.occupancy_events
  let last_occupied r = if r.last_occupied < 0 then None else Some r.last_occupied
  let curve r = Array.sub r.curve 0 r.rounds_ended

  let last_informed r =
    if r.rounds_ended = 0 then None else Some r.curve.(r.rounds_ended - 1)
end
