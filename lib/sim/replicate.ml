module Rng = Rumor_prob.Rng
module Stats = Rumor_prob.Stats
module Graph = Rumor_graph.Graph
module Run_result = Rumor_protocols.Run_result
module Run_record = Rumor_obs.Run_record

type measurement = {
  times : float array;
  capped : int;
  summary : Stats.summary;
}

exception Capped of { rep : int; rounds_run : int }

let () =
  Printexc.register_printer (function
    | Capped { rep; rounds_run } ->
        Some
          (Printf.sprintf
             "Rumor_sim.Replicate.Capped (rep %d hit the cap after %d rounds)"
             rep rounds_run)
    | _ -> None)

let measure ?(on_capped = `Keep) ?record ~seed ~reps f =
  if reps <= 0 then invalid_arg "Replicate.measure: reps <= 0";
  let master = Rng.of_int seed in
  let capped = ref 0 in
  let times =
    Array.init reps (fun rep ->
        let rng = Rng.split master in
        let result, wall_seconds, gc = Run_record.timed (fun () -> f rng) in
        (match record with
        | Some r -> r ~rep ~result ~wall_seconds ~gc
        | None -> ());
        match result.Run_result.broadcast_time with
        | Some t -> float_of_int t
        | None -> (
            let rounds_run = result.Run_result.rounds_run in
            match on_capped with
            | `Fail -> raise (Capped { rep; rounds_run })
            | `Keep ->
                incr capped;
                float_of_int rounds_run))
  in
  { times; capped = !capped; summary = Stats.summarize times }

let broadcast_times ?on_capped ?sink ?(graph_name = "custom") ~seed ~reps ~graph
    ~spec ~max_rounds () =
  (* [graph rng] re-samples per replication inside [f], so the record
     callback learns |V| through this ref rather than a return value. *)
  let last_n = ref 0 in
  let record =
    Option.map
      (fun sink ~rep ~result ~wall_seconds ~gc ->
        sink
          {
            Run_record.seed;
            rep;
            graph = graph_name;
            protocol = Protocol.name spec;
            vertices = !last_n;
            broadcast_time = result.Run_result.broadcast_time;
            rounds_run = result.Run_result.rounds_run;
            capped = result.Run_result.broadcast_time = None;
            contacts = result.Run_result.contacts;
            informed_curve = result.Run_result.informed_curve;
            wall_seconds;
            gc;
          })
      sink
  in
  measure ?on_capped ?record ~seed ~reps (fun rng ->
      let g, source = graph rng in
      last_n := Graph.n g;
      Protocol.run spec rng g ~source ~max_rounds)

let mean m = m.summary.Stats.mean
let median m = m.summary.Stats.median
let max_time m = m.summary.Stats.max
