module Rng = Rumor_prob.Rng
module Stats = Rumor_prob.Stats
module Graph = Rumor_graph.Graph
module Run_result = Rumor_protocols.Run_result
module Run_record = Rumor_obs.Run_record
module Trace = Rumor_obs.Trace
module Pool = Rumor_par.Pool

type measurement = {
  times : float array;
  capped : int;
  summary : Stats.summary;
}

exception Capped of { rep : int; rounds_run : int }

let () =
  Printexc.register_printer (function
    | Capped { rep; rounds_run } ->
        Some
          (Printf.sprintf
             "Rumor_sim.Replicate.Capped (rep %d hit the cap after %d rounds)"
             rep rounds_run)
    | _ -> None)

let measure ?(on_capped = `Keep) ?record ?(jobs = 1) ?trace ~seed ~reps f =
  if reps <= 0 then invalid_arg "Replicate.measure: reps <= 0";
  let master = Rng.of_int seed in
  (* One child generator per rep, split in rep order on the master before
     anything runs: the (seed, rep) -> stream assignment is fixed up front,
     so results are bit-identical however the pool schedules the reps. *)
  let rngs = Rng.split_n master reps in
  let pool = Pool.create ~jobs in
  (* [f] sees the tracer of whichever worker domain runs it (the pool forks
     one child tracer per spawned domain; see Pool.init_traced), bracketed
     in a per-rep span.  Tracing never touches the rep's generator, so
     traced and untraced measurements are bit-identical. *)
  let runs =
    Pool.init_traced ?trace ~label:"rep.chunk" pool reps (fun ~trace rep ->
        Trace.with_span trace ~arg:rep "rep" (fun () ->
            Run_record.timed (fun () -> f ~trace ~rep rngs.(rep))))
  in
  (* Ordered post-join pass: [record] fires in ascending rep order (a JSONL
     sink sees exactly the sequential stream, never interleaved), and under
     [`Fail] the raised rep is the lowest-numbered capped one, as it would
     be sequentially. *)
  let capped = ref 0 in
  let times =
    Array.init reps (fun rep ->
        let result, wall_seconds, gc = runs.(rep) in
        (match record with
        | Some r -> r ~rep ~result ~wall_seconds ~gc
        | None -> ());
        match result.Run_result.broadcast_time with
        | Some t -> float_of_int t
        | None -> (
            let rounds_run = result.Run_result.rounds_run in
            match on_capped with
            | `Fail -> raise (Capped { rep; rounds_run })
            | `Keep ->
                incr capped;
                float_of_int rounds_run))
  in
  { times; capped = !capped; summary = Stats.summarize times }

let broadcast_times ?on_capped ?sink ?(graph_name = "custom") ?jobs ?trace
    ?(engine = false) ?walkers ?shards ~seed ~reps ~graph ~spec ~max_rounds ()
    =
  let shard_count = match shards with Some s -> s | None -> 1 in
  (* [graph rng] re-samples per replication inside [f]; each rep writes |V|
     to its own slot, read back by the rep-ordered record pass. *)
  let vertices = Array.make (max reps 1) 0 in
  let record =
    Option.map
      (fun sink ~rep ~result ~wall_seconds ~gc ->
        sink
          {
            Run_record.seed;
            rep;
            graph = graph_name;
            protocol = Protocol.name spec;
            vertices = vertices.(rep);
            broadcast_time = result.Run_result.broadcast_time;
            rounds_run = result.Run_result.rounds_run;
            capped = Option.is_none result.Run_result.broadcast_time;
            contacts = result.Run_result.contacts;
            informed_curve = result.Run_result.informed_curve;
            wall_seconds;
            gc;
            engine;
            shards = (if engine then shard_count else 1);
          })
      sink
  in
  measure ?on_capped ?record ?jobs ?trace ~seed ~reps (fun ~trace ~rep rng ->
      let g, source = Trace.with_span trace "graph.build" (fun () -> graph rng) in
      vertices.(rep) <- Graph.n g;
      if engine then
        (* engine shards run on the default sequential pool here: the rep
           level already owns the [?jobs] domains, and sharded results are
           jobs-independent by construction anyway *)
        Protocol.run_engine ?trace ?walkers ?shards spec rng g ~source
          ~max_rounds
      else
        Trace.with_span trace ("run." ^ Protocol.name spec) (fun () ->
            Protocol.run spec rng g ~source ~max_rounds))

let mean m = m.summary.Stats.mean
let median m = m.summary.Stats.median
let max_time m = m.summary.Stats.max
