module Rng = Rumor_prob.Rng
module Stats = Rumor_prob.Stats
module Regress = Rumor_prob.Regress
module Graph = Rumor_graph.Graph
module Gen_basic = Rumor_graph.Gen_basic
module Gen_paper = Rumor_graph.Gen_paper
module Gen_random = Rumor_graph.Gen_random
module Placement = Rumor_agents.Placement
module P = Rumor_protocols

type profile = Quick | Full

type t = {
  id : string;
  title : string;
  paper_ref : string;
  run : profile -> seed:int -> Table.t list;
}

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let pick profile ~quick ~full = match profile with Quick -> quick | Full -> full

let reps profile = pick profile ~quick:5 ~full:15

(* Decorrelated per-cell seeds so adding a column does not shift others. *)
let cell_seed seed i j = (seed * 1_000_003) + (i * 7919) + j

(* Dynamically-scoped metrics sink: [with_metrics_sink] installs it around a
   whole suite run so every measured cell emits run records without
   threading a sink through each experiment closure. *)
let metrics_sink : Rumor_obs.Run_record.sink option ref = ref None

let with_metrics_sink sink f =
  let saved = !metrics_sink in
  metrics_sink := Some sink;
  Fun.protect ~finally:(fun () -> metrics_sink := saved) f

(* Same dynamic-scoping trick for the replication parallelism degree, so
   experiment closures need no threading either; cell results are identical
   for every setting (see Replicate). *)
let current_jobs = ref 1

let with_jobs jobs f =
  let saved = !current_jobs in
  current_jobs := jobs;
  Fun.protect ~finally:(fun () -> current_jobs := saved) f

(* And for the engine flag: measured cells are bit-identical either way
   (shards stay at 1), so this too is a pure performance choice. *)
let current_engine = ref false

let with_engine engine f =
  let saved = !current_engine in
  current_engine := engine;
  Fun.protect ~finally:(fun () -> current_engine := saved) f

(* And for the walker representation: with the dense default every engine
   cell keeps the bit-identical contract; [Sparse]/[Auto] are opt-in and
   gated distributionally by A10. *)
let current_walkers : Protocol.walkers ref = ref Protocol.Dense

let with_walkers walkers f =
  let saved = !current_walkers in
  current_walkers := walkers;
  Fun.protect ~finally:(fun () -> current_walkers := saved) f

(* And for the tracer: every measured cell's replications record into the
   one suite-wide tracer (spans never change results, see Replicate). *)
let current_trace : Rumor_obs.Trace.t option ref = ref None

let with_trace trace f =
  let saved = !current_trace in
  current_trace := Some trace;
  Fun.protect ~finally:(fun () -> current_trace := saved) f

let measure_cell ~seed ~reps ~graph ~spec ~max_rounds =
  Replicate.broadcast_times ?sink:!metrics_sink ~jobs:!current_jobs
    ?trace:!current_trace ~engine:!current_engine ~walkers:!current_walkers
    ~seed ~reps ~graph ~spec ~max_rounds ()

let time_cell (m : Replicate.measurement) =
  let s = m.summary in
  let text = Table.fmt_mean_pm s in
  if m.capped > 0 then Printf.sprintf ">=%s (%d capped)" text m.capped else text

(* A standard sweep: rows indexed by a size label, columns by protocol. *)
let sweep_table ~title ~claim ~paper_row ~seed ~reps ~max_rounds ~specs ~notes rows =
  let header = "n" :: List.map Protocol.name specs in
  let means = Array.make_matrix (List.length rows) (List.length specs) 0.0 in
  let table_rows =
    List.mapi
      (fun i (label, nval, graph) ->
        let cells =
          List.mapi
            (fun j spec ->
              let m =
                measure_cell ~seed:(cell_seed seed i j) ~reps ~graph ~spec
                  ~max_rounds:(max_rounds nval)
              in
              means.(i).(j) <- Replicate.mean m;
              time_cell m)
            specs
        in
        label :: cells)
      rows
  in
  let ns = Array.of_list (List.map (fun (_, nval, _) -> float_of_int nval) rows) in
  let fit_notes =
    if Array.length ns >= 2 then
      List.mapi
        (fun j spec ->
          let ts = Array.init (Array.length ns) (fun i -> Float.max means.(i).(j) 0.5) in
          let pf = Regress.power_fit ns ts in
          Printf.sprintf "%s: fitted growth exponent %.2f (T ~ n^e; ~0 means polylog)"
            (Protocol.name spec) pf.Regress.slope)
        specs
    else []
  in
  Table.make ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) specs)
    ~notes:(notes @ fit_notes @ [ paper_row ])
    ~title ~claim ~header table_rows

let alpha = 1.0
let vx = Protocol.visit_exchange ~alpha ()
let mx = Protocol.meet_exchange ~alpha ()
let comb = Protocol.combined ~alpha ()

(* ------------------------------------------------------------------ *)
(* E1: star graph (Fig 1a, Lemma 2)                                    *)
(* ------------------------------------------------------------------ *)

let e1_run profile ~seed =
  let leaves = pick profile ~quick:[ 128; 256; 512; 1024 ] ~full:[ 128; 256; 512; 1024; 2048; 4096 ] in
  let rows =
    List.map
      (fun l ->
        let label = Printf.sprintf "%d" (l + 1) in
        (label, l + 1, fun _rng -> (Gen_basic.star ~leaves:l, 0)))
      leaves
  in
  [
    sweep_table ~title:"E1: star S_n, source = center"
      ~claim:
        "Lemma 2: E[T_push] = Omega(n log n); T_ppull <= 2; T_visitx, T_meetx = \
         O(log n) w.h.p."
      ~paper_row:
        "expected shape: push exponent ~1 (n log n); others ~0 with small \
         absolute values"
      ~seed ~reps:(reps profile)
      ~max_rounds:(fun n -> 60 * n)
      ~specs:[ Protocol.push; Protocol.push_pull; vx; mx ]
      ~notes:[] rows;
  ]

(* ------------------------------------------------------------------ *)
(* E2: double star (Fig 1b, Lemma 3)                                   *)
(* ------------------------------------------------------------------ *)

let e2_run profile ~seed =
  let leaves = pick profile ~quick:[ 128; 256; 512; 1024 ] ~full:[ 128; 256; 512; 1024; 2048; 4096 ] in
  let rows =
    List.map
      (fun l ->
        let n = 2 * (l + 1) in
        ( string_of_int n,
          n,
          fun _rng ->
            let ds = Gen_paper.double_star ~leaves_per_star:l in
            (ds.Gen_paper.ds_graph, ds.Gen_paper.ds_leaf_a) ))
      leaves
  in
  [
    sweep_table ~title:"E2: double star S2_n, source = a leaf"
      ~claim:
        "Lemma 3: E[T_ppull] = Omega(n); T_visitx, T_meetx = O(log n) w.h.p."
      ~paper_row:
        "expected shape: push-pull exponent ~1; visit/meet-exchange ~0"
      ~seed ~reps:(reps profile)
      ~max_rounds:(fun n -> 60 * n)
      ~specs:[ Protocol.push_pull; vx; mx ]
      ~notes:
        [
          "the centers' edge is picked by push-pull with prob O(1/n) per \
           round; agents cross it with constant probability per round";
        ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* E3: heavy binary tree (Fig 1c, Lemma 4)                             *)
(* ------------------------------------------------------------------ *)

let e3_run profile ~seed =
  let levels = pick profile ~quick:[ 8; 9; 10; 11 ] ~full:[ 8; 9; 10; 11; 12; 13 ] in
  let rows =
    List.map
      (fun lv ->
        let n = (1 lsl lv) - 1 in
        ( string_of_int n,
          n,
          fun _rng ->
            let ht = Gen_paper.heavy_binary_tree ~levels:lv in
            (ht.Gen_paper.ht_graph, ht.Gen_paper.ht_first_leaf) ))
      levels
  in
  [
    sweep_table ~title:"E3: heavy binary tree B_n, source = a leaf"
      ~claim:
        "Lemma 4: T_push = O(log n) w.h.p.; E[T_visitx] = Omega(n); T_meetx = \
         O(log n) w.h.p. for a leaf source"
      ~paper_row:
        "expected shape: visit-exchange exponent ~1; push and meet-exchange ~0"
      ~seed ~reps:(reps profile)
      ~max_rounds:(fun n -> 100 * n)
      ~specs:[ Protocol.push; vx; mx ]
      ~notes:
        [
          "almost all stationary mass is on the leaf clique, so no agent \
           finds the root for Omega(n) rounds";
        ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* E4: Siamese heavy binary trees (Fig 1d, Lemma 8)                    *)
(* ------------------------------------------------------------------ *)

let e4_run profile ~seed =
  let levels = pick profile ~quick:[ 8; 9; 10; 11 ] ~full:[ 8; 9; 10; 11; 12 ] in
  let rows =
    List.map
      (fun lv ->
        let n = (2 * ((1 lsl lv) - 1)) - 1 in
        ( string_of_int n,
          n,
          fun _rng ->
            let si = Gen_paper.siamese_heavy_tree ~levels:lv in
            (si.Gen_paper.si_graph, si.Gen_paper.si_leaf_left) ))
      levels
  in
  [
    sweep_table ~title:"E4: Siamese heavy binary trees D_n, source = a left leaf"
      ~claim:
        "Lemma 8: T_push = O(log n) w.h.p.; E[T_visitx] = Omega(n); \
         E[T_meetx] = Omega(n)"
      ~paper_row:
        "expected shape: push exponent ~0; both agent protocols ~1"
      ~seed ~reps:(reps profile)
      ~max_rounds:(fun n -> 100 * n)
      ~specs:[ Protocol.push; vx; mx ]
      ~notes:
        [
          "information must cross the shared root; agents reach it only \
           after Omega(n) rounds in expectation";
        ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* E5: cycle of stars of cliques (Fig 1e, Lemma 9)                     *)
(* ------------------------------------------------------------------ *)

let e5_run profile ~seed =
  let ks = pick profile ~quick:[ 6; 8; 10; 12 ] ~full:[ 6; 8; 10; 12; 14; 16 ] in
  let measurements =
    List.mapi
      (fun i k ->
        let csc = Gen_paper.cycle_stars_cliques ~k in
        let n = Graph.n csc.Gen_paper.csc_graph in
        let graph _rng = (csc.Gen_paper.csc_graph, csc.Gen_paper.csc_a_clique_vertex) in
        let cap = 500 * k * k in
        let mv =
          measure_cell ~seed:(cell_seed seed i 0) ~reps:(reps profile) ~graph
            ~spec:vx ~max_rounds:cap
        in
        let mm =
          measure_cell ~seed:(cell_seed seed i 1) ~reps:(reps profile) ~graph
            ~spec:mx ~max_rounds:cap
        in
        (k, n, mv, mm))
      ks
  in
  let rows =
    List.map
      (fun (k, n, mv, mm) ->
        let ratio = Replicate.mean mm /. Float.max (Replicate.mean mv) 1e-9 in
        [
          string_of_int k;
          string_of_int n;
          time_cell mv;
          time_cell mm;
          Printf.sprintf "%.2f" ratio;
        ])
      measurements
  in
  let ratios =
    List.map
      (fun (_, _, mv, mm) -> Replicate.mean mm /. Float.max (Replicate.mean mv) 1e-9)
      measurements
  in
  let trend =
    match (ratios, List.rev ratios) with
    | first :: _, last :: _ ->
        Printf.sprintf
          "meetx/visitx ratio moves from %.2f (k=%d) to %.2f (k=%d); Lemma 9 \
           predicts growth ~ log n"
          first (List.hd ks) last (List.nth ks (List.length ks - 1))
    | _ -> ""
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          trend;
          "ring vertices c_i are never informed in meet-exchange, slowing \
           each ring hop by a log factor";
        ]
      ~title:"E5: cycle-of-stars-of-cliques (k^3+k^2+k vertices), source in a clique"
      ~claim:
        "Lemma 9: E[T_visitx] = O(n^{2/3}) while E[T_meetx] = Omega(n^{2/3} \
         log n): a logarithmic-factor separation on an (almost) regular graph"
      ~header:[ "k"; "n"; "visit-exchange"; "meet-exchange"; "ratio" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* E6: push vs visit-exchange on regular graphs (Theorem 1)            *)
(* ------------------------------------------------------------------ *)

let ilog2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let e6_family_table ~title ~seed ~profile rows =
  let specs = [ Protocol.push; vx ] in
  let measurements =
    List.mapi
      (fun i (label, _nval, graph) ->
        let mp =
          measure_cell ~seed:(cell_seed seed i 0) ~reps:(reps profile) ~graph
            ~spec:(List.nth specs 0) ~max_rounds:100_000
        in
        let mv =
          measure_cell ~seed:(cell_seed seed i 1) ~reps:(reps profile) ~graph
            ~spec:(List.nth specs 1) ~max_rounds:100_000
        in
        (label, mp, mv))
      rows
  in
  let table_rows =
    List.map
      (fun (label, mp, mv) ->
        let ratio = Replicate.mean mp /. Float.max (Replicate.mean mv) 1e-9 in
        [ label; time_cell mp; time_cell mv; Printf.sprintf "%.2f" ratio ])
      measurements
  in
  Table.make
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~notes:
      [
        "Theorem 1 predicts the ratio stays within constant bounds as n \
         grows (no drift to 0 or infinity)";
      ]
    ~title
    ~claim:
      "Theorem 1: on d-regular graphs with d = Omega(log n), T_push and \
       T_visitx are asymptotically equal up to constants"
    ~header:[ "n (d)"; "push"; "visit-exchange"; "push/visitx" ]
    table_rows

let e6_run profile ~seed =
  let ns = pick profile ~quick:[ 256; 512; 1024; 2048 ] ~full:[ 256; 512; 1024; 2048; 4096; 8192 ] in
  let rr_rows =
    List.map
      (fun n ->
        let d = max 6 (ilog2 n) in
        ( Printf.sprintf "%d (%d)" n d,
          n,
          fun rng -> (Gen_random.random_regular_connected rng ~n ~d, 0) ))
      ns
  in
  let hc_dims = pick profile ~quick:[ 8; 9; 10; 11 ] ~full:[ 8; 9; 10; 11; 12; 13 ] in
  let hc_rows =
    List.map
      (fun dim ->
        ( Printf.sprintf "%d (%d)" (1 lsl dim) dim,
          1 lsl dim,
          fun _rng -> (Gen_basic.hypercube ~dim, 0) ))
      hc_dims
  in
  let neck_sizes = pick profile ~quick:[ (8, 16); (16, 16); (32, 16) ] ~full:[ (8, 16); (16, 16); (32, 16); (64, 16) ] in
  let neck_rows =
    List.map
      (fun (cliques, s) ->
        let n = cliques * s in
        ( Printf.sprintf "%d (%d)" n (s - 1),
          n,
          fun _rng -> (Gen_basic.necklace ~cliques ~clique_size:s, 0) ))
      neck_sizes
  in
  [
    e6_family_table ~title:"E6a: random d-regular, d = max(6, log2 n)" ~seed ~profile rr_rows;
    e6_family_table ~title:"E6b: hypercube (d = log2 n exactly)" ~seed:(seed + 1) ~profile hc_rows;
    e6_family_table
      ~title:"E6c: necklace of 16-cliques (15-regular, diameter Theta(n)): both protocols polynomial, ratio still constant"
      ~seed:(seed + 2) ~profile neck_rows;
  ]

(* ------------------------------------------------------------------ *)
(* E7: visit-exchange vs meet-exchange on regular graphs (Theorem 23)  *)
(* ------------------------------------------------------------------ *)

let e7_run profile ~seed =
  let ns = pick profile ~quick:[ 256; 512; 1024; 2048 ] ~full:[ 256; 512; 1024; 2048; 4096 ] in
  let measurements =
    List.mapi
      (fun i n ->
        let d = max 6 (ilog2 n) in
        let graph rng = (Gen_random.random_regular_connected rng ~n ~d, 0) in
        let mvx =
          measure_cell ~seed:(cell_seed seed i 0) ~reps:(reps profile) ~graph
            ~spec:vx ~max_rounds:100_000
        in
        let mmx =
          measure_cell ~seed:(cell_seed seed i 1) ~reps:(reps profile) ~graph
            ~spec:mx ~max_rounds:100_000
        in
        (n, d, mvx, mmx))
      ns
  in
  let rows =
    List.map
      (fun (n, d, mvx, mmx) ->
        let gap = Replicate.mean mmx -. Replicate.mean mvx in
        let norm = gap /. log (float_of_int n) in
        [
          Printf.sprintf "%d (%d)" n d;
          time_cell mvx;
          time_cell mmx;
          Printf.sprintf "%.1f" gap;
          Printf.sprintf "%.2f" norm;
        ])
      measurements
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          "Theorem 23 bounds T_visitx <= T_meetx + c log n: the (meetx - \
           visitx) gap should stay O(log n), i.e. the last column bounded";
        ]
      ~title:"E7: meet-exchange vs visit-exchange on random d-regular"
      ~claim:
        "Theorem 23: P[T_visitx <= k + c log n] >= P[T_meetx <= k] - n^-lambda \
         — meet-exchange is never more than an additive O(log n) faster"
      ~header:[ "n (d)"; "visit-exchange"; "meet-exchange"; "gap"; "gap/ln n" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* E8: logarithmic lower bounds (Theorems 24, 25)                      *)
(* ------------------------------------------------------------------ *)

let e8_run profile ~seed =
  let ns = pick profile ~quick:[ 256; 512; 1024; 2048 ] ~full:[ 256; 512; 1024; 2048; 4096; 8192 ] in
  let measurements =
    List.mapi
      (fun i n ->
        let d = max 6 (ilog2 n) in
        let graph rng = (Gen_random.random_regular_connected rng ~n ~d, 0) in
        let mvx =
          measure_cell ~seed:(cell_seed seed i 0) ~reps:(reps profile) ~graph
            ~spec:vx ~max_rounds:100_000
        in
        let mmx =
          measure_cell ~seed:(cell_seed seed i 1) ~reps:(reps profile) ~graph
            ~spec:mx ~max_rounds:100_000
        in
        (n, d, mvx, mmx))
      ns
  in
  let rows =
    List.map
      (fun (n, d, mvx, mmx) ->
        let ln = log (float_of_int n) in
        [
          Printf.sprintf "%d (%d)" n d;
          Printf.sprintf "%.1f" ln;
          time_cell mvx;
          Printf.sprintf "%.2f" (mvx.Replicate.summary.Stats.min /. ln);
          time_cell mmx;
          Printf.sprintf "%.2f" (mmx.Replicate.summary.Stats.min /. ln);
        ])
      measurements
  in
  let ns_f = Array.of_list (List.map (fun (n, _, _, _) -> float_of_int n) measurements) in
  let fit_for label extract =
    let ts = Array.of_list (List.map extract measurements) in
    let lf = Regress.log_fit ns_f ts in
    Printf.sprintf "%s: T ~ %.2f * ln n + %.2f (log-linear fit, r2=%.2f)" label
      lf.Regress.slope lf.Regress.intercept lf.Regress.r2
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          fit_for "visit-exchange" (fun (_, _, mvx, _) -> Replicate.mean mvx);
          fit_for "meet-exchange" (fun (_, _, _, mmx) -> Replicate.mean mmx);
          "Theorems 24/25: even the minimum over replications stays >= c ln n \
           with c > 0";
        ]
      ~title:"E8: Omega(log n) lower bounds on random d-regular"
      ~claim:
        "Theorems 24, 25: T_visitx and T_meetx are Omega(log n) w.h.p. on \
         d-regular graphs with d = Omega(log n), |A| = O(n)"
      ~header:[ "n (d)"; "ln n"; "visitx"; "min/ln n"; "meetx"; "min/ln n" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* E9: the Section 5 coupling invariants (Lemmas 13, 14, Eq. 3)        *)
(* ------------------------------------------------------------------ *)

(* The Theorem 19 direction plus the tweaked processes: per vertex,
   visit-exchange's informing round t_u should be within a constant factor
   of tau_u + log n (Lemma 22), and the t-/r-clamps should never fire on
   d-regular graphs with d = Omega(log n) (Lemmas 12 and 21). *)
let e9b_table profile ~seed =
  let ns = pick profile ~quick:[ 256; 512 ] ~full:[ 256; 512; 1024; 2048 ] in
  let trials = pick profile ~quick:3 ~full:10 in
  let rows =
    List.mapi
      (fun i n ->
        (* Lemma 21 needs alpha * d >> log n before the Eq.(10) clamp is
           w.h.p. idle; d ~ 64 puts even n = 256 in that regime *)
        let d = max 64 (6 * ilog2 n) in
        let master = Rng.of_int (cell_seed seed i 0) in
        let worst_ratio = ref 0.0 in
        let t_interventions = ref 0 in
        let r_interventions = ref 0 in
        for _ = 1 to trials do
          let rng = Rng.split master in
          let g = Gen_random.random_regular_connected rng ~n ~d in
          let tau = P.Push.informed_times rng g ~source:0 ~max_rounds:(100 * n) in
          let dvx =
            P.Visit_exchange.run_detailed rng g ~source:0
              ~agents:(Placement.Linear alpha) ~max_rounds:(100 * n) ()
          in
          let ln_n = log (float_of_int n) in
          Array.iteri
            (fun u tu ->
              if tu < max_int && tau.(u) < max_int then begin
                let ratio = float_of_int tu /. (float_of_int tau.(u) +. ln_n) in
                if ratio > !worst_ratio then worst_ratio := ratio
              end)
            dvx.P.Visit_exchange.vertex_time;
          let t_run =
            P.Tweaked_visit_exchange.run_t_visit_exchange rng g ~source:0
              ~agents:(Placement.Linear alpha) ~gamma:6.0 ~max_rounds:(100 * n) ()
          in
          t_interventions :=
            !t_interventions + t_run.P.Tweaked_visit_exchange.interventions;
          let r_run =
            P.Tweaked_visit_exchange.run_r_visit_exchange rng g ~source:0
              ~agents:(Placement.Linear alpha) ~max_rounds:(100 * n) ()
          in
          r_interventions :=
            !r_interventions + r_run.P.Tweaked_visit_exchange.interventions
        done;
        [
          Printf.sprintf "%d (%d)" n d;
          string_of_int trials;
          Printf.sprintf "%.2f" !worst_ratio;
          string_of_int !t_interventions;
          string_of_int !r_interventions;
        ])
      ns
  in
  Table.make
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~notes:
      [
        "max t/(tau+ln n): worst per-vertex ratio of visit-exchange's \
         informing round to push's plus log n; Theorem 19 bounds it by a \
         constant c";
        "t-/r-clamp: total agents removed by Eq.(3) (gamma = 6) / added by \
         Eq.(10) across all runs; Lemmas 12 and 21 say both are 0 w.h.p. \
         for d = Omega(log n)";
      ]
    ~title:"E9b: Theorem 19 direction and the tweaked processes"
    ~claim:
      "Lemma 22: t_u <= c (tau_u + log n) w.h.p.; Lemmas 12/21: the Eq.(3) \
       and Eq.(10) clamps never fire on d-regular graphs with d = \
       Omega(log n)"
    ~header:[ "n (d)"; "runs"; "max t/(tau+ln n)"; "t-clamp"; "r-clamp" ]
    rows

let e9_run profile ~seed =
  let ns = pick profile ~quick:[ 128; 256; 512 ] ~full:[ 128; 256; 512; 1024; 2048 ] in
  let trials = pick profile ~quick:3 ~full:10 in
  let rows =
    List.mapi
      (fun i n ->
        let d = max 6 (ilog2 n) in
        let master = Rng.of_int (cell_seed seed i 0) in
        let violations = ref 0 in
        let congestion_mismatches = ref 0 in
        let max_ratio = ref 0.0 in
        let max_load = ref 0 in
        for _ = 1 to trials do
          let rng = Rng.split master in
          let g = Gen_random.random_regular_connected rng ~n ~d in
          let c = P.Coupling.create rng g ~source:0 in
          let o =
            P.Coupling.run_visit_exchange ~record_history:true c
              ~agents:(Placement.Linear alpha) ~max_rounds:(100 * n)
          in
          let tau = P.Coupling.run_push c ~max_rounds:(100 * n) in
          violations := !violations + List.length (P.Coupling.lemma13_violations ~tau o);
          for u = 0 to n - 1 do
            if o.P.Coupling.vertex_time.(u) < max_int then begin
              let walk = P.Coupling.canonical_walk o u in
              let q = P.Coupling.congestion o walk in
              if q <> o.P.Coupling.c_counter.(u) then incr congestion_mismatches;
              if o.P.Coupling.vertex_time.(u) > 0 then begin
                let r =
                  float_of_int o.P.Coupling.c_counter.(u)
                  /. float_of_int o.P.Coupling.vertex_time.(u)
                in
                if r > !max_ratio then max_ratio := r
              end
            end
          done;
          let load = P.Coupling.max_neighborhood_load o g in
          if load > !max_load then max_load := load
        done;
        [
          Printf.sprintf "%d (%d)" n d;
          string_of_int trials;
          string_of_int !violations;
          string_of_int !congestion_mismatches;
          Printf.sprintf "%.2f" !max_ratio;
          Printf.sprintf "%d (%.1fd)" !max_load (float_of_int !max_load /. float_of_int d);
        ])
      ns
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          "violations = vertices with tau_u > C_u(t_u) under the shared-list \
           coupling (Lemma 13: must be 0)";
          "Q mismatches = canonical walks whose congestion differs from \
           C_u(t_u) (Lemma 14: must be 0)";
          "max C/t = worst congestion-per-round over vertices; Section 5.7 \
           bounds it by a constant beta w.h.p.";
          "max load = max_u sum_{v in N(u)} |Z_v(t)|; Lemma 12/Eq.(3) says \
           it stays O(d)";
        ]
      ~title:"E9a: coupling invariants of Section 5 on random d-regular"
      ~claim:
        "Lemma 13: tau_u <= C_u(t_u) for all u; Lemma 14: the canonical walk \
         to u has congestion exactly C_u(t_u); Eq.(3): neighborhood loads \
         stay O(d)"
      ~header:[ "n (d)"; "runs"; "Lemma13 viol."; "Q mismatches"; "max C/t"; "max nbhd load" ]
      rows;
    e9b_table profile ~seed:(seed + 17);
  ]

(* ------------------------------------------------------------------ *)
(* E10: the push-pull + visit-exchange combination (Section 1)         *)
(* ------------------------------------------------------------------ *)

let e10_run profile ~seed =
  let reps = reps profile in
  let size = pick profile ~quick:1024 ~full:4096 in
  let levels = pick profile ~quick:11 ~full:13 in
  let ds = Gen_paper.double_star ~leaves_per_star:(size / 2) in
  let ht = Gen_paper.heavy_binary_tree ~levels in
  let n_ds = Graph.n ds.Gen_paper.ds_graph in
  let n_ht = Graph.n ht.Gen_paper.ht_graph in
  let families =
    [
      ( "double star",
        n_ds,
        fun _rng -> (ds.Gen_paper.ds_graph, ds.Gen_paper.ds_leaf_a) );
      ( "heavy binary tree",
        n_ht,
        fun _rng -> (ht.Gen_paper.ht_graph, ht.Gen_paper.ht_first_leaf) );
    ]
  in
  let specs = [ Protocol.push_pull; vx; comb ] in
  let rows =
    List.mapi
      (fun i (label, n, graph) ->
        let cells =
          List.mapi
            (fun j spec ->
              let m =
                measure_cell ~seed:(cell_seed seed i j) ~reps ~graph ~spec
                  ~max_rounds:(60 * n)
              in
              time_cell m)
            specs
        in
        Printf.sprintf "%s (n=%d)" label n :: cells)
      families
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          "push-pull is polynomial on the double star; visit-exchange is \
           polynomial on the heavy tree; the combination is logarithmic on \
           both";
        ]
      ~title:"E10: combining push-pull with visit-exchange"
      ~claim:
        "Section 1: \"agent-based information dissemination, separately or \
         in combination with push-pull, can significantly improve the \
         broadcast time\""
      ~header:[ "graph"; "push-pull"; "visit-exchange"; "combined" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* A1: agent density (Section 9 open problem)                          *)
(* ------------------------------------------------------------------ *)

let a1_run profile ~seed =
  let n = pick profile ~quick:1024 ~full:4096 in
  let d = max 6 (ilog2 n) in
  let alphas = [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  let graph rng = (Gen_random.random_regular_connected rng ~n ~d, 0) in
  let rows =
    List.mapi
      (fun i a ->
        let mvx =
          measure_cell ~seed:(cell_seed seed i 0) ~reps:(reps profile) ~graph
            ~spec:(Protocol.visit_exchange ~alpha:a ())
            ~max_rounds:100_000
        in
        let mmx =
          measure_cell ~seed:(cell_seed seed i 1) ~reps:(reps profile) ~graph
            ~spec:(Protocol.meet_exchange ~alpha:a ())
            ~max_rounds:100_000
        in
        [ Printf.sprintf "%.2f" a; time_cell mvx; time_cell mmx ])
      alphas
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      ~notes:
        [
          "the paper assumes |A| = Theta(n) and leaves sub-linear agent \
           counts open (Section 9); broadcast slows gracefully as alpha \
           shrinks";
        ]
      ~title:
        (Printf.sprintf "A1: agent density sweep on random %d-regular, n = %d" d n)
      ~claim:"ablation: |A| = alpha n for alpha in [1/4, 4]"
      ~header:[ "alpha"; "visit-exchange"; "meet-exchange" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* A2: lazy vs non-lazy walks on a bipartite graph (Section 3)         *)
(* ------------------------------------------------------------------ *)

let a2_run profile ~seed =
  let leaves = pick profile ~quick:512 ~full:2048 in
  let graph _rng = (Gen_basic.star ~leaves, 0) in
  let cap = 2000 in
  let cases =
    [
      ("meet-exchange, lazy", Protocol.Meet_exchange { agents = Placement.Linear alpha; laziness = Protocol.Lazy_on });
      ("meet-exchange, non-lazy", Protocol.Meet_exchange { agents = Placement.Linear alpha; laziness = Protocol.Lazy_off });
    ]
  in
  let rows =
    List.mapi
      (fun i (label, spec) ->
        let m =
          measure_cell ~seed:(cell_seed seed i 0) ~reps:(reps profile) ~graph
            ~spec ~max_rounds:cap
        in
        [
          label;
          time_cell m;
          Printf.sprintf "%d/%d" (Array.length m.Replicate.times - m.Replicate.capped)
            (Array.length m.Replicate.times);
        ])
      cases
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      ~notes:
        [
          "the star is bipartite: non-lazy walks split into parity classes \
           that never meet, so T_meetx = infinity unless walks are lazy \
           (Section 3's remark)";
          Printf.sprintf "round cap: %d" cap;
        ]
      ~title:(Printf.sprintf "A2: lazy walks on the bipartite star (n = %d)" (leaves + 1))
      ~claim:
        "Section 3: on bipartite graphs meet-exchange may never finish; lazy \
         walks guarantee E[T_meetx] < infinity"
      ~header:[ "variant"; "broadcast time"; "completed" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* A3: stationary vs one-agent-per-vertex placement (Section 1)        *)
(* ------------------------------------------------------------------ *)

let a3_run profile ~seed =
  let ns = pick profile ~quick:[ 512; 1024 ] ~full:[ 512; 1024; 2048; 4096 ] in
  let rows =
    List.mapi
      (fun i n ->
        let d = max 6 (ilog2 n) in
        let graph rng = (Gen_random.random_regular_connected rng ~n ~d, 0) in
        let m_st =
          measure_cell ~seed:(cell_seed seed i 0) ~reps:(reps profile) ~graph
            ~spec:vx ~max_rounds:100_000
        in
        let m_opv =
          measure_cell ~seed:(cell_seed seed i 1) ~reps:(reps profile) ~graph
            ~spec:(Protocol.Visit_exchange { agents = Placement.One_per_vertex; laziness = Protocol.Lazy_off })
            ~max_rounds:100_000
        in
        [ Printf.sprintf "%d (%d)" n d; time_cell m_st; time_cell m_opv ])
      ns
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      ~notes:
        [
          "Section 1: \"our results for regular graphs hold also in the case \
           where there is exactly one agent starting from each node\"";
        ]
      ~title:"A3: initial placement, stationary vs one-per-vertex (visit-exchange)"
      ~claim:"placement choice does not change the broadcast time asymptotics on regular graphs"
      ~header:[ "n (d)"; "stationary"; "one-per-vertex" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* A4: bandwidth fairness (Section 1)                                  *)
(* ------------------------------------------------------------------ *)

let a4_run profile ~seed =
  let leaves = pick profile ~quick:256 ~full:1024 in
  let ds = Gen_paper.double_star ~leaves_per_star:leaves in
  let g = ds.Gen_paper.ds_graph in
  let source = ds.Gen_paper.ds_leaf_a in
  let rounds = pick profile ~quick:200 ~full:500 in
  let run_with spec seed_off =
    let tr = P.Traffic.create g in
    let rng = Rng.of_int (cell_seed seed seed_off 0) in
    (* run for a fixed number of rounds so both protocols get equal time *)
    let (_ : P.Run_result.t) =
      Protocol.run ~traffic:tr spec rng g ~source ~max_rounds:rounds
    in
    tr
  in
  (* push-pull never finishes that fast on the double star, so both traffic
     snapshots cover comparable horizons *)
  let tr_pp = run_with Protocol.push_pull 1 in
  let tr_vx = run_with vx 2 in
  let bridge_pp = P.Traffic.count tr_pp ds.Gen_paper.ds_center_a ds.Gen_paper.ds_center_b in
  let bridge_vx = P.Traffic.count tr_vx ds.Gen_paper.ds_center_a ds.Gen_paper.ds_center_b in
  let f_pp = P.Traffic.fairness tr_pp in
  let f_vx = P.Traffic.fairness tr_vx in
  let row name (f : P.Traffic.fairness) bridge =
    [
      name;
      Printf.sprintf "%.2f" f.P.Traffic.mean;
      Printf.sprintf "%.2f" (float_of_int f.P.Traffic.min_load /. f.P.Traffic.mean);
      Printf.sprintf "%.2f" f.P.Traffic.max_over_mean;
      string_of_int bridge;
      Printf.sprintf "%.3f" (float_of_int bridge /. f.P.Traffic.mean);
    ]
  in
  [
    Table.make
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          Printf.sprintf
            "both protocols ran for exactly %d rounds on the double star (n = %d)"
            rounds (Graph.n g);
          "\"bridge uses\" counts traffic on the center-center edge: \
           visit-exchange uses every edge at roughly the mean rate \
           (bridge/mean near 1), push-pull starves the bridge by a factor \
           Theta(n) (Section 1's local fairness claim)";
        ]
      ~title:"A4: per-edge bandwidth fairness on the double star"
      ~claim:
        "Section 1: agent-based protocols use all edges with the same \
         frequency; push-pull does not"
      ~header:
        [ "protocol"; "mean edge load"; "min/mean"; "max/mean"; "bridge uses"; "bridge/mean" ]
      [ row "push-pull" f_pp bridge_pp; row "visit-exchange" f_vx bridge_vx ];
  ]

(* ------------------------------------------------------------------ *)
(* A5: synchronous vs asynchronous rumor spreading (Section 2)         *)
(* ------------------------------------------------------------------ *)

let a5_run profile ~seed =
  let ns = pick profile ~quick:[ 256; 512; 1024 ] ~full:[ 256; 512; 1024; 2048; 4096 ] in
  let reps = reps profile in
  let rows =
    List.mapi
      (fun i n ->
        let d = max 6 (ilog2 n) in
        let master = Rng.of_int (cell_seed seed i 0) in
        let sync = Stats.create () and async_p = Stats.create () and async_pp = Stats.create () in
        for _ = 1 to reps do
          let rng = Rng.split master in
          let g = Gen_random.random_regular_connected rng ~n ~d in
          let r = P.Push.run rng g ~source:0 ~max_rounds:100_000 () in
          Stats.add_int sync (P.Run_result.time_exn r);
          (match
             (P.Async_push.run rng g ~variant:P.Async_push.Async_push ~source:0
                ~max_time:1e6)
               .P.Async_push.broadcast_time
           with
          | Some t -> Stats.add async_p t
          | None -> ());
          match
            (P.Async_push.run rng g ~variant:P.Async_push.Async_push_pull ~source:0
               ~max_time:1e6)
              .P.Async_push.broadcast_time
          with
          | Some t -> Stats.add async_pp t
          | None -> ()
        done;
        [
          Printf.sprintf "%d (%d)" n d;
          Printf.sprintf "%.1f" (Stats.mean sync);
          Printf.sprintf "%.1f" (Stats.mean async_p);
          Printf.sprintf "%.2f" (Stats.mean async_p /. Stats.mean sync);
          Printf.sprintf "%.1f" (Stats.mean async_pp);
        ])
      ns
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          "async time is continuous (one unit = one expected clock ring per \
           vertex), directly comparable to synchronous rounds";
          "Sauerwald [41]: on regular graphs asynchronous push matches \
           synchronous push asymptotically — the ratio column should stay \
           near a constant";
        ]
      ~title:"A5: synchronous vs asynchronous push on random d-regular"
      ~claim:
        "Section 2 (related work): asynchronous push has the same broadcast \
         time as synchronous push on regular graphs"
      ~header:[ "n (d)"; "sync push"; "async push"; "async/sync"; "async push-pull" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* A6: dynamic agents under churn (Section 9 future work)              *)
(* ------------------------------------------------------------------ *)

let a6_run profile ~seed =
  let n = pick profile ~quick:512 ~full:2048 in
  let reps = reps profile in
  let d = max 6 (ilog2 n) in
  let churns = [ 0.0; 0.05; 0.1; 0.2; 0.4 ] in
  let measure ~replace churn i =
    let master = Rng.of_int (cell_seed seed i (if replace then 0 else 1)) in
    let times = Stats.create () in
    let completed = ref 0 in
    for _ = 1 to reps do
      let rng = Rng.split master in
      let g = Gen_random.random_regular_connected rng ~n ~d in
      let o =
        P.Dynamic_visit_exchange.run rng g ~source:0 ~agents:(Placement.Linear alpha)
          ~churn ~replace ~max_rounds:(50 * n) ()
      in
      match o.P.Dynamic_visit_exchange.result.P.Run_result.broadcast_time with
      | Some t ->
          incr completed;
          Stats.add_int times t
      | None -> ()
    done;
    (times, !completed)
  in
  let rows =
    List.mapi
      (fun i churn ->
        let with_rep, done_rep = measure ~replace:true churn i in
        let no_rep, done_norep = measure ~replace:false churn i in
        [
          Printf.sprintf "%.2f" churn;
          (if done_rep = 0 then "-" else Printf.sprintf "%.1f" (Stats.mean with_rep));
          Printf.sprintf "%d/%d" done_rep reps;
          (if done_norep = 0 then "-" else Printf.sprintf "%.1f" (Stats.mean no_rep));
          Printf.sprintf "%d/%d" done_norep reps;
        ])
      churns
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          "with births (replacement) the broadcast time degrades gracefully \
           even at 40% churn per round; without replacement heavy churn kills \
           the population before the slow graphs finish";
          Printf.sprintf "random %d-regular, n = %d, |A_0| = n, cap = 50n" d n;
        ]
      ~title:"A6: visit-exchange under agent churn (dynamic population)"
      ~claim:
        "Section 9: \"the protocols could tolerate some number of lost agents, \
         if a dynamic set of agents were used, where agents age ... while new \
         agents are born at a proportional rate\""
      ~header:
        [ "churn/round"; "T (with births)"; "done"; "T (no births)"; "done" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* A7: push under random transmission failures ([22], used by Lemma 4) *)
(* ------------------------------------------------------------------ *)

let a7_run profile ~seed =
  let n = pick profile ~quick:1024 ~full:4096 in
  let d = max 6 (ilog2 n) in
  let reps = reps profile in
  let ps = [ 0.0; 0.1; 0.25; 0.5; 0.75 ] in
  let rows =
    List.mapi
      (fun i failure_prob ->
        let master = Rng.of_int (cell_seed seed i 0) in
        let stats = Stats.create () in
        for _ = 1 to reps do
          let rng = Rng.split master in
          let g = Gen_random.random_regular_connected rng ~n ~d in
          let r = P.Push.run ~failure_prob rng g ~source:0 ~max_rounds:(100 * n) () in
          Stats.add_int stats (P.Run_result.time_exn r)
        done;
        let t = Stats.mean stats in
        [
          Printf.sprintf "%.2f" failure_prob;
          Printf.sprintf "%.1f" t;
          Printf.sprintf "%.2f" (1.0 /. (1.0 -. failure_prob));
        ])
      ps
  in
  let baseline =
    match rows with (_ :: t0 :: _) :: _ -> float_of_string t0 | _ -> 1.0
  in
  let rows =
    List.map
      (fun row ->
        match row with
        | [ p; t; pred ] ->
            [ p; t; Printf.sprintf "%.2f" (float_of_string t /. baseline); pred ]
        | _ -> row)
      rows
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          Printf.sprintf "random %d-regular, n = %d; each transmission is \
                          lost independently with probability p" d n;
          "Elsasser-Sauerwald [22] (used inside the paper's Lemma 4 proof): \
           random transmission failures only rescale the broadcast time by \
           ~1/(1-p) — measured and predicted slowdowns should track";
        ]
      ~title:"A7: push under random transmission failures"
      ~claim:
        "Lemma 4 via [22]: transmission failures with constant probability \
         do not change push's asymptotic broadcast time"
      ~header:[ "p(loss)"; "push"; "slowdown"; "1/(1-p)" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* R1: sub-linear agents on random regular graphs (Section 9; [14])    *)
(* ------------------------------------------------------------------ *)

let r1_run profile ~seed =
  let n = pick profile ~quick:1024 ~full:4096 in
  let d = max 6 (ilog2 n) in
  let ks = pick profile ~quick:[ 8; 16; 32; 64; 128 ] ~full:[ 8; 16; 32; 64; 128; 256; 512 ] in
  let rows =
    List.mapi
      (fun i k ->
        let graph rng = (Gen_random.random_regular_connected rng ~n ~d, 0) in
        let spec =
          Protocol.Meet_exchange
            { agents = Placement.Stationary k; laziness = Protocol.Lazy_auto }
        in
        let m =
          measure_cell ~seed:(cell_seed seed i 0) ~reps:(reps profile) ~graph ~spec
            ~max_rounds:(200 * n)
        in
        let t = Replicate.mean m in
        let predicted = float_of_int n *. log (float_of_int k) /. float_of_int k in
        [
          string_of_int k;
          time_cell m;
          Printf.sprintf "%.0f" predicted;
          Printf.sprintf "%.2f" (t /. predicted);
        ])
      ks
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          Printf.sprintf "random %d-regular, n = %d, k agents from stationarity" d n;
          "Cooper-Frieze-Radzik [14]: E[T_meetx] = O(n log k / k) for k <= n \
           random walks on random regular graphs — the last column should \
           stay bounded as k varies";
        ]
      ~title:"R1: meet-exchange with k << n agents on random regular graphs"
      ~claim:
        "Section 9 open problem (sub-linear agents), calibrated against the \
         [14] bound E[T] = O(n log k / k)"
      ~header:[ "k"; "meet-exchange"; "n ln k / k"; "T / (n ln k / k)" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* R2: sub-linear agents on the torus (Section 9; [39], [35])          *)
(* ------------------------------------------------------------------ *)

let r2_run profile ~seed =
  let side = pick profile ~quick:24 ~full:48 in
  let n = side * side in
  let ks = pick profile ~quick:[ 4; 16; 64; 256 ] ~full:[ 4; 16; 64; 256; 1024 ] in
  let rows =
    List.mapi
      (fun i k ->
        let graph _rng = (Gen_basic.torus ~rows:side ~cols:side, 0) in
        let spec =
          Protocol.Meet_exchange
            { agents = Placement.Stationary k; laziness = Protocol.Lazy_auto }
        in
        let m =
          measure_cell ~seed:(cell_seed seed i 0) ~reps:(reps profile) ~graph ~spec
            ~max_rounds:(500 * n)
        in
        let t = Replicate.mean m in
        let predicted = float_of_int n /. sqrt (float_of_int k) in
        [
          string_of_int k;
          time_cell m;
          Printf.sprintf "%.0f" predicted;
          Printf.sprintf "%.2f" (t /. predicted);
        ])
      ks
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          Printf.sprintf "%dx%d torus (n = %d), k agents, lazy walks (bipartite)" side side n;
          "Pettarin et al. [39]: broadcast time on the 2-d grid is \
           Theta~(n / sqrt k) — the normalized column should stay within a \
           polylog band as k grows";
        ]
      ~title:"R2: meet-exchange with k agents on the 2-d torus"
      ~claim:
        "Section 2 (related work [39], [35]): k random walks spread a rumor \
         on the 2-d grid in Theta~(n / sqrt k) rounds"
      ~header:[ "k"; "meet-exchange"; "n / sqrt k"; "T / (n / sqrt k)" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* R3: quasirandom vs fully random push (Section 2; [19])              *)
(* ------------------------------------------------------------------ *)

let r3_run profile ~seed =
  let families =
    let sizes = pick profile ~quick:[ 256; 1024 ] ~full:[ 256; 1024; 4096 ] in
    List.concat_map
      (fun n ->
        let d = max 6 (ilog2 n) in
        [
          ( Printf.sprintf "random-regular n=%d" n,
            n,
            fun rng -> (Gen_random.random_regular_connected rng ~n ~d, 0) );
        ])
      sizes
    @ [
        ("hypercube n=1024", 1024, fun _rng -> (Gen_basic.hypercube ~dim:10, 0));
        ("star n=257", 257, fun _rng -> (Gen_basic.star ~leaves:256, 0));
      ]
  in
  let rows =
    List.mapi
      (fun i (label, _n, graph) ->
        let m_push =
          measure_cell ~seed:(cell_seed seed i 0) ~reps:(reps profile) ~graph
            ~spec:Protocol.push ~max_rounds:1_000_000
        in
        let m_quasi =
          measure_cell ~seed:(cell_seed seed i 1) ~reps:(reps profile) ~graph
            ~spec:Protocol.quasi_push ~max_rounds:1_000_000
        in
        [
          label;
          time_cell m_push;
          time_cell m_quasi;
          Printf.sprintf "%.2f" (Replicate.mean m_quasi /. Replicate.mean m_push);
        ])
      families
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          "quasirandom push cycles each vertex's neighbor list from a random \
           start: O(log deg) random bits per vertex instead of per round";
          "Doerr-Friedrich-Sauerwald [19]: same O(log n) order on expanders \
           and hypercubes; on the star it removes the coupon-collector \
           factor entirely (ratio ~ 1 / ln n)";
        ]
      ~title:"R3: quasirandom vs fully random push"
      ~claim:
        "Section 2 (related work [19]): quasirandom rumor spreading matches \
         push's broadcast time with exponentially fewer random bits"
      ~header:[ "graph"; "push"; "quasi-push"; "quasi/push" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* R4: COBRA walks — branching factor sweep (Section 2; [7], [36])     *)
(* ------------------------------------------------------------------ *)

let r4_run profile ~seed =
  let n = pick profile ~quick:1024 ~full:4096 in
  let d = max 6 (ilog2 n) in
  let branchings = [ 1; 2; 3; 4 ] in
  let rows =
    List.mapi
      (fun i branching ->
        let graph rng = (Gen_random.random_regular_connected rng ~n ~d, 0) in
        let m =
          measure_cell ~seed:(cell_seed seed i 0) ~reps:(reps profile) ~graph
            ~spec:(Protocol.Cobra { branching })
            ~max_rounds:(200 * n)
        in
        [
          string_of_int branching;
          time_cell m;
          Printf.sprintf "%.2f" (Replicate.mean m /. log (float_of_int n));
        ])
      branchings
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      ~notes:
        [
          Printf.sprintf "random %d-regular, n = %d; branching 1 is a plain \
                          random walk (cover time Theta(n log n))" d n;
          "Berenbrink-Giakkoupis-Kling [7]: branching 2 covers regular \
           expanders in O(log n) rounds — the T / ln n column collapses from \
           ~n to a small constant as soon as branching exceeds 1";
        ]
      ~title:"R4: COBRA walk cover time vs branching factor"
      ~claim:
        "Section 2 (related work [7], [36]): coalescing-branching walks with \
         branching >= 2 cover regular expanders exponentially faster than a \
         single walk"
      ~header:[ "branching"; "cover time"; "T / ln n" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* R5: the frog model vs the paper's agent protocols (Section 2; [3])  *)
(* ------------------------------------------------------------------ *)

let r5_run profile ~seed =
  let families =
    let n = pick profile ~quick:1024 ~full:4096 in
    let d = max 6 (ilog2 n) in
    let side = pick profile ~quick:24 ~full:48 in
    [
      ( Printf.sprintf "random %d-regular n=%d" d n,
        (fun rng -> (Gen_random.random_regular_connected rng ~n ~d, 0)),
        100 * n );
      ( Printf.sprintf "torus %dx%d" side side,
        (fun _rng -> (Gen_basic.torus ~rows:side ~cols:side, 0)),
        500 * side * side );
    ]
  in
  let specs =
    [
      Protocol.frog ();
      Protocol.Visit_exchange
        { agents = Placement.One_per_vertex; laziness = Protocol.Lazy_off };
      Protocol.Meet_exchange
        { agents = Placement.One_per_vertex; laziness = Protocol.Lazy_auto };
    ]
  in
  let rows =
    List.mapi
      (fun i (label, graph, cap) ->
        let cells =
          List.mapi
            (fun j spec ->
              let m =
                measure_cell ~seed:(cell_seed seed i j) ~reps:(reps profile) ~graph
                  ~spec ~max_rounds:cap
              in
              time_cell m)
            specs
        in
        label :: cells)
      families
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          "all three processes start one agent per vertex; they differ in \
           who moves and who stores: frogs sleep until visited, \
           visit-exchange moves everyone and stores at vertices, \
           meet-exchange moves everyone and stores only at agents";
        ]
      ~title:"R5: frog model vs visit-exchange vs meet-exchange"
      ~claim:
        "Section 2 (related work [3], [29], [40]): the frog model is the \
         sleeping-agent sibling of the paper's protocols"
      ~header:[ "graph"; "frog"; "visit-exchange"; "meet-exchange" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* R6: push-pull vs the conductance bound (Section 2; [11])            *)
(* ------------------------------------------------------------------ *)

let r6_run profile ~seed =
  let families =
    [
      ("complete n=128", Gen_basic.complete 128, 0);
      ("hypercube n=256", Gen_basic.hypercube ~dim:8, 0);
      ("torus 12x12", Gen_basic.torus ~rows:12 ~cols:12, 0);
      ("necklace 16x8", Gen_basic.necklace ~cliques:16 ~clique_size:8, 0);
      ( "double star n=130",
        (Gen_paper.double_star ~leaves_per_star:64).Gen_paper.ds_graph,
        2 );
      ("cycle n=128", Gen_basic.cycle 128, 0);
    ]
  in
  let rows =
    List.mapi
      (fun i (label, g, source) ->
        let n = Graph.n g in
        let phi = Rumor_graph.Spectral.conductance_sweep ~iterations:2000 g in
        let bound = log (float_of_int n) /. phi in
        let m =
          measure_cell ~seed:(cell_seed seed i 0) ~reps:(reps profile)
            ~graph:(fun _rng -> (g, source))
            ~spec:Protocol.push_pull ~max_rounds:(1000 * n)
        in
        let t = Replicate.mean m in
        [
          label;
          time_cell m;
          Printf.sprintf "%.4f" phi;
          Printf.sprintf "%.0f" bound;
          Printf.sprintf "%.2f" (t /. bound);
        ])
      families
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          "phi is the sweep-cut conductance estimate (exact on the \
           bottleneck families); the bound is (1/phi) ln n";
          "Chierichetti et al. [11]: T_ppull = O(phi^-1 log n) — the last \
           column must stay bounded by a constant across four orders of \
           magnitude of phi";
        ]
      ~title:"R6: push-pull against the conductance bound"
      ~claim:
        "Section 2 (related work [11]): push-pull completes in O(phi^-1 log \
         n) rounds on any graph with conductance phi"
      ~header:[ "graph"; "push-pull"; "phi"; "ln n / phi"; "T*phi/ln n" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* R7: meet-exchange vs the exact meeting time (Section 2; [16])       *)
(* ------------------------------------------------------------------ *)

let r7_run profile ~seed =
  let families =
    [
      ("complete n=24", Gen_basic.complete 24, false);
      ("cycle n=25", Gen_basic.cycle 25, false);
      ("torus 5x5", Gen_basic.torus ~rows:5 ~cols:5, false);
      ("lollipop 12+12", Gen_basic.lollipop ~clique_size:12 ~tail_len:12, false);
      ("star n=25 (lazy)", Gen_basic.star ~leaves:24, true);
    ]
  in
  let reps = reps profile in
  let rows =
    List.mapi
      (fun i (label, g, lazy_walk) ->
        let n = Graph.n g in
        let meeting = Rumor_graph.Hitting.max_meeting_time ~lazy_walk g in
        (* two agents: the regime of the [16] bound *)
        let master = Rng.of_int (cell_seed seed i 0) in
        let stats = Stats.create () in
        for _ = 1 to reps do
          let rng = Rng.split master in
          let r =
            P.Meet_exchange.run ~lazy_walk rng g ~source:0
              ~agents:(Placement.Stationary 2)
              ~max_rounds:(int_of_float (2000.0 *. meeting))
              ()
          in
          match r.P.Run_result.broadcast_time with
          | Some t -> Stats.add_int stats t
          | None -> ()
        done;
        let t = Stats.mean stats in
        [
          label;
          Printf.sprintf "%.1f" t;
          Printf.sprintf "%.1f" meeting;
          Printf.sprintf "%.0f" (meeting *. log (float_of_int n));
          Printf.sprintf "%.2f" (t /. (meeting *. log (float_of_int n)));
        ])
      families
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          "M is the exact maximum expected meeting time of two walks, \
           computed by solving the product-chain linear system \
           (Rumor_graph.Hitting); T is measured with exactly 2 agents";
          "Dimitriou-Nikoletseas-Spirakis [16]: T_meetx = O(M log n), and \
           the bound is tight on some graphs — the last column stays below \
           a small constant";
        ]
      ~title:"R7: meet-exchange (2 agents) vs the exact meeting time"
      ~claim:
        "Section 2 (related work [16]): the meet-exchange broadcast time is \
         at most O(log n) times the meeting time of two random walks"
      ~header:[ "graph"; "T_meetx"; "M (exact)"; "M ln n"; "T / (M ln n)" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* R8: a stream of rumors over one agent population (Section 1)        *)
(* ------------------------------------------------------------------ *)

let r8_run profile ~seed =
  let n = pick profile ~quick:1024 ~full:4096 in
  let d = max 6 (ilog2 n) in
  let reps = reps profile in
  let rumor_count = 32 in
  let gap_between = 5 in
  let master = Rng.of_int (cell_seed seed 0 0) in
  let stream_stats = Stats.create () in
  let single_stats = Stats.create () in
  for _ = 1 to reps do
    let rng = Rng.split master in
    let g = Gen_random.random_regular_connected rng ~n ~d in
    (* a stream: rumor i injected at round 5i from a rotating source *)
    let injections =
      Array.init rumor_count (fun i ->
          {
            P.Multi_rumor.rumor_source = i * 7 mod n;
            start_round = i * gap_between;
          })
    in
    let r =
      P.Multi_rumor.run rng g ~injections ~agents:(Placement.Linear alpha)
        ~max_rounds:100_000
    in
    Array.iter
      (fun t -> if t < max_int then Stats.add_int stream_stats t)
      r.P.Multi_rumor.per_rumor_time;
    (* baseline: one isolated rumor on the same graph *)
    let b =
      P.Visit_exchange.run rng g ~source:0 ~agents:(Placement.Linear alpha)
        ~max_rounds:100_000 ()
    in
    Stats.add_int single_stats (P.Run_result.time_exn b)
  done;
  let rows =
    [
      [
        Printf.sprintf "%d rumors, one every %d rounds" rumor_count gap_between;
        Printf.sprintf "%.1f" (Stats.mean stream_stats);
        Printf.sprintf "%.1f" (Stats.max_value stream_stats);
      ];
      [
        "single rumor (baseline)";
        Printf.sprintf "%.1f" (Stats.mean single_stats);
        Printf.sprintf "%.1f" (Stats.max_value single_stats);
      ];
    ]
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      ~notes:
        [
          Printf.sprintf "random %d-regular, n = %d, |A| = n shared by all rumors" d n;
          "per-rumor broadcast time is measured from each rumor's injection \
           round; matching the single-rumor baseline shows rumors ride the \
           same walks without slowing each other down — the paper's Section \
           1 motivation for stationary agent starts";
        ]
      ~title:"R8: a stream of rumors over one shared agent population"
      ~claim:
        "Section 1: \"several pieces of information are generated frequently \
         and distributed in parallel over time by the same set of agents\""
      ~header:[ "workload"; "mean per-rumor time"; "max" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* A8: continuous vs synchronized meet-exchange ([33], [34])           *)
(* ------------------------------------------------------------------ *)

let a8_run profile ~seed =
  let reps = reps profile in
  let n = pick profile ~quick:256 ~full:1024 in
  let families =
    [
      ("star (bipartite)", (fun _rng -> (Gen_basic.star ~leaves:(n - 1), 0)), true);
      ( "random regular",
        (fun rng ->
          (Gen_random.random_regular_connected rng ~n ~d:(max 6 (ilog2 n)), 0)),
        false );
    ]
  in
  let rows =
    List.mapi
      (fun i (label, graph, bipartite) ->
        let master = Rng.of_int (cell_seed seed i 0) in
        let cont = Stats.create () in
        let disc = Stats.create () in
        let disc_nonlazy_completed = ref 0 in
        for _ = 1 to reps do
          let rng = Rng.split master in
          let g, source = graph rng in
          (* ~lazy_walk:false on purpose: A8 studies the pure continuous
             process, where parity needs no lazy fix. *)
          (match
             (P.Async_meet_exchange.run ~lazy_walk:false rng g ~source
                ~agents:(Placement.Linear alpha) ~max_time:1e6)
               .P.Async_meet_exchange.broadcast_time
           with
          | Some t -> Stats.add cont t
          | None -> ());
          let d =
            P.Meet_exchange.run ~lazy_walk:true rng g ~source
              ~agents:(Placement.Linear alpha) ~max_rounds:100_000 ()
          in
          (match d.P.Run_result.broadcast_time with
          | Some t -> Stats.add_int disc t
          | None -> ());
          let nl =
            P.Meet_exchange.run ~lazy_walk:false rng g ~source
              ~agents:(Placement.Linear alpha) ~max_rounds:2000 ()
          in
          if nl.P.Run_result.broadcast_time <> None then incr disc_nonlazy_completed
        done;
        [
          label;
          Printf.sprintf "%.1f" (Stats.mean cont);
          Printf.sprintf "%.1f" (Stats.mean disc);
          Printf.sprintf "%d/%d" !disc_nonlazy_completed reps;
          (if bipartite then "parity trap" else "-");
        ])
      families
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          "continuous time: each agent moves at the rings of a unit-rate \
           Poisson clock (the [33]/[34] model); one time unit = one expected \
           move per agent, comparable to a synchronous round";
          "on bipartite graphs the synchronized non-lazy process deadlocks \
           in parity classes; continuous time needs no laziness at all";
        ]
      ~title:"A8: continuous-time vs synchronized meet-exchange"
      ~claim:
        "Section 2 ([33], [34]) studies meet-exchange in continuous time; \
         the paper's lazy-walk fix (Section 3) exists only because of \
         synchronized rounds"
      ~header:
        [ "graph"; "continuous"; "discrete (lazy)"; "non-lazy done"; "remark" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* A9: sync/async push agree to a constant (Section 2, [41])           *)
(* ------------------------------------------------------------------ *)

(* The DES engine's end-to-end sanity gate.  Sauerwald [41] shows
   asynchronous push matches synchronous push asymptotically on regular
   graphs, and both are Theta(log n) on G(n,p) above the connectivity
   threshold — so the mean async/sync ratio must sit inside a fixed
   constant band.  Unlike A5 (which calls the legacy module directly),
   both columns here go through Protocol/measure_cell, so running the
   suite with --engine pushes the async column through Async_engine's
   calendar-queue/batched-clock path; the verdict column then doubles as
   a Theorem-level regression check on the engine itself. *)
let a9_run profile ~seed =
  let ns = pick profile ~quick:[ 256; 512 ] ~full:[ 512; 1024; 2048; 4096 ] in
  let reps = reps profile in
  let lo = 1.0 /. 3.0 and hi = 3.0 in
  (* p = 2 ln n / n is comfortably above the ln n / n threshold; resample
     the rare disconnected draw like random_regular_connected does *)
  let connected_er rng ~n ~p =
    let rec go () =
      let g = Gen_random.erdos_renyi rng ~n ~p in
      if Rumor_graph.Algo.is_connected g then g else go ()
    in
    go ()
  in
  let models =
    [
      ( "G(n,p)",
        fun n ->
          let p = 2.0 *. log (float_of_int n) /. float_of_int n in
          fun rng -> (connected_er rng ~n ~p, 0) );
      ( "random regular",
        fun n ->
          let d = max 6 (ilog2 n) in
          fun rng -> (Gen_random.random_regular_connected rng ~n ~d, 0) );
    ]
  in
  let rows =
    List.concat
      (List.mapi
         (fun mi (model, graph_of_n) ->
           List.mapi
             (fun ni n ->
               let i = (mi * List.length ns) + ni in
               let graph = graph_of_n n in
               let m_sync =
                 measure_cell ~seed:(cell_seed seed i 0) ~reps ~graph
                   ~spec:Protocol.push ~max_rounds:100_000
               in
               let m_async =
                 measure_cell ~seed:(cell_seed seed i 1) ~reps ~graph
                   ~spec:Protocol.async_push ~max_rounds:100_000
               in
               let ratio = Replicate.mean m_async /. Replicate.mean m_sync in
               [
                 model;
                 string_of_int n;
                 time_cell m_sync;
                 time_cell m_async;
                 Printf.sprintf "%.2f" ratio;
                 (if ratio >= lo && ratio <= hi then "ok" else "FAIL");
               ])
             ns)
         models)
  in
  [
    Table.make
      ~aligns:
        [
          Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right;
        ]
      ~notes:
        [
          "async push times are continuous and rounded up to integer marks \
           by to_run_result; one time unit = one expected clock ring per \
           vertex, directly comparable to a synchronous round";
          Printf.sprintf
            "verdict is ok iff the mean async/sync ratio lies in [%.2f, %.2f] \
             — the constant band the asymptotic agreement predicts" lo hi;
          "with --engine the async column runs on the calendar-queue DES \
           engine (Async_engine), making this a Theorem-level engine check";
        ]
      ~title:"A9: sync vs async push on G(n,p) and random regular"
      ~claim:
        "Section 2 ([41]): asynchronous push completes within a constant \
         factor of synchronous push on G(n,p) and random-regular graphs"
      ~header:[ "graph"; "n"; "sync push"; "async push"; "async/sync"; "verdict" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* A10: dense vs sparse walker representations agree distributionally  *)
(* ------------------------------------------------------------------ *)

(* The sparse-walker engine's end-to-end sanity gate.  Count-compressed
   occupancy is exchangeable with per-agent positions up to informed
   status, so the broadcast-time distribution must be the same law; the
   representations only reshuffle which walker takes which step.  The
   finite-sample analogue: paired dense/sparse cells on the same seeds
   must have mean broadcast times within a fixed constant band.  We use
   the golden ratio phi as the (generous) band edge — any representation
   bug (mass leak, lost witness, wrong self-loop slot) blows far past
   it, while honest sampling noise at these reps sits well inside. *)
let a10_run profile ~seed =
  let n = pick profile ~quick:256 ~full:1024 in
  let reps = reps profile in
  let seeds_per_cell = 3 in
  let phi = 1.618033988749895 in
  let lo = 1.0 /. phi and hi = phi in
  let connected_er rng ~n ~p =
    let rec go () =
      let g = Gen_random.erdos_renyi rng ~n ~p in
      if Rumor_graph.Algo.is_connected g then g else go ()
    in
    go ()
  in
  let side = int_of_float (Float.round (sqrt (float_of_int n))) in
  let families =
    [
      ( "complete",
        let g = Gen_basic.complete n in
        fun _rng -> (g, 0) );
      ( Printf.sprintf "torus %dx%d" side side,
        let g = Gen_basic.torus ~rows:side ~cols:side in
        fun _rng -> (g, 0) );
      ( "G(n,p)",
        let p = 2.0 *. log (float_of_int n) /. float_of_int n in
        fun rng -> (connected_er rng ~n ~p, 0) );
      ( "random regular",
        let d = max 6 (ilog2 n) in
        fun rng -> (Gen_random.random_regular_connected rng ~n ~d, 0) );
    ]
  in
  let specs = [ ("visit-exchange", vx); ("meet-exchange", mx) ] in
  (* Both columns force the engine path; only [walkers] differs.  The same
     cell seed drives the dense and sparse measurement of a pair, so the
     comparison is paired: same graphs, same placements, independent walk
     randomness past the divergence point. *)
  let measure_walkers ~walkers ~seed ~graph ~spec =
    Replicate.broadcast_times ?sink:!metrics_sink ~jobs:!current_jobs
      ?trace:!current_trace ~engine:true ~walkers ~seed ~reps ~graph ~spec
      ~max_rounds:(100 * n) ()
  in
  let rows =
    List.concat
      (List.mapi
         (fun fi (family, graph) ->
           List.mapi
             (fun si (sname, spec) ->
               let i = (fi * List.length specs) + si in
               let mean_over walkers =
                 let acc = ref 0.0 in
                 for s = 0 to seeds_per_cell - 1 do
                   let m =
                     measure_walkers ~walkers ~seed:(cell_seed seed i s) ~graph
                       ~spec
                   in
                   acc := !acc +. Replicate.mean m
                 done;
                 !acc /. float_of_int seeds_per_cell
               in
               let dense = mean_over Protocol.Dense in
               let sparse = mean_over Protocol.Sparse in
               let ratio = sparse /. dense in
               [
                 family;
                 sname;
                 Printf.sprintf "%.1f" dense;
                 Printf.sprintf "%.1f" sparse;
                 Printf.sprintf "%.2f" ratio;
                 (if ratio >= lo && ratio <= hi then "ok" else "FAIL");
               ])
             specs)
         families)
  in
  [
    Table.make
      ~aligns:
        [
          Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right;
        ]
      ~notes:
        [
          Printf.sprintf
            "n = %d, %d base seeds x %d replications per cell; both columns \
             run the engine kernels, dense per-agent positions vs \
             count-compressed per-vertex occupancy" n seeds_per_cell reps;
          Printf.sprintf
            "verdict is ok iff the mean sparse/dense broadcast-time ratio \
             lies in [%.3f, %.3f] (the golden-ratio band); the \
             representations sample the same process, so only a kernel bug \
             moves the mean" lo hi;
          "sparse runs are seed-deterministic but not bit-identical to \
           dense — this distributional gate is the contract (see \
           Sparse_walkers)";
        ]
      ~title:"A10: dense vs sparse walker distributional gate"
      ~claim:
        "Count-compressed occupancy kernels (Sparse_walkers) simulate the \
         same visit-/meet-exchange processes as the per-agent dense \
         kernels: broadcast-time means agree within a constant band on \
         every graph family"
      ~header:[ "graph"; "protocol"; "dense"; "sparse"; "sparse/dense"; "verdict" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* R9: social-network models — push-pull beats push ([12], [17])       *)
(* ------------------------------------------------------------------ *)

let r9_run profile ~seed =
  let ns = pick profile ~quick:[ 512; 1024; 2048 ] ~full:[ 512; 1024; 2048; 4096; 8192 ] in
  let m = 4 in
  let rows =
    List.mapi
      (fun i n ->
        let graph rng = (Gen_random.preferential_attachment rng ~n ~m, 0) in
        let m_push =
          measure_cell ~seed:(cell_seed seed i 0) ~reps:(reps profile) ~graph
            ~spec:Protocol.push ~max_rounds:(100 * n)
        in
        let m_ppull =
          measure_cell ~seed:(cell_seed seed i 1) ~reps:(reps profile) ~graph
            ~spec:Protocol.push_pull ~max_rounds:(100 * n)
        in
        let m_vx =
          measure_cell ~seed:(cell_seed seed i 2) ~reps:(reps profile) ~graph
            ~spec:vx ~max_rounds:(100 * n)
        in
        [
          string_of_int n;
          time_cell m_push;
          time_cell m_ppull;
          Printf.sprintf "%.2f" (Replicate.mean m_push /. Replicate.mean m_ppull);
          time_cell m_vx;
        ])
      ns
  in
  [
    Table.make
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~notes:
        [
          Printf.sprintf
            "Barabasi-Albert preferential attachment, m = %d edges per new \
             vertex (power-law degrees)" m;
          "Chierichetti-Lattanzi-Panconesi [12] and Doerr-Fouz-Friedrich \
           [17]: push-pull is fast (even sublogarithmic) on \
           preferential-attachment graphs while push pays for the hubs' \
           coupon collection — the push/push-pull ratio should grow with n";
        ]
      ~title:"R9: push vs push-pull on preferential-attachment graphs"
      ~claim:
        "Section 1/2 (related work [12], [17]): push-pull is significantly \
         faster than push on social-network models"
      ~header:[ "n"; "push"; "push-pull"; "push/ppull"; "visit-exchange" ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let all =
  [
    { id = "E1"; title = "star"; paper_ref = "Fig 1(a), Lemma 2"; run = e1_run };
    { id = "E2"; title = "double star"; paper_ref = "Fig 1(b), Lemma 3"; run = e2_run };
    { id = "E3"; title = "heavy binary tree"; paper_ref = "Fig 1(c), Lemma 4"; run = e3_run };
    { id = "E4"; title = "Siamese heavy trees"; paper_ref = "Fig 1(d), Lemma 8"; run = e4_run };
    { id = "E5"; title = "cycle of stars of cliques"; paper_ref = "Fig 1(e), Lemma 9"; run = e5_run };
    { id = "E6"; title = "push ~ visit-exchange on regular graphs"; paper_ref = "Theorem 1 (10, 19)"; run = e6_run };
    { id = "E7"; title = "visit-exchange vs meet-exchange"; paper_ref = "Theorem 23"; run = e7_run };
    { id = "E8"; title = "logarithmic lower bounds"; paper_ref = "Theorems 24, 25"; run = e8_run };
    { id = "E9"; title = "coupling invariants"; paper_ref = "Section 5, Lemmas 13/14"; run = e9_run };
    { id = "E10"; title = "push-pull + visit-exchange combination"; paper_ref = "Section 1"; run = e10_run };
    { id = "A1"; title = "agent density ablation"; paper_ref = "Section 9"; run = a1_run };
    { id = "A2"; title = "lazy walk ablation"; paper_ref = "Section 3"; run = a2_run };
    { id = "A3"; title = "placement ablation"; paper_ref = "Section 1"; run = a3_run };
    { id = "A4"; title = "bandwidth fairness ablation"; paper_ref = "Section 1"; run = a4_run };
    { id = "A5"; title = "sync vs async rumor spreading"; paper_ref = "Section 2, [41]"; run = a5_run };
    { id = "A6"; title = "dynamic agents under churn"; paper_ref = "Section 9"; run = a6_run };
    { id = "A7"; title = "push under transmission failures"; paper_ref = "Lemma 4 via [22]"; run = a7_run };
    { id = "A8"; title = "continuous-time meet-exchange"; paper_ref = "Section 2, [33], [34]"; run = a8_run };
    { id = "A9"; title = "sync vs async push constant-factor gate"; paper_ref = "Section 2, [41]"; run = a9_run };
    { id = "A10"; title = "dense vs sparse walker distributional gate"; paper_ref = "Sections 3, 9"; run = a10_run };
    { id = "R1"; title = "sub-linear agents, random regular"; paper_ref = "Section 9, [14]"; run = r1_run };
    { id = "R2"; title = "sub-linear agents, 2-d torus"; paper_ref = "Section 2, [39]"; run = r2_run };
    { id = "R3"; title = "quasirandom push"; paper_ref = "Section 2, [19]"; run = r3_run };
    { id = "R4"; title = "COBRA walk branching"; paper_ref = "Section 2, [7], [36]"; run = r4_run };
    { id = "R5"; title = "frog model comparison"; paper_ref = "Section 2, [3], [40]"; run = r5_run };
    { id = "R6"; title = "push-pull vs conductance bound"; paper_ref = "Section 2, [11]"; run = r6_run };
    { id = "R7"; title = "meet-exchange vs exact meeting time"; paper_ref = "Section 2, [16]"; run = r7_run };
    { id = "R8"; title = "multi-rumor stream"; paper_ref = "Section 1"; run = r8_run };
    { id = "R9"; title = "social-network models"; paper_ref = "Section 2, [12], [17]"; run = r9_run };
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> String.uppercase_ascii e.id = id) all

let run_all ?ids ?metrics ?trace ?(jobs = 1) ?(engine = false)
    ?(walkers = Protocol.Dense) profile ~seed =
  let selected =
    match ids with
    | None -> all
    | Some wanted ->
        List.filter_map
          (fun id ->
            match find id with
            | Some e -> Some e
            | None -> invalid_arg (Printf.sprintf "Experiments.run_all: unknown id %s" id))
          wanted
  in
  let run_one e =
    let go () =
      match metrics with
      | None -> e.run profile ~seed
      | Some sink ->
          (* label each record with the experiment id, which is more useful
             downstream than the anonymous per-cell graph closures *)
          with_metrics_sink
            (fun r -> sink { r with Rumor_obs.Run_record.graph = e.id })
            (fun () -> e.run profile ~seed)
    in
    (* one span per experiment, so the trace timeline reads as E1, E2, ... *)
    Rumor_obs.Trace.with_span trace e.id go
  in
  let with_opt_trace f =
    match trace with None -> f () | Some tr -> with_trace tr f
  in
  with_opt_trace (fun () ->
      with_engine engine (fun () ->
          with_walkers walkers (fun () ->
              with_jobs jobs (fun () ->
                  List.map (fun e -> (e, run_one e)) selected))))
