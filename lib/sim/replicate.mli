(** Replicated measurements with independent, reproducible random streams.

    The paper's statements are "in expectation" and "w.h.p."; their
    finite-sample analogue is the mean/median over independent replications.
    Each replication gets a generator split off a master seed, so a whole
    table is reproducible from one integer.

    Replications are embarrassingly parallel and the [?jobs] argument runs
    them on a {!Rumor_par.Pool} of that many domains.  The child generators
    are pre-split in rep order on the master ({!Rumor_prob.Rng.split_n})
    and every observable effect — [record]/[sink] calls, capped counting,
    the [`Fail] raise — happens in ascending rep order after the workers
    join, so any [jobs] value produces bit-identical results and identical
    sink streams. *)

(** A replicated broadcast-time measurement. *)
type measurement = {
  times : float array;
      (** per-replication broadcast times; under [`Keep] (the default) a
          capped run contributes its round cap — an under-estimate.  Check
          [capped] before trusting the summary, or pass [~on_capped:`Fail]
          to refuse silently biased measurements. *)
  capped : int;  (** number of replications that hit the round cap *)
  summary : Rumor_prob.Stats.summary;
}

exception Capped of { rep : int; rounds_run : int }
(** Raised by [~on_capped:`Fail] when replication [rep] ends without full
    broadcast after [rounds_run] rounds.  [rep] is the lowest-numbered
    capped replication regardless of [jobs]. *)

val measure :
  ?on_capped:[ `Keep | `Fail ] ->
  ?record:
    (rep:int ->
    result:Rumor_protocols.Run_result.t ->
    wall_seconds:float ->
    gc:Rumor_obs.Run_record.gc_counters ->
    unit) ->
  ?jobs:int ->
  ?trace:Rumor_obs.Trace.t ->
  seed:int ->
  reps:int ->
  (trace:Rumor_obs.Trace.t option ->
  rep:int ->
  Rumor_prob.Rng.t ->
  Rumor_protocols.Run_result.t) ->
  measurement
(** [measure ~seed ~reps f] calls [f ~rep] with [reps] independent
    generators, one per replication, on [jobs] domains (default [1] =
    sequential in the calling domain; [0] = all cores).

    [on_capped] decides what a run that hit its round cap does: [`Keep]
    (default) folds its [rounds_run] into [times] and counts it in
    [capped]; [`Fail] raises {!Capped} instead.  [record] is called once
    per replication in ascending rep order — capped or not, before the
    [`Fail] check — with the raw result plus wall-clock and GC-allocation
    cost of that run (both measured on the domain that ran it).

    [?trace] records each replication as a ["rep"] span (its [arg] is the
    rep index) on the track of the domain that ran it; [f] receives that
    domain's tracer so the work inside the rep can trace too, and [None]
    when tracing is off.  Tracing never touches the replication generators,
    so traced and untraced measurements are bit-identical.
    @raise Invalid_argument if [reps <= 0] or [jobs < 0]. *)

val broadcast_times :
  ?on_capped:[ `Keep | `Fail ] ->
  ?sink:Rumor_obs.Run_record.sink ->
  ?graph_name:string ->
  ?jobs:int ->
  ?trace:Rumor_obs.Trace.t ->
  ?engine:bool ->
  ?walkers:Protocol.walkers ->
  ?shards:int ->
  seed:int ->
  reps:int ->
  graph:(Rumor_prob.Rng.t -> Rumor_graph.Graph.t * int) ->
  spec:Protocol.spec ->
  max_rounds:int ->
  unit ->
  measurement
(** Convenience wrapper: [graph rng] builds (or re-samples, for random
    models) the graph and source for each replication, then [spec] runs on
    it.  The same split generator drives graph sampling and the protocol, so
    replications are fully independent.

    [sink] receives one {!Rumor_obs.Run_record.t} per replication, labelled
    with [graph_name] (default ["custom"]) and [Protocol.name spec], always
    in ascending rep order: a JSONL sink written under [jobs > 1] is
    byte-identical to the sequential one up to the per-rep [wall_seconds]
    and [gc] timing fields.

    [?trace] threads through {!measure}'s per-rep spans and on into the
    graph build (a ["graph.build"] span per replication) and the protocol
    run (engine per-round instrumentation via {!Protocol.run_engine}, or a
    single ["run.<protocol>"] span on the legacy path).

    [~engine:true] routes each replication through {!Protocol.run_engine}
    (the flat-frontier kernels) instead of {!Protocol.run}; with the default
    [?shards] (1) every record is bit-identical to the legacy path, so
    flipping the flag is a pure performance choice.  [?shards] with
    [engine] re-keys randomness per round as documented on
    {!Protocol.run_engine}; the sharded work itself runs sequentially
    inside each replication (the [?jobs] pool already owns the domains).
    [?walkers] (engine path only) selects the walker representation for the
    agent-based kernels; [Sparse]/[Auto]-resolved-sparse runs stay
    seed-deterministic but are not bit-identical to the dense records. *)

val mean : measurement -> float
val median : measurement -> float
val max_time : measurement -> float
