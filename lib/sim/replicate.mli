(** Replicated measurements with independent, reproducible random streams.

    The paper's statements are "in expectation" and "w.h.p."; their
    finite-sample analogue is the mean/median over independent replications.
    Each replication gets a generator split off a master seed, so a whole
    table is reproducible from one integer. *)

(** A replicated broadcast-time measurement. *)
type measurement = {
  times : float array;
      (** per-replication broadcast times; under [`Keep] (the default) a
          capped run contributes its round cap — an under-estimate.  Check
          [capped] before trusting the summary, or pass [~on_capped:`Fail]
          to refuse silently biased measurements. *)
  capped : int;  (** number of replications that hit the round cap *)
  summary : Rumor_prob.Stats.summary;
}

exception Capped of { rep : int; rounds_run : int }
(** Raised by [~on_capped:`Fail] when replication [rep] ends without full
    broadcast after [rounds_run] rounds. *)

val measure :
  ?on_capped:[ `Keep | `Fail ] ->
  ?record:
    (rep:int ->
    result:Rumor_protocols.Run_result.t ->
    wall_seconds:float ->
    gc:Rumor_obs.Run_record.gc_counters ->
    unit) ->
  seed:int ->
  reps:int ->
  (Rumor_prob.Rng.t -> Rumor_protocols.Run_result.t) ->
  measurement
(** [measure ~seed ~reps f] calls [f] with [reps] independent generators.

    [on_capped] decides what a run that hit its round cap does: [`Keep]
    (default) folds its [rounds_run] into [times] and counts it in
    [capped]; [`Fail] raises {!Capped} instead.  [record] is called once
    per replication — capped or not, before the [`Fail] check — with the
    raw result plus wall-clock and GC-allocation cost of that run.
    @raise Invalid_argument if [reps <= 0]. *)

val broadcast_times :
  ?on_capped:[ `Keep | `Fail ] ->
  ?sink:Rumor_obs.Run_record.sink ->
  ?graph_name:string ->
  seed:int ->
  reps:int ->
  graph:(Rumor_prob.Rng.t -> Rumor_graph.Graph.t * int) ->
  spec:Protocol.spec ->
  max_rounds:int ->
  unit ->
  measurement
(** Convenience wrapper: [graph rng] builds (or re-samples, for random
    models) the graph and source for each replication, then [spec] runs on
    it.  The same split generator drives graph sampling and the protocol, so
    replications are fully independent.

    [sink] receives one {!Rumor_obs.Run_record.t} per replication, labelled
    with [graph_name] (default ["custom"]) and [Protocol.name spec]. *)

val mean : measurement -> float
val median : measurement -> float
val max_time : measurement -> float
