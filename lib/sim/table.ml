type align = Left | Right

type t = {
  title : string;
  claim : string;
  header : string list;
  aligns : align list;
  rows : string list list;
  notes : string list;
}

let make ?(aligns = []) ?(notes = []) ~title ~claim ~header rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Table.make: row width differs from header")
    rows;
  { title; claim; header; aligns; rows; notes }

let align_of t i = match List.nth_opt t.aligns i with Some a -> a | None -> Right

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  if t.claim <> "" then Buffer.add_string buf ("claim: " ^ t.claim ^ "\n");
  let cols = List.length t.header in
  let widths = Array.make cols 0 in
  let note_width row =
    List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row
  in
  note_width t.header;
  List.iter note_width t.rows;
  let render_row row =
    let cells = List.mapi (fun i cell -> pad (align_of t i) widths.(i) cell) row in
    Buffer.add_string buf (String.concat "  " cells);
    Buffer.add_char buf '\n'
  in
  render_row t.header;
  let rule = Array.to_list (Array.mapi (fun _ w -> String.make w '-') widths) in
  render_row rule;
  List.iter render_row t.rows;
  List.iter (fun n -> Buffer.add_string buf ("note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

(* lint: allow R3 — Table.print is an explicit stdout convenience for CLIs *)
let print t = print_string (render t)

let csv_escape field =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') field
  in
  if needs_quote then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let to_csv t =
  let line row = String.concat "," (List.map csv_escape row) ^ "\n" in
  String.concat "" (line t.header :: List.map line t.rows)

let markdown_escape field =
  String.concat "\\|" (String.split_on_char '|' field)

let to_markdown t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "**%s**\n\n" t.title);
  if t.claim <> "" then Buffer.add_string buf (Printf.sprintf "> %s\n\n" t.claim);
  let cells row = "| " ^ String.concat " | " (List.map markdown_escape row) ^ " |\n" in
  Buffer.add_string buf (cells t.header);
  let marker i =
    match align_of t i with Left -> ":---" | Right -> "---:"
  in
  Buffer.add_string buf
    ("|" ^ String.concat "|" (List.mapi (fun i _ -> marker i) t.header) ^ "|\n");
  List.iter (fun row -> Buffer.add_string buf (cells row)) t.rows;
  if not (List.is_empty t.notes) then begin
    Buffer.add_char buf '\n';
    List.iter (fun n -> Buffer.add_string buf ("- " ^ n ^ "\n")) t.notes
  end;
  Buffer.contents buf

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.1f" x

let fmt_mean_pm (s : Rumor_prob.Stats.summary) =
  let ci =
    if s.n < 2 then 0.0
    else 1.96 *. s.stddev /. sqrt (float_of_int s.n)
  in
  Printf.sprintf "%s ±%s" (fmt_float s.mean) (fmt_float ci)

let fmt_opt_time x ~capped =
  if capped then ">=" ^ fmt_float x else fmt_float x
