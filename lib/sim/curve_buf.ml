(* The buffer itself lives in Rumor_protocols (the protocol kernels are its
   writers and rumor_protocols cannot depend on rumor_sim); this alias keeps
   the simulation layer's public surface complete: curve production
   (Curve_buf) next to curve analysis (Curve_stats). *)

include Rumor_protocols.Curve_buf
