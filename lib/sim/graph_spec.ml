module Gen_basic = Rumor_graph.Gen_basic
module Gen_paper = Rumor_graph.Gen_paper
module Gen_random = Rumor_graph.Gen_random

type t =
  | Complete of int
  | Path of int
  | Cycle of int
  | Star of int
  | Double_star of int
  | Tree of int
  | Heavy_tree of int
  | Siamese of int
  | Csc of int
  | Grid of int * int
  | Torus of int * int
  | Hypercube of int
  | Necklace of int * int
  | Barbell of int * int
  | Lollipop of int * int
  | Random_regular of int * int
  | Er of int * float
  | Gnm of int * int
  | Ba of int * int

let families =
  [
    "complete"; "path"; "cycle"; "star"; "double-star"; "tree"; "heavy-tree";
    "siamese"; "csc"; "grid"; "torus"; "hypercube"; "necklace"; "barbell";
    "lollipop"; "random-regular"; "er"; "gnm"; "ba";
  ]

let parse text =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let family, args =
    match String.index_opt text ':' with
    | None -> (text, "")
    | Some i ->
        (String.sub text 0 i, String.sub text (i + 1) (String.length text - i - 1))
  in
  let ints sep =
    String.split_on_char sep args
    |> List.map String.trim
    |> List.map int_of_string_opt
  in
  let one_int k =
    match ints ',' with
    | [ Some a ] -> Ok (k a)
    | _ -> fail "%s expects one integer argument, got %S" family args
  in
  let two_ints sep k =
    match ints sep with
    | [ Some a; Some b ] -> Ok (k a b)
    | _ ->
        fail "%s expects two integers separated by %C, got %S" family sep args
  in
  match String.lowercase_ascii family with
  | "complete" -> one_int (fun n -> Complete n)
  | "path" -> one_int (fun n -> Path n)
  | "cycle" -> one_int (fun n -> Cycle n)
  | "star" -> one_int (fun l -> Star l)
  | "double-star" -> one_int (fun l -> Double_star l)
  | "tree" -> one_int (fun l -> Tree l)
  | "heavy-tree" -> one_int (fun l -> Heavy_tree l)
  | "siamese" -> one_int (fun l -> Siamese l)
  | "csc" -> one_int (fun k -> Csc k)
  | "grid" -> two_ints 'x' (fun r c -> Grid (r, c))
  | "torus" -> two_ints 'x' (fun r c -> Torus (r, c))
  | "hypercube" -> one_int (fun d -> Hypercube d)
  | "necklace" -> two_ints 'x' (fun c s -> Necklace (c, s))
  | "barbell" -> two_ints ',' (fun s b -> Barbell (s, b))
  | "lollipop" -> two_ints ',' (fun s t -> Lollipop (s, t))
  | "random-regular" -> two_ints ',' (fun n d -> Random_regular (n, d))
  | "gnm" -> two_ints ',' (fun n m -> Gnm (n, m))
  | "ba" -> two_ints ',' (fun n m -> Ba (n, m))
  | "er" -> (
      match String.split_on_char ',' args |> List.map String.trim with
      | [ n; p ] -> (
          match (int_of_string_opt n, float_of_string_opt p) with
          | Some n, Some p -> Ok (Er (n, p))
          | _ -> fail "er expects N,P (int, float), got %S" args)
      | _ -> fail "er expects N,P, got %S" args)
  | other -> fail "unknown graph family %S (known: %s)" other (String.concat ", " families)

let parse_exn text =
  match parse text with Ok t -> t | Error m -> invalid_arg ("Graph_spec: " ^ m)

let to_string = function
  | Complete n -> Printf.sprintf "complete:%d" n
  | Path n -> Printf.sprintf "path:%d" n
  | Cycle n -> Printf.sprintf "cycle:%d" n
  | Star l -> Printf.sprintf "star:%d" l
  | Double_star l -> Printf.sprintf "double-star:%d" l
  | Tree l -> Printf.sprintf "tree:%d" l
  | Heavy_tree l -> Printf.sprintf "heavy-tree:%d" l
  | Siamese l -> Printf.sprintf "siamese:%d" l
  | Csc k -> Printf.sprintf "csc:%d" k
  | Grid (r, c) -> Printf.sprintf "grid:%dx%d" r c
  | Torus (r, c) -> Printf.sprintf "torus:%dx%d" r c
  | Hypercube d -> Printf.sprintf "hypercube:%d" d
  | Necklace (c, s) -> Printf.sprintf "necklace:%dx%d" c s
  | Barbell (s, b) -> Printf.sprintf "barbell:%d,%d" s b
  | Lollipop (s, t) -> Printf.sprintf "lollipop:%d,%d" s t
  | Random_regular (n, d) -> Printf.sprintf "random-regular:%d,%d" n d
  | Er (n, p) -> Printf.sprintf "er:%d,%g" n p
  | Gnm (n, m) -> Printf.sprintf "gnm:%d,%d" n m
  | Ba (n, m) -> Printf.sprintf "ba:%d,%d" n m

let is_random = function
  | Random_regular _ | Er _ | Gnm _ | Ba _ -> true
  | Complete _ | Path _ | Cycle _ | Star _ | Double_star _ | Tree _
  | Heavy_tree _ | Siamese _ | Csc _ | Grid _ | Torus _ | Hypercube _
  | Necklace _ | Barbell _ | Lollipop _ -> false

let build ?trace rng spec =
  match spec with
  | Complete n -> (Gen_basic.complete n, 0)
  | Path n -> (Gen_basic.path n, 0)
  | Cycle n -> (Gen_basic.cycle n, 0)
  | Star l -> (Gen_basic.star ~leaves:l, 0)
  | Double_star l ->
      let ds = Gen_paper.double_star ~leaves_per_star:l in
      (ds.Gen_paper.ds_graph, ds.Gen_paper.ds_leaf_a)
  | Tree l -> (Gen_basic.complete_binary_tree ~levels:l, 0)
  | Heavy_tree l ->
      let ht = Gen_paper.heavy_binary_tree ~levels:l in
      (ht.Gen_paper.ht_graph, ht.Gen_paper.ht_first_leaf)
  | Siamese l ->
      let si = Gen_paper.siamese_heavy_tree ~levels:l in
      (si.Gen_paper.si_graph, si.Gen_paper.si_leaf_left)
  | Csc k ->
      let csc = Gen_paper.cycle_stars_cliques ~k in
      (csc.Gen_paper.csc_graph, csc.Gen_paper.csc_a_clique_vertex)
  | Grid (r, c) -> (Gen_basic.grid ~rows:r ~cols:c, 0)
  | Torus (r, c) -> (Gen_basic.torus ~rows:r ~cols:c, 0)
  | Hypercube d -> (Gen_basic.hypercube ~dim:d, 0)
  | Necklace (c, s) -> (Gen_basic.necklace ~cliques:c ~clique_size:s, 0)
  | Barbell (s, b) -> (Gen_basic.barbell ~clique_size:s ~bridge_len:b, 0)
  | Lollipop (s, t) -> (Gen_basic.lollipop ~clique_size:s ~tail_len:t, 0)
  | Random_regular (n, d) ->
      (Gen_random.random_regular_connected ?trace rng ~n ~d, 0)
  | Er (n, p) -> (Gen_random.erdos_renyi ?trace rng ~n ~p, 0)
  | Gnm (n, m) -> (Gen_random.gnm ?trace rng ~n ~m, 0)
  | Ba (n, m) -> (Gen_random.preferential_attachment ?trace rng ~n ~m, 0)
