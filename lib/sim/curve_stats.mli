(** Analytics over informed-count curves.

    Broadcast time is the curve's completion round; these helpers extract
    the intermediate milestones (time to reach a fraction of the
    population, per-round growth) that examples and ablations report. *)

val time_to_fraction_curve : ?completed:bool -> int array -> float -> int option
(** Curve-level form of {!time_to_fraction}, for curves that arrive without
    a [Run_result.t] around them (e.g. from a {!Rumor_obs.Run_record.t}).
    [completed] (default true) says whether the run finished; on a capped
    run the final count is the curve's own maximum, so milestones are only
    meaningful relative to what was actually reached. *)

val time_to_fraction : Rumor_protocols.Run_result.t -> float -> int option
(** [time_to_fraction r q] is the first round at which at least [q] of the
    final informed count is reached ([q] in (0, 1]); [None] for an empty
    curve or when the curve never reaches the fraction (capped runs).
    @raise Invalid_argument if [q] is outside (0, 1]. *)

val half_time : Rumor_protocols.Run_result.t -> int option
(** [time_to_fraction r 0.5]. *)

val growth_rates : Rumor_protocols.Run_result.t -> float array
(** [growth_rates r] is the per-round multiplicative growth
    [curve.(t) / curve.(t-1)] (rounds where the previous count was 0 yield
    [nan]).  The maximum of this array is the empirical "doubling quality"
    of the protocol on that instance. *)

val peak_growth : Rumor_protocols.Run_result.t -> float
(** Largest finite entry of {!growth_rates}; [1.0] for a single-round or
    flat curve. *)
