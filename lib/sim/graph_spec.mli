(** Textual graph specifications for the command-line tools.

    A spec is [family] or [family:args], where args are comma-separated
    integers/floats (dimensions use [RxC]).  Supported families:

    - ["complete:N"], ["path:N"], ["cycle:N"]
    - ["star:LEAVES"], ["double-star:LEAVES"] (leaves per star)
    - ["tree:LEVELS"], ["heavy-tree:LEVELS"], ["siamese:LEVELS"]
    - ["csc:K"] — cycle of stars of cliques with parameter k
    - ["grid:RxC"], ["torus:RxC"], ["hypercube:DIM"]
    - ["necklace:CLIQUESxSIZE"], ["barbell:SIZE,BRIDGE"],
      ["lollipop:SIZE,TAIL"]
    - ["random-regular:N,D"] (connected sample), ["er:N,P"], ["gnm:N,M"],
      ["ba:N,M"] (Barabási–Albert preferential attachment)

    Each family has a natural default source: the star center, a double-star
    leaf, a heavy-tree leaf, a clique vertex of the csc, vertex 0
    elsewhere. *)

type t

val parse : string -> (t, string) result
(** Parse a spec; the error is a human-readable message. *)

val parse_exn : string -> t
(** @raise Invalid_argument on a malformed spec. *)

val to_string : t -> string
(** Canonical rendering of the parsed spec. *)

val families : string list
(** All accepted family names, for help text. *)

val is_random : t -> bool
(** Whether building consumes randomness (random graph models). *)

val build :
  ?trace:Rumor_obs.Trace.t -> Rumor_prob.Rng.t -> t -> Rumor_graph.Graph.t * int
(** [build rng spec] materializes the graph and its default source.
    [trace] records the {!Rumor_graph.Graph.Builder} phase spans for the
    random families (the deterministic [Gen_basic]/[Gen_paper] families
    build through the same builder but are not individually traced). *)
