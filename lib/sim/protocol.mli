(** First-class protocol descriptors, so sweeps and tables can treat the
    four protocols (and the hybrid) uniformly. *)

type lazy_mode =
  | Lazy_off   (** simple random walks *)
  | Lazy_on    (** stay put with probability 1/2 each round *)
  | Lazy_auto  (** lazy iff the graph is bipartite — the paper's convention
                   for meet-exchange *)

type spec =
  | Push
  | Push_pull
  | Visit_exchange of { agents : Rumor_agents.Placement.spec; laziness : lazy_mode }
  | Meet_exchange of { agents : Rumor_agents.Placement.spec; laziness : lazy_mode }
  | Combined of { agents : Rumor_agents.Placement.spec; laziness : lazy_mode }
  | Pull  (** pull alone, the anti-entropy mirror of push [15] *)
  | Quasi_push  (** quasirandom rumor spreading, [19] *)
  | Cobra of { branching : int }  (** coalescing-branching walk, [7] *)
  | Frog of { frogs_per_vertex : int }  (** the frog model, [3, 40] *)
  | Flood  (** deterministic flooding: the eccentricity baseline *)
  | Async_push  (** continuous-time push: unit-rate Poisson clocks, [41] *)
  | Async_push_pull  (** continuous-time push-pull *)
  | Async_meet_exchange of {
      agents : Rumor_agents.Placement.spec;
      laziness : lazy_mode;
    }  (** continuous-time meet-exchange, [33, 34] *)

val push : spec
val push_pull : spec
val pull : spec
val quasi_push : spec
val cobra : ?branching:int -> unit -> spec
val frog : ?frogs_per_vertex:int -> unit -> spec
val flood : spec

val visit_exchange : ?alpha:float -> unit -> spec
(** Visit-exchange with [Linear alpha] stationary agents (default 1.0) and
    non-lazy walks. *)

val meet_exchange : ?alpha:float -> unit -> spec
(** Meet-exchange with [Linear alpha] agents and [Lazy_auto] walks. *)

val combined : ?alpha:float -> unit -> spec

val async_push : spec
val async_push_pull : spec

val async_meet_exchange : ?alpha:float -> unit -> spec
(** Continuous-time meet-exchange with [Linear alpha] agents (default 1.0)
    and [Lazy_auto] walks, mirroring {!meet_exchange}. *)

val name : spec -> string
(** Short stable name: "push", "push-pull", "visit-exchange",
    "pull", "meet-exchange", "combined", "quasi-push", "cobra", "frog",
    "flood", "async-push", "async-push-pull", "async-meet-exchange". *)

val run :
  ?traffic:Rumor_protocols.Traffic.t ->
  ?obs:Rumor_obs.Instrument.t ->
  spec ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  max_rounds:int ->
  Rumor_protocols.Run_result.t
(** Dispatch to the matching protocol implementation.  [traffic] is
    honoured by push, push-pull, pull, visit-exchange and meet-exchange;
    the remaining processes ignore it.  [obs] is honoured by every
    protocol: each fires {!Rumor_obs.Instrument} hooks once per round plus
    one [on_contact] per communication (and [on_walker_move] per agent step
    for the agent-based processes).

    The continuous-time specs ([Async_push], [Async_push_pull],
    [Async_meet_exchange]) read [max_rounds] as the time horizon
    [max_time = float max_rounds] and project the DES result through
    [to_run_result]: [broadcast_time] is the rounded-up continuous time,
    the curve samples the informed count at integer times.  They have no
    round structure, so [obs] fires no [on_round_start] hooks. *)

val engine_capable : spec -> bool
(** Whether {!run_engine} has a flat kernel for this spec (push,
    push-pull, visit-exchange, meet-exchange, combined, and the three
    continuous-time specs via {!Rumor_protocols.Async_engine}). *)

type walkers = Rumor_protocols.Sparse_walkers.mode = Dense | Sparse | Auto
(** Walker representation for the agent-based engine kernels — see
    {!Rumor_protocols.Engine}.  [Dense] keeps per-agent positions and the
    bit-identical-to-legacy contract; [Sparse] switches to count-compressed
    per-vertex occupancy (seed-deterministic, distributionally equivalent —
    gated by experiment A10 — but not bit-identical); [Auto] picks sparse
    above {!Rumor_protocols.Sparse_walkers.auto_threshold} agents. *)

val walkers_name : walkers -> string
val walkers_of_string : string -> walkers option

val run_engine :
  ?traffic:Rumor_protocols.Traffic.t ->
  ?obs:Rumor_obs.Instrument.t ->
  ?trace:Rumor_obs.Trace.t ->
  ?walkers:walkers ->
  ?shards:int ->
  ?pool:Rumor_par.Pool.t ->
  spec ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  max_rounds:int ->
  Rumor_protocols.Run_result.t
(** Like {!run} but dispatching the four core kernels to
    {!Rumor_protocols.Engine} (flat frontier arrays + bitset informed-state;
    memory O(n + m + rounds run)).  With the default [?shards:1] the result
    is bit-identical to {!run} on the same seed; [shards > 1] re-keys
    randomness per round ({!Rumor_prob.Rng.split_n}, one child per shard)
    and is a pure function of (seed, shards), independent of [?pool]'s
    parallelism.  The continuous-time specs dispatch to
    {!Rumor_protocols.Async_engine} (calendar queue + batched clocks),
    which is sequential and bit-identical to {!run} on the same seed for
    every [shards] value ([shards]/[pool] are ignored).  Specs without an
    engine kernel fall back to {!run}.
    [walkers] (default [Dense]) selects the walker representation for
    visit-exchange, meet-exchange and async-meet-exchange; the other specs
    (including combined, which is dense-only) ignore it.
    [trace] wraps the whole run in an ["engine.<name>"] span and threads
    through to the kernel's per-round instrumentation
    ({!Rumor_protocols.Engine}); it never changes the result. *)
