(** Growable informed-curve buffer — alias of {!Rumor_protocols.Curve_buf},
    re-exported so simulation-layer users find curve production next to
    curve analysis ({!Curve_stats}). *)

include module type of Rumor_protocols.Curve_buf
