module Placement = Rumor_agents.Placement
module P = Rumor_protocols

type lazy_mode = Lazy_off | Lazy_on | Lazy_auto

type spec =
  | Push
  | Push_pull
  | Visit_exchange of { agents : Placement.spec; laziness : lazy_mode }
  | Meet_exchange of { agents : Placement.spec; laziness : lazy_mode }
  | Combined of { agents : Placement.spec; laziness : lazy_mode }
  | Pull
  | Quasi_push
  | Cobra of { branching : int }
  | Frog of { frogs_per_vertex : int }
  | Flood
  | Async_push
  | Async_push_pull
  | Async_meet_exchange of { agents : Placement.spec; laziness : lazy_mode }

let push = Push
let push_pull = Push_pull
let pull = Pull
let quasi_push = Quasi_push
let cobra ?(branching = 2) () = Cobra { branching }
let frog ?(frogs_per_vertex = 1) () = Frog { frogs_per_vertex }
let flood = Flood

let visit_exchange ?(alpha = 1.0) () =
  Visit_exchange { agents = Placement.Linear alpha; laziness = Lazy_off }

let meet_exchange ?(alpha = 1.0) () =
  Meet_exchange { agents = Placement.Linear alpha; laziness = Lazy_auto }

let combined ?(alpha = 1.0) () =
  Combined { agents = Placement.Linear alpha; laziness = Lazy_off }

let async_push = Async_push
let async_push_pull = Async_push_pull

let async_meet_exchange ?(alpha = 1.0) () =
  Async_meet_exchange { agents = Placement.Linear alpha; laziness = Lazy_auto }

let name = function
  | Push -> "push"
  | Push_pull -> "push-pull"
  | Pull -> "pull"
  | Visit_exchange _ -> "visit-exchange"
  | Meet_exchange _ -> "meet-exchange"
  | Combined _ -> "combined"
  | Quasi_push -> "quasi-push"
  | Cobra _ -> "cobra"
  | Frog _ -> "frog"
  | Flood -> "flood"
  | Async_push -> "async-push"
  | Async_push_pull -> "async-push-pull"
  | Async_meet_exchange _ -> "async-meet-exchange"

let resolve_lazy laziness g =
  match laziness with
  | Lazy_off -> false
  | Lazy_on -> true
  | Lazy_auto -> Rumor_graph.Algo.is_bipartite g

let engine_capable = function
  | Push | Push_pull | Visit_exchange _ | Meet_exchange _ | Combined _ -> true
  | Async_push | Async_push_pull | Async_meet_exchange _ -> true
  | Pull | Quasi_push | Cobra _ | Frog _ | Flood -> false

type walkers = P.Sparse_walkers.mode = Dense | Sparse | Auto

let walkers_name = P.Sparse_walkers.mode_to_string
let walkers_of_string = P.Sparse_walkers.mode_of_string

let run ?traffic ?obs spec rng g ~source ~max_rounds =
  match spec with
  | Push -> P.Push.run ?traffic ?obs rng g ~source ~max_rounds ()
  | Push_pull -> P.Push_pull.run ?traffic ?obs rng g ~source ~max_rounds ()
  | Pull -> P.Pull.run ?traffic ?obs rng g ~source ~max_rounds ()
  | Visit_exchange { agents; laziness } ->
      let lazy_walk = resolve_lazy laziness g in
      P.Visit_exchange.run ?traffic ?obs ~lazy_walk rng g ~source ~agents
        ~max_rounds ()
  | Meet_exchange { agents; laziness } ->
      let lazy_walk = resolve_lazy laziness g in
      P.Meet_exchange.run ?traffic ?obs ~lazy_walk rng g ~source ~agents
        ~max_rounds ()
  | Combined { agents; laziness } ->
      let lazy_walk = resolve_lazy laziness g in
      P.Combined.run ?obs ~lazy_walk rng g ~source ~agents ~max_rounds ()
  | Quasi_push -> P.Quasi_push.run ?obs rng g ~source ~max_rounds ()
  | Cobra { branching } ->
      (P.Cobra.run ?obs rng g ~source ~branching ~max_rounds ()).P.Cobra.run_result
  | Frog { frogs_per_vertex } ->
      (P.Frog.run ?obs ~frogs_per_vertex rng g ~source ~max_rounds ())
        .P.Frog.run_result
  | Flood -> P.Flood.run ?obs g ~source ~max_rounds ()
  (* the continuous-time processes read [max_rounds] as a time horizon;
     like Combined they have no bandwidth model, so [traffic] is ignored *)
  | Async_push ->
      P.Async_push.to_run_result
        (P.Async_push.run ?obs rng g ~variant:P.Async_push.Async_push ~source
           ~max_time:(float_of_int max_rounds))
  | Async_push_pull ->
      P.Async_push.to_run_result
        (P.Async_push.run ?obs rng g ~variant:P.Async_push.Async_push_pull
           ~source ~max_time:(float_of_int max_rounds))
  | Async_meet_exchange { agents; laziness } ->
      let lazy_walk = resolve_lazy laziness g in
      P.Async_meet_exchange.to_run_result
        (P.Async_meet_exchange.run ?obs ~lazy_walk rng g ~source ~agents
           ~max_time:(float_of_int max_rounds))

let run_engine ?traffic ?obs ?trace ?walkers ?shards ?pool spec rng g ~source
    ~max_rounds =
  (* one top-level span per run, named after the protocol; the kernels hang
     their per-round spans under it *)
  Rumor_obs.Trace.with_span trace ("engine." ^ name spec) (fun () ->
      match spec with
      | Push ->
          P.Engine.push ?traffic ?obs ?trace ?shards ?pool rng g ~source
            ~max_rounds ()
      | Push_pull ->
          P.Engine.push_pull ?traffic ?obs ?trace ?shards ?pool rng g ~source
            ~max_rounds ()
      | Visit_exchange { agents; laziness } ->
          let lazy_walk = resolve_lazy laziness g in
          P.Engine.visit_exchange ?traffic ?obs ?trace ~lazy_walk ?walkers
            ?shards ?pool rng g ~source ~agents ~max_rounds ()
      | Meet_exchange { agents; laziness } ->
          let lazy_walk = resolve_lazy laziness g in
          P.Engine.meet_exchange ?traffic ?obs ?trace ~lazy_walk ?walkers
            ?shards ?pool rng g ~source ~agents ~max_rounds ()
      | Combined { agents; laziness } ->
          (* dense walkers only: the sparse representation has no combined
             kernel, so [walkers] is not forwarded here *)
          let lazy_walk = resolve_lazy laziness g in
          P.Engine.combined ?obs ?trace ~lazy_walk ?shards ?pool rng g ~source
            ~agents ~max_rounds ()
      (* the DES kernels are sequential: [shards]/[pool] are irrelevant (and
         ignored), and like [run] the continuous processes have no traffic
         model.  Bit-identical to [run] either way — see Async_engine. *)
      | Async_push ->
          P.Async_push.to_run_result
            (P.Async_engine.push ?obs ?trace rng g
               ~variant:P.Async_push.Async_push ~source
               ~max_time:(float_of_int max_rounds))
      | Async_push_pull ->
          P.Async_push.to_run_result
            (P.Async_engine.push ?obs ?trace rng g
               ~variant:P.Async_push.Async_push_pull ~source
               ~max_time:(float_of_int max_rounds))
      | Async_meet_exchange { agents; laziness } ->
          let lazy_walk = resolve_lazy laziness g in
          P.Async_meet_exchange.to_run_result
            (P.Async_engine.meet_exchange ?obs ?trace ~lazy_walk ?walkers rng g
               ~source ~agents ~max_time:(float_of_int max_rounds))
      | (Pull | Quasi_push | Cobra _ | Frog _ | Flood) as other ->
          (* no engine kernel (yet): fall back to the legacy implementation,
             which consumes the rng identically for every [shards] value *)
          run ?traffic ?obs other rng g ~source ~max_rounds)
