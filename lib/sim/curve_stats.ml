module Run_result = Rumor_protocols.Run_result

(* lint: hot *)
let time_to_fraction_curve ?(completed = true) curve q =
  if not (q > 0.0 && q <= 1.0) then
    invalid_arg "Curve_stats.time_to_fraction: fraction outside (0, 1]";
  let len = Array.length curve in
  if len = 0 then None
  else begin
    let target = q *. float_of_int curve.(len - 1) in
    let rec scan t =
      if t >= len then None
      else if float_of_int curve.(t) >= target then Some t
      else scan (t + 1)
    in
    (* a capped run's final count is its own maximum, so only report the
       milestone if the run completed or q refers to what was reached *)
    if completed then scan 0 else if target > 0.0 then scan 0 else None
  end

let time_to_fraction (r : Run_result.t) q =
  time_to_fraction_curve
    ~completed:(r.Run_result.broadcast_time <> None)
    r.Run_result.informed_curve q

let half_time r = time_to_fraction r 0.5

let growth_rates (r : Run_result.t) =
  let curve = r.Run_result.informed_curve in
  let len = Array.length curve in
  if len <= 1 then [||]
  else
    Array.init (len - 1) (fun i ->
        let prev = curve.(i) and next = curve.(i + 1) in
        if prev = 0 then nan else float_of_int next /. float_of_int prev)

let peak_growth r =
  Array.fold_left
    (fun acc x -> if Float.is_nan x then acc else Float.max acc x)
    1.0 (growth_rates r)
