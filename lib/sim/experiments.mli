(** The experiment suite: one experiment per figure panel / theorem of the
    paper (see DESIGN.md section 3 for the full index).

    - E1–E5 reproduce Figure 1(a)–(e) (Lemmas 2, 3, 4, 8, 9): the five
      separator families on which the protocols' broadcast times diverge
      polynomially or logarithmically.
    - E6–E8 reproduce the regular-graph results (Theorems 1/10/19, 23,
      24/25).
    - E9 exercises the Section 5 proof machinery (coupling, C-counters,
      Lemma 13/14 invariants) on random instances.
    - E10 checks the introduction's claim that combining push-pull with
      visit-exchange is fast on both families that defeat each component.
    - A1–A4 are ablations of design choices the paper calls out (agent
      density, lazy walks, initial placement, bandwidth fairness).

    All experiments are deterministic given [seed] and scale with the
    [profile]. *)

type profile =
  | Quick  (** small grids, few replications: seconds per experiment *)
  | Full   (** the grids reported in EXPERIMENTS.md: minutes overall *)

type t = {
  id : string;         (** "E1" ... "E10", "A1" ... "A4" *)
  title : string;
  paper_ref : string;  (** e.g. "Fig 1(b), Lemma 3" *)
  run : profile -> seed:int -> Table.t list;
}

val all : t list
(** Every experiment, in id order. *)

val find : string -> t option
(** Lookup by id, case-insensitive. *)

val run_all :
  ?ids:string list ->
  ?metrics:Rumor_obs.Run_record.sink ->
  ?trace:Rumor_obs.Trace.t ->
  ?jobs:int ->
  ?engine:bool ->
  ?walkers:Protocol.walkers ->
  profile ->
  seed:int ->
  (t * Table.t list) list
(** Run the selected (default: all) experiments and collect their tables.
    When [metrics] is given, every replicated cell measurement emits one
    {!Rumor_obs.Run_record.t} to it, with the record's [graph] field set to
    the experiment id (experiments build their graphs from closures, so the
    id is the most useful label available).

    [jobs] (default [1]; [0] = all cores) runs each cell's replications on
    that many domains via {!Replicate.broadcast_times} — tables and metrics
    are bit-identical for every setting.  Only the replicated cell
    measurements parallelize; the invariant-checking experiments (E9, A5–A8,
    R7, R8) drive their own sequential loops and ignore it.

    [engine] (default [false]) routes every measured cell through the
    flat-frontier kernels ({!Replicate.broadcast_times}'s [~engine]); cells
    are bit-identical either way, so the flag only changes wall-clock.

    [walkers] (default [Dense]) selects the walker representation for
    engine cells ({!Replicate.broadcast_times}'s [?walkers]); only
    meaningful with [engine].  [Sparse]/[Auto]-resolved-sparse cells are
    seed-deterministic but not bit-identical to dense — the A10 gate
    bounds the distributional drift.  A10 itself ignores this and always
    measures both representations explicitly.

    [trace] records every experiment as a span named by its id, with each
    measured cell's per-rep instrumentation underneath
    ({!Replicate.broadcast_times}'s [?trace]); results are unchanged. *)

val with_metrics_sink : Rumor_obs.Run_record.sink -> (unit -> 'a) -> 'a
(** [with_metrics_sink sink f] installs [sink] for the dynamic extent of
    [f]: every cell measured by any experiment run within emits its run
    records there.  Restores the previous sink afterwards, even on raise. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** [with_jobs jobs f] sets the replication parallelism degree for the
    dynamic extent of [f], like {!with_metrics_sink} does for the sink. *)

val with_engine : bool -> (unit -> 'a) -> 'a
(** [with_engine on f] routes measured cells through the engine kernels for
    the dynamic extent of [f] (same scoping as {!with_jobs}). *)

val with_walkers : Protocol.walkers -> (unit -> 'a) -> 'a
(** [with_walkers w f] sets the engine walker representation for measured
    cells within [f] (same scoping as {!with_jobs}; no effect unless the
    engine flag is also on). *)

val with_trace : Rumor_obs.Trace.t -> (unit -> 'a) -> 'a
(** [with_trace tr f] records every cell measured within [f] into [tr]
    (same scoping as {!with_jobs}). *)
