(** The two modified processes the regular-graph proofs analyse, as
    executable code.

    - {b t-visit-exchange} (Section 5.2, Eq. 3): after each round, if some
      vertex [u] has more than [gamma * d] agents in its neighborhood, a
      minimal set of agents is removed until the condition holds for every
      vertex.  Lemma 12 says that for [d = Omega(log n)] and a suitable
      constant [gamma] the clamp never fires in polynomially many rounds
      w.h.p. — so on the paper's graphs the process is indistinguishable
      from visit-exchange, which tests verify by checking [removed = 0].

    - {b r-visit-exchange} (Section 6.2, Eq. 10): before each odd round, if
      some vertex has fewer than [|A| d / 2n] agents in its neighborhood,
      new agents are added (at that vertex, adopting its informed state)
      until the condition holds.  Lemma 21 similarly says additions are
      never needed w.h.p. on the theorem's graphs.

    Both processes report how often and how much they intervened, so
    experiments can confirm the "w.h.p. nothing happens" lemmas and also
    exhibit graphs (the star) where the interventions are real. *)

type outcome = {
  result : Run_result.t;
  interventions : int;  (** agents removed (t-) or added (r-) in total *)
  first_intervention : int option;  (** round of the first clamp, if any *)
  final_agents : int;
}

val run_t_visit_exchange :
  ?lazy_walk:bool ->
  ?obs:Rumor_obs.Instrument.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  gamma:float ->
  max_rounds:int ->
  unit ->
  outcome
(** Eq. (3): enforce [sum over v in N(u) of |Z_v(t)| <= gamma * d_max] after
    every round by removing agents (uninformed first, then arbitrary).
    @raise Invalid_argument if [gamma <= 0.]. *)

val run_r_visit_exchange :
  ?lazy_walk:bool ->
  ?obs:Rumor_obs.Instrument.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  unit ->
  outcome
(** Eq. (10): before each odd round, ensure every vertex has at least
    [|A| * d(u) / (2n)] agents in its neighborhood by adding agents at the
    deficient vertex; an added agent adopts the vertex's informed state. *)
