module Graph = Rumor_graph.Graph
module Obs = Rumor_obs.Instrument

let run ?traffic ?obs rng g ~source ~max_rounds () =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Push_pull.run: source out of range";
  if max_rounds < 0 then invalid_arg "Push_pull.run: negative round cap";
  (* informed_round.(v) is the round v was informed, or max_int.  "Informed
     before round t" is informed_round.(v) < t, which lets one array serve
     as both the pre-round snapshot and the live state. *)
  let informed_round = Array.make n max_int in
  informed_round.(source) <- 0;
  let count = ref 1 in
  let contacts = ref 0 in
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let t = ref 0 in
  while !count < n && !t < max_rounds do
    incr t;
    let round = !t in
    Obs.round_start obs round;
    for u = 0 to n - 1 do
      let v = Graph.random_neighbor g rng u in
      incr contacts;
      Obs.contact obs u v;
      (match traffic with Some tr -> Traffic.record tr u v | None -> ());
      let u_informed = informed_round.(u) < round in
      let v_informed = informed_round.(v) < round in
      if u_informed && not (informed_round.(v) <= round) then begin
        informed_round.(v) <- round;
        incr count
      end
      else if v_informed && not (informed_round.(u) <= round) then begin
        informed_round.(u) <- round;
        incr count
      end
    done;
    Curve_buf.push curve !count;
    Obs.round_end obs ~round ~informed:!count ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time = if !count = n then Some rounds_run else None in
  Run_result.make ~broadcast_time ~rounds_run
    ~informed_curve:(Curve_buf.contents curve)
    ~contacts:!contacts ()
