(** Dense fixed-capacity bit set over [0, n) — the engine's informed-state
    representation (1 bit per vertex/agent; snapshotting is a [memcpy]).

    Bounds are {e not} checked on {!mem}/{!add}: callers index with ids
    already validated against the set's capacity. *)

type t

val create : int -> t
(** [create n] is an empty set over [0, n).
    @raise Invalid_argument if [n < 0]. *)

val mem : t -> int -> bool
val add : t -> int -> unit

val snapshot : src:t -> dst:t -> unit
(** Copy [src] into [dst]; both must have been created with the same [n]. *)

val clear : t -> unit
