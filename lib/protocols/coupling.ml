module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Placement = Rumor_agents.Placement

(* Growable int vector for the per-vertex shared choice lists. *)
module Ivec = struct
  type v = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 4 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let bigger = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 bigger 0 v.len;
      v.data <- bigger
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let length v = v.len
end

type t = {
  graph : Graph.t;
  source : int;
  w_rng : Rng.t;       (* draws the shared w_u entries, in demand order *)
  walk_rng : Rng.t;    (* placement + uninformed-agent moves *)
  lists : Ivec.v array;
  cursor : int array;  (* next unconsumed index per vertex, visitx side *)
  mutable visitx_done : bool;
}

let create rng graph ~source =
  if source < 0 || source >= Graph.n graph then
    invalid_arg "Coupling.create: source out of range";
  let w_rng = Rng.split rng in
  let walk_rng = Rng.split rng in
  {
    graph;
    source;
    w_rng;
    walk_rng;
    lists = Array.init (Graph.n graph) (fun _ -> Ivec.create ());
    cursor = Array.make (Graph.n graph) 0;
    visitx_done = false;
  }

let graph c = c.graph
let source c = c.source

let shared_choice c u i =
  let v = c.lists.(u) in
  while Ivec.length v <= i do
    Ivec.push v (Graph.random_neighbor c.graph c.w_rng u)
  done;
  Ivec.get v i

type visitx_outcome = {
  vertex_time : int array;
  agent_time : int array;
  c_counter : int array;
  parent : int array;
  completed : bool;
  rounds_run : int;
  history : int array array option;
}

let run_visit_exchange ?(record_history = false) c ~agents ~max_rounds =
  if c.visitx_done then
    invalid_arg "Coupling.run_visit_exchange: already run for this coupling";
  c.visitx_done <- true;
  let g = c.graph in
  let n = Graph.n g in
  let pos = Placement.place c.walk_rng agents g in
  let k = Array.length pos in
  let from = Array.make k 0 in
  let vertex_time = Array.make n max_int in
  let agent_time = Array.make k max_int in
  let c_counter = Array.make n max_int in
  let parent = Array.make n (-1) in
  let cum = Array.make n 0 in   (* visits through the last completed round *)
  let snap = Array.make n 0 in  (* cum value when the vertex was informed *)
  let history = ref [] in
  let record_round () =
    if record_history then begin
      let z = Array.make n 0 in
      Array.iter (fun v -> z.(v) <- z.(v) + 1) pos;
      history := z :: !history
    end
  in
  (* round 0: source informed with C_s(0) = 0 and zero pre-inform visits;
     cum then absorbs the initial placement Z(0) *)
  vertex_time.(c.source) <- 0;
  c_counter.(c.source) <- 0;
  snap.(c.source) <- 0;
  let informed_vertices = ref 1 in
  for a = 0 to k - 1 do
    if pos.(a) = c.source then agent_time.(a) <- 0
  done;
  record_round ();
  Array.iter (fun v -> cum.(v) <- cum.(v) + 1) pos;
  let t = ref 0 in
  while !informed_vertices < n && !t < max_rounds do
    incr t;
    let round = !t in
    (* phase 1: agents step in id order; an agent leaving a vertex that was
       informed before this round consumes the next shared w entry — this
       is exactly the p_u(i) = w_u(i) coupling of Section 5.1 *)
    for a = 0 to k - 1 do
      let u = pos.(a) in
      from.(a) <- u;
      let dest =
        if vertex_time.(u) < round then begin
          let i = c.cursor.(u) in
          c.cursor.(u) <- i + 1;
          shared_choice c u i
        end
        else Graph.random_neighbor g c.walk_rng u
      in
      pos.(a) <- dest
    done;
    (* phase 2: previously informed agents inform their vertex; maintain
       C_u(t_u) = min over arrivals of C_f(t) = cbase(f) + cum(f) - snap(f),
       where cum currently holds visits through round t-1 *)
    for a = 0 to k - 1 do
      if agent_time.(a) < round then begin
        let v = pos.(a) in
        if vertex_time.(v) = max_int || vertex_time.(v) = round then begin
          let f = from.(a) in
          (* the from-vertex of a previously informed agent is necessarily
             informed strictly before this round *)
          assert (vertex_time.(f) < round);
          let candidate = c_counter.(f) + cum.(f) - snap.(f) in
          if vertex_time.(v) = max_int then begin
            vertex_time.(v) <- round;
            incr informed_vertices;
            snap.(v) <- cum.(v);
            c_counter.(v) <- candidate;
            parent.(v) <- f
          end
          else if candidate < c_counter.(v) then begin
            c_counter.(v) <- candidate;
            parent.(v) <- f
          end
        end
      end
    done;
    (* phase 3: uninformed agents on informed vertices become informed *)
    for a = 0 to k - 1 do
      if agent_time.(a) = max_int && vertex_time.(pos.(a)) <= round then
        agent_time.(a) <- round
    done;
    (* close the round: record Z(t) and fold it into cum *)
    record_round ();
    Array.iter (fun v -> cum.(v) <- cum.(v) + 1) pos
  done;
  {
    vertex_time;
    agent_time;
    c_counter;
    parent;
    completed = !informed_vertices = n;
    rounds_run = !t;
    history =
      (if record_history then Some (Array.of_list (List.rev !history)) else None);
  }

let run_push c ~max_rounds =
  let g = c.graph in
  let n = Graph.n g in
  let tau = Array.make n max_int in
  let order = Array.make n 0 in
  (* consumed.(u): how many shared entries u's push side has used so far *)
  let consumed = Array.make n 0 in
  tau.(c.source) <- 0;
  order.(0) <- c.source;
  let count = ref 1 in
  let t = ref 0 in
  while !count < n && !t < max_rounds do
    incr t;
    let active = !count in
    for i = 0 to active - 1 do
      let u = order.(i) in
      let j = consumed.(u) in
      consumed.(u) <- j + 1;
      let v = shared_choice c u j in
      if tau.(v) = max_int then begin
        tau.(v) <- !t;
        order.(!count) <- v;
        incr count
      end
    done
  done;
  tau

let lemma13_violations ~tau o =
  let violations = ref [] in
  Array.iteri
    (fun u tu ->
      if tu < max_int && tau.(u) < max_int && o.c_counter.(u) < max_int then
        if tau.(u) > o.c_counter.(u) then violations := u :: !violations)
    o.vertex_time;
  List.rev !violations

let canonical_walk o u =
  if o.vertex_time.(u) = max_int then
    invalid_arg "Coupling.canonical_walk: vertex not informed";
  (* parent chain back to the source *)
  let rec chain v acc = if o.parent.(v) = -1 then v :: acc else chain o.parent.(v) (v :: acc) in
  let path = chain u [] in
  let k = o.vertex_time.(u) in
  let walk = Array.make (k + 1) (List.hd path) in
  List.iter
    (fun v ->
      (* v occupies positions t_v .. end; earlier vertices already filled the
         prefix, so writing each suffix in path order yields stay-puts *)
      for t = o.vertex_time.(v) to k do
        walk.(t) <- v
      done)
    path;
  walk

let congestion o walk =
  match o.history with
  | None -> invalid_arg "Coupling.congestion: history was not recorded"
  | Some hist ->
      let q = ref 0 in
      for t = 0 to Array.length walk - 2 do
        q := !q + hist.(t).(walk.(t))
      done;
      !q

let max_neighborhood_load o g =
  match o.history with
  | None -> invalid_arg "Coupling.max_neighborhood_load: history was not recorded"
  | Some hist ->
      let best = ref 0 in
      Array.iter
        (fun z ->
          for u = 0 to Graph.n g - 1 do
            let load = Graph.fold_neighbors g u (fun acc v -> acc + z.(v)) 0 in
            if load > !best then best := load
          done)
        hist;
      !best
