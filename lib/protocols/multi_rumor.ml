module Graph = Rumor_graph.Graph
module Walkers = Rumor_agents.Walkers
module Obs = Rumor_obs.Instrument

type injection = { rumor_source : int; start_round : int }

type result = {
  per_rumor_time : int array;
  rounds_run : int;
  all_done : bool;
}

let run ?lazy_walk ?obs rng g ~injections ~agents ~max_rounds =
  let n = Graph.n g in
  let r = Array.length injections in
  if r = 0 then invalid_arg "Multi_rumor.run: no injections";
  if r > 62 then invalid_arg "Multi_rumor.run: more than 62 rumors";
  Array.iter
    (fun inj ->
      if inj.rumor_source < 0 || inj.rumor_source >= n then
        invalid_arg "Multi_rumor.run: source out of range";
      if inj.start_round < 0 then invalid_arg "Multi_rumor.run: negative start round")
    injections;
  if max_rounds < 0 then invalid_arg "Multi_rumor.run: negative round cap";
  let w = Walkers.of_spec ?lazy_walk rng g agents in
  let k = Walkers.agent_count w in
  let vmask = Array.make n 0 in
  let amask = Array.make k 0 in
  (* per-rumor vertex counts and completion rounds *)
  let counts = Array.make r 0 in
  let done_at = Array.make r max_int in
  let remaining = ref r in
  let give_vertex v bits round =
    let fresh = bits land lnot vmask.(v) in
    if fresh <> 0 then begin
      vmask.(v) <- vmask.(v) lor fresh;
      for i = 0 to r - 1 do
        if fresh land (1 lsl i) <> 0 then begin
          counts.(i) <- counts.(i) + 1;
          if counts.(i) = n then begin
            done_at.(i) <- round;
            decr remaining
          end
        end
      done
    end
  in
  let inject round =
    Array.iteri
      (fun i inj ->
        if inj.start_round = round then give_vertex inj.rumor_source (1 lsl i) round)
      injections
  in
  (* round 0: inject the round-zero rumors; agents standing on an informed
     vertex pick up its rumors without stepping *)
  inject 0;
  for a = 0 to k - 1 do
    amask.(a) <- amask.(a) lor vmask.(Walkers.position w a)
  done;
  let latest_start =
    Array.fold_left (fun acc inj -> max acc inj.start_round) 0 injections
  in
  let contacts = ref 0 in
  (* informed parties for the round-end hook: (vertex, rumor) pairs known *)
  let informed_pairs () = Array.fold_left ( + ) 0 counts in
  let t = ref 0 in
  while (!remaining > 0 || !t < latest_start) && !t < max_rounds do
    incr t;
    let round = !t in
    Obs.round_start obs round;
    (match obs with
    | None -> Walkers.step w
    | Some _ ->
        Walkers.step_with w (fun a from to_ ->
            Obs.walker_move obs ~agent:a ~from_:from ~to_:to_));
    (* rumors the agents held before this round flow into their vertices *)
    for a = 0 to k - 1 do
      let v = Walkers.position w a in
      if amask.(a) land lnot vmask.(v) <> 0 then begin
        give_vertex v amask.(a) round;
        incr contacts;
        Obs.contact obs a v
      end
    done;
    inject round;
    (* agents pick up everything their current vertex now knows *)
    for a = 0 to k - 1 do
      let v = Walkers.position w a in
      if vmask.(v) land lnot amask.(a) <> 0 then begin
        incr contacts;
        Obs.contact obs v a
      end;
      amask.(a) <- amask.(a) lor vmask.(v)
    done;
    Obs.round_end obs ~round ~informed:(informed_pairs ()) ~contacts:!contacts
  done;
  let per_rumor_time =
    Array.mapi
      (fun i inj ->
        if done_at.(i) = max_int then max_int else done_at.(i) - inj.start_round)
      injections
  in
  { per_rumor_time; rounds_run = !t; all_done = !remaining = 0 }
