module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Obs = Rumor_obs.Instrument
module Trace = Rumor_obs.Trace
module Counters = Rumor_obs.Counters
module Placement = Rumor_agents.Placement
module Pool = Rumor_par.Pool
module Par = Rumor_par.Parallel_for

(* Million-node hot path for the four core round kernels.  Same protocols as
   Push / Push_pull / Visit_exchange / Meet_exchange, re-expressed over flat
   state: a Bitset per informed set (1 bit per vertex or agent), a dense
   frontier/position array, and growable Curve_buf curves, so per-run memory
   is O(n + m + rounds run) words and the inner loops touch only flat arrays.

   Determinism contract (extends PR 5's replication contract to intra-round
   parallelism):

   - [shards = 1] (the default) consumes the caller's [rng] in exactly the
     same order as the legacy kernel, so every field of the result — curves,
     contact counts, tau arrays, observation streams — is bit-identical to
     the corresponding [Push.run] / [Push_pull.run] / ... call on the same
     seed.  The equivalence suite in test/test_engine.ml pins this.

   - [shards = S > 1] re-keys randomness per round: the round's random
     choices are drawn from [Rng.split_n rng S], child [s] covering the
     [s]-th contiguous shard of the frontier (Parallel_for geometry), and
     all state updates happen in a sequential merge pass in frontier order
     after the shards join.  The result is a pure function of (seed, S) —
     the pool's [--jobs] degree only schedules work and can never change a
     bit of the output. *)

let get_pool = function Some p -> p | None -> Pool.create ~jobs:1

(* Tracing shims.  Hot round loops go through these instead of
   [Trace.with_span] so that a disabled run ([trace = None]) stays
   allocation-free: each shim is a bare option match, and the [~arg:...]
   [Some] cell for span payloads is only built inside the [Some] branch.
   The disabled path is pinned by an allocation test in test/test_engine.ml. *)

let[@inline] span_begin trace name =
  match trace with None -> () | Some tr -> Trace.begin_span tr name

let[@inline] span_begin_arg trace name arg =
  match trace with None -> () | Some tr -> Trace.begin_span tr ~arg name

let[@inline] span_end trace =
  match trace with None -> () | Some tr -> Trace.end_span tr

let contact_buckets =
  [| 1.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. |]

(* Closes the round span, samples the informed-count series, and bumps the
   scalar registry (rounds, contacts, contacts-per-round histogram). *)
let[@inline] trace_round_end trace ~informed ~contacts_delta =
  match trace with
  | None -> ()
  | Some tr ->
      Trace.end_span tr;
      Trace.counter tr "informed" informed;
      let cs = Trace.counters tr in
      Counters.incr (Counters.counter cs "rounds");
      Counters.add (Counters.counter cs "contacts") contacts_delta;
      Counters.observe
        (Counters.histogram cs "contacts_per_round" ~buckets:contact_buckets)
        (float_of_int contacts_delta)

let check_common ~who ~n ~source ~max_rounds ~shards =
  if source < 0 || source >= n then invalid_arg (who ^ ": source out of range");
  if max_rounds < 0 then invalid_arg (who ^ ": negative round cap");
  if shards < 1 then invalid_arg (who ^ ": shards < 1")

(* ------------------------------------------------------------------ push *)

(* lint: hot *)
let push ?traffic ?obs ?trace ?(failure_prob = 0.0) ?tau ?(shards = 1) ?pool
    rng g ~source ~max_rounds () =
  let n = Graph.n g in
  check_common ~who:"Engine.push" ~n ~source ~max_rounds ~shards;
  if not (failure_prob >= 0.0 && failure_prob < 1.0) then
    invalid_arg "Engine.push: failure_prob outside [0, 1)";
  (match tau with
  | Some tau ->
      if Array.length tau <> n then invalid_arg "Engine.push: tau length <> n";
      Array.fill tau 0 n max_int;
      tau.(source) <- 0
  | None -> ());
  let informed = Bitset.create n in
  (* order.(0 .. count-1) lists informed vertices in informing order; the
     first [active] of them push this round *)
  let order = Array.make n 0 in
  Bitset.add informed source;
  order.(0) <- source;
  let count = ref 1 in
  let contacts = ref 0 in
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let t = ref 0 in
  let want_failures = not (Float.equal failure_prob 0.0) in
  (* one contact's worth of merge, shared by both paths *)
  let deliver ~round u v delivered =
    incr contacts;
    Obs.contact obs u v;
    (match traffic with Some tr -> Traffic.record tr u v | None -> ());
    if delivered && not (Bitset.mem informed v) then begin
      Bitset.add informed v;
      (match tau with Some tau -> tau.(v) <- round | None -> ());
      order.(!count) <- v;
      incr count
    end
  in
  if shards = 1 then
    while !count < n && !t < max_rounds do
      incr t;
      Obs.round_start obs !t;
      span_begin_arg trace "push.round" !t;
      let c0 = !contacts in
      let active = !count in
      for i = 0 to active - 1 do
        let u = order.(i) in
        let v = Graph.random_neighbor g rng u in
        let delivered = (not want_failures) || not (Rng.bernoulli rng failure_prob) in
        deliver ~round:!t u v delivered
      done;
      Curve_buf.push curve !count;
      trace_round_end trace ~informed:!count ~contacts_delta:(!contacts - c0);
      Obs.round_end obs ~round:!t ~informed:!count ~contacts:!contacts
    done
  else begin
    let pool = get_pool pool in
    let picks = Array.make n 0 in
    let failed = if want_failures then Bytes.make n '\000' else Bytes.empty in
    while !count < n && !t < max_rounds do
      incr t;
      Obs.round_start obs !t;
      span_begin_arg trace "push.round" !t;
      let c0 = !contacts in
      let active = !count in
      let rngs = Rng.split_n rng shards in
      (* shards read only the frozen active prefix of [order] and write
         disjoint slots of [picks]/[failed]; all shared-state updates wait
         for the sequential merge below *)
      let (_ : unit array) =
        Par.parallel_for ?trace ~label:"push.draw" pool ~n:active ~shards (* lint: allow R10 — label Some + shard closure: per round, not per contact *)
          (fun ~shard ~lo ~hi ->
            let r = rngs.(shard) in
            for i = lo to hi - 1 do
              picks.(i) <- Graph.random_neighbor g r order.(i);
              if want_failures then
                Bytes.set failed i (if Rng.bernoulli r failure_prob then '\001' else '\000')
            done)
      in
      span_begin trace "push.merge";
      for i = 0 to active - 1 do
        let delivered = (not want_failures) || Char.code (Bytes.get failed i) = 0 in
        deliver ~round:!t order.(i) picks.(i) delivered
      done;
      span_end trace;
      Curve_buf.push curve !count;
      trace_round_end trace ~informed:!count ~contacts_delta:(!contacts - c0);
      Obs.round_end obs ~round:!t ~informed:!count ~contacts:!contacts
    done
  end;
  let rounds_run = !t in
  let broadcast_time = if !count = n then Some rounds_run else None in
  Run_result.make ~broadcast_time ~rounds_run
    ~informed_curve:(Curve_buf.contents curve)
    ~contacts:!contacts ()

(* ------------------------------------------------------------- push-pull *)

(* lint: hot *)
let push_pull ?traffic ?obs ?trace ?(shards = 1) ?pool rng g ~source
    ~max_rounds () =
  let n = Graph.n g in
  check_common ~who:"Engine.push_pull" ~n ~source ~max_rounds ~shards;
  (* [before] is the informed set at the top of the round (the snapshot the
     push/pull eligibility test reads); [informed] is live *)
  let informed = Bitset.create n in
  let before = Bitset.create n in
  Bitset.add informed source;
  let count = ref 1 in
  let contacts = ref 0 in
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let t = ref 0 in
  let exchange u v =
    incr contacts;
    Obs.contact obs u v;
    (match traffic with Some tr -> Traffic.record tr u v | None -> ());
    let u_before = Bitset.mem before u and v_before = Bitset.mem before v in
    if u_before && not (Bitset.mem informed v) then begin
      Bitset.add informed v;
      incr count
    end
    else if v_before && not (Bitset.mem informed u) then begin
      Bitset.add informed u;
      incr count
    end
  in
  if shards = 1 then
    while !count < n && !t < max_rounds do
      incr t;
      let round = !t in
      Obs.round_start obs round;
      span_begin_arg trace "push_pull.round" round;
      let c0 = !contacts in
      Bitset.snapshot ~src:informed ~dst:before;
      for u = 0 to n - 1 do
        exchange u (Graph.random_neighbor g rng u)
      done;
      Curve_buf.push curve !count;
      trace_round_end trace ~informed:!count ~contacts_delta:(!contacts - c0);
      Obs.round_end obs ~round ~informed:!count ~contacts:!contacts
    done
  else begin
    let pool = get_pool pool in
    let picks = Array.make n 0 in
    while !count < n && !t < max_rounds do
      incr t;
      let round = !t in
      Obs.round_start obs round;
      span_begin_arg trace "push_pull.round" round;
      let c0 = !contacts in
      let rngs = Rng.split_n rng shards in
      let (_ : unit array) =
        Par.parallel_for ?trace ~label:"push_pull.draw" pool ~n ~shards (* lint: allow R10 — label Some + shard closure: per round, not per contact *)
          (fun ~shard ~lo ~hi ->
            let r = rngs.(shard) in
            for u = lo to hi - 1 do
              picks.(u) <- Graph.random_neighbor g r u
            done)
      in
      span_begin trace "push_pull.merge";
      Bitset.snapshot ~src:informed ~dst:before;
      for u = 0 to n - 1 do
        exchange u picks.(u)
      done;
      span_end trace;
      Curve_buf.push curve !count;
      trace_round_end trace ~informed:!count ~contacts_delta:(!contacts - c0);
      Obs.round_end obs ~round ~informed:!count ~contacts:!contacts
    done
  end;
  let rounds_run = !t in
  let broadcast_time = if !count = n then Some rounds_run else None in
  Run_result.make ~broadcast_time ~rounds_run
    ~informed_curve:(Curve_buf.contents curve)
    ~contacts:!contacts ()

(* --------------------------------------------------------- walker motion *)

let place_agents ~who rng g agents =
  let pos = Placement.place rng agents g in
  if Array.length pos = 0 then invalid_arg (who ^ ": no agents");
  (* a graph with positive min degree (O(1): cached degree stats) cannot
     hold an isolated vertex, so the O(k) per-agent scan is pure overhead *)
  if Graph.min_degree g = 0 then
    Array.iter
      (fun v ->
        if Graph.degree g v = 0 then invalid_arg (who ^ ": agent on isolated vertex"))
      pos;
  pos

(* One synchronized walker round over a flat position array, consuming [rng]
   in exactly Walkers.step's order: per agent, the lazy coin (if lazy) then
   the neighbor draw. *)
(* lint: hot *)
let move_agents_seq ?traffic ?obs ~lazy_walk rng g pos =
  for a = 0 to Array.length pos - 1 do
    let u = pos.(a) in
    let v =
      if lazy_walk && Rng.bool rng then u else Graph.random_neighbor g rng u
    in
    pos.(a) <- v;
    (match traffic with
    | Some tr when v <> u -> Traffic.record tr u v
    | _ -> ());
    Obs.walker_move obs ~agent:a ~from_:u ~to_:v
  done

(* Sharded variant: destinations are drawn into [moves] with one split child
   per shard, then applied (and reported) sequentially in agent order. *)
(* lint: hot *)
let move_agents_sharded ?traffic ?obs ?trace ~lazy_walk ~shards pool rng g pos
    moves =
  let k = Array.length pos in
  let rngs = Rng.split_n rng shards in
  let (_ : unit array) =
    Par.parallel_for ?trace ~label:"walk.draw" pool ~n:k ~shards
      (fun ~shard ~lo ~hi ->
        let r = rngs.(shard) in
        for a = lo to hi - 1 do
          let u = pos.(a) in
          moves.(a) <-
            (if lazy_walk && Rng.bool r then u else Graph.random_neighbor g r u)
        done)
  in
  span_begin trace "walk.apply";
  for a = 0 to k - 1 do
    let u = pos.(a) and v = moves.(a) in
    pos.(a) <- v;
    (match traffic with
    | Some tr when v <> u -> Traffic.record tr u v
    | _ -> ());
    Obs.walker_move obs ~agent:a ~from_:u ~to_:v
  done;
  span_end trace

(* -------------------------------------------------------- visit-exchange *)

(* Count-compressed VE round loop: walker state lives in Sparse_walkers'
   per-vertex (uninformed, informed) counts, so both spread phases are
   O(occupied) sweeps.  Not bit-identical to the dense kernel (agent
   identity is erased; A10 gates the distributional agreement); fires the
   aggregate occupancy hook instead of per-agent contact/walker_move. *)
(* lint: hot *)
let visit_exchange_sparse ?obs ?trace ~lazy_walk rng g ~source ~agents
    ~max_rounds () =
  let n = Graph.n g in
  let w =
    Sparse_walkers.create ~who:"Engine.visit_exchange" ~lazy_walk rng g agents
  in
  let k = Sparse_walkers.agent_count w in
  let vertex_informed = Bitset.create n in
  Bitset.add vertex_informed source;
  let informed_vertices = ref 1 in
  (* round 0: every walker standing on the source is informed *)
  let informed_agents = ref (Sparse_walkers.inform_all_at w source) in
  let contacts = ref !informed_agents in
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let all_agents_round = ref (if !informed_agents = k then 0 else -1) in
  let last_vertex_round = ref 0 in
  let t = ref 0 in
  while (!informed_vertices < n || !all_agents_round < 0) && !t < max_rounds do
    incr t;
    let round = !t in
    Obs.round_start obs round;
    span_begin_arg trace "visit_exchange.round" round;
    let c0 = !contacts in
    span_begin trace "walk";
    Sparse_walkers.step rng w;
    span_end trace;
    span_begin trace "spread";
    let occ = Sparse_walkers.occupied_count w in
    (* phase 2: a vertex holding a walker informed in a previous round gets
       informed (conversions below only land in the informed counts after
       this sweep, so they cannot inform a vertex until next round) *)
    for i = 0 to occ - 1 do
      let v = Sparse_walkers.occupied_vertex w i in
      if
        Sparse_walkers.informed_at w v > 0
        && not (Bitset.mem vertex_informed v)
      then begin
        Bitset.add vertex_informed v;
        incr informed_vertices;
        incr contacts;
        last_vertex_round := round
      end
    done;
    (* phase 3: every walker standing on an informed vertex is informed *)
    for i = 0 to occ - 1 do
      let v = Sparse_walkers.occupied_vertex w i in
      if Bitset.mem vertex_informed v then begin
        let c = Sparse_walkers.inform_all_at w v in
        informed_agents := !informed_agents + c;
        contacts := !contacts + c
      end
    done;
    span_end trace;
    Obs.occupancy obs ~round ~occupied:occ ~walkers:k;
    if !informed_agents = k && !all_agents_round < 0 then
      all_agents_round := round;
    Curve_buf.push curve !informed_vertices;
    trace_round_end trace ~informed:!informed_vertices
      ~contacts_delta:(!contacts - c0);
    Obs.round_end obs ~round ~informed:!informed_vertices ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time =
    if !informed_vertices = n then Some !last_vertex_round else None
  in
  let all_agents_informed =
    if !all_agents_round < 0 then None else Some !all_agents_round
  in
  Run_result.make ~all_agents_informed ~broadcast_time ~rounds_run
    ~informed_curve:(Curve_buf.contents curve)
    ~contacts:!contacts ()

(* lint: hot *)
let visit_exchange_dense ?traffic ?obs ?trace ~lazy_walk ~shards ?pool rng g
    ~source ~agents ~max_rounds () =
  let n = Graph.n g in
  let pos = place_agents ~who:"Engine.visit_exchange" rng g agents in
  let k = Array.length pos in
  let vertex_informed = Bitset.create n in
  let agent_informed = Bitset.create k in
  let agent_before = Bitset.create k in
  let contacts = ref 0 in
  (* round 0: the source is informed, and so is every agent standing on it *)
  Bitset.add vertex_informed source;
  let informed_vertices = ref 1 in
  let informed_agents = ref 0 in
  for a = 0 to k - 1 do
    if pos.(a) = source then begin
      Bitset.add agent_informed a;
      incr informed_agents;
      incr contacts
    end
  done;
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  (* -1 = not all informed yet; an int sentinel instead of [int option ref]
     so flipping it in the round loop never allocates a [Some] cell *)
  let all_agents_round = ref (if !informed_agents = k then 0 else -1) in
  (* the round the most recent vertex was informed; its final value is the
     completion round when all vertices end up informed *)
  let last_vertex_round = ref 0 in
  let moves = if shards = 1 then [||] else Array.make k 0 in
  let pool = if shards = 1 then None else Some (get_pool pool) in
  let t = ref 0 in
  while (!informed_vertices < n || !all_agents_round < 0) && !t < max_rounds do
    incr t;
    let round = !t in
    Obs.round_start obs round;
    span_begin_arg trace "visit_exchange.round" round;
    let c0 = !contacts in
    (* phase 1: all agents step in parallel *)
    (match pool with
    | None ->
        span_begin trace "walk";
        move_agents_seq ?traffic ?obs ~lazy_walk rng g pos;
        span_end trace
    | Some pool ->
        move_agents_sharded ?traffic ?obs ?trace ~lazy_walk ~shards pool rng g
          pos moves);
    span_begin trace "spread";
    (* phase 2: agents informed in a previous round inform their vertex *)
    Bitset.snapshot ~src:agent_informed ~dst:agent_before;
    for a = 0 to k - 1 do
      if Bitset.mem agent_before a then begin
        let v = pos.(a) in
        if not (Bitset.mem vertex_informed v) then begin
          Bitset.add vertex_informed v;
          incr informed_vertices;
          incr contacts;
          last_vertex_round := round;
          Obs.contact obs a v
        end
      end
    done;
    (* phase 3: uninformed agents standing on an informed vertex (informed
       in any round <= this one) become informed *)
    for a = 0 to k - 1 do
      if (not (Bitset.mem agent_informed a)) && Bitset.mem vertex_informed pos.(a)
      then begin
        Bitset.add agent_informed a;
        incr informed_agents;
        incr contacts;
        Obs.contact obs pos.(a) a
      end
    done;
    span_end trace;
    if !informed_agents = k && !all_agents_round < 0 then
      all_agents_round := round;
    Curve_buf.push curve !informed_vertices;
    trace_round_end trace ~informed:!informed_vertices
      ~contacts_delta:(!contacts - c0);
    Obs.round_end obs ~round ~informed:!informed_vertices ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time =
    if !informed_vertices = n then Some !last_vertex_round else None
  in
  let all_agents_informed =
    if !all_agents_round < 0 then None else Some !all_agents_round
  in
  Run_result.make ~all_agents_informed ~broadcast_time
    ~rounds_run
    ~informed_curve:(Curve_buf.contents curve)
    ~contacts:!contacts ()

let visit_exchange ?traffic ?obs ?trace ?(lazy_walk = false)
    ?(walkers = Sparse_walkers.Dense) ?(shards = 1) ?pool rng g ~source
    ~agents ~max_rounds () =
  let n = Graph.n g in
  check_common ~who:"Engine.visit_exchange" ~n ~source ~max_rounds ~shards;
  if Sparse_walkers.use_sparse walkers agents g then begin
    if Option.is_some traffic then
      invalid_arg "Engine.visit_exchange: traffic recording requires dense walkers";
    visit_exchange_sparse ?obs ?trace ~lazy_walk rng g ~source ~agents
      ~max_rounds ()
  end
  else
    visit_exchange_dense ?traffic ?obs ?trace ~lazy_walk ~shards ?pool rng g
      ~source ~agents ~max_rounds ()

(* --------------------------------------------------------- meet-exchange *)

(* Count-compressed ME round loop.  A meeting needs >= 1 previously informed
   and >= 1 uninformed walker on the same vertex — exactly what the two
   count arrays expose, because conversions only enter the informed counts
   after the sweep (so "previously informed" is whatever the informed array
   holds right after the scatter).  Source hand-off converts everyone on a
   still-active source, matching the dense kernel. *)
(* lint: hot *)
let meet_exchange_sparse ?obs ?trace ~lazy_walk rng g ~source ~agents
    ~max_rounds () =
  let w =
    Sparse_walkers.create ~who:"Engine.meet_exchange" ~lazy_walk rng g agents
  in
  let k = Sparse_walkers.agent_count w in
  (* round 0: walkers standing on the source are informed *)
  let informed = ref (Sparse_walkers.inform_all_at w source) in
  let contacts = ref !informed in
  let source_active = ref (!informed = 0) in
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve !informed;
  let t = ref 0 in
  while !informed < k && !t < max_rounds do
    incr t;
    let round = !t in
    Obs.round_start obs round;
    span_begin_arg trace "meet_exchange.round" round;
    let c0 = !contacts in
    span_begin trace "walk";
    Sparse_walkers.step rng w;
    span_end trace;
    span_begin trace "spread";
    let occ = Sparse_walkers.occupied_count w in
    for i = 0 to occ - 1 do
      let v = Sparse_walkers.occupied_vertex w i in
      if !source_active && v = source then begin
        (* hand-off: the first walkers to visit the source all pick the
           rumor up, informed companions or not *)
        let c = Sparse_walkers.inform_all_at w v in
        informed := !informed + c;
        contacts := !contacts + c;
        source_active := false
      end
      else if Sparse_walkers.informed_at w v > 0 then begin
        let c = Sparse_walkers.inform_all_at w v in
        informed := !informed + c;
        contacts := !contacts + c
      end
    done;
    span_end trace;
    Obs.occupancy obs ~round ~occupied:occ ~walkers:k;
    Curve_buf.push curve !informed;
    trace_round_end trace ~informed:!informed ~contacts_delta:(!contacts - c0);
    Obs.round_end obs ~round ~informed:!informed ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time = if !informed = k then Some rounds_run else None in
  Run_result.make ~all_agents_informed:broadcast_time ~broadcast_time
    ~rounds_run
    ~informed_curve:(Curve_buf.contents curve)
    ~contacts:!contacts ()

(* lint: hot *)
let meet_exchange_dense ?traffic ?obs ?trace ~lazy_walk ~shards ?pool rng g
    ~source ~agents ~max_rounds () =
  let n = Graph.n g in
  let pos = place_agents ~who:"Engine.meet_exchange" rng g agents in
  let k = Array.length pos in
  let agent_informed = Bitset.create k in
  let agent_before = Bitset.create k in
  (* counting-sort buckets, same layout and (stable) agent order as
     Walkers.Buckets, with the cursor array reused across rounds *)
  let starts = Array.make (n + 1) 0 in
  let cursor = Array.make (n + 1) 0 in
  let ids = Array.make k 0 in
  let refresh_buckets () =
    Array.fill starts 0 (n + 1) 0;
    Array.iter (fun v -> starts.(v + 1) <- starts.(v + 1) + 1) pos;
    for v = 0 to n - 1 do
      starts.(v + 1) <- starts.(v + 1) + starts.(v)
    done;
    Array.blit starts 0 cursor 0 (n + 1);
    Array.iteri
      (fun a v ->
        ids.(cursor.(v)) <- a;
        cursor.(v) <- cursor.(v) + 1)
      pos
  in
  let contacts = ref 0 in
  let informed = ref 0 in
  (* round 0: agents standing on the source are informed *)
  for a = 0 to k - 1 do
    if pos.(a) = source then begin
      Bitset.add agent_informed a;
      incr informed;
      incr contacts;
      Obs.contact obs source a
    end
  done;
  let source_active = ref (!informed = 0) in
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve !informed;
  let moves = if shards = 1 then [||] else Array.make k 0 in
  let pool = if shards = 1 then None else Some (get_pool pool) in
  (* hoisted out of the per-vertex meeting scan below: a fresh [ref] per
     vertex is one allocation per occupied vertex per round *)
  let witness = ref false in
  let t = ref 0 in
  while !informed < k && !t < max_rounds do
    incr t;
    let round = !t in
    Obs.round_start obs round;
    span_begin_arg trace "meet_exchange.round" round;
    let c0 = !contacts in
    (match pool with
    | None ->
        span_begin trace "walk";
        move_agents_seq ?traffic ?obs ~lazy_walk rng g pos;
        span_end trace
    | Some pool ->
        move_agents_sharded ?traffic ?obs ?trace ~lazy_walk ~shards pool rng g
          pos moves);
    span_begin trace "buckets";
    refresh_buckets ();
    span_end trace;
    span_begin trace "spread";
    (* the witness test below is "informed in a previous round": snapshot
       before this round's source hand-off so its pickups don't qualify *)
    Bitset.snapshot ~src:agent_informed ~dst:agent_before;
    (* source hand-off: the first agents to visit the source become informed
       (all of them if simultaneous); they start spreading only next round *)
    if !source_active && starts.(source + 1) - starts.(source) > 0 then begin
      for i = starts.(source) to starts.(source + 1) - 1 do
        let a = ids.(i) in
        if not (Bitset.mem agent_informed a) then begin
          Bitset.add agent_informed a;
          incr informed;
          incr contacts;
          Obs.contact obs source a
        end
      done;
      source_active := false
    end;
    (* meetings: a vertex holding some previously informed agent informs
       every agent standing on it *)
    for v = 0 to n - 1 do
      if starts.(v + 1) - starts.(v) >= 2 then begin
        witness := false;
        for i = starts.(v) to starts.(v + 1) - 1 do
          if Bitset.mem agent_before ids.(i) then witness := true
        done;
        if !witness then
          for i = starts.(v) to starts.(v + 1) - 1 do
            let a = ids.(i) in
            if not (Bitset.mem agent_informed a) then begin
              Bitset.add agent_informed a;
              incr informed;
              incr contacts;
              Obs.contact obs v a
            end
          done
      end
    done;
    span_end trace;
    Curve_buf.push curve !informed;
    trace_round_end trace ~informed:!informed ~contacts_delta:(!contacts - c0);
    Obs.round_end obs ~round ~informed:!informed ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time = if !informed = k then Some rounds_run else None in
  Run_result.make ~all_agents_informed:broadcast_time ~broadcast_time
    ~rounds_run
    ~informed_curve:(Curve_buf.contents curve)
    ~contacts:!contacts ()

let meet_exchange ?traffic ?obs ?trace ?lazy_walk
    ?(walkers = Sparse_walkers.Dense) ?(shards = 1) ?pool rng g ~source
    ~agents ~max_rounds () =
  let n = Graph.n g in
  check_common ~who:"Engine.meet_exchange" ~n ~source ~max_rounds ~shards;
  (* same unsafe-default fix as Meet_exchange: an omitted [lazy_walk]
     resolves by testing bipartiteness *)
  let lazy_walk =
    match lazy_walk with
    | Some b -> b
    | None -> Rumor_graph.Algo.is_bipartite g
  in
  if Sparse_walkers.use_sparse walkers agents g then begin
    if Option.is_some traffic then
      invalid_arg "Engine.meet_exchange: traffic recording requires dense walkers";
    meet_exchange_sparse ?obs ?trace ~lazy_walk rng g ~source ~agents
      ~max_rounds ()
  end
  else
    meet_exchange_dense ?traffic ?obs ?trace ~lazy_walk ~shards ?pool rng g
      ~source ~agents ~max_rounds ()

(* --------------------------------------------------------------- combined *)

(* Engine path for the Combined protocol: the push-pull frontier half and
   the visit-exchange walker half composed in one round loop, consuming the
   rng in exactly Combined.run's order at [shards = 1] (placement draws,
   then per round: n push-pull picks, k walker moves). *)
(* lint: hot *)
let combined ?obs ?trace ?(lazy_walk = false) ?(shards = 1) ?pool rng g
    ~source ~agents ~max_rounds () =
  let n = Graph.n g in
  check_common ~who:"Engine.combined" ~n ~source ~max_rounds ~shards;
  let pos = place_agents ~who:"Engine.combined" rng g agents in
  let k = Array.length pos in
  let vertex_time = Array.make n max_int in
  let agent_time = Array.make k max_int in
  vertex_time.(source) <- 0;
  let informed_vertices = ref 1 in
  let contacts = ref 0 in
  for a = 0 to k - 1 do
    if pos.(a) = source then begin
      agent_time.(a) <- 0;
      incr contacts
    end
  done;
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let picks = if shards = 1 then [||] else Array.make n 0 in
  let moves = if shards = 1 then [||] else Array.make k 0 in
  let pool = if shards = 1 then None else Some (get_pool pool) in
  (* hoisted closures: allocated once per run, not per round like the
     legacy kernel's *)
  let inform_vertex round v =
    if vertex_time.(v) = max_int then begin
      vertex_time.(v) <- round;
      incr informed_vertices
    end
  in
  let exchange round u v =
    incr contacts;
    Obs.contact obs u v;
    let u_before = vertex_time.(u) < round
    and v_before = vertex_time.(v) < round in
    if u_before && not v_before then inform_vertex round v
    else if v_before && not u_before then inform_vertex round u
  in
  let t = ref 0 in
  while !informed_vertices < n && !t < max_rounds do
    incr t;
    let round = !t in
    Obs.round_start obs round;
    span_begin_arg trace "combined.round" round;
    let c0 = !contacts in
    (* push-pull half: every vertex calls a random neighbor; exchanges use
       the informed-before-this-round state *)
    (match pool with
    | None ->
        span_begin trace "push_pull";
        for u = 0 to n - 1 do
          exchange round u (Graph.random_neighbor g rng u)
        done;
        span_end trace
    | Some pool ->
        let rngs = Rng.split_n rng shards in
        let (_ : unit array) =
          Par.parallel_for ?trace ~label:"combined.draw" pool ~n ~shards (* lint: allow R10 — label Some + shard closure: per round, not per contact *)
            (fun ~shard ~lo ~hi ->
              let r = rngs.(shard) in
              for u = lo to hi - 1 do
                picks.(u) <- Graph.random_neighbor g r u
              done)
        in
        span_begin trace "push_pull.merge";
        for u = 0 to n - 1 do
          exchange round u picks.(u)
        done;
        span_end trace);
    (* visit-exchange half: agents step, previously informed agents inform
       their vertex, uninformed agents learn from informed vertices *)
    (match pool with
    | None ->
        span_begin trace "walk";
        move_agents_seq ?obs ~lazy_walk rng g pos;
        span_end trace
    | Some pool ->
        move_agents_sharded ?obs ?trace ~lazy_walk ~shards pool rng g pos
          moves);
    span_begin trace "spread";
    for a = 0 to k - 1 do
      if agent_time.(a) < round then begin
        let v = pos.(a) in
        if vertex_time.(v) = max_int then begin
          incr contacts;
          Obs.contact obs a v
        end;
        inform_vertex round v
      end
    done;
    for a = 0 to k - 1 do
      if agent_time.(a) = max_int && vertex_time.(pos.(a)) <= round then begin
        agent_time.(a) <- round;
        incr contacts;
        Obs.contact obs pos.(a) a
      end
    done;
    span_end trace;
    Curve_buf.push curve !informed_vertices;
    trace_round_end trace ~informed:!informed_vertices
      ~contacts_delta:(!contacts - c0);
    Obs.round_end obs ~round ~informed:!informed_vertices ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time =
    if !informed_vertices = n then Some rounds_run else None
  in
  Run_result.make ~broadcast_time ~rounds_run
    ~informed_curve:(Curve_buf.contents curve)
    ~contacts:!contacts ()
