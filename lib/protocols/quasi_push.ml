module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Obs = Rumor_obs.Instrument

let run ?obs rng g ~source ~max_rounds () =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Quasi_push.run: source out of range";
  if max_rounds < 0 then invalid_arg "Quasi_push.run: negative round cap";
  let informed = Array.make n false in
  (* cursor.(u): next position in u's neighbor cycle; set when informed *)
  let cursor = Array.make n 0 in
  let order = Array.make n 0 in
  let inform u =
    informed.(u) <- true;
    cursor.(u) <- Rng.int rng (Graph.degree g u)
  in
  inform source;
  order.(0) <- source;
  let count = ref 1 in
  let contacts = ref 0 in
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let t = ref 0 in
  while !count < n && !t < max_rounds do
    incr t;
    Obs.round_start obs !t;
    let active = !count in
    for i = 0 to active - 1 do
      let u = order.(i) in
      let d = Graph.degree g u in
      let v = Graph.neighbor g u (cursor.(u) mod d) in
      cursor.(u) <- cursor.(u) + 1;
      incr contacts;
      Obs.contact obs u v;
      if not informed.(v) then begin
        inform v;
        order.(!count) <- v;
        incr count
      end
    done;
    Curve_buf.push curve !count;
    Obs.round_end obs ~round:!t ~informed:!count ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time = if !count = n then Some rounds_run else None in
  Run_result.make ~broadcast_time ~rounds_run
    ~informed_curve:(Curve_buf.contents curve)
    ~contacts:!contacts ()
