(* Growable per-round curve buffer.  Every sync protocol used to pre-allocate
   [Array.make (max_rounds + 1) 0], which makes memory O(round cap) instead of
   O(rounds actually run) and rules out "uncapped" runs with a huge cap (the
   cap + 1 length even overflows at [max_int]).  This buffer starts small and
   doubles, so a run costs memory proportional to the rounds it really took. *)

type t = { mutable data : int array; mutable len : int }

let initial_capacity = 64

let create ~hint =
  if hint < 0 then invalid_arg "Curve_buf.create: negative hint";
  (* a cap of [hint] rounds needs at most [hint + 1] points; computing the
     bound this way keeps [hint = max_int] from overflowing *)
  let capacity = if hint >= initial_capacity then initial_capacity else hint + 1 in
  { data = Array.make capacity 0; len = 0 }

let length b = b.len

(* lint: hot *)
let push b v =
  let capacity = Array.length b.data in
  if b.len = capacity then begin
    (* [capacity <= Sys.max_array_length / 2] always holds in practice: the
       buffer tracks rounds actually simulated, and simulating max_array/2
       rounds is unreachable long before memory is. *)
    let bigger = Array.make (2 * capacity) 0 in
    Array.blit b.data 0 bigger 0 b.len;
    b.data <- bigger
  end;
  b.data.(b.len) <- v;
  b.len <- b.len + 1

let get b i =
  if i < 0 || i >= b.len then invalid_arg "Curve_buf.get: index out of range";
  b.data.(i)

let set_last b v =
  if b.len = 0 then invalid_arg "Curve_buf.set_last: empty buffer";
  b.data.(b.len - 1) <- v

let contents b = Array.sub b.data 0 b.len
