(** The push rumor-spreading protocol (Demers et al.; Section 3 of the
    paper).

    Round 0 informs the source.  In every round [t >= 1], each vertex that
    was informed in a previous round samples a uniformly random neighbor and
    sends it the rumor.  Broadcast completes when all vertices are
    informed.

    The implementation does O(informed vertices) work per round, so a run
    costs O(sum of the informed-curve), and is exact — no approximation of
    the process is made. *)

val run :
  ?traffic:Traffic.t ->
  ?obs:Rumor_obs.Instrument.t ->
  ?failure_prob:float ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** [run rng g ~source ~max_rounds ()] simulates until broadcast or until
    [max_rounds] rounds have run.  [traffic] accumulates one use per push
    contact.  [obs] receives round start/end and per-contact hooks (see
    {!Rumor_obs.Instrument}).

    [failure_prob] (default 0) drops each transmission independently with
    that probability — the random-failure model of Elsässer–Sauerwald [22],
    which the paper's Lemma 4 proof relies on ("random failures of
    transmission with probability 1/l do not change the broadcast time
    asymptotically").  Failed contacts still count towards [contacts] and
    [traffic] (the call happens; the payload is lost).
    @raise Invalid_argument if [source] is out of range or [failure_prob]
    is outside [0, 1). *)

val informed_times :
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  max_rounds:int ->
  int array
(** [informed_times rng g ~source ~max_rounds] returns per-vertex informing
    rounds [tau_u] ([max_int] if never informed within the cap) — the
    quantity the Section 5 coupling argument reasons about. *)
