module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Placement = Rumor_agents.Placement
module Obs = Rumor_obs.Instrument

type outcome = {
  result : Run_result.t;
  interventions : int;
  first_intervention : int option;
  final_agents : int;
}

(* Shared visit-exchange engine over an Agent_pool, parameterised by a clamp
   hook invoked with the round number: [clamp ~round] may add or remove
   agents (returning how many it touched) and must keep [occ] consistent. *)
let engine ?(lazy_walk = false) ?obs rng g ~source ~agents ~max_rounds ~clamp () =
  let n = Graph.n g in
  if source < 0 || source >= n then
    invalid_arg "Tweaked_visit_exchange: source out of range";
  if max_rounds < 0 then invalid_arg "Tweaked_visit_exchange: negative round cap";
  let initial = Placement.place rng agents g in
  let p = Agent_pool.create ~capacity:(2 * Array.length initial) in
  let occ = Array.make n 0 in
  Array.iter
    (fun v ->
      ignore (Agent_pool.spawn p v);
      occ.(v) <- occ.(v) + 1)
    initial;
  let vertex_time = Array.make n max_int in
  vertex_time.(source) <- 0;
  let informed_vertices = ref 1 in
  let contacts = ref 0 in
  Agent_pool.iter_alive p (fun slot ->
      if Agent_pool.position p slot = source then begin
        Agent_pool.set_informed_at p slot 0;
        incr contacts
      end);
  let interventions = ref 0 in
  let first_intervention = ref None in
  let apply_clamp round =
    let touched = clamp p occ vertex_time ~round in
    if touched > 0 then begin
      interventions := !interventions + touched;
      if !first_intervention = None then first_intervention := Some round
    end
  in
  apply_clamp 0;
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let t = ref 0 in
  while !informed_vertices < n && !t < max_rounds && Agent_pool.alive p > 0 do
    incr t;
    let round = !t in
    Obs.round_start obs round;
    Agent_pool.iter_alive p (fun slot ->
        let u = Agent_pool.position p slot in
        let v =
          if lazy_walk && Rng.bool rng then u else Graph.random_neighbor g rng u
        in
        if v <> u then begin
          occ.(u) <- occ.(u) - 1;
          occ.(v) <- occ.(v) + 1;
          Agent_pool.set_position p slot v
        end;
        Obs.walker_move obs ~agent:slot ~from_:u ~to_:v);
    Agent_pool.iter_alive p (fun slot ->
        if Agent_pool.informed_at p slot < round then begin
          let v = Agent_pool.position p slot in
          if vertex_time.(v) = max_int then begin
            vertex_time.(v) <- round;
            incr informed_vertices;
            incr contacts;
            Obs.contact obs slot v
          end
        end);
    Agent_pool.iter_alive p (fun slot ->
        if
          Agent_pool.informed_at p slot = Agent_pool.uninformed
          && vertex_time.(Agent_pool.position p slot) <= round
        then begin
          Agent_pool.set_informed_at p slot round;
          incr contacts;
          Obs.contact obs (Agent_pool.position p slot) slot
        end);
    apply_clamp round;
    Curve_buf.push curve !informed_vertices;
    Obs.round_end obs ~round ~informed:!informed_vertices ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time = if !informed_vertices = n then Some rounds_run else None in
  {
    result =
      Run_result.make ~broadcast_time ~rounds_run
        ~informed_curve:(Curve_buf.contents curve)
        ~contacts:!contacts ();
    interventions = !interventions;
    first_intervention = !first_intervention;
    final_agents = Agent_pool.alive p;
  }

let neighborhood_load g occ u = Graph.fold_neighbors g u (fun acc v -> acc + occ.(v)) 0

(* Eq. (3): remove agents until every neighborhood holds at most
   gamma * deg(u) agents.  Removals only decrease loads, so one pass over
   the vertices suffices. *)
let run_t_visit_exchange ?lazy_walk ?obs rng g ~source ~agents ~gamma ~max_rounds () =
  if not (gamma > 0.0) then invalid_arg "run_t_visit_exchange: gamma <= 0";
  let n = Graph.n g in
  let clamp p occ _vertex_time ~round:_ =
    let removed = ref 0 in
    for u = 0 to n - 1 do
      let budget = int_of_float (gamma *. float_of_int (Graph.degree g u)) in
      let excess = ref (neighborhood_load g occ u - budget) in
      while !excess > 0 do
        (* shed from the fullest neighbor of u *)
        let victim_vertex = ref (-1) in
        Graph.iter_neighbors g u (fun v ->
            if !victim_vertex < 0 || occ.(v) > occ.(!victim_vertex) then
              victim_vertex := v);
        match Agent_pool.find_alive_at p !victim_vertex with
        | Some slot ->
            Agent_pool.kill p slot;
            occ.(!victim_vertex) <- occ.(!victim_vertex) - 1;
            incr removed;
            decr excess
        | None ->
            (* occupancy says there is an agent; absence is a logic error *)
            assert false
      done
    done;
    !removed
  in
  engine ?lazy_walk ?obs rng g ~source ~agents ~max_rounds ~clamp ()

(* Eq. (10): before each odd round ensure every neighborhood holds at least
   |A| * deg(u) / (2n) agents; added agents adopt the informed state of the
   vertex they are placed on.  Additions only increase loads, so one pass
   suffices. *)
let run_r_visit_exchange ?lazy_walk ?obs rng g ~source ~agents ~max_rounds () =
  let n = Graph.n g in
  let base = Placement.count agents g in
  let clamp p occ vertex_time ~round =
    (* the paper applies the lower clamp after odd rounds (agents move
       independently of the coupling on even rounds); round 0 counts *)
    if round land 1 = 0 && round <> 0 then 0
    else begin
      let added = ref 0 in
      for u = 0 to n - 1 do
        let need =
          int_of_float
            (ceil (float_of_int (base * Graph.degree g u) /. float_of_int (2 * n)))
        in
        let deficit = ref (need - neighborhood_load g occ u) in
        while !deficit > 0 do
          (* top up the emptiest neighbor of u *)
          let host = ref (-1) in
          Graph.iter_neighbors g u (fun v ->
              if !host < 0 || occ.(v) < occ.(!host) then host := v);
          let slot = Agent_pool.spawn p !host in
          if vertex_time.(!host) <= round then Agent_pool.set_informed_at p slot round;
          occ.(!host) <- occ.(!host) + 1;
          incr added;
          decr deficit
        done
      done;
      !added
    end
  in
  engine ?lazy_walk ?obs rng g ~source ~agents ~max_rounds ~clamp ()
