(** Quasirandom rumor spreading (Doerr–Friedrich–Sauerwald [19], cited in
    Section 2).

    Each vertex has a fixed cyclic order of its neighbors (here: the CSR
    order).  When a vertex becomes informed it picks only a {e random
    starting position} in its cycle; thereafter it informs its neighbors
    deterministically in cyclic order, one per round.  The model uses
    exponentially fewer random bits than push (log deg per vertex instead
    of log deg per round) yet achieves the same O(log n) broadcast time on
    expanders, hypercubes and random graphs.

    Ablation R3 compares it to fully random push across regular families. *)

val run :
  ?obs:Rumor_obs.Instrument.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** [run rng g ~source ~max_rounds ()] — same conventions as {!Push.run}. *)
