module Rng = Rumor_prob.Rng
module Dist = Rumor_prob.Dist
module Graph = Rumor_graph.Graph
module Placement = Rumor_agents.Placement

type mode = Dense | Sparse | Auto

let auto_threshold = 65536

let mode_to_string = function
  | Dense -> "dense"
  | Sparse -> "sparse"
  | Auto -> "auto"

let mode_of_string = function
  | "dense" -> Some Dense
  | "sparse" -> Some Sparse
  | "auto" -> Some Auto
  | _ -> None

let use_sparse mode spec g =
  match mode with
  | Dense -> false
  | Sparse -> true
  | Auto -> Placement.count spec g >= auto_threshold

(* Both per-vertex counts live packed in one word — uninformed in bits
   0..30, informed in bits 31..61 — so a walker deposit touches exactly one
   cache line instead of two parallel arrays.  k < 2^31 keeps either field
   from overflowing into the other. *)
let shift = 31
let mask = (1 lsl shift) - 1
let inf_one = 1 lsl shift

type t = {
  g : Graph.t;
  lazy_walk : bool;
  k : int;
  mutable cnt : int array;      (* packed (uninformed, informed) per vertex *)
  mutable cnt_next : int array; (* double-buffered scatter destinations *)
  mutable occ : int array;      (* occupied vertices, ascending, prefix occ_len *)
  mutable occ_len : int;
  mutable occ_next : int array; (* first-touch order during a scatter *)
  mutable occ_next_len : int;
}

let create ?(who = "Sparse_walkers.create") ~lazy_walk rng g spec =
  let counts =
    try Placement.place_counts rng spec g
    with Invalid_argument _ -> invalid_arg (who ^ ": no agents")
  in
  let n = Graph.n g in
  let k = ref 0 in
  let occ_len = ref 0 in
  let occ = Array.make (max n 1) 0 in
  let check_isolated = Graph.min_degree g = 0 in
  for v = 0 to n - 1 do
    if counts.(v) > 0 then begin
      if check_isolated && Graph.degree g v = 0 then
        invalid_arg (who ^ ": agent on isolated vertex");
      k := !k + counts.(v);
      occ.(!occ_len) <- v;
      incr occ_len
    end
  done;
  if !k = 0 then invalid_arg (who ^ ": no agents");
  if !k > mask then invalid_arg (who ^ ": more than 2^31 - 1 agents");
  {
    g;
    lazy_walk;
    k = !k;
    (* uninformed counts occupy the low bits, so the placement histogram is
       already the packed representation *)
    cnt = counts;
    cnt_next = Array.make n 0;
    occ;
    occ_len = !occ_len;
    occ_next = Array.make (max n 1) 0;
    occ_next_len = 0;
  }

let agent_count t = t.k
let occupied_count t = t.occ_len
let[@inline] occupied_vertex t i = t.occ.(i)
let[@inline] uninformed_at t v = t.cnt.(v) land mask
let[@inline] informed_at t v = t.cnt.(v) lsr shift

let inform_all_at t v =
  let x = t.cnt.(v) in
  let cu = x land mask in
  if cu > 0 then t.cnt.(v) <- x - cu + (cu lsl shift);
  cu

(* In-place max-heap sort of the prefix [a.(0 .. len-1)] — no allocation, so
   the round loop stays scatter-only for the GC. *)
let sift_down a len root0 =
  let root = ref root0 in
  let live = ref true in
  while !live do
    let child = (2 * !root) + 1 in
    if child >= len then live := false
    else begin
      let child =
        if child + 1 < len && a.(child + 1) > a.(child) then child + 1
        else child
      in
      if a.(child) > a.(!root) then begin
        let tmp = a.(!root) in
        a.(!root) <- a.(child);
        a.(child) <- tmp;
        root := child
      end
      else live := false
    end
  done

let sort_prefix a len =
  for i = (len / 2) - 1 downto 0 do
    sift_down a len i
  done;
  for last = len - 1 downto 1 do
    let tmp = a.(0) in
    a.(0) <- a.(last);
    a.(last) <- tmp;
    sift_down a last 0
  done

(* Credit [c] (pre-scaled by the class unit) to destination [v], tracking
   first touches so the occupied list never needs a full clear. *)
let[@inline] deposit t v c =
  if c > 0 then begin
    let cnt_next = t.cnt_next in
    let x = cnt_next.(v) in
    if x = 0 then begin
      t.occ_next.(t.occ_next_len) <- v;
      t.occ_next_len <- t.occ_next_len + 1
    end;
    cnt_next.(v) <- x + c
  end

(* Split [count] walkers of one class (deposit unit [inc]: 1 for uninformed,
   [inf_one] for informed) leaving [u] across its deg(u) neighbor slots
   (plus the lazy self-slot).  Small populations draw one uniform slot per
   walker, O(count); large ones run the uniform-weight specialization of
   {!Dist.multinomial} — chained conditional binomials over the CSR slice,
   O(deg).  Both are exact. *)
let scatter rng t u count inc =
  if count > 0 then begin
    let g = t.g in
    let d = Graph.degree g u in
    let movers =
      if t.lazy_walk then begin
        let stay = Dist.binomial rng count 0.5 in
        deposit t u (stay * inc);
        count - stay
      end
      else count
    in
    if movers > 0 then
      if movers < d then
        for _ = 1 to movers do
          deposit t (Graph.neighbor g u (Rng.int rng d)) inc
        done
      else begin
        let rem = ref movers in
        let j = ref 0 in
        while !rem > 0 do
          let slots = d - !j in
          let c =
            if slots = 1 then !rem
            else Dist.binomial rng !rem (1.0 /. float_of_int slots)
          in
          deposit t (Graph.neighbor g u !j) (c * inc);
          rem := !rem - c;
          incr j
        done
      end
  end

(* lint: hot *)
let step rng t =
  let n = Graph.n t.g in
  let cnt = t.cnt in
  t.occ_next_len <- 0;
  (* occupied vertices are kept ascending, so the sweep reads the CSR in
     order; zeroing the source slot as we go leaves the old buffer all-zero
     for reuse next round *)
  for idx = 0 to t.occ_len - 1 do
    let u = t.occ.(idx) in
    let x = cnt.(u) in
    cnt.(u) <- 0;
    scatter rng t u (x land mask) 1;
    scatter rng t u (x lsr shift) inf_one
  done;
  t.cnt <- t.cnt_next;
  t.cnt_next <- cnt;
  let old_occ = t.occ in
  t.occ <- t.occ_next;
  t.occ_next <- old_occ;
  t.occ_len <- t.occ_next_len;
  (* restore ascending order: when occupancy is dense an O(n) rebuild beats
     sorting; otherwise heapsort the prefix in place *)
  if t.occ_len * 8 >= n then begin
    let occ = t.occ and cnt = t.cnt in
    let len = ref 0 in
    for v = 0 to n - 1 do
      if cnt.(v) <> 0 then begin
        occ.(!len) <- v;
        incr len
      end
    done;
    t.occ_len <- !len
  end
  else sort_prefix t.occ t.occ_len
