(** Growable informed-count curve buffer shared by the sync protocols.

    A protocol records one curve point per simulated round.  Pre-sizing that
    curve to the round cap makes memory O(cap), which breaks "uncapped" runs
    ([max_rounds = max_int] style); this buffer grows by doubling instead, so
    memory is O(rounds actually run). *)

type t

val create : hint:int -> t
(** [create ~hint] is an empty buffer.  [hint] is the round cap (so the
    curve holds at most [hint + 1] points); at most 64 slots are allocated
    up front, so a generous — even [max_int] — cap costs nothing.
    @raise Invalid_argument if [hint < 0]. *)

val push : t -> int -> unit
(** Append one curve point, growing the backing store if needed. *)

val length : t -> int

val get : t -> int -> int
(** @raise Invalid_argument out of range. *)

val set_last : t -> int -> unit
(** Overwrite the most recently pushed point.
    @raise Invalid_argument on an empty buffer. *)

val contents : t -> int array
(** Fresh array of the points pushed so far, in order. *)
