module Rng = Rumor_prob.Rng
module Dist = Rumor_prob.Dist
module Graph = Rumor_graph.Graph
module Event_queue = Rumor_des.Event_queue
module Obs = Rumor_obs.Instrument
module Trace = Rumor_obs.Trace

(* Sampling the queue/informed series every event would swamp the trace —
   the DES loops sample every 2^10 rings (a power of two so the test mask
   is exact), plus once at loop exit. *)
let trace_sample_mask = 1023

let[@inline] des_sample trace ~rings ~queue_size ~informed =
  match trace with
  | None -> ()
  | Some tr ->
      if rings land trace_sample_mask = 0 then begin
        Trace.counter tr "queue" queue_size;
        Trace.counter tr "informed" informed
      end

type variant = Async_push | Async_push_pull

type result = {
  broadcast_time : float option;
  rings : int;
  informed : int;
  curve : int array;
}

(* Integer-mark curve shared by the legacy loops and Async_engine: the
   curve value at mark m is the informed count after every event with
   time <= m.  Marks strictly below the current event's time are emitted
   just before the event applies (the DES pops in time order, so at that
   point every earlier event has been processed). *)
let[@inline] curve_marks curve next_mark ~now ~count =
  while now > float_of_int !next_mark do
    Curve_buf.push curve count;
    incr next_mark
  done

let curve_hint max_time =
  if max_time >= 1e15 then max_int else int_of_float (Float.ceil max_time)

(* completion: pad with the final count up to mark ceil(finish) *)
let curve_finish curve ~finish ~count =
  let last = int_of_float (Float.ceil finish) in
  while Curve_buf.length curve < last + 1 do
    Curve_buf.push curve count
  done;
  last

(* cap: every integer mark <= max_time is determined, pad through it *)
let curve_cap curve next_mark ~max_time ~count =
  while float_of_int !next_mark <= max_time do
    Curve_buf.push curve count;
    incr next_mark
  done

let to_run_result r =
  Run_result.make
    ~broadcast_time:(Option.map (fun t -> int_of_float (Float.ceil t)) r.broadcast_time)
    ~rounds_run:(Array.length r.curve - 1)
    ~informed_curve:r.curve ~contacts:r.rings ()

let run ?obs ?trace rng g ~variant ~source ~max_time =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Async_push.run: source out of range";
  if not (max_time > 0.0) then invalid_arg "Async_push.run: max_time must be positive";
  (* Clock-stream contract (see the mli): the first operation on [rng]
     splits off a dedicated generator for the Poisson clocks.  Every
     exponential gap comes from [clock] in schedule order and every other
     draw (neighbor picks) from [rng] in event order, which is exactly the
     consumption order of Async_engine's batched clock stream — so engine
     and legacy runs are bit-identical on the same seed. *)
  let clock = Rng.split rng in
  let informed = Array.make n false in
  let informed_count = ref 1 in
  informed.(source) <- true;
  let queue = Event_queue.create () in
  let schedule u now = Event_queue.push queue (now +. Dist.exponential clock 1.0) u in
  (* push only needs clocks on informed vertices; push-pull needs everyone *)
  (match variant with
  | Async_push -> schedule source 0.0
  | Async_push_pull ->
      for u = 0 to n - 1 do
        schedule u 0.0
      done);
  let curve = Curve_buf.create ~hint:(curve_hint max_time) in
  Curve_buf.push curve !informed_count;
  let next_mark = ref 1 in
  let rings = ref 0 in
  let finish_time = ref None in
  let running = ref true in
  (match trace with
  | None -> ()
  | Some tr -> Trace.begin_span tr "async_push.loop");
  while !running do
    match Event_queue.pop queue with
    | None -> running := false
    | Some (now, u) ->
        if now > max_time then running := false
        else begin
          incr rings;
          des_sample trace ~rings:!rings ~queue_size:(Event_queue.size queue)
            ~informed:!informed_count;
          curve_marks curve next_mark ~now ~count:!informed_count;
          let v = Graph.random_neighbor g rng u in
          Obs.contact obs u v;
          (match variant with
          | Async_push ->
              if not informed.(v) then begin
                informed.(v) <- true;
                incr informed_count;
                schedule v now
              end
          | Async_push_pull ->
              if informed.(u) && not informed.(v) then begin
                informed.(v) <- true;
                incr informed_count
              end
              else if informed.(v) && not informed.(u) then begin
                informed.(u) <- true;
                incr informed_count
              end);
          if !informed_count = n then begin
            finish_time := Some now;
            running := false
          end
          else schedule u now
        end
  done;
  (match !finish_time with
  | Some f -> ignore (curve_finish curve ~finish:f ~count:!informed_count)
  | None -> curve_cap curve next_mark ~max_time ~count:!informed_count);
  (match trace with
  | None -> ()
  | Some tr ->
      Trace.end_span tr;
      Trace.counter tr "informed" !informed_count;
      Rumor_obs.Counters.add
        (Rumor_obs.Counters.counter (Trace.counters tr) "rings")
        !rings);
  {
    broadcast_time = !finish_time;
    rings = !rings;
    informed = !informed_count;
    curve = Curve_buf.contents curve;
  }
