(** The pull protocol (Demers et al. [15]'s anti-entropy counterpart to
    push).

    In every round, each {e uninformed} vertex samples a uniformly random
    neighbor and learns the rumor if that neighbor was informed before the
    round.  Pull is the mirror image of push: it is extremely fast once
    most vertices are informed (each straggler succeeds with probability
    ~deg-fraction informed) but slow to get going — the reason push-pull
    combines both.  Included as a baseline for the push-pull comparisons. *)

val run :
  ?traffic:Traffic.t ->
  ?obs:Rumor_obs.Instrument.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** [run rng g ~source ~max_rounds ()].  Contacts count one per pull call
    (one per uninformed vertex per round). *)
