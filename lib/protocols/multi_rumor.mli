(** Multiple rumors over one agent population — the paper's motivating
    setting for stationary starts (Section 1):

    "several pieces of information (or rumors) are generated frequently and
    distributed in parallel over time by the same set of agents, which
    execute perpetual independent random walks."

    This runs visit-exchange with up to 62 rumors, each with its own source
    vertex and injection round.  Vertices and agents carry rumor {e sets}
    (an int bitmask), and every agent–vertex visit unions the two sets in
    both directions, so all rumors ride the same walks at no extra
    communication rounds.  Experiment R6 checks that per-rumor broadcast
    times in the multi-rumor run match the single-rumor broadcast time —
    rumors do not slow each other down. *)

type injection = { rumor_source : int; start_round : int }

type result = {
  per_rumor_time : int array;
      (** completion round per rumor, measured from its injection round;
          [max_int] if not complete when the run ended *)
  rounds_run : int;
  all_done : bool;
}

val run :
  ?lazy_walk:bool ->
  ?obs:Rumor_obs.Instrument.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  injections:injection array ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  result
(** [run rng g ~injections ~agents ~max_rounds].  At round
    [start_round] of injection [i], its source vertex (and the agents
    standing on it) learn rumor [i]; spreading then follows the
    visit-exchange rules rumor-wise.  @raise Invalid_argument if there are
    no injections, more than 62, or any source/round is out of range. *)
