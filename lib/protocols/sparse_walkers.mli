(** Count-compressed random-walker state for the sparse engine kernels.

    Walkers are exchangeable up to informed-status, so per-vertex counts —
    uninformed and informed, packed two to a word so a deposit touches one
    cache line — are a sufficient statistic for visit-exchange and
    meet-exchange rounds.  A round becomes one CSR-ordered sweep over the
    {e occupied} vertices: each vertex's population is split among its
    [deg u] neighbor slots (plus the lazy self-slot) by the uniform-weight
    specialization of {!Rumor_prob.Dist.multinomial} (chained conditional
    binomials), writing into a double-buffered destination array.
    Per-round cost is
    O(occupied + Σ min(movers_u, deg u)) ≤ O(occupied + k) plus the
    occupied-list canonicalization, instead of O(k) random-access draws
    over a per-agent position array.

    {b Determinism contract.}  Runs are a pure function of the rng seed,
    but the stream is {e not} bit-identical to the dense per-agent kernels:
    agent identity is erased and draws happen per occupied vertex, not per
    agent.  Dense and sparse agree distributionally — experiment A10 gates
    the mean broadcast-time ratio.  Because agent identity is gone, the
    per-agent [on_contact]/[on_walker_move] hooks cannot fire; sparse
    kernels report the aggregate {!Rumor_obs.Instrument.t.on_occupancy}
    event instead. *)

module Graph = Rumor_graph.Graph
module Placement = Rumor_agents.Placement

(** Which walker representation an engine kernel uses.  [Auto] picks
    [Sparse] when the placement spec yields at least {!auto_threshold}
    agents. *)
type mode = Dense | Sparse | Auto

val auto_threshold : int

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

val use_sparse : mode -> Placement.spec -> Graph.t -> bool
(** Resolve a mode against a concrete placement. *)

type t

val create :
  ?who:string ->
  lazy_walk:bool ->
  Rumor_prob.Rng.t ->
  Graph.t ->
  Placement.spec ->
  t
(** Place agents as per-vertex counts ({!Placement.place_counts} — same rng
    consumption as the dense placement) with every walker uninformed.
    @raise Invalid_argument if the spec yields no agents, yields 2^31 or
    more (the packed-count field width), or puts one on an isolated vertex
    (the check is skipped in O(1) when [Graph.min_degree g > 0]). *)

val agent_count : t -> int
val occupied_count : t -> int

val occupied_vertex : t -> int -> int
(** [occupied_vertex t i] for [0 <= i < occupied_count t]: the [i]-th
    occupied vertex in ascending order.  Unchecked. *)

val uninformed_at : t -> int -> int
val informed_at : t -> int -> int

val inform_all_at : t -> int -> int
(** Convert every uninformed walker at [v] to informed; returns how many
    converted. *)

val step : Rumor_prob.Rng.t -> t -> unit
(** One synchronized walk round: scatter every occupied vertex's population,
    swap buffers, and re-canonicalize the occupied list to ascending
    order. *)
