(** Continuous-time meet-exchange: the [33, 34] variant of the paper's
    agent-only protocol (Kesten–Sidoravicius studied it on the infinite
    grid; here it runs on finite graphs).

    Each agent carries an independent unit-rate Poisson clock; when it
    rings, the agent jumps to a uniformly random neighbor and exchanges the
    rumor with every agent standing on its new vertex.  The source vertex
    informs the first agent to occupy it (agents starting there count).

    Because moves are never simultaneous, the bipartite parity trap of the
    synchronous protocol disappears: two agents on K_2 meet in O(1) expected
    time even though their synchronized counterparts would swap forever.
    Ablation A8 measures exactly this (passing [~lazy_walk:false]
    explicitly), alongside the continuous/discrete agreement on
    non-bipartite graphs. *)

type result = {
  broadcast_time : float option;
      (** continuous time when every agent is informed; [None] if capped *)
  rings : int;
  informed : int;
  agents : int;
  curve : int array;
      (** informed-agent count sampled at integer times, in the format of
          {!Async_push.result}'s curve *)
}

val run :
  ?obs:Rumor_obs.Instrument.t ->
  ?trace:Rumor_obs.Trace.t ->
  ?lazy_walk:bool ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_time:float ->
  result
(** [run rng g ~source ~agents ~max_time].  An omitted [lazy_walk]
    resolves like {!Meet_exchange.run}: lazy iff the graph is bipartite.
    Continuous time terminates either way — the default only keeps the walk
    law aligned with the synchronous protocol's safe default; pass
    [~lazy_walk:false] to study the pure [33]/[34] model on bipartite
    graphs.  The model has no rounds, so [obs] receives [on_walker_move]
    (one per ring) and [on_contact] (one per newly informed agent).
    Follows the clock-stream contract of {!Async_push}: clock gaps come
    from a generator split off [rng] up front, placement and walk draws
    from [rng] itself — so {!Async_engine.meet_exchange} is bit-identical
    on the same seed.
    @raise Invalid_argument on a bad source or non-positive [max_time]. *)

val to_run_result : result -> Run_result.t
(** Project onto the synchronous result type, like
    {!Async_push.to_run_result}; [contacts] counts one contact per newly
    informed agent and [all_agents_informed] equals the (rounded-up)
    broadcast time. *)
