(** Million-node hot-path engine for the four core round kernels.

    Same protocols as {!Push}, {!Push_pull}, {!Visit_exchange} and
    {!Meet_exchange}, re-expressed over flat state: informed sets live in
    {!Bitset}s (1 bit per vertex/agent), the push frontier and walker
    positions are dense [int array]s over the CSR graph, and curves grow in
    {!Curve_buf}s — per-run memory is O(n + m + rounds run) words and a run
    at n = 10^7 is a few GB dominated by the graph itself.

    {2 Determinism}

    - [?shards:1] (the default) consumes the caller's [rng] in exactly the
      legacy kernel's order, so the whole {!Run_result} — curves, contact
      counts, optional [tau] array, and the [?obs]/[?traffic] streams — is
      bit-identical to the corresponding legacy run on the same seed.
    - [?shards:S] with [S > 1] draws each round's random choices from
      [Rng.split_n rng S], one child per contiguous shard
      ({!Rumor_par.Parallel_for} geometry), and applies all state updates in
      a sequential merge in frontier/agent order after the shards join.  The
      result is a pure function of (seed, S): the [?pool]'s parallelism
      degree schedules work but can never change a bit of the output.

    {2 Tracing}

    [?trace] records one span per round (["<kernel>.round"], [arg] = round
    number) with draw/merge (or walk/buckets/spread) child spans, per-shard
    spans on the worker tracks ({!Rumor_par.Pool.init_traced}), an
    ["informed"] counter series sampled at round boundaries, and scalar
    [rounds]/[contacts] counters plus a contacts-per-round histogram in the
    tracer's registry.  Tracing never consumes randomness, so traced and
    untraced runs on the same seed produce bit-identical {!Run_result}s;
    with [?trace] absent the kernels execute the untraced instruction
    stream — no clock reads, no allocation (pinned by an allocation test).

    All kernels raise [Invalid_argument] on an out-of-range [source], a
    negative [max_rounds], or [shards < 1].  [?pool] defaults to a
    sequential one-job pool and is only consulted when [shards > 1].

    {2 Sparse walkers}

    The walker kernels ({!visit_exchange}, {!meet_exchange}) take
    [?walkers], a {!Sparse_walkers.mode}.  [Dense] (the default) keeps the
    per-agent position array and every guarantee above.  [Sparse] switches
    to {!Sparse_walkers}' count-compressed representation — per-vertex
    (uninformed, informed) counts swept in CSR order — which removes every
    O(k) per-agent structure and unlocks VE/ME at n = 10^7.  Sparse runs
    are a pure function of the seed but {e not} bit-identical to dense
    (agent identity is erased; experiment A10 gates the distributional
    agreement), run sequentially ([?shards]/[?pool] are ignored), report
    the aggregate [on_occupancy] hook instead of per-agent
    [on_contact]/[on_walker_move] events, and reject [?traffic]
    ([Invalid_argument]).  [Auto] picks sparse when the placement yields at
    least {!Sparse_walkers.auto_threshold} agents. *)

val push :
  ?traffic:Traffic.t ->
  ?obs:Rumor_obs.Instrument.t ->
  ?trace:Rumor_obs.Trace.t ->
  ?failure_prob:float ->
  ?tau:int array ->
  ?shards:int ->
  ?pool:Rumor_par.Pool.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** Synchronous push.  [?tau], when given, must have length [n] and is
    filled with each vertex's informing round ([max_int] if never informed)
    — the engine counterpart of [Push.informed_times].
    @raise Invalid_argument also if [failure_prob] is outside [0, 1) or
    [tau] has the wrong length. *)

val push_pull :
  ?traffic:Traffic.t ->
  ?obs:Rumor_obs.Instrument.t ->
  ?trace:Rumor_obs.Trace.t ->
  ?shards:int ->
  ?pool:Rumor_par.Pool.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** Synchronous push–pull. *)

val visit_exchange :
  ?traffic:Traffic.t ->
  ?obs:Rumor_obs.Instrument.t ->
  ?trace:Rumor_obs.Trace.t ->
  ?lazy_walk:bool ->
  ?walkers:Sparse_walkers.mode ->
  ?shards:int ->
  ?pool:Rumor_par.Pool.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** Visit-Exchange over flat walker arrays ([?lazy_walk] defaults to
    [false], as in {!Visit_exchange}). *)

val meet_exchange :
  ?traffic:Traffic.t ->
  ?obs:Rumor_obs.Instrument.t ->
  ?trace:Rumor_obs.Trace.t ->
  ?lazy_walk:bool ->
  ?walkers:Sparse_walkers.mode ->
  ?shards:int ->
  ?pool:Rumor_par.Pool.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** Meet-Exchange; an omitted [?lazy_walk] resolves to bipartiteness of the
    graph, exactly as {!Meet_exchange.run}. *)

val combined :
  ?obs:Rumor_obs.Instrument.t ->
  ?trace:Rumor_obs.Trace.t ->
  ?lazy_walk:bool ->
  ?shards:int ->
  ?pool:Rumor_par.Pool.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** The Combined protocol (push–pull frontier half + visit-exchange walker
    half in one round) on the engine's flat state; bit-identical to
    {!Combined.run} at [?shards:1] on the same seed, obs stream included.
    [?lazy_walk] defaults to [false], as in the legacy module.  Dense
    walkers only — the sparse representation has no combined kernel. *)
