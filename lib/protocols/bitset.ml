(* Dense bit-per-element membership over [0, n), backed by Bytes.  The
   engine keeps informed-state in these instead of int arrays: 1 bit per
   vertex instead of 1 word makes the n = 10^7 working set cache-resident
   (1.25 MB instead of 80 MB) and snapshot copies a memcpy.

   Accessors use the unsafe Bytes primitives: every caller in the engine
   indexes with a vertex or agent id already validated against n, and the
   byte index i lsr 3 is in range whenever i is. *)

type t = Bytes.t

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  Bytes.make ((n + 7) lsr 3) '\000'

(* lint: hot *)
let mem t i =
  Char.code (Bytes.unsafe_get t (i lsr 3)) land (1 lsl (i land 7)) <> 0

(* lint: hot *)
let add t i =
  let byte = i lsr 3 in
  Bytes.unsafe_set t byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t byte) lor (1 lsl (i land 7))))

let snapshot ~src ~dst = Bytes.blit src 0 dst 0 (Bytes.length src)

let clear t = Bytes.fill t 0 (Bytes.length t) '\000'
