(** push-pull and visit-exchange run side by side on a shared informed set.

    The paper's introduction observes that "agent-based information
    dissemination, separately or in combination with push-pull, can
    significantly improve the broadcast time": each mechanism covers the
    other's bad cases (push-pull is slow on the double star, visit-exchange
    on the heavy binary tree).  This protocol executes one round of both
    mechanisms per round, with a vertex informed as soon as either informs
    it; agents learn from vertices as in visit-exchange.

    Experiment E10 verifies the claim: the combination is logarithmic on
    both families that defeat the individual protocols. *)

val run :
  ?obs:Rumor_obs.Instrument.t ->
  ?lazy_walk:bool ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** [run rng g ~source ~agents ~max_rounds ()] — same conventions as
    {!Visit_exchange.run}; the informed curve counts vertices. *)
