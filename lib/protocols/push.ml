module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Obs = Rumor_obs.Instrument

(* Shared engine: simulates push and fills [tau] with per-vertex informing
   rounds.  Work per round is O(number of vertices informed in previous
   rounds), using a dense array of informed vertices in informing order. *)
let simulate ?traffic ?obs ?(failure_prob = 0.0) rng g ~source ~max_rounds tau =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Push.run: source out of range";
  if max_rounds < 0 then invalid_arg "Push.run: negative round cap";
  if not (failure_prob >= 0.0 && failure_prob < 1.0) then
    invalid_arg "Push.run: failure_prob outside [0, 1)";
  Array.fill tau 0 n max_int;
  let order = Array.make n 0 in
  (* order.(0 .. count-1) lists informed vertices; the first [active] of them
     were informed in a previous round and push this round *)
  tau.(source) <- 0;
  order.(0) <- source;
  let count = ref 1 in
  let contacts = ref 0 in
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let t = ref 0 in
  while !count < n && !t < max_rounds do
    incr t;
    Obs.round_start obs !t;
    let active = !count in
    for i = 0 to active - 1 do
      let u = order.(i) in
      let v = Graph.random_neighbor g rng u in
      incr contacts;
      Obs.contact obs u v;
      (match traffic with Some tr -> Traffic.record tr u v | None -> ());
      let delivered =
        Float.equal failure_prob 0.0 || not (Rng.bernoulli rng failure_prob)
      in
      if delivered && tau.(v) = max_int then begin
        tau.(v) <- !t;
        order.(!count) <- v;
        incr count
      end
    done;
    Curve_buf.push curve !count;
    Obs.round_end obs ~round:!t ~informed:!count ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time = if !count = n then Some rounds_run else None in
  Run_result.make ~broadcast_time ~rounds_run
    ~informed_curve:(Curve_buf.contents curve)
    ~contacts:!contacts ()

let run ?traffic ?obs ?failure_prob rng g ~source ~max_rounds () =
  let tau = Array.make (Graph.n g) max_int in
  simulate ?traffic ?obs ?failure_prob rng g ~source ~max_rounds tau

let informed_times rng g ~source ~max_rounds =
  let tau = Array.make (Graph.n g) max_int in
  let (_ : Run_result.t) = simulate rng g ~source ~max_rounds tau in
  tau
