(** Deterministic flooding: each round, every vertex informed in the
    previous round sends the rumor to all its neighbors.

    Flooding completes in exactly [ecc(source)] rounds — the graph-distance
    lower bound every protocol in this library is measured against.  The
    implementation floods from the newly informed frontier only (informing
    is idempotent, so re-sends change nothing), which makes the total
    message count exactly the sum of frontier degrees — at most [2m] over
    the whole run.  It is the natural baseline for the time floor. *)

val run :
  ?obs:Rumor_obs.Instrument.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** [run g ~source ~max_rounds ()].  No randomness is involved.  Contacts
    count one per directed edge out of each round's frontier. *)
