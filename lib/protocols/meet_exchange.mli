(** The meet-exchange protocol (Section 3 of the paper).

    Only agents store information.  Round 0 informs every agent standing on
    the source; if there is none, the {e first} agents to visit the source
    later become informed (all of them, if several arrive simultaneously),
    after which the source stops informing.  In each round, whenever two
    agents meet on a vertex and exactly one of them was informed in a
    previous round, the other becomes informed.  Broadcast completes when
    all {e agents} are informed.

    On bipartite graphs the non-lazy process can fail to complete (walks in
    opposite parity classes never meet), where the paper requires lazy walks
    for an a.s.-finite broadcast time.  An omitted [lazy_walk] therefore
    resolves automatically: lazy iff {!Rumor_graph.Algo.is_bipartite} holds
    (the [Lazy_auto] convention of [Rumor_sim.Protocol]).  Pass
    [~lazy_walk:false] explicitly to opt back into the unsafe non-lazy
    process, e.g. to exhibit the parity trap. *)

val run :
  ?traffic:Traffic.t ->
  ?obs:Rumor_obs.Instrument.t ->
  ?lazy_walk:bool ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** [run rng g ~source ~agents ~max_rounds ()].  The informed curve counts
    informed {e agents}.  Contacts count one per agent→agent transfer plus
    one per source→agent transfer.  [lazy_walk] defaults to bipartiteness
    of [g] (see above); [obs] receives round, contact and walker-move
    hooks. *)

val run_auto :
  ?traffic:Traffic.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** Alias of {!run} with [lazy_walk] omitted, kept for compatibility: since
    the default now resolves by bipartiteness, [run_auto = run]. *)

(** Detailed outcome with per-agent informing rounds. *)
type detailed = {
  result : Run_result.t;
  agent_time : int array;
  first_pickup : int option;  (** round the source handed off the rumor *)
}

val run_detailed :
  ?traffic:Traffic.t ->
  ?obs:Rumor_obs.Instrument.t ->
  ?lazy_walk:bool ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  unit ->
  detailed
