(** The push-pull rumor-spreading protocol (Karp et al.; Section 3 of the
    paper).

    In every round [t >= 1], {e every} vertex — informed or not — samples a
    uniformly random neighbor, and if exactly one endpoint of the resulting
    contact was informed before round [t], the other endpoint becomes
    informed.  Work per round is Theta(n); broadcast completes when all
    vertices are informed. *)

val run :
  ?traffic:Traffic.t ->
  ?obs:Rumor_obs.Instrument.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** [run rng g ~source ~max_rounds ()].  Each vertex's call counts as one
    contact (n contacts per round). @raise Invalid_argument on a bad source
    or an isolated vertex. *)
