module Graph = Rumor_graph.Graph
module Obs = Rumor_obs.Instrument

type result = {
  run_result : Run_result.t;
  max_front : int;
}

let run ?obs rng g ~source ~branching ~max_rounds () =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Cobra.run: source out of range";
  if branching < 1 then invalid_arg "Cobra.run: branching < 1";
  if max_rounds < 0 then invalid_arg "Cobra.run: negative round cap";
  let visited = Array.make n false in
  visited.(source) <- true;
  let visited_count = ref 1 in
  (* the pebbled front, as a dense array plus a membership stamp to merge
     duplicates in O(1) per pebble *)
  let front = Array.make n 0 in
  let front_len = ref 1 in
  front.(0) <- source;
  let stamp = Array.make n (-1) in
  let next = Array.make n 0 in
  let contacts = ref 0 in
  let max_front = ref 1 in
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let t = ref 0 in
  while !visited_count < n && !front_len > 0 && !t < max_rounds do
    incr t;
    let round = !t in
    Obs.round_start obs round;
    let next_len = ref 0 in
    for i = 0 to !front_len - 1 do
      let u = front.(i) in
      for _ = 1 to branching do
        let v = Graph.random_neighbor g rng u in
        incr contacts;
        Obs.contact obs u v;
        if stamp.(v) <> round then begin
          stamp.(v) <- round;
          next.(!next_len) <- v;
          incr next_len;
          if not visited.(v) then begin
            visited.(v) <- true;
            incr visited_count
          end
        end
      done
    done;
    Array.blit next 0 front 0 !next_len;
    front_len := !next_len;
    if !next_len > !max_front then max_front := !next_len;
    Curve_buf.push curve !visited_count;
    Obs.round_end obs ~round ~informed:!visited_count ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time = if !visited_count = n then Some rounds_run else None in
  {
    run_result =
      Run_result.make ~broadcast_time ~rounds_run
        ~informed_curve:(Curve_buf.contents curve)
        ~contacts:!contacts ();
    max_front = !max_front;
  }
