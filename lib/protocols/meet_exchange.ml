module Graph = Rumor_graph.Graph
module Walkers = Rumor_agents.Walkers
module Obs = Rumor_obs.Instrument

type detailed = {
  result : Run_result.t;
  agent_time : int array;
  first_pickup : int option;
}

let step_walkers ?traffic ?obs w =
  match (traffic, obs) with
  | None, None -> Walkers.step w
  | _ ->
      Walkers.step_with w (fun a from to_ ->
          (match traffic with
          | Some tr when from <> to_ -> Traffic.record tr from to_
          | _ -> ());
          Obs.walker_move obs ~agent:a ~from_:from ~to_:to_)

let run_detailed ?traffic ?obs ?lazy_walk rng g ~source ~agents ~max_rounds () =
  let n = Graph.n g in
  if source < 0 || source >= n then
    invalid_arg "Meet_exchange.run: source out of range";
  if max_rounds < 0 then invalid_arg "Meet_exchange.run: negative round cap";
  (* Unsafe-default fix: on a bipartite graph the non-lazy process can
     deadlock (walks in opposite parity classes never meet), so an omitted
     [lazy_walk] resolves by testing bipartiteness — the same Lazy_auto
     convention as Rumor_sim.Protocol.  Pass [~lazy_walk:false] explicitly
     to study the parity trap. *)
  let lazy_walk =
    match lazy_walk with
    | Some b -> b
    | None -> Rumor_graph.Algo.is_bipartite g
  in
  let w = Walkers.of_spec ~lazy_walk rng g agents in
  let k = Walkers.agent_count w in
  let agent_time = Array.make k max_int in
  let buckets = Walkers.Buckets.create w in
  let contacts = ref 0 in
  let informed = ref 0 in
  (* round 0: agents standing on the source are informed *)
  for a = 0 to k - 1 do
    if Walkers.position w a = source then begin
      agent_time.(a) <- 0;
      incr informed;
      incr contacts;
      Obs.contact obs source a
    end
  done;
  let source_active = ref (!informed = 0) in
  let first_pickup = ref (if !informed > 0 then Some 0 else None) in
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve !informed;
  let t = ref 0 in
  while !informed < k && !t < max_rounds do
    incr t;
    let round = !t in
    Obs.round_start obs round;
    step_walkers ?traffic ?obs w;
    Walkers.Buckets.refresh buckets w;
    (* source hand-off: the first agents to visit s become informed (all of
       them if simultaneous); they start spreading only next round *)
    if !source_active && Walkers.Buckets.count_at buckets source > 0 then begin
      Walkers.Buckets.iter_at buckets source (fun a ->
          if agent_time.(a) = max_int then begin
            agent_time.(a) <- round;
            incr informed;
            incr contacts;
            Obs.contact obs source a
          end);
      source_active := false;
      first_pickup := Some round
    end;
    (* meetings: a vertex holding some agent informed in a previous round
       informs every agent standing on it.  Chains within a round cannot
       occur: an agent informed this round shares its vertex with the
       (< round)-informed agent that informed it, so any third co-located
       agent is informed by that same witness directly. *)
    for v = 0 to n - 1 do
      if Walkers.Buckets.count_at buckets v >= 2 then begin
        let witness = ref false in
        Walkers.Buckets.iter_at buckets v (fun a ->
            if agent_time.(a) < round then witness := true);
        if !witness then
          Walkers.Buckets.iter_at buckets v (fun a ->
              if agent_time.(a) = max_int then begin
                agent_time.(a) <- round;
                incr informed;
                incr contacts;
                Obs.contact obs v a
              end)
      end
    done;
    Curve_buf.push curve !informed;
    Obs.round_end obs ~round ~informed:!informed ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time = if !informed = k then Some rounds_run else None in
  let result =
    Run_result.make ~all_agents_informed:broadcast_time ~broadcast_time
      ~rounds_run
      ~informed_curve:(Curve_buf.contents curve)
      ~contacts:!contacts ()
  in
  { result; agent_time; first_pickup = !first_pickup }

let run ?traffic ?obs ?lazy_walk rng g ~source ~agents ~max_rounds () =
  (run_detailed ?traffic ?obs ?lazy_walk rng g ~source ~agents ~max_rounds ()).result

let run_auto ?traffic rng g ~source ~agents ~max_rounds () =
  run ?traffic rng g ~source ~agents ~max_rounds ()
