module Graph = Rumor_graph.Graph
module Obs = Rumor_obs.Instrument

let run ?obs g ~source ~max_rounds () =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Flood.run: source out of range";
  if max_rounds < 0 then invalid_arg "Flood.run: negative round cap";
  let informed = Array.make n false in
  informed.(source) <- true;
  let frontier = ref [ source ] in
  let count = ref 1 in
  let contacts = ref 0 in
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let t = ref 0 in
  while !count < n && (not (List.is_empty !frontier)) && !t < max_rounds do
    incr t;
    Obs.round_start obs !t;
    let next = ref [] in
    List.iter
      (fun u ->
        Graph.iter_neighbors g u (fun v ->
            incr contacts;
            Obs.contact obs u v;
            if not informed.(v) then begin
              informed.(v) <- true;
              incr count;
              next := v :: !next
            end))
      !frontier;
    frontier := !next;
    Curve_buf.push curve !count;
    Obs.round_end obs ~round:!t ~informed:!count ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time = if !count = n then Some rounds_run else None in
  Run_result.make ~broadcast_time ~rounds_run
    ~informed_curve:(Curve_buf.contents curve)
    ~contacts:!contacts ()
