module Graph = Rumor_graph.Graph
module Walkers = Rumor_agents.Walkers
module Obs = Rumor_obs.Instrument

let run ?obs ?lazy_walk rng g ~source ~agents ~max_rounds () =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Combined.run: source out of range";
  if max_rounds < 0 then invalid_arg "Combined.run: negative round cap";
  let w = Walkers.of_spec ?lazy_walk rng g agents in
  let k = Walkers.agent_count w in
  let vertex_time = Array.make n max_int in
  let agent_time = Array.make k max_int in
  vertex_time.(source) <- 0;
  let informed_vertices = ref 1 in
  let contacts = ref 0 in
  for a = 0 to k - 1 do
    if Walkers.position w a = source then begin
      agent_time.(a) <- 0;
      incr contacts
    end
  done;
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let t = ref 0 in
  while !informed_vertices < n && !t < max_rounds do
    incr t;
    let round = !t in
    Obs.round_start obs round;
    let inform_vertex v =
      if vertex_time.(v) = max_int then begin
        vertex_time.(v) <- round;
        incr informed_vertices
      end
    in
    (* push-pull half: every vertex calls a random neighbor; exchanges use
       the informed-before-this-round state *)
    for u = 0 to n - 1 do
      let v = Graph.random_neighbor g rng u in
      incr contacts;
      Obs.contact obs u v;
      let u_before = vertex_time.(u) < round and v_before = vertex_time.(v) < round in
      if u_before && not v_before then inform_vertex v
      else if v_before && not u_before then inform_vertex u
    done;
    (* visit-exchange half: agents step, previously informed agents inform
       their vertex, uninformed agents learn from informed vertices *)
    (match obs with
    | None -> Walkers.step w
    | Some _ ->
        Walkers.step_with w (fun a from to_ ->
            Obs.walker_move obs ~agent:a ~from_:from ~to_:to_));
    for a = 0 to k - 1 do
      if agent_time.(a) < round then begin
        let v = Walkers.position w a in
        if vertex_time.(v) = max_int then begin
          incr contacts;
          Obs.contact obs a v
        end;
        inform_vertex v
      end
    done;
    for a = 0 to k - 1 do
      if agent_time.(a) = max_int && vertex_time.(Walkers.position w a) <= round
      then begin
        agent_time.(a) <- round;
        incr contacts;
        Obs.contact obs (Walkers.position w a) a
      end
    done;
    Curve_buf.push curve !informed_vertices;
    Obs.round_end obs ~round ~informed:!informed_vertices ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time = if !informed_vertices = n then Some rounds_run else None in
  Run_result.make ~broadcast_time ~rounds_run
    ~informed_curve:(Curve_buf.contents curve)
    ~contacts:!contacts ()
