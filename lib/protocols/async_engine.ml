module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Placement = Rumor_agents.Placement
module Event_queue = Rumor_des.Event_queue
module Calendar_queue = Rumor_des.Calendar_queue
module Exp_stream = Rumor_des.Exp_stream
module Obs = Rumor_obs.Instrument
module Trace = Rumor_obs.Trace

(* Million-event hot path for the two asynchronous DES kernels.  Same
   processes as Async_push / Async_meet_exchange, re-expressed over flat
   state: a Bitset informed set, an unboxed event loop (Queue_intf.pop_into
   — no [Some (time, payload)] per ring), intrusive int-array agent lists,
   and Exp(1) clock gaps pre-drawn in batches (Exp_stream) instead of one
   sampler call per ring.

   Determinism contract: both kernels follow the clock-stream contract
   documented in Async_push's mli — the first [rng] operation splits off
   the clock generator, gaps are consumed from it in schedule order, all
   other draws stay on [rng] in event order.  Because the legacy modules
   implement the identical contract, every result field (continuous
   broadcast time, ring count, integer-mark curve, obs streams) is
   bit-identical to the legacy run on the same seed, for either queue
   backend and any batch size.  test/test_async_engine.ml pins this. *)

(* same sparse trace cadence as the legacy DES loops *)
let trace_sample_mask = 1023

let[@inline] des_sample trace ~rings ~queue_size ~informed =
  match trace with
  | None -> ()
  | Some tr ->
      if rings land trace_sample_mask = 0 then begin
        Trace.counter tr "queue" queue_size;
        Trace.counter tr "informed" informed
      end

let[@inline] span_begin trace name =
  match trace with None -> () | Some tr -> Trace.begin_span tr name

let[@inline] des_loop_end trace ~informed ~rings =
  match trace with
  | None -> ()
  | Some tr ->
      Trace.end_span tr;
      Trace.counter tr "informed" informed;
      Rumor_obs.Counters.add
        (Rumor_obs.Counters.counter (Trace.counters tr) "rings")
        rings

module Make (Q : Rumor_des.Queue_intf.S) = struct
  (* lint: hot *)
  let push ?obs ?trace ~batch rng g ~variant ~source ~max_time (queue : int Q.t) =
    let n = Graph.n g in
    let clock = Exp_stream.create ~batch (Rng.split rng) in
    let informed = Bitset.create n in
    Bitset.add informed source;
    let informed_count = ref 1 in
    let schedule u now = Q.push queue (now +. Exp_stream.next clock) u in
    (match variant with
    | Async_push.Async_push -> schedule source 0.0
    | Async_push.Async_push_pull ->
        for u = 0 to n - 1 do
          schedule u 0.0
        done);
    let curve = Curve_buf.create ~hint:(Async_push.curve_hint max_time) in
    Curve_buf.push curve !informed_count;
    let next_mark = ref 1 in
    let slot = ref 0 in
    let rings = ref 0 in
    let finish_time = ref None in
    let running = ref true in
    span_begin trace "async_engine.push.loop";
    while !running do
      let now = Q.pop_into queue slot in
      if Float.is_nan now then running := false
      else if now > max_time then running := false
      else begin
        incr rings;
        des_sample trace ~rings:!rings ~queue_size:(Q.size queue)
          ~informed:!informed_count;
        Async_push.curve_marks curve next_mark ~now ~count:!informed_count;
        let u = !slot in
        let v = Graph.random_neighbor g rng u in
        Obs.contact obs u v;
        (match variant with
        | Async_push.Async_push ->
            if not (Bitset.mem informed v) then begin
              Bitset.add informed v;
              incr informed_count;
              schedule v now
            end
        | Async_push.Async_push_pull ->
            if Bitset.mem informed u && not (Bitset.mem informed v) then begin
              Bitset.add informed v;
              incr informed_count
            end
            else if Bitset.mem informed v && not (Bitset.mem informed u) then begin
              Bitset.add informed u;
              incr informed_count
            end);
        if !informed_count = n then begin
          finish_time := Some now;
          running := false
        end
        else schedule u now
      end
    done;
    (match !finish_time with
    | Some f -> ignore (Async_push.curve_finish curve ~finish:f ~count:!informed_count)
    | None -> Async_push.curve_cap curve next_mark ~max_time ~count:!informed_count);
    des_loop_end trace ~informed:!informed_count ~rings:!rings;
    {
      Async_push.broadcast_time = !finish_time;
      rings = !rings;
      informed = !informed_count;
      curve = Curve_buf.contents curve;
    }

  (* lint: hot *)
  let meet_exchange ?obs ?trace ~batch ~lazy_walk rng g ~source ~agents
      ~max_time (queue : int Q.t) =
    let n = Graph.n g in
    let clock = Exp_stream.create ~batch (Rng.split rng) in
    let pos = Placement.place rng agents g in
    let k = Array.length pos in
    let informed = Bitset.create (max k 1) in
    let informed_count = ref 0 in
    (* Intrusive per-vertex agent lists in three int arrays, replicating
       the legacy module's cons lists move for move: insertion is at the
       head and removal keeps the relative order of the others, so the
       traversal order (and with it the obs contact stream) is identical
       to [a :: agents_at.(v)] / [List.filter].  Built by ascending agent
       id exactly like the legacy [Array.iteri] fold. *)
    let head = Array.make (max n 1) (-1) in
    let next = Array.make (max k 1) (-1) in
    let prev = Array.make (max k 1) (-1) in
    for a = 0 to k - 1 do
      let v = pos.(a) in
      let h = head.(v) in
      next.(a) <- h;
      if h >= 0 then prev.(h) <- a;
      head.(v) <- a
    done;
    let source_active = ref true in
    let inform v a =
      if not (Bitset.mem informed a) then begin
        Bitset.add informed a;
        incr informed_count;
        Obs.contact obs v a
      end
    in
    let rec any_informed a =
      a >= 0 && (Bitset.mem informed a || any_informed next.(a))
    in
    let rec inform_all v a =
      if a >= 0 then begin
        inform v a;
        inform_all v next.(a)
      end
    in
    let exchange_at v =
      let any = any_informed head.(v) in
      let source_hit = !source_active && v = source && head.(v) >= 0 in
      if any || source_hit then begin
        inform_all v head.(v);
        if source_hit then source_active := false
      end
    in
    exchange_at source;
    let schedule a now = Q.push queue (now +. Exp_stream.next clock) a in
    for a = 0 to k - 1 do
      schedule a 0.0
    done;
    let curve = Curve_buf.create ~hint:(Async_push.curve_hint max_time) in
    Curve_buf.push curve !informed_count;
    let next_mark = ref 1 in
    let slot = ref 0 in
    let rings = ref 0 in
    let finish = ref None in
    let running = ref (!informed_count < k) in
    span_begin trace "async_engine.meet_exchange.loop";
    while !running do
      let now = Q.pop_into queue slot in
      if Float.is_nan now then running := false
      else if now > max_time then running := false
      else begin
        incr rings;
        des_sample trace ~rings:!rings ~queue_size:(Q.size queue)
          ~informed:!informed_count;
        Async_push.curve_marks curve next_mark ~now ~count:!informed_count;
        let a = !slot in
        let u = pos.(a) in
        let v =
          if lazy_walk && Rng.bool rng then u else Graph.random_neighbor g rng u
        in
        if v <> u then begin
          let p = prev.(a) in
          let nx = next.(a) in
          if p >= 0 then next.(p) <- nx else head.(u) <- nx;
          if nx >= 0 then prev.(nx) <- p;
          let h = head.(v) in
          next.(a) <- h;
          prev.(a) <- -1;
          if h >= 0 then prev.(h) <- a;
          head.(v) <- a;
          pos.(a) <- v
        end;
        Obs.walker_move obs ~agent:a ~from_:u ~to_:v;
        exchange_at v;
        if !informed_count = k then begin
          finish := Some now;
          running := false
        end
        else schedule a now
      end
    done;
    let finish = if !informed_count = k && Option.is_none !finish then Some 0.0 else !finish in
    (match finish with
    | Some f -> ignore (Async_push.curve_finish curve ~finish:f ~count:!informed_count)
    | None -> Async_push.curve_cap curve next_mark ~max_time ~count:!informed_count);
    des_loop_end trace ~informed:!informed_count ~rings:!rings;
    {
      Async_meet_exchange.broadcast_time = finish;
      rings = !rings;
      informed = !informed_count;
      agents = k;
      curve = Curve_buf.contents curve;
    }
end

module On_heap = Make (Event_queue)
module On_calendar = Make (Calendar_queue)

(* Count-compressed asynchronous meet-exchange: no event queue at all.  The
   superposition of k unit-rate Poisson clocks is one rate-k Poisson
   process whose rings pick a uniformly random walker — i.e. a vertex with
   probability proportional to its occupancy (a Fenwick tree over the
   per-vertex counts, O(log n) per ring) and then a class (uninformed /
   informed) by the count split, reusing the Fenwick residual as the
   second draw.  Exact in distribution, but not bit-identical to the dense
   kernel (agent identity and the per-agent queue order are gone), and no
   per-agent obs hooks can fire. *)
(* lint: hot *)
let meet_exchange_sparse ?trace ~batch ~lazy_walk rng g ~source ~agents
    ~max_time =
  let n = Graph.n g in
  let clock = Exp_stream.create ~batch (Rng.split rng) in
  let counts = Placement.place_counts rng agents g in
  let uninf = counts in
  let inf = Array.make n 0 in
  (if Graph.min_degree g = 0 then
     for v = 0 to n - 1 do
       if uninf.(v) > 0 && Graph.degree g v = 0 then
         invalid_arg "Async_engine.meet_exchange: agent on isolated vertex"
     done);
  let fw = Rumor_prob.Fenwick.of_counts counts in
  let k = Rumor_prob.Fenwick.total fw in
  let informed_count = ref 0 in
  let source_active = ref true in
  let exchange_at v =
    let cu = uninf.(v) and ci = inf.(v) in
    let source_hit = !source_active && v = source && cu + ci > 0 in
    if (ci > 0 || source_hit) && cu > 0 then begin
      inf.(v) <- ci + cu;
      uninf.(v) <- 0;
      informed_count := !informed_count + cu
    end;
    if source_hit then source_active := false
  in
  exchange_at source;
  let rate = float_of_int k in
  let curve = Curve_buf.create ~hint:(Async_push.curve_hint max_time) in
  Curve_buf.push curve !informed_count;
  let next_mark = ref 1 in
  let rings = ref 0 in
  let now = ref 0.0 in
  let finish_time = ref 0.0 in
  let finished = ref false in
  let running = ref (!informed_count < k) in
  span_begin trace "async_engine.meet_exchange.loop";
  while !running do
    let t = !now +. (Exp_stream.next clock /. rate) in
    if t > max_time then running := false
    else begin
      now := t;
      incr rings;
      des_sample trace ~rings:!rings ~queue_size:0 ~informed:!informed_count;
      Async_push.curve_marks curve next_mark ~now:t ~count:!informed_count;
      (* the ringing walker: vertex ∝ occupancy, class by the count split;
         the Fenwick residual is already uniform on the vertex's population *)
      let u, residual = Rumor_prob.Fenwick.find fw (Rng.int rng k) in
      let walker_uninformed = residual < uninf.(u) in
      let v =
        if lazy_walk && Rng.bool rng then u else Graph.random_neighbor g rng u
      in
      if v <> u then begin
        (if walker_uninformed then begin
           uninf.(u) <- uninf.(u) - 1;
           uninf.(v) <- uninf.(v) + 1
         end
         else begin
           inf.(u) <- inf.(u) - 1;
           inf.(v) <- inf.(v) + 1
         end);
        Rumor_prob.Fenwick.add fw u (-1);
        Rumor_prob.Fenwick.add fw v 1
      end;
      exchange_at v;
      if !informed_count = k then begin
        finish_time := t;
        finished := true;
        running := false
      end
    end
  done;
  let finish =
    if !finished then Some !finish_time
    else if !informed_count = k then Some 0.0
    else None
  in
  (match finish with
  | Some f -> ignore (Async_push.curve_finish curve ~finish:f ~count:!informed_count)
  | None -> Async_push.curve_cap curve next_mark ~max_time ~count:!informed_count);
  des_loop_end trace ~informed:!informed_count ~rings:!rings;
  {
    Async_meet_exchange.broadcast_time = finish;
    rings = !rings;
    informed = !informed_count;
    agents = k;
    curve = Curve_buf.contents curve;
  }

type queue = Heap | Calendar

let default_batch = 4096

let[@inline] put_stats stats v =
  match stats with Some s -> s := v | None -> ()

let push ?obs ?trace ?(queue = Calendar) ?(batch = default_batch) ?stats rng g
    ~variant ~source ~max_time =
  let n = Graph.n g in
  if source < 0 || source >= n then
    invalid_arg "Async_engine.push: source out of range";
  if not (max_time > 0.0) then
    invalid_arg "Async_engine.push: max_time must be positive";
  if batch < 1 then invalid_arg "Async_engine.push: batch < 1";
  match queue with
  | Heap ->
      put_stats stats None;
      On_heap.push ?obs ?trace ~batch rng g ~variant ~source ~max_time
        (Event_queue.create ())
  | Calendar ->
      let q = Calendar_queue.create () in
      let r =
        On_calendar.push ?obs ?trace ~batch rng g ~variant ~source ~max_time q
      in
      put_stats stats (Some (Calendar_queue.stats q));
      r

let meet_exchange ?obs ?trace ?lazy_walk ?(walkers = Sparse_walkers.Dense)
    ?(queue = Calendar) ?(batch = default_batch) ?stats rng g ~source ~agents
    ~max_time =
  let n = Graph.n g in
  if source < 0 || source >= n then
    invalid_arg "Async_engine.meet_exchange: source out of range";
  if not (max_time > 0.0) then
    invalid_arg "Async_engine.meet_exchange: max_time must be positive";
  if batch < 1 then invalid_arg "Async_engine.meet_exchange: batch < 1";
  (* resolved before any rng draw, exactly like the legacy module *)
  let lazy_walk =
    match lazy_walk with
    | Some b -> b
    | None -> Rumor_graph.Algo.is_bipartite g
  in
  if Sparse_walkers.use_sparse walkers agents g then begin
    ignore obs;
    put_stats stats None;
    meet_exchange_sparse ?trace ~batch ~lazy_walk rng g ~source ~agents
      ~max_time
  end
  else
  match queue with
  | Heap ->
      put_stats stats None;
      On_heap.meet_exchange ?obs ?trace ~batch ~lazy_walk rng g ~source ~agents
        ~max_time (Event_queue.create ())
  | Calendar ->
      let q = Calendar_queue.create () in
      let r =
        On_calendar.meet_exchange ?obs ?trace ~batch ~lazy_walk rng g ~source
          ~agents ~max_time q
      in
      put_stats stats (Some (Calendar_queue.stats q));
      r
