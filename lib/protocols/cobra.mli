(** COBRA (COalescing-BRAnching) walks (Berenbrink–Giakkoupis–Kling [7],
    Mitzenmacher–Rajaraman–Roche [36]; cited in Section 2).

    A COBRA walk generalizes a random walk: the set of "pebbled" vertices
    evolves by every currently pebbled vertex sending pebbles to
    [branching] independently chosen random neighbors; pebbles landing on
    the same vertex coalesce into one.  Note pebbles {e move} — the pebbled
    set is not monotone — but the set of vertices ever pebbled is, and the
    broadcast (cover) time is when every vertex has been pebbled at least
    once.  With [branching = 1] this is exactly a single random walk; [7]
    shows cover time O(log n) on regular expanders for [branching = 2].

    Experiment R4 measures the branching-factor effect on regular graphs. *)

type result = {
  run_result : Run_result.t;
  max_front : int;  (** largest number of simultaneously pebbled vertices *)
}

val run :
  ?obs:Rumor_obs.Instrument.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  branching:int ->
  max_rounds:int ->
  unit ->
  result
(** [run rng g ~source ~branching ~max_rounds ()].  The informed curve
    counts vertices ever pebbled.  @raise Invalid_argument if
    [branching < 1] or on a bad source. *)
