(** Visit-exchange with a dynamic, failure-prone agent population — the
    fault-tolerant variant sketched in the paper's open problems (Section 9):

    "it seems likely that the protocols could tolerate some number of lost
    agents, if a dynamic set of agents were used, where agents age with
    time and die, while new agents are born at a proportional rate."

    Each round, every agent independently dies with probability [churn];
    with [replace = true], Binomial(|A_0|, churn) fresh (uninformed) agents
    are born at stationary positions, keeping the expected population at its
    initial size.  With [replace = false] the population only shrinks,
    modelling permanent agent loss.

    Ablation A6 measures both modes: with replacement the broadcast time
    degrades gracefully even under heavy churn; without replacement the
    protocol eventually fails once too few agents remain. *)

type outcome = {
  result : Run_result.t;
  final_population : int;
  births : int;
  deaths : int;
  extinct : bool;  (** the population hit zero before broadcast *)
}

val run :
  ?lazy_walk:bool ->
  ?obs:Rumor_obs.Instrument.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  churn:float ->
  replace:bool ->
  max_rounds:int ->
  unit ->
  outcome
(** [run rng g ~source ~agents ~churn ~replace ~max_rounds ()].  [churn] in
    [0, 1); [churn = 0.] recovers plain visit-exchange.
    @raise Invalid_argument on bad source, churn outside [0, 1), or a
    negative round cap. *)
