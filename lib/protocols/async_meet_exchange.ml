module Rng = Rumor_prob.Rng
module Dist = Rumor_prob.Dist
module Graph = Rumor_graph.Graph
module Placement = Rumor_agents.Placement
module Event_queue = Rumor_des.Event_queue
module Obs = Rumor_obs.Instrument
module Trace = Rumor_obs.Trace

(* same sparse sampling cadence as Async_push's DES loop *)
let trace_sample_mask = 1023

type result = {
  broadcast_time : float option;
  rings : int;
  informed : int;
  agents : int;
  curve : int array;
}

let to_run_result r =
  let broadcast_time =
    Option.map (fun t -> int_of_float (Float.ceil t)) r.broadcast_time
  in
  Run_result.make ~all_agents_informed:broadcast_time ~broadcast_time
    ~rounds_run:(Array.length r.curve - 1)
    ~informed_curve:r.curve ~contacts:r.informed ()

let run ?obs ?trace ?lazy_walk rng g ~source ~agents ~max_time =
  let n = Graph.n g in
  if source < 0 || source >= n then
    invalid_arg "Async_meet_exchange.run: source out of range";
  if not (max_time > 0.0) then
    invalid_arg "Async_meet_exchange.run: max_time must be positive";
  (* Continuous time already breaks the bipartite parity trap, but the
     default mirrors the synchronous protocol's safety convention so that
     direct callers comparing the two processes study the same walk law:
     lazy iff the graph is bipartite, overridable explicitly. *)
  let lazy_walk =
    match lazy_walk with
    | Some b -> b
    | None -> Rumor_graph.Algo.is_bipartite g
  in
  (* Clock-stream contract (see Async_push's mli): split the dedicated
     clock generator before any other draw.  Placement and walk draws stay
     on [rng] in event order, clock gaps on [clock] in schedule order —
     the same consumption order as Async_engine's batched stream. *)
  let clock = Rng.split rng in
  let pos = Placement.place rng agents g in
  let k = Array.length pos in
  let informed = Array.make k false in
  let informed_count = ref 0 in
  (* per-vertex doubly-indexed membership so co-located agents are found in
     O(occupants): agents_at.(v) is an unordered dense list *)
  let agents_at = Array.make n [] in
  Array.iteri (fun a v -> agents_at.(v) <- a :: agents_at.(v)) pos;
  let source_active = ref true in
  let inform v a =
    if not informed.(a) then begin
      informed.(a) <- true;
      incr informed_count;
      Obs.contact obs v a
    end
  in
  (* exchange at vertex v: if anyone there is informed (or v is the still-
     active source), everyone there becomes informed *)
  let exchange_at v =
    let any_informed = List.exists (fun a -> informed.(a)) agents_at.(v) in
    let source_hit =
      !source_active && v = source && not (List.is_empty agents_at.(v))
    in
    if any_informed || source_hit then begin
      List.iter (inform v) agents_at.(v);
      if source_hit then source_active := false
    end
  in
  exchange_at source;
  let queue = Event_queue.create () in
  let schedule a now = Event_queue.push queue (now +. Dist.exponential clock 1.0) a in
  for a = 0 to k - 1 do
    schedule a 0.0
  done;
  let curve = Curve_buf.create ~hint:(Async_push.curve_hint max_time) in
  Curve_buf.push curve !informed_count;
  let next_mark = ref 1 in
  let rings = ref 0 in
  let finish = ref None in
  let running = ref (!informed_count < k) in
  (match trace with
  | None -> ()
  | Some tr -> Trace.begin_span tr "async_meet_exchange.loop");
  while !running do
    match Event_queue.pop queue with
    | None -> running := false
    | Some (now, a) ->
        if now > max_time then running := false
        else begin
          incr rings;
          (match trace with
          | None -> ()
          | Some tr ->
              if !rings land trace_sample_mask = 0 then begin
                Trace.counter tr "queue" (Event_queue.size queue);
                Trace.counter tr "informed" !informed_count
              end);
          Async_push.curve_marks curve next_mark ~now ~count:!informed_count;
          let u = pos.(a) in
          let v =
            if lazy_walk && Rng.bool rng then u else Graph.random_neighbor g rng u
          in
          if v <> u then begin
            agents_at.(u) <- List.filter (fun b -> b <> a) agents_at.(u);
            agents_at.(v) <- a :: agents_at.(v);
            pos.(a) <- v
          end;
          Obs.walker_move obs ~agent:a ~from_:u ~to_:v;
          exchange_at v;
          if !informed_count = k then begin
            finish := Some now;
            running := false
          end
          else schedule a now
        end
  done;
  let finish = if !informed_count = k && !finish = None then Some 0.0 else !finish in
  (match finish with
  | Some f -> ignore (Async_push.curve_finish curve ~finish:f ~count:!informed_count)
  | None -> Async_push.curve_cap curve next_mark ~max_time ~count:!informed_count);
  (match trace with
  | None -> ()
  | Some tr ->
      Trace.end_span tr;
      Trace.counter tr "informed" !informed_count;
      Rumor_obs.Counters.add
        (Rumor_obs.Counters.counter (Trace.counters tr) "rings")
        !rings);
  {
    broadcast_time = finish;
    rings = !rings;
    informed = !informed_count;
    agents = k;
    curve = Curve_buf.contents curve;
  }
