(** Asynchronous rumor spreading (the Section 2 variants).

    In the asynchronous model every vertex acts at the arrival times of an
    independent unit-rate Poisson process: when its clock rings, the vertex
    samples a random neighbor and pushes (or, for push-pull, exchanges).
    Time is continuous; one unit of time corresponds to one expected ring
    per vertex, i.e. to one synchronous round's worth of activity.

    The paper's related work (Sauerwald [41]; Giakkoupis–Nazari–Woelfel
    [27], Angel et al. [4]) shows asynchronous push has the same broadcast
    time as synchronous push on regular graphs, while asynchronous and
    synchronous push-pull can differ by a sqrt(log n) factor in general.
    Ablation A5 checks the regular-graph equivalence empirically, and
    experiment A9 the sync/async agreement at Theorem granularity.

    Implemented by discrete-event simulation over {!Rumor_des.Event_queue}:
    only informed vertices need clocks for push, so a run costs
    O(n log n + total rings).  For million-node runs use
    {!Async_engine}, the calendar-queue kernel with batched clocks; it is
    bit-identical to this module on the same seed.

    {2 Clock-stream contract}

    The reference RNG-consumption order, which both this module and
    {!Async_engine} implement exactly: the first operation on [rng]
    splits off a dedicated clock generator ({!Rumor_prob.Rng.split});
    every Exp(1) clock gap is drawn from that clock stream in schedule
    order, and every other draw (here: uniform neighbor picks) comes from
    [rng] itself in event order.  Batching clock draws then cannot change
    any result, because the k-th scheduled gap is the clock stream's k-th
    sample no matter how eagerly it was generated. *)

type variant = Async_push | Async_push_pull

type result = {
  broadcast_time : float option;
      (** continuous completion time; [None] if [max_time] elapsed first *)
  rings : int;  (** total clock rings processed *)
  informed : int;
  curve : int array;
      (** informed count sampled at integer times: entry [m] is the count
          after every event with time [<= m]; entry 0 is the initial
          count.  On completion the curve ends at mark [ceil t]; on a cap
          it ends at the last integer mark [<= max_time]. *)
}

val run :
  ?obs:Rumor_obs.Instrument.t ->
  ?trace:Rumor_obs.Trace.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  variant:variant ->
  source:int ->
  max_time:float ->
  result
(** [run rng g ~variant ~source ~max_time] simulates until all vertices are
    informed or continuous time exceeds [max_time].  The model has no
    rounds, so [obs] only receives [on_contact] (one per clock ring).
    [trace] wraps the event loop in an ["async_push.loop"] span, samples
    the ["queue"]/["informed"] counter series every 1024 rings, and adds
    the ring total to the registry; it never consumes randomness.
    @raise Invalid_argument on a bad source or non-positive [max_time]. *)

val to_run_result : result -> Run_result.t
(** Project onto the synchronous result type: [broadcast_time] rounds up
    to an integer round count, [informed_curve] is the [curve] field,
    [rounds_run] is the curve length minus one, and [contacts] counts one
    contact per ring. *)

(** {2 Integer-mark curve plumbing}

    Shared by this module, {!Async_meet_exchange} and {!Async_engine} so
    all four async loops emit byte-identical curves for the same event
    sequence.  The curve value at mark [m] is the informed count after
    every event with time [<= m]. *)

val curve_hint : float -> int
(** Curve-buffer size hint for a [max_time] cap. *)

val curve_marks : Curve_buf.t -> int ref -> now:float -> count:int -> unit
(** Emit every integer mark strictly below [now] (the next event's time)
    with the pre-event [count], advancing the mark cursor. *)

val curve_finish : Curve_buf.t -> finish:float -> count:int -> int
(** Pad a completed run's curve with [count] through mark [ceil finish];
    returns that final mark. *)

val curve_cap : Curve_buf.t -> int ref -> max_time:float -> count:int -> unit
(** Pad a capped run's curve with [count] through the last integer mark
    [<= max_time]. *)
