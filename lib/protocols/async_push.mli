(** Asynchronous rumor spreading (the Section 2 variants).

    In the asynchronous model every vertex acts at the arrival times of an
    independent unit-rate Poisson process: when its clock rings, the vertex
    samples a random neighbor and pushes (or, for push-pull, exchanges).
    Time is continuous; one unit of time corresponds to one expected ring
    per vertex, i.e. to one synchronous round's worth of activity.

    The paper's related work (Sauerwald [41]; Giakkoupis–Nazari–Woelfel
    [27], Angel et al. [4]) shows asynchronous push has the same broadcast
    time as synchronous push on regular graphs, while asynchronous and
    synchronous push-pull can differ by a sqrt(log n) factor in general.
    Ablation A5 checks the regular-graph equivalence empirically.

    Implemented by discrete-event simulation over {!Rumor_des.Event_queue}:
    only informed vertices need clocks for push, so a run costs
    O(n log n + total rings). *)

type variant = Async_push | Async_push_pull

type result = {
  broadcast_time : float option;
      (** continuous completion time; [None] if [max_time] elapsed first *)
  rings : int;  (** total clock rings processed *)
  informed : int;
}

val run :
  ?obs:Rumor_obs.Instrument.t ->
  ?trace:Rumor_obs.Trace.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  variant:variant ->
  source:int ->
  max_time:float ->
  result
(** [run rng g ~variant ~source ~max_time] simulates until all vertices are
    informed or continuous time exceeds [max_time].  The model has no
    rounds, so [obs] only receives [on_contact] (one per clock ring).
    [trace] wraps the event loop in an ["async_push.loop"] span, samples
    the ["queue"]/["informed"] counter series every 1024 rings, and adds
    the ring total to the registry; it never consumes randomness.
    @raise Invalid_argument on a bad source or non-positive [max_time]. *)
