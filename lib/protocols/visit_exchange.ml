module Graph = Rumor_graph.Graph
module Walkers = Rumor_agents.Walkers
module Obs = Rumor_obs.Instrument

type detailed = {
  result : Run_result.t;
  vertex_time : int array;
  agent_time : int array;
}

(* One synchronized walker round, reporting to traffic and/or instrument
   hooks only when either is attached. *)
let step_walkers ?traffic ?obs w =
  match (traffic, obs) with
  | None, None -> Walkers.step w
  | _ ->
      Walkers.step_with w (fun a from to_ ->
          (match traffic with
          | Some tr when from <> to_ -> Traffic.record tr from to_
          | _ -> ());
          Obs.walker_move obs ~agent:a ~from_:from ~to_:to_)

let run_detailed ?traffic ?obs ?lazy_walk rng g ~source ~agents ~max_rounds () =
  let n = Graph.n g in
  if source < 0 || source >= n then
    invalid_arg "Visit_exchange.run: source out of range";
  if max_rounds < 0 then invalid_arg "Visit_exchange.run: negative round cap";
  let w = Walkers.of_spec ?lazy_walk rng g agents in
  let k = Walkers.agent_count w in
  let vertex_time = Array.make n max_int in
  let agent_time = Array.make k max_int in
  let contacts = ref 0 in
  (* round 0: the source is informed, and so is every agent standing on it *)
  vertex_time.(source) <- 0;
  let informed_vertices = ref 1 in
  let informed_agents = ref 0 in
  for a = 0 to k - 1 do
    if Walkers.position w a = source then begin
      agent_time.(a) <- 0;
      incr informed_agents;
      incr contacts
    end
  done;
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let all_agents_round = ref (if !informed_agents = k then Some 0 else None) in
  let t = ref 0 in
  while (!informed_vertices < n || !all_agents_round = None) && !t < max_rounds do
    incr t;
    let round = !t in
    Obs.round_start obs round;
    (* phase 1: all agents step in parallel *)
    step_walkers ?traffic ?obs w;
    (* phase 2: agents informed in a previous round inform their vertex.
       agent_time values set so far are all < round, so no snapshot is
       needed. *)
    for a = 0 to k - 1 do
      if agent_time.(a) < round then begin
        let v = Walkers.position w a in
        if vertex_time.(v) = max_int then begin
          vertex_time.(v) <- round;
          incr informed_vertices;
          incr contacts;
          Obs.contact obs a v
        end
      end
    done;
    (* phase 3: uninformed agents standing on an informed vertex (informed
       in any round <= round, including this one) become informed. *)
    for a = 0 to k - 1 do
      if agent_time.(a) = max_int && vertex_time.(Walkers.position w a) <= round
      then begin
        agent_time.(a) <- round;
        incr informed_agents;
        incr contacts;
        Obs.contact obs (Walkers.position w a) a
      end
    done;
    if !informed_agents = k && !all_agents_round = None then
      all_agents_round := Some round;
    Curve_buf.push curve !informed_vertices;
    Obs.round_end obs ~round ~informed:!informed_vertices ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time =
    if !informed_vertices = n then begin
      (* the completion round is when the last vertex was informed, which may
         precede rounds spent waiting for stragglers among the agents *)
      let last = Array.fold_left (fun acc tu -> max acc tu) 0 vertex_time in
      Some last
    end
    else None
  in
  let result =
    Run_result.make ~all_agents_informed:!all_agents_round ~broadcast_time
      ~rounds_run
      ~informed_curve:(Curve_buf.contents curve)
      ~contacts:!contacts ()
  in
  { result; vertex_time; agent_time }

let run ?traffic ?obs ?lazy_walk rng g ~source ~agents ~max_rounds () =
  (run_detailed ?traffic ?obs ?lazy_walk rng g ~source ~agents ~max_rounds ()).result
