module Rng = Rumor_prob.Rng
module Dist = Rumor_prob.Dist
module Alias = Rumor_prob.Alias
module Graph = Rumor_graph.Graph
module Placement = Rumor_agents.Placement
module Obs = Rumor_obs.Instrument

type outcome = {
  result : Run_result.t;
  final_population : int;
  births : int;
  deaths : int;
  extinct : bool;
}

let run ?(lazy_walk = false) ?obs rng g ~source ~agents ~churn ~replace ~max_rounds () =
  let n = Graph.n g in
  if source < 0 || source >= n then
    invalid_arg "Dynamic_visit_exchange.run: source out of range";
  if not (churn >= 0.0 && churn < 1.0) then
    invalid_arg "Dynamic_visit_exchange.run: churn outside [0, 1)";
  if max_rounds < 0 then invalid_arg "Dynamic_visit_exchange.run: negative round cap";
  let stationary = Placement.stationary_weights g in
  let initial = Placement.place rng agents g in
  let base_population = Array.length initial in
  let p = Agent_pool.create ~capacity:(2 * base_population) in
  Array.iter (fun v -> ignore (Agent_pool.spawn p v)) initial;
  let vertex_time = Array.make n max_int in
  vertex_time.(source) <- 0;
  let informed_vertices = ref 1 in
  let contacts = ref 0 in
  Agent_pool.iter_alive p (fun slot ->
      if Agent_pool.position p slot = source then begin
        Agent_pool.set_informed_at p slot 0;
        incr contacts
      end);
  let births = ref 0 and deaths = ref 0 in
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let t = ref 0 in
  let extinct = ref false in
  while (not !extinct) && !informed_vertices < n && !t < max_rounds do
    incr t;
    let round = !t in
    Obs.round_start obs round;
    (* deaths, then births at the stationary distribution *)
    if churn > 0.0 then begin
      Agent_pool.iter_alive p (fun slot ->
          if Rng.bernoulli rng churn then begin
            Agent_pool.kill p slot;
            incr deaths
          end);
      if replace then begin
        let newborn = Dist.binomial rng base_population churn in
        for _ = 1 to newborn do
          ignore (Agent_pool.spawn p (Alias.sample stationary rng));
          incr births
        done
      end
    end;
    if Agent_pool.alive p = 0 then extinct := true
    else begin
      (* walk step *)
      Agent_pool.iter_alive p (fun slot ->
          let u = Agent_pool.position p slot in
          let v =
            if lazy_walk && Rng.bool rng then u else Graph.random_neighbor g rng u
          in
          if v <> u then Agent_pool.set_position p slot v;
          Obs.walker_move obs ~agent:slot ~from_:u ~to_:v);
      (* previously informed agents inform their vertex *)
      Agent_pool.iter_alive p (fun slot ->
          if Agent_pool.informed_at p slot < round then begin
            let v = Agent_pool.position p slot in
            if vertex_time.(v) = max_int then begin
              vertex_time.(v) <- round;
              incr informed_vertices;
              incr contacts;
              Obs.contact obs slot v
            end
          end);
      (* uninformed agents learn from informed vertices *)
      Agent_pool.iter_alive p (fun slot ->
          if
            Agent_pool.informed_at p slot = Agent_pool.uninformed
            && vertex_time.(Agent_pool.position p slot) <= round
          then begin
            Agent_pool.set_informed_at p slot round;
            incr contacts;
            Obs.contact obs (Agent_pool.position p slot) slot
          end)
    end;
    Curve_buf.push curve !informed_vertices;
    Obs.round_end obs ~round ~informed:!informed_vertices ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time = if !informed_vertices = n then Some rounds_run else None in
  {
    result =
      Run_result.make ~broadcast_time ~rounds_run
        ~informed_curve:(Curve_buf.contents curve)
        ~contacts:!contacts ();
    final_population = Agent_pool.alive p;
    births = !births;
    deaths = !deaths;
    extinct = !extinct;
  }
