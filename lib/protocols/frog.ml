module Graph = Rumor_graph.Graph
module Obs = Rumor_obs.Instrument

type result = {
  run_result : Run_result.t;
  awake_curve : int array;
}

let run ?(frogs_per_vertex = 1) ?obs rng g ~source ~max_rounds () =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Frog.run: source out of range";
  if frogs_per_vertex < 1 then invalid_arg "Frog.run: frogs_per_vertex < 1";
  if max_rounds < 0 then invalid_arg "Frog.run: negative round cap";
  let total_frogs = n * frogs_per_vertex in
  (* awake frogs stored as a growing prefix of [pos]; sleeping frogs are
     represented implicitly by their home vertex until woken *)
  let pos = Array.make total_frogs 0 in
  let awake = ref 0 in
  let visited = Array.make n false in
  let visited_count = ref 1 in
  let sleeping = Array.make n frogs_per_vertex in
  let contacts = ref 0 in
  let wake_vertex v =
    (* all sleeping frogs at v wake up, positioned at v *)
    for _ = 1 to sleeping.(v) do
      pos.(!awake) <- v;
      incr awake;
      incr contacts
    done;
    sleeping.(v) <- 0
  in
  visited.(source) <- true;
  wake_vertex source;
  let curve = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push curve 1;
  let awake_hist = Curve_buf.create ~hint:max_rounds in
  Curve_buf.push awake_hist !awake;
  let t = ref 0 in
  while !visited_count < n && !t < max_rounds do
    incr t;
    Obs.round_start obs !t;
    let moving = !awake in
    for a = 0 to moving - 1 do
      let u = pos.(a) in
      let v = Graph.random_neighbor g rng u in
      pos.(a) <- v;
      Obs.walker_move obs ~agent:a ~from_:u ~to_:v;
      if not visited.(v) then begin
        visited.(v) <- true;
        incr visited_count
      end;
      if sleeping.(v) > 0 then begin
        Obs.contact obs a v;
        wake_vertex v
      end
    done;
    Curve_buf.push curve !visited_count;
    Curve_buf.push awake_hist !awake;
    Obs.round_end obs ~round:!t ~informed:!visited_count ~contacts:!contacts
  done;
  let rounds_run = !t in
  let broadcast_time = if !visited_count = n then Some rounds_run else None in
  {
    run_result =
      Run_result.make ~broadcast_time ~rounds_run
        ~informed_curve:(Curve_buf.contents curve)
        ~contacts:!contacts ();
    awake_curve = Curve_buf.contents awake_hist;
  }
