(** The frog model (Alves–Machado–Popov [3], Popov [40], Hermon [29]; cited
    in Section 2).

    Initially one sleeping agent (a "frog") sits on every vertex except the
    source, whose frog is awake and informed.  Awake frogs perform
    independent random walks; when an awake frog visits a vertex, the
    sleeping frog there wakes up (informed) and starts its own walk.  The
    process differs from meet-exchange in that uninformed agents do not
    move, and from visit-exchange in that vertices store nothing — waking
    is the only transfer.

    Broadcast completes when every frog is awake, which on a connected
    graph coincides with every vertex having been visited.  Experiment R5
    compares the frog model to the paper's two agent-based protocols. *)

type result = {
  run_result : Run_result.t;
  awake_curve : int array;  (** awake frogs after each round *)
}

val run :
  ?frogs_per_vertex:int ->
  ?obs:Rumor_obs.Instrument.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  max_rounds:int ->
  unit ->
  result
(** [run rng g ~source ~max_rounds ()].  [frogs_per_vertex] (default 1)
    places that many sleeping frogs on every vertex.  The informed curve
    counts visited vertices. *)
