(** Million-event asynchronous engine: the DES kernels of {!Async_push}
    and {!Async_meet_exchange} over a calendar-queue scheduler, flat
    state, and batched Poisson clocks.

    What changes relative to the legacy modules — and what provably
    cannot change:

    - {b Scheduler}: events live in {!Rumor_des.Calendar_queue}
      (amortized O(1) per ring) or {!Rumor_des.Event_queue} (O(log n)),
      selected by [?queue].  Both drain in ascending (time, insertion
      order), so the backend is unobservable in the results.
    - {b Clocks}: Exp(1) gaps are pre-drawn [batch] at a time
      ({!Rumor_des.Exp_stream}) from a clock generator split off [rng]
      up front — the clock-stream contract documented in {!Async_push}.
      The k-th scheduled gap is the clock stream's k-th sample whatever
      the batch, so results are batch-independent.
    - {b State}: informed sets are {!Bitset}s, the event loop pops
      through [pop_into] (no per-ring boxing), and meet-exchange keeps
      its per-vertex agent sets as intrusive int-array lists replicating
      the legacy cons-list order move for move.

    Consequently a run here is bit-identical — broadcast time, ring
    count, integer-mark curve, and the full [?obs] contact/walker-move
    stream — to the legacy module's run on the same seed, for every
    [?queue] and [?batch].  test/test_async_engine.ml and a CI diff step
    enforce this.

    [?trace] mirrors the legacy instrumentation: one
    ["async_engine.<kernel>.loop"] span, ["queue"]/["informed"] counter
    samples every 1024 rings, and a final ["rings"] registry total; it
    never consumes randomness. *)

type queue =
  | Heap  (** {!Rumor_des.Event_queue}: no resize machinery, better
              constants on small/short-lived runs *)
  | Calendar  (** {!Rumor_des.Calendar_queue}: amortized O(1), the
                  default and the million-node choice *)

val default_batch : int
(** Clock pre-draw batch, 4096. *)

val push :
  ?obs:Rumor_obs.Instrument.t ->
  ?trace:Rumor_obs.Trace.t ->
  ?queue:queue ->
  ?batch:int ->
  ?stats:Rumor_des.Calendar_queue.stats option ref ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  variant:Async_push.variant ->
  source:int ->
  max_time:float ->
  Async_push.result
(** Engine counterpart of {!Async_push.run}; bit-identical to it on the
    same seed.  [?stats] (when provided) receives the calendar queue's
    final geometry, or [None] under [?queue:Heap].
    @raise Invalid_argument on a bad source, non-positive [max_time] or
    [batch < 1]. *)

val meet_exchange :
  ?obs:Rumor_obs.Instrument.t ->
  ?trace:Rumor_obs.Trace.t ->
  ?lazy_walk:bool ->
  ?walkers:Sparse_walkers.mode ->
  ?queue:queue ->
  ?batch:int ->
  ?stats:Rumor_des.Calendar_queue.stats option ref ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_time:float ->
  Async_meet_exchange.result
(** Engine counterpart of {!Async_meet_exchange.run}; bit-identical to it
    on the same seed.  An omitted [lazy_walk] resolves to the graph's
    bipartiteness, like the legacy module.

    [?walkers] ({!Sparse_walkers.Dense} by default) selects the walker
    representation.  Sparse mode compresses walkers into per-vertex
    (uninformed, informed) counts and replaces the per-agent event queue
    with one aggregate rate-k Poisson clock: each ring samples a vertex
    with probability proportional to its occupancy through a
    {!Rumor_prob.Fenwick} tree (O(log n), no queue at all), closing the
    n = 10^6 async gap.  Sparse runs are seed-deterministic but not
    bit-identical to dense, fire no per-agent [?obs] hooks, and always
    report [None] into [?stats]; [?queue]/[?batch] only affect the clock
    pre-draw.  [Auto] picks sparse at {!Sparse_walkers.auto_threshold}
    agents.
    @raise Invalid_argument on a bad source, non-positive [max_time] or
    [batch < 1]. *)
