(** The visit-exchange protocol (Section 3 of the paper).

    A set [A] of agents performs independent simple random walks.  Round 0
    informs the source vertex and every agent standing on it.  In each round
    [t >= 1] all agents take one step in parallel; then

    - an agent informed in a {e previous} round informs the vertex it now
      stands on, and
    - an uninformed agent standing on a vertex that is informed (in a
      previous round, or in the current round by some informed agent)
      becomes informed.

    Broadcast completes when all vertices are informed; the round at which
    all {e agents} are informed is also reported (Theorem 23 needs it). *)

val run :
  ?traffic:Traffic.t ->
  ?obs:Rumor_obs.Instrument.t ->
  ?lazy_walk:bool ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** [run rng g ~source ~agents ~max_rounds ()].  [lazy_walk] (default
    false) makes every walk stay put with probability 1/2 each round.
    Contacts count one per agent–vertex information transfer (in either
    direction).  [obs] additionally receives one [on_walker_move] per agent
    step. *)

(** Full outcome including per-vertex and per-agent informing times, used
    by the coupling experiments and the meet-exchange comparison. *)
type detailed = {
  result : Run_result.t;
  vertex_time : int array;  (** [t_u]; [max_int] if never informed *)
  agent_time : int array;   (** round each agent became informed *)
}

val run_detailed :
  ?traffic:Traffic.t ->
  ?obs:Rumor_obs.Instrument.t ->
  ?lazy_walk:bool ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  unit ->
  detailed
