(* Intra-round data parallelism for the hot-path engine: an index range is
   cut into a caller-chosen number of contiguous shards, each shard runs one
   closure, and the per-shard results come back in shard order.  The shard
   geometry is a pure function of (n, shards) — never of the pool's
   parallelism degree — which is what lets the engine promise bit-identical
   results for every --jobs setting: randomness is assigned per shard
   (Rng.split_n, one child per shard) before any work is scheduled, exactly
   like the per-rep discipline in Replicate. *)

let shard_bounds ~n ~shards =
  if n < 0 then invalid_arg "Parallel_for.shard_bounds: negative length";
  if shards < 1 then invalid_arg "Parallel_for.shard_bounds: shards < 1";
  (* first [n mod shards] shards get one extra element; bounds are [lo, hi) *)
  let base = n / shards and extra = n mod shards in
  Array.init shards (fun s ->
      let lo = (s * base) + min s extra in
      let len = base + if s < extra then 1 else 0 in
      (lo, lo + len))

(* lint: hot *)
let parallel_for ?trace ?(label = "shard") pool ~n ~shards f =
  let bounds = shard_bounds ~n ~shards in
  Pool.init_traced ?trace ~label pool shards (fun ~trace:_ s ->
      let lo, hi = bounds.(s) in
      f ~shard:s ~lo ~hi)
