(* A deliberately small fork/join pool: [create] only fixes the parallelism
   degree; each [init]/[map] spawns its workers, drains a shared atomic
   counter in chunks, and joins everything before returning.  Spawning per
   call (rather than parking persistent workers on a condition variable)
   keeps teardown trivially correct — no domain outlives the call that
   needed it — and the spawn cost (~tens of microseconds per domain) is
   noise against the replication workloads this pool exists for. *)

module Trace = Rumor_obs.Trace

type t = { jobs : int }

let create ~jobs =
  if jobs < 0 then invalid_arg "Pool.create: jobs < 0";
  let jobs = if jobs = 0 then Domain.recommended_domain_count () else jobs in
  { jobs = max 1 jobs }

let jobs t = t.jobs

(* First failure wins; the losers of the compare-and-set race are dropped,
   and the remaining workers stop claiming new chunks. *)
type failure = { exn : exn; bt : Printexc.raw_backtrace }

(* lint: hot *)
let init_traced ?trace ?(label = "pool.chunk") t n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  if t.jobs = 1 || n <= 1 then
    (* Sequential execution still emits one span per item when traced, so a
       trace of e.g. a sharded engine run shows the same per-shard spans at
       every jobs setting; untraced, this is exactly [Array.init n f]. *)
    match trace with
    | None -> Array.init n (fun i -> f ~trace i)
    | Some tr ->
        Array.init n (fun i ->
            Trace.begin_span tr ~arg:i label;
            match f ~trace i with
            | v ->
                Trace.end_span tr;
                v
            | exception exn ->
                let bt = Printexc.get_raw_backtrace () in
                Trace.end_span tr;
                Printexc.raise_with_backtrace exn bt)
  else begin
    let workers = min t.jobs n in
    (* Small chunks load-balance the heterogeneous per-item costs typical of
       simulation reps (capped runs cost orders of magnitude more than fast
       ones); one atomic increment per chunk is cheap at that granularity. *)
    let chunk = max 1 (n / (workers * 8)) in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failed = Atomic.make None in
    (* One tracer per worker: the caller keeps the parent's, each spawned
       domain gets a forked child it alone writes to, and the children are
       merged back strictly after their domains are joined. *)
    let children =
      match trace with
      | None -> [||]
      | Some parent ->
          Array.init (workers - 1) (fun w ->
              Trace.fork parent ~tid:(Trace.tid parent + w + 1))
    in
    let run_chunk tr start stop =
      match tr with
      | None ->
          for i = start to stop - 1 do
            (* lint: allow R10 — the Some wrapper is the slot's claimed mark *)
            results.(i) <- Some (f ~trace:None i)
          done
      | Some t' -> (
          Trace.begin_span t' ~arg:start label;
          match
            for i = start to stop - 1 do
              (* lint: allow R10 — the Some wrapper is the slot's claimed mark *)
              results.(i) <- Some (f ~trace:tr i)
            done
          with
          | () -> Trace.end_span t'
          | exception exn ->
              let bt = Printexc.get_raw_backtrace () in
              Trace.end_span t';
              Printexc.raise_with_backtrace exn bt)
    in
    let rec drain tr =
      let start = Atomic.fetch_and_add next chunk in
      if start < n && Option.is_none (Atomic.get failed) then begin
        run_chunk tr start (min n (start + chunk));
        drain tr
      end
    in
    let work tr () =
      (match tr with None -> () | Some t' -> Trace.begin_span t' "pool.worker");
      (try drain tr
       (* the first failure is stashed, then re-raised after every domain joins *)
       (* lint: allow R6 — stash-and-reraise-after-join, not a swallow *)
       with exn ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set failed None (Some { exn; bt })));
      match tr with None -> () | Some t' -> Trace.end_span t'
    in
    (match trace with
    | None -> ()
    | Some parent -> Trace.instant parent ~arg:workers "pool.fork");
    let domains =
      List.init (workers - 1) (fun w ->
          let tr =
            if Array.length children = 0 then None else Some children.(w)
          in
          Domain.spawn (work tr))
    in
    (* the calling domain is worker number [workers], so [jobs] really is
       the parallelism degree, not jobs + 1 *)
    work trace ();
    List.iter Domain.join domains;
    (match trace with
    | None -> ()
    | Some parent ->
        Array.iter (fun child -> Trace.join parent child) children;
        Trace.instant parent "pool.join");
    match Atomic.get failed with
    | Some { exn; bt } -> Printexc.raise_with_backtrace exn bt
    | None ->
        Array.map
          (function Some v -> v | None -> assert false (* unreachable: every
            index was claimed and no worker failed *))
          results
  end

let init t n f = init_traced t n (fun ~trace:_ i -> f i)
let map t f a = init t (Array.length a) (fun i -> f a.(i))
