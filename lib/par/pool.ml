(* A deliberately small fork/join pool: [create] only fixes the parallelism
   degree; each [init]/[map] spawns its workers, drains a shared atomic
   counter in chunks, and joins everything before returning.  Spawning per
   call (rather than parking persistent workers on a condition variable)
   keeps teardown trivially correct — no domain outlives the call that
   needed it — and the spawn cost (~tens of microseconds per domain) is
   noise against the replication workloads this pool exists for. *)

type t = { jobs : int }

let create ~jobs =
  if jobs < 0 then invalid_arg "Pool.create: jobs < 0";
  let jobs = if jobs = 0 then Domain.recommended_domain_count () else jobs in
  { jobs = max 1 jobs }

let jobs t = t.jobs

(* First failure wins; the losers of the compare-and-set race are dropped,
   and the remaining workers stop claiming new chunks. *)
type failure = { exn : exn; bt : Printexc.raw_backtrace }

let init t n f =
  if n < 0 then invalid_arg "Pool.init: negative length";
  if t.jobs = 1 || n <= 1 then Array.init n f
  else begin
    let workers = min t.jobs n in
    (* Small chunks load-balance the heterogeneous per-item costs typical of
       simulation reps (capped runs cost orders of magnitude more than fast
       ones); one atomic increment per chunk is cheap at that granularity. *)
    let chunk = max 1 (n / (workers * 8)) in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failed = Atomic.make None in
    let rec drain () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n && Option.is_none (Atomic.get failed) then begin
        let stop = min n (start + chunk) in
        for i = start to stop - 1 do
          results.(i) <- Some (f i)
        done;
        drain ()
      end
    in
    let work () =
      try drain ()
      (* the first failure is stashed, then re-raised after every domain joins *)
      (* lint: allow R6 — stash-and-reraise-after-join, not a swallow *)
      with exn ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failed None (Some { exn; bt }))
    in
    let domains = List.init (workers - 1) (fun _ -> Domain.spawn work) in
    (* the calling domain is worker number [workers], so [jobs] really is
       the parallelism degree, not jobs + 1 *)
    work ();
    List.iter Domain.join domains;
    match Atomic.get failed with
    | Some { exn; bt } -> Printexc.raise_with_backtrace exn bt
    | None ->
        Array.map
          (function Some v -> v | None -> assert false (* unreachable: every
            index was claimed and no worker failed *))
          results
  end

let map t f a = init t (Array.length a) (fun i -> f a.(i))
