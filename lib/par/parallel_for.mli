(** Deterministic sharded fan-out over an index range (intra-round engine
    parallelism).

    [parallel_for pool ~n ~shards f] partitions [0, n) into [shards]
    contiguous ranges, runs [f ~shard ~lo ~hi] for each (possibly in
    parallel on [pool]), and returns the results in shard order.

    Determinism contract: the partition depends only on [(n, shards)], and
    the result array is ordered by shard index — never by completion order —
    so the outcome is a pure function of [f] and the shard geometry,
    independent of the pool's parallelism degree.  Callers that need
    per-shard randomness split one child generator per shard up front
    ({!Rumor_prob.Rng.split_n} style) to keep the whole computation
    bit-identical across [--jobs] settings. *)

val shard_bounds : n:int -> shards:int -> (int * int) array
(** [shard_bounds ~n ~shards] is the [[lo, hi)] range of each shard; sizes
    differ by at most one, earlier shards get the extra elements.
    @raise Invalid_argument if [n < 0] or [shards < 1]. *)

val parallel_for :
  ?trace:Rumor_obs.Trace.t ->
  ?label:string ->
  Pool.t -> n:int -> shards:int -> (shard:int -> lo:int -> hi:int -> 'a) -> 'a array
(** Run one closure per shard on the pool; result [i] is shard [i]'s.
    A raise in any shard is re-raised after all shards join
    (first-failure-wins, as {!Pool.init}).  [trace] records each shard as a
    span named [label] (default ["shard"]) with the shard index as its
    [arg], on the track of the worker that ran it — see
    {!Pool.init_traced}; [None] adds zero overhead. *)
