(** A small fork/join domain pool for replicated simulations.

    [Pool] is the only module in the tree allowed to touch [Domain] and
    [Atomic] (lint rule R7 confines concurrency primitives to [lib/par/]).
    Work is scheduled in chunks off a shared atomic counter, so a slow item
    never serializes the rest of its pre-assigned stripe; all spawned
    domains are joined before [init]/[map] returns, even when a worker
    raises.

    The pool runs item computations concurrently but promises nothing about
    their order.  Callers that need deterministic output must make each
    item's computation self-contained — see {!Rumor_sim.Replicate}, which
    pre-splits one RNG per replication in index order and defers all
    observable effects to an ordered pass after the join. *)

type t
(** A parallelism degree.  Creating a pool allocates nothing and spawns no
    domains; workers are forked per {!init}/{!map} call and joined before it
    returns, so a pool value can be kept and reused freely. *)

val create : jobs:int -> t
(** [create ~jobs] is a pool running [jobs] workers per call, the calling
    domain included — [jobs = 1] never spawns and degrades to the plain
    sequential loop.  [jobs = 0] means [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [jobs < 0]. *)

val jobs : t -> int
(** The resolved parallelism degree (after the [0] default expansion). *)

val init_traced :
  ?trace:Rumor_obs.Trace.t ->
  ?label:string ->
  t ->
  int ->
  (trace:Rumor_obs.Trace.t option -> int -> 'a) -> 'a array
(** {!init} with per-worker tracing.  When [trace] is present, every worker
    runs under its own tracer — the calling domain records straight into
    [trace], each spawned domain into a {!Rumor_obs.Trace.fork}ed child that
    is merged back after the domain joins — and [f] receives the tracer of
    whichever worker runs it, so item computations can open their own spans
    on the right track.  Each claimed chunk is bracketed in a span named
    [label] (default ["pool.chunk"]) whose [arg] is the chunk's first index,
    each worker's lifetime in a ["pool.worker"] span, and the fork/join
    edges are marked with instants on the parent — which is what makes idle
    gaps between chunks visible in the rendered trace.  When [trace] is
    [None] (the default), [f] sees [~trace:None] and the call compiles down
    to exactly {!init}: no clocks, no allocation. *)

val init : t -> int -> (int -> 'a) -> 'a array
(** [init t n f] is [Array.init n f] computed by [jobs t] workers.  [f] is
    called exactly once per index on some worker domain, in no particular
    order; indices never overlap, so [f] may freely write to per-index slots
    of shared arrays.  If any call raises, the first failure (in completion
    order, not index order) is re-raised with its backtrace after all
    workers have been joined; remaining workers stop at their next chunk
    boundary.
    @raise Invalid_argument if [n < 0]. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f a] is [Array.map f a] computed like {!init}. *)
