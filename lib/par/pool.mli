(** A small fork/join domain pool for replicated simulations.

    [Pool] is the only module in the tree allowed to touch [Domain] and
    [Atomic] (lint rule R7 confines concurrency primitives to [lib/par/]).
    Work is scheduled in chunks off a shared atomic counter, so a slow item
    never serializes the rest of its pre-assigned stripe; all spawned
    domains are joined before [init]/[map] returns, even when a worker
    raises.

    The pool runs item computations concurrently but promises nothing about
    their order.  Callers that need deterministic output must make each
    item's computation self-contained — see {!Rumor_sim.Replicate}, which
    pre-splits one RNG per replication in index order and defers all
    observable effects to an ordered pass after the join. *)

type t
(** A parallelism degree.  Creating a pool allocates nothing and spawns no
    domains; workers are forked per {!init}/{!map} call and joined before it
    returns, so a pool value can be kept and reused freely. *)

val create : jobs:int -> t
(** [create ~jobs] is a pool running [jobs] workers per call, the calling
    domain included — [jobs = 1] never spawns and degrades to the plain
    sequential loop.  [jobs = 0] means [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [jobs < 0]. *)

val jobs : t -> int
(** The resolved parallelism degree (after the [0] default expansion). *)

val init : t -> int -> (int -> 'a) -> 'a array
(** [init t n f] is [Array.init n f] computed by [jobs t] workers.  [f] is
    called exactly once per index on some worker domain, in no particular
    order; indices never overlap, so [f] may freely write to per-index slots
    of shared arrays.  If any call raises, the first failure (in completion
    order, not index order) is re-raised with its backtrace after all
    workers have been joined; remaining workers stop at their next chunk
    boundary.
    @raise Invalid_argument if [n < 0]. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f a] is [Array.map f a] computed like {!init}. *)
