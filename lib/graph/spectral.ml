(* Power iteration on the lazy walk matrix (I + P) / 2, deflating the
   stationary (constant) eigenvector.  P is self-adjoint with respect to
   the pi-weighted inner product (pi_v = deg v / 2m), so the iteration
   converges to the second eigenvector and its Rayleigh quotient. *)

let pi_weights g =
  let total = float_of_int (Graph.total_degree g) in
  Array.init (Graph.n g) (fun v -> float_of_int (Graph.degree g v) /. total)

let lazy_step g x y =
  let n = Graph.n g in
  for u = 0 to n - 1 do
    let sum = Graph.fold_neighbors g u (fun acc v -> acc +. x.(v)) 0.0 in
    y.(u) <- (0.5 *. x.(u)) +. (0.5 *. sum /. float_of_int (Graph.degree g u))
  done

let iterate ?(iterations = 300) g =
  if not (Algo.is_connected g) then invalid_arg "Spectral: disconnected graph";
  let n = Graph.n g in
  if iterations < 1 then invalid_arg "Spectral: iterations < 1";
  let pi = pi_weights g in
  let dot x y =
    let sum = ref 0.0 in
    for v = 0 to n - 1 do
      sum := !sum +. (pi.(v) *. x.(v) *. y.(v))
    done;
    !sum
  in
  let deflate x =
    (* remove the component along the constant vector *)
    let mean = ref 0.0 in
    for v = 0 to n - 1 do
      mean := !mean +. (pi.(v) *. x.(v))
    done;
    for v = 0 to n - 1 do
      x.(v) <- x.(v) -. !mean
    done
  in
  let normalize x =
    let norm = sqrt (dot x x) in
    if norm > 0.0 then
      for v = 0 to n - 1 do
        x.(v) <- x.(v) /. norm
      done
  in
  (* deterministic, aperiodic initial vector *)
  let x = Array.init n (fun v -> sin (float_of_int (v + 1))) in
  let y = Array.make n 0.0 in
  deflate x;
  normalize x;
  for _ = 1 to iterations do
    lazy_step g x y;
    Array.blit y 0 x 0 n;
    deflate x;
    normalize x
  done;
  lazy_step g x y;
  let lambda = dot x y /. dot x x in
  (x, lambda)

let spectral_gap ?iterations g =
  if Graph.n g <= 1 then 1.0
  else begin
    let _, lambda = iterate ?iterations g in
    Float.max 0.0 (1.0 -. lambda)
  end

let relaxation_time ?iterations g = 1.0 /. spectral_gap ?iterations g

let second_eigenvector ?iterations g = fst (iterate ?iterations g)

let cut_conductance g side =
  let n = Graph.n g in
  if Array.length side <> n then invalid_arg "Spectral.cut_conductance: bad side array";
  let cut = ref 0 and vol_in = ref 0 and vol_out = ref 0 in
  for u = 0 to n - 1 do
    if side.(u) then vol_in := !vol_in + Graph.degree g u
    else vol_out := !vol_out + Graph.degree g u
  done;
  if !vol_in = 0 || !vol_out = 0 then
    invalid_arg "Spectral.cut_conductance: one side is empty";
  Graph.iter_edges g (fun u v -> if side.(u) <> side.(v) then incr cut);
  float_of_int !cut /. float_of_int (min !vol_in !vol_out)

let conductance_sweep ?iterations g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Spectral.conductance_sweep: trivial graph";
  let x = second_eigenvector ?iterations g in
  let order = Array.init n (fun v -> v) in
  Array.sort (fun a b -> Float.compare x.(a) x.(b)) order;
  (* sweep: move vertices into side S in eigenvector order, maintaining the
     cut size incrementally *)
  let in_s = Array.make n false in
  let total_vol = Graph.total_degree g in
  let cut = ref 0 and vol = ref 0 in
  let best = ref infinity in
  for i = 0 to n - 2 do
    let v = order.(i) in
    let to_s = Graph.fold_neighbors g v (fun acc w -> if in_s.(w) then acc + 1 else acc) 0 in
    cut := !cut + Graph.degree g v - (2 * to_s);
    vol := !vol + Graph.degree g v;
    in_s.(v) <- true;
    let phi = float_of_int !cut /. float_of_int (min !vol (total_vol - !vol)) in
    if phi < !best then best := phi
  done;
  !best

let conductance_exact ?(max_n = 20) g =
  let n = Graph.n g in
  if n > max_n then
    invalid_arg
      (Printf.sprintf "Spectral.conductance_exact: n = %d exceeds max_n = %d" n max_n);
  if n < 2 then invalid_arg "Spectral.conductance_exact: trivial graph";
  (* vertex 0's side is fixed (phi(S) = phi(complement)), halving the work *)
  let best = ref infinity in
  let side = Array.make n false in
  for mask = 1 to (1 lsl (n - 1)) - 1 do
    for v = 1 to n - 1 do
      side.(v) <- mask land (1 lsl (v - 1)) <> 0
    done;
    side.(0) <- false;
    let phi = cut_conductance g side in
    if phi < !best then best := phi
  done;
  !best

let vertex_expansion_exact ?(max_n = 20) g =
  let n = Graph.n g in
  if n > max_n then
    invalid_arg
      (Printf.sprintf "Spectral.vertex_expansion_exact: n = %d exceeds max_n = %d" n
         max_n);
  if n < 2 then invalid_arg "Spectral.vertex_expansion_exact: trivial graph";
  let best = ref infinity in
  let in_s = Array.make n false in
  (* enumerate every nonempty subset; only those of size <= n/2 count *)
  for mask = 1 to (1 lsl n) - 1 do
    let size = ref 0 in
    for v = 0 to n - 1 do
      let inside = mask land (1 lsl v) <> 0 in
      in_s.(v) <- inside;
      if inside then incr size
    done;
    if 2 * !size <= n then begin
      let boundary = ref 0 in
      for v = 0 to n - 1 do
        if not in_s.(v) then begin
          let touches =
            Graph.fold_neighbors g v (fun acc w -> acc || in_s.(w)) false
          in
          if touches then incr boundary
        end
      done;
      let h = float_of_int !boundary /. float_of_int !size in
      if h < !best then best := h
    end
  done;
  !best

let cheeger_check g =
  let gap = spectral_gap g in
  let phi =
    if Graph.n g <= 16 then conductance_exact g else conductance_sweep g
  in
  let tolerance = 0.05 in
  (* lazy-chain Cheeger: gap <= phi and phi <= 2 sqrt(gap); the sweep value
     upper-bounds phi and satisfies the constructive bound itself *)
  gap <= phi +. tolerance && phi <= (2.0 *. sqrt gap) +. tolerance
