(** Random graph models.

    Random d-regular graphs with [d = Theta(log n)] are the primary testbed
    for the regular-graph theorems (Theorems 1, 23–25): they satisfy the
    degree hypothesis and have logarithmic broadcast time for all four
    protocols, so constant-factor relationships are visible directly.

    Every generator accepts [?trace] and forwards it to
    {!Graph.Builder.create}, so a traced build shows its edge-generation,
    CSR-fill and sort phases as spans. *)

val erdos_renyi :
  ?trace:Rumor_obs.Trace.t -> Rumor_prob.Rng.t -> n:int -> p:float -> Graph.t
(** [erdos_renyi rng ~n ~p] samples G(n, p) using geometric edge skipping,
    O(n + m) expected time.  The result may be disconnected. *)

val gnm : ?trace:Rumor_obs.Trace.t -> Rumor_prob.Rng.t -> n:int -> m:int -> Graph.t
(** [gnm rng ~n ~m] samples a uniform simple graph with exactly [m] edges
    (rejection on duplicates; requires [m] at most n(n-1)/2). *)

val random_regular :
  ?trace:Rumor_obs.Trace.t -> Rumor_prob.Rng.t -> n:int -> d:int -> Graph.t
(** [random_regular rng ~n ~d] samples a d-regular simple graph by the
    configuration (pairing) model, rejecting pairings with loops or multiple
    edges and retrying.  Requires [n*d] even, [0 < d < n].  Expected number
    of retries is exp(d^2/4)-ish, fine for [d <= ~2 sqrt(log n) * ...]; in
    practice instant for the d = O(log n) range used here. *)

val random_regular_connected :
  ?trace:Rumor_obs.Trace.t -> Rumor_prob.Rng.t -> n:int -> d:int -> Graph.t
(** Like {!random_regular} but additionally resamples until the graph is
    connected (a.a.s. immediate for [d >= 3]). *)

val preferential_attachment :
  ?trace:Rumor_obs.Trace.t -> Rumor_prob.Rng.t -> n:int -> m:int -> Graph.t
(** [preferential_attachment rng ~n ~m] grows a Barabási–Albert graph: it
    starts from a clique on [m + 1] vertices and attaches each new vertex
    to [m] distinct existing vertices chosen with probability proportional
    to their current degree.  The result is connected with a power-law
    degree tail — the social-network model family on which push-pull beats
    push ([12], [17] in the paper's related work).
    Requires [1 <= m < n]. *)
