module Rng = Rumor_prob.Rng

let erdos_renyi ?trace rng ~n ~p =
  if n < 1 then invalid_arg "Gen_random.erdos_renyi: n < 1";
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Gen_random.erdos_renyi: bad p";
  let total = n * (n - 1) / 2 in
  let b =
    Graph.Builder.create ?trace
      ~capacity:(if p >= 1.0 then total else 1 + int_of_float (p *. float_of_int total))
      ~n ()
  in
  if p >= 1.0 then
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        Graph.Builder.add_edge b u v
      done
    done
  else if p > 0.0 then begin
    (* Iterate over the n(n-1)/2 potential edges with geometric skips: the
       index of the next present edge is current + Geometric(p). *)
    let log1mp = log1p (-.p) in
    let idx = ref (-1) in
    (* The linear index is monotone, so the (row, col) decode keeps a running
       row cursor instead of rescanning from row 0 per edge — the whole sweep
       is O(n + m), which is what makes p ~ ln n / n at n = 10^7 feasible. *)
    let row = ref 0 in
    let row_start = ref 0 in
    let continue = ref true in
    while !continue do
      let u = 1.0 -. Rng.float rng 1.0 in
      let gap = int_of_float (ceil (log u /. log1mp)) in
      let gap = if gap < 1 then 1 else gap in
      idx := !idx + gap;
      if !idx >= total then continue := false
      else begin
        while !idx - !row_start >= n - 1 - !row do
          row_start := !row_start + (n - 1 - !row);
          incr row
        done;
        Graph.Builder.add_edge b !row (!row + 1 + (!idx - !row_start))
      end
    done
  end;
  Graph.Builder.finish b

let gnm ?trace rng ~n ~m =
  if n < 1 then invalid_arg "Gen_random.gnm: n < 1";
  let max_m = n * (n - 1) / 2 in
  if m < 0 || m > max_m then invalid_arg "Gen_random.gnm: m out of range";
  let seen = Hashtbl.create (2 * m) in
  let b = Graph.Builder.create ?trace ~capacity:(max 1 m) ~n () in
  let count = ref 0 in
  while !count < m do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let key = (min u v * n) + max u v in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        Graph.Builder.add_edge b (min u v) (max u v);
        incr count
      end
    end
  done;
  Graph.Builder.finish b

let complete_builder ?trace n =
  let b = Graph.Builder.create ?trace ~capacity:(n * (n - 1) / 2) ~n () in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Graph.Builder.add_edge b u v
    done
  done;
  Graph.Builder.finish b

(* Configuration-model pairing followed by defect repair: loops and parallel
   edges left by the random pairing are removed by random degree-preserving
   edge switches.  This is the standard practical generator; the output
   distribution is not exactly uniform over d-regular graphs but is
   contiguity-equivalent for the structural properties measured here. *)
let rec random_regular ?trace rng ~n ~d =
  if d <= 0 || d >= n then invalid_arg "Gen_random.random_regular: need 0 < d < n";
  if n * d mod 2 <> 0 then invalid_arg "Gen_random.random_regular: n*d must be even";
  if d = n - 1 then
    (* the complete graph is the unique (n-1)-regular graph on n vertices,
       and the switch repair cannot operate there *)
    complete_builder ?trace n
  else if 2 * d > n then
    (* dense regime: sample the (n-1-d)-regular complement instead, where
       the pairing model is simple with decent probability *)
    complement ?trace (random_regular ?trace rng ~n ~d:(n - 1 - d))
  else random_regular_sparse ?trace rng ~n ~d

and complement ?trace g =
  let n = Graph.n g in
  let b = Graph.Builder.create ?trace ~n () in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (Graph.mem_edge g u v) then Graph.Builder.add_edge b u v
    done
  done;
  Graph.Builder.finish b

and random_regular_sparse ?trace rng ~n ~d =
  let attempt () =
    let stubs = Array.make (n * d) 0 in
    let pos = ref 0 in
    for v = 0 to n - 1 do
      for _ = 1 to d do
        stubs.(!pos) <- v;
        incr pos
      done
    done;
    Rng.shuffle rng stubs;
    let half = n * d / 2 in
    (* edge list as parallel arrays so endpoints can be rewired in place *)
    let ea = Array.make half 0 and eb = Array.make half 0 in
    for i = 0 to half - 1 do
      ea.(i) <- stubs.(2 * i);
      eb.(i) <- stubs.((2 * i) + 1)
    done;
    let key u v = (min u v * n) + max u v in
    let seen = Hashtbl.create (2 * half) in
    (* defective pairs are counted as they are found; the switch budget uses
       that running count rather than an O(defects) List.length pass *)
    let bad = ref [] in
    let nbad = ref 0 in
    for i = 0 to half - 1 do
      let u = ea.(i) and v = eb.(i) in
      if u = v || Hashtbl.mem seen (key u v) then begin
        bad := i :: !bad;
        incr nbad
      end
      else Hashtbl.add seen (key u v) i
    done;
    (* Repair each defective pair by switching with a random healthy edge. *)
    let switches = ref 0 in
    let max_switches = (200 * (!nbad + 1)) + 1000 in
    let rec repair defective =
      match defective with
      | [] -> true
      | i :: rest ->
          if !switches > max_switches then false
          else begin
            incr switches;
            let j = Rng.int rng half in
            let u = ea.(i) and v = eb.(i) in
            let x = ea.(j) and y = eb.(j) in
            (* propose (u,x) and (v,y); healthy iff simple and fresh *)
            let ok =
              j <> i && u <> x && v <> y
              && (not (Hashtbl.mem seen (key u x)))
              && (not (Hashtbl.mem seen (key v y)))
              && key u x <> key v y
              && Hashtbl.find_opt seen (key x y) = Some j
            in
            if ok then begin
              Hashtbl.remove seen (key x y);
              ea.(i) <- u;
              eb.(i) <- x;
              ea.(j) <- v;
              eb.(j) <- y;
              Hashtbl.add seen (key u x) i;
              Hashtbl.add seen (key v y) j;
              repair rest
            end
            else repair defective
          end
    in
    if repair !bad then begin
      let b = Graph.Builder.create ?trace ~capacity:half ~n () in
      for i = 0 to half - 1 do
        Graph.Builder.add_edge b ea.(i) eb.(i)
      done;
      Some (Graph.Builder.finish b)
    end
    else None
  in
  let rec loop tries =
    if tries > 100 then failwith "Gen_random.random_regular: repair failed repeatedly"
    else match attempt () with Some g -> g | None -> loop (tries + 1)
  in
  loop 0

let preferential_attachment ?trace rng ~n ~m =
  if m < 1 then invalid_arg "Gen_random.preferential_attachment: m < 1";
  if n <= m then invalid_arg "Gen_random.preferential_attachment: need n > m";
  (* repeated-endpoints trick: sampling a uniform element of the flat edge-
     endpoint array is exactly degree-proportional sampling *)
  let seed_edges = m * (m + 1) / 2 in
  let total_edges = seed_edges + (m * (n - m - 1)) in
  let capacity = 2 * total_edges in
  let endpoints = Array.make capacity 0 in
  let endpoint_count = ref 0 in
  let b = Graph.Builder.create ?trace ~capacity:total_edges ~n () in
  let add_edge u v =
    Graph.Builder.add_edge b u v;
    endpoints.(!endpoint_count) <- u;
    endpoints.(!endpoint_count + 1) <- v;
    endpoint_count := !endpoint_count + 2
  in
  for u = 0 to m do
    for v = u + 1 to m do
      add_edge u v
    done
  done;
  for v = m + 1 to n - 1 do
    (* choose m distinct targets against the state before v's own edges *)
    let snapshot = !endpoint_count in
    let targets = Hashtbl.create m in
    while Hashtbl.length targets < m do
      let u = endpoints.(Rng.int rng snapshot) in
      if not (Hashtbl.mem targets u) then Hashtbl.add targets u ()
    done;
    Hashtbl.iter (fun u () -> add_edge u v) targets
  done;
  Graph.Builder.finish b

let random_regular_connected ?trace rng ~n ~d =
  let rec loop tries =
    if tries > 100 then
      failwith "Gen_random.random_regular_connected: no connected sample in 100 tries"
    else
      let g = random_regular ?trace rng ~n ~d in
      if Algo.is_connected g then g else loop (tries + 1)
  in
  loop 0
