let bfs_distances g src =
  let n = Graph.n g in
  if src < 0 || src >= n then invalid_arg "Algo.bfs_distances: source out of range";
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(src) <- 0;
  queue.(!tail) <- src;
  incr tail;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          queue.(!tail) <- v;
          incr tail
        end)
  done;
  dist

let components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let queue = Array.make n 0 in
  let next_label = ref 0 in
  for s = 0 to n - 1 do
    if label.(s) < 0 then begin
      let id = !next_label in
      incr next_label;
      let head = ref 0 and tail = ref 0 in
      label.(s) <- id;
      queue.(!tail) <- s;
      incr tail;
      while !head < !tail do
        let u = queue.(!head) in
        incr head;
        Graph.iter_neighbors g u (fun v ->
            if label.(v) < 0 then begin
              label.(v) <- id;
              queue.(!tail) <- v;
              incr tail
            end)
      done
    end
  done;
  label

let component_count g =
  let label = components g in
  Array.fold_left max (-1) label + 1

let is_connected g = Graph.n g <= 1 || component_count g = 1

let eccentricity g src =
  let dist = bfs_distances g src in
  Array.fold_left
    (fun acc d ->
      if d < 0 then invalid_arg "Algo.eccentricity: disconnected graph"
      else max acc d)
    0 dist

let diameter g =
  if not (is_connected g) then invalid_arg "Algo.diameter: disconnected graph";
  let best = ref 0 in
  for u = 0 to Graph.n g - 1 do
    let e = eccentricity g u in
    if e > !best then best := e
  done;
  !best

let diameter_lower_bound g =
  if Graph.n g = 0 then 0
  else begin
    let dist0 = bfs_distances g 0 in
    let far = ref 0 in
    Array.iteri (fun v d -> if d > dist0.(!far) then far := v) dist0;
    let dist1 = bfs_distances g !far in
    Array.fold_left max 0 dist1
  end

let is_bipartite g =
  let n = Graph.n g in
  let color = Array.make n (-1) in
  let queue = Array.make n 0 in
  let ok = ref true in
  for s = 0 to n - 1 do
    if !ok && color.(s) < 0 then begin
      let head = ref 0 and tail = ref 0 in
      color.(s) <- 0;
      queue.(!tail) <- s;
      incr tail;
      while !ok && !head < !tail do
        let u = queue.(!head) in
        incr head;
        Graph.iter_neighbors g u (fun v ->
            if color.(v) < 0 then begin
              color.(v) <- 1 - color.(u);
              queue.(!tail) <- v;
              incr tail
            end
            else if color.(v) = color.(u) then ok := false)
      done
    end
  done;
  !ok

let degree_histogram g =
  let table = Hashtbl.create 16 in
  for u = 0 to Graph.n g - 1 do
    let d = Graph.degree g u in
    Hashtbl.replace table d (1 + Option.value ~default:0 (Hashtbl.find_opt table d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
