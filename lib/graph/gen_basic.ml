let complete n =
  if n < 1 then invalid_arg "Gen_basic.complete: n < 1";
  let b = Graph.Builder.create ~capacity:(n * (n - 1) / 2) ~n () in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Graph.Builder.add_edge b u v
    done
  done;
  Graph.Builder.finish b

let path n =
  if n < 1 then invalid_arg "Gen_basic.path: n < 1";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen_basic.cycle: n < 3";
  Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let star ~leaves =
  if leaves < 1 then invalid_arg "Gen_basic.star: leaves < 1";
  Graph.of_edges ~n:(leaves + 1) (List.init leaves (fun i -> (0, i + 1)))

let complete_binary_tree ~levels =
  if levels < 1 then invalid_arg "Gen_basic.complete_binary_tree: levels < 1";
  let n = (1 lsl levels) - 1 in
  let edges = ref [] in
  for i = 1 to n - 1 do
    edges := (i, (i - 1) / 2) :: !edges
  done;
  Graph.of_edges ~n !edges

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen_basic.grid: empty dimension";
  let id r c = (r * cols) + c in
  let n = rows * cols in
  let b = Graph.Builder.create ~capacity:(2 * n) ~n () in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.Builder.add_edge b (id r c) (id r (c + 1));
      if r + 1 < rows then Graph.Builder.add_edge b (id r c) (id (r + 1) c)
    done
  done;
  Graph.Builder.finish b

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Gen_basic.torus: need rows, cols >= 3";
  let id r c = (r * cols) + c in
  let n = rows * cols in
  let b = Graph.Builder.create ~capacity:(2 * n) ~n () in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Graph.Builder.add_edge b (id r c) (id r ((c + 1) mod cols));
      Graph.Builder.add_edge b (id r c) (id ((r + 1) mod rows) c)
    done
  done;
  Graph.Builder.finish b

let hypercube ~dim =
  if dim < 1 then invalid_arg "Gen_basic.hypercube: dim < 1";
  if dim > 24 then invalid_arg "Gen_basic.hypercube: dim too large";
  let n = 1 lsl dim in
  let b = Graph.Builder.create ~capacity:(n * dim / 2) ~n () in
  for u = 0 to n - 1 do
    for i = 0 to dim - 1 do
      let v = u lxor (1 lsl i) in
      if u < v then Graph.Builder.add_edge b u v
    done
  done;
  Graph.Builder.finish b

let necklace ~cliques ~clique_size =
  if cliques < 3 then invalid_arg "Gen_basic.necklace: cliques < 3";
  if clique_size < 4 then invalid_arg "Gen_basic.necklace: clique_size < 4";
  let s = clique_size in
  let n = cliques * s in
  (* vertices of clique i are i*s .. i*s + s - 1; ports are the first two.
     The internal port edge (i*s, i*s+1) is dropped and replaced by the
     inter-clique edge (i*s+1, ((i+1) mod cliques)*s), keeping every degree
     equal to s-1. *)
  let edges = ref [] in
  for i = 0 to cliques - 1 do
    let base = i * s in
    for a = 0 to s - 1 do
      for b = a + 1 to s - 1 do
        if not (a = 0 && b = 1) then edges := (base + a, base + b) :: !edges
      done
    done;
    let next_base = (i + 1) mod cliques * s in
    edges := (base + 1, next_base) :: !edges
  done;
  Graph.of_edges ~n !edges

let barbell ~clique_size ~bridge_len =
  if clique_size < 2 then invalid_arg "Gen_basic.barbell: clique_size < 2";
  if bridge_len < 0 then invalid_arg "Gen_basic.barbell: bridge_len < 0";
  let s = clique_size in
  let n = (2 * s) + bridge_len in
  let edges = ref [] in
  let add_clique base =
    for a = 0 to s - 1 do
      for b = a + 1 to s - 1 do
        edges := (base + a, base + b) :: !edges
      done
    done
  in
  add_clique 0;
  add_clique (s + bridge_len);
  (* bridge path: vertex s-1 .. s .. s+bridge_len-1 .. s+bridge_len *)
  let prev = ref (s - 1) in
  for i = 0 to bridge_len - 1 do
    edges := (!prev, s + i) :: !edges;
    prev := s + i
  done;
  edges := (!prev, s + bridge_len) :: !edges;
  Graph.of_edges ~n !edges

let lollipop ~clique_size ~tail_len =
  if clique_size < 2 then invalid_arg "Gen_basic.lollipop: clique_size < 2";
  if tail_len < 1 then invalid_arg "Gen_basic.lollipop: tail_len < 1";
  let s = clique_size in
  let n = s + tail_len in
  let edges = ref [] in
  for a = 0 to s - 1 do
    for b = a + 1 to s - 1 do
      edges := (a, b) :: !edges
    done
  done;
  let prev = ref (s - 1) in
  for i = 0 to tail_len - 1 do
    edges := (!prev, s + i) :: !edges;
    prev := s + i
  done;
  Graph.of_edges ~n !edges
