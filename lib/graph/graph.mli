(** Compact immutable undirected graphs in CSR (compressed sparse row) form.

    Vertices are integers [0 .. n-1].  The adjacency of each vertex is stored
    sorted in one flat array, giving O(1) degree queries, cache-friendly
    neighbor iteration, and O(log deg) edge membership — the access pattern
    the protocol simulators are built around.

    Graphs are simple (no self-loops, no parallel edges) and undirected;
    {!Builder} enforces this at construction time. *)

type t

(** {1 Construction} *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph on [n] vertices from an undirected
    edge list.  Duplicate edges (in either orientation) are rejected.
    @raise Invalid_argument on self-loops, out-of-range endpoints, or
    duplicates. *)

val of_edge_array : n:int -> (int * int) array -> t
(** Array variant of {!of_edges}. *)

(** Streaming construction for huge graphs: endpoints accumulate in flat
    Bigarray buffers (2 unboxed words per edge, growing by doubling) and
    {!Builder.finish} assembles the CSR form directly from them — the edge
    set is materialized exactly once.  This is the path the random and
    lattice generators feed at n = 10^6..10^7. *)
module Builder : sig
  type graph := t
  type t

  val create : ?trace:Rumor_obs.Trace.t -> ?capacity:int -> n:int -> unit -> t
  (** [create ~n ()] starts a builder for a graph on [n] vertices.
      [capacity] pre-sizes the edge buffers (default 1024; they grow as
      needed, so it is only a hint).  [trace] records the build phases as
      spans: ["graph.edge_gen"] from [create] to {!finish} (covering the
      caller's generation loop), then ["graph.csr_fill"] and ["graph.sort"]
      inside {!finish}, plus an ["edges_built"] scalar counter.
      @raise Invalid_argument if [n < 0]. *)

  val add_edge : t -> int -> int -> unit
  (** Append one undirected edge.  Duplicates are detected at {!finish}.
      @raise Invalid_argument on out-of-range endpoints, self-loops, or a
      finished builder. *)

  val edge_count : t -> int
  val vertex_count : t -> int

  val finish : t -> graph
  (** Build the CSR graph and invalidate the builder (its edge buffers are
      released).  @raise Invalid_argument on duplicate edges or a second
      [finish]. *)
end

(** {1 Basic accessors} *)

val n : t -> int
(** Number of vertices. *)

val num_edges : t -> int
(** Number of undirected edges. *)

val degree : t -> int -> int

val neighbor : t -> int -> int -> int
(** [neighbor g u i] is the [i]-th neighbor of [u] in sorted order,
    [0 <= i < degree g u].  Bounds are checked only by the underlying array
    access. *)

val random_neighbor : t -> Rumor_prob.Rng.t -> int -> int
(** [random_neighbor g rng u] is a uniformly random neighbor of [u].
    @raise Invalid_argument if [u] is isolated. *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] tests adjacency by binary search. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val iter_edges : t -> (int -> int -> unit) -> unit
(** [iter_edges g f] calls [f u v] once per undirected edge with [u < v]. *)

val edge_index : t -> int -> int -> int
(** [edge_index g u v] is a stable index in [0, 2*num_edges) identifying the
    directed arc [u -> v] (the position of [v] inside [u]'s adjacency slice,
    offset by [u]'s CSR offset).  Used by the fairness metrics to accumulate
    per-edge traffic in a flat array. @raise Not_found if not adjacent. *)

val arc_count : t -> int
(** [arc_count g = 2 * num_edges g]: size of the directed-arc index space. *)

(** {1 Degree statistics} *)

val min_degree : t -> int
(** Cached at construction; O(1). Agent-placement validation keys off this
    to skip its per-agent isolated-vertex scan on min-degree-positive
    graphs. *)

val max_degree : t -> int
val is_regular : t -> bool

val regular_degree : t -> int option
(** [Some d] if every vertex has degree [d]. *)

val total_degree : t -> int
(** Sum of degrees, [2 * num_edges]. *)

val degrees : t -> int array
(** Fresh array of all vertex degrees (for stationary-placement weights). *)

(** {1 Validation and display} *)

val validate : t -> unit
(** Re-checks all CSR invariants (sorted adjacency, symmetry, no loops);
    intended for tests. @raise Invalid_argument when violated. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: vertex count, edge count, degree range. *)
