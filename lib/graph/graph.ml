module Rng = Rumor_prob.Rng

type t = {
  n : int;
  m : int;                (* number of undirected edges *)
  offsets : int array;    (* length n+1; adjacency of u is adj.(offsets.(u) .. offsets.(u+1)-1) *)
  adj : int array;        (* length 2m, sorted within each vertex slice *)
  min_deg : int;          (* cached at construction so min_degree is O(1) *)
}

(* offsets is already a degree prefix sum, so the min degree falls out of
   one pass at construction time — every later min_degree call is O(1). *)
let min_deg_of_offsets nv offsets =
  if nv = 0 then 0
  else begin
    let d = ref max_int in
    for u = 0 to nv - 1 do
      let du = offsets.(u + 1) - offsets.(u) in
      if du < !d then d := du
    done;
    !d
  end

let n g = g.n
let num_edges g = g.m
let degree g u = g.offsets.(u + 1) - g.offsets.(u)
let neighbor g u i = g.adj.(g.offsets.(u) + i)

let random_neighbor g rng u =
  let d = degree g u in
  if d = 0 then invalid_arg "Graph.random_neighbor: isolated vertex";
  g.adj.(g.offsets.(u) + Rng.int rng d)

let iter_neighbors g u f =
  for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
    f g.adj.(i)
  done

let fold_neighbors g u f init =
  let acc = ref init in
  for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
    acc := f !acc g.adj.(i)
  done;
  !acc

let iter_edges g f =
  for u = 0 to g.n - 1 do
    for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
      let v = g.adj.(i) in
      if u < v then f u v
    done
  done

(* Binary search for v in the sorted slice of u; returns the adj index. *)
let find_arc g u v =
  let lo = ref g.offsets.(u) and hi = ref (g.offsets.(u + 1) - 1) in
  let result = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.adj.(mid) in
    if w = v then begin
      result := mid;
      lo := !hi + 1
    end
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let mem_edge g u v = find_arc g u v >= 0

let edge_index g u v =
  let i = find_arc g u v in
  if i < 0 then raise Not_found else i

let arc_count g = 2 * g.m

let min_degree g = g.min_deg

let max_degree g =
  let d = ref 0 in
  for u = 0 to g.n - 1 do
    if degree g u > !d then d := degree g u
  done;
  !d

let is_regular g = g.n = 0 || min_degree g = max_degree g

let regular_degree g = if is_regular g && g.n > 0 then Some (degree g 0) else None

let total_degree g = 2 * g.m

let degrees g = Array.init g.n (fun u -> degree g u)

(* Sort every CSR slice in place and reject duplicate edges.  Small slices
   use insertion sort (no allocation — the common case for the sparse huge
   graphs the streaming builder targets); long ones fall back to a scratch
   merge sort. *)
let sort_and_check_slices ~who ~n:nv offsets adj =
  for u = 0 to nv - 1 do
    let lo = offsets.(u) and hi = offsets.(u + 1) in
    let len = hi - lo in
    if len > 32 then begin
      let slice = Array.sub adj lo len in
      Array.sort Int.compare slice;
      Array.blit slice 0 adj lo len
    end
    else
      for i = lo + 1 to hi - 1 do
        let x = adj.(i) in
        let j = ref (i - 1) in
        while !j >= lo && adj.(!j) > x do
          adj.(!j + 1) <- adj.(!j);
          decr j
        done;
        adj.(!j + 1) <- x
      done;
    for i = lo + 1 to hi - 1 do
      if adj.(i) = adj.(i - 1) then
        invalid_arg (Printf.sprintf "%s: duplicate edge (%d,%d)" who u adj.(i))
    done
  done

let of_edge_array ~n:nv edges =
  if nv < 0 then invalid_arg "Graph.of_edge_array: negative vertex count";
  let m = Array.length edges in
  let deg = Array.make nv 0 in
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= nv || v < 0 || v >= nv then
        invalid_arg
          (Printf.sprintf "Graph.of_edge_array: endpoint out of range (%d,%d), n=%d" u v nv);
      if u = v then
        invalid_arg (Printf.sprintf "Graph.of_edge_array: self-loop at %d" u);
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let offsets = Array.make (nv + 1) 0 in
  for u = 0 to nv - 1 do
    offsets.(u + 1) <- offsets.(u) + deg.(u)
  done;
  let adj = Array.make (2 * m) 0 in
  let cursor = Array.copy offsets in
  Array.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  sort_and_check_slices ~who:"Graph.of_edge_array" ~n:nv offsets adj;
  { n = nv; m; offsets; adj; min_deg = min_deg_of_offsets nv offsets }

let of_edges ~n edges = of_edge_array ~n (Array.of_list edges)

module Builder = struct
  (* Endpoints accumulate in two flat Bigarrays (2 words per edge, off the
     OCaml heap, no per-edge boxing) that double on demand; [finish] runs the
     usual two-pass CSR construction directly off them.  This is the
     streaming path the generators feed: a huge random graph is built with
     exactly one materialization of its edges. *)
  type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  module Trace = Rumor_obs.Trace

  type t = {
    bn : int;
    mutable us : buf;
    mutable vs : buf;
    mutable len : int;
    mutable finished : bool;
    btrace : Trace.t option;
  }

  let make_buf capacity = Bigarray.Array1.create Bigarray.Int Bigarray.C_layout capacity

  let create ?trace ?(capacity = 1024) ~n () =
    if n < 0 then invalid_arg "Graph.Builder.create: negative vertex count";
    let capacity = max 1 capacity in
    (* the edge-generation span stays open from [create] to [finish]: it
       covers whatever loop the caller feeds [add_edge] from *)
    (match trace with
    | None -> ()
    | Some tr -> Trace.begin_span tr "graph.edge_gen");
    {
      bn = n;
      us = make_buf capacity;
      vs = make_buf capacity;
      len = 0;
      finished = false;
      btrace = trace;
    }

  let vertex_count b = b.bn
  let edge_count b = b.len

  let grow b =
    let old = Bigarray.Array1.dim b.us in
    let us = make_buf (2 * old) and vs = make_buf (2 * old) in
    Bigarray.Array1.blit b.us (Bigarray.Array1.sub us 0 old);
    Bigarray.Array1.blit b.vs (Bigarray.Array1.sub vs 0 old);
    b.us <- us;
    b.vs <- vs

  let add_edge b u v =
    if b.finished then invalid_arg "Graph.Builder.add_edge: builder already finished";
    if u < 0 || u >= b.bn || v < 0 || v >= b.bn then
      invalid_arg
        (Printf.sprintf "Graph.Builder.add_edge: endpoint out of range (%d,%d), n=%d"
           u v b.bn);
    if u = v then
      invalid_arg (Printf.sprintf "Graph.Builder.add_edge: self-loop at %d" u);
    if b.len = Bigarray.Array1.dim b.us then grow b;
    b.us.{b.len} <- u;
    b.vs.{b.len} <- v;
    b.len <- b.len + 1

  let finish b =
    if b.finished then invalid_arg "Graph.Builder.finish: builder already finished";
    b.finished <- true;
    (match b.btrace with
    | None -> ()
    | Some tr ->
        Trace.end_span tr (* graph.edge_gen *);
        Rumor_obs.Counters.add
          (Rumor_obs.Counters.counter (Trace.counters tr) "edges_built")
          b.len;
        Trace.begin_span tr "graph.csr_fill");
    let nv = b.bn and m = b.len in
    let deg = Array.make nv 0 in
    for i = 0 to m - 1 do
      deg.(b.us.{i}) <- deg.(b.us.{i}) + 1;
      deg.(b.vs.{i}) <- deg.(b.vs.{i}) + 1
    done;
    let offsets = Array.make (nv + 1) 0 in
    for u = 0 to nv - 1 do
      offsets.(u + 1) <- offsets.(u) + deg.(u)
    done;
    let adj = Array.make (2 * m) 0 in
    let cursor = Array.copy offsets in
    for i = 0 to m - 1 do
      let u = b.us.{i} and v = b.vs.{i} in
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1
    done;
    (* release the endpoint buffers before the slice pass; peak memory is
       CSR + endpoints, never CSR + endpoints + a second edge list *)
    b.us <- make_buf 1;
    b.vs <- make_buf 1;
    (match b.btrace with
    | None -> ()
    | Some tr ->
        Trace.end_span tr (* graph.csr_fill *);
        Trace.begin_span tr "graph.sort");
    sort_and_check_slices ~who:"Graph.Builder.finish" ~n:nv offsets adj;
    (match b.btrace with None -> () | Some tr -> Trace.end_span tr);
    { n = nv; m; offsets; adj; min_deg = min_deg_of_offsets nv offsets }
end

let validate g =
  if Array.length g.offsets <> g.n + 1 then
    invalid_arg "Graph.validate: bad offsets length";
  if g.offsets.(0) <> 0 || g.offsets.(g.n) <> 2 * g.m then
    invalid_arg "Graph.validate: bad offset endpoints";
  for u = 0 to g.n - 1 do
    if g.offsets.(u + 1) < g.offsets.(u) then
      invalid_arg "Graph.validate: decreasing offsets";
    for i = g.offsets.(u) to g.offsets.(u + 1) - 1 do
      let v = g.adj.(i) in
      if v < 0 || v >= g.n then invalid_arg "Graph.validate: neighbor out of range";
      if v = u then invalid_arg "Graph.validate: self-loop";
      if i > g.offsets.(u) && g.adj.(i - 1) >= v then
        invalid_arg "Graph.validate: unsorted or duplicate adjacency";
      if not (mem_edge g v u) then invalid_arg "Graph.validate: asymmetric edge"
    done
  done

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d, deg=[%d..%d]%s)" g.n g.m (min_degree g)
    (max_degree g)
    (if is_regular g then ", regular" else "")
