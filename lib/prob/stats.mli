(** Summary statistics for replicated simulation measurements.

    {!t} is a streaming accumulator (Welford's algorithm, numerically stable)
    for mean/variance/extrema; {!summary} additionally computes order
    statistics from the full sample, which the experiment tables report. *)

type t
(** Streaming accumulator. *)

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit

val count : t -> int
val mean : t -> float
(** Mean of the values seen so far; [nan] if empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] if fewer than two values. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float

val std_error : t -> float
(** Standard error of the mean, [stddev / sqrt count]. *)

val ci95_halfwidth : t -> float
(** Half-width of the normal-approximation 95% confidence interval for the
    mean ([1.96 * std_error]). *)

(** Whole-sample summary with order statistics. *)
type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  q25 : float;
  median : float;
  q75 : float;
  max : float;
}

val summarize : float array -> summary
(** [summarize xs] computes the summary of a non-empty sample.  Quantiles use
    linear interpolation between order statistics.  Sorting uses
    [Float.compare], so any NaNs order before every number (deterministic,
    unlike the unspecified polymorphic-compare ordering).
    @raise Invalid_argument on an empty sample. *)

val summarize_ints : int array -> summary

val quantile : float array -> float -> float
(** [quantile sorted q] with [q] in [0,1] on an already-sorted array. *)

val pp_summary : Format.formatter -> summary -> unit

(** Fixed-width histogram over [lo, hi). *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> bins:int -> h
  val add : h -> float -> unit
  val counts : h -> int array
  val total : h -> int
  val underflow : h -> int
  val overflow : h -> int
  val bin_edges : h -> float array
end
