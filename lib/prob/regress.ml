type fit = { slope : float; intercept : float; r2 : float }

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Regress.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Regress.linear_fit: need at least two points";
  let fn = float_of_int n in
  let sum = Array.fold_left ( +. ) 0.0 in
  let mx = sum xs /. fn and my = sum ys /. fn in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if Float.equal !sxx 0.0 then
    invalid_arg "Regress.linear_fit: degenerate x values";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 =
    if Float.equal !syy 0.0 then 1.0 else !sxy *. !sxy /. (!sxx *. !syy)
  in
  { slope; intercept; r2 }

let require_positive name a =
  Array.iter
    (fun x -> if not (x > 0.0) then invalid_arg ("Regress." ^ name ^ ": non-positive value"))
    a

let power_fit ns ts =
  require_positive "power_fit" ns;
  require_positive "power_fit" ts;
  linear_fit (Array.map log ns) (Array.map log ts)

let log_fit ns ts =
  require_positive "log_fit" ns;
  linear_fit (Array.map log ns) ts

let pp_fit ppf f =
  Format.fprintf ppf "slope=%.3f intercept=%.3f r2=%.3f" f.slope f.intercept f.r2
