(** Sampling from the standard discrete and continuous distributions used by
    the simulator and its tests.

    All samplers take the {!Rng.t} explicitly so that callers control
    determinism.  Closed-form moments are provided alongside each sampler so
    property tests can check empirical statistics against theory. *)

val uniform_int : Rng.t -> int -> int
(** [uniform_int g n] is uniform on [0, n). Alias for {!Rng.int}. *)

val bernoulli : Rng.t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val binomial : Rng.t -> int -> float -> int
(** [binomial g n p] samples Bin(n, p).  Uses direct inversion for small
    [n*p] and the waiting-time (geometric skip) method otherwise; exact for
    all parameter ranges, O(n*p + 1) expected time.
    @raise Invalid_argument if [n < 0] or [p] is outside [0, 1]. *)

val geometric : Rng.t -> float -> int
(** [geometric g p] samples the number of Bernoulli(p) trials up to and
    including the first success; support {1, 2, ...}, mean [1/p].
    @raise Invalid_argument if [p <= 0.] or [p > 1.]. *)

val poisson : Rng.t -> float -> int
(** [poisson g lambda] samples Poisson(lambda).  Knuth's product method for
    small lambda, normal-rejection (PTRS-style) fallback via splitting for
    large lambda. @raise Invalid_argument if [lambda < 0.]. *)

val exponential : Rng.t -> float -> float
(** [exponential g rate] samples Exp(rate); mean [1/rate].
    @raise Invalid_argument if [rate <= 0.]. *)

val categorical : Rng.t -> float array -> int
(** [categorical g w] samples index [i] with probability [w.(i) / sum w] by
    linear scan; for repeated sampling from the same weights build an
    {!Alias.t} instead. @raise Invalid_argument on empty or non-positive
    total weight. *)

val multinomial : Rng.t -> int -> float array -> int array
(** [multinomial g n w] splits [n] trials across [Array.length w] bins with
    probabilities [w.(i) / sum w], by chained conditional {!binomial} draws
    (bin [i] gets Bin(remaining, w_i / remaining mass)).  Exact; the returned
    counts always sum to [n]; zero-weight bins receive 0.  The count-sweep
    walker kernels inline the uniform-weight specialization of this chain.
    @raise Invalid_argument if [n < 0], [w] is empty, any weight is negative,
    or the total weight is not positive. *)

val binomial_mean : int -> float -> float
val binomial_variance : int -> float -> float
val geometric_mean : float -> float
val geometric_variance : float -> float
