(** Fenwick (binary indexed) tree over non-negative integer counts, used to
    sample a vertex with probability proportional to its walker occupancy in
    the count-compressed asynchronous meet-exchange kernel: [find t r] with
    [r] uniform on [0, total t) picks index [i] with probability
    [get t i / total t], in O(log n) with no allocation.

    Counts must stay non-negative; [add] with a delta that would drive a
    slot negative is not checked (the walker kernels only move existing
    mass, so their deltas are always balanced). *)

type t

val create : int -> t
(** [create n] is an all-zero tree over indices [0, n).
    @raise Invalid_argument if [n < 0]. *)

val of_counts : int array -> t
(** [of_counts c] builds the tree holding [c] in O(n). *)

val size : t -> int

val total : t -> int
(** Sum of all counts; maintained incrementally, O(1). *)

val add : t -> int -> int -> unit
(** [add t i delta] adds [delta] to slot [i].
    @raise Invalid_argument if [i] is out of range. *)

val get : t -> int -> int
(** [get t i] is the current count at [i]; O(log n). *)

val prefix : t -> int -> int
(** [prefix t i] is the sum of slots [0, i); O(log n).
    @raise Invalid_argument if [i] is outside [0, size t]. *)

val find : t -> int -> (int * int)
(** [find t r] for [0 <= r < total t] returns [(i, residual)] where [i] is
    the unique index with [prefix t i <= r < prefix t (i+1)] and
    [residual = r - prefix t i] (uniform on the slot's count when [r] is
    uniform — callers reuse it as a second draw).
    @raise Invalid_argument if [r] is outside [0, total t). *)
