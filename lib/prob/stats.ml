type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { count = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let add_int t x = add t (float_of_int x)

let count t = t.count
let mean t = if t.count = 0 then nan else t.mean
let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)
let stddev t = sqrt (variance t)
let min_value t = if t.count = 0 then nan else t.min_v
let max_value t = if t.count = 0 then nan else t.max_v

let std_error t =
  if t.count < 2 then nan else stddev t /. sqrt (float_of_int t.count)

let ci95_halfwidth t = 1.96 *. std_error t

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  q25 : float;
  median : float;
  q75 : float;
  max : float;
}

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.quantile: empty sample";
  if q <= 0.0 then sorted.(0)
  else if q >= 1.0 then sorted.(n - 1)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let frac = pos -. float_of_int lo in
    if lo + 1 >= n then sorted.(n - 1)
    else sorted.(lo) +. (frac *. (sorted.(lo + 1) -. sorted.(lo)))
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let acc = create () in
  Array.iter (add acc) xs;
  {
    n;
    mean = mean acc;
    stddev = (if n < 2 then 0.0 else stddev acc);
    min = sorted.(0);
    q25 = quantile sorted 0.25;
    median = quantile sorted 0.5;
    q75 = quantile sorted 0.75;
    max = sorted.(n - 1);
  }

let summarize_ints xs = summarize (Array.map float_of_int xs)

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f sd=%.2f min=%.1f q25=%.1f med=%.1f q75=%.1f max=%.1f" s.n
    s.mean s.stddev s.min s.q25 s.median s.q75 s.max

module Histogram = struct
  type h = {
    lo : float;
    hi : float;
    bins : int array;
    mutable under : int;
    mutable over : int;
  }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
    if not (hi > lo) then invalid_arg "Histogram.create: hi <= lo";
    { lo; hi; bins = Array.make bins 0; under = 0; over = 0 }

  let add h x =
    if x < h.lo then h.under <- h.under + 1
    else if x >= h.hi then h.over <- h.over + 1
    else begin
      let k = Array.length h.bins in
      let i = int_of_float (float_of_int k *. (x -. h.lo) /. (h.hi -. h.lo)) in
      let i = if i >= k then k - 1 else i in
      h.bins.(i) <- h.bins.(i) + 1
    end

  let counts h = Array.copy h.bins
  let total h = Array.fold_left ( + ) 0 h.bins + h.under + h.over
  let underflow h = h.under
  let overflow h = h.over

  let bin_edges h =
    let k = Array.length h.bins in
    Array.init (k + 1) (fun i ->
        h.lo +. (float_of_int i *. (h.hi -. h.lo) /. float_of_int k))
end
