type t = {
  tree : int array; (* 1-indexed partial sums; slot i covers i - lsb(i) + 1 .. i *)
  n : int;
  mutable total : int;
}

let create n =
  if n < 0 then invalid_arg "Fenwick.create: n < 0";
  { tree = Array.make (n + 1) 0; n; total = 0 }

let size t = t.n
let total t = t.total

let add t i delta =
  if i < 0 || i >= t.n then invalid_arg "Fenwick.add: index out of range";
  t.total <- t.total + delta;
  let j = ref (i + 1) in
  while !j <= t.n do
    t.tree.(!j) <- t.tree.(!j) + delta;
    j := !j + !j land (- !j)
  done

let of_counts counts =
  let t = create (Array.length counts) in
  (* O(n) bulk build: seed each leaf, then push partial sums to parents *)
  Array.iteri (fun i c -> t.tree.(i + 1) <- c) counts;
  for j = 1 to t.n do
    let parent = j + (j land (-j)) in
    if parent <= t.n then t.tree.(parent) <- t.tree.(parent) + t.tree.(j)
  done;
  Array.iter (fun c -> t.total <- t.total + c) counts;
  t

let prefix t i =
  if i < 0 || i > t.n then invalid_arg "Fenwick.prefix: index out of range";
  let acc = ref 0 in
  let j = ref i in
  while !j > 0 do
    acc := !acc + t.tree.(!j);
    j := !j - !j land (- !j)
  done;
  !acc

let get t i = prefix t (i + 1) - prefix t i

(* Binary-lifting descent: find the leaf holding rank r without a search
   over prefix sums — O(log n) array reads, no allocation. *)
let find t r =
  if r < 0 || r >= t.total then invalid_arg "Fenwick.find: rank out of range";
  let pow = ref 1 in
  while !pow * 2 <= t.n do
    pow := !pow * 2
  done;
  let idx = ref 0 in
  let rem = ref r in
  let step = ref !pow in
  while !step > 0 do
    let next = !idx + !step in
    if next <= t.n && t.tree.(next) <= !rem then begin
      rem := !rem - t.tree.(next);
      idx := next
    end;
    step := !step / 2
  done;
  (!idx, !rem)
