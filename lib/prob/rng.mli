(** Deterministic, splittable pseudo-random number generation.

    The generator is xoshiro256** seeded through SplitMix64, which is the
    standard recommendation of Blackman and Vigna: SplitMix64 decorrelates
    arbitrary user seeds, and xoshiro256** provides a fast, high-quality
    256-bit-state stream.  All simulation randomness in this repository flows
    through this module, so a run is fully determined by its 64-bit seed.

    Generators are mutable; use {!split} to derive statistically independent
    child generators for replicated experiments. *)

type t
(** A mutable pseudo-random generator. *)

val create : int64 -> t
(** [create seed] builds a generator from an arbitrary 64-bit seed.  Any
    seed value is acceptable, including [0L]. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** [copy g] is a generator with the same state as [g]; the two evolve
    independently afterwards. *)

val split : t -> t
(** [split g] advances [g] and returns a fresh generator whose stream is
    statistically independent of [g]'s future output.  Used to give each
    replication of an experiment its own stream. *)

val split_n : t -> int -> t array
(** [split_n g n] is [n] children split off [g], guaranteed to be in split
    order: element [i] is the [(i+1)]-th call of [split g].  Pre-splitting a
    whole batch this way pins the child-to-replication assignment before any
    work is scheduled, which is what makes parallel replication
    ({!Rumor_par.Pool}) bit-identical to the sequential run.
    @raise Invalid_argument if [n < 0]. *)

val bits64 : t -> int64
(** [bits64 g] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform on [0, bound).  Uses rejection sampling, so the
    result is exactly uniform.  @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform on the inclusive range [lo, hi].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float g x] is uniform on [0, x).  [float g 1.0] has 53 random bits. *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle g a] permutes [a] uniformly in place (Fisher–Yates). *)

val choose : t -> 'a array -> 'a
(** [choose g a] is a uniformly random element of [a].
    @raise Invalid_argument if [a] is empty. *)
