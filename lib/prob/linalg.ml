let check_square a =
  let n = Array.length a in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Linalg: matrix is not square")
    a;
  n

let solve a b =
  let n = check_square a in
  if Array.length b <> n then invalid_arg "Linalg.solve: dimension mismatch";
  (* work on copies; augmented system [m | x] *)
  let m = Array.map Array.copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* partial pivoting *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then pivot := row
    done;
    if Float.abs m.(!pivot).(col) < 1e-12 then
      invalid_arg "Linalg.solve: singular matrix";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let t = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- t
    end;
    (* eliminate below *)
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      if not (Float.equal factor 0.0) then begin
        m.(row).(col) <- 0.0;
        for k = col + 1 to n - 1 do
          m.(row).(k) <- m.(row).(k) -. (factor *. m.(col).(k))
        done;
        x.(row) <- x.(row) -. (factor *. x.(col))
      end
    done
  done;
  (* back substitution *)
  for col = n - 1 downto 0 do
    let sum = ref x.(col) in
    for k = col + 1 to n - 1 do
      sum := !sum -. (m.(col).(k) *. x.(k))
    done;
    x.(col) <- !sum /. m.(col).(col)
  done;
  x

let mat_vec a x =
  let n = check_square a in
  if Array.length x <> n then invalid_arg "Linalg.mat_vec: dimension mismatch";
  Array.init n (fun i ->
      let sum = ref 0.0 in
      for j = 0 to n - 1 do
        sum := !sum +. (a.(i).(j) *. x.(j))
      done;
      !sum)

let residual_norm a x b =
  let ax = mat_vec a x in
  let worst = ref 0.0 in
  Array.iteri
    (fun i v ->
      let r = Float.abs (v -. b.(i)) in
      if r > !worst then worst := r)
    ax;
  !worst
