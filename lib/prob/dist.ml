let uniform_int g n = Rng.int g n

let bernoulli = Rng.bernoulli

let check_p name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Dist.%s: p=%g outside [0,1]" name p)

(* Waiting-time method: the number of successes among n Bernoulli(p) trials
   equals the number of geometric(p) inter-arrival gaps that fit in n.
   Expected cost O(n*p + 1), exact for all n, p. *)
let binomial_by_waiting g n p =
  let log1mp = log1p (-.p) in
  let count = ref 0 in
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    (* geometric gap >= 1 distributed as ceil(log(U)/log(1-p)) *)
    let u = 1.0 -. Rng.float g 1.0 in
    let gap = int_of_float (ceil (log u /. log1mp)) in
    let gap = if gap < 1 then 1 else gap in
    pos := !pos + gap;
    if !pos <= n then incr count else continue := false
  done;
  !count

let binomial g n p =
  if n < 0 then invalid_arg "Dist.binomial: n < 0";
  check_p "binomial" p;
  if Float.equal p 0.0 || n = 0 then 0
  else if Float.equal p 1.0 then n
  else if p > 0.5 then n - binomial_by_waiting g n (1.0 -. p)
  else if n <= 32 then begin
    (* direct simulation: cheap and exact for tiny n *)
    let count = ref 0 in
    for _ = 1 to n do
      if Rng.bernoulli g p then incr count
    done;
    !count
  end
  else binomial_by_waiting g n p

let geometric g p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Dist.geometric: p outside (0,1]";
  if Float.equal p 1.0 then 1
  else begin
    let u = 1.0 -. Rng.float g 1.0 in
    let k = int_of_float (ceil (log u /. log1p (-.p))) in
    if k < 1 then 1 else k
  end

let rec poisson g lambda =
  if lambda < 0.0 then invalid_arg "Dist.poisson: lambda < 0";
  if Float.equal lambda 0.0 then 0
  else if lambda < 30.0 then begin
    (* Knuth: multiply uniforms until the product drops below e^-lambda *)
    let threshold = exp (-.lambda) in
    let k = ref 0 in
    let prod = ref (1.0 -. Rng.float g 1.0) in
    while !prod > threshold do
      incr k;
      prod := !prod *. (1.0 -. Rng.float g 1.0)
    done;
    !k
  end
  else
    (* Split lambda = lambda/2 + lambda/2 and recurse; Poisson is additive,
       so this is exact and reduces to the small-lambda case in O(log) depth. *)
    let half = lambda /. 2.0 in
    poisson g half + poisson g (lambda -. half)

let exponential g rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate <= 0";
  let u = 1.0 -. Rng.float g 1.0 in
  -.log u /. rate

let categorical g w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Dist.categorical: empty weights";
  let total = Array.fold_left ( +. ) 0.0 w in
  if not (total > 0.0) then invalid_arg "Dist.categorical: non-positive total";
  let x = Rng.float g total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

(* Chained conditional binomials: bin i receives Bin(remaining, w_i / rest)
   where rest is the weight mass not yet assigned.  Each split reuses
   {!binomial}'s small-n / waiting-time strategy, so the whole vector is
   exact and costs O(sum over bins of remaining * p_i + bins).  Zero-weight
   bins fall through binomial's p = 0 fast path and receive 0. *)
let multinomial g n w =
  if n < 0 then invalid_arg "Dist.multinomial: n < 0";
  let bins = Array.length w in
  if bins = 0 then invalid_arg "Dist.multinomial: empty weights";
  let total = ref 0.0 in
  for i = 0 to bins - 1 do
    if not (w.(i) >= 0.0) then invalid_arg "Dist.multinomial: negative weight";
    total := !total +. w.(i)
  done;
  if not (!total > 0.0) then invalid_arg "Dist.multinomial: non-positive total";
  (* chain only up to the last positive-weight bin: the remainder is assigned
     there outright, so subtraction drift in [rest] can never leak mass into
     a zero-weight bin *)
  let last_pos = ref 0 in
  for i = 0 to bins - 1 do
    if w.(i) > 0.0 then last_pos := i
  done;
  let counts = Array.make bins 0 in
  let remaining = ref n in
  let rest = ref !total in
  let i = ref 0 in
  while !remaining > 0 && !i < !last_pos do
    let p = w.(!i) /. !rest in
    let p = if p > 1.0 then 1.0 else if p < 0.0 then 0.0 else p in
    let c = binomial g !remaining p in
    counts.(!i) <- c;
    remaining := !remaining - c;
    rest := !rest -. w.(!i);
    incr i
  done;
  if !remaining > 0 then counts.(!last_pos) <- !remaining;
  counts

let binomial_mean n p = float_of_int n *. p
let binomial_variance n p = float_of_int n *. p *. (1.0 -. p)
let geometric_mean p = 1.0 /. p
let geometric_variance p = (1.0 -. p) /. (p *. p)
