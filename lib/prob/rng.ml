(* xoshiro256** with SplitMix64 seeding (Blackman & Vigna).  All arithmetic
   is on Int64 with wrap-around semantics, which OCaml's Int64 provides. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

(* --- SplitMix64: used to expand a single seed into initial state --- *)

let splitmix_gamma = 0x9E3779B97F4A7C15L

let splitmix64_next state =
  let z = Int64.add !state splitmix_gamma in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let state = ref seed in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  (* xoshiro must not start from the all-zero state; SplitMix64 outputs are
     zero only for one input each, so four simultaneous zeros cannot happen,
     but guard anyway. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let of_int seed = create (Int64.of_int seed)

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let result = Int64.mul (rotl (Int64.mul g.s1 5L) 7) 9L in
  let t = Int64.shift_left g.s1 17 in
  g.s2 <- Int64.logxor g.s2 g.s0;
  g.s3 <- Int64.logxor g.s3 g.s1;
  g.s1 <- Int64.logxor g.s1 g.s2;
  g.s0 <- Int64.logxor g.s0 g.s3;
  g.s2 <- Int64.logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g = create (bits64 g)

let split_n g n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  if n = 0 then [||]
  else begin
    (* an explicit loop, not Array.init: the children must be split off [g]
       in index order, and Array.init's evaluation order is unspecified *)
    let children = Array.make n g in
    for i = 0 to n - 1 do
      children.(i) <- split g
    done;
    children
  end

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    (* power of two: mask the high-quality low bits of the starred output *)
    Int64.to_int (Int64.logand (bits64 g) (Int64.of_int (bound - 1)))
  else begin
    (* rejection sampling on 61 bits to avoid modulo bias (61 keeps the
       limit arithmetic comfortably inside OCaml's 63-bit native int) *)
    let mask = 0x1FFFFFFFFFFFFFFFL in
    let limit = (1 lsl 61) / bound * bound in
    let rec draw () =
      let r = Int64.to_int (Int64.logand (bits64 g) mask) in
      if r >= limit then draw () else r mod bound
    in
    draw ()
  end

let int_in g lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g x =
  (* 53 random bits mapped to [0,1), scaled by x *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bits *. (1.0 /. 9007199254740992.0) *. x

let bool g = Int64.logand (bits64 g) 1L = 1L

let bernoulli g p =
  if p <= 0.0 then false else if p >= 1.0 then true else float g 1.0 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int g (Array.length a))
