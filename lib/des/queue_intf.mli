(** Common signature of the DES event schedulers.

    Both {!Event_queue} (binary heap, O(log n) per op) and
    {!Calendar_queue} (calendar buckets, amortized O(1) per op) implement
    {!S} with the same observable semantics: events drain in ascending
    [(time, insertion order)] — same-time events are FIFO — so a DES run
    is a deterministic function of the inserted events no matter which
    scheduler backs it.  Protocol kernels functorize over [S]
    ({!Rumor_protocols.Async_engine}), and the property tests drain both
    implementations against each other. *)

module type S = sig
  type 'a t

  val create : unit -> 'a t
  val is_empty : 'a t -> bool
  val size : 'a t -> int

  val push : 'a t -> float -> 'a -> unit
  (** [push q time payload] schedules [payload] at [time].
      @raise Invalid_argument if [time] is NaN. *)

  val pop : 'a t -> (float * 'a) option
  (** Remove and return the earliest event, if any.  Events with equal
      times come out in insertion order (FIFO tie-break). *)

  val pop_into : 'a t -> 'a ref -> float
  (** Unboxed [pop] for hot loops: writes the earliest payload into the
      ref and returns its time, or returns NaN (writing nothing) on an
      empty queue.  Same order as {!pop}. *)

  val peek_time : 'a t -> float option
  (** Time of the earliest event without removing it. *)

  val clear : 'a t -> unit
  (** Drop every pending event and release the payload storage; also
      resets the FIFO tie-break counter, so a cleared queue orders events
      exactly like a fresh one. *)
end
