(* Array-backed binary min-heap ordered by (time, sequence number); the
   sequence number makes same-time events FIFO, so a run is a deterministic
   function of the inserted events. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let is_empty q = q.len = 0
let size q = q.len

(* Float.compare, not the polymorphic operators: the heap order is the DES
   hot loop, and generic compare both boxes the floats and trips lint rule
   R1.  NaN times are rejected at [push], so the IEEE/total-order difference
   never matters here. *)
let less a b =
  let c = Float.compare a.time b.time in
  c < 0 || (c = 0 && a.seq < b.seq)

let swap q i j =
  let tmp = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- tmp

(* lint: hot *)
let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less q.data.(i) q.data.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

(* lint: hot *)
let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.len && less q.data.(l) q.data.(!smallest) then smallest := l;
  if r < q.len && less q.data.(r) q.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

(* lint: hot *)
let push q time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.len = Array.length q.data then begin
    let capacity = max 8 (2 * q.len) in
    let bigger = Array.make capacity entry in
    Array.blit q.data 0 bigger 0 q.len;
    q.data <- bigger
  end;
  q.data.(q.len) <- entry;
  q.len <- q.len + 1;
  sift_up q (q.len - 1)

(* lint: hot *)
let pop q =
  if q.len = 0 then None
  else begin
    let top = q.data.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.data.(0) <- q.data.(q.len);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

(* Unboxed pop for the engine loop: no [Some (time, payload)] tuple per
   ring.  NaN is a safe empty sentinel because [push] rejects NaN times. *)
(* lint: hot *)
let pop_into q slot =
  if q.len = 0 then Float.nan
  else begin
    let top = q.data.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.data.(0) <- q.data.(q.len);
      sift_down q 0
    end;
    slot := top.payload;
    top.time
  end

let peek_time q = if q.len = 0 then None else Some q.data.(0).time

(* Dropping the array matters, not just the length: popped slots above
   [len] keep their entries reachable, so a lazy [clear] would pin every
   payload of a large finished run until the queue itself dies.  Resetting
   [next_seq] makes a cleared queue tie-break like a fresh one. *)
let clear q =
  q.data <- [||];
  q.len <- 0;
  q.next_seq <- 0
