(* The event-scheduler contract shared by Event_queue (binary heap) and
   Calendar_queue (calendar buckets).  Kept in its own compilation unit so
   protocol kernels can be functorized over the queue and the two
   implementations can be cross-checked drain-for-drain in tests. *)

module type S = sig
  type 'a t

  val create : unit -> 'a t
  val is_empty : 'a t -> bool
  val size : 'a t -> int

  val push : 'a t -> float -> 'a -> unit
  (** [push q time payload] schedules [payload] at [time].
      @raise Invalid_argument if [time] is NaN. *)

  val pop : 'a t -> (float * 'a) option
  (** Remove and return the earliest event, if any.  Events with equal
      times come out in insertion order (FIFO tie-break). *)

  val pop_into : 'a t -> 'a ref -> float
  (** Unboxed [pop] for hot loops: writes the earliest payload into the
      ref and returns its time, or returns NaN (writing nothing) on an
      empty queue.  Same order as {!pop}. *)

  val peek_time : 'a t -> float option
  (** Time of the earliest event without removing it. *)

  val clear : 'a t -> unit
  (** Drop every pending event and release the payload storage; also
      resets the FIFO tie-break counter, so a cleared queue orders events
      exactly like a fresh one. *)
end
