(** Calendar-queue event scheduler (Brown 1988) with amortized O(1) push
    and pop.

    Events hash by time into fixed-width buckets ("days") laid out over a
    rotating "year"; pop walks the year forward from the day of the last
    minimum, and the bucket count and width re-tune automatically (factor
    2 resize) when the load factor drifts, keeping ~2 events per day.
    Buckets sort lazily — pushes append, and a bucket is sorted at most
    once per pop that inspects it.

    The observable semantics are exactly {!Event_queue}'s: events drain
    in ascending [(time, insertion order)], same-time events are FIFO,
    so a simulation is a deterministic function of the inserted events
    and never of the bucket geometry.  Both modules implement
    {!Queue_intf.S}; the heap stays the default for small or short-lived
    queues (no resize machinery, better constants under ~10^4 events),
    the calendar wins on long runs with large stable populations.

    Degenerate time distributions (e.g. every event at one instant)
    cannot break correctness: a year scan that finds nothing falls back
    to a direct minimum search over all buckets. *)

type 'a t

type stats = {
  resizes : int;  (** lifetime resize count (grow + shrink) *)
  buckets : int;  (** current bucket count *)
  width : float;  (** current bucket width in time units *)
}

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q time payload] schedules [payload] at [time].  Times may be
    arbitrary finite floats, including times earlier than the last pop.
    @raise Invalid_argument if [time] is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, if any.  Events with equal
    times come out in insertion order. *)

val pop_into : 'a t -> 'a ref -> float
(** Unboxed {!pop} for hot loops: writes the earliest payload into the
    ref and returns its time, or returns NaN (writing nothing) on an
    empty queue. *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val clear : 'a t -> unit
(** Drop every pending event, release the bucket storage, reset the
    geometry to its initial state and the FIFO tie-break counter to 0.
    The lifetime resize counter is preserved. *)

val stats : 'a t -> stats
(** Geometry snapshot, for benchmarks and resize-heuristic regression
    checks. *)
