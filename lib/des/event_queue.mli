(** A binary min-heap priority queue keyed by event time.

    Substrate for the asynchronous protocol variants (Section 2 of the
    paper discusses asynchronous push/push-pull, where every vertex acts at
    the arrival times of an independent unit-rate Poisson process).  Ties
    are broken by insertion order, making event processing deterministic
    given the generator seed. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q time payload] schedules [payload] at [time].
    @raise Invalid_argument if [time] is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, if any.  Events with equal times
    come out in insertion order. *)

val pop_into : 'a t -> 'a ref -> float
(** Unboxed {!pop} for hot loops: writes the earliest payload into the ref
    and returns its time, or returns NaN (writing nothing) on an empty
    queue. *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val clear : 'a t -> unit
(** Drop every pending event, release the payload storage (so a cleared
    queue retains nothing for the GC), and reset the FIFO tie-break
    counter. *)
