(* Calendar queue (Brown 1988): events hash into fixed-width time buckets
   laid out over a rotating "year" of [nbuckets] "days"; pop walks the
   year forward from the current day, so with a width matched to the event
   density both push and pop are amortized O(1).

   Determinism contract (shared with Event_queue): events drain in
   ascending (time, seq) where [seq] is the insertion counter, so a DES
   run is a function of the inserted events only — never of the bucket
   geometry.  Buckets sort lazily: pushes append and mark the bucket
   dirty, and the sort happens at most once per pop that inspects it.

   Geometry invariant: [vb] (the current virtual day, a float so a long
   run never wraps an int) never exceeds the virtual day of any pending
   event.  Pop advances [vb] only across days verified empty, push into
   the past rewinds it, and resize re-anchors it at the earliest event. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a bucket = {
  mutable items : 'a entry array;  (* valid prefix [0, blen) *)
  mutable blen : int;
  mutable dirty : bool;  (* true when the prefix may be unsorted *)
}

type 'a t = {
  mutable buckets : 'a bucket array;
  mutable nbuckets : int;
  mutable width : float;  (* day length in time units *)
  mutable vb : float;  (* current virtual day: floor(t / width) cursor *)
  mutable len : int;
  mutable next_seq : int;
  mutable resizes : int;
}

let min_buckets = 16

let make_buckets n =
  Array.init n (fun _ -> { items = [||]; blen = 0; dirty = false })

let create () =
  {
    buckets = make_buckets min_buckets;
    nbuckets = min_buckets;
    width = 1.0;
    vb = 0.0;
    len = 0;
    next_seq = 0;
    resizes = 0;
  }

let is_empty q = q.len = 0
let size q = q.len

(* Virtual day of time [t], clamped so that day arithmetic (rem, +1.0,
   int conversion) stays on exactly-representable integral floats even
   for absurd inputs.  Clamping is sound: it is applied identically on
   push and pop, so equal clamped days still route to one bucket, and
   the direct-search fallback never consults the day at all. *)
let day_clamp = 0x1p62

let virt q t =
  let v = Float.floor (t /. q.width) in
  if v > day_clamp then day_clamp
  else if v < -.day_clamp then -.day_clamp
  else v

(* physical bucket of a virtual day; Float.rem of integral doubles is
   exact, so this is a true mod over the whole clamped range *)
let bucket_index q v =
  let n = float_of_int q.nbuckets in
  let m = Float.rem v n in
  let m = if m < 0.0 then m +. n else m in
  int_of_float m

(* pop order: [a] drains before [b] *)
let less a b =
  let c = Float.compare a.time b.time in
  c < 0 || (c = 0 && a.seq < b.seq)

(* Descending insertion sort, so the bucket minimum sits at the end and
   pop removes it without shifting.  Insertion sort because buckets are
   near-sorted after the first pop touches them (later pushes only
   append), making the common re-sort linear. *)
(* lint: hot *)
let sort_bucket b =
  let a = b.items in
  let j = ref 0 in
  for i = 1 to b.blen - 1 do
    let e = a.(i) in
    j := i - 1;
    while !j >= 0 && less a.(!j) e do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- e
  done;
  b.dirty <- false

(* lint: hot *)
let bucket_add q e v =
  let b = q.buckets.(bucket_index q v) in
  let cap = Array.length b.items in
  if b.blen = cap then begin
    let bigger = Array.make (max 4 (2 * cap)) e in
    Array.blit b.items 0 bigger 0 b.blen;
    b.items <- bigger
  end;
  b.items.(b.blen) <- e;
  b.blen <- b.blen + 1;
  b.dirty <- true

(* Global minimum by scanning every bucket: the O(nbuckets + len)
   fallback when a whole year holds no event (width far off the event
   spacing, e.g. right before a resize re-tunes it). *)
let direct_min q =
  let best = ref (-1) in
  let best_t = ref 0.0 in
  let best_s = ref 0 in
  for idx = 0 to q.nbuckets - 1 do
    let b = q.buckets.(idx) in
    if b.blen > 0 then begin
      if b.dirty then sort_bucket b;
      let e = b.items.(b.blen - 1) in
      let c = Float.compare e.time !best_t in
      if !best < 0 || c < 0 || (c = 0 && e.seq < !best_s) then begin
        best := idx;
        best_t := e.time;
        best_s := e.seq
      end
    end
  done;
  !best

(* Find the bucket holding the earliest event, advancing [q.vb] across
   verified-empty days.  A bucket's sorted minimum has the minimal
   virtual day in that bucket, and days map to buckets injectively, so
   the first bucket whose minimum lives on the current day holds the
   global minimum.  Requires [q.len > 0]. *)
(* lint: hot *)
let locate q =
  let nb = q.nbuckets in
  let found = ref (-1) in
  let steps = ref 0 in
  while !found < 0 && !steps < nb do
    let idx = bucket_index q q.vb in
    let b = q.buckets.(idx) in
    if b.blen > 0 then begin
      if b.dirty then sort_bucket b;
      if Float.compare (virt q b.items.(b.blen - 1).time) q.vb <= 0 then
        found := idx
      else begin
        q.vb <- q.vb +. 1.0;
        incr steps
      end
    end
    else begin
      q.vb <- q.vb +. 1.0;
      incr steps
    end
  done;
  if !found >= 0 then !found
  else begin
    let idx = direct_min q in
    q.vb <- virt q q.buckets.(idx).items.(q.buckets.(idx).blen - 1).time;
    idx
  end

(* Rebuild with [new_n] buckets and a width re-tuned to the current
   event population: twice the mean inter-event gap, so a year spans the
   whole population and a day holds ~2 events.  The floor keeps
   [t / width] within float-exact integer range (see [virt]). *)
let resize q new_n =
  q.resizes <- q.resizes + 1;
  if q.len = 0 then begin
    q.buckets <- make_buckets new_n;
    q.nbuckets <- new_n;
    q.width <- 1.0;
    q.vb <- 0.0
  end
  else begin
    let seed = ref None in
    Array.iter
      (fun b -> if Option.is_none !seed && b.blen > 0 then seed := Some b.items.(0))
      q.buckets;
    let seed = match !seed with Some e -> e | None -> assert false in
    let all = Array.make q.len seed in
    let k = ref 0 in
    Array.iter
      (fun b ->
        for i = 0 to b.blen - 1 do
          all.(!k) <- b.items.(i);
          incr k
        done)
      q.buckets;
    let min_t = ref all.(0).time in
    let max_t = ref all.(0).time in
    for i = 1 to q.len - 1 do
      let t = all.(i).time in
      if Float.compare t !min_t < 0 then min_t := t;
      if Float.compare t !max_t > 0 then max_t := t
    done;
    let span = !max_t -. !min_t in
    let w =
      if span > 0.0 then 2.0 *. span /. float_of_int q.len else 1.0
    in
    let eps = (Float.abs !max_t +. 1.0) *. 0x1p-40 in
    let w = Float.max w eps in
    let w = if Float.is_finite w then w else Float.max_float in
    q.buckets <- make_buckets new_n;
    q.nbuckets <- new_n;
    q.width <- w;
    q.vb <- virt q !min_t;
    Array.iter (fun e -> bucket_add q e (virt q e.time)) all
  end

(* lint: hot *)
let push q time payload =
  if Float.is_nan time then invalid_arg "Calendar_queue.push: NaN time";
  let e = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  let v = virt q time in
  if q.len = 0 then q.vb <- v
  else if Float.compare v q.vb < 0 then q.vb <- v;
  bucket_add q e v;
  q.len <- q.len + 1;
  if q.len > 2 * q.nbuckets then resize q (2 * q.nbuckets)

(* Remove and return the earliest entry; requires [q.len > 0].  The
   popped slot keeps its entry reachable until overwritten (same policy
   as Event_queue) — [clear] drops the storage wholesale. *)
(* lint: hot *)
let take q =
  let idx = locate q in
  let b = q.buckets.(idx) in
  let e = b.items.(b.blen - 1) in
  b.blen <- b.blen - 1;
  q.len <- q.len - 1;
  if q.len < q.nbuckets / 4 && q.nbuckets > min_buckets then
    resize q (q.nbuckets / 2);
  e

let pop q =
  if q.len = 0 then None
  else begin
    let e = take q in
    Some (e.time, e.payload)
  end

(* lint: hot *)
let pop_into q slot =
  if q.len = 0 then Float.nan
  else begin
    let e = take q in
    slot := e.payload;
    e.time
  end

let peek_time q =
  if q.len = 0 then None
  else begin
    let b = q.buckets.(locate q) in
    Some b.items.(b.blen - 1).time
  end

let clear q =
  q.buckets <- make_buckets min_buckets;
  q.nbuckets <- min_buckets;
  q.width <- 1.0;
  q.vb <- 0.0;
  q.len <- 0;
  q.next_seq <- 0

(* declared last: the field names shadow the main record's otherwise *)
type stats = { resizes : int; buckets : int; width : float }

let stats (q : _ t) = { resizes = q.resizes; buckets = q.nbuckets; width = q.width }
