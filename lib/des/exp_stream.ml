(* Batched Exp(1) sampler for Poisson clocks: refills a flat buffer of
   [batch] gaps at a time instead of calling the sampler once per ring.
   The stream hands out exactly the sequence
   [Dist.exponential rng 1.0; Dist.exponential rng 1.0; ...] in draw
   order, so the values consumed — and therefore any simulation built on
   them — are independent of the batch size; only how far the generator
   has been advanced at a given instant differs (a refill over-draws up
   to [batch - 1] gaps).  Callers that share the generator with other
   randomness must give the stream a dedicated split (see
   Rumor_protocols.Async_engine's clock-stream contract). *)

module Rng = Rumor_prob.Rng
module Dist = Rumor_prob.Dist

type t = {
  rng : Rng.t;
  buf : float array;
  mutable pos : int;  (* next unread slot; [filled] when drained *)
  mutable filled : int;  (* valid prefix of [buf] *)
  mutable refills : int;
}

let create ?(batch = 4096) rng =
  if batch < 1 then invalid_arg "Exp_stream.create: batch < 1";
  { rng; buf = Array.make batch 0.0; pos = 0; filled = 0; refills = 0 }

let refill t =
  let n = Array.length t.buf in
  for i = 0 to n - 1 do
    t.buf.(i) <- Dist.exponential t.rng 1.0
  done;
  t.pos <- 0;
  t.filled <- n;
  t.refills <- t.refills + 1

(* lint: hot *)
let next t =
  if t.pos >= t.filled then refill t;
  let x = t.buf.(t.pos) in
  t.pos <- t.pos + 1;
  x

let batch t = Array.length t.buf
let drawn t = t.refills * Array.length t.buf
