(** Batched unit-rate exponential sampler — the Poisson-clock source of
    the asynchronous engine.

    RNG-consumption contract: [next] returns exactly the sequence
    [Dist.exponential rng 1.0] would produce when called once per ring,
    in draw order.  The k-th [next] always yields the k-th draw, so every
    value consumed is independent of [batch]; the batch only controls how
    eagerly the generator is advanced (a refill pre-draws [batch] gaps,
    over-drawing up to [batch - 1]).  Because of that over-draw the
    stream must own its generator: interleaving other draws on the same
    [rng] would make results batch-dependent.  The async engine therefore
    splits one dedicated clock generator off the run generator up front
    ({!Rumor_prob.Rng.split}) and feeds it only to this stream. *)

type t

val create : ?batch:int -> Rumor_prob.Rng.t -> t
(** [create ?batch rng] (default batch 4096) takes ownership of [rng].
    @raise Invalid_argument if [batch < 1]. *)

val next : t -> float
(** The next Exp(1) gap, refilling the buffer from the generator when it
    is drained. *)

val batch : t -> int
(** The buffer size this stream refills with. *)

val drawn : t -> int
(** Total samples drawn from the generator so far (refills × batch);
    at least the number of [next] calls, ahead by at most [batch - 1]. *)
