(* Benchmark harness.

   Usage:
     dune exec bench/main.exe                 # paper tables (quick) + microbenches
     dune exec bench/main.exe -- --full       # the EXPERIMENTS.md grids (slow)
     dune exec bench/main.exe -- --tables-only
     dune exec bench/main.exe -- --micro-only # also writes BENCH_<seed>.json
     dune exec bench/main.exe -- --seed 7
     dune exec bench/main.exe -- --tables-only --metrics bench.jsonl

   Part 1 regenerates every "table/figure" of the paper: one section per
   experiment E1..E10 (Figure 1(a)-(e), Theorems 1/23/24/25, the Section 5
   coupling invariants, the Section 1 combination claim) plus the ablations
   A1..A4.  Part 2 is a Bechamel microbenchmark of the engine: one
   Test.make per protocol on a reference graph, plus the substrate
   hot paths (PRNG, alias sampling, walker stepping, graph generation);
   its OLS estimates are snapshotted to a machine-readable BENCH JSON that
   `rumor_report compare` can diff across invocations. *)

module Experiments = Rumor_sim.Experiments
module Table = Rumor_sim.Table
module Rng = Rumor_prob.Rng
module P = Rumor_protocols
module Clock = Rumor_obs.Clock
module Trace = Rumor_obs.Trace

let write_trace tr path =
  if Filename.check_suffix path ".jsonl" then Trace.write_jsonl tr path
  else Trace.write_chrome tr path

(* ------------------------------------------------------------------ *)
(* Part 1: the paper's tables and figures                              *)
(* ------------------------------------------------------------------ *)

let run_tables ?metrics ?trace ~jobs profile ~seed =
  print_endline "=====================================================================";
  print_endline " Part 1: paper reproduction tables";
  print_endline " (one experiment per figure panel / theorem; see DESIGN.md section 3)";
  print_endline "=====================================================================";
  let results = Experiments.run_all ?metrics ?trace ~jobs profile ~seed in
  List.iter
    (fun ((e : Experiments.t), tables) ->
      Printf.printf "\n### %s: %s [%s]\n\n" e.Experiments.id e.Experiments.title
        e.Experiments.paper_ref;
      List.iter
        (fun t ->
          Table.print t;
          print_newline ())
        tables)
    results

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel microbenchmarks of the engine                      *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let reference_graph =
  lazy
    (let rng = Rng.of_int 12345 in
     Rumor_graph.Gen_random.random_regular_connected rng ~n:1024 ~d:10)

let protocol_tests () =
  let g = Lazy.force reference_graph in
  let agents = Rumor_agents.Placement.Linear 1.0 in
  let max_rounds = 100_000 in
  let counter = ref 0 in
  let next_seed () =
    incr counter;
    !counter
  in
  [
    Test.make ~name:"push/regular-1024"
      (Staged.stage (fun () ->
           P.Push.run (Rng.of_int (next_seed ())) g ~source:0 ~max_rounds ()));
    Test.make ~name:"push-pull/regular-1024"
      (Staged.stage (fun () ->
           P.Push_pull.run (Rng.of_int (next_seed ())) g ~source:0 ~max_rounds ()));
    Test.make ~name:"visit-exchange/regular-1024"
      (Staged.stage (fun () ->
           P.Visit_exchange.run (Rng.of_int (next_seed ())) g ~source:0 ~agents
             ~max_rounds ()));
    Test.make ~name:"meet-exchange/regular-1024"
      (Staged.stage (fun () ->
           P.Meet_exchange.run (Rng.of_int (next_seed ())) g ~source:0 ~agents
             ~max_rounds ()));
    Test.make ~name:"combined/regular-1024"
      (Staged.stage (fun () ->
           P.Combined.run (Rng.of_int (next_seed ())) g ~source:0 ~agents ~max_rounds ()));
    Test.make ~name:"quasi-push/regular-1024"
      (Staged.stage (fun () ->
           P.Quasi_push.run (Rng.of_int (next_seed ())) g ~source:0 ~max_rounds ()));
    Test.make ~name:"cobra-2/regular-1024"
      (Staged.stage (fun () ->
           P.Cobra.run (Rng.of_int (next_seed ())) g ~source:0 ~branching:2 ~max_rounds ()));
    Test.make ~name:"frog/regular-1024"
      (Staged.stage (fun () ->
           P.Frog.run (Rng.of_int (next_seed ())) g ~source:0 ~max_rounds ()));
    Test.make ~name:"flood/regular-1024"
      (Staged.stage (fun () -> P.Flood.run g ~source:0 ~max_rounds ()));
    Test.make ~name:"async-push/regular-1024"
      (Staged.stage (fun () ->
           P.Async_push.run (Rng.of_int (next_seed ())) g
             ~variant:P.Async_push.Async_push ~source:0 ~max_time:1e6));
  ]

let substrate_tests () =
  let g = Lazy.force reference_graph in
  let rng = Rng.of_int 777 in
  let alias = Rumor_agents.Placement.stationary_weights g in
  let walkers =
    Rumor_agents.Walkers.of_spec (Rng.of_int 778) g (Rumor_agents.Placement.Linear 1.0)
  in
  let buckets = Rumor_agents.Walkers.Buckets.create walkers in
  [
    Test.make ~name:"rng/bits64"
      (Staged.stage (fun () -> ignore (Rng.bits64 rng)));
    Test.make ~name:"rng/int-1000"
      (Staged.stage (fun () -> ignore (Rng.int rng 1000)));
    Test.make ~name:"alias/sample"
      (Staged.stage (fun () -> ignore (Rumor_prob.Alias.sample alias rng)));
    Test.make ~name:"walkers/step-1024-agents"
      (Staged.stage (fun () -> Rumor_agents.Walkers.step walkers));
    Test.make ~name:"walkers/buckets-refresh"
      (Staged.stage (fun () -> Rumor_agents.Walkers.Buckets.refresh buckets walkers));
    Test.make ~name:"graph/random-regular-512"
      (Staged.stage (fun () ->
           ignore
             (Rumor_graph.Gen_random.random_regular (Rng.of_int 991) ~n:512 ~d:10)));
    Test.make ~name:"graph/bfs-1024"
      (Staged.stage (fun () -> ignore (Rumor_graph.Algo.bfs_distances g 0)));
    Test.make ~name:"graph/spectral-gap-1024"
      (Staged.stage (fun () ->
           ignore (Rumor_graph.Spectral.spectral_gap ~iterations:50 g)));
    Test.make ~name:"graph/hitting-times-128"
      (Staged.stage
         (let small = Rumor_graph.Gen_basic.hypercube ~dim:7 in
          fun () -> ignore (Rumor_graph.Hitting.hitting_times small 0)));
  ]

let human_ns t =
  if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
  else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
  else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
  else Printf.sprintf "%.1f ns" t

(* Macro wall-clock entries: whole replication batches through
   Replicate.broadcast_times, the code path --jobs parallelizes.  Names are
   stable across jobs settings so `rumor_report compare BENCH_a.json
   BENCH_b.json` of two snapshots taken at different --jobs shows the
   speedup as the ratio column; the snapshot's [jobs] field tells the runs
   apart. *)
let run_macro ?trace ~jobs () =
  print_endline "=====================================================================";
  Printf.printf " Part 3: macro replication wall-clock (jobs %d)\n" jobs;
  print_endline "=====================================================================";
  let module Replicate = Rumor_sim.Replicate in
  let module Protocol = Rumor_sim.Protocol in
  let agents = Rumor_agents.Placement.Linear 1.0 in
  let graph rng =
    (Rumor_graph.Gen_random.random_regular_connected rng ~n:2048 ~d:8, 0)
  in
  let time name spec =
    let t0 = Clock.now_s () in
    let m =
      Replicate.broadcast_times ?trace ~jobs ~seed:42 ~reps:12 ~graph ~spec
        ~max_rounds:100_000 ()
    in
    let dt_ns = Clock.elapsed_ns ~since_s:t0 in
    Printf.printf "%-40s %15s  (mean bt %.1f)\n" name (human_ns dt_ns)
      m.Replicate.summary.Rumor_prob.Stats.mean;
    { Rumor_obs.Bench_record.name; time_ns = dt_ns; r_square = nan }
  in
  [
    time "replicate/push/regular-2048x12" Protocol.Push;
    time "replicate/visit-exchange/regular-2048x12"
      (Protocol.Visit_exchange { agents; laziness = Protocol.Lazy_auto });
  ]

let run_micro () =
  print_endline "=====================================================================";
  print_endline " Part 2: engine microbenchmarks (Bechamel, monotonic clock)";
  print_endline "=====================================================================";
  let tests = protocol_tests () @ substrate_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"rumor" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  Printf.printf "\n%-40s %15s %8s\n" "benchmark" "time/run" "r^2";
  Printf.printf "%s\n" (String.make 65 '-');
  let entries =
    List.map
      (fun (name, ols) ->
        let estimate =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
        Printf.printf "%-40s %15s %8.3f\n" name (human_ns estimate) r2;
        { Rumor_obs.Bench_record.name; time_ns = estimate; r_square = r2 })
      rows
  in
  entries

(* ------------------------------------------------------------------ *)
(* Part 4: engine hot-path throughput (flat-frontier kernels)          *)
(* ------------------------------------------------------------------ *)

(* G(n, p) at 1.25 ln n / n: connected w.h.p. with average degree
   2.5 ln n, the sparse regime the engine targets.  Isolated vertices or a
   disconnected sample would turn the bench into a round-cap grind (and
   push-pull draws a neighbor for every vertex), so resample on the rare
   failure. *)
let engine_graph ~seed n =
  let p =
    if n <= 2 then 1.0
    else Float.min 1.0 (1.25 *. log (float_of_int n) /. float_of_int n)
  in
  let rec pick seed tries =
    if tries > 20 then failwith "engine bench: no connected G(n,p) in 20 tries";
    let g = Rumor_graph.Gen_random.erdos_renyi (Rng.of_int seed) ~n ~p in
    if Rumor_graph.Graph.min_degree g >= 1 && Rumor_graph.Algo.is_connected g
    then g
    else pick (seed + 1) (tries + 1)
  in
  pick seed 0

let entry name time_ns = { Rumor_obs.Bench_record.name; time_ns; r_square = nan }

(* One timed engine run -> total, per-round and per-contact entries, so
   `rumor_report compare` tracks rounds/sec and edge-traversals/sec across
   snapshots. *)
let engine_run ?trace ~n name run =
  let t0 = Clock.now_s () in
  let (r : P.Run_result.t) =
    Trace.with_span trace (Printf.sprintf "bench.%s.er-%d" name n) run
  in
  let dt_ns = Clock.elapsed_ns ~since_s:t0 in
  let rounds = float_of_int (max r.P.Run_result.rounds_run 1) in
  let contacts = float_of_int (max r.P.Run_result.contacts 1) in
  Printf.printf "%-28s %12s  %12s/round  %6.1f ns/contact  (%d rounds%s)\n" name
    (human_ns dt_ns)
    (human_ns (dt_ns /. rounds))
    (dt_ns /. contacts) r.P.Run_result.rounds_run
    (match r.P.Run_result.broadcast_time with
    | Some t -> Printf.sprintf ", T = %d" t
    | None -> ", capped");
  [
    entry (Printf.sprintf "engine/%s/er-%d" name n) dt_ns;
    entry (Printf.sprintf "engine/%s/er-%d/ns-per-round" name n) (dt_ns /. rounds);
    entry
      (Printf.sprintf "engine/%s/er-%d/ns-per-contact" name n)
      (dt_ns /. contacts);
  ]

let run_engine_bench ?trace ~scale ~push_scale ~shards () =
  print_endline "=====================================================================";
  Printf.printf " Part 4: engine hot path (flat-frontier kernels, shards %d)\n" shards;
  print_endline "=====================================================================";
  let module Engine = P.Engine in
  let agents = Rumor_agents.Placement.Linear 1.0 in
  let max_rounds = 100_000 in
  let all_kernels n =
    let t0 = Clock.now_s () in
    let g = engine_graph ~seed:2024 n in
    let build_ns = Clock.elapsed_ns ~since_s:t0 in
    Printf.printf "er:%d — %d edges, built in %s\n" n
      (Rumor_graph.Graph.num_edges g)
      (human_ns build_ns);
    (* sequential lets: a list literal would evaluate (and print) the
       kernels right-to-left *)
    let push =
      engine_run ?trace ~n "push" (fun () ->
          Engine.push ?trace ~shards (Rng.of_int 31) g ~source:0 ~max_rounds ())
    in
    let push_pull =
      engine_run ?trace ~n "push-pull" (fun () ->
          Engine.push_pull ?trace ~shards (Rng.of_int 32) g ~source:0 ~max_rounds
            ())
    in
    let ve =
      engine_run ?trace ~n "visit-exchange" (fun () ->
          Engine.visit_exchange ?trace ~shards (Rng.of_int 33) g ~source:0
            ~agents ~max_rounds ())
    in
    let me =
      engine_run ?trace ~n "meet-exchange" (fun () ->
          Engine.meet_exchange ?trace ~shards (Rng.of_int 34) g ~source:0 ~agents
            ~max_rounds ())
    in
    entry (Printf.sprintf "engine/graph-build/er-%d" n) build_ns
    :: List.concat [ push; push_pull; ve; me ]
  in
  let base = all_kernels scale in
  (* the paper-scale demonstration: push only — the walker kernels would
     place [n] agents, which is a different (much longer) experiment *)
  let demo =
    if push_scale <= 0 then []
    else begin
      let t0 = Clock.now_s () in
      let g = engine_graph ~seed:4048 push_scale in
      let build_ns = Clock.elapsed_ns ~since_s:t0 in
      Printf.printf "er:%d — %d edges, built in %s\n" push_scale
        (Rumor_graph.Graph.num_edges g)
        (human_ns build_ns);
      entry (Printf.sprintf "engine/graph-build/er-%d" push_scale) build_ns
      :: engine_run ?trace ~n:push_scale "push" (fun () ->
             Engine.push ?trace ~shards (Rng.of_int 35) g ~source:0 ~max_rounds
               ())
    end
  in
  base @ demo

(* ------------------------------------------------------------------ *)
(* Part 5: DES scheduler throughput (heap vs calendar queue)           *)
(* ------------------------------------------------------------------ *)

(* Brown's classic hold-model benchmark: prefill the queue with n pending
   events, then time pop+reschedule cycles at steady state — exactly the
   access pattern of the async kernels, which reschedule the popped clock
   on (almost) every ring.  Exp(1) gaps are pre-drawn so the numbers
   isolate the scheduler from the sampler; each entry's time_ns is ns per
   hold operation, so `rumor_report compare` ratios read directly as
   scheduler speedups. *)
module Hold (Q : Rumor_des.Queue_intf.S) = struct
  let run ~n ~ops =
    let rng = Rng.of_int 4242 in
    let gaps = Array.init ops (fun _ -> Rumor_prob.Dist.exponential rng 1.0) in
    let q = Q.create () in
    for i = 0 to n - 1 do
      Q.push q (Rumor_prob.Dist.exponential rng 1.0) i
    done;
    let slot = ref 0 in
    let t0 = Clock.now_s () in
    for i = 0 to ops - 1 do
      let t = Q.pop_into q slot in
      Q.push q (t +. Array.unsafe_get gaps i) !slot
    done;
    let dt_ns = Clock.elapsed_ns ~since_s:t0 in
    (dt_ns /. float_of_int ops, q)
end

module Hold_heap = Hold (Rumor_des.Event_queue)
module Hold_calendar = Hold (Rumor_des.Calendar_queue)

let mev_per_s ns_per_op = 1e3 /. ns_per_op

let run_des_bench ?trace ~scale ~push_scale () =
  print_endline "=====================================================================";
  print_endline " Part 5: DES scheduler (hold model, heap vs calendar queue)";
  print_endline "=====================================================================";
  let module Calendar_queue = Rumor_des.Calendar_queue in
  let sizes = List.filter (fun n -> n <= scale) [ 10_000; 100_000; 1_000_000 ] in
  let ops = 1_000_000 in
  let hold_entries, hold_meta =
    List.split
      (List.map
         (fun n ->
           let heap_ns, _ = Hold_heap.run ~n ~ops in
           let cal_ns, q = Hold_calendar.run ~n ~ops in
           let s = Calendar_queue.stats q in
           Printf.printf
             "hold n=%-9d heap %6.1f ns/ev (%5.1f Mev/s)   calendar %6.1f \
              ns/ev (%5.1f Mev/s)   speedup %.2fx   (%d resizes, %d buckets, \
              width %.3g)\n"
             n heap_ns (mev_per_s heap_ns) cal_ns (mev_per_s cal_ns)
             (heap_ns /. cal_ns) s.Calendar_queue.resizes
             s.Calendar_queue.buckets s.Calendar_queue.width;
           ( [
               entry (Printf.sprintf "des/hold/heap/n-%d" n) heap_ns;
               entry (Printf.sprintf "des/hold/calendar/n-%d" n) cal_ns;
             ],
             [
               ( Printf.sprintf "des/hold/calendar/n-%d/resizes" n,
                 string_of_int s.Calendar_queue.resizes );
               ( Printf.sprintf "des/hold/calendar/n-%d/buckets" n,
                 string_of_int s.Calendar_queue.buckets );
               ( Printf.sprintf "des/hold/calendar/n-%d/width" n,
                 Printf.sprintf "%.6g" s.Calendar_queue.width );
             ] ))
         sizes)
  in
  (* end-to-end demonstration: asynchronous push over the full DES engine at
     paper scale, one run per queue backend (results are bit-identical, so
     the ratio is pure scheduler) *)
  let push_entries, push_meta =
    if push_scale <= 0 then ([], [])
    else begin
      let t0 = Clock.now_s () in
      let g = engine_graph ~seed:4048 push_scale in
      let build_ns = Clock.elapsed_ns ~since_s:t0 in
      Printf.printf "er:%d — %d edges, built in %s\n" push_scale
        (Rumor_graph.Graph.num_edges g)
        (human_ns build_ns);
      let timed queue =
        let t0 = Clock.now_s () in
        let stats = ref None in
        let r =
          P.Async_engine.push ?trace ~queue ~stats (Rng.of_int 35) g
            ~variant:P.Async_push.Async_push ~source:0 ~max_time:1e6
        in
        (Clock.elapsed_ns ~since_s:t0, r, !stats)
      in
      let heap_ns, heap_r, _ = timed P.Async_engine.Heap in
      let cal_ns, cal_r, cal_stats = timed P.Async_engine.Calendar in
      assert (heap_r = cal_r);
      let rings = float_of_int (max cal_r.P.Async_push.rings 1) in
      Printf.printf
        "async-push er:%d   heap %s (%.1f ns/ring)   calendar %s (%.1f \
         ns/ring)   %d rings, informed %d\n"
        push_scale (human_ns heap_ns) (heap_ns /. rings) (human_ns cal_ns)
        (cal_ns /. rings) cal_r.P.Async_push.rings cal_r.P.Async_push.informed;
      ( [
          entry
            (Printf.sprintf "des/async-push/graph-build/er-%d" push_scale)
            build_ns;
          entry (Printf.sprintf "des/async-push/heap/er-%d" push_scale) heap_ns;
          entry
            (Printf.sprintf "des/async-push/calendar/er-%d" push_scale)
            cal_ns;
          entry
            (Printf.sprintf "des/async-push/calendar/er-%d/ns-per-ring"
               push_scale)
            (cal_ns /. rings);
        ],
        match cal_stats with
        | None -> []
        | Some s ->
            [
              ( Printf.sprintf "des/async-push/er-%d/resizes" push_scale,
                string_of_int s.Calendar_queue.resizes );
              ( Printf.sprintf "des/async-push/er-%d/buckets" push_scale,
                string_of_int s.Calendar_queue.buckets );
              ( Printf.sprintf "des/async-push/er-%d/width" push_scale,
                Printf.sprintf "%.6g" s.Calendar_queue.width );
            ] )
    end
  in
  (List.concat hold_entries @ push_entries, List.concat hold_meta @ push_meta)

(* ------------------------------------------------------------------ *)
(* Part 6: walker representations (dense per-agent vs sparse counts)   *)
(* ------------------------------------------------------------------ *)

(* One timed walker-kernel run -> total and per-agent-step entries.  The
   normalization k * rounds_run makes dense and sparse directly
   comparable even though their broadcast times differ slightly (they
   are distributionally equal, not bit-identical — see A10), so
   `rumor_report compare` ratios on ns-per-agent-step read as the
   representation speedup. *)
let walker_run ?trace ~n ~alpha name (run : unit -> P.Run_result.t) =
  let t0 = Clock.now_s () in
  let (r : P.Run_result.t) =
    Trace.with_span trace (Printf.sprintf "bench.%s.er-%d" name n) run
  in
  let dt_ns = Clock.elapsed_ns ~since_s:t0 in
  let k = int_of_float (Float.round (alpha *. float_of_int n)) in
  let steps = float_of_int (max k 1) *. float_of_int (max r.P.Run_result.rounds_run 1) in
  let ns_per_step = dt_ns /. steps in
  Printf.printf "%-36s %12s  %8.2f ns/agent-step  (%d rounds%s)\n" name
    (human_ns dt_ns) ns_per_step r.P.Run_result.rounds_run
    (match r.P.Run_result.broadcast_time with
    | Some t -> Printf.sprintf ", T = %d" t
    | None -> ", capped");
  ( ns_per_step,
    [
      entry (Printf.sprintf "walkers/%s/er-%d-a%g" name n alpha) dt_ns;
      entry
        (Printf.sprintf "walkers/%s/er-%d-a%g/ns-per-agent-step" name n alpha)
        ns_per_step;
    ] )

let run_walkers_bench ?trace ~scale ~demo_scale ~async_scale () =
  print_endline "=====================================================================";
  print_endline " Part 6: walker representations (dense per-agent vs sparse counts)";
  print_endline "=====================================================================";
  let module Engine = P.Engine in
  let max_rounds = 100_000 in
  let sizes = List.filter (fun n -> n <= scale) [ 100_000; 1_000_000 ] in
  let alphas = [ 0.25; 1.0 ] in
  let sweep =
    List.concat_map
      (fun n ->
        let t0 = Clock.now_s () in
        let g = engine_graph ~seed:3024 n in
        let build_ns = Clock.elapsed_ns ~since_s:t0 in
        Printf.printf "er:%d — %d edges, built in %s\n" n
          (Rumor_graph.Graph.num_edges g)
          (human_ns build_ns);
        entry (Printf.sprintf "walkers/graph-build/er-%d" n) build_ns
        :: List.concat_map
             (fun alpha ->
               let agents = Rumor_agents.Placement.Linear alpha in
               let pair proto seed run_mode =
                 let d_ns, d_entries =
                   walker_run ?trace ~n ~alpha
                     (Printf.sprintf "%s/dense" proto)
                     (fun () -> run_mode P.Sparse_walkers.Dense seed)
                 in
                 let s_ns, s_entries =
                   walker_run ?trace ~n ~alpha
                     (Printf.sprintf "%s/sparse" proto)
                     (fun () -> run_mode P.Sparse_walkers.Sparse seed)
                 in
                 Printf.printf "  %s alpha=%g: sparse/dense agent-step ratio %.2fx\n"
                   proto alpha (d_ns /. s_ns);
                 d_entries @ s_entries
               in
               let ve =
                 pair "visit-exchange" 51 (fun walkers seed ->
                     Engine.visit_exchange ?trace ~walkers (Rng.of_int seed) g
                       ~source:0 ~agents ~max_rounds ())
               in
               let me =
                 pair "meet-exchange" 52 (fun walkers seed ->
                     Engine.meet_exchange ?trace ~walkers (Rng.of_int seed) g
                       ~source:0 ~agents ~max_rounds ())
               in
               ve @ me)
             alphas)
      sizes
  in
  (* the paper-scale demonstration: visit-exchange end to end at n = 10^7,
     only reachable in sparse mode (dense placement alone would allocate
     and step 10^7 individual agents per round) *)
  let demo =
    if demo_scale <= 0 then []
    else begin
      let t0 = Clock.now_s () in
      let g = engine_graph ~seed:5048 demo_scale in
      let build_ns = Clock.elapsed_ns ~since_s:t0 in
      Printf.printf "er:%d — %d edges, built in %s\n" demo_scale
        (Rumor_graph.Graph.num_edges g)
        (human_ns build_ns);
      let _, entries =
        walker_run ?trace ~n:demo_scale ~alpha:1.0 "visit-exchange/sparse"
          (fun () ->
            Engine.visit_exchange ?trace ~walkers:P.Sparse_walkers.Sparse
              (Rng.of_int 53) g ~source:0
              ~agents:(Rumor_agents.Placement.Linear 1.0) ~max_rounds ())
      in
      entry (Printf.sprintf "walkers/graph-build/er-%d" demo_scale) build_ns
      :: entries
    end
  in
  (* async meet-exchange at 10^6: the aggregate rate-k clock + Fenwick ring
     sampler replaces the per-agent event queue entirely *)
  let async =
    if async_scale <= 0 then []
    else begin
      let t0 = Clock.now_s () in
      let g = engine_graph ~seed:6048 async_scale in
      let build_ns = Clock.elapsed_ns ~since_s:t0 in
      Printf.printf "er:%d — %d edges, built in %s\n" async_scale
        (Rumor_graph.Graph.num_edges g)
        (human_ns build_ns);
      let t0 = Clock.now_s () in
      let r =
        P.Async_engine.meet_exchange ?trace ~walkers:P.Sparse_walkers.Sparse
          (Rng.of_int 54) g ~source:0
          ~agents:(Rumor_agents.Placement.Linear 1.0) ~max_time:1e6
      in
      let dt_ns = Clock.elapsed_ns ~since_s:t0 in
      let rings = float_of_int (max r.P.Async_meet_exchange.rings 1) in
      Printf.printf
        "async-meet-exchange/sparse er:%d   %s (%.1f ns/ring)   %d rings, \
         informed %d/%d agents%s\n"
        async_scale (human_ns dt_ns) (dt_ns /. rings)
        r.P.Async_meet_exchange.rings r.P.Async_meet_exchange.informed
        r.P.Async_meet_exchange.agents
        (match r.P.Async_meet_exchange.broadcast_time with
        | Some t -> Printf.sprintf ", T = %.2f" t
        | None -> ", capped");
      [
        entry
          (Printf.sprintf "walkers/async-meet-exchange/graph-build/er-%d"
             async_scale)
          build_ns;
        entry
          (Printf.sprintf "walkers/async-meet-exchange/sparse/er-%d-a1"
             async_scale)
          dt_ns;
        entry
          (Printf.sprintf "walkers/async-meet-exchange/sparse/er-%d-a1/ns-per-ring"
             async_scale)
          (dt_ns /. rings);
      ]
    end
  in
  sweep @ demo @ async

(* ------------------------------------------------------------------ *)

open Cmdliner

let main full tables_only micro_only engine_only des_only walkers_only seed
    metrics bench_json jobs engine_scale engine_push_scale des_scale
    des_push_scale walkers_scale walkers_demo_scale walkers_async_scale shards
    trace_path =
  if jobs < 0 then begin
    Printf.eprintf "bench: bad --jobs %d (want >= 0; 0 = all cores)\n" jobs;
    exit 2
  end;
  if shards < 1 then begin
    Printf.eprintf "bench: bad --shards %d (want >= 1)\n" shards;
    exit 2
  end;
  let profile = if full then Experiments.Full else Experiments.Quick in
  let trace = Option.map (fun _ -> Trace.create ()) trace_path in
  let t0 = Clock.now_s () in
  if (not micro_only) && (not engine_only) && (not des_only) && not walkers_only
  then begin
    match metrics with
    | None -> run_tables ?trace ~jobs profile ~seed
    | Some path ->
        Rumor_obs.Run_record.with_jsonl_file path (fun sink ->
            run_tables ~metrics:sink ?trace ~jobs profile ~seed);
        Printf.printf "wrote per-replicate metrics to %s\n" path
  end;
  if (not tables_only) || engine_only || des_only || walkers_only then begin
    let entries =
      if engine_only || des_only || walkers_only then []
      else run_micro () @ run_macro ?trace ~jobs ()
    in
    let engine_entries =
      if (not des_only) && (not walkers_only) && (engine_only || engine_scale > 0)
      then
        run_engine_bench ?trace
          ~scale:(if engine_scale > 0 then engine_scale else 200_000)
          ~push_scale:engine_push_scale ~shards ()
      else []
    in
    let des_entries, meta =
      if (not walkers_only) && (des_only || des_scale > 0) then
        run_des_bench ?trace
          ~scale:(if des_scale > 0 then des_scale else 1_000_000)
          ~push_scale:des_push_scale ()
      else ([], [])
    in
    let walkers_entries =
      if
        walkers_only || walkers_scale > 0 || walkers_demo_scale > 0
        || walkers_async_scale > 0
      then
        run_walkers_bench ?trace
          ~scale:
            (if walkers_scale > 0 then walkers_scale
             else if walkers_only && walkers_demo_scale = 0 && walkers_async_scale = 0
             then 1_000_000
             else 0)
          ~demo_scale:walkers_demo_scale ~async_scale:walkers_async_scale ()
      else []
    in
    let entries = entries @ engine_entries @ des_entries @ walkers_entries in
    let path =
      Option.value bench_json
        ~default:
          (if engine_only then Printf.sprintf "BENCH_%d_engine.json" seed
           else if des_only then Printf.sprintf "BENCH_%d_des.json" seed
           else if walkers_only then Printf.sprintf "BENCH_%d_walkers.json" seed
           else Printf.sprintf "BENCH_%d.json" seed)
    in
    Rumor_obs.Bench_record.save path
      { Rumor_obs.Bench_record.seed; jobs; meta; entries };
    Printf.printf "\nwrote microbenchmark snapshot to %s\n" path
  end;
  (match (trace, trace_path) with
  | Some tr, Some path ->
      write_trace tr path;
      Printf.printf "wrote trace (%d events) to %s\n" (Trace.events tr) path
  | _ -> ());
  Printf.printf "\ntotal bench time: %.1fs\n" (Clock.elapsed_s ~since:t0)

let full_arg =
  Arg.(value & flag & info [ "full" ] ~doc:"Run the full EXPERIMENTS.md grids (slow).")

let tables_only_arg =
  Arg.(value & flag & info [ "tables-only" ] ~doc:"Skip the microbenchmarks.")

let micro_only_arg =
  Arg.(value & flag & info [ "micro-only" ] ~doc:"Skip the paper tables.")

let engine_only_arg =
  Arg.(
    value & flag
    & info [ "engine-only" ]
        ~doc:
          "Run only the engine hot-path bench (Part 4) and write its \
           engine/* entries to the snapshot (default \
           BENCH_<seed>_engine.json).")

let des_only_arg =
  Arg.(
    value & flag
    & info [ "des-only" ]
        ~doc:
          "Run only the DES scheduler bench (Part 5: hold model heap vs \
           calendar, plus the async-push end-to-end run when \
           --des-push-scale is set) and write its des/* entries to the \
           snapshot (default BENCH_<seed>_des.json).")

let walkers_only_arg =
  Arg.(
    value & flag
    & info [ "walkers-only" ]
        ~doc:
          "Run only the walker-representation bench (Part 6: dense \
           per-agent vs sparse count-compressed visit-/meet-exchange, plus \
           the sparse demo runs when --walkers-demo-scale / \
           --walkers-async-scale are set) and write its walkers/* entries \
           to the snapshot (default BENCH_<seed>_walkers.json).")

let engine_scale_arg =
  Arg.(
    value & opt int 0
    & info [ "engine-scale" ] ~docv:"N"
        ~doc:
          "Vertex count for the engine hot-path bench on G(n, 1.25 ln n / \
           n); 0 (default) skips Part 4 unless --engine-only is given, \
           which then uses 200000.")

let engine_push_scale_arg =
  Arg.(
    value & opt int 0
    & info [ "engine-push-scale" ] ~docv:"N"
        ~doc:
          "Also run a push-only engine demonstration at this vertex count \
           (e.g. 10000000); 0 (default) skips it.")

let des_scale_arg =
  Arg.(
    value & opt int 0
    & info [ "des-scale" ] ~docv:"N"
        ~doc:
          "Largest hold-model prefill for the DES bench (sizes 10^4, 10^5, \
           10^6 up to $(docv)); 0 (default) skips Part 5 unless --des-only \
           is given, which then uses 1000000.")

let des_push_scale_arg =
  Arg.(
    value & opt int 0
    & info [ "des-push-scale" ] ~docv:"N"
        ~doc:
          "Also run the async-push DES engine end to end on G(n, 1.25 ln n \
           / n) at this vertex count, once per queue backend (e.g. \
           1000000); 0 (default) skips it.")

let walkers_scale_arg =
  Arg.(
    value & opt int 0
    & info [ "walkers-scale" ] ~docv:"N"
        ~doc:
          "Largest vertex count for the Part 6 dense-vs-sparse sweep on \
           G(n, 1.25 ln n / n) (sizes 10^5, 10^6 up to $(docv), alpha in \
           {0.25, 1}); 0 (default) skips Part 6 unless --walkers-only is \
           given, which then uses 1000000.")

let walkers_demo_scale_arg =
  Arg.(
    value & opt int 0
    & info [ "walkers-demo-scale" ] ~docv:"N"
        ~doc:
          "Also run sparse visit-exchange end to end at this vertex count \
           with alpha = 1 (e.g. 10000000 — the scale dense walkers cannot \
           reach); 0 (default) skips it.")

let walkers_async_scale_arg =
  Arg.(
    value & opt int 0
    & info [ "walkers-async-scale" ] ~docv:"N"
        ~doc:
          "Also run sparse async-meet-exchange (aggregate rate-k clock + \
           Fenwick ring sampler) end to end at this vertex count with \
           alpha = 1 (e.g. 1000000); 0 (default) skips it.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Engine shard count for Part 4; results depend only on (seed, \
           shards), never on --jobs.")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:"Master seed for the paper tables; also names the BENCH snapshot.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write one JSONL run record per table replicate to $(docv).")

let bench_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench-json" ] ~docv:"FILE"
        ~doc:
          "Where to write the microbenchmark snapshot (default \
           BENCH_<seed>.json).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Replication parallelism for the tables and the macro entries (0 = \
           all cores); recorded in the BENCH snapshot.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record an execution trace of the tables, macro entries and Part 4 \
           engine runs (Bechamel microbenches are not traced) to $(docv): \
           Chrome trace_event JSON, or rumor-trace/1 JSONL if $(docv) ends \
           in .jsonl.")

let cmd =
  let doc = "paper-reproduction tables and engine microbenchmarks" in
  Cmd.v
    (Cmd.info "bench" ~doc)
    Term.(
      const main $ full_arg $ tables_only_arg $ micro_only_arg $ engine_only_arg
      $ des_only_arg $ walkers_only_arg $ seed_arg $ metrics_arg
      $ bench_json_arg $ jobs_arg $ engine_scale_arg $ engine_push_scale_arg
      $ des_scale_arg $ des_push_scale_arg $ walkers_scale_arg
      $ walkers_demo_scale_arg $ walkers_async_scale_arg $ shards_arg
      $ trace_arg)

let () = exit (Cmd.eval cmd)
