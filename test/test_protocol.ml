(* Tests for Rumor_sim.Protocol: uniform dispatch. *)

module Rng = Rumor_prob.Rng
module Gen = Rumor_graph.Gen_basic
module Placement = Rumor_agents.Placement
module Protocol = Rumor_sim.Protocol
module Run_result = Rumor_protocols.Run_result

let test_names () =
  Alcotest.(check string) "push" "push" (Protocol.name Protocol.push);
  Alcotest.(check string) "push-pull" "push-pull" (Protocol.name Protocol.push_pull);
  Alcotest.(check string) "visitx" "visit-exchange"
    (Protocol.name (Protocol.visit_exchange ()));
  Alcotest.(check string) "meetx" "meet-exchange"
    (Protocol.name (Protocol.meet_exchange ()));
  Alcotest.(check string) "combined" "combined" (Protocol.name (Protocol.combined ()));
  Alcotest.(check string) "quasi" "quasi-push" (Protocol.name Protocol.quasi_push);
  Alcotest.(check string) "cobra" "cobra" (Protocol.name (Protocol.cobra ()));
  Alcotest.(check string) "frog" "frog" (Protocol.name (Protocol.frog ()));
  Alcotest.(check string) "flood" "flood" (Protocol.name Protocol.flood);
  Alcotest.(check string) "async-push" "async-push"
    (Protocol.name Protocol.async_push);
  Alcotest.(check string) "async-push-pull" "async-push-pull"
    (Protocol.name Protocol.async_push_pull);
  Alcotest.(check string) "async-meetx" "async-meet-exchange"
    (Protocol.name (Protocol.async_meet_exchange ()))

let test_engine_capable () =
  List.iter
    (fun (spec, expected) ->
      Alcotest.(check bool) (Protocol.name spec) expected
        (Protocol.engine_capable spec))
    [
      (Protocol.push, true);
      (Protocol.push_pull, true);
      (Protocol.visit_exchange (), true);
      (Protocol.meet_exchange (), true);
      (Protocol.async_push, true);
      (Protocol.async_push_pull, true);
      (Protocol.async_meet_exchange (), true);
      (Protocol.combined (), true);
      (Protocol.pull, false);
      (Protocol.flood, false);
    ]

let test_dispatch_matches_direct_push () =
  let g = Gen.torus ~rows:5 ~cols:5 in
  let via_dispatch =
    Protocol.run Protocol.push (Rng.of_int 201) g ~source:0 ~max_rounds:10_000
  in
  let direct =
    Rumor_protocols.Push.run (Rng.of_int 201) g ~source:0 ~max_rounds:10_000 ()
  in
  Alcotest.(check (option int)) "same result" direct.Run_result.broadcast_time
    via_dispatch.Run_result.broadcast_time

let test_all_protocols_complete () =
  let g = Gen.complete 16 in
  List.iter
    (fun spec ->
      let r = Protocol.run spec (Rng.of_int 202) g ~source:0 ~max_rounds:100_000 in
      Alcotest.(check bool) (Protocol.name spec ^ " completes") true
        (Run_result.completed r))
    [
      Protocol.push;
      Protocol.push_pull;
      Protocol.visit_exchange ();
      Protocol.meet_exchange ();
      Protocol.combined ();
      Protocol.quasi_push;
      Protocol.cobra ();
      Protocol.frog ();
      Protocol.flood;
      Protocol.async_push;
      Protocol.async_push_pull;
      Protocol.async_meet_exchange ();
    ]

(* the async specs must agree between run (legacy modules) and run_engine
   (Async_engine DES) on the same seed — the sim-layer face of the
   bit-identity that test_async_engine.ml pins at the protocol layer *)
let test_async_dispatch_matches_engine () =
  let g = Gen.torus ~rows:5 ~cols:5 in
  List.iter
    (fun spec ->
      let a = Protocol.run spec (Rng.of_int 205) g ~source:0 ~max_rounds:10_000 in
      let b =
        Protocol.run_engine spec (Rng.of_int 205) g ~source:0 ~max_rounds:10_000
      in
      let label = Protocol.name spec in
      Alcotest.(check (option int))
        (label ^ ": broadcast_time") a.Run_result.broadcast_time
        b.Run_result.broadcast_time;
      Alcotest.(check (array int))
        (label ^ ": curve") a.Run_result.informed_curve
        b.Run_result.informed_curve;
      Alcotest.(check int) (label ^ ": contacts") a.Run_result.contacts
        b.Run_result.contacts)
    [
      Protocol.async_push;
      Protocol.async_push_pull;
      Protocol.async_meet_exchange ();
    ]

let test_lazy_auto_on_bipartite () =
  (* the star is bipartite: Lazy_auto must pick lazy walks and complete *)
  let g = Gen.star ~leaves:16 in
  let spec =
    Protocol.Meet_exchange { agents = Placement.Linear 1.0; laziness = Protocol.Lazy_auto }
  in
  let r = Protocol.run spec (Rng.of_int 203) g ~source:0 ~max_rounds:100_000 in
  Alcotest.(check bool) "completes via auto laziness" true (Run_result.completed r)

let test_lazy_off_on_bipartite_stalls () =
  let g = Gen.complete 2 in
  let spec =
    Protocol.Meet_exchange { agents = Placement.One_per_vertex; laziness = Protocol.Lazy_off }
  in
  let r = Protocol.run spec (Rng.of_int 204) g ~source:0 ~max_rounds:500 in
  Alcotest.(check (option int)) "stalls without laziness" None
    r.Run_result.broadcast_time

let test_alpha_scales_agent_count () =
  (* visit-exchange with alpha = 4 should be at least as fast on average as
     alpha = 0.25 on a clique; weak but deterministic-in-expectation check *)
  let g = Gen.complete 64 in
  let mean alpha =
    let total = ref 0 in
    for seed = 0 to 9 do
      let r =
        Protocol.run (Protocol.visit_exchange ~alpha ()) (Rng.of_int (2050 + seed)) g
          ~source:0 ~max_rounds:100_000
      in
      total := !total + Run_result.time_exn r
    done;
    float_of_int !total
  in
  Alcotest.(check bool) "denser agents no slower" true (mean 4.0 <= mean 0.25)

let suite =
  [
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "engine capability" `Quick test_engine_capable;
    Alcotest.test_case "dispatch matches direct call" `Quick test_dispatch_matches_direct_push;
    Alcotest.test_case "async dispatch matches engine" `Quick
      test_async_dispatch_matches_engine;
    Alcotest.test_case "all protocols complete" `Quick test_all_protocols_complete;
    Alcotest.test_case "lazy auto on bipartite" `Quick test_lazy_auto_on_bipartite;
    Alcotest.test_case "lazy off stalls on bipartite" `Quick test_lazy_off_on_bipartite_stalls;
    Alcotest.test_case "alpha scales agents" `Quick test_alpha_scales_agent_count;
  ]
