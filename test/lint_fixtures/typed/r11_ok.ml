(* The same captured-ref write as r11_bad.ml, suppressed at the write. *)

let total = ref 0

let sum_unsafe pool (xs : int array) =
  Rumor_par.Pool.init pool (Array.length xs) (fun i ->
      (* lint: allow R11 — single-domain pool in this fixture's contract *)
      total := !total + xs.(i);
      i)
