(* Clean under R9: only effect-free calls. *)

let next x = R9_helper.pure x + 1
