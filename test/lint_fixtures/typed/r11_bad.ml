(* R11 offenders: [sum_unsafe] writes a captured ref from a pool closure
   (a data race across worker domains); [count_unsafe] reaches the same
   kind of write through a helper call. *)

let total = ref 0

let sum_unsafe pool (xs : int array) =
  Rumor_par.Pool.init pool (Array.length xs) (fun i ->
      total := !total + xs.(i);
      i)

let counter = ref 0

let bump () = counter := !counter + 1

let count_unsafe pool n =
  Rumor_par.Pool.init pool n (fun i ->
      bump ();
      i)
