(* R10 offender: a hot-marked loop that boxes a pair every iteration. *)

(* lint: hot *)
let sum_pairs (a : int array) =
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    let pair = (a.(i), i) in
    acc := !acc + fst pair
  done;
  !acc
