(* The same transitive offense as r9_bad.ml, suppressed at the def. *)

(* lint: allow R9 — deterministic seeding is not required in this demo *)
let draw () = R9_helper.entropy ()
