(* The same per-iteration allocation as r10_bad.ml, suppressed inline. *)

(* lint: hot *)
let sum_pairs (a : int array) =
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    (* lint: allow R10 — the boxed pair is this fixture's point *)
    let pair = (a.(i), i) in
    acc := !acc + fst pair
  done;
  !acc
