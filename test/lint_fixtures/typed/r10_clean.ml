(* Hot-marked but allocation-free: nothing to flag. *)

(* lint: hot *)
let sum (a : int array) =
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc + a.(i)
  done;
  !acc
