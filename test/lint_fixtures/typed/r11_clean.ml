(* Clean under R11: every write from the closure is either rooted in a
   closure-local binding or indexed by a value derived from the closure
   parameter. *)

let fill pool (out : int array) =
  Rumor_par.Pool.init pool (Array.length out) (fun i ->
      let scaled = i * 2 in
      out.(i) <- scaled;
      scaled)
