(* A trimmed standalone copy of Engine.push's inner loop shape with one
   seeded offense: the contact pair is boxed per iteration. Used by the
   e2e `--only R10` test. *)

(* lint: hot *)
let push_round ~(frontier : int array) ~nfrontier ~(informed : bool array)
    ~(pick : int -> int) =
  let newly = ref 0 in
  for i = 0 to nfrontier - 1 do
    let u = frontier.(i) in
    let contact = (u, pick u) in
    let v = snd contact in
    if not informed.(v) then begin
      informed.(v) <- true;
      incr newly
    end
  done;
  !newly
