(* Helper module for the R9 interprocedural chain: [entropy] uses the
   global Random state directly (R2's business, not R9's), [pure] is
   effect-free. *)

let entropy () = Random.int 1000

let pure x = x + 1
