(* R9 offender: [draw] never names Random, but reaches it through
   R9_helper.entropy -- invisible to the per-file parsetree rules. *)

let draw () = R9_helper.entropy ()
