(* Same offense as r5_bad.ml, silenced by a trailing comment. *)
let to_float (x : int) : float = Obj.magic x (* lint: allow R5 — fixture *)
