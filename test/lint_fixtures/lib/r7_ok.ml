(* Same offense as r7_bad.ml, silenced on the line above. *)
(* lint: allow R7 — fixture: exercising comment-above suppression *)
let counter () = Atomic.make 0
