val hello : unit -> unit
