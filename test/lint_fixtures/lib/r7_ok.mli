val counter : unit -> int Atomic.t
