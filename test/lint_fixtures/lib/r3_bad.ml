(* R3 offender: stdout output from lib scope. *)
let hello () = print_string "hello\n"
