val to_float : int -> float
