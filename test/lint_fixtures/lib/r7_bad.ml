(* R7 offender: a multicore primitive outside lib/par. *)
let counter () = Atomic.make 0
