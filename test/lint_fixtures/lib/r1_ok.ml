(* Same offense as r1_bad.ml, silenced by a suppression comment. *)
let sort_copy (xs : float array) =
  let s = Array.copy xs in
  (* lint: allow R1 — fixture: exercising the suppression syntax *)
  Array.sort compare s;
  s
