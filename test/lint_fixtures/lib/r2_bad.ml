(* R2 offender: global Random in lib scope. *)
let roll () = Random.int 6
