(* Same offense as r3_bad.ml, silenced by a trailing comment. *)
let hello () = print_string "hello\n" (* lint: allow R3 — fixture *)
