(* R6 offender: catch-all handler that swallows the exception. *)
let safe_div a b = try a / b with _ -> 0
