val roll : unit -> int
