(* R5 offender: Obj.magic. *)
let to_float (x : int) : float = Obj.magic x
