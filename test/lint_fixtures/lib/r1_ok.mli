val sort_copy : float array -> float array
