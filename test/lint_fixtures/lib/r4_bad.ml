(* R4 offender: a lib module with no matching .mli. *)
let answer = 42
