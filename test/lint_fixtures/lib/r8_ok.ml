(* Same offense as r8_bad.ml, silenced on the line above. *)
(* lint: allow R8 — fixture: exercising comment-above suppression *)
let now () = Unix.gettimeofday ()
