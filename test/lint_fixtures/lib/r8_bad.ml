(* R8 offender: a wall-clock read outside lib/obs. *)
let now () = Unix.gettimeofday ()
