val roll : unit -> int
