val now : unit -> float
