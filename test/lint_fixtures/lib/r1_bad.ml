(* R1 offender: polymorphic compare on a float array. *)
let sort_copy (xs : float array) =
  let s = Array.copy xs in
  Array.sort compare s;
  s
