val hello : unit -> unit
