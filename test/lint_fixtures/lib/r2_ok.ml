(* Same offense as r2_bad.ml, silenced on the line above. *)
(* lint: allow R2 — fixture: exercising comment-above suppression *)
let roll () = Random.int 6
