(* Same offense as r6_bad.ml, silenced by a trailing comment. *)
let safe_div a b = try a / b with _ -> 0 (* lint: allow R6 — fixture *)
