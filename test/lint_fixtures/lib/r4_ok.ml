(* lint: allow R4 — fixture: deliberately interface-free module *)
let answer = 42
