val now : unit -> float
