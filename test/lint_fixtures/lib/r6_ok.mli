val safe_div : int -> int -> int
