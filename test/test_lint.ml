(* End-to-end tests for tools/lint/rumor_lint.exe: every rule's offender and
   suppressed fixture, the finding format, the 0/1/2 exit-code contract, and
   a seeded offense in a scratch copy of lib/prob/stats.ml.

   The corpus layout is documented in lint_fixtures/README.md. All runs
   shell out to the real executable, mirroring test_report.ml's CLI gate. *)

let lint_exe =
  Filename.concat
    (Filename.concat (Filename.concat ".." "tools") "lint")
    "rumor_lint.exe"

let fixture_root = "lint_fixtures"
let fixture name = Filename.concat (Filename.concat fixture_root "lib") name
let rule_ids = [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8" ]

let has_sub sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.equal (String.sub s i m) sub || at (i + 1)) in
  m = 0 || at 0

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Run the linter; return its exit code and stdout lines. *)
let run_lint args =
  let out = Filename.temp_file "rumor_lint_out" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let code =
        Sys.command
          (Filename.quote_command lint_exe args ~stdout:out ~stderr:"/dev/null")
      in
      (code, read_lines out))

let with_temp_ml content f =
  let path = Filename.temp_file "rumor_lint_case" ".ml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc content);
      f path)

let guard_exe f = if Sys.file_exists lint_exe then f () else Alcotest.skip ()

(* --- the corpus, end to end ------------------------------------------- *)

let test_corpus_one_finding_per_rule () =
  guard_exe @@ fun () ->
  let code, lines = run_lint [ "--root"; fixture_root; fixture_root ] in
  Alcotest.(check int) "corpus exits 1" 1 code;
  Alcotest.(check int) "exactly one finding per rule" (List.length rule_ids)
    (List.length lines);
  List.iter
    (fun id ->
      let tag = Printf.sprintf "[%s " id in
      let hits =
        List.filter
          (fun line ->
            let bad = fixture (String.lowercase_ascii id ^ "_bad.ml") in
            has_sub tag line && has_sub bad line)
          lines
      in
      Alcotest.(check int)
        (Printf.sprintf "%s finding points at its offender" id)
        1 (List.length hits))
    rule_ids

let test_offenders_exit_1 () =
  guard_exe @@ fun () ->
  List.iter
    (fun id ->
      let bad = fixture (String.lowercase_ascii id ^ "_bad.ml") in
      let code, lines = run_lint [ "--root"; fixture_root; bad ] in
      Alcotest.(check int) (bad ^ " exits 1") 1 code;
      Alcotest.(check int) (bad ^ " has exactly one finding") 1
        (List.length lines);
      Alcotest.(check bool)
        (bad ^ " finding is for exactly its rule")
        true
        (has_sub (Printf.sprintf "[%s " id) (List.hd lines)))
    rule_ids

let test_suppressed_exit_0 () =
  guard_exe @@ fun () ->
  List.iter
    (fun id ->
      let ok = fixture (String.lowercase_ascii id ^ "_ok.ml") in
      let code, lines = run_lint [ "--root"; fixture_root; ok ] in
      Alcotest.(check int) (ok ^ " exits 0") 0 code;
      Alcotest.(check int) (ok ^ " has no findings") 0 (List.length lines))
    rule_ids

let test_finding_format () =
  guard_exe @@ fun () ->
  let code, lines =
    run_lint [ "--root"; fixture_root; fixture "r1_bad.ml" ]
  in
  Alcotest.(check int) "exits 1" 1 code;
  match lines with
  | [ line ] -> (
      (* file:line:col: [R1 poly-compare] message *)
      match String.split_on_char ':' line with
      | file :: ln :: col :: _rest ->
          Alcotest.(check string) "file" (fixture "r1_bad.ml") file;
          Alcotest.(check int) "line" 4 (int_of_string ln);
          Alcotest.(check int) "col" 13 (int_of_string col)
      | _ -> Alcotest.fail ("unparseable finding: " ^ line))
  | _ -> Alcotest.fail "expected exactly one finding"

(* --- exit codes ------------------------------------------------------- *)

let test_clean_file_exits_0 () =
  guard_exe @@ fun () ->
  with_temp_ml "let double x = 2 * x\n" @@ fun path ->
  let code, lines = run_lint [ path ] in
  Alcotest.(check int) "exits 0" 0 code;
  Alcotest.(check int) "no findings" 0 (List.length lines)

let test_syntax_error_exits_2 () =
  guard_exe @@ fun () ->
  with_temp_ml "let = ( in\n" @@ fun path ->
  let code, _ = run_lint [ path ] in
  Alcotest.(check int) "exits 2" 2 code

let test_missing_input_exits_2 () =
  guard_exe @@ fun () ->
  let code, _ = run_lint [ "no_such_dir_anywhere" ] in
  Alcotest.(check int) "exits 2" 2 code

let test_only_restricts_registry () =
  guard_exe @@ fun () ->
  let bad = fixture "r1_bad.ml" in
  let code_other, lines_other =
    run_lint [ "--root"; fixture_root; "--only"; "R2"; bad ]
  in
  Alcotest.(check int) "R1 offense invisible to --only R2" 0 code_other;
  Alcotest.(check int) "no findings" 0 (List.length lines_other);
  let code_same, _ =
    run_lint [ "--root"; fixture_root; "--only"; "poly-compare"; bad ]
  in
  Alcotest.(check int) "rule names work in --only" 1 code_same

let test_except_drops_rules () =
  guard_exe @@ fun () ->
  let bad = fixture "r7_bad.ml" in
  let code_dropped, lines_dropped =
    run_lint [ "--root"; fixture_root; "--except"; "R7"; bad ]
  in
  Alcotest.(check int) "R7 offense invisible to --except R7" 0 code_dropped;
  Alcotest.(check int) "no findings" 0 (List.length lines_dropped);
  let code_kept, _ =
    run_lint [ "--root"; fixture_root; "--except"; "R1"; bad ]
  in
  Alcotest.(check int) "--except of another rule keeps R7" 1 code_kept;
  let code_name, _ =
    run_lint
      [ "--root"; fixture_root; "--except"; "concurrency-confinement"; bad ]
  in
  Alcotest.(check int) "rule names work in --except" 0 code_name

(* --- the acceptance scenario: a seeded offense in stats.ml ------------ *)

let stats_ml = Filename.concat (Filename.concat ".." "lib") "prob/stats.ml"

let test_scratch_stats_copy_flagged () =
  guard_exe @@ fun () ->
  if not (Sys.file_exists stats_ml) then Alcotest.skip ()
  else begin
    let ic = open_in_bin stats_ml in
    let orig =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let orig_lines = List.length (String.split_on_char '\n' orig) - 1 in
    let seeded =
      orig ^ "\nlet scratch_sort (xs : float array) = Array.sort compare xs\n"
    in
    with_temp_ml seeded @@ fun path ->
    (* full registry at lib scope: R4 also fires (no .mli next to the temp
       copy), so assert on the R1 finding specifically *)
    let code, lines = run_lint [ "--scope"; "lib"; path ] in
    Alcotest.(check int) "seeded copy exits 1" 1 code;
    match List.filter (has_sub "[R1 poly-compare]") lines with
    | [ line ] ->
        let expected = Printf.sprintf ":%d:" (orig_lines + 2) in
        Alcotest.(check bool)
          (Printf.sprintf "points at the seeded line (%d)" (orig_lines + 2))
          true
          (has_sub expected line)
    | _ -> Alcotest.fail "expected exactly one R1 finding in the seeded copy"
  end

(* --- suppression edge cases ------------------------------------------- *)

(* Offender one-liner shared by the suppression edge-case tests: R1
   (polymorphic sort on floats) and R2 (global Random) on the same line,
   so one suppression line can cover both. *)
let both_offenses = "let f (xs : float array) = Array.sort compare xs; Random.int 6"

let test_suppress_last_line_no_newline () =
  guard_exe @@ fun () ->
  (* no trailing newline: the marker sits on the file's final, unterminated
     line and must still be scanned *)
  let body = "let f (xs : float array) =\n  Array.sort compare xs" in
  (with_temp_ml body @@ fun path ->
   let code, lines = run_lint [ "--only"; "R1"; path ] in
   Alcotest.(check int) "unsuppressed last line exits 1" 1 code;
   Alcotest.(check int) "one R1 finding" 1 (List.length lines));
  with_temp_ml (body ^ " (* lint: allow R1 — last line, no newline *)")
  @@ fun path ->
  let code, lines = run_lint [ "--only"; "R1"; path ] in
  Alcotest.(check int) "suppressed last line exits 0" 0 code;
  Alcotest.(check int) "no findings" 0 (List.length lines)

let test_suppress_multi_ids_one_comment () =
  guard_exe @@ fun () ->
  (with_temp_ml (both_offenses ^ "\n") @@ fun path ->
   let code, lines = run_lint [ "--scope"; "lib"; "--only"; "R1,R2"; path ] in
   Alcotest.(check int) "both rules fire unsuppressed" 1 code;
   Alcotest.(check int) "two findings" 2 (List.length lines));
  with_temp_ml ("(* lint: allow R1 R2 — one comment, two ids *)\n" ^ both_offenses ^ "\n")
  @@ fun path ->
  let code, lines = run_lint [ "--scope"; "lib"; "--only"; "R1,R2"; path ] in
  Alcotest.(check int) "one comment silences both ids" 0 code;
  Alcotest.(check int) "no findings" 0 (List.length lines)

let test_suppress_two_markers_same_line () =
  guard_exe @@ fun () ->
  (* every marker on the line counts, not just the first *)
  with_temp_ml
    ("(* lint: allow R1 — first *) (* lint: allow R2 — second *)\n"
   ^ both_offenses ^ "\n")
  @@ fun path ->
  let code, lines = run_lint [ "--scope"; "lib"; "--only"; "R1,R2"; path ] in
  Alcotest.(check int) "second marker on the line is honored" 0 code;
  Alcotest.(check int) "no findings" 0 (List.length lines)

let test_suppress_crlf () =
  guard_exe @@ fun () ->
  let crlf lines = String.concat "\r\n" lines ^ "\r\n" in
  (with_temp_ml (crlf [ "let f (xs : float array) ="; "  Array.sort compare xs" ])
   @@ fun path ->
   let code, _ = run_lint [ "--only"; "R1"; path ] in
   Alcotest.(check int) "CRLF offender still detected" 1 code);
  with_temp_ml
    (crlf
       [
         "let f (xs : float array) =";
         "  (* lint: allow R1 — CRLF endings *)";
         "  Array.sort compare xs";
       ])
  @@ fun path ->
  let code, lines = run_lint [ "--only"; "R1"; path ] in
  Alcotest.(check int) "CRLF suppression honored" 0 code;
  Alcotest.(check int) "no findings" 0 (List.length lines)

(* --- --format json ----------------------------------------------------- *)

module Json = Rumor_obs.Json

let json_member name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.fail ("JSON document lacks field " ^ name)

let test_json_format_round_trip () =
  guard_exe @@ fun () ->
  let code, lines =
    run_lint [ "--format"; "json"; "--root"; fixture_root; fixture "r1_bad.ml" ]
  in
  Alcotest.(check int) "exits 1" 1 code;
  let doc = Json.parse (String.concat "\n" lines) in
  Alcotest.(check (option string))
    "schema" (Some "rumor-lint/1")
    (Json.to_string (json_member "schema" doc));
  (match Json.to_list (json_member "errors" doc) with
  | Some [] -> ()
  | _ -> Alcotest.fail "expected an empty errors array");
  match Json.to_list (json_member "findings" doc) with
  | Some [ f ] ->
      (* same file/line/col the text format prints (test_finding_format) *)
      Alcotest.(check (option string))
        "file" (Some (fixture "r1_bad.ml"))
        (Json.to_string (json_member "file" f));
      Alcotest.(check (option int)) "line" (Some 4)
        (Json.to_int (json_member "line" f));
      Alcotest.(check (option int)) "col" (Some 13)
        (Json.to_int (json_member "col" f));
      Alcotest.(check (option string))
        "rule" (Some "R1")
        (Json.to_string (json_member "rule" f))
  | _ -> Alcotest.fail "expected exactly one finding in the JSON document"

(* --- the typed rules (R9-R11) over the compiled fixture library -------- *)

let typed_root = Filename.concat fixture_root "typed"
let tfixture name = Filename.concat typed_root name

let typed_args rest =
  [ "--typed"; "--cmt-root"; typed_root; "--scope"; "lib" ] @ rest

let guard_typed f =
  guard_exe @@ fun () ->
  if Sys.file_exists typed_root then f () else Alcotest.skip ()

let check_typed_quiet ~only name =
  let code, lines = run_lint (typed_args [ "--only"; only; tfixture name ]) in
  Alcotest.(check int) (name ^ " exits 0") 0 code;
  Alcotest.(check int) (name ^ " has no findings") 0 (List.length lines)

let test_r9_interprocedural_chain () =
  guard_typed @@ fun () ->
  let code, lines =
    run_lint (typed_args [ "--only"; "R9"; tfixture "r9_bad.ml" ])
  in
  Alcotest.(check int) "r9_bad exits 1" 1 code;
  match lines with
  | [ line ] ->
      Alcotest.(check bool) "rule tag" true
        (has_sub "[R9 effect-confinement]" line);
      Alcotest.(check bool) "points at the caller's definition" true
        (has_sub (tfixture "r9_bad.ml" ^ ":4:") line);
      (* the cross-module chain is printed end to end *)
      Alcotest.(check bool) "chain crosses into the helper module" true
        (has_sub "R9_helper" line);
      Alcotest.(check bool) "chain ends at the primitive" true
        (has_sub "Random.int" line);
      Alcotest.(check bool) "chain arrows present" true (has_sub " -> " line)
  | _ -> Alcotest.fail "expected exactly one R9 finding"

let test_r9_suppressed_and_clean () =
  guard_typed @@ fun () ->
  check_typed_quiet ~only:"R9" "r9_ok.ml";
  check_typed_quiet ~only:"R9" "r9_clean.ml"

let test_r10_hot_alloc () =
  guard_typed @@ fun () ->
  let code, lines =
    run_lint (typed_args [ "--only"; "R10"; tfixture "r10_bad.ml" ])
  in
  Alcotest.(check int) "r10_bad exits 1" 1 code;
  (match lines with
  | [ line ] ->
      Alcotest.(check bool) "rule tag" true (has_sub "[R10 hot-path-alloc]" line);
      Alcotest.(check bool) "points at the allocation site" true
        (has_sub (tfixture "r10_bad.ml" ^ ":7:15:") line);
      Alcotest.(check bool) "names the allocation kind" true
        (has_sub "tuple" line)
  | _ -> Alcotest.fail "expected exactly one R10 finding");
  check_typed_quiet ~only:"R10" "r10_ok.ml";
  check_typed_quiet ~only:"R10" "r10_clean.ml"

(* the acceptance scenario: --only R10 against a seeded allocating copy of
   an engine round kernel *)
let test_r10_seeded_kernel () =
  guard_typed @@ fun () ->
  let code, lines =
    run_lint
      [ "--typed"; "--cmt-root"; typed_root; "--only"; "R10";
        tfixture "r10_kernel.ml" ]
  in
  Alcotest.(check int) "seeded kernel exits 1" 1 code;
  match lines with
  | [ line ] ->
      Alcotest.(check bool) "R10 fires" true (has_sub "[R10" line);
      Alcotest.(check bool) "at the seeded contact tuple" true
        (has_sub (tfixture "r10_kernel.ml" ^ ":11:18:") line);
      Alcotest.(check bool) "names the tuple" true (has_sub "tuple" line)
  | _ -> Alcotest.fail "expected exactly one finding in the seeded kernel"

let test_r11_domain_race () =
  guard_typed @@ fun () ->
  let code, lines =
    run_lint (typed_args [ "--only"; "R11"; tfixture "r11_bad.ml" ])
  in
  Alcotest.(check int) "r11_bad exits 1" 1 code;
  Alcotest.(check int) "direct write + transitive call = two findings" 2
    (List.length lines);
  let direct = List.filter (has_sub ":9:6:") lines in
  Alcotest.(check int) "the captured-ref write is flagged at its site" 1
    (List.length direct);
  Alcotest.(check bool) "write finding says what it writes" true
    (has_sub "writes" (List.hd direct));
  let chained = List.filter (has_sub ":17:2:") lines in
  Alcotest.(check int) "the closure->helper mutation is flagged at the call" 1
    (List.length chained);
  Alcotest.(check bool) "chained finding names the helper" true
    (has_sub "bump" (List.hd chained));
  Alcotest.(check bool) "chained finding prints the chain" true
    (has_sub " -> " (List.hd chained));
  check_typed_quiet ~only:"R11" "r11_ok.ml";
  check_typed_quiet ~only:"R11" "r11_clean.ml"

let test_json_chain_field () =
  guard_typed @@ fun () ->
  let code, lines =
    run_lint
      (typed_args [ "--only"; "R9"; "--format"; "json"; tfixture "r9_bad.ml" ])
  in
  Alcotest.(check int) "exits 1" 1 code;
  let doc = Json.parse (String.concat "\n" lines) in
  match Json.to_list (json_member "findings" doc) with
  | Some [ f ] -> (
      Alcotest.(check (option string))
        "rule" (Some "R9")
        (Json.to_string (json_member "rule" f));
      match Json.to_list (json_member "chain" f) with
      | Some steps ->
          Alcotest.(check bool) "chain has at least caller and callee" true
            (List.length steps >= 2)
      | None -> Alcotest.fail "R9 JSON finding lacks a chain array")
  | _ -> Alcotest.fail "expected exactly one R9 finding in the JSON document"

let suite =
  [
    Alcotest.test_case "corpus: one finding per rule" `Quick
      test_corpus_one_finding_per_rule;
    Alcotest.test_case "offenders exit 1 with exactly their rule" `Quick
      test_offenders_exit_1;
    Alcotest.test_case "suppressed fixtures exit 0" `Quick
      test_suppressed_exit_0;
    Alcotest.test_case "finding format file:line:col" `Quick
      test_finding_format;
    Alcotest.test_case "clean file exits 0" `Quick test_clean_file_exits_0;
    Alcotest.test_case "syntax error exits 2" `Quick test_syntax_error_exits_2;
    Alcotest.test_case "missing input exits 2" `Quick
      test_missing_input_exits_2;
    Alcotest.test_case "--only restricts the registry" `Quick
      test_only_restricts_registry;
    Alcotest.test_case "--except drops rules" `Quick test_except_drops_rules;
    Alcotest.test_case "seeded Array.sort compare in stats.ml copy" `Quick
      test_scratch_stats_copy_flagged;
    Alcotest.test_case "suppression on an unterminated last line" `Quick
      test_suppress_last_line_no_newline;
    Alcotest.test_case "several rule ids in one suppression comment" `Quick
      test_suppress_multi_ids_one_comment;
    Alcotest.test_case "two suppression markers on one line" `Quick
      test_suppress_two_markers_same_line;
    Alcotest.test_case "suppression under CRLF line endings" `Quick
      test_suppress_crlf;
    Alcotest.test_case "--format json round-trips file/line/rule" `Quick
      test_json_format_round_trip;
    Alcotest.test_case "R9 flags a cross-module chain to Random" `Quick
      test_r9_interprocedural_chain;
    Alcotest.test_case "R9 suppressed and clean fixtures are quiet" `Quick
      test_r9_suppressed_and_clean;
    Alcotest.test_case "R10 flags a tuple in a hot loop" `Quick
      test_r10_hot_alloc;
    Alcotest.test_case "R10 --only run on a seeded engine kernel" `Quick
      test_r10_seeded_kernel;
    Alcotest.test_case "R11 flags unsafe writes under Pool closures" `Quick
      test_r11_domain_race;
    Alcotest.test_case "R9 JSON finding carries its chain" `Quick
      test_json_chain_field;
  ]
