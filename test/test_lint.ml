(* End-to-end tests for tools/lint/rumor_lint.exe: every rule's offender and
   suppressed fixture, the finding format, the 0/1/2 exit-code contract, and
   a seeded offense in a scratch copy of lib/prob/stats.ml.

   The corpus layout is documented in lint_fixtures/README.md. All runs
   shell out to the real executable, mirroring test_report.ml's CLI gate. *)

let lint_exe =
  Filename.concat
    (Filename.concat (Filename.concat ".." "tools") "lint")
    "rumor_lint.exe"

let fixture_root = "lint_fixtures"
let fixture name = Filename.concat (Filename.concat fixture_root "lib") name
let rule_ids = [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8" ]

let has_sub sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.equal (String.sub s i m) sub || at (i + 1)) in
  m = 0 || at 0

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Run the linter; return its exit code and stdout lines. *)
let run_lint args =
  let out = Filename.temp_file "rumor_lint_out" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let code =
        Sys.command
          (Filename.quote_command lint_exe args ~stdout:out ~stderr:"/dev/null")
      in
      (code, read_lines out))

let with_temp_ml content f =
  let path = Filename.temp_file "rumor_lint_case" ".ml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc content);
      f path)

let guard_exe f = if Sys.file_exists lint_exe then f () else Alcotest.skip ()

(* --- the corpus, end to end ------------------------------------------- *)

let test_corpus_one_finding_per_rule () =
  guard_exe @@ fun () ->
  let code, lines = run_lint [ "--root"; fixture_root; fixture_root ] in
  Alcotest.(check int) "corpus exits 1" 1 code;
  Alcotest.(check int) "exactly one finding per rule" (List.length rule_ids)
    (List.length lines);
  List.iter
    (fun id ->
      let tag = Printf.sprintf "[%s " id in
      let hits =
        List.filter
          (fun line ->
            let bad = fixture (String.lowercase_ascii id ^ "_bad.ml") in
            has_sub tag line && has_sub bad line)
          lines
      in
      Alcotest.(check int)
        (Printf.sprintf "%s finding points at its offender" id)
        1 (List.length hits))
    rule_ids

let test_offenders_exit_1 () =
  guard_exe @@ fun () ->
  List.iter
    (fun id ->
      let bad = fixture (String.lowercase_ascii id ^ "_bad.ml") in
      let code, lines = run_lint [ "--root"; fixture_root; bad ] in
      Alcotest.(check int) (bad ^ " exits 1") 1 code;
      Alcotest.(check int) (bad ^ " has exactly one finding") 1
        (List.length lines);
      Alcotest.(check bool)
        (bad ^ " finding is for exactly its rule")
        true
        (has_sub (Printf.sprintf "[%s " id) (List.hd lines)))
    rule_ids

let test_suppressed_exit_0 () =
  guard_exe @@ fun () ->
  List.iter
    (fun id ->
      let ok = fixture (String.lowercase_ascii id ^ "_ok.ml") in
      let code, lines = run_lint [ "--root"; fixture_root; ok ] in
      Alcotest.(check int) (ok ^ " exits 0") 0 code;
      Alcotest.(check int) (ok ^ " has no findings") 0 (List.length lines))
    rule_ids

let test_finding_format () =
  guard_exe @@ fun () ->
  let code, lines =
    run_lint [ "--root"; fixture_root; fixture "r1_bad.ml" ]
  in
  Alcotest.(check int) "exits 1" 1 code;
  match lines with
  | [ line ] -> (
      (* file:line:col: [R1 poly-compare] message *)
      match String.split_on_char ':' line with
      | file :: ln :: col :: _rest ->
          Alcotest.(check string) "file" (fixture "r1_bad.ml") file;
          Alcotest.(check int) "line" 4 (int_of_string ln);
          Alcotest.(check int) "col" 13 (int_of_string col)
      | _ -> Alcotest.fail ("unparseable finding: " ^ line))
  | _ -> Alcotest.fail "expected exactly one finding"

(* --- exit codes ------------------------------------------------------- *)

let test_clean_file_exits_0 () =
  guard_exe @@ fun () ->
  with_temp_ml "let double x = 2 * x\n" @@ fun path ->
  let code, lines = run_lint [ path ] in
  Alcotest.(check int) "exits 0" 0 code;
  Alcotest.(check int) "no findings" 0 (List.length lines)

let test_syntax_error_exits_2 () =
  guard_exe @@ fun () ->
  with_temp_ml "let = ( in\n" @@ fun path ->
  let code, _ = run_lint [ path ] in
  Alcotest.(check int) "exits 2" 2 code

let test_missing_input_exits_2 () =
  guard_exe @@ fun () ->
  let code, _ = run_lint [ "no_such_dir_anywhere" ] in
  Alcotest.(check int) "exits 2" 2 code

let test_only_restricts_registry () =
  guard_exe @@ fun () ->
  let bad = fixture "r1_bad.ml" in
  let code_other, lines_other =
    run_lint [ "--root"; fixture_root; "--only"; "R2"; bad ]
  in
  Alcotest.(check int) "R1 offense invisible to --only R2" 0 code_other;
  Alcotest.(check int) "no findings" 0 (List.length lines_other);
  let code_same, _ =
    run_lint [ "--root"; fixture_root; "--only"; "poly-compare"; bad ]
  in
  Alcotest.(check int) "rule names work in --only" 1 code_same

let test_except_drops_rules () =
  guard_exe @@ fun () ->
  let bad = fixture "r7_bad.ml" in
  let code_dropped, lines_dropped =
    run_lint [ "--root"; fixture_root; "--except"; "R7"; bad ]
  in
  Alcotest.(check int) "R7 offense invisible to --except R7" 0 code_dropped;
  Alcotest.(check int) "no findings" 0 (List.length lines_dropped);
  let code_kept, _ =
    run_lint [ "--root"; fixture_root; "--except"; "R1"; bad ]
  in
  Alcotest.(check int) "--except of another rule keeps R7" 1 code_kept;
  let code_name, _ =
    run_lint
      [ "--root"; fixture_root; "--except"; "concurrency-confinement"; bad ]
  in
  Alcotest.(check int) "rule names work in --except" 0 code_name

(* --- the acceptance scenario: a seeded offense in stats.ml ------------ *)

let stats_ml = Filename.concat (Filename.concat ".." "lib") "prob/stats.ml"

let test_scratch_stats_copy_flagged () =
  guard_exe @@ fun () ->
  if not (Sys.file_exists stats_ml) then Alcotest.skip ()
  else begin
    let ic = open_in_bin stats_ml in
    let orig =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let orig_lines = List.length (String.split_on_char '\n' orig) - 1 in
    let seeded =
      orig ^ "\nlet scratch_sort (xs : float array) = Array.sort compare xs\n"
    in
    with_temp_ml seeded @@ fun path ->
    (* full registry at lib scope: R4 also fires (no .mli next to the temp
       copy), so assert on the R1 finding specifically *)
    let code, lines = run_lint [ "--scope"; "lib"; path ] in
    Alcotest.(check int) "seeded copy exits 1" 1 code;
    match List.filter (has_sub "[R1 poly-compare]") lines with
    | [ line ] ->
        let expected = Printf.sprintf ":%d:" (orig_lines + 2) in
        Alcotest.(check bool)
          (Printf.sprintf "points at the seeded line (%d)" (orig_lines + 2))
          true
          (has_sub expected line)
    | _ -> Alcotest.fail "expected exactly one R1 finding in the seeded copy"
  end

let suite =
  [
    Alcotest.test_case "corpus: one finding per rule" `Quick
      test_corpus_one_finding_per_rule;
    Alcotest.test_case "offenders exit 1 with exactly their rule" `Quick
      test_offenders_exit_1;
    Alcotest.test_case "suppressed fixtures exit 0" `Quick
      test_suppressed_exit_0;
    Alcotest.test_case "finding format file:line:col" `Quick
      test_finding_format;
    Alcotest.test_case "clean file exits 0" `Quick test_clean_file_exits_0;
    Alcotest.test_case "syntax error exits 2" `Quick test_syntax_error_exits_2;
    Alcotest.test_case "missing input exits 2" `Quick
      test_missing_input_exits_2;
    Alcotest.test_case "--only restricts the registry" `Quick
      test_only_restricts_registry;
    Alcotest.test_case "--except drops rules" `Quick test_except_drops_rules;
    Alcotest.test_case "seeded Array.sort compare in stats.ml copy" `Quick
      test_scratch_stats_copy_flagged;
  ]
