(* Tests for Rumor_par.Pool and the determinism contract of parallel
   replication: any --jobs value must produce bit-identical measurements
   and sink streams (up to the per-rep timing fields). *)

module Pool = Rumor_par.Pool
module Rng = Rumor_prob.Rng
module Gen = Rumor_graph.Gen_basic
module Replicate = Rumor_sim.Replicate
module Protocol = Rumor_sim.Protocol
module Run_record = Rumor_obs.Run_record
module Stats = Rumor_prob.Stats

(* --- the pool itself -------------------------------------------------- *)

let test_init_matches_sequential () =
  let f i = (i * 37) mod 101 in
  let pool = Pool.create ~jobs:4 in
  Alcotest.(check (array int)) "init = Array.init" (Array.init 100 f)
    (Pool.init pool 100 f)

let test_map_matches_sequential () =
  let a = Array.init 64 (fun i -> i - 17) in
  let f x = (x * x) + 3 in
  let pool = Pool.create ~jobs:3 in
  Alcotest.(check (array int)) "map = Array.map" (Array.map f a)
    (Pool.map pool f a)

let test_more_jobs_than_items () =
  let pool = Pool.create ~jobs:8 in
  Alcotest.(check (array int)) "8 jobs, 3 items" [| 0; 2; 4 |]
    (Pool.init pool 3 (fun i -> 2 * i))

let test_empty_and_singleton () =
  let pool = Pool.create ~jobs:4 in
  Alcotest.(check (array int)) "empty" [||] (Pool.init pool 0 (fun i -> i));
  Alcotest.(check (array int)) "singleton" [| 7 |] (Pool.init pool 1 (fun _ -> 7))

let test_jobs_zero_resolves () =
  Alcotest.(check bool) "0 = all cores, at least one" true
    (Pool.jobs (Pool.create ~jobs:0) >= 1)

let test_negative_jobs_rejected () =
  try
    ignore (Pool.create ~jobs:(-2));
    Alcotest.fail "negative jobs accepted"
  with Invalid_argument _ -> ()

exception Boom of int

let test_exception_propagates () =
  let pool = Pool.create ~jobs:4 in
  match Pool.init pool 50 (fun i -> if i = 23 then raise (Boom i) else i) with
  | (_ : int array) -> Alcotest.fail "worker failure swallowed"
  | exception Boom 23 -> ()
  | exception Boom i -> Alcotest.fail (Printf.sprintf "wrong payload %d" i)

(* --- parallel_for shard geometry -------------------------------------- *)

module Parallel_for = Rumor_par.Parallel_for

let test_shard_bounds_cover () =
  List.iter
    (fun (n, shards) ->
      let bounds = Parallel_for.shard_bounds ~n ~shards in
      Alcotest.(check int) "one range per shard" shards (Array.length bounds);
      let covered = ref 0 in
      Array.iteri
        (fun i (lo, hi) ->
          Alcotest.(check bool) "range well-formed" true (0 <= lo && lo <= hi && hi <= n);
          if i > 0 then begin
            let _, prev_hi = bounds.(i - 1) in
            Alcotest.(check int) "contiguous" prev_hi lo
          end;
          covered := !covered + (hi - lo))
        bounds;
      Alcotest.(check int) "covers [0, n)" n !covered;
      let sizes = Array.map (fun (lo, hi) -> hi - lo) bounds in
      let mn = Array.fold_left min max_int sizes
      and mx = Array.fold_left max 0 sizes in
      Alcotest.(check bool) "balanced within 1" true (mx - mn <= 1))
    [ (0, 1); (0, 5); (1, 4); (7, 3); (10, 10); (13, 4); (100, 7) ]

let test_shard_bounds_rejects () =
  List.iter
    (fun (n, shards) ->
      try
        ignore (Parallel_for.shard_bounds ~n ~shards);
        Alcotest.fail "bad geometry accepted"
      with Invalid_argument _ -> ())
    [ (-1, 2); (5, 0); (5, -1) ]

let test_parallel_for_shard_order () =
  let pool = Pool.create ~jobs:4 in
  let out =
    Parallel_for.parallel_for pool ~n:23 ~shards:5 (fun ~shard ~lo ~hi ->
        (shard, lo, hi))
  in
  Alcotest.(check int) "one result per shard" 5 (Array.length out);
  Array.iteri
    (fun i (shard, lo, hi) ->
      Alcotest.(check int) "result order = shard order" i shard;
      let want_lo, want_hi = (Parallel_for.shard_bounds ~n:23 ~shards:5).(i) in
      Alcotest.(check (pair int int)) "geometry matches" (want_lo, want_hi)
        (lo, hi))
    out

let test_parallel_for_jobs_invariant () =
  let sum_range ~shard:_ ~lo ~hi =
    let s = ref 0 in
    for i = lo to hi - 1 do
      s := !s + (i * i)
    done;
    !s
  in
  let run jobs =
    Parallel_for.parallel_for (Pool.create ~jobs) ~n:1000 ~shards:7 sum_range
  in
  Alcotest.(check (array int)) "jobs 1 = jobs 4" (run 1) (run 4)

let test_parallel_for_exception () =
  let pool = Pool.create ~jobs:3 in
  match
    Parallel_for.parallel_for pool ~n:30 ~shards:6 (fun ~shard ~lo:_ ~hi:_ ->
        if shard = 4 then raise (Boom shard) else shard)
  with
  | (_ : int array) -> Alcotest.fail "shard failure swallowed"
  | exception Boom 4 -> ()
  | exception Boom i -> Alcotest.fail (Printf.sprintf "wrong payload %d" i)

(* --- jobs-invariance of Replicate ------------------------------------- *)

(* Serialize a record with its (inherently run-dependent) timing fields
   zeroed: everything else must be byte-identical across jobs settings. *)
let detimed_json (r : Run_record.t) =
  Run_record.to_json
    {
      r with
      Run_record.wall_seconds = 0.0;
      gc = { minor_words = 0.0; major_words = 0.0; promoted_words = 0.0 };
    }

let run_with ~jobs ~seed spec =
  let records = ref [] in
  let m =
    Replicate.broadcast_times
      ~sink:(fun r -> records := r :: !records)
      ~graph_name:"complete:24" ~jobs ~seed ~reps:6
      ~graph:(fun _rng -> (Gen.complete 24, 0))
      ~spec ~max_rounds:10_000 ()
  in
  (m, List.rev !records)

let check_jobs_invariant spec ~seed =
  let seq, seq_records = run_with ~jobs:1 ~seed spec in
  let par, par_records = run_with ~jobs:4 ~seed spec in
  Alcotest.(check (array (float 0.0))) "times identical" seq.Replicate.times
    par.Replicate.times;
  Alcotest.(check int) "capped identical" seq.Replicate.capped
    par.Replicate.capped;
  Alcotest.(check (float 0.0)) "mean identical"
    seq.Replicate.summary.Stats.mean par.Replicate.summary.Stats.mean;
  Alcotest.(check (list string)) "sink stream identical (sans timing)"
    (List.map detimed_json seq_records)
    (List.map detimed_json par_records)

let test_push_jobs_invariant () =
  check_jobs_invariant Protocol.push ~seed:401;
  check_jobs_invariant Protocol.push ~seed:402

let test_meet_exchange_jobs_invariant () =
  check_jobs_invariant (Protocol.meet_exchange ()) ~seed:403;
  check_jobs_invariant (Protocol.meet_exchange ()) ~seed:404

let test_sink_order_ascending_under_jobs () =
  let _, records = run_with ~jobs:4 ~seed:405 Protocol.push in
  Alcotest.(check (list int)) "reps arrive 0..5" [ 0; 1; 2; 3; 4; 5 ]
    (List.map (fun (r : Run_record.t) -> r.Run_record.rep) records)

let test_capped_fail_deterministic_under_jobs () =
  let capped ~trace:_ ~rep:_ rng =
    Rumor_protocols.Push.run rng (Gen.path 50) ~source:0 ~max_rounds:2 ()
  in
  match Replicate.measure ~on_capped:`Fail ~jobs:4 ~seed:406 ~reps:5 capped with
  | (_ : Replicate.measurement) -> Alcotest.fail "expected Replicate.Capped"
  | exception Replicate.Capped { rep; rounds_run } ->
      Alcotest.(check int) "lowest capped rep raises" 0 rep;
      Alcotest.(check int) "cap recorded" 2 rounds_run

let suite =
  [
    Alcotest.test_case "init matches sequential" `Quick
      test_init_matches_sequential;
    Alcotest.test_case "map matches sequential" `Quick
      test_map_matches_sequential;
    Alcotest.test_case "more jobs than items" `Quick test_more_jobs_than_items;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "jobs 0 resolves to >= 1" `Quick test_jobs_zero_resolves;
    Alcotest.test_case "negative jobs rejected" `Quick
      test_negative_jobs_rejected;
    Alcotest.test_case "worker exception propagates" `Quick
      test_exception_propagates;
    Alcotest.test_case "shard_bounds covers and balances" `Quick
      test_shard_bounds_cover;
    Alcotest.test_case "shard_bounds rejects bad geometry" `Quick
      test_shard_bounds_rejects;
    Alcotest.test_case "parallel_for returns in shard order" `Quick
      test_parallel_for_shard_order;
    Alcotest.test_case "parallel_for jobs-invariant" `Quick
      test_parallel_for_jobs_invariant;
    Alcotest.test_case "parallel_for shard exception propagates" `Quick
      test_parallel_for_exception;
    Alcotest.test_case "push: jobs 4 = jobs 1" `Quick test_push_jobs_invariant;
    Alcotest.test_case "meet-exchange: jobs 4 = jobs 1" `Quick
      test_meet_exchange_jobs_invariant;
    Alcotest.test_case "sink order ascending under jobs" `Quick
      test_sink_order_ascending_under_jobs;
    Alcotest.test_case "on_capped:`Fail deterministic under jobs" `Quick
      test_capped_fail_deterministic_under_jobs;
  ]
