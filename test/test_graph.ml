(* Tests for Rumor_graph.Graph: CSR construction and accessors. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph

let triangle () = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ]

let test_counts () =
  let g = triangle () in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.num_edges g);
  Alcotest.(check int) "total degree" 6 (Graph.total_degree g);
  Alcotest.(check int) "arc count" 6 (Graph.arc_count g)

let test_degrees_and_neighbors () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  Alcotest.(check int) "hub degree" 3 (Graph.degree g 0);
  Alcotest.(check int) "leaf degree" 1 (Graph.degree g 2);
  Alcotest.(check (list int)) "sorted neighbors" [ 1; 2; 3 ]
    (List.init (Graph.degree g 0) (Graph.neighbor g 0));
  Alcotest.(check int) "leaf neighbor" 0 (Graph.neighbor g 3 0)

let test_mem_edge () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check bool) "present" true (Graph.mem_edge g 1 2);
  Alcotest.(check bool) "symmetric" true (Graph.mem_edge g 2 1);
  Alcotest.(check bool) "absent" false (Graph.mem_edge g 0 4);
  Alcotest.(check bool) "no self" false (Graph.mem_edge g 3 3)

let test_iter_edges_each_once () =
  let g = triangle () in
  let seen = ref [] in
  Graph.iter_edges g (fun u v ->
      Alcotest.(check bool) "u < v" true (u < v);
      seen := (u, v) :: !seen);
  Alcotest.(check int) "edge count" 3 (List.length !seen);
  Alcotest.(check bool) "all distinct" true
    (List.length
       (List.sort_uniq
          (fun (u1, v1) (u2, v2) ->
            match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c)
          !seen)
    = 3)

let test_fold_and_iter_neighbors () =
  let g = Graph.of_edges ~n:4 [ (1, 0); (1, 2); (1, 3) ] in
  let sum = Graph.fold_neighbors g 1 ( + ) 0 in
  Alcotest.(check int) "fold sum" 5 sum;
  let collected = ref [] in
  Graph.iter_neighbors g 1 (fun v -> collected := v :: !collected);
  Alcotest.(check (list int)) "iter order is sorted" [ 0; 2; 3 ] (List.rev !collected)

let test_edge_index_distinct () =
  let g = triangle () in
  let indices = ref [] in
  for u = 0 to 2 do
    Graph.iter_neighbors g u (fun v -> indices := Graph.edge_index g u v :: !indices)
  done;
  let distinct = List.sort_uniq Int.compare !indices in
  Alcotest.(check int) "one index per directed arc" 6 (List.length distinct);
  List.iter
    (fun i ->
      if i < 0 || i >= Graph.arc_count g then Alcotest.failf "index %d out of range" i)
    distinct

let test_edge_index_not_found () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  Alcotest.check_raises "missing edge" Not_found (fun () ->
      ignore (Graph.edge_index g 0 2))

let test_random_neighbor_uniform () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  let rng = Rng.of_int 51 in
  let counts = Array.make 4 0 in
  let samples = 30_000 in
  for _ = 1 to samples do
    let v = Graph.random_neighbor g rng 0 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check int) "never itself" 0 counts.(0);
  for v = 1 to 3 do
    let p = float_of_int counts.(v) /. float_of_int samples in
    if Float.abs (p -. (1.0 /. 3.0)) > 0.02 then
      Alcotest.failf "neighbor %d frequency %.3f" v p
  done

let test_random_neighbor_isolated () =
  let g = Graph.of_edges ~n:2 [] in
  let rng = Rng.of_int 52 in
  try
    ignore (Graph.random_neighbor g rng 0);
    Alcotest.fail "isolated vertex accepted"
  with Invalid_argument _ -> ()

let test_rejects_self_loop () =
  try
    ignore (Graph.of_edges ~n:2 [ (1, 1) ]);
    Alcotest.fail "self-loop accepted"
  with Invalid_argument _ -> ()

let test_rejects_duplicate () =
  (try
     ignore (Graph.of_edges ~n:3 [ (0, 1); (0, 1) ]);
     Alcotest.fail "duplicate accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Graph.of_edges ~n:3 [ (0, 1); (1, 0) ]);
    Alcotest.fail "reversed duplicate accepted"
  with Invalid_argument _ -> ()

let test_rejects_out_of_range () =
  try
    ignore (Graph.of_edges ~n:3 [ (0, 3) ]);
    Alcotest.fail "out-of-range endpoint accepted"
  with Invalid_argument _ -> ()

let test_regularity () =
  let g = triangle () in
  Alcotest.(check bool) "triangle regular" true (Graph.is_regular g);
  Alcotest.(check (option int)) "degree 2" (Some 2) (Graph.regular_degree g);
  let star = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  Alcotest.(check bool) "star not regular" false (Graph.is_regular star);
  Alcotest.(check (option int)) "no regular degree" None (Graph.regular_degree star);
  Alcotest.(check int) "min degree" 1 (Graph.min_degree star);
  Alcotest.(check int) "max degree" 3 (Graph.max_degree star)

let test_degrees_array () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  Alcotest.(check (array int)) "degrees" [| 3; 1; 1; 1 |] (Graph.degrees g)

let test_validate_accepts_generators () =
  Graph.validate (triangle ());
  Graph.validate (Rumor_graph.Gen_basic.complete 8);
  Graph.validate (Rumor_graph.Gen_basic.hypercube ~dim:5);
  Graph.validate (Rumor_graph.Gen_basic.torus ~rows:4 ~cols:5)

let test_empty_graph () =
  let g = Graph.of_edges ~n:1 [] in
  Alcotest.(check int) "n" 1 (Graph.n g);
  Alcotest.(check int) "m" 0 (Graph.num_edges g);
  Graph.validate g

let prop_random_graph_validates =
  QCheck.Test.make ~count:50 ~name:"random gnm graphs validate"
    QCheck.(pair (int_range 2 40) small_nat)
    (fun (n, seed) ->
      let rng = Rng.of_int seed in
      let max_m = n * (n - 1) / 2 in
      let m = Rng.int rng (max_m + 1) in
      let g = Rumor_graph.Gen_random.gnm rng ~n ~m in
      Graph.validate g;
      Graph.num_edges g = m
      && Graph.total_degree g = 2 * m)

(* --- streaming Builder ------------------------------------------------ *)

let graph_equal g1 g2 =
  Graph.n g1 = Graph.n g2
  && Graph.num_edges g1 = Graph.num_edges g2
  &&
  let same = ref true in
  for u = 0 to Graph.n g1 - 1 do
    if Graph.degree g1 u <> Graph.degree g2 u then same := false
    else
      for i = 0 to Graph.degree g1 u - 1 do
        if Graph.neighbor g1 u i <> Graph.neighbor g2 u i then same := false
      done
  done;
  !same

let test_builder_matches_of_edges () =
  let edges = [ (3, 1); (0, 4); (1, 0); (2, 4); (0, 2) ] in
  let b = Graph.Builder.create ~n:5 () in
  List.iter (fun (u, v) -> Graph.Builder.add_edge b u v) edges;
  Alcotest.(check int) "edge_count" 5 (Graph.Builder.edge_count b);
  Alcotest.(check int) "vertex_count" 5 (Graph.Builder.vertex_count b);
  Alcotest.(check bool) "builder = of_edges" true
    (graph_equal (Graph.Builder.finish b) (Graph.of_edges ~n:5 edges))

let test_builder_grows_past_capacity () =
  (* capacity is only a hint: push far more edges than the initial buffers *)
  let n = 40 in
  let b = Graph.Builder.create ~capacity:2 ~n () in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Graph.Builder.add_edge b u v;
      edges := (u, v) :: !edges
    done
  done;
  Alcotest.(check bool) "grown builder = of_edges" true
    (graph_equal (Graph.Builder.finish b) (Graph.of_edges ~n !edges))

let test_builder_rejects_bad_edges () =
  let b = Graph.Builder.create ~n:4 () in
  let rejects u v =
    try
      Graph.Builder.add_edge b u v;
      Alcotest.fail (Printf.sprintf "accepted edge (%d, %d)" u v)
    with Invalid_argument _ -> ()
  in
  rejects 1 1;
  rejects (-1) 2;
  rejects 0 4

let test_builder_rejects_duplicate_at_finish () =
  let b = Graph.Builder.create ~n:3 () in
  Graph.Builder.add_edge b 0 1;
  Graph.Builder.add_edge b 1 0;
  try
    ignore (Graph.Builder.finish b);
    Alcotest.fail "duplicate edge accepted"
  with Invalid_argument _ -> ()

let test_builder_single_use () =
  let b = Graph.Builder.create ~n:2 () in
  Graph.Builder.add_edge b 0 1;
  ignore (Graph.Builder.finish b);
  (try
     Graph.Builder.add_edge b 0 1;
     Alcotest.fail "add_edge after finish accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Graph.Builder.finish b);
    Alcotest.fail "second finish accepted"
  with Invalid_argument _ -> ()

let test_builder_edgeless () =
  let g = Graph.Builder.finish (Graph.Builder.create ~n:6 ()) in
  Alcotest.(check int) "n" 6 (Graph.n g);
  Alcotest.(check int) "m" 0 (Graph.num_edges g)

let suite =
  [
    Alcotest.test_case "vertex/edge counts" `Quick test_counts;
    Alcotest.test_case "degrees and neighbors" `Quick test_degrees_and_neighbors;
    Alcotest.test_case "mem_edge" `Quick test_mem_edge;
    Alcotest.test_case "iter_edges visits each edge once" `Quick test_iter_edges_each_once;
    Alcotest.test_case "fold/iter neighbors" `Quick test_fold_and_iter_neighbors;
    Alcotest.test_case "edge_index distinct per arc" `Quick test_edge_index_distinct;
    Alcotest.test_case "edge_index not found" `Quick test_edge_index_not_found;
    Alcotest.test_case "random_neighbor uniform" `Quick test_random_neighbor_uniform;
    Alcotest.test_case "random_neighbor isolated" `Quick test_random_neighbor_isolated;
    Alcotest.test_case "rejects self-loops" `Quick test_rejects_self_loop;
    Alcotest.test_case "rejects duplicates" `Quick test_rejects_duplicate;
    Alcotest.test_case "rejects out-of-range" `Quick test_rejects_out_of_range;
    Alcotest.test_case "regularity queries" `Quick test_regularity;
    Alcotest.test_case "degrees array" `Quick test_degrees_array;
    Alcotest.test_case "validate accepts generators" `Quick test_validate_accepts_generators;
    Alcotest.test_case "edgeless graph" `Quick test_empty_graph;
    Alcotest.test_case "builder matches of_edges" `Quick
      test_builder_matches_of_edges;
    Alcotest.test_case "builder grows past capacity" `Quick
      test_builder_grows_past_capacity;
    Alcotest.test_case "builder rejects bad edges" `Quick
      test_builder_rejects_bad_edges;
    Alcotest.test_case "builder rejects duplicate at finish" `Quick
      test_builder_rejects_duplicate_at_finish;
    Alcotest.test_case "builder is single-use" `Quick test_builder_single_use;
    Alcotest.test_case "builder edgeless graph" `Quick test_builder_edgeless;
    QCheck_alcotest.to_alcotest prop_random_graph_validates;
  ]
