(* The tracing subsystem end to end: span nesting discipline, export
   refusal on unbalanced tracers, stable per-worker track ids through the
   pool, the Chrome document parsing with the in-repo JSON reader, the
   reader round-trip over both on-disk formats, and the [rumor_report
   trace] exit-code contract. *)

module Trace = Rumor_obs.Trace
module Counters = Rumor_obs.Counters
module Json = Rumor_obs.Json
module Pool = Rumor_par.Pool

let with_temp_file ext f =
  let path = Filename.temp_file "rumor_trace_test" ext in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_file path = In_channel.with_open_text path In_channel.input_all

(* --- nesting discipline ------------------------------------------------ *)

let test_nesting_balance () =
  let t = Trace.create () in
  Alcotest.(check int) "fresh tracer balanced" 0 (Trace.open_spans t);
  Trace.begin_span t "outer";
  Trace.begin_span t ~arg:3 "inner";
  Alcotest.(check int) "two open" 2 (Trace.open_spans t);
  Trace.end_span t;
  Trace.end_span t;
  Alcotest.(check int) "balanced again" 0 (Trace.open_spans t);
  Alcotest.(check int) "both spans recorded" 2 (Trace.events t);
  Alcotest.check_raises "end_span with nothing open"
    (Invalid_argument "Trace.end_span: no open span") (fun () ->
      Trace.end_span t)

let test_export_refuses_open_spans () =
  let t = Trace.create () in
  Trace.begin_span t "left-open";
  let expect_refusal name f =
    match f () with
    | _ -> Alcotest.failf "%s accepted a tracer with an open span" name
    | exception Invalid_argument _ -> ()
  in
  expect_refusal "to_chrome_json" (fun () -> Trace.to_chrome_json t);
  with_temp_file ".json" (fun path ->
      expect_refusal "write_chrome" (fun () -> Trace.write_chrome t path));
  with_temp_file ".jsonl" (fun path ->
      expect_refusal "write_jsonl" (fun () -> Trace.write_jsonl t path));
  Trace.end_span t;
  (* once balanced, both exports go through *)
  with_temp_file ".json" (fun path ->
      Trace.write_chrome t path;
      Alcotest.(check bool) "chrome written" true (Sys.file_exists path));
  with_temp_file ".jsonl" (fun path ->
      Trace.write_jsonl t path;
      Alcotest.(check bool) "jsonl written" true (Sys.file_exists path))

(* --- Chrome document shape --------------------------------------------- *)

let sample_tracer () =
  let t = Trace.create () in
  Trace.begin_span t "phase";
  Trace.begin_span t ~arg:7 "step";
  Trace.end_span t;
  Trace.end_span t;
  Trace.instant t ~arg:2 "mark";
  Trace.counter t "frontier" 42;
  Counters.incr (Counters.counter (Trace.counters t) "contacts");
  t

let test_chrome_json_parses () =
  let t = sample_tracer () in
  with_temp_file ".json" (fun path ->
      Trace.write_chrome t path;
      let doc = Json.parse (read_file path) in
      let events =
        match Option.bind (Json.member "traceEvents" doc) Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "no traceEvents array"
      in
      let has field v e =
        match Option.bind (Json.member field e) Json.to_string with
        | Some s -> String.equal s v
        | None -> false
      in
      let name = has "name" in
      let with_ph p = List.filter (has "ph" p) events in
      Alcotest.(check bool)
        "has process/thread metadata records" true
        (List.exists (name "process_name") (with_ph "M"));
      Alcotest.(check int) "two complete spans" 2 (List.length (with_ph "X"));
      Alcotest.(check int) "one instant" 1 (List.length (with_ph "i"));
      Alcotest.(check int) "one counter sample" 1 (List.length (with_ph "C"));
      let step =
        match List.find_opt (name "step") events with
        | Some e -> e
        | None -> Alcotest.fail "span \"step\" missing"
      in
      Alcotest.(check (option int))
        "span arg exported under args.arg" (Some 7)
        (Option.bind
           (Option.bind (Json.member "args" step) (Json.member "arg"))
           Json.to_int);
      Alcotest.(check bool)
        "span carries a dur field" true
        (Option.is_some (Json.member "dur" step));
      Alcotest.(check (option string))
        "display unit" (Some "ms")
        (Option.bind (Json.member "displayTimeUnit" doc) Json.to_string);
      Alcotest.(check (option int))
        "counter registry serialized" (Some 1)
        (Option.bind
           (Option.bind
              (Option.bind (Json.member "counters" doc)
                 (Json.member "counters"))
              (Json.member "contacts"))
           Json.to_int))

(* --- reader round-trip over both formats -------------------------------- *)

let skeleton file =
  List.map
    (fun (e : Trace.event) -> (e.ph, e.name, e.tid, e.arg, e.value))
    file.Trace.file_events

let test_read_file_roundtrip () =
  let t = sample_tracer () in
  let load path =
    match Trace.read_file path with
    | Ok f -> f
    | Error msg -> Alcotest.failf "read_file %s: %s" path msg
  in
  let chrome =
    with_temp_file ".json" (fun path ->
        Trace.write_chrome t path;
        load path)
  in
  let jsonl =
    with_temp_file ".jsonl" (fun path ->
        Trace.write_jsonl t path;
        load path)
  in
  let expected =
    [
      (`Span, "phase", 0, None, 0);
      (`Span, "step", 0, Some 7, 0);
      (`Instant, "mark", 0, Some 2, 0);
      (`Counter, "frontier", 0, None, 42);
    ]
  in
  let sort l =
    List.sort (fun (_, a, _, _, _) (_, b, _, _, _) -> String.compare a b) l
  in
  let pp fmt (_, name, tid, arg, value) =
    Format.fprintf fmt "%s tid=%d arg=%s value=%d" name tid
      (match arg with None -> "-" | Some a -> string_of_int a)
      value
  in
  let ph_eq a b =
    match (a, b) with
    | `Span, `Span | `Instant, `Instant | `Counter, `Counter -> true
    | _ -> false
  in
  let eq (p1, n1, t1, a1, v1) (p2, n2, t2, a2, v2) =
    ph_eq p1 p2 && String.equal n1 n2 && t1 = t2
    && Option.equal Int.equal a1 a2
    && v1 = v2
  in
  let ev = Alcotest.testable pp eq in
  Alcotest.(check (list ev))
    "chrome reader recovers the events" (sort expected) (sort (skeleton chrome));
  Alcotest.(check (list ev))
    "jsonl reader recovers the events" (sort expected) (sort (skeleton jsonl));
  let span_of file =
    List.find (fun (e : Trace.event) -> String.equal e.name "step")
      file.Trace.file_events
  in
  Alcotest.(check bool)
    "span durations are non-negative" true
    ((span_of chrome).dur_us >= 0.0 && (span_of jsonl).dur_us >= 0.0);
  let counter_value file =
    Option.bind
      (Option.bind
         (Json.member "counters" (Counters.to_json file.Trace.file_counters))
         (Json.member "contacts"))
      Json.to_int
  in
  Alcotest.(check (option int))
    "chrome counters round-trip" (Some 1) (counter_value chrome);
  Alcotest.(check (option int))
    "jsonl counters round-trip" (Some 1) (counter_value jsonl)

(* --- worker track ids through the pool ---------------------------------- *)

let pool_trace ~jobs =
  let pool = Pool.create ~jobs in
  let trace = Trace.create () in
  let out =
    Pool.init_traced ~trace ~label:"work" pool 64 (fun ~trace:_ i -> i * i)
  in
  Alcotest.(check int) "results intact" (63 * 63) out.(63);
  Alcotest.(check int) "tracer balanced after run" 0 (Trace.open_spans trace);
  with_temp_file ".jsonl" (fun path ->
      Trace.write_jsonl trace path;
      match Trace.read_file path with
      | Ok f -> f.Trace.file_events
      | Error msg -> Alcotest.failf "read_file: %s" msg)

let tids events =
  List.sort_uniq Int.compare
    (List.map (fun (e : Trace.event) -> e.Trace.tid) events)

let test_worker_tids_stable () =
  let events = pool_trace ~jobs:3 in
  Alcotest.(check (list int))
    "three tracks: main + one per spawned worker" [ 0; 1; 2 ] (tids events);
  let worker_spans =
    List.filter
      (fun (e : Trace.event) -> String.equal e.name "pool.worker")
      events
  in
  Alcotest.(check (list int))
    "every track records a pool.worker span" [ 0; 1; 2 ]
    (tids worker_spans);
  (* the same pool shape always yields the same track ids *)
  Alcotest.(check (list int))
    "tids stable across runs" [ 0; 1; 2 ]
    (tids (pool_trace ~jobs:3))

let test_sequential_shard_spans () =
  (* jobs = 1 must still emit one span per item so sharded engine traces
     show per-shard spans at any --jobs setting *)
  let events = pool_trace ~jobs:1 in
  let chunks =
    List.filter (fun (e : Trace.event) -> String.equal e.name "work") events
  in
  Alcotest.(check int) "one span per item" 64 (List.length chunks);
  Alcotest.(check (list int)) "all on the main track" [ 0 ] (tids chunks);
  Alcotest.(check bool)
    "spans carry the item index" true
    (List.exists
       (fun (e : Trace.event) -> match e.arg with Some 63 -> true | _ -> false)
       chunks)

(* --- rumor_report trace exit codes -------------------------------------- *)

let report_exe = Filename.concat (Filename.concat ".." "bin") "rumor_report.exe"

let test_report_trace_exit_codes () =
  if not (Sys.file_exists report_exe) then Alcotest.skip ()
  else
    let run args =
      Sys.command
        (Filename.quote_command report_exe args ~stdout:"/dev/null"
           ~stderr:"/dev/null")
    in
    with_temp_file ".jsonl" (fun sharded ->
        let t = Trace.create () in
        for shard = 0 to 1 do
          Trace.begin_span t ~arg:shard "shard";
          ignore (Sys.opaque_identity (Array.make (1 + (shard * 4096)) 0.0));
          Trace.end_span t
        done;
        Trace.write_jsonl t sharded;
        Alcotest.(check int) "well-formed trace exits 0" 0
          (run [ "trace"; sharded ]);
        Alcotest.(check int)
          "imbalance gate passes with a generous bound" 0
          (run [ "trace"; sharded; "--max-imbalance"; "1000" ]));
    with_temp_file ".jsonl" (fun unsharded ->
        let t = Trace.create () in
        Trace.begin_span t "only.span";
        Trace.end_span t;
        Trace.write_jsonl t unsharded;
        Alcotest.(check int)
          "imbalance gate without shard spans exits 1" 1
          (run [ "trace"; unsharded; "--max-imbalance"; "1.5" ]));
    with_temp_file ".jsonl" (fun garbage ->
        Out_channel.with_open_text garbage (fun oc ->
            output_string oc "this is not a trace\n");
        Alcotest.(check int) "malformed input exits 2" 2
          (run [ "trace"; garbage ]))

let suite =
  [
    Alcotest.test_case "nesting balance" `Quick test_nesting_balance;
    Alcotest.test_case "export refuses open spans" `Quick
      test_export_refuses_open_spans;
    Alcotest.test_case "chrome document parses" `Quick test_chrome_json_parses;
    Alcotest.test_case "read_file round-trips both formats" `Quick
      test_read_file_roundtrip;
    Alcotest.test_case "worker tids stable" `Quick test_worker_tids_stable;
    Alcotest.test_case "sequential per-item spans" `Quick
      test_sequential_shard_spans;
    Alcotest.test_case "rumor_report trace exit codes" `Quick
      test_report_trace_exit_codes;
  ]
