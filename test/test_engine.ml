(* Tests for Rumor_protocols.Engine: the flat-frontier/bitset kernels must
   be bit-identical to the legacy kernels at shards = 1, and a pure function
   of (seed, shards) — never of the pool's jobs — at shards > 1. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Gen = Rumor_graph.Gen_basic
module Gen_random = Rumor_graph.Gen_random
module Placement = Rumor_agents.Placement
module P = Rumor_protocols
module Engine = Rumor_protocols.Engine
module Run_result = Rumor_protocols.Run_result
module Traffic = Rumor_protocols.Traffic
module Instrument = Rumor_obs.Instrument
module Pool = Rumor_par.Pool

let check_same_result label (a : Run_result.t) (b : Run_result.t) =
  Alcotest.(check (option int))
    (label ^ ": broadcast_time") a.Run_result.broadcast_time b.Run_result.broadcast_time;
  Alcotest.(check int) (label ^ ": rounds_run") a.Run_result.rounds_run
    b.Run_result.rounds_run;
  Alcotest.(check int) (label ^ ": contacts") a.Run_result.contacts b.Run_result.contacts;
  Alcotest.(check (array int))
    (label ^ ": informed_curve") a.Run_result.informed_curve b.Run_result.informed_curve;
  Alcotest.(check (option int))
    (label ^ ": all_agents_informed") a.Run_result.all_agents_informed
    b.Run_result.all_agents_informed

(* the graph families the equivalence sweep runs over: regular and not,
   bipartite and not, dense and sparse *)
let families () =
  [
    ("complete16", Gen.complete 16);
    ("torus6x6", Gen.torus ~rows:6 ~cols:6);
    ("path12", Gen.path 12);
    ("star9", Gen.star ~leaves:9);
    ("er40", Gen_random.erdos_renyi (Rng.of_int 4242) ~n:40 ~p:0.15);
    ("reg3x20", Gen_random.random_regular_connected (Rng.of_int 777) ~n:20 ~d:3);
  ]

let seeds = [ 1; 42; 9001 ]

(* --------------------------- shards = 1 bit-identity with legacy kernels *)

let test_push_matches_legacy () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let legacy =
            P.Push.run (Rng.of_int seed) g ~source:0 ~max_rounds:100_000 ()
          in
          let engine =
            Engine.push (Rng.of_int seed) g ~source:0 ~max_rounds:100_000 ()
          in
          check_same_result (Printf.sprintf "push %s seed=%d" name seed) legacy engine)
        seeds)
    (families ())

let test_push_failure_prob_matches_legacy () =
  let g = Gen.complete 24 in
  List.iter
    (fun seed ->
      let legacy =
        P.Push.run ~failure_prob:0.3 (Rng.of_int seed) g ~source:3
          ~max_rounds:100_000 ()
      in
      let engine =
        Engine.push ~failure_prob:0.3 (Rng.of_int seed) g ~source:3
          ~max_rounds:100_000 ()
      in
      check_same_result (Printf.sprintf "push fp seed=%d" seed) legacy engine)
    seeds

let test_push_tau_matches_informed_times () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let tau_legacy =
        P.Push.informed_times (Rng.of_int 55) g ~source:0 ~max_rounds:100_000
      in
      let tau = Array.make n 0 in
      let (_ : Run_result.t) =
        Engine.push ~tau (Rng.of_int 55) g ~source:0 ~max_rounds:100_000 ()
      in
      Alcotest.(check (array int)) (name ^ ": tau") tau_legacy tau)
    (families ())

let test_push_pull_matches_legacy () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let legacy =
            P.Push_pull.run (Rng.of_int seed) g ~source:1 ~max_rounds:100_000 ()
          in
          let engine =
            Engine.push_pull (Rng.of_int seed) g ~source:1 ~max_rounds:100_000 ()
          in
          check_same_result
            (Printf.sprintf "push_pull %s seed=%d" name seed)
            legacy engine)
        seeds)
    (families ())

let agent_specs = [ Placement.Stationary 12; Placement.One_per_vertex ]

let test_visit_exchange_matches_legacy () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          List.iter
            (fun agents ->
              List.iter
                (fun lazy_walk ->
                  let legacy =
                    P.Visit_exchange.run ~lazy_walk (Rng.of_int seed) g ~source:0
                      ~agents ~max_rounds:100_000 ()
                  in
                  let engine =
                    Engine.visit_exchange ~lazy_walk (Rng.of_int seed) g ~source:0
                      ~agents ~max_rounds:100_000 ()
                  in
                  check_same_result
                    (Printf.sprintf "ve %s seed=%d lazy=%b" name seed lazy_walk)
                    legacy engine)
                [ false; true ])
            agent_specs)
        seeds)
    (families ())

let test_meet_exchange_matches_legacy () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          (* omitted lazy_walk exercises the bipartiteness auto-default in
             both implementations *)
          let legacy =
            P.Meet_exchange.run (Rng.of_int seed) g ~source:0
              ~agents:(Placement.Stationary 14) ~max_rounds:20_000 ()
          in
          let engine =
            Engine.meet_exchange (Rng.of_int seed) g ~source:0
              ~agents:(Placement.Stationary 14) ~max_rounds:20_000 ()
          in
          check_same_result (Printf.sprintf "me %s seed=%d" name seed) legacy engine)
        seeds)
    (families ())

let test_combined_matches_legacy () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          List.iter
            (fun lazy_walk ->
              let legacy =
                P.Combined.run ~lazy_walk (Rng.of_int seed) g ~source:0
                  ~agents:(Placement.Stationary 12) ~max_rounds:100_000 ()
              in
              let engine =
                Engine.combined ~lazy_walk (Rng.of_int seed) g ~source:0
                  ~agents:(Placement.Stationary 12) ~max_rounds:100_000 ()
              in
              check_same_result
                (Printf.sprintf "combined %s seed=%d lazy=%b" name seed lazy_walk)
                legacy engine)
            [ false; true ])
        seeds)
    (families ())

(* ----------------------------------------------- sparse walker kernels *)

(* Sparse runs are not bit-identical to dense (A10 gates the distribution);
   here we check the exact invariants: completion, seed determinism, the
   occupancy hook, and the dense-only restrictions. *)

let sparse = Engine.visit_exchange ~walkers:P.Sparse_walkers.Sparse

let test_sparse_visit_exchange_completes () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let r =
            sparse (Rng.of_int seed) g ~source:0
              ~agents:(Placement.Stationary 12) ~max_rounds:100_000 ()
          in
          Alcotest.(check bool) (name ^ ": completed") true (Run_result.completed r);
          Alcotest.(check bool)
            (name ^ ": all agents informed")
            true
            (r.Run_result.all_agents_informed <> None);
          let curve = r.Run_result.informed_curve in
          Alcotest.(check int)
            (name ^ ": curve ends at n")
            (Graph.n g)
            curve.(Array.length curve - 1);
          (* seed-deterministic: the same run twice is identical *)
          let r2 =
            sparse (Rng.of_int seed) g ~source:0
              ~agents:(Placement.Stationary 12) ~max_rounds:100_000 ()
          in
          check_same_result (Printf.sprintf "sparse ve %s seed=%d" name seed) r r2)
        seeds)
    (families ())

let test_sparse_meet_exchange_completes () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let r =
            Engine.meet_exchange ~walkers:P.Sparse_walkers.Sparse
              (Rng.of_int seed) g ~source:0 ~agents:(Placement.Stationary 14)
              ~max_rounds:20_000 ()
          in
          Alcotest.(check bool)
            (Printf.sprintf "sparse me %s seed=%d: all informed" name seed)
            true
            (r.Run_result.all_agents_informed <> None);
          let r2 =
            Engine.meet_exchange ~walkers:P.Sparse_walkers.Sparse
              (Rng.of_int seed) g ~source:0 ~agents:(Placement.Stationary 14)
              ~max_rounds:20_000 ()
          in
          check_same_result (Printf.sprintf "sparse me %s seed=%d" name seed) r r2)
        seeds)
    (families ())

let test_sparse_occupancy_hook () =
  let g = Gen.torus ~rows:5 ~cols:5 in
  let rec_ = Instrument.Recorder.create () in
  let (_ : Run_result.t) =
    sparse
      ~obs:(Instrument.Recorder.instrument rec_)
      (Rng.of_int 3) g ~source:0 ~agents:(Placement.Stationary 30)
      ~max_rounds:100_000 ()
  in
  Alcotest.(check bool) "occupancy events fired" true
    (Instrument.Recorder.occupancy_events rec_ > 0);
  (match Instrument.Recorder.last_occupied rec_ with
  | None -> Alcotest.fail "no occupancy recorded"
  | Some occ ->
      Alcotest.(check bool) "occupied in range" true (occ >= 1 && occ <= 25));
  (* dense kernels do not fire the aggregate hook *)
  let rec_d = Instrument.Recorder.create () in
  let (_ : Run_result.t) =
    Engine.visit_exchange
      ~obs:(Instrument.Recorder.instrument rec_d)
      (Rng.of_int 3) g ~source:0 ~agents:(Placement.Stationary 30)
      ~max_rounds:100_000 ()
  in
  Alcotest.(check int) "dense fires none" 0
    (Instrument.Recorder.occupancy_events rec_d)

let test_sparse_rejects_traffic () =
  let g = Gen.complete 8 in
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "ve traffic + sparse" true
    (bad (fun () ->
         sparse ~traffic:(Traffic.create g) (Rng.of_int 1) g ~source:0
           ~agents:(Placement.Stationary 6) ~max_rounds:10 ()));
  Alcotest.(check bool) "me traffic + sparse" true
    (bad (fun () ->
         Engine.meet_exchange ~walkers:P.Sparse_walkers.Sparse
           ~traffic:(Traffic.create g) (Rng.of_int 1) g ~source:0
           ~agents:(Placement.Stationary 6) ~max_rounds:10 ()))

let test_walkers_auto_resolution () =
  (* below the threshold Auto is the dense path: bit-identical to legacy *)
  let g = Gen.complete 16 in
  let legacy =
    P.Visit_exchange.run ~lazy_walk:false (Rng.of_int 5) g ~source:0
      ~agents:(Placement.Stationary 12) ~max_rounds:100_000 ()
  in
  let auto =
    Engine.visit_exchange ~walkers:P.Sparse_walkers.Auto ~lazy_walk:false
      (Rng.of_int 5) g ~source:0 ~agents:(Placement.Stationary 12)
      ~max_rounds:100_000 ()
  in
  check_same_result "auto below threshold = dense = legacy" legacy auto

(* ------------------------------------- observation and traffic streams *)

let record_obs run =
  let rec_ = Instrument.Recorder.create () in
  let r = run (Instrument.Recorder.instrument rec_) in
  (r, rec_)

let test_push_obs_stream_matches_legacy () =
  let g = Gen.torus ~rows:5 ~cols:5 in
  let r1, o1 =
    record_obs (fun obs ->
        P.Push.run ~obs (Rng.of_int 7) g ~source:0 ~max_rounds:100_000 ())
  in
  let r2, o2 =
    record_obs (fun obs ->
        Engine.push ~obs (Rng.of_int 7) g ~source:0 ~max_rounds:100_000 ())
  in
  check_same_result "push obs" r1 r2;
  Alcotest.(check int) "contacts seen" (Instrument.Recorder.contacts o1)
    (Instrument.Recorder.contacts o2);
  Alcotest.(check (array int)) "per-round curve" (Instrument.Recorder.curve o1)
    (Instrument.Recorder.curve o2)

let test_walker_obs_stream_matches_legacy () =
  let g = Gen.complete 10 in
  let r1, o1 =
    record_obs (fun obs ->
        P.Visit_exchange.run ~obs (Rng.of_int 8) g ~source:0
          ~agents:(Placement.Stationary 8) ~max_rounds:100_000 ())
  in
  let r2, o2 =
    record_obs (fun obs ->
        Engine.visit_exchange ~obs (Rng.of_int 8) g ~source:0
          ~agents:(Placement.Stationary 8) ~max_rounds:100_000 ())
  in
  check_same_result "ve obs" r1 r2;
  Alcotest.(check int) "walker moves" (Instrument.Recorder.walker_moves o1)
    (Instrument.Recorder.walker_moves o2);
  Alcotest.(check int) "contacts seen" (Instrument.Recorder.contacts o1)
    (Instrument.Recorder.contacts o2)

let test_traffic_matches_legacy () =
  let g = Gen.complete 12 in
  let t1 = Traffic.create g and t2 = Traffic.create g in
  let r1 =
    P.Push_pull.run ~traffic:t1 (Rng.of_int 9) g ~source:0 ~max_rounds:100_000 ()
  in
  let r2 =
    Engine.push_pull ~traffic:t2 (Rng.of_int 9) g ~source:0 ~max_rounds:100_000 ()
  in
  check_same_result "pp traffic" r1 r2;
  Alcotest.(check (array int)) "per-edge loads" (Traffic.loads t1) (Traffic.loads t2)

(* --------------------------------------------- sharded-path determinism *)

let sharded_runs ~shards ~jobs =
  let pool = Pool.create ~jobs in
  (* connected with min degree 4: push_pull draws a neighbor for every
     vertex, so the sharded sweep needs no isolated vertices *)
  let g = Gen.torus ~rows:8 ~cols:8 in
  [
    ("push", Engine.push ~shards ~pool (Rng.of_int 11) g ~source:0 ~max_rounds:100_000 ());
    ( "push_pull",
      Engine.push_pull ~shards ~pool (Rng.of_int 11) g ~source:0 ~max_rounds:100_000 () );
    ( "visit_exchange",
      Engine.visit_exchange ~shards ~pool (Rng.of_int 11) g ~source:0
        ~agents:(Placement.Stationary 20) ~max_rounds:100_000 () );
    ( "meet_exchange",
      Engine.meet_exchange ~shards ~pool (Rng.of_int 11) g ~source:0
        ~agents:(Placement.Stationary 20) ~max_rounds:20_000 () );
  ]

let test_sharded_jobs_invariant () =
  (* shards = 4 must give the same answer whether the pool runs 1 or 4 jobs *)
  List.iter2
    (fun (name, r1) (name2, r4) ->
      Alcotest.(check string) "same kernel" name name2;
      check_same_result (name ^ " jobs 1 vs 4") r1 r4)
    (sharded_runs ~shards:4 ~jobs:1)
    (sharded_runs ~shards:4 ~jobs:4)

let test_sharded_runs_complete () =
  List.iter
    (fun (name, r) ->
      Alcotest.(check bool) (name ^ " completes sharded") true (Run_result.completed r))
    (sharded_runs ~shards:3 ~jobs:2)

let test_sharded_push_same_distribution_shape () =
  (* sharded randomness differs from sequential, but the curve must still be
     a valid push curve: monotone, at-most-doubling, ending at n *)
  let g = Gen.complete 32 in
  let r =
    Engine.push ~shards:4 ~pool:(Pool.create ~jobs:1) (Rng.of_int 13) g ~source:0
      ~max_rounds:100_000 ()
  in
  let curve = r.Run_result.informed_curve in
  Alcotest.(check int) "starts at 1" 1 curve.(0);
  Alcotest.(check int) "ends at n" 32 curve.(Array.length curve - 1);
  for i = 1 to Array.length curve - 1 do
    if curve.(i) < curve.(i - 1) then Alcotest.fail "curve not monotone";
    if curve.(i) > 2 * curve.(i - 1) then Alcotest.fail "curve more than doubled"
  done

(* -------------------------------------------- huge-cap allocation bound *)

let test_huge_cap_completes () =
  (* max_rounds = max_int must be safe: memory is O(rounds run), not O(cap) *)
  let g = Gen.path 40 in
  let before = Gc.allocated_bytes () in
  let r = Engine.push (Rng.of_int 17) g ~source:0 ~max_rounds:max_int () in
  let r2 = P.Push.run (Rng.of_int 17) g ~source:0 ~max_rounds:max_int () in
  let allocated = Gc.allocated_bytes () -. before in
  check_same_result "huge cap" r r2;
  Alcotest.(check bool) "completed" true (Run_result.completed r);
  (* two complete path-40 runs allocate well under a megabyte; an O(cap)
     curve would be ~70 TB here *)
  Alcotest.(check bool)
    (Printf.sprintf "allocation bounded (%.0f bytes)" allocated)
    true
    (allocated < 1_000_000.0)

let test_huge_cap_walkers () =
  let g = Gen.complete 8 in
  let r =
    Engine.meet_exchange (Rng.of_int 19) g ~source:0
      ~agents:(Placement.Stationary 6) ~max_rounds:max_int ()
  in
  Alcotest.(check bool) "completed" true (Run_result.completed r)

(* ----------------------------------------------------------- validation *)

let test_validation () =
  let g = Gen.complete 4 in
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad source" true
    (bad (fun () -> Engine.push (Rng.of_int 1) g ~source:9 ~max_rounds:10 ()));
  Alcotest.(check bool) "negative cap" true
    (bad (fun () -> Engine.push_pull (Rng.of_int 1) g ~source:0 ~max_rounds:(-1) ()));
  Alcotest.(check bool) "zero shards" true
    (bad (fun () -> Engine.push ~shards:0 (Rng.of_int 1) g ~source:0 ~max_rounds:10 ()));
  Alcotest.(check bool) "bad failure prob" true
    (bad (fun () ->
         Engine.push ~failure_prob:1.0 (Rng.of_int 1) g ~source:0 ~max_rounds:10 ()));
  Alcotest.(check bool) "short tau" true
    (bad (fun () ->
         Engine.push ~tau:(Array.make 2 0) (Rng.of_int 1) g ~source:0 ~max_rounds:10 ()))

(* ------------------------------------------------------------ curve buf *)

let test_curve_buf () =
  let b = P.Curve_buf.create ~hint:max_int in
  Alcotest.(check int) "empty" 0 (P.Curve_buf.length b);
  for i = 0 to 999 do
    P.Curve_buf.push b (i * i)
  done;
  Alcotest.(check int) "length" 1000 (P.Curve_buf.length b);
  Alcotest.(check int) "get" (25 * 25) (P.Curve_buf.get b 25);
  P.Curve_buf.set_last b 7;
  let c = P.Curve_buf.contents b in
  Alcotest.(check int) "contents length" 1000 (Array.length c);
  Alcotest.(check int) "set_last" 7 c.(999);
  Alcotest.(check int) "tiny hint ok" 0 (P.Curve_buf.length (P.Curve_buf.create ~hint:0))

(* ------------------------------------- disabled-trace fast path is free *)

let test_disabled_trace_allocation_free () =
  (* Two disjoint edges: push from 0 can never reach {2, 3}, so the run is
     capped after exactly max_rounds rounds, and running two caps that
     differ by many rounds isolates the marginal allocation per round.
     Random draws dominate that figure (both kernels make the same two
     neighbor draws per round here), so the engine's marginal cost is
     compared against the legacy kernel's rather than an absolute bound:
     the per-draw cost cancels and what remains is the engine's own
     per-round overhead, which the disabled [?trace] plumbing must not
     grow — a with_span closure or per-round [Some] cells at the three
     trace sites per round would move it. *)
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let marginal run =
    ignore (run 16);
    (* warm-up pays one-time allocation *)
    let r1, a1 = run 2_000 in
    let r2, a2 = run 12_000 in
    Alcotest.(check bool) "short run capped" false (Run_result.completed r1);
    Alcotest.(check bool) "long run capped" false (Run_result.completed r2);
    Alcotest.(check int) "short rounds" 2_000 r1.Run_result.rounds_run;
    Alcotest.(check int) "long rounds" 12_000 r2.Run_result.rounds_run;
    (a2 -. a1) /. 10_000.0
  in
  let timed f cap =
    let before = Gc.allocated_bytes () in
    let r = f cap in
    (r, Gc.allocated_bytes () -. before)
  in
  let engine =
    marginal
      (timed (fun cap ->
           Engine.push (Rng.of_int 5) g ~source:0 ~max_rounds:cap ()))
  in
  let legacy =
    marginal
      (timed (fun cap ->
           P.Push.run (Rng.of_int 5) g ~source:0 ~max_rounds:cap ()))
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "engine per-round allocation overhead %.1f B (engine %.1f, legacy %.1f) \
        < 256 B"
       (engine -. legacy) engine legacy)
    true
    (engine -. legacy < 256.0)

let suite =
  [
    Alcotest.test_case "push = legacy (seeds x families)" `Quick test_push_matches_legacy;
    Alcotest.test_case "push + failures = legacy" `Quick
      test_push_failure_prob_matches_legacy;
    Alcotest.test_case "push tau = informed_times" `Quick
      test_push_tau_matches_informed_times;
    Alcotest.test_case "push_pull = legacy (seeds x families)" `Quick
      test_push_pull_matches_legacy;
    Alcotest.test_case "visit_exchange = legacy (specs x lazy)" `Quick
      test_visit_exchange_matches_legacy;
    Alcotest.test_case "meet_exchange = legacy (auto lazy)" `Quick
      test_meet_exchange_matches_legacy;
    Alcotest.test_case "push obs stream = legacy" `Quick
      test_push_obs_stream_matches_legacy;
    Alcotest.test_case "walker obs stream = legacy" `Quick
      test_walker_obs_stream_matches_legacy;
    Alcotest.test_case "per-edge traffic = legacy" `Quick test_traffic_matches_legacy;
    Alcotest.test_case "sharded: jobs cannot change output" `Quick
      test_sharded_jobs_invariant;
    Alcotest.test_case "sharded runs complete" `Quick test_sharded_runs_complete;
    Alcotest.test_case "sharded push curve shape" `Quick
      test_sharded_push_same_distribution_shape;
    Alcotest.test_case "max_int cap: O(rounds) allocation" `Quick test_huge_cap_completes;
    Alcotest.test_case "disabled trace allocation-free" `Quick
      test_disabled_trace_allocation_free;
    Alcotest.test_case "max_int cap: walkers" `Quick test_huge_cap_walkers;
    Alcotest.test_case "argument validation" `Quick test_validation;
    Alcotest.test_case "curve buffer" `Quick test_curve_buf;
    Alcotest.test_case "combined = legacy (seeds x families x lazy)" `Quick
      test_combined_matches_legacy;
    Alcotest.test_case "sparse visit-exchange completes deterministically" `Quick
      test_sparse_visit_exchange_completes;
    Alcotest.test_case "sparse meet-exchange completes deterministically" `Quick
      test_sparse_meet_exchange_completes;
    Alcotest.test_case "sparse occupancy hook" `Quick test_sparse_occupancy_hook;
    Alcotest.test_case "sparse rejects traffic" `Quick test_sparse_rejects_traffic;
    Alcotest.test_case "auto below threshold is dense" `Quick
      test_walkers_auto_resolution;
  ]
