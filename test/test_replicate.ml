(* Tests for Rumor_sim.Replicate. *)

module Rng = Rumor_prob.Rng
module Gen = Rumor_graph.Gen_basic
module Replicate = Rumor_sim.Replicate
module Protocol = Rumor_sim.Protocol

let push_on_clique ~trace:_ ~rep:_ rng =
  Rumor_protocols.Push.run rng (Gen.complete 32) ~source:0 ~max_rounds:10_000 ()

let test_rep_count () =
  let m = Replicate.measure ~seed:211 ~reps:7 push_on_clique in
  Alcotest.(check int) "seven measurements" 7 (Array.length m.Replicate.times);
  Alcotest.(check int) "none capped" 0 m.Replicate.capped

let test_reproducible () =
  let m1 = Replicate.measure ~seed:212 ~reps:5 push_on_clique in
  let m2 = Replicate.measure ~seed:212 ~reps:5 push_on_clique in
  Alcotest.(check (array (float 1e-9))) "same times" m1.Replicate.times m2.Replicate.times

let test_seed_changes_results () =
  let m1 = Replicate.measure ~seed:213 ~reps:8 push_on_clique in
  let m2 = Replicate.measure ~seed:214 ~reps:8 push_on_clique in
  Alcotest.(check bool) "different seeds differ" true
    (m1.Replicate.times <> m2.Replicate.times)

let test_replications_vary () =
  let m = Replicate.measure ~seed:215 ~reps:10 push_on_clique in
  let distinct =
    Array.to_list m.Replicate.times
    |> List.sort_uniq Float.compare
    |> List.length
  in
  Alcotest.(check bool) "not all identical" true (distinct > 1)

let test_capped_counted () =
  let f ~trace:_ ~rep:_ rng =
    Rumor_protocols.Push.run rng (Gen.path 50) ~source:0 ~max_rounds:2 ()
  in
  let m = Replicate.measure ~seed:216 ~reps:4 f in
  Alcotest.(check int) "all capped" 4 m.Replicate.capped;
  Array.iter
    (fun t -> Alcotest.(check (float 1e-9)) "capped time = cap" 2.0 t)
    m.Replicate.times

let test_invalid_reps () =
  try
    ignore (Replicate.measure ~seed:217 ~reps:0 push_on_clique);
    Alcotest.fail "zero reps accepted"
  with Invalid_argument _ -> ()

let test_broadcast_times_wrapper () =
  let m =
    Replicate.broadcast_times ~seed:218 ~reps:5
      ~graph:(fun _rng -> (Gen.complete 16, 0))
      ~spec:Protocol.push ~max_rounds:10_000 ()
  in
  Alcotest.(check int) "five reps" 5 (Array.length m.Replicate.times);
  Alcotest.(check bool) "mean positive" true (Replicate.mean m > 0.0);
  Alcotest.(check bool) "median positive" true (Replicate.median m > 0.0);
  Alcotest.(check bool) "max >= mean" true (Replicate.max_time m >= Replicate.mean m)

let test_graph_resampled_per_replication () =
  (* with a random graph model, the per-rep generator drives graph sampling;
     reproducibility must still hold end to end *)
  let graph rng = (Rumor_graph.Gen_random.random_regular_connected rng ~n:32 ~d:4, 0) in
  let run () =
    Replicate.broadcast_times ~seed:219 ~reps:4 ~graph
      ~spec:(Protocol.visit_exchange ()) ~max_rounds:100_000 ()
  in
  let m1 = run () and m2 = run () in
  Alcotest.(check (array (float 1e-9))) "reproducible with random graphs"
    m1.Replicate.times m2.Replicate.times

(* The engine path must be invisible in every observable: identical
   measurements AND an identical sink stream (records carry the informed
   curve, so this also pins per-round dynamics), up to per-rep timing and
   the engine/shards provenance fields, which are the one deliberate
   difference and are pinned separately below. *)
let test_engine_sink_stream_identical () =
  let detimed (r : Rumor_obs.Run_record.t) =
    Rumor_obs.Run_record.to_json
      {
        r with
        Rumor_obs.Run_record.wall_seconds = 0.0;
        gc = { minor_words = 0.0; major_words = 0.0; promoted_words = 0.0 };
        engine = false;
        shards = 1;
      }
  in
  let graph rng =
    (Rumor_graph.Gen_random.random_regular_connected rng ~n:48 ~d:4, 0)
  in
  List.iter
    (fun spec ->
      let run ~engine =
        let records = ref [] in
        let m =
          Replicate.broadcast_times
            ~sink:(fun r -> records := r :: !records)
            ~graph_name:"rr:48,4" ~engine ~seed:220 ~reps:4 ~graph ~spec
            ~max_rounds:100_000 ()
        in
        let raw = List.rev !records in
        (m, List.map detimed raw, raw)
      in
      let legacy, legacy_records, legacy_raw = run ~engine:false in
      let engine, engine_records, engine_raw = run ~engine:true in
      List.iter
        (fun (r : Rumor_obs.Run_record.t) ->
          Alcotest.(check bool)
            (Protocol.name spec ^ ": legacy records say engine=false")
            false r.Rumor_obs.Run_record.engine)
        legacy_raw;
      List.iter
        (fun (r : Rumor_obs.Run_record.t) ->
          Alcotest.(check bool)
            (Protocol.name spec ^ ": engine records say engine=true")
            true r.Rumor_obs.Run_record.engine)
        engine_raw;
      Alcotest.(check (array (float 0.0)))
        (Protocol.name spec ^ ": times identical")
        legacy.Replicate.times engine.Replicate.times;
      Alcotest.(check (list string))
        (Protocol.name spec ^ ": sink stream identical (sans timing)")
        legacy_records engine_records)
    [
      Protocol.push;
      Protocol.push_pull;
      Protocol.visit_exchange ();
      Protocol.meet_exchange ();
      (* not engine-capable: must silently fall back to the legacy path *)
      Protocol.pull;
    ]

let suite =
  [
    Alcotest.test_case "replication count" `Quick test_rep_count;
    Alcotest.test_case "reproducible" `Quick test_reproducible;
    Alcotest.test_case "seed changes results" `Quick test_seed_changes_results;
    Alcotest.test_case "replications vary" `Quick test_replications_vary;
    Alcotest.test_case "capped runs counted" `Quick test_capped_counted;
    Alcotest.test_case "invalid reps" `Quick test_invalid_reps;
    Alcotest.test_case "broadcast_times wrapper" `Quick test_broadcast_times_wrapper;
    Alcotest.test_case "random graphs reproducible" `Quick
      test_graph_resampled_per_replication;
    Alcotest.test_case "engine path: identical sink stream" `Quick
      test_engine_sink_stream_identical;
  ]
