(* Test runner: one alcotest suite per library module. *)

let () =
  Alcotest.run "rumor"
    [
      ("prob.rng", Test_rng.suite);
      ("prob.dist", Test_dist.suite);
      ("prob.alias", Test_alias.suite);
      ("prob.stats", Test_stats.suite);
      ("prob.regress", Test_regress.suite);
      ("graph.core", Test_graph.suite);
      ("graph.gen_basic", Test_gen_basic.suite);
      ("graph.gen_paper", Test_gen_paper.suite);
      ("graph.gen_random", Test_gen_random.suite);
      ("graph.algo", Test_algo.suite);
      ("graph.io", Test_graph_io.suite);
      ("prob.linalg", Test_linalg.suite);
      ("graph.hitting", Test_hitting.suite);
      ("graph.spectral", Test_spectral.suite);
      ("agents.placement", Test_placement.suite);
      ("agents.walkers", Test_walkers.suite);
      ("protocols.run_result", Test_run_result.suite);
      ("protocols.traffic", Test_traffic.suite);
      ("protocols.push", Test_push.suite);
      ("protocols.push_pull", Test_push_pull.suite);
      ("protocols.pull", Test_pull.suite);
      ("protocols.visit_exchange", Test_visit_exchange.suite);
      ("protocols.meet_exchange", Test_meet_exchange.suite);
      ("protocols.combined", Test_combined.suite);
      ("protocols.flood", Test_flood.suite);
      ("protocols.coupling", Test_coupling.suite);
      ("des.event_queue", Test_event_queue.suite);
      ("des.calendar_queue", Test_calendar_queue.suite);
      ("protocols.async_push", Test_async_push.suite);
      ("protocols.async_meet_exchange", Test_async_meet_exchange.suite);
      ("protocols.dynamic_visit_exchange", Test_dynamic_visit_exchange.suite);
      ("protocols.quasi_push", Test_quasi_push.suite);
      ("protocols.cobra", Test_cobra.suite);
      ("protocols.frog", Test_frog.suite);
      ("protocols.multi_rumor", Test_multi_rumor.suite);
      ("protocols.tweaked_visit_exchange", Test_tweaked_visit_exchange.suite);
      ("protocols.engine", Test_engine.suite);
      ("protocols.async_engine", Test_async_engine.suite);
      ("sim.protocol", Test_protocol.suite);
      ("sim.graph_spec", Test_graph_spec.suite);
      ("par.pool", Test_par.suite);
      ("sim.replicate", Test_replicate.suite);
      ("sim.table", Test_table.suite);
      ("sim.sparkline", Test_sparkline.suite);
      ("sim.experiments", Test_experiments.suite);
      ("sim.invariants", Test_invariants.suite);
      ("sim.curve_stats", Test_curve_stats.suite);
      ("obs.instrument", Test_obs.suite);
      ("obs.trace", Test_trace.suite);
      ("obs.analysis", Test_report.suite);
      ("tools.lint", Test_lint.suite);
    ]
