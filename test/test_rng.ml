(* Tests for Rumor_prob.Rng: determinism, stream independence, uniformity. *)

module Rng = Rumor_prob.Rng

let test_deterministic () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.of_int 42 and b = Rng.of_int 43 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "nearby seeds decorrelate" true (!same < 4)

let test_zero_seed_works () =
  let g = Rng.create 0L in
  let distinct = ref false in
  let first = Rng.bits64 g in
  for _ = 1 to 10 do
    if Rng.bits64 g <> first then distinct := true
  done;
  Alcotest.(check bool) "seed 0 produces a varying stream" true !distinct

let test_copy_diverges_from_original () =
  let a = Rng.of_int 7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  (* advancing one does not affect the other *)
  let _ = Rng.bits64 a in
  let x = Rng.bits64 a and y = Rng.bits64 b in
  Alcotest.(check bool) "streams are now offset" true (x <> y || Rng.bits64 a <> Rng.bits64 b)

let test_split_independent () =
  let parent = Rng.of_int 5 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 child1 = Rng.bits64 child2 then incr matches
  done;
  Alcotest.(check int) "children do not mirror each other" 0 !matches

let test_split_n_matches_split_loop () =
  (* split_n is defined as n sequential splits: two parents at the same
     state must agree child by child *)
  let a = Rng.of_int 6 and b = Rng.of_int 6 in
  let children = Rng.split_n a 5 in
  Alcotest.(check int) "five children" 5 (Array.length children);
  Array.iter
    (fun child ->
      let expected = Rng.split b in
      for _ = 1 to 16 do
        Alcotest.(check int64) "same stream as a manual split loop"
          (Rng.bits64 expected) (Rng.bits64 child)
      done)
    children;
  (* the parents advanced identically too *)
  Alcotest.(check int64) "parents in lockstep after split_n" (Rng.bits64 b)
    (Rng.bits64 a)

let test_split_n_edge_cases () =
  let g = Rng.of_int 7 in
  Alcotest.(check int) "zero children" 0 (Array.length (Rng.split_n g 0));
  (try
     ignore (Rng.split_n g (-1));
     Alcotest.fail "negative count accepted"
   with Invalid_argument _ -> ());
  let children = Rng.split_n g 3 in
  let first = Array.map (fun c -> Rng.bits64 c) children in
  Alcotest.(check bool) "children differ from each other" true
    (first.(0) <> first.(1) && first.(1) <> first.(2))

let test_int_bounds () =
  let g = Rng.of_int 1 in
  for bound = 1 to 40 do
    for _ = 1 to 200 do
      let x = Rng.int g bound in
      if x < 0 || x >= bound then
        Alcotest.failf "Rng.int %d produced %d" bound x
    done
  done

let test_int_invalid () =
  let g = Rng.of_int 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int g 0));
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int g (-3)))

let test_int_uniformity () =
  (* chi-squared against uniform over 10 buckets; df = 9, crit(0.999) ~ 27.9 *)
  let g = Rng.of_int 11 in
  let buckets = Array.make 10 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    let x = Rng.int g 10 in
    buckets.(x) <- buckets.(x) + 1
  done;
  let expected = float_of_int samples /. 10.0 in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 buckets
  in
  Alcotest.(check bool) (Printf.sprintf "chi2=%.1f < 27.9" chi2) true (chi2 < 27.9)

let test_int_non_power_of_two_uniformity () =
  let g = Rng.of_int 12 in
  let buckets = Array.make 7 0 in
  let samples = 70_000 in
  for _ = 1 to samples do
    let x = Rng.int g 7 in
    buckets.(x) <- buckets.(x) + 1
  done;
  let expected = float_of_int samples /. 7.0 in
  Array.iteri
    (fun i c ->
      let ratio = float_of_int c /. expected in
      if ratio < 0.9 || ratio > 1.1 then
        Alcotest.failf "bucket %d has ratio %.3f" i ratio)
    buckets

let test_int_in () =
  let g = Rng.of_int 2 in
  for _ = 1 to 1000 do
    let x = Rng.int_in g (-5) 5 in
    if x < -5 || x > 5 then Alcotest.failf "int_in out of range: %d" x
  done;
  Alcotest.(check int) "singleton range" 3 (Rng.int_in g 3 3);
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Rng.int_in g 4 3))

let test_float_range () =
  let g = Rng.of_int 3 in
  for _ = 1 to 10_000 do
    let x = Rng.float g 1.0 in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of [0,1): %f" x
  done

let test_float_mean () =
  let g = Rng.of_int 4 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float g 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f near 0.5" mean)
    true
    (Float.abs (mean -. 0.5) < 0.01)

let test_bool_balance () =
  let g = Rng.of_int 5 in
  let heads = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bool g then incr heads
  done;
  let p = float_of_int !heads /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "p=%.3f near 0.5" p) true (Float.abs (p -. 0.5) < 0.01)

let test_bernoulli_extremes () =
  let g = Rng.of_int 6 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli g 0.0);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli g 1.0)
  done

let test_bernoulli_rate () =
  let g = Rng.of_int 7 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli g 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "p=%.3f near 0.3" p) true (Float.abs (p -. 0.3) < 0.01)

let test_shuffle_is_permutation () =
  let g = Rng.of_int 8 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 100 (fun i -> i)) sorted

let test_shuffle_uniform_small () =
  (* all 6 permutations of 3 elements should appear with roughly equal
     frequency *)
  let g = Rng.of_int 9 in
  let counts = Hashtbl.create 6 in
  let n = 60_000 in
  for _ = 1 to n do
    let a = [| 0; 1; 2 |] in
    Rng.shuffle g a;
    let key = (a.(0) * 9) + (a.(1) * 3) + a.(2) in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "six permutations observed" 6 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      let ratio = float_of_int c /. (float_of_int n /. 6.0) in
      if ratio < 0.9 || ratio > 1.1 then Alcotest.failf "permutation ratio %.3f" ratio)
    counts

let test_choose () =
  let g = Rng.of_int 10 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let x = Rng.choose g a in
    Alcotest.(check bool) "chosen element is in the array" true (Array.mem x a)
  done;
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose g [||]))

let suite =
  [
    Alcotest.test_case "deterministic by seed" `Quick test_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "zero seed works" `Quick test_zero_seed_works;
    Alcotest.test_case "copy semantics" `Quick test_copy_diverges_from_original;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "split_n = n splits in order" `Quick
      test_split_n_matches_split_loop;
    Alcotest.test_case "split_n edge cases" `Quick test_split_n_edge_cases;
    Alcotest.test_case "int stays in bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects bad bounds" `Quick test_int_invalid;
    Alcotest.test_case "int uniformity (chi2)" `Quick test_int_uniformity;
    Alcotest.test_case "int uniformity, non-power-of-two" `Quick
      test_int_non_power_of_two_uniformity;
    Alcotest.test_case "int_in range and errors" `Quick test_int_in;
    Alcotest.test_case "float in [0,1)" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "shuffle uniform on 3 elements" `Quick test_shuffle_uniform_small;
    Alcotest.test_case "choose" `Quick test_choose;
  ]
