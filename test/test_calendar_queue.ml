(* Tests for Rumor_des.Calendar_queue: the calendar must be drain-for-drain
   indistinguishable from the binary heap (Queue_intf's determinism
   contract), on top of the usual scheduler unit tests. *)

module Cal = Rumor_des.Calendar_queue
module Heap = Rumor_des.Event_queue

(* both schedulers implement the shared signature *)
module _ : Rumor_des.Queue_intf.S = Rumor_des.Calendar_queue
module _ : Rumor_des.Queue_intf.S = Rumor_des.Event_queue

let test_empty () =
  let q : int Cal.t = Cal.create () in
  Alcotest.(check bool) "empty" true (Cal.is_empty q);
  Alcotest.(check int) "size 0" 0 (Cal.size q);
  Alcotest.(check bool) "pop none" true (Cal.pop q = None);
  Alcotest.(check bool) "peek none" true (Cal.peek_time q = None);
  let slot = ref 0 in
  Alcotest.(check bool) "pop_into nan" true (Float.is_nan (Cal.pop_into q slot));
  Alcotest.(check int) "slot untouched" 0 !slot

let test_ordering () =
  let q = Cal.create () in
  Cal.push q 3.0 "c";
  Cal.push q 1.0 "a";
  Cal.push q 2.0 "b";
  Alcotest.(check (option (float 1e-9))) "peek earliest" (Some 1.0) (Cal.peek_time q);
  let order = List.init 3 (fun _ -> match Cal.pop q with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "sorted by time" [ "a"; "b"; "c" ] order

let test_fifo_ties () =
  let q = Cal.create () in
  Cal.push q 1.0 "first";
  Cal.push q 1.0 "second";
  Cal.push q 1.0 "third";
  let order = List.init 3 (fun _ -> match Cal.pop q with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "insertion order on ties" [ "first"; "second"; "third" ]
    order

let test_push_into_past () =
  let q = Cal.create () in
  Cal.push q 10.0 10;
  Cal.push q 20.0 20;
  Cal.push q 30.0 30;
  (match Cal.pop q with
  | Some (_, 10) -> ()
  | _ -> Alcotest.fail "expected 10 first");
  (* the year cursor has advanced past day 0; a push behind it must rewind *)
  Cal.push q 0.5 0;
  let rest = List.init 3 (fun _ -> match Cal.pop q with Some (_, x) -> x | None -> -1) in
  Alcotest.(check (list int)) "past push drains first" [ 0; 20; 30 ] rest

let test_single_instant_degenerate () =
  (* every event at one time: one bucket takes the whole load across
     resizes; order must still be pure FIFO *)
  let q = Cal.create () in
  for i = 0 to 499 do
    Cal.push q 7.0 i
  done;
  let ok = ref true in
  for i = 0 to 499 do
    match Cal.pop q with
    | Some (t, x) -> if x <> i || Float.compare t 7.0 <> 0 then ok := false
    | None -> ok := false
  done;
  Alcotest.(check bool) "FIFO through resizes" true !ok

let test_nan_rejected () =
  let q = Cal.create () in
  try
    Cal.push q Float.nan ();
    Alcotest.fail "NaN accepted"
  with Invalid_argument _ -> ()

let test_clear () =
  let q = Cal.create () in
  for i = 0 to 99 do
    Cal.push q (float_of_int i) ()
  done;
  Cal.clear q;
  Alcotest.(check bool) "cleared" true (Cal.is_empty q);
  let s = Cal.stats q in
  Alcotest.(check int) "geometry reset" 16 s.Cal.buckets;
  Cal.push q 3.0 ();
  Alcotest.(check (option (float 1e-9))) "usable after clear" (Some 3.0)
    (Cal.peek_time q)

let test_clear_releases_payloads () =
  let q : int array Cal.t = Cal.create () in
  let w = Weak.create 1 in
  Cal.push q 1.0
    (let payload = Array.make 1024 0 in
     Weak.set w 0 (Some payload);
     payload);
  Cal.clear q;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "payload collected after clear" true
    (Option.is_none (Weak.get w 0));
  ignore (Sys.opaque_identity (Cal.size q))

let test_resize_stats () =
  let q = Cal.create () in
  let rng = Rumor_prob.Rng.of_int 17 in
  for i = 0 to 4999 do
    Cal.push q (Rumor_prob.Rng.float rng 1000.0) i
  done;
  let s = Cal.stats q in
  Alcotest.(check bool) "grew past the initial year" true (s.Cal.buckets > 16);
  Alcotest.(check bool) "resized at least once" true (s.Cal.resizes > 0);
  Alcotest.(check bool) "width positive" true (s.Cal.width > 0.0);
  let grow_resizes = s.Cal.resizes in
  for _ = 0 to 4999 do
    ignore (Cal.pop q)
  done;
  let s' = Cal.stats q in
  Alcotest.(check bool) "shrank while draining" true (s'.Cal.resizes > grow_resizes);
  Alcotest.(check bool) "drained" true (Cal.is_empty q)

(* --- heap/calendar equivalence ------------------------------------- *)

let drain_both heap cal ops =
  (* apply the same op stream to both queues; fail on the first
     divergence in pop results (time, payload, or exhaustion) *)
  let id = ref 0 in
  List.for_all
    (fun op ->
      if op < 20 then begin
        let h = Heap.pop heap and c = Cal.pop cal in
        match (h, c) with
        | None, None -> true
        | Some (th, xh), Some (tc, xc) -> Float.compare th tc = 0 && xh = xc
        | _ -> false
      end
      else begin
        (* coarse time grid so FIFO ties are common *)
        let t = float_of_int ((op - 20) mod 11) /. 2.0 in
        incr id;
        Heap.push heap t !id;
        Cal.push cal t !id;
        true
      end)
    ops
  &&
  (* drain the rest in lockstep *)
  let rec finish () =
    match (Heap.pop heap, Cal.pop cal) with
    | None, None -> true
    | Some (th, xh), Some (tc, xc) ->
        Float.compare th tc = 0 && xh = xc && finish ()
    | _ -> false
  in
  finish ()

let prop_heap_calendar_equivalent =
  QCheck.Test.make ~count:300
    ~name:"calendar drains identically to heap (interleaved push/pop, ties)"
    QCheck.(list (int_bound 60))
    (fun ops -> drain_both (Heap.create ()) (Cal.create ()) ops)

let test_des_hold_equivalence () =
  (* the DES access pattern itself: prefill, then pop-and-reschedule with
     exponential gaps, long enough to rotate the year and trigger both
     grow and shrink resizes *)
  let rng = Rumor_prob.Rng.of_int 99 in
  let heap = Heap.create () and cal = Cal.create () in
  for i = 0 to 511 do
    let t = Rumor_prob.Rng.float rng 1.0 in
    Heap.push heap t i;
    Cal.push cal t i
  done;
  let slot_h = ref (-1) and slot_c = ref (-1) in
  for _ = 1 to 20_000 do
    let th = Heap.pop_into heap slot_h in
    let tc = Cal.pop_into cal slot_c in
    if Float.compare th tc <> 0 || !slot_h <> !slot_c then
      Alcotest.failf "hold divergence: heap (%f, %d) vs calendar (%f, %d)" th
        !slot_h tc !slot_c;
    let gap = Rumor_prob.Dist.exponential rng 1.0 in
    Heap.push heap (th +. gap) !slot_h;
    Cal.push cal (tc +. gap) !slot_c
  done;
  Alcotest.(check int) "sizes agree" (Heap.size heap) (Cal.size cal)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO on ties" `Quick test_fifo_ties;
    Alcotest.test_case "push into the past" `Quick test_push_into_past;
    Alcotest.test_case "single-instant degenerate load" `Quick
      test_single_instant_degenerate;
    Alcotest.test_case "NaN rejected" `Quick test_nan_rejected;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "clear releases payloads" `Quick test_clear_releases_payloads;
    Alcotest.test_case "resize statistics" `Quick test_resize_stats;
    Alcotest.test_case "DES hold pattern equivalence" `Quick test_des_hold_equivalence;
    QCheck_alcotest.to_alcotest prop_heap_calendar_equivalent;
  ]
