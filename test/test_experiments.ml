(* Tests for Rumor_sim.Experiments: registry integrity plus smoke runs of
   the cheap experiments. *)

module Experiments = Rumor_sim.Experiments
module Table = Rumor_sim.Table

let test_ids_unique () =
  let ids = List.map (fun (e : Experiments.t) -> e.Experiments.id) Experiments.all in
  Alcotest.(check int) "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

let test_expected_ids_present () =
  List.iter
    (fun id ->
      match Experiments.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "experiment %s missing" id)
    [
      "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "A1"; "A2";
      "A3"; "A4"; "A5"; "A6"; "A7"; "A8"; "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8"; "R9";
    ]

let test_find_case_insensitive () =
  (match Experiments.find "e9" with
  | Some e -> Alcotest.(check string) "found" "E9" e.Experiments.id
  | None -> Alcotest.fail "lowercase lookup failed");
  Alcotest.(check bool) "unknown id" true (Experiments.find "E99" = None)

let test_every_experiment_has_paper_ref () =
  List.iter
    (fun (e : Experiments.t) ->
      if String.length e.Experiments.paper_ref = 0 then
        Alcotest.failf "%s lacks a paper reference" e.Experiments.id)
    Experiments.all

let test_run_all_unknown_id_rejected () =
  try
    ignore (Experiments.run_all ~ids:[ "bogus" ] Experiments.Quick ~seed:1);
    Alcotest.fail "unknown id accepted"
  with Invalid_argument _ -> ()

(* Smoke runs: the cheap experiments must produce non-empty tables whose
   key invariant cells hold.  E9's invariants are deterministic (Lemmas 13
   and 14), so we assert exact zeros. *)

let run_one id =
  match Experiments.find id with
  | None -> Alcotest.failf "experiment %s missing" id
  | Some e -> e.Experiments.run Experiments.Quick ~seed:3

let test_e9_invariants_zero () =
  match run_one "E9" with
  | [ coupling_table; theorem19_table ] ->
      Alcotest.(check bool) "has rows" true (List.length coupling_table.Table.rows > 0);
      List.iter
        (fun row ->
          match row with
          | _ :: _ :: violations :: mismatches :: _ ->
              Alcotest.(check string) "lemma 13 violations" "0" violations;
              Alcotest.(check string) "lemma 14 mismatches" "0" mismatches
          | _ -> Alcotest.fail "unexpected row shape")
        coupling_table.Table.rows;
      List.iter
        (fun row ->
          match row with
          | _ :: _ :: _ratio :: t_clamp :: r_clamp :: _ ->
              Alcotest.(check string) "t-clamp idle" "0" t_clamp;
              Alcotest.(check string) "r-clamp idle" "0" r_clamp
          | _ -> Alcotest.fail "unexpected E9b row shape")
        theorem19_table.Table.rows
  | _ -> Alcotest.fail "E9 should produce two tables"

let test_a2_shows_stall () =
  match run_one "A2" with
  | [ table ] -> (
      match table.Table.rows with
      | [ lazy_row; non_lazy_row ] ->
          let completed row = List.nth row 2 in
          Alcotest.(check string) "lazy completes" "5/5" (completed lazy_row);
          Alcotest.(check string) "non-lazy stalls" "0/5" (completed non_lazy_row)
      | _ -> Alcotest.fail "A2 should have two rows")
  | _ -> Alcotest.fail "A2 should produce one table"

let test_a4_fairness_direction () =
  match run_one "A4" with
  | [ table ] -> (
      match table.Table.rows with
      | [ pp_row; vx_row ] ->
          let bridge_over_mean row = float_of_string (List.nth row 5) in
          Alcotest.(check bool) "push-pull starves the bridge" true
            (bridge_over_mean pp_row < 0.2);
          Alcotest.(check bool) "visit-exchange uses the bridge" true
            (bridge_over_mean vx_row > 0.3)
      | _ -> Alcotest.fail "A4 should have two rows")
  | _ -> Alcotest.fail "A4 should produce one table"

let test_tables_render_and_csv () =
  (* rendering must not raise for any cheap experiment *)
  List.iter
    (fun id ->
      List.iter
        (fun t ->
          let text = Table.render t in
          Alcotest.(check bool) "render non-empty" true (String.length text > 0);
          let csv = Table.to_csv t in
          Alcotest.(check bool) "csv non-empty" true (String.length csv > 0))
        (run_one id))
    [ "A2"; "A4" ]

let suite =
  [
    Alcotest.test_case "ids unique" `Quick test_ids_unique;
    Alcotest.test_case "expected ids present" `Quick test_expected_ids_present;
    Alcotest.test_case "find case-insensitive" `Quick test_find_case_insensitive;
    Alcotest.test_case "paper references present" `Quick test_every_experiment_has_paper_ref;
    Alcotest.test_case "unknown id rejected" `Quick test_run_all_unknown_id_rejected;
    Alcotest.test_case "E9 invariants hold" `Slow test_e9_invariants_zero;
    Alcotest.test_case "A2 shows the bipartite stall" `Slow test_a2_shows_stall;
    Alcotest.test_case "A4 fairness direction" `Slow test_a4_fairness_direction;
    Alcotest.test_case "tables render and export" `Slow test_tables_render_and_csv;
  ]
