(* Tests for Rumor_protocols.Sparse_walkers: exact conservation, occupied
   list canonicalization, and occupancy stationarity. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Gen = Rumor_graph.Gen_basic
module Gen_random = Rumor_graph.Gen_random
module Placement = Rumor_agents.Placement
module SW = Rumor_protocols.Sparse_walkers

let check_invariants t g =
  let n = Graph.n g in
  let total = ref 0 in
  let occ_set = Array.make n false in
  let prev = ref (-1) in
  for i = 0 to SW.occupied_count t - 1 do
    let v = SW.occupied_vertex t i in
    if v <= !prev then Alcotest.failf "occupied list not ascending at %d" i;
    prev := v;
    occ_set.(v) <- true;
    let c = SW.uninformed_at t v + SW.informed_at t v in
    if c <= 0 then Alcotest.failf "occupied vertex %d holds no walkers" v;
    total := !total + c
  done;
  for v = 0 to n - 1 do
    if (not occ_set.(v)) && SW.uninformed_at t v + SW.informed_at t v > 0 then
      Alcotest.failf "vertex %d occupied but missing from the list" v
  done;
  Alcotest.(check int) "walkers conserved" (SW.agent_count t) !total

let test_conservation () =
  let rng = Rng.of_int 91 in
  List.iter
    (fun (g, lazy_walk) ->
      let t = SW.create ~lazy_walk rng g (Placement.Linear 1.5) in
      check_invariants t g;
      for _ = 1 to 30 do
        SW.step rng t;
        check_invariants t g
      done)
    [
      (Gen.complete 16, false);
      (Gen.torus ~rows:6 ~cols:6, false);
      (Gen.path 12, true);
      (Gen_random.random_regular_connected (Rng.of_int 92) ~n:40 ~d:3, true);
    ]

let test_inform_all_at () =
  let g = Gen.complete 8 in
  let rng = Rng.of_int 93 in
  let t = SW.create ~lazy_walk:false rng g (Placement.All_at (3, 10)) in
  Alcotest.(check int) "all uninformed at 3" 10 (SW.uninformed_at t 3);
  Alcotest.(check int) "converted" 10 (SW.inform_all_at t 3);
  Alcotest.(check int) "none left" 0 (SW.uninformed_at t 3);
  Alcotest.(check int) "now informed" 10 (SW.informed_at t 3);
  Alcotest.(check int) "idempotent" 0 (SW.inform_all_at t 3);
  (* informed mass is conserved by stepping too *)
  for _ = 1 to 10 do
    SW.step rng t
  done;
  let inf = ref 0 in
  for i = 0 to SW.occupied_count t - 1 do
    inf := !inf + SW.informed_at t (SW.occupied_vertex t i)
  done;
  Alcotest.(check int) "informed conserved" 10 !inf

(* On a regular graph the uniform occupancy is stationary: averaged over
   rounds, every vertex should hold ~k/n walkers.  With k = 50n and 200
   rounds the per-vertex mean concentrates tightly. *)
let test_occupancy_stationarity () =
  let n = 24 in
  let g = Gen.cycle n in
  let rng = Rng.of_int 94 in
  let k = 50 * n in
  let t = SW.create ~lazy_walk:true rng g (Placement.Stationary k) in
  let rounds = 200 in
  let acc = Array.make n 0 in
  for _ = 1 to rounds do
    SW.step rng t;
    for i = 0 to SW.occupied_count t - 1 do
      let v = SW.occupied_vertex t i in
      acc.(v) <- acc.(v) + SW.uninformed_at t v + SW.informed_at t v
    done
  done;
  let expected = float_of_int k /. float_of_int n in
  Array.iteri
    (fun v s ->
      let mean = float_of_int s /. float_of_int rounds in
      if Float.abs (mean -. expected) > 0.15 *. expected then
        Alcotest.failf "vertex %d mean occupancy %.1f, expected %.1f" v mean
          expected)
    acc

let test_create_invalid () =
  let star9 = Gen.star ~leaves:8 in
  (try
     ignore
       (SW.create ~lazy_walk:false (Rng.of_int 95) star9 (Placement.Stationary 0));
     Alcotest.fail "zero agents accepted"
   with Invalid_argument _ -> ());
  (* a graph with an isolated vertex: 0-1 edge plus isolated 2 *)
  let g = Graph.of_edge_array ~n:3 [| (0, 1) |] in
  try
    ignore
      (SW.create ~lazy_walk:false (Rng.of_int 96) g (Placement.All_at (2, 4)));
    Alcotest.fail "isolated-vertex placement accepted"
  with Invalid_argument _ -> ()

let test_mode_strings () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "round trip" true
        (SW.mode_of_string (SW.mode_to_string m) = Some m))
    [ SW.Dense; SW.Sparse; SW.Auto ];
  Alcotest.(check bool) "unknown" true (SW.mode_of_string "bogus" = None)

let test_use_sparse () =
  let g = Gen.complete 10 in
  Alcotest.(check bool) "dense" false
    (SW.use_sparse SW.Dense (Placement.Stationary 1_000_000) g);
  Alcotest.(check bool) "sparse" true
    (SW.use_sparse SW.Sparse (Placement.Stationary 1) g);
  Alcotest.(check bool) "auto small" false
    (SW.use_sparse SW.Auto (Placement.Stationary (SW.auto_threshold - 1)) g);
  Alcotest.(check bool) "auto large" true
    (SW.use_sparse SW.Auto (Placement.Stationary SW.auto_threshold) g)

let suite =
  [
    Alcotest.test_case "conservation and canonical occupancy" `Quick
      test_conservation;
    Alcotest.test_case "inform_all_at" `Quick test_inform_all_at;
    Alcotest.test_case "occupancy stationarity on regular" `Quick
      test_occupancy_stationarity;
    Alcotest.test_case "create validation" `Quick test_create_invalid;
    Alcotest.test_case "mode strings" `Quick test_mode_strings;
    Alcotest.test_case "use_sparse resolution" `Quick test_use_sparse;
  ]
