(* Tests for Rumor_protocols.Async_engine: the calendar-queue/batched-clock
   kernels must be bit-identical to the legacy Async_push /
   Async_meet_exchange modules on the same seed — results, curves, and the
   full observation stream — for either queue backend and any batch. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Gen = Rumor_graph.Gen_basic
module Gen_random = Rumor_graph.Gen_random
module Placement = Rumor_agents.Placement
module P = Rumor_protocols
module Async_engine = Rumor_protocols.Async_engine
module Instrument = Rumor_obs.Instrument

let families () =
  [
    ("complete16", Gen.complete 16);
    ("torus6x6", Gen.torus ~rows:6 ~cols:6);
    ("path12", Gen.path 12);
    ("star9", Gen.star ~leaves:9);
    ("er40", Gen_random.erdos_renyi (Rng.of_int 4242) ~n:40 ~p:0.15);
    ("reg3x20", Gen_random.random_regular_connected (Rng.of_int 777) ~n:20 ~d:3);
  ]

let seeds = [ 1; 42; 9001 ]
let queues = [ ("heap", Async_engine.Heap); ("calendar", Async_engine.Calendar) ]

let check_push_result label (a : P.Async_push.result) (b : P.Async_push.result) =
  Alcotest.(check (option (float 0.0)))
    (label ^ ": broadcast_time") a.P.Async_push.broadcast_time
    b.P.Async_push.broadcast_time;
  Alcotest.(check int) (label ^ ": rings") a.P.Async_push.rings b.P.Async_push.rings;
  Alcotest.(check int)
    (label ^ ": informed") a.P.Async_push.informed b.P.Async_push.informed;
  Alcotest.(check (array int))
    (label ^ ": curve") a.P.Async_push.curve b.P.Async_push.curve

let check_meet_result label (a : P.Async_meet_exchange.result)
    (b : P.Async_meet_exchange.result) =
  Alcotest.(check (option (float 0.0)))
    (label ^ ": broadcast_time") a.P.Async_meet_exchange.broadcast_time
    b.P.Async_meet_exchange.broadcast_time;
  Alcotest.(check int)
    (label ^ ": rings") a.P.Async_meet_exchange.rings b.P.Async_meet_exchange.rings;
  Alcotest.(check int)
    (label ^ ": informed") a.P.Async_meet_exchange.informed
    b.P.Async_meet_exchange.informed;
  Alcotest.(check int)
    (label ^ ": agents") a.P.Async_meet_exchange.agents b.P.Async_meet_exchange.agents;
  Alcotest.(check (array int))
    (label ^ ": curve") a.P.Async_meet_exchange.curve b.P.Async_meet_exchange.curve

(* records the exact hook-event sequence, not just counts *)
let stream_obs () =
  let events = ref [] in
  let obs =
    Instrument.make
      ~on_contact:(fun u v -> events := (0, u, v, 0) :: !events)
      ~on_walker_move:(fun ~agent ~from_ ~to_ ->
        events := (1, agent, from_, to_) :: !events)
      ()
  in
  (obs, events)

(* ------------------------------------------ push / push-pull bit-identity *)

let test_push_matches_legacy () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          List.iter
            (fun variant ->
              let legacy_obs, legacy_events = stream_obs () in
              let legacy =
                P.Async_push.run ~obs:legacy_obs (Rng.of_int seed) g ~variant
                  ~source:0 ~max_time:1e6
              in
              List.iter
                (fun (qname, queue) ->
                  let engine_obs, engine_events = stream_obs () in
                  let engine =
                    Async_engine.push ~obs:engine_obs ~queue (Rng.of_int seed) g
                      ~variant ~source:0 ~max_time:1e6
                  in
                  let label = Printf.sprintf "%s %s seed=%d" name qname seed in
                  check_push_result label legacy engine;
                  Alcotest.(check bool)
                    (label ^ ": obs stream") true
                    (!legacy_events = !engine_events))
                queues)
            [ P.Async_push.Async_push; P.Async_push.Async_push_pull ])
        seeds)
    (families ())

let test_push_capped_matches_legacy () =
  (* a short horizon exercises the cap path and its curve padding *)
  let g = Gen.path 12 in
  List.iter
    (fun seed ->
      let legacy =
        P.Async_push.run (Rng.of_int seed) g ~variant:P.Async_push.Async_push
          ~source:0 ~max_time:2.5
      in
      let engine =
        Async_engine.push (Rng.of_int seed) g ~variant:P.Async_push.Async_push
          ~source:0 ~max_time:2.5
      in
      check_push_result (Printf.sprintf "capped seed=%d" seed) legacy engine;
      Alcotest.(check bool) "capped run" true
        (Option.is_none engine.P.Async_push.broadcast_time))
    seeds

let test_push_batch_independent () =
  let g = Gen_random.erdos_renyi (Rng.of_int 5) ~n:48 ~p:0.2 in
  let run batch =
    Async_engine.push ~batch (Rng.of_int 31) g ~variant:P.Async_push.Async_push
      ~source:0 ~max_time:1e6
  in
  let reference = run 4096 in
  List.iter
    (fun batch ->
      check_push_result (Printf.sprintf "batch=%d" batch) reference (run batch))
    [ 1; 7; 65536 ]

(* ------------------------------------------------ meet-exchange identity *)

let agent_specs = [ Placement.Stationary 12; Placement.One_per_vertex ]

let test_meet_exchange_matches_legacy () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          List.iter
            (fun agents ->
              (* omitted lazy_walk exercises the bipartite auto-default in
                 both implementations *)
              let legacy_obs, legacy_events = stream_obs () in
              let legacy =
                P.Async_meet_exchange.run ~obs:legacy_obs (Rng.of_int seed) g
                  ~source:0 ~agents ~max_time:20_000.0
              in
              List.iter
                (fun (qname, queue) ->
                  let engine_obs, engine_events = stream_obs () in
                  let engine =
                    Async_engine.meet_exchange ~obs:engine_obs ~queue
                      (Rng.of_int seed) g ~source:0 ~agents ~max_time:20_000.0
                  in
                  let label = Printf.sprintf "me %s %s seed=%d" name qname seed in
                  check_meet_result label legacy engine;
                  Alcotest.(check bool)
                    (label ^ ": obs stream") true
                    (!legacy_events = !engine_events))
                queues)
            agent_specs)
        seeds)
    (families ())

let test_meet_exchange_lazy_override_matches () =
  (* K2 with lazy off is the parity-trap family the async model resolves;
     lazy on exercises the stay coin on the shared rng *)
  let g = Gen.complete 2 in
  List.iter
    (fun lazy_walk ->
      List.iter
        (fun seed ->
          let legacy =
            P.Async_meet_exchange.run ~lazy_walk (Rng.of_int seed) g ~source:0
              ~agents:Placement.One_per_vertex ~max_time:20_000.0
          in
          let engine =
            Async_engine.meet_exchange ~lazy_walk (Rng.of_int seed) g ~source:0
              ~agents:Placement.One_per_vertex ~max_time:20_000.0
          in
          check_meet_result
            (Printf.sprintf "K2 lazy=%b seed=%d" lazy_walk seed)
            legacy engine)
        seeds)
    [ false; true ]

let test_meet_exchange_batch_independent () =
  let g = Gen.torus ~rows:5 ~cols:5 in
  let run batch =
    Async_engine.meet_exchange ~batch (Rng.of_int 23) g ~source:0
      ~agents:(Placement.Stationary 10) ~max_time:20_000.0
  in
  let reference = run 4096 in
  List.iter
    (fun batch ->
      check_meet_result (Printf.sprintf "me batch=%d" batch) reference (run batch))
    [ 1; 7; 65536 ]

(* ------------------------------------------------- run_result projection *)

let test_to_run_result () =
  let g = Gen.complete 16 in
  let r =
    Async_engine.push (Rng.of_int 3) g ~variant:P.Async_push.Async_push ~source:0
      ~max_time:1e6
  in
  let rr = P.Async_push.to_run_result r in
  (match (r.P.Async_push.broadcast_time, rr.P.Run_result.broadcast_time) with
  | Some t, Some m ->
      Alcotest.(check int) "rounded up" (int_of_float (Float.ceil t)) m
  | _ -> Alcotest.fail "expected completion");
  let curve = rr.P.Run_result.informed_curve in
  Alcotest.(check int) "rounds_run is curve length - 1"
    (Array.length curve - 1) rr.P.Run_result.rounds_run;
  Alcotest.(check int) "curve starts at 1" 1 curve.(0);
  Alcotest.(check int) "curve ends informed" 16 curve.(Array.length curve - 1);
  Alcotest.(check int) "contacts = rings" r.P.Async_push.rings
    rr.P.Run_result.contacts;
  for i = 1 to Array.length curve - 1 do
    if curve.(i) < curve.(i - 1) then Alcotest.fail "curve not monotone"
  done

let test_queue_stats_out () =
  let g = Gen.torus ~rows:6 ~cols:6 in
  let stats = ref None in
  let (_ : P.Async_push.result) =
    Async_engine.push ~queue:Async_engine.Calendar ~stats (Rng.of_int 2) g
      ~variant:P.Async_push.Async_push ~source:0 ~max_time:1e6
  in
  (match !stats with
  | Some s ->
      Alcotest.(check bool) "buckets >= 16" true
        (s.Rumor_des.Calendar_queue.buckets >= 16);
      Alcotest.(check bool) "width positive" true
        (s.Rumor_des.Calendar_queue.width > 0.0)
  | None -> Alcotest.fail "calendar stats missing");
  let (_ : P.Async_push.result) =
    Async_engine.push ~queue:Async_engine.Heap ~stats (Rng.of_int 2) g
      ~variant:P.Async_push.Async_push ~source:0 ~max_time:1e6
  in
  Alcotest.(check bool) "no stats on heap" true (Option.is_none !stats)

(* ----------------------------------------------------------- validation *)

let test_validation () =
  let g = Gen.complete 4 in
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad source" true
    (bad (fun () ->
         Async_engine.push (Rng.of_int 1) g ~variant:P.Async_push.Async_push
           ~source:9 ~max_time:10.0));
  Alcotest.(check bool) "bad max_time" true
    (bad (fun () ->
         Async_engine.push (Rng.of_int 1) g ~variant:P.Async_push.Async_push
           ~source:0 ~max_time:0.0));
  Alcotest.(check bool) "bad batch" true
    (bad (fun () ->
         Async_engine.push ~batch:0 (Rng.of_int 1) g
           ~variant:P.Async_push.Async_push ~source:0 ~max_time:10.0));
  Alcotest.(check bool) "meet bad source" true
    (bad (fun () ->
         Async_engine.meet_exchange (Rng.of_int 1) g ~source:(-1)
           ~agents:Placement.One_per_vertex ~max_time:10.0));
  Alcotest.(check bool) "meet bad batch" true
    (bad (fun () ->
         Async_engine.meet_exchange ~batch:(-3) (Rng.of_int 1) g ~source:0
           ~agents:Placement.One_per_vertex ~max_time:10.0))

(* The sparse meet-exchange path uses one aggregate rate-k clock over a
   Fenwick occupancy index; it is seed-deterministic but not bit-identical
   to the dense per-agent-clock path, so we check completion, conservation
   of the agent count, and determinism. *)
let test_meet_exchange_sparse () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun seed ->
          let run () =
            Async_engine.meet_exchange ~walkers:P.Sparse_walkers.Sparse
              (Rng.of_int seed) g ~source:0 ~agents:(Placement.Stationary 14)
              ~max_time:1e6
          in
          let r = run () in
          Alcotest.(check bool)
            (Printf.sprintf "sparse %s seed=%d: completes" name seed)
            true
            (r.P.Async_meet_exchange.broadcast_time <> None);
          Alcotest.(check int)
            (name ^ ": agent count") 14 r.P.Async_meet_exchange.agents;
          Alcotest.(check int)
            (name ^ ": all agents informed") 14 r.P.Async_meet_exchange.informed;
          check_meet_result (Printf.sprintf "sparse %s seed=%d" name seed) r
            (run ()))
        seeds)
    (families ())

let suite =
  [
    Alcotest.test_case "push/push-pull match legacy (queues, obs)" `Quick
      test_push_matches_legacy;
    Alcotest.test_case "capped push matches legacy" `Quick
      test_push_capped_matches_legacy;
    Alcotest.test_case "push is batch-independent" `Quick test_push_batch_independent;
    Alcotest.test_case "meet-exchange matches legacy (queues, obs)" `Quick
      test_meet_exchange_matches_legacy;
    Alcotest.test_case "meet-exchange lazy override matches" `Quick
      test_meet_exchange_lazy_override_matches;
    Alcotest.test_case "meet-exchange is batch-independent" `Quick
      test_meet_exchange_batch_independent;
    Alcotest.test_case "sparse meet-exchange completes deterministically" `Quick
      test_meet_exchange_sparse;
    Alcotest.test_case "to_run_result projection" `Quick test_to_run_result;
    Alcotest.test_case "calendar stats out-parameter" `Quick test_queue_stats_out;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
