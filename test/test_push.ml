(* Tests for Rumor_protocols.Push. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Gen = Rumor_graph.Gen_basic
module Algo = Rumor_graph.Algo
module Push = Rumor_protocols.Push
module Run_result = Rumor_protocols.Run_result

let run ?traffic seed g source =
  Push.run ?traffic (Rng.of_int seed) g ~source ~max_rounds:1_000_000 ()

let test_k2_exact () =
  let g = Gen.complete 2 in
  let r = run 101 g 0 in
  Alcotest.(check (option int)) "K2 takes exactly 1 round" (Some 1) r.Run_result.broadcast_time;
  Alcotest.(check int) "one contact" 1 r.Run_result.contacts

let test_single_vertex () =
  let g = Graph.of_edges ~n:1 [] in
  let r = run 102 g 0 in
  Alcotest.(check (option int)) "already done" (Some 0) r.Run_result.broadcast_time;
  Alcotest.(check int) "no rounds" 0 r.Run_result.rounds_run

let test_completes_on_complete_graph () =
  let g = Gen.complete 64 in
  let r = run 103 g 5 in
  Alcotest.(check bool) "completed" true (Run_result.completed r);
  (* push doubles the informed set at best: at least log2 n rounds *)
  Alcotest.(check bool) "at least log2 n" true (Run_result.time_exn r >= 6)

let test_broadcast_time_at_least_eccentricity () =
  List.iter
    (fun (g, s) ->
      let r = run 104 g s in
      let ecc = Algo.eccentricity g s in
      Alcotest.(check bool)
        (Printf.sprintf "T=%d >= ecc=%d" (Run_result.time_exn r) ecc)
        true
        (Run_result.time_exn r >= ecc))
    [
      (Gen.path 20, 0);
      (Gen.cycle 15, 3);
      (Gen.torus ~rows:5 ~cols:5, 0);
      (Gen.complete_binary_tree ~levels:5, 0);
    ]

let test_informed_curve_shape () =
  let g = Gen.complete 32 in
  let r = run 105 g 0 in
  let curve = r.Run_result.informed_curve in
  Alcotest.(check int) "starts at 1" 1 curve.(0);
  Alcotest.(check int) "ends at n" 32 curve.(Array.length curve - 1);
  Alcotest.(check int) "length = rounds + 1" (r.Run_result.rounds_run + 1)
    (Array.length curve);
  for i = 1 to Array.length curve - 1 do
    if curve.(i) < curve.(i - 1) then Alcotest.fail "curve not monotone";
    (* each informed vertex informs at most one new vertex per round *)
    if curve.(i) > 2 * curve.(i - 1) then Alcotest.fail "curve more than doubled"
  done

let test_contacts_counted () =
  (* every previously informed vertex sends exactly one message per round *)
  let g = Gen.complete 16 in
  let r = run 106 g 0 in
  let curve = r.Run_result.informed_curve in
  let expected = ref 0 in
  for i = 0 to Array.length curve - 2 do
    expected := !expected + curve.(i)
  done;
  Alcotest.(check int) "contacts = sum of active counts" !expected r.Run_result.contacts

let test_round_cap () =
  let g = Gen.path 100 in
  let r = Push.run (Rng.of_int 107) g ~source:0 ~max_rounds:5 () in
  Alcotest.(check (option int)) "capped" None r.Run_result.broadcast_time;
  Alcotest.(check int) "ran exactly cap" 5 r.Run_result.rounds_run;
  Alcotest.(check bool) "time_exn raises" true
    (try
       ignore (Run_result.time_exn r);
       false
     with Invalid_argument _ -> true)

let test_zero_cap () =
  let g = Gen.complete 4 in
  let r = Push.run (Rng.of_int 108) g ~source:0 ~max_rounds:0 () in
  Alcotest.(check (option int)) "capped immediately" None r.Run_result.broadcast_time

let test_source_out_of_range () =
  let g = Gen.complete 4 in
  try
    ignore (run 109 g 7);
    Alcotest.fail "bad source accepted"
  with Invalid_argument _ -> ()

let test_informed_times () =
  let g = Gen.star ~leaves:6 in
  let tau = Push.informed_times (Rng.of_int 110) g ~source:0 ~max_rounds:100_000 in
  Alcotest.(check int) "source at round 0" 0 tau.(0);
  Array.iteri
    (fun v t ->
      if t = max_int then Alcotest.failf "vertex %d never informed" v;
      if v <> 0 && t < 1 then Alcotest.failf "leaf %d informed too early" v)
    tau;
  (* informing times on the star are distinct for leaves: center pushes to
     exactly one leaf per round *)
  let times = Array.to_list (Array.sub tau 1 6) in
  Alcotest.(check int) "distinct leaf times" 6
    (List.length (List.sort_uniq Int.compare times))

let test_star_push_is_coupon_collector_slow () =
  (* E[T] = n H_n; with n = 64 leaves that is ~ 300, far above log n *)
  let g = Gen.star ~leaves:64 in
  let total = ref 0 in
  for seed = 1 to 10 do
    total := !total + Run_result.time_exn (run (1100 + seed) g 0)
  done;
  let mean = float_of_int !total /. 10.0 in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.0f is >> log n" mean)
    true (mean > 100.0)

let test_failure_prob_zero_matches_plain () =
  let g = Gen.complete 32 in
  let r1 = Push.run (Rng.of_int 113) g ~source:0 ~max_rounds:100_000 () in
  let r2 =
    Push.run ~failure_prob:0.0 (Rng.of_int 113) g ~source:0 ~max_rounds:100_000 ()
  in
  Alcotest.(check (option int)) "identical stream with p = 0"
    r1.Run_result.broadcast_time r2.Run_result.broadcast_time

let test_failure_prob_slows_by_inverse_rate () =
  (* with each transmission lost w.p. p, effective progress scales by
     (1 - p): [22]'s robustness result.  Check the mean ratio is in a
     generous band around 1 / (1 - p). *)
  let g = Gen.complete 128 in
  let mean failure_prob =
    let total = ref 0 in
    for seed = 0 to 19 do
      let r =
        Push.run ~failure_prob (Rng.of_int (1140 + seed)) g ~source:0
          ~max_rounds:100_000 ()
      in
      total := !total + Run_result.time_exn r
    done;
    float_of_int !total /. 20.0
  in
  let t0 = mean 0.0 and t_half = mean 0.5 in
  let ratio = t_half /. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f within [1.3, 3.0]" ratio)
    true
    (ratio > 1.3 && ratio < 3.0)

let test_failure_prob_invalid () =
  let g = Gen.complete 4 in
  try
    ignore (Push.run ~failure_prob:1.0 (Rng.of_int 115) g ~source:0 ~max_rounds:10 ());
    Alcotest.fail "p = 1 accepted"
  with Invalid_argument _ -> ()

let test_deterministic_given_seed () =
  let g = Gen.torus ~rows:6 ~cols:6 in
  let r1 = run 111 g 0 and r2 = run 111 g 0 in
  Alcotest.(check (option int)) "same broadcast time" r1.Run_result.broadcast_time
    r2.Run_result.broadcast_time;
  Alcotest.(check int) "same contacts" r1.Run_result.contacts r2.Run_result.contacts

let test_traffic_recording () =
  let g = Gen.complete 8 in
  let traffic = Rumor_protocols.Traffic.create g in
  let r = run ~traffic 112 g 0 in
  Alcotest.(check int) "one traffic record per contact" r.Run_result.contacts
    (Rumor_protocols.Traffic.total traffic)

let prop_completes_on_connected_regular =
  QCheck.Test.make ~count:20 ~name:"push completes on random regular graphs"
    QCheck.(int_range 4 40)
    (fun half ->
      let n = 2 * half in
      let rng = Rng.of_int (n * 13) in
      let g = Rumor_graph.Gen_random.random_regular_connected rng ~n ~d:3 in
      let r = Push.run rng g ~source:0 ~max_rounds:100_000 () in
      Run_result.completed r)

let suite =
  [
    Alcotest.test_case "K2 exact" `Quick test_k2_exact;
    Alcotest.test_case "single vertex" `Quick test_single_vertex;
    Alcotest.test_case "complete graph" `Quick test_completes_on_complete_graph;
    Alcotest.test_case "time >= eccentricity" `Quick test_broadcast_time_at_least_eccentricity;
    Alcotest.test_case "informed curve shape" `Quick test_informed_curve_shape;
    Alcotest.test_case "contacts counted" `Quick test_contacts_counted;
    Alcotest.test_case "round cap" `Quick test_round_cap;
    Alcotest.test_case "zero cap" `Quick test_zero_cap;
    Alcotest.test_case "source out of range" `Quick test_source_out_of_range;
    Alcotest.test_case "informed times" `Quick test_informed_times;
    Alcotest.test_case "star is coupon-collector slow" `Quick
      test_star_push_is_coupon_collector_slow;
    Alcotest.test_case "failure prob 0 is plain push" `Quick
      test_failure_prob_zero_matches_plain;
    Alcotest.test_case "failures slow by ~1/(1-p)" `Quick
      test_failure_prob_slows_by_inverse_rate;
    Alcotest.test_case "failure prob validation" `Quick test_failure_prob_invalid;
    Alcotest.test_case "deterministic by seed" `Quick test_deterministic_given_seed;
    Alcotest.test_case "traffic recording" `Quick test_traffic_recording;
    QCheck_alcotest.to_alcotest prop_completes_on_connected_regular;
  ]
