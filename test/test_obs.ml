(* Tests for Rumor_obs: instrument hooks, run records, and the metrics
   wiring through Replicate. *)

module Rng = Rumor_prob.Rng
module Gen = Rumor_graph.Gen_basic
module P = Rumor_protocols
module Obs = Rumor_obs.Instrument
module Run_record = Rumor_obs.Run_record
module Replicate = Rumor_sim.Replicate
module Protocol = Rumor_sim.Protocol

let check_monotone name curve =
  Array.iteri
    (fun i x ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "%s: curve.(%d) >= curve.(%d)" name i (i - 1))
          true
          (x >= curve.(i - 1)))
    curve

(* --- hooks fire exactly rounds_run times ----------------------------- *)

let test_hooks_fire_rounds_run () =
  List.iter
    (fun (name, spec) ->
      let rec_ = Obs.Recorder.create () in
      let r =
        Protocol.run ~obs:(Obs.Recorder.instrument rec_) spec (Rng.of_int 42)
          (Gen.complete 24) ~source:0 ~max_rounds:10_000
      in
      Alcotest.(check int)
        (name ^ ": round_start count")
        r.P.Run_result.rounds_run
        (Obs.Recorder.rounds_started rec_);
      Alcotest.(check int)
        (name ^ ": round_end count")
        r.P.Run_result.rounds_run
        (Obs.Recorder.rounds_ended rec_))
    [
      ("push", Protocol.push);
      ("push-pull", Protocol.push_pull);
      ("pull", Protocol.pull);
      ("quasi-push", Protocol.quasi_push);
      ("cobra", Protocol.cobra ());
      ("frog", Protocol.frog ());
      ("flood", Protocol.flood);
      ("visit-exchange", Protocol.visit_exchange ());
      ("meet-exchange", Protocol.meet_exchange ());
      ("combined", Protocol.combined ());
    ]

let test_recorder_matches_run_result () =
  let rec_ = Obs.Recorder.create () in
  let r =
    P.Push.run ~obs:(Obs.Recorder.instrument rec_) (Rng.of_int 7)
      (Gen.complete 32) ~source:0 ~max_rounds:10_000 ()
  in
  (* Run_result's curve has the round-0 state prepended *)
  let expected = Array.sub r.P.Run_result.informed_curve 1 r.P.Run_result.rounds_run in
  Alcotest.(check (array int)) "recorder curve = result curve tail" expected
    (Obs.Recorder.curve rec_);
  Alcotest.(check int) "contacts seen = contacts counted"
    r.P.Run_result.contacts (Obs.Recorder.contacts rec_);
  Alcotest.(check (option int)) "last informed = n" (Some 32)
    (Obs.Recorder.last_informed rec_)

let test_curves_monotone () =
  List.iter
    (fun (name, spec) ->
      let rec_ = Obs.Recorder.create () in
      let _ =
        Protocol.run ~obs:(Obs.Recorder.instrument rec_) spec (Rng.of_int 11)
          (Gen.cycle 64) ~source:0 ~max_rounds:100_000
      in
      check_monotone name (Obs.Recorder.curve rec_))
    [ ("push", Protocol.push); ("push-pull", Protocol.push_pull) ]

let test_pair_duplicates_hooks () =
  (* a paired instrument must drive both recorders identically — and the
     pair must see exactly what a single recorder would *)
  let rec_a = Obs.Recorder.create () and rec_b = Obs.Recorder.create () in
  let solo = Obs.Recorder.create () in
  let run obs =
    P.Visit_exchange.run ~obs (Rng.of_int 13) (Gen.complete 12) ~source:0
      ~agents:(Rumor_agents.Placement.Stationary 12) ~max_rounds:10_000 ()
  in
  let paired =
    run (Obs.pair (Obs.Recorder.instrument rec_a) (Obs.Recorder.instrument rec_b))
  in
  let alone = run (Obs.Recorder.instrument solo) in
  Alcotest.(check (option int)) "same broadcast time"
    alone.P.Run_result.broadcast_time paired.P.Run_result.broadcast_time;
  List.iter
    (fun (name, r) ->
      Alcotest.(check int)
        (name ^ ": rounds started")
        (Obs.Recorder.rounds_started solo)
        (Obs.Recorder.rounds_started r);
      Alcotest.(check int)
        (name ^ ": contacts")
        (Obs.Recorder.contacts solo) (Obs.Recorder.contacts r);
      Alcotest.(check int)
        (name ^ ": walker moves")
        (Obs.Recorder.walker_moves solo)
        (Obs.Recorder.walker_moves r);
      Alcotest.(check (array int))
        (name ^ ": curve")
        (Obs.Recorder.curve solo) (Obs.Recorder.curve r))
    [ ("left", rec_a); ("right", rec_b) ]

let test_pair_calls_left_then_right () =
  let order = ref [] in
  let tag name =
    Obs.make ~on_round_end:(fun ~round:_ ~informed:_ ~contacts:_ ->
        order := name :: !order) ()
  in
  (Obs.pair (tag "a") (tag "b")).Obs.on_round_end ~round:1 ~informed:1
    ~contacts:0;
  Alcotest.(check (list string)) "left fires before right" [ "a"; "b" ]
    (List.rev !order)

let test_nop_does_not_change_result () =
  let run obs =
    P.Push_pull.run ?obs (Rng.of_int 97) (Gen.complete 40) ~source:0
      ~max_rounds:10_000 ()
  in
  let plain = run None and instrumented = run (Some Obs.nop) in
  Alcotest.(check (option int)) "same broadcast time"
    plain.P.Run_result.broadcast_time instrumented.P.Run_result.broadcast_time;
  Alcotest.(check int) "same contacts" plain.P.Run_result.contacts
    instrumented.P.Run_result.contacts

let test_walker_moves_counted () =
  let rec_ = Obs.Recorder.create () in
  let r =
    P.Visit_exchange.run ~obs:(Obs.Recorder.instrument rec_) (Rng.of_int 3)
      (Gen.complete 16) ~source:0 ~agents:(Rumor_agents.Placement.Stationary 16)
      ~max_rounds:10_000 ()
  in
  (* 16 agents each step once per round *)
  Alcotest.(check int) "one move per agent per round"
    (16 * r.P.Run_result.rounds_run)
    (Obs.Recorder.walker_moves rec_)

(* --- lazy-walk default on bipartite graphs --------------------------- *)

let test_meetx_even_cycle_terminates () =
  (* an even cycle is bipartite: the old non-lazy default could trap agents
     in parity classes forever; the Lazy_auto default must terminate *)
  let r =
    P.Meet_exchange.run (Rng.of_int 5) (Gen.cycle 16) ~source:0
      ~agents:(Rumor_agents.Placement.Stationary 8) ~max_rounds:200_000 ()
  in
  Alcotest.(check bool) "completes under the bipartite-aware default" true
    (r.P.Run_result.broadcast_time <> None)

let test_async_meetx_k2_default () =
  let g = Gen.complete 2 in
  let r =
    P.Async_meet_exchange.run (Rng.of_int 6) g ~source:0
      ~agents:(Rumor_agents.Placement.Stationary 2) ~max_time:1e6
  in
  Alcotest.(check bool) "continuous K2 completes" true
    (r.P.Async_meet_exchange.broadcast_time <> None)

(* --- run records ------------------------------------------------------ *)

let sample_record =
  {
    Run_record.seed = 218;
    rep = 3;
    graph = "star:8";
    protocol = "push";
    vertices = 8;
    broadcast_time = Some 5;
    rounds_run = 5;
    capped = false;
    contacts = 40;
    informed_curve = [| 1; 2; 4; 8 |];
    wall_seconds = 0.125;
    gc = { Run_record.minor_words = 10.0; major_words = 2.0; promoted_words = 1.0 };
    engine = false;
    shards = 1;
  }

let test_record_json_fields () =
  let json = Run_record.to_json sample_record in
  List.iter
    (fun fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "%S contains %S" json fragment)
        true
        (let fl = String.length fragment and jl = String.length json in
         let rec scan i = i + fl <= jl && (String.sub json i fl = fragment || scan (i + 1)) in
         scan 0))
    [
      "\"seed\":218";
      "\"rep\":3";
      "\"graph\":\"star:8\"";
      "\"protocol\":\"push\"";
      "\"vertices\":8";
      "\"broadcast_time\":5";
      "\"capped\":false";
      "\"informed_curve\":[1,2,4,8]";
      "\"minor_words\":";
    ];
  Alcotest.(check bool) "single line" true
    (not (String.contains json '\n'))

let test_record_json_null_when_capped () =
  let json =
    Run_record.to_json
      { sample_record with Run_record.broadcast_time = None; capped = true }
  in
  let contains fragment =
    let fl = String.length fragment and jl = String.length json in
    let rec scan i = i + fl <= jl && (String.sub json i fl = fragment || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "null broadcast_time" true
    (contains "\"broadcast_time\":null");
  Alcotest.(check bool) "capped true" true (contains "\"capped\":true")

(* The engine/shards fields round-trip through to_json/of_json, and a
   record written before they existed still parses (absent reads as the
   legacy path: engine false, shards 1). *)
let test_record_engine_fields_roundtrip () =
  let r = { sample_record with Run_record.engine = true; shards = 4 } in
  match Run_record.of_json (Run_record.to_json r) with
  | Error msg -> Alcotest.failf "round-trip: %s" msg
  | Ok back ->
      Alcotest.(check bool) "engine" true back.Run_record.engine;
      Alcotest.(check int) "shards" 4 back.Run_record.shards;
      Alcotest.(check string) "full round-trip" (Run_record.to_json r)
        (Run_record.to_json back)

let test_record_engine_fields_absent () =
  let json = Run_record.to_json sample_record in
  (* strip the trailing ,"engine":...,"shards":...} to get a legacy line *)
  let cut =
    match String.index_opt json ',' with
    | None -> Alcotest.fail "unexpected JSON shape"
    | Some _ ->
        let marker = ",\"engine\":" in
        let ml = String.length marker in
        let jl = String.length json in
        let rec find i =
          if i + ml > jl then Alcotest.fail "no engine field emitted"
          else if String.sub json i ml = marker then i
          else find (i + 1)
        in
        String.sub json 0 (find 0) ^ "}"
  in
  match Run_record.of_json cut with
  | Error msg -> Alcotest.failf "legacy record rejected: %s" msg
  | Ok back ->
      Alcotest.(check bool) "engine defaults false" false back.Run_record.engine;
      Alcotest.(check int) "shards defaults 1" 1 back.Run_record.shards

let test_jsonl_file_roundtrip () =
  let path = Filename.temp_file "rumor_obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Run_record.with_jsonl_file path (fun sink ->
          sink sample_record;
          sink { sample_record with Run_record.rep = 4 });
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      Alcotest.(check int) "two lines" 2 (List.length !lines);
      List.iter
        (fun l ->
          Alcotest.(check bool) "line is a JSON object" true
            (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        !lines)

let count_lines path =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> close_in ic);
  !n

let test_jsonl_append_flag () =
  let path = Filename.temp_file "rumor_obs_append" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Run_record.with_jsonl_file path (fun sink ->
          sink sample_record;
          sink sample_record);
      Run_record.with_jsonl_file ~append:true path (fun sink ->
          sink { sample_record with Run_record.rep = 4 });
      Alcotest.(check int) "append keeps earlier records" 3 (count_lines path);
      Alcotest.(check int) "appended records read back" 3
        (List.length (Run_record.read_jsonl path));
      Run_record.with_jsonl_file path (fun sink -> sink sample_record);
      Alcotest.(check int) "default truncates" 1 (count_lines path))

(* --- Replicate wiring ------------------------------------------------- *)

let test_sink_gets_one_record_per_rep () =
  let records = ref [] in
  let m =
    Replicate.broadcast_times
      ~sink:(fun r -> records := r :: !records)
      ~graph_name:"complete:16" ~seed:218 ~reps:5
      ~graph:(fun _rng -> (Gen.complete 16, 0))
      ~spec:Protocol.push ~max_rounds:10_000 ()
  in
  let records = List.rev !records in
  Alcotest.(check int) "five records" 5 (List.length records);
  List.iteri
    (fun i (r : Run_record.t) ->
      Alcotest.(check int) "rep index" i r.Run_record.rep;
      Alcotest.(check int) "seed recorded" 218 r.Run_record.seed;
      Alcotest.(check string) "graph label" "complete:16" r.Run_record.graph;
      Alcotest.(check string) "protocol name" "push" r.Run_record.protocol;
      Alcotest.(check int) "vertices" 16 r.Run_record.vertices;
      Alcotest.(check bool) "not capped" false r.Run_record.capped;
      Alcotest.(check bool) "wall clock non-negative" true
        (r.Run_record.wall_seconds >= 0.0);
      Alcotest.(check bool) "allocated something" true
        (r.Run_record.gc.Run_record.minor_words >= 0.0);
      check_monotone "record curve" r.Run_record.informed_curve)
    records;
  (* times must agree with the records' broadcast times *)
  List.iteri
    (fun i (r : Run_record.t) ->
      match r.Run_record.broadcast_time with
      | Some t ->
          Alcotest.(check (float 1e-9)) "times matches record" (float_of_int t)
            m.Replicate.times.(i)
      | None -> Alcotest.fail "unexpected capped run")
    records

let capped_push ~trace:_ ~rep:_ rng =
  P.Push.run rng (Gen.path 50) ~source:0 ~max_rounds:2 ()

let test_on_capped_keep_default () =
  let m = Replicate.measure ~seed:216 ~reps:4 capped_push in
  Alcotest.(check int) "all counted as capped" 4 m.Replicate.capped

let test_on_capped_fail_raises () =
  match Replicate.measure ~on_capped:`Fail ~seed:216 ~reps:4 capped_push with
  | exception Replicate.Capped { rep; rounds_run } ->
      Alcotest.(check int) "first rep raises" 0 rep;
      Alcotest.(check int) "cap recorded" 2 rounds_run
  | _ -> Alcotest.fail "expected Replicate.Capped"

let test_record_sees_capped_runs () =
  let capped_flags = ref [] in
  let m =
    Replicate.broadcast_times
      ~sink:(fun r -> capped_flags := r.Run_record.capped :: !capped_flags)
      ~seed:216 ~reps:3
      ~graph:(fun _rng -> (Gen.path 50, 0))
      ~spec:Protocol.push ~max_rounds:2 ()
  in
  Alcotest.(check int) "measurement counts caps" 3 m.Replicate.capped;
  Alcotest.(check (list bool)) "records flag caps" [ true; true; true ]
    !capped_flags

let suite =
  [
    Alcotest.test_case "hooks fire rounds_run times" `Quick
      test_hooks_fire_rounds_run;
    Alcotest.test_case "recorder matches run result" `Quick
      test_recorder_matches_run_result;
    Alcotest.test_case "curves monotone" `Quick test_curves_monotone;
    Alcotest.test_case "pair duplicates hooks" `Quick test_pair_duplicates_hooks;
    Alcotest.test_case "pair calls left then right" `Quick
      test_pair_calls_left_then_right;
    Alcotest.test_case "nop obs preserves results" `Quick
      test_nop_does_not_change_result;
    Alcotest.test_case "walker moves counted" `Quick test_walker_moves_counted;
    Alcotest.test_case "meet-exchange terminates on even cycle" `Quick
      test_meetx_even_cycle_terminates;
    Alcotest.test_case "async meet-exchange K2 default" `Quick
      test_async_meetx_k2_default;
    Alcotest.test_case "record JSON fields" `Quick test_record_json_fields;
    Alcotest.test_case "record JSON capped null" `Quick
      test_record_json_null_when_capped;
    Alcotest.test_case "record engine fields roundtrip" `Quick
      test_record_engine_fields_roundtrip;
    Alcotest.test_case "record engine fields absent" `Quick
      test_record_engine_fields_absent;
    Alcotest.test_case "JSONL file roundtrip" `Quick test_jsonl_file_roundtrip;
    Alcotest.test_case "JSONL append flag" `Quick test_jsonl_append_flag;
    Alcotest.test_case "sink gets one record per rep" `Quick
      test_sink_gets_one_record_per_rep;
    Alcotest.test_case "on_capped keep default" `Quick test_on_capped_keep_default;
    Alcotest.test_case "on_capped fail raises" `Quick test_on_capped_fail_raises;
    Alcotest.test_case "records see capped runs" `Quick
      test_record_sees_capped_runs;
  ]
