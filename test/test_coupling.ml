(* Tests for Rumor_protocols.Coupling: the Section 5 proof machinery.

   These tests check the *exact* invariants the paper proves:
   - Lemma 13: tau_u <= C_u(t_u) for every vertex, on every instance.
   - Lemma 14: the canonical walk to u has congestion exactly C_u(t_u).
   The invariants are deterministic consequences of the coupling, so they
   must hold on every seed, not just with high probability. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Gen = Rumor_graph.Gen_basic
module Gen_random = Rumor_graph.Gen_random
module Placement = Rumor_agents.Placement
module Coupling = Rumor_protocols.Coupling

let couple ?(record_history = false) ?(agents = Placement.Linear 1.0) seed g source =
  let c = Coupling.create (Rng.of_int seed) g ~source in
  let o = Coupling.run_visit_exchange ~record_history c ~agents ~max_rounds:100_000 in
  (c, o)

let test_shared_choice_memoized () =
  let g = Gen.complete 10 in
  let c = Coupling.create (Rng.of_int 181) g ~source:0 in
  for u = 0 to 9 do
    for i = 0 to 20 do
      let v1 = Coupling.shared_choice c u i in
      let v2 = Coupling.shared_choice c u i in
      Alcotest.(check int) "memoized" v1 v2;
      Alcotest.(check bool) "is a neighbor" true (Graph.mem_edge g u v1)
    done
  done

let test_shared_choice_uniform () =
  let g = Gen.star ~leaves:4 in
  let c = Coupling.create (Rng.of_int 182) g ~source:0 in
  let counts = Array.make 5 0 in
  for i = 0 to 19_999 do
    let v = Coupling.shared_choice c 0 i in
    counts.(v) <- counts.(v) + 1
  done;
  for leaf = 1 to 4 do
    let p = float_of_int counts.(leaf) /. 20_000.0 in
    if Float.abs (p -. 0.25) > 0.02 then Alcotest.failf "leaf %d rate %.3f" leaf p
  done

let test_lemma13_on_many_graphs () =
  (* the Lemma 13 invariant is a deterministic consequence of the coupling
     construction and needs no regularity, so it must also hold on the
     paper's highly non-regular separator graphs *)
  let graphs =
    [
      ("complete", Gen.complete 32, 0);
      ("cycle", Gen.cycle 20, 3);
      ("torus", Gen.torus ~rows:6 ~cols:6, 0);
      ("hypercube", Gen.hypercube ~dim:7, 1);
      ("necklace", Gen.necklace ~cliques:4 ~clique_size:8, 0);
      ("star", Gen.star ~leaves:24, 0);
      ( "double star",
        (Rumor_graph.Gen_paper.double_star ~leaves_per_star:12).Rumor_graph.Gen_paper.ds_graph,
        2 );
      ( "heavy tree",
        (Rumor_graph.Gen_paper.heavy_binary_tree ~levels:5).Rumor_graph.Gen_paper.ht_graph,
        20 );
    ]
  in
  List.iter
    (fun (name, g, s) ->
      for seed = 0 to 4 do
        let c, o = couple (1830 + seed) g s in
        if not o.Coupling.completed then Alcotest.failf "%s: visitx did not complete" name;
        let tau = Coupling.run_push c ~max_rounds:1_000_000 in
        match Coupling.lemma13_violations ~tau o with
        | [] -> ()
        | u :: _ ->
            Alcotest.failf "%s seed %d: tau_%d = %d > C = %d" name seed u tau.(u)
              o.Coupling.c_counter.(u)
      done)
    graphs

let test_lemma13_on_random_regular () =
  for seed = 0 to 4 do
    let rng = Rng.of_int (1840 + seed) in
    let g = Gen_random.random_regular_connected rng ~n:128 ~d:8 in
    let c, o = couple (1850 + seed) g 0 in
    let tau = Coupling.run_push c ~max_rounds:1_000_000 in
    Alcotest.(check (list int)) "no violations" [] (Coupling.lemma13_violations ~tau o)
  done

let test_lemma13_one_agent_per_vertex () =
  (* the paper remarks the coupling result also holds for one-per-vertex
     starts; the deterministic invariant certainly does *)
  let g = Gen.hypercube ~dim:6 in
  let c, o = couple ~agents:Placement.One_per_vertex 186 g 0 in
  let tau = Coupling.run_push c ~max_rounds:1_000_000 in
  Alcotest.(check (list int)) "no violations" [] (Coupling.lemma13_violations ~tau o)

let test_lemma14_congestion_equality () =
  let g = Gen.torus ~rows:6 ~cols:6 in
  let _, o = couple ~record_history:true 187 g 0 in
  for u = 0 to Graph.n g - 1 do
    let walk = Coupling.canonical_walk o u in
    let q = Coupling.congestion o walk in
    Alcotest.(check int)
      (Printf.sprintf "Q(theta_%d) = C_%d(t_%d)" u u u)
      o.Coupling.c_counter.(u) q
  done

let test_canonical_walk_structure () =
  let g = Gen.hypercube ~dim:6 in
  let _, o = couple ~record_history:true 188 g 5 in
  for u = 0 to Graph.n g - 1 do
    let walk = Coupling.canonical_walk o u in
    Alcotest.(check int) "starts at source" 5 walk.(0);
    Alcotest.(check int) "ends at u" u walk.(Array.length walk - 1);
    Alcotest.(check int) "length = t_u + 1" (o.Coupling.vertex_time.(u) + 1)
      (Array.length walk);
    for i = 1 to Array.length walk - 1 do
      let a = walk.(i - 1) and b = walk.(i) in
      if a <> b && not (Graph.mem_edge g a b) then
        Alcotest.failf "walk step %d: %d -> %d not an edge" i a b
    done
  done

let test_vertex_times_match_plain_visitx_distribution () =
  (* coupled visit-exchange is the same process as the plain one; sanity
     check that broadcast completion and source time agree *)
  let g = Gen.complete 20 in
  let _, o = couple 189 g 0 in
  Alcotest.(check int) "source at 0" 0 o.Coupling.vertex_time.(0);
  Alcotest.(check bool) "completed" true o.Coupling.completed;
  Array.iter
    (fun t -> if t = max_int then Alcotest.fail "vertex left uninformed")
    o.Coupling.vertex_time

let test_run_visit_exchange_twice_rejected () =
  let g = Gen.complete 5 in
  let c = Coupling.create (Rng.of_int 190) g ~source:0 in
  let (_ : Coupling.visitx_outcome) =
    Coupling.run_visit_exchange c ~agents:(Placement.Linear 1.0) ~max_rounds:1000
  in
  try
    ignore (Coupling.run_visit_exchange c ~agents:(Placement.Linear 1.0) ~max_rounds:1000);
    Alcotest.fail "second run accepted"
  with Invalid_argument _ -> ()

let test_congestion_requires_history () =
  let g = Gen.complete 5 in
  let _, o = couple 191 g 0 in
  try
    ignore (Coupling.congestion o [| 0; 1 |]);
    Alcotest.fail "missing history accepted"
  with Invalid_argument _ -> ()

let test_canonical_walk_uninformed_rejected () =
  (* cap the run so that some vertex stays uninformed *)
  let g = Gen.path 50 in
  let c = Coupling.create (Rng.of_int 192) g ~source:0 in
  let o =
    Coupling.run_visit_exchange c ~agents:(Placement.Stationary 2) ~max_rounds:1
  in
  let u = 49 in
  Alcotest.(check bool) "end of path uninformed" true (o.Coupling.vertex_time.(u) = max_int);
  try
    ignore (Coupling.canonical_walk o u);
    Alcotest.fail "uninformed vertex accepted"
  with Invalid_argument _ -> ()

let test_max_neighborhood_load_positive () =
  let g = Gen.complete 16 in
  let _, o = couple ~record_history:true 193 g 0 in
  let load = Coupling.max_neighborhood_load o g in
  (* with alpha = 1 there are n agents, every vertex neighborhood holds most
     of them on the complete graph *)
  Alcotest.(check bool) "load positive" true (load > 0);
  Alcotest.(check bool) "load bounded by agents" true (load <= 16)

let prop_lemma13_universal =
  QCheck.Test.make ~count:10 ~name:"lemma 13 holds on random instances"
    QCheck.(pair (int_range 8 40) (int_range 0 1000))
    (fun (half, seed) ->
      let n = 2 * half in
      let rng = Rng.of_int ((n * 53) + seed) in
      let g = Gen_random.random_regular_connected rng ~n ~d:4 in
      let c = Coupling.create rng g ~source:0 in
      let o =
        Coupling.run_visit_exchange c ~agents:(Placement.Linear 1.0)
          ~max_rounds:100_000
      in
      let tau = Coupling.run_push c ~max_rounds:1_000_000 in
      List.is_empty (Coupling.lemma13_violations ~tau o))

let suite =
  [
    Alcotest.test_case "shared choices memoized" `Quick test_shared_choice_memoized;
    Alcotest.test_case "shared choices uniform" `Quick test_shared_choice_uniform;
    Alcotest.test_case "lemma 13 on standard graphs" `Quick test_lemma13_on_many_graphs;
    Alcotest.test_case "lemma 13 on random regular" `Quick test_lemma13_on_random_regular;
    Alcotest.test_case "lemma 13 one-per-vertex" `Quick test_lemma13_one_agent_per_vertex;
    Alcotest.test_case "lemma 14 congestion equality" `Quick test_lemma14_congestion_equality;
    Alcotest.test_case "canonical walk structure" `Quick test_canonical_walk_structure;
    Alcotest.test_case "coupled run matches plain process" `Quick
      test_vertex_times_match_plain_visitx_distribution;
    Alcotest.test_case "second visitx run rejected" `Quick
      test_run_visit_exchange_twice_rejected;
    Alcotest.test_case "congestion requires history" `Quick test_congestion_requires_history;
    Alcotest.test_case "canonical walk needs informed vertex" `Quick
      test_canonical_walk_uninformed_rejected;
    Alcotest.test_case "max neighborhood load" `Quick test_max_neighborhood_load_positive;
    QCheck_alcotest.to_alcotest prop_lemma13_universal;
  ]
