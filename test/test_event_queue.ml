(* Tests for Rumor_des.Event_queue. *)

module Q = Rumor_des.Event_queue

let test_empty () =
  let q : int Q.t = Q.create () in
  Alcotest.(check bool) "empty" true (Q.is_empty q);
  Alcotest.(check int) "size 0" 0 (Q.size q);
  Alcotest.(check bool) "pop none" true (Q.pop q = None);
  Alcotest.(check bool) "peek none" true (Q.peek_time q = None)

let test_ordering () =
  let q = Q.create () in
  Q.push q 3.0 "c";
  Q.push q 1.0 "a";
  Q.push q 2.0 "b";
  Alcotest.(check (option (float 1e-9))) "peek earliest" (Some 1.0) (Q.peek_time q);
  let order = List.init 3 (fun _ -> match Q.pop q with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "sorted by time" [ "a"; "b"; "c" ] order

let test_fifo_ties () =
  let q = Q.create () in
  Q.push q 1.0 "first";
  Q.push q 1.0 "second";
  Q.push q 1.0 "third";
  let order = List.init 3 (fun _ -> match Q.pop q with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "insertion order on ties" [ "first"; "second"; "third" ]
    order

let test_interleaved_push_pop () =
  let q = Q.create () in
  Q.push q 5.0 5;
  Q.push q 1.0 1;
  (match Q.pop q with
  | Some (t, 1) -> Alcotest.(check (float 1e-9)) "time" 1.0 t
  | _ -> Alcotest.fail "wrong event");
  Q.push q 3.0 3;
  Q.push q 0.5 0;
  let rest = List.init 3 (fun _ -> match Q.pop q with Some (_, x) -> x | None -> -1) in
  Alcotest.(check (list int)) "remaining order" [ 0; 3; 5 ] rest

let test_heap_property_random () =
  let rng = Rumor_prob.Rng.of_int 301 in
  let q = Q.create () in
  for _ = 1 to 1000 do
    Q.push q (Rumor_prob.Rng.float rng 100.0) ()
  done;
  Alcotest.(check int) "size" 1000 (Q.size q);
  let last = ref neg_infinity in
  for _ = 1 to 1000 do
    match Q.pop q with
    | None -> Alcotest.fail "queue drained early"
    | Some (t, ()) ->
        if t < !last then Alcotest.failf "out of order: %f after %f" t !last;
        last := t
  done;
  Alcotest.(check bool) "drained" true (Q.is_empty q)

let test_nan_rejected () =
  let q = Q.create () in
  try
    Q.push q Float.nan ();
    Alcotest.fail "NaN accepted"
  with Invalid_argument _ -> ()

let test_clear () =
  let q = Q.create () in
  Q.push q 1.0 ();
  Q.push q 2.0 ();
  Q.clear q;
  Alcotest.(check bool) "cleared" true (Q.is_empty q);
  Q.push q 3.0 ();
  Alcotest.(check (option (float 1e-9))) "usable after clear" (Some 3.0) (Q.peek_time q)

let test_clear_releases_payloads () =
  (* the regression this guards: clear used to only zero [len], leaving
     every payload reachable through the backing array *)
  let q : int array Q.t = Q.create () in
  let w = Weak.create 1 in
  Q.push q 1.0
    (let payload = Array.make 1024 0 in
     Weak.set w 0 (Some payload);
     payload);
  Q.clear q;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "payload collected after clear" true
    (Option.is_none (Weak.get w 0));
  ignore (Sys.opaque_identity (Q.size q))

let test_clear_resets_tie_break () =
  (* a cleared queue must order same-time events like a fresh one *)
  let q = Q.create () in
  Q.push q 1.0 "stale";
  Q.clear q;
  Q.push q 2.0 "a";
  Q.push q 2.0 "b";
  let order = List.init 2 (fun _ -> match Q.pop q with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "FIFO after clear" [ "a"; "b" ] order

let test_pop_into () =
  let q = Q.create () in
  let slot = ref (-1) in
  Alcotest.(check bool) "empty gives NaN" true (Float.is_nan (Q.pop_into q slot));
  Alcotest.(check int) "slot untouched" (-1) !slot;
  Q.push q 2.0 2;
  Q.push q 1.0 1;
  Q.push q 1.0 10;
  let t1 = Q.pop_into q slot in
  Alcotest.(check (float 1e-9)) "first time" 1.0 t1;
  Alcotest.(check int) "first payload" 1 !slot;
  let t2 = Q.pop_into q slot in
  Alcotest.(check (float 1e-9)) "tie time" 1.0 t2;
  Alcotest.(check int) "FIFO tie payload" 10 !slot;
  let t3 = Q.pop_into q slot in
  Alcotest.(check (float 1e-9)) "last time" 2.0 t3;
  Alcotest.(check int) "last payload" 2 !slot;
  Alcotest.(check bool) "drained" true (Q.is_empty q)

let prop_dequeues_sorted =
  QCheck.Test.make ~count:100 ~name:"event queue dequeues in sorted order"
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun times ->
      let q = Q.create () in
      List.iter (fun t -> Q.push q t ()) times;
      let out = List.init (List.length times) (fun _ ->
          match Q.pop q with Some (t, ()) -> t | None -> nan)
      in
      out = List.sort Float.compare out)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO on ties" `Quick test_fifo_ties;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved_push_pop;
    Alcotest.test_case "random heap property" `Quick test_heap_property_random;
    Alcotest.test_case "NaN rejected" `Quick test_nan_rejected;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "clear releases payloads" `Quick test_clear_releases_payloads;
    Alcotest.test_case "clear resets tie-break" `Quick test_clear_resets_tie_break;
    Alcotest.test_case "pop_into" `Quick test_pop_into;
    QCheck_alcotest.to_alcotest prop_dequeues_sorted;
  ]
