(* Tests for the analysis half of the observability stack: the Json
   parser, Run_record round-trips, read_jsonl error reporting, Aggregate
   group math, Baseline verdicts, and Bench_record diffs — plus an
   end-to-end exit-code check of the rumor_report CLI. *)

module Json = Rumor_obs.Json
module Run_record = Rumor_obs.Run_record
module Aggregate = Rumor_obs.Aggregate
module Baseline = Rumor_obs.Baseline
module Bench_record = Rumor_obs.Bench_record
module Stats = Rumor_prob.Stats

(* --- Json ------------------------------------------------------------- *)

let test_json_values () =
  let j = Json.parse {| {"a": 1, "b": [1, 2.5, "x"], "c": null, "d": true} |} in
  Alcotest.(check (option int)) "int member" (Some 1)
    (Option.bind (Json.member "a" j) Json.to_int);
  (match Option.bind (Json.member "b" j) Json.to_list with
  | Some [ Json.Int 1; Json.Float f; Json.String "x" ] ->
      Alcotest.(check (float 1e-12)) "float elt" 2.5 f
  | _ -> Alcotest.fail "list shape");
  Alcotest.(check (option bool)) "bool member" (Some true)
    (Option.bind (Json.member "d" j) Json.to_bool);
  Alcotest.(check bool) "null member" true (Json.member "c" j = Some Json.Null);
  Alcotest.(check bool) "negative and exponent numbers" true
    (Json.parse "[-3, 1e3, -2.5e-1]"
    = Json.List [ Json.Int (-3); Json.Float 1000.0; Json.Float (-0.25) ])

let test_json_string_escapes () =
  Alcotest.(check (option string))
    "standard escapes" (Some "a\"b\\c\nd\te")
    (Json.to_string (Json.parse {|"a\"b\\c\nd\te"|}));
  Alcotest.(check (option string))
    "\\u BMP escape" (Some "A")
    (Json.to_string (Json.parse {|"\u0041"|}));
  Alcotest.(check (option string))
    "surrogate pair to UTF-8" (Some "\xf0\x9f\x98\x80")
    (Json.to_string (Json.parse {|"\ud83d\ude00"|}));
  Alcotest.(check (option string))
    "raw UTF-8 passes through" (Some "étoile")
    (Json.to_string (Json.parse "\"étoile\""))

let test_json_errors () =
  let pos_of s =
    match Json.parse s with
    | _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
    | exception Json.Error { pos; _ } -> pos
  in
  Alcotest.(check int) "bare comma in array" 3 (pos_of "[1,]");
  Alcotest.(check int) "trailing garbage position" 3 (pos_of "{} x");
  Alcotest.(check int) "unterminated string" 4 (pos_of "\"abc");
  (match Json.parse_result "nope" with
  | Error msg ->
      Alcotest.(check bool) "message carries offset" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "should not parse")

let test_json_emit_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "q\"uote\n");
        ("xs", Json.List [ Json.Int 1; Json.Float 0.125; Json.Null ]);
        ("b", Json.Bool false);
      ]
  in
  Alcotest.(check bool) "emit/parse fixpoint" true
    (Json.parse (Json.to_string_json v) = v)

(* --- Run_record round-trips ------------------------------------------- *)

let sample_record =
  {
    Run_record.seed = 218;
    rep = 3;
    graph = "star:8";
    protocol = "push";
    vertices = 8;
    broadcast_time = Some 5;
    rounds_run = 5;
    capped = false;
    contacts = 40;
    informed_curve = [| 1; 2; 4; 8 |];
    wall_seconds = 0.125;
    gc = { Run_record.minor_words = 10.0; major_words = 2.0; promoted_words = 1.0 };
    engine = false;
    shards = 1;
  }

let check_roundtrip name r =
  match Run_record.of_json (Run_record.to_json r) with
  | Ok r' -> Alcotest.(check bool) name true (r = r')
  | Error msg -> Alcotest.fail (name ^ ": " ^ msg)

let test_record_roundtrip () =
  check_roundtrip "plain record" sample_record;
  check_roundtrip "capped record (null broadcast_time)"
    { sample_record with Run_record.broadcast_time = None; capped = true };
  check_roundtrip "non-ASCII graph name"
    { sample_record with Run_record.graph = "étoile—☆:8" };
  check_roundtrip "escapes in labels"
    { sample_record with Run_record.graph = "g\"raph\\:8\n" };
  check_roundtrip "empty curve"
    { sample_record with Run_record.informed_curve = [||] };
  check_roundtrip "awkward floats"
    {
      sample_record with
      Run_record.wall_seconds = 0.1 +. 0.2;
      gc =
        {
          Run_record.minor_words = 1.2345678901234567e8;
          major_words = 0.0;
          promoted_words = 3.0;
        };
    }

let test_record_of_json_errors () =
  (match Run_record.of_json "{\"seed\":1}" with
  | Error msg ->
      Alcotest.(check bool) "names the missing field" true
        (let has_sub sub s =
           let sl = String.length sub and l = String.length s in
           let rec scan i = i + sl <= l && (String.sub s i sl = sub || scan (i + 1)) in
           scan 0
         in
         has_sub "rep" msg)
  | Ok _ -> Alcotest.fail "incomplete record parsed");
  match Run_record.of_json "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage parsed"

let with_temp_file f =
  let path = Filename.temp_file "rumor_report_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_read_jsonl_roundtrip () =
  with_temp_file (fun path ->
      let records =
        [
          sample_record;
          { sample_record with Run_record.rep = 4; graph = "étoile:8" };
          { sample_record with Run_record.rep = 5; broadcast_time = None; capped = true };
        ]
      in
      Run_record.with_jsonl_file path (fun sink -> List.iter sink records);
      Alcotest.(check bool) "records survive the file" true
        (Run_record.read_jsonl path = records))

let test_read_jsonl_error_line () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc (Run_record.to_json sample_record ^ "\n");
      output_string oc "\n";
      output_string oc (Run_record.to_json sample_record ^ "\n");
      output_string oc "{\"seed\": 1, TRUNCATED";
      close_out oc;
      match Run_record.read_jsonl path with
      | _ -> Alcotest.fail "garbage line accepted"
      | exception Run_record.Jsonl_error { line; path = p; _ } ->
          Alcotest.(check int) "1-based line of the bad record" 4 line;
          Alcotest.(check string) "path reported" path p)

let test_read_jsonl_trailing_garbage_on_line () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc (Run_record.to_json sample_record ^ "{\n");
      close_out oc;
      match Run_record.read_jsonl path with
      | _ -> Alcotest.fail "trailing garbage accepted"
      | exception Run_record.Jsonl_error { line; _ } ->
          Alcotest.(check int) "error on line 1" 1 line)

(* --- Aggregate -------------------------------------------------------- *)

let record ?(graph = "g") ?(protocol = "p") ?(rep = 0) ?broadcast_time
    ?(rounds_run = 0) ?(contacts = 0) ?(curve = [||]) ?(wall = 0.0)
    ?(minor = 0.0) ?(major = 0.0) ?(promoted = 0.0) () =
  {
    Run_record.seed = 1;
    rep;
    graph;
    protocol;
    vertices = 16;
    broadcast_time;
    rounds_run =
      (match broadcast_time with Some t -> max t rounds_run | None -> rounds_run);
    capped = broadcast_time = None;
    contacts;
    informed_curve = curve;
    wall_seconds = wall;
    gc = { Run_record.minor_words = minor; major_words = major; promoted_words = promoted };
    engine = false;
    shards = 1;
  }

let test_aggregate_matches_stats () =
  let times = [ 10; 20; 30; 40 ] in
  let records =
    List.mapi
      (fun i t -> record ~rep:i ~broadcast_time:t ~contacts:(10 * (i + 1)) ())
      times
    (* a capped run contributes its rounds_run, as Replicate's `Keep does *)
    @ [ record ~rep:4 ~rounds_run:50 () ]
  in
  match Aggregate.of_records records with
  | [ g ] ->
      let expected = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
      Alcotest.(check int) "runs" 5 g.Aggregate.runs;
      Alcotest.(check int) "capped" 1 g.Aggregate.capped;
      Alcotest.(check bool) "broadcast summary = Stats.summarize" true
        (g.Aggregate.broadcast.Aggregate.summary = Stats.summarize expected);
      let sorted = Array.copy expected in
      Array.sort Float.compare sorted;
      Alcotest.(check (float 1e-12)) "p90 = Stats.quantile 0.9"
        (Stats.quantile sorted 0.9) g.Aggregate.broadcast.Aggregate.p90;
      Alcotest.(check (float 1e-12)) "p99 = Stats.quantile 0.99"
        (Stats.quantile sorted 0.99) g.Aggregate.broadcast.Aggregate.p99;
      (* contacts: 10+20+30+40 over the four finished runs, 0 for the capped one *)
      Alcotest.(check (float 1e-12)) "contacts mean" 20.0
        g.Aggregate.contacts.Aggregate.summary.Stats.mean
  | groups ->
      Alcotest.fail (Printf.sprintf "expected 1 group, got %d" (List.length groups))

let test_aggregate_groups_and_curves () =
  let records =
    [
      record ~graph:"b" ~protocol:"push" ~broadcast_time:3 ~curve:[| 1; 2; 4 |] ();
      record ~graph:"b" ~protocol:"push" ~rep:1 ~broadcast_time:2 ~curve:[| 1; 3 |] ();
      record ~graph:"a" ~protocol:"pull" ~broadcast_time:7 ();
    ]
  in
  let agg = Aggregate.of_records records in
  Alcotest.(check (list string)) "sorted by (graph, protocol)" [ "a/pull"; "b/push" ]
    (List.map (fun g -> g.Aggregate.graph ^ "/" ^ g.Aggregate.protocol) agg);
  (match Aggregate.find agg ~graph:"b" ~protocol:"push" with
  | Some g ->
      (* the shorter curve pads with its final value *)
      Alcotest.(check (array (float 1e-12))) "mean curve with padding"
        [| 1.0; 2.5; 3.5 |] g.Aggregate.mean_curve
  | None -> Alcotest.fail "find missed the group");
  match Aggregate.find agg ~graph:"a" ~protocol:"pull" with
  | Some g ->
      Alcotest.(check (array (float 1e-12))) "no curves -> empty mean curve"
        [||] g.Aggregate.mean_curve
  | None -> Alcotest.fail "find missed the second group"

let test_alloc_words () =
  Alcotest.(check (float 1e-9)) "minor + major - promoted" 11.0
    (Aggregate.alloc_words
       { Run_record.minor_words = 10.0; major_words = 2.0; promoted_words = 1.0 })

(* --- Baseline --------------------------------------------------------- *)

let agg_with_wall wall =
  Aggregate.of_records
    [ record ~broadcast_time:10 ~contacts:100 ~wall ~minor:1000.0 () ]

let test_baseline_tolerance_boundary () =
  (* baseline mean 1.0, tolerance 25%: the boundaries 1.25 and 0.75 are
     exact binary floats, so equality at the boundary is well-defined *)
  let tol = Baseline.uniform 0.25 in
  let base = agg_with_wall 1.0 in
  let status wall =
    let report = Baseline.check ~tol ~baseline:base ~current:(agg_with_wall wall) () in
    let c =
      List.find (fun (c : Baseline.check) -> c.Baseline.metric = "wall_seconds")
        report.Baseline.checks
    in
    c.Baseline.status
  in
  Alcotest.(check bool) "at upper boundary passes" true (status 1.25 = Baseline.Pass);
  Alcotest.(check bool) "above upper boundary regresses" true
    (status 1.2500001 = Baseline.Regressed);
  Alcotest.(check bool) "at lower boundary passes" true (status 0.75 = Baseline.Pass);
  Alcotest.(check bool) "below lower boundary improves" true
    (status 0.7499 = Baseline.Improved)

let test_baseline_2x_wall_regression () =
  let mk wall =
    Aggregate.of_records
      (List.init 4 (fun i ->
           record ~rep:i ~broadcast_time:10 ~contacts:100 ~wall ~minor:1000.0 ()))
  in
  let report =
    Baseline.check ~baseline:(mk 0.010) ~current:(mk 0.020) ()
  in
  let regressed = Baseline.regressions report in
  Alcotest.(check (list string)) "exactly the wall metric regresses"
    [ "wall_seconds" ]
    (List.map (fun (c : Baseline.check) -> c.Baseline.metric) regressed);
  Alcotest.(check bool) "2x wall-clock fails the gate" false
    (Baseline.passed report);
  (match regressed with
  | [ c ] -> Alcotest.(check (float 1e-9)) "ratio is 2x" 2.0 c.Baseline.ratio
  | _ -> Alcotest.fail "expected one regression")

let test_baseline_missing_and_added () =
  let base = Aggregate.of_records [ record ~graph:"a" ~broadcast_time:1 () ] in
  let current = Aggregate.of_records [ record ~graph:"b" ~broadcast_time:1 () ] in
  let report = Baseline.check ~baseline:base ~current () in
  Alcotest.(check bool) "missing group fails the gate" false
    (Baseline.passed report);
  Alcotest.(check (list (pair string string))) "missing" [ ("a", "p") ]
    report.Baseline.missing;
  Alcotest.(check (list (pair string string))) "added" [ ("b", "p") ]
    report.Baseline.added

let test_baseline_snapshot_roundtrip () =
  let agg =
    Aggregate.of_records
      [
        record ~graph:"étoile:8" ~broadcast_time:10 ~contacts:11 ~wall:0.25
          ~minor:100.0 ~curve:[| 1; 8 |] ();
        record ~graph:"étoile:8" ~rep:1 ~broadcast_time:20 ~contacts:13
          ~wall:0.5 ~minor:200.0 ();
        record ~graph:"k" ~protocol:"pull" ~rounds_run:9 ();
      ]
  in
  match Baseline.of_json (Baseline.to_json agg) with
  | Error msg -> Alcotest.fail msg
  | Ok agg' ->
      Alcotest.(check bool) "snapshot preserves everything but curves" true
        (agg' = List.map (fun g -> { g with Aggregate.mean_curve = [||] }) agg)

let test_baseline_save_load () =
  with_temp_file (fun path ->
      let agg = agg_with_wall 1.0 in
      Baseline.save path agg;
      match Baseline.load path with
      | Ok agg' -> Alcotest.(check bool) "load inverts save" true (agg = agg')
      | Error msg -> Alcotest.fail msg);
  match Baseline.load "/nonexistent/rumor_baseline.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing file succeeded"

(* --- Bench_record ----------------------------------------------------- *)

let test_bench_record_roundtrip_and_diff () =
  let base =
    {
      Bench_record.seed = 1;
      jobs = 1;
      meta = [];
      entries =
        [
          { Bench_record.name = "rumor/push"; time_ns = 100.0; r_square = 0.99 };
          { Bench_record.name = "rumor/gone"; time_ns = 5.0; r_square = 0.5 };
        ];
    }
  in
  (match Bench_record.of_json (Bench_record.to_json base) with
  | Ok b -> Alcotest.(check bool) "bench json roundtrip" true (b = base)
  | Error msg -> Alcotest.fail msg);
  (* snapshots written before the jobs field existed read back as jobs = 1 *)
  (match
     Bench_record.of_json
       {|{"schema":"rumor-bench/1","seed":3,"entries":[]}|}
   with
  | Ok b ->
      Alcotest.(check int) "missing jobs defaults to 1" 1 b.Bench_record.jobs;
      Alcotest.(check (list (pair string string)))
        "missing meta defaults to []" [] b.Bench_record.meta
  | Error msg -> Alcotest.fail msg);
  (* and the meta map round-trips when present *)
  (let with_meta =
     { base with Bench_record.meta = [ ("des/resizes", "3"); ("w", "0.5") ] }
   in
   match Bench_record.of_json (Bench_record.to_json with_meta) with
   | Ok b -> Alcotest.(check bool) "meta roundtrip" true (b = with_meta)
   | Error msg -> Alcotest.fail msg);
  let current =
    {
      Bench_record.seed = 2;
      jobs = 4;
      meta = [];
      entries =
        [
          { Bench_record.name = "rumor/push"; time_ns = 150.0; r_square = 0.98 };
          { Bench_record.name = "rumor/new"; time_ns = 7.0; r_square = 0.9 };
        ];
    }
  in
  let d = Bench_record.diff ~base ~current in
  (match d.Bench_record.deltas with
  | [ delta ] ->
      Alcotest.(check string) "matched by name" "rumor/push"
        delta.Bench_record.name;
      Alcotest.(check (float 1e-9)) "ratio" 1.5 delta.Bench_record.ratio
  | _ -> Alcotest.fail "expected one delta");
  Alcotest.(check (list string)) "missing" [ "rumor/gone" ] d.Bench_record.missing;
  Alcotest.(check (list string)) "added" [ "rumor/new" ] d.Bench_record.added

(* --- the CLI gate, end to end ----------------------------------------- *)

let report_exe = Filename.concat (Filename.concat ".." "bin") "rumor_report.exe"

let test_cli_check_exit_codes () =
  if not (Sys.file_exists report_exe) then
    (* dune declares the exe as a test dep; guard anyway for odd setups *)
    Alcotest.skip ()
  else
    with_temp_file (fun jsonl ->
        with_temp_file (fun baseline ->
            let write path wall =
              Run_record.with_jsonl_file path (fun sink ->
                  for i = 0 to 3 do
                    sink
                      (record ~rep:i ~broadcast_time:10 ~contacts:100 ~wall
                         ~minor:1000.0 ())
                  done)
            in
            write jsonl 0.010;
            let run args =
              Sys.command
                (Filename.quote_command report_exe args ~stdout:"/dev/null"
                   ~stderr:"/dev/null")
            in
            Alcotest.(check int) "baseline subcommand succeeds" 0
              (run [ "baseline"; jsonl; "-o"; baseline ]);
            Alcotest.(check int) "identical run passes" 0
              (run [ "check"; jsonl; "--baseline"; baseline ]);
            (* inject a 2x wall-clock regression *)
            write jsonl 0.020;
            Alcotest.(check int) "2x wall regression exits 1" 1
              (run [ "check"; jsonl; "--baseline"; baseline ]);
            Alcotest.(check int)
              "a huge uniform tolerance lets the same run pass" 0
              (run [ "check"; jsonl; "--baseline"; baseline; "--tolerance"; "150" ])))

let suite =
  [
    Alcotest.test_case "json values" `Quick test_json_values;
    Alcotest.test_case "json string escapes" `Quick test_json_string_escapes;
    Alcotest.test_case "json error positions" `Quick test_json_errors;
    Alcotest.test_case "json emit/parse fixpoint" `Quick test_json_emit_roundtrip;
    Alcotest.test_case "record json roundtrip" `Quick test_record_roundtrip;
    Alcotest.test_case "record of_json errors" `Quick test_record_of_json_errors;
    Alcotest.test_case "read_jsonl roundtrip" `Quick test_read_jsonl_roundtrip;
    Alcotest.test_case "read_jsonl error line numbers" `Quick
      test_read_jsonl_error_line;
    Alcotest.test_case "read_jsonl trailing garbage" `Quick
      test_read_jsonl_trailing_garbage_on_line;
    Alcotest.test_case "aggregate matches Stats.summarize" `Quick
      test_aggregate_matches_stats;
    Alcotest.test_case "aggregate grouping and mean curves" `Quick
      test_aggregate_groups_and_curves;
    Alcotest.test_case "alloc words" `Quick test_alloc_words;
    Alcotest.test_case "baseline tolerance boundary" `Quick
      test_baseline_tolerance_boundary;
    Alcotest.test_case "baseline 2x wall regression" `Quick
      test_baseline_2x_wall_regression;
    Alcotest.test_case "baseline missing/added groups" `Quick
      test_baseline_missing_and_added;
    Alcotest.test_case "baseline snapshot roundtrip" `Quick
      test_baseline_snapshot_roundtrip;
    Alcotest.test_case "baseline save/load" `Quick test_baseline_save_load;
    Alcotest.test_case "bench record roundtrip and diff" `Quick
      test_bench_record_roundtrip_and_diff;
    Alcotest.test_case "rumor_report check exit codes" `Quick
      test_cli_check_exit_codes;
  ]
