(* Tests for Rumor_agents.Placement. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Gen = Rumor_graph.Gen_basic
module Placement = Rumor_agents.Placement

let test_counts () =
  let g = Gen.complete 10 in
  Alcotest.(check int) "stationary" 7 (Placement.count (Placement.Stationary 7) g);
  Alcotest.(check int) "one per vertex" 10 (Placement.count Placement.One_per_vertex g);
  Alcotest.(check int) "all at" 4 (Placement.count (Placement.All_at (0, 4)) g);
  Alcotest.(check int) "linear 0.5" 5 (Placement.count (Placement.Linear 0.5) g);
  Alcotest.(check int) "linear rounds" 15 (Placement.count (Placement.Linear 1.5) g);
  Alcotest.(check int) "linear never empty" 1 (Placement.count (Placement.Linear 0.001) g)

let test_one_per_vertex () =
  let g = Gen.path 5 in
  let rng = Rng.of_int 71 in
  Alcotest.(check (array int)) "identity placement" [| 0; 1; 2; 3; 4 |]
    (Placement.place rng Placement.One_per_vertex g)

let test_all_at () =
  let g = Gen.path 5 in
  let rng = Rng.of_int 72 in
  Alcotest.(check (array int)) "all on 3" [| 3; 3 |]
    (Placement.place rng (Placement.All_at (3, 2)) g);
  try
    ignore (Placement.place rng (Placement.All_at (9, 2)) g);
    Alcotest.fail "out-of-range vertex accepted"
  with Invalid_argument _ -> ()

let test_empty_rejected () =
  let g = Gen.path 3 in
  let rng = Rng.of_int 73 in
  try
    ignore (Placement.place rng (Placement.Stationary 0) g);
    Alcotest.fail "zero agents accepted"
  with Invalid_argument _ -> ()

let test_stationary_is_degree_proportional () =
  (* on the star, the center holds half the stationary mass *)
  let g = Gen.star ~leaves:50 in
  let rng = Rng.of_int 74 in
  let total = 40_000 in
  let pos = Placement.place rng (Placement.Stationary total) g in
  let at_center = Array.fold_left (fun acc v -> if v = 0 then acc + 1 else acc) 0 pos in
  let p = float_of_int at_center /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "center mass %.3f near 0.5" p)
    true
    (Float.abs (p -. 0.5) < 0.02)

let test_stationary_on_regular_is_uniform () =
  let g = Gen.cycle 10 in
  let rng = Rng.of_int 75 in
  let total = 50_000 in
  let pos = Placement.place rng (Placement.Stationary total) g in
  let counts = Array.make 10 0 in
  Array.iter (fun v -> counts.(v) <- counts.(v) + 1) pos;
  Array.iteri
    (fun v c ->
      let p = float_of_int c /. float_of_int total in
      if Float.abs (p -. 0.1) > 0.01 then Alcotest.failf "vertex %d mass %.3f" v p)
    counts

let test_stationary_weights_probabilities () =
  let g = Gen.star ~leaves:3 in
  let alias = Placement.stationary_weights g in
  (* degrees 3,1,1,1; total 6 *)
  Alcotest.(check bool) "center probability" true
    (Float.abs (Rumor_prob.Alias.probability alias 0 -. 0.5) < 1e-9);
  Alcotest.(check bool) "leaf probability" true
    (Float.abs (Rumor_prob.Alias.probability alias 1 -. (1.0 /. 6.0)) < 1e-9)

(* place_counts is the histogram of place on the same rng stream: same
   spec, same seed, identical per-vertex totals — and both leave the
   generator in the same state. *)
let test_place_counts_is_histogram () =
  let g = Gen.star ~leaves:20 in
  List.iter
    (fun spec ->
      let pos = Placement.place (Rng.of_int 76) spec g in
      let rng = Rng.of_int 76 in
      let counts = Placement.place_counts rng spec g in
      let hist = Array.make (Graph.n g) 0 in
      Array.iter (fun v -> hist.(v) <- hist.(v) + 1) pos;
      Alcotest.(check (array int))
        "histogram of place" hist counts;
      (* identical rng consumption: the next draw agrees with a generator
         that ran place on the same seed *)
      let rng' = Rng.of_int 76 in
      ignore (Placement.place rng' spec g);
      Alcotest.(check int) "rng state" (Rng.int rng' 1_000_000)
        (Rng.int rng 1_000_000))
    [
      Placement.Stationary 37;
      Placement.Linear 1.5;
      Placement.One_per_vertex;
      Placement.All_at (3, 5);
    ]

let test_place_counts_invalid () =
  let g = Gen.path 5 in
  (try
     ignore (Placement.place_counts (Rng.of_int 77) (Placement.Stationary 0) g);
     Alcotest.fail "zero agents accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Placement.place_counts (Rng.of_int 77) (Placement.All_at (9, 2)) g);
    Alcotest.fail "out-of-range vertex accepted"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "one per vertex" `Quick test_one_per_vertex;
    Alcotest.test_case "all at a vertex" `Quick test_all_at;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
    Alcotest.test_case "stationary is degree-proportional" `Quick
      test_stationary_is_degree_proportional;
    Alcotest.test_case "stationary uniform on regular" `Quick
      test_stationary_on_regular_is_uniform;
    Alcotest.test_case "stationary weights exact" `Quick test_stationary_weights_probabilities;
    Alcotest.test_case "place_counts is place histogram" `Quick
      test_place_counts_is_histogram;
    Alcotest.test_case "place_counts invalid args" `Quick test_place_counts_invalid;
  ]
