(* Tests for Rumor_prob.Fenwick: prefix sums and proportional sampling
   against a brute-force reference. *)

module Rng = Rumor_prob.Rng
module Fenwick = Rumor_prob.Fenwick

let brute_prefix c i =
  let s = ref 0 in
  for j = 0 to i - 1 do
    s := !s + c.(j)
  done;
  !s

let brute_find c r =
  let acc = ref 0 and i = ref 0 in
  while !acc + c.(!i) <= r do
    acc := !acc + c.(!i);
    incr i
  done;
  (!i, r - !acc)

let test_of_counts_matches_brute () =
  let rng = Rng.of_int 81 in
  for n = 1 to 40 do
    let c = Array.init n (fun _ -> Rng.int rng 5) in
    let t = Fenwick.of_counts c in
    Alcotest.(check int) "size" n (Fenwick.size t);
    Alcotest.(check int) "total" (brute_prefix c n) (Fenwick.total t);
    for i = 0 to n do
      Alcotest.(check int)
        (Printf.sprintf "prefix %d/%d" i n)
        (brute_prefix c i) (Fenwick.prefix t i)
    done;
    for i = 0 to n - 1 do
      Alcotest.(check int) (Printf.sprintf "get %d/%d" i n) c.(i) (Fenwick.get t i)
    done
  done

let test_add_updates () =
  let rng = Rng.of_int 82 in
  let n = 30 in
  let c = Array.make n 0 in
  let t = Fenwick.create n in
  for _ = 1 to 500 do
    let i = Rng.int rng n in
    let delta = Rng.int rng 4 - c.(i) in
    c.(i) <- c.(i) + delta;
    Fenwick.add t i delta
  done;
  for i = 0 to n do
    Alcotest.(check int) (Printf.sprintf "prefix %d" i) (brute_prefix c i)
      (Fenwick.prefix t i)
  done;
  Alcotest.(check int) "total" (brute_prefix c n) (Fenwick.total t)

let test_find_matches_brute () =
  let c = [| 3; 0; 1; 0; 0; 5; 2 |] in
  let t = Fenwick.of_counts c in
  for r = 0 to Fenwick.total t - 1 do
    let bi, bres = brute_find c r in
    let i, res = Fenwick.find t r in
    Alcotest.(check int) (Printf.sprintf "find %d index" r) bi i;
    Alcotest.(check int) (Printf.sprintf "find %d residual" r) bres res
  done

let test_find_is_proportional () =
  let rng = Rng.of_int 83 in
  let c = [| 1; 0; 4; 5 |] in
  let t = Fenwick.of_counts c in
  let total = Fenwick.total t in
  let hits = Array.make 4 0 in
  let reps = 40_000 in
  for _ = 1 to reps do
    let i, res = Fenwick.find t (Rng.int rng total) in
    if res < 0 || res >= c.(i) then
      Alcotest.failf "residual %d outside slot %d (count %d)" res i c.(i);
    hits.(i) <- hits.(i) + 1
  done;
  Array.iteri
    (fun i h ->
      let p = float_of_int h /. float_of_int reps in
      let expected = float_of_int c.(i) /. float_of_int total in
      if Float.abs (p -. expected) > 0.01 then
        Alcotest.failf "slot %d frequency %.3f, expected %.3f" i p expected)
    hits

let test_invalid () =
  (try
     ignore (Fenwick.create (-1));
     Alcotest.fail "negative size accepted"
   with Invalid_argument _ -> ());
  let t = Fenwick.of_counts [| 1; 2 |] in
  (try
     Fenwick.add t 2 1;
     Alcotest.fail "out-of-range add accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Fenwick.prefix t 3);
     Alcotest.fail "out-of-range prefix accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Fenwick.find t 3);
     Alcotest.fail "r = total accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Fenwick.find t (-1));
    Alcotest.fail "negative r accepted"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "of_counts matches brute force" `Quick
      test_of_counts_matches_brute;
    Alcotest.test_case "add updates prefixes" `Quick test_add_updates;
    Alcotest.test_case "find matches brute force" `Quick test_find_matches_brute;
    Alcotest.test_case "find samples proportionally" `Quick
      test_find_is_proportional;
    Alcotest.test_case "invalid args" `Quick test_invalid;
  ]
