(* Tests for Rumor_prob.Dist: samplers against closed-form moments. *)

module Rng = Rumor_prob.Rng
module Dist = Rumor_prob.Dist

let sample_mean_var n f =
  let stats = Rumor_prob.Stats.create () in
  for _ = 1 to n do
    Rumor_prob.Stats.add stats (f ())
  done;
  (Rumor_prob.Stats.mean stats, Rumor_prob.Stats.variance stats)

let check_close label expected actual tolerance =
  if Float.abs (expected -. actual) > tolerance then
    Alcotest.failf "%s: expected %.4f got %.4f (tol %.4f)" label expected actual
      tolerance

let test_binomial_moments () =
  let g = Rng.of_int 21 in
  List.iter
    (fun (n, p) ->
      let mean, var =
        sample_mean_var 40_000 (fun () -> float_of_int (Dist.binomial g n p))
      in
      let em = Dist.binomial_mean n p and ev = Dist.binomial_variance n p in
      check_close (Printf.sprintf "Bin(%d,%.2f) mean" n p) em mean (0.05 *. em +. 0.05);
      check_close (Printf.sprintf "Bin(%d,%.2f) var" n p) ev var (0.1 *. ev +. 0.1))
    [ (10, 0.5); (100, 0.1); (100, 0.9); (1000, 0.01); (33, 0.3) ]

let test_binomial_support () =
  let g = Rng.of_int 22 in
  for _ = 1 to 1000 do
    let x = Dist.binomial g 20 0.4 in
    if x < 0 || x > 20 then Alcotest.failf "binomial out of support: %d" x
  done

let test_binomial_extremes () =
  let g = Rng.of_int 23 in
  Alcotest.(check int) "p=0" 0 (Dist.binomial g 100 0.0);
  Alcotest.(check int) "p=1" 100 (Dist.binomial g 100 1.0);
  Alcotest.(check int) "n=0" 0 (Dist.binomial g 0 0.7)

let test_binomial_invalid () =
  let g = Rng.of_int 24 in
  Alcotest.check_raises "n<0" (Invalid_argument "Dist.binomial: n < 0") (fun () ->
      ignore (Dist.binomial g (-1) 0.5));
  (try
     ignore (Dist.binomial g 10 1.5);
     Alcotest.fail "p>1 accepted"
   with Invalid_argument _ -> ())

let test_geometric_moments () =
  let g = Rng.of_int 25 in
  List.iter
    (fun p ->
      let mean, var =
        sample_mean_var 40_000 (fun () -> float_of_int (Dist.geometric g p))
      in
      check_close
        (Printf.sprintf "Geom(%.2f) mean" p)
        (Dist.geometric_mean p) mean
        (0.05 *. Dist.geometric_mean p);
      check_close
        (Printf.sprintf "Geom(%.2f) var" p)
        (Dist.geometric_variance p) var
        (0.15 *. (Dist.geometric_variance p +. 1.0)))
    [ 0.1; 0.3; 0.7 ]

let test_geometric_support () =
  let g = Rng.of_int 26 in
  Alcotest.(check int) "p=1 is always 1" 1 (Dist.geometric g 1.0);
  for _ = 1 to 1000 do
    if Dist.geometric g 0.2 < 1 then Alcotest.fail "geometric below 1"
  done

let test_geometric_invalid () =
  let g = Rng.of_int 27 in
  try
    ignore (Dist.geometric g 0.0);
    Alcotest.fail "p=0 accepted"
  with Invalid_argument _ -> ()

let test_poisson_moments () =
  let g = Rng.of_int 28 in
  (* includes lambda over the recursion threshold of 30 *)
  List.iter
    (fun lambda ->
      let mean, var =
        sample_mean_var 40_000 (fun () -> float_of_int (Dist.poisson g lambda))
      in
      check_close (Printf.sprintf "Poisson(%.1f) mean" lambda) lambda mean
        (0.05 *. lambda +. 0.05);
      check_close (Printf.sprintf "Poisson(%.1f) var" lambda) lambda var
        (0.12 *. lambda +. 0.1))
    [ 0.5; 4.0; 25.0; 80.0 ]

let test_poisson_zero () =
  let g = Rng.of_int 29 in
  Alcotest.(check int) "lambda=0" 0 (Dist.poisson g 0.0)

let test_exponential_mean () =
  let g = Rng.of_int 30 in
  let mean, _ = sample_mean_var 40_000 (fun () -> Dist.exponential g 2.0) in
  check_close "Exp(2) mean" 0.5 mean 0.02

let test_exponential_invalid () =
  let g = Rng.of_int 31 in
  try
    ignore (Dist.exponential g 0.0);
    Alcotest.fail "rate 0 accepted"
  with Invalid_argument _ -> ()

let test_categorical_frequencies () =
  let g = Rng.of_int 32 in
  let w = [| 1.0; 2.0; 7.0 |] in
  let counts = Array.make 3 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Dist.categorical g w in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = w.(i) /. 10.0 in
      let actual = float_of_int c /. float_of_int n in
      check_close (Printf.sprintf "category %d" i) expected actual 0.01)
    counts

let test_categorical_invalid () =
  let g = Rng.of_int 33 in
  (try
     ignore (Dist.categorical g [||]);
     Alcotest.fail "empty weights accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Dist.categorical g [| 0.0; 0.0 |]);
    Alcotest.fail "zero weights accepted"
  with Invalid_argument _ -> ()

let test_categorical_point_mass () =
  let g = Rng.of_int 34 in
  for _ = 1 to 100 do
    Alcotest.(check int) "all mass on index 1" 1 (Dist.categorical g [| 0.0; 5.0; 0.0 |])
  done

let test_multinomial_conservation () =
  let g = Rng.of_int 35 in
  for trial = 1 to 200 do
    let bins = 1 + (trial mod 7) in
    let w = Array.init bins (fun i -> float_of_int ((i mod 3) + 1)) in
    let n = trial * 13 mod 500 in
    let counts = Dist.multinomial g n w in
    Alcotest.(check int) "bin count" bins (Array.length counts);
    Array.iter (fun c -> if c < 0 then Alcotest.failf "negative count %d" c) counts;
    Alcotest.(check int)
      (Printf.sprintf "trial %d conserves n" trial)
      n
      (Array.fold_left ( + ) 0 counts)
  done

let test_multinomial_frequencies () =
  (* chi-square goodness of fit against the cell probabilities: with 3
     cells (2 degrees of freedom) the 99.9% quantile is 13.8, so a correct
     sampler fails with probability ~0.001 on this fixed seed *)
  let g = Rng.of_int 36 in
  let w = [| 1.0; 2.0; 7.0 |] in
  let total_w = 10.0 in
  let n = 2000 and reps = 50 in
  let counts = Array.make 3 0 in
  for _ = 1 to reps do
    let c = Dist.multinomial g n w in
    Array.iteri (fun i x -> counts.(i) <- counts.(i) + x) c
  done;
  let total = float_of_int (n * reps) in
  let chi2 = ref 0.0 in
  Array.iteri
    (fun i c ->
      let expected = total *. w.(i) /. total_w in
      let d = float_of_int c -. expected in
      chi2 := !chi2 +. (d *. d /. expected))
    counts;
  if !chi2 > 13.8 then
    Alcotest.failf "chi-square %.2f exceeds the 99.9%% quantile 13.8" !chi2

let test_multinomial_degenerate () =
  let g = Rng.of_int 37 in
  Alcotest.(check (array int)) "n=0" [| 0; 0 |] (Dist.multinomial g 0 [| 1.0; 1.0 |]);
  Alcotest.(check (array int)) "single bin" [| 42 |] (Dist.multinomial g 42 [| 3.0 |]);
  Alcotest.(check (array int)) "zero-weight bins get nothing" [| 0; 17; 0 |]
    (Dist.multinomial g 17 [| 0.0; 5.0; 0.0 |]);
  (* zero-weight tail: fp drift in the conditional splits must never leak
     mass past the last positive bin *)
  for _ = 1 to 100 do
    let c = Dist.multinomial g 1000 [| 1.0; 1.0; 0.0; 0.0 |] in
    Alcotest.(check int) "tail bin 2" 0 c.(2);
    Alcotest.(check int) "tail bin 3" 0 c.(3)
  done

let test_multinomial_invalid () =
  let g = Rng.of_int 38 in
  (try
     ignore (Dist.multinomial g 5 [||]);
     Alcotest.fail "empty weights accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Dist.multinomial g 5 [| 0.0; 0.0 |]);
     Alcotest.fail "all-zero weights accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Dist.multinomial g 5 [| 1.0; -1.0 |]);
     Alcotest.fail "negative weight accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Dist.multinomial g (-1) [| 1.0 |]);
    Alcotest.fail "n<0 accepted"
  with Invalid_argument _ -> ()

(* qcheck: binomial is symmetric under p <-> 1-p in distribution; check the
   means of coupled samples rather than exact symmetry. *)
let prop_binomial_complement =
  QCheck.Test.make ~count:30 ~name:"binomial complement mean"
    QCheck.(pair (int_range 1 200) (float_range 0.05 0.95))
    (fun (n, p) ->
      let g = Rng.of_int (n + int_of_float (p *. 1000.0)) in
      let reps = 3000 in
      let s1 = ref 0 and s2 = ref 0 in
      for _ = 1 to reps do
        s1 := !s1 + Dist.binomial g n p;
        s2 := !s2 + Dist.binomial g n (1.0 -. p)
      done;
      let m1 = float_of_int !s1 /. float_of_int reps in
      let m2 = float_of_int !s2 /. float_of_int reps in
      Float.abs (m1 +. m2 -. float_of_int n) < 0.2 *. float_of_int n +. 2.0)

let suite =
  [
    Alcotest.test_case "binomial moments" `Quick test_binomial_moments;
    Alcotest.test_case "binomial support" `Quick test_binomial_support;
    Alcotest.test_case "binomial extremes" `Quick test_binomial_extremes;
    Alcotest.test_case "binomial invalid args" `Quick test_binomial_invalid;
    Alcotest.test_case "geometric moments" `Quick test_geometric_moments;
    Alcotest.test_case "geometric support" `Quick test_geometric_support;
    Alcotest.test_case "geometric invalid args" `Quick test_geometric_invalid;
    Alcotest.test_case "poisson moments" `Quick test_poisson_moments;
    Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "exponential invalid args" `Quick test_exponential_invalid;
    Alcotest.test_case "categorical frequencies" `Quick test_categorical_frequencies;
    Alcotest.test_case "categorical invalid args" `Quick test_categorical_invalid;
    Alcotest.test_case "categorical point mass" `Quick test_categorical_point_mass;
    Alcotest.test_case "multinomial conservation" `Quick test_multinomial_conservation;
    Alcotest.test_case "multinomial frequencies" `Quick test_multinomial_frequencies;
    Alcotest.test_case "multinomial degenerate" `Quick test_multinomial_degenerate;
    Alcotest.test_case "multinomial invalid args" `Quick test_multinomial_invalid;
    QCheck_alcotest.to_alcotest prop_binomial_complement;
  ]
