(* Per-line suppression comments.

   A source line containing

     (* lint: allow R1 — float sort is intentional *)

   suppresses findings for rule R1 (id or short name, case-insensitive)
   reported on that line or on the line directly below, so both trailing
   comments and comment-above styles work. Several rules may be listed,
   separated by spaces or commas; everything after the rule list is free-form
   justification. *)

type t = (int, string list) Hashtbl.t

let marker = "lint: allow"

let is_token_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_'

(* Tokens following the marker on the same line. Justification text is
   harmless here: [allows] only ever tests membership of a known rule id or
   name, so stray words never enable anything. *)
let tokens_after line start =
  let n = String.length line in
  let rec skip_sep i =
    if i < n && (line.[i] = ' ' || line.[i] = '\t' || line.[i] = ',') then
      skip_sep (i + 1)
    else i
  in
  let rec take i j =
    if j < n && is_token_char line.[j] then take i (j + 1)
    else (String.sub line i (j - i), j)
  in
  let rec loop acc i =
    let i = skip_sep i in
    if i >= n || not (is_token_char line.[i]) then List.rev acc
    else
      let tok, j = take i i in
      loop (String.lowercase_ascii tok :: acc) j
  in
  loop [] start

let find_marker line from =
  let n = String.length line and m = String.length marker in
  let rec search i =
    if i + m > n then None
    else if String.sub line i m = marker then Some (i + m)
    else search (i + 1)
  in
  if from > n then None else search from

(* All markers on the line, not just the first: two comments like
   [(* lint: allow R5 — a *) (* lint: allow R1 — b *)] each contribute
   their rule list. *)
let rec markers_from line from acc =
  match find_marker line from with
  | None -> List.rev acc
  | Some start -> markers_from line start (start :: acc)

let scan source : t =
  let table = Hashtbl.create 8 in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun idx line ->
      match
        List.concat_map (tokens_after line) (markers_from line 0 [])
      with
      | [] -> ()
      | toks -> Hashtbl.replace table (idx + 1) toks)
    lines;
  table

let allows table ~line ~id ~name =
  let hit l =
    match Hashtbl.find_opt table l with
    | None -> false
    | Some toks ->
        List.mem (String.lowercase_ascii id) toks
        || List.mem (String.lowercase_ascii name) toks
  in
  hit line || hit (line - 1)

(* Hot-path markers for R10: a line containing [(* lint: hot *)] marks the
   definition starting on that line or the next one. *)

let hot_marker = "lint: hot"

let hot_lines source : int list =
  let m = String.length hot_marker in
  let hits = ref [] in
  List.iteri
    (fun idx line ->
      let n = String.length line in
      let rec search i =
        if i + m > n then ()
        else if String.sub line i m = hot_marker then hits := (idx + 1) :: !hits
        else search (i + 1)
      in
      search 0)
    (String.split_on_char '\n' source);
  List.rev !hits
