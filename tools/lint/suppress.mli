(** Per-line suppression comments: [(* lint: allow R1 — reason *)] on a line
    suppresses findings for the listed rules on that line and the one directly
    below it. *)

type t

val scan : string -> t
(** Scan raw source text for suppression comments. *)

val allows : t -> line:int -> id:string -> name:string -> bool
(** [allows t ~line ~id ~name] is true when a suppression for rule [id] (or
    its short [name], case-insensitive) covers [line]. *)

val hot_lines : string -> int list
(** 1-based line numbers carrying a [(* lint: hot *)] marker; a marker on a
    definition's first line or the line above it opts that definition into
    R10's no-allocation-in-loops check. *)
