(* The rule registry.

   Every rule is purely syntactic: we lint parsetrees, not typedtrees, so
   "polymorphic at a non-immediate type" is approximated by what is visible
   in the source (a bare [compare], a float/record/array/list/tuple literal
   operand). That trades a few theoretical false negatives for a linter with
   zero build-system coupling — it never needs cmt files or a type
   environment.

   To add a rule: write a [check : ctx -> structure -> Finding.t list]
   (usually with [collect] and an [Ast_iterator]), give it an id/name/doc and
   a scope filter, and append it to [all] below. Fixtures in
   test/lint_fixtures and a case in test/test_lint.ml complete the job. *)

open Parsetree

let finding ~rule:(r : Rule.t) (ctx : Rule.ctx) (loc : Location.t) msg =
  Finding.make ~rule:r.id ~name:r.name ~file:ctx.path loc msg

(* Run [make_iter acc] over a structure and return the collected findings. *)
let collect make_iter (str : structure) =
  let acc = ref [] in
  let it = make_iter acc in
  it.Ast_iterator.structure it str;
  !acc

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                  *)
(* ------------------------------------------------------------------ *)

let rec strip_stdlib (li : Longident.t) : Longident.t =
  match li with
  | Ldot (Lident "Stdlib", s) -> Lident s
  | Ldot (l, s) -> Ldot (strip_stdlib l, s)
  | l -> l

let rec components (li : Longident.t) : string list =
  match li with
  | Lident s -> [ s ]
  | Ldot (l, s) -> components l @ [ s ]
  | Lapply (a, b) -> components a @ components b

(* ------------------------------------------------------------------ *)
(* R1 poly-compare                                                    *)
(* ------------------------------------------------------------------ *)

(* Operands whose type is syntactically visible as non-immediate: comparing
   against these with (=)/(<)/... boxes through polymorphic compare. *)
let rec non_immediate_operand e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_record _ | Pexp_array _ | Pexp_tuple _ -> true
  | Pexp_construct ({ txt = Lident ("::" | "[]"); _ }, _) -> true
  | Pexp_constraint (e, _) -> non_immediate_operand e
  | _ -> false

let is_float_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint ({ pexp_desc = Pexp_constant (Pconst_float _); _ }, _) ->
      true
  | _ -> false

let rec r1 =
  {
    Rule.id = "R1";
    name = "poly-compare";
    doc =
      "no polymorphic compare, no =/<> against non-immediate literals, no \
       min/max on floats";
    applies = Rule.everywhere;
    check =
      (fun ctx str ->
        collect
          (fun acc ->
            let open Ast_iterator in
            let expr self e =
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } when strip_stdlib txt = Lident "compare"
                ->
                  acc :=
                    finding ~rule:r1 ctx loc
                      "polymorphic compare: use Float.compare / Int.compare / \
                       String.compare or a monomorphic comparator"
                    :: !acc
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
                  match strip_stdlib txt with
                  | Lident (("=" | "<>") as op)
                    when List.exists
                           (fun (_, a) -> non_immediate_operand a)
                           args ->
                      acc :=
                        finding ~rule:r1 ctx e.pexp_loc
                          (Printf.sprintf
                             "structural (%s) on a non-immediate operand: use \
                              Float.equal/Float.compare or match on the shape"
                             op)
                        :: !acc
                  | Lident (("min" | "max") as op)
                    when List.exists (fun (_, a) -> is_float_literal a) args ->
                      acc :=
                        finding ~rule:r1 ctx e.pexp_loc
                          (Printf.sprintf "polymorphic %s on float: use Float.%s"
                             op op)
                        :: !acc
                  | _ -> ())
              | _ -> ());
              default_iterator.expr self e
            in
            { default_iterator with expr })
          str);
  }

(* ------------------------------------------------------------------ *)
(* R2 no-global-random                                                *)
(* ------------------------------------------------------------------ *)

let mentions_random li = List.mem "Random" (components (strip_stdlib li))

let rec r2 =
  {
    Rule.id = "R2";
    name = "no-global-random";
    doc = "no Random.* in lib/ — all randomness flows through Prob.Rng";
    applies = Rule.lib_only;
    check =
      (fun ctx str ->
        let msg =
          "global Random in lib/: thread a Prob.Rng value instead so \
           replicate seeds stay reproducible"
        in
        collect
          (fun acc ->
            let open Ast_iterator in
            let expr self e =
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } when mentions_random txt ->
                  acc := finding ~rule:r2 ctx loc msg :: !acc
              | _ -> ());
              default_iterator.expr self e
            in
            let module_expr self m =
              (match m.pmod_desc with
              | Pmod_ident { txt; loc } when mentions_random txt ->
                  acc := finding ~rule:r2 ctx loc msg :: !acc
              | _ -> ());
              default_iterator.module_expr self m
            in
            { default_iterator with expr; module_expr })
          str);
  }

(* ------------------------------------------------------------------ *)
(* R3 no-stdout-in-lib                                                *)
(* ------------------------------------------------------------------ *)

let stdout_idents =
  [
    [ "print_string" ];
    [ "print_bytes" ];
    [ "print_char" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "print_endline" ];
    [ "print_newline" ];
    [ "stdout" ];
    [ "Printf"; "printf" ];
    [ "Format"; "printf" ];
    [ "Format"; "print_string" ];
    [ "Format"; "print_int" ];
    [ "Format"; "print_float" ];
    [ "Format"; "print_char" ];
    [ "Format"; "print_newline" ];
    [ "Format"; "print_space" ];
    [ "Format"; "print_cut" ];
    [ "Format"; "print_flush" ];
    [ "Format"; "std_formatter" ];
  ]

let rec r3 =
  {
    Rule.id = "R3";
    name = "no-stdout-in-lib";
    doc = "no printing to stdout from lib/ — return values or use lib/obs";
    applies = Rule.lib_only;
    check =
      (fun ctx str ->
        collect
          (fun acc ->
            let open Ast_iterator in
            let expr self e =
              (match e.pexp_desc with
              | Pexp_ident { txt; loc }
                when List.mem (components (strip_stdlib txt)) stdout_idents ->
                  acc :=
                    finding ~rule:r3 ctx loc
                      "stdout output from lib/: return values, take a \
                       formatter, or report through lib/obs instrumentation"
                    :: !acc
              | _ -> ());
              default_iterator.expr self e
            in
            { default_iterator with expr })
          str);
  }

(* ------------------------------------------------------------------ *)
(* R4 mli-required                                                    *)
(* ------------------------------------------------------------------ *)

let line1 path =
  let pos =
    { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 }
  in
  { Location.loc_start = pos; loc_end = pos; loc_ghost = true }

let rec r4 =
  {
    Rule.id = "R4";
    name = "mli-required";
    doc = "every lib/**/*.ml has a matching .mli";
    applies =
      (fun ctx -> Rule.lib_only ctx && Filename.check_suffix ctx.path ".ml");
    check =
      (fun ctx _str ->
        if ctx.mli_exists then []
        else
          [
            finding ~rule:r4 ctx (line1 ctx.path)
              "missing interface: add a .mli so the library's public surface \
               stays explicit";
          ]);
  }

(* ------------------------------------------------------------------ *)
(* R5 no-obj-magic                                                    *)
(* ------------------------------------------------------------------ *)

let rec r5 =
  {
    Rule.id = "R5";
    name = "no-obj-magic";
    doc = "no Obj.magic / Obj.repr / Obj.obj";
    applies = Rule.everywhere;
    check =
      (fun ctx str ->
        collect
          (fun acc ->
            let open Ast_iterator in
            let expr self e =
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } -> (
                  match components (strip_stdlib txt) with
                  | [ "Obj"; ("magic" | "repr" | "obj") ] ->
                      acc :=
                        finding ~rule:r5 ctx loc
                          "Obj breaks the type system: redesign with a \
                           variant or GADT instead"
                        :: !acc
                  | _ -> ())
              | _ -> ());
              default_iterator.expr self e
            in
            { default_iterator with expr })
          str);
  }

(* ------------------------------------------------------------------ *)
(* R6 no-catchall                                                     *)
(* ------------------------------------------------------------------ *)

let rec is_catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) -> is_catch_all p
  | _ -> false

(* Does the handler body syntactically reraise? *)
let reraises body =
  let found = ref false in
  let open Ast_iterator in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match components (strip_stdlib txt) with
        | [ "raise" ] | [ "raise_notrace" ] | [ "Printexc"; "raise_with_backtrace" ]
          ->
            found := true
        | _ -> ())
    | _ -> ());
    default_iterator.expr self e
  in
  let it = { default_iterator with expr } in
  it.expr it body;
  !found

let rec r6 =
  {
    Rule.id = "R6";
    name = "no-catchall";
    doc = "no catch-all exception handler that swallows the exception";
    applies = Rule.everywhere;
    check =
      (fun ctx str ->
        let msg =
          "catch-all handler swallows exceptions (Out_of_memory, Stack_overflow, \
           bugs): match specific exceptions or reraise"
        in
        let check_case acc (c : case) ~pat =
          if Option.is_none c.pc_guard && is_catch_all pat
             && not (reraises c.pc_rhs)
          then acc := finding ~rule:r6 ctx pat.ppat_loc msg :: !acc
        in
        collect
          (fun acc ->
            let open Ast_iterator in
            let expr self e =
              (match e.pexp_desc with
              | Pexp_try (_, cases) ->
                  List.iter (fun c -> check_case acc c ~pat:c.pc_lhs) cases
              | Pexp_match (_, cases) ->
                  List.iter
                    (fun c ->
                      match c.pc_lhs.ppat_desc with
                      | Ppat_exception p -> check_case acc c ~pat:p
                      | _ -> ())
                    cases
              | _ -> ());
              default_iterator.expr self e
            in
            { default_iterator with expr })
          str);
  }

(* ------------------------------------------------------------------ *)
(* R7 concurrency-confinement                                         *)
(* ------------------------------------------------------------------ *)

(* lib/par is the one place allowed to use the multicore primitives; its
   dune lint rule passes bare filenames, so it opts out with --except R7
   rather than relying on this path check. *)
let under_par (ctx : Rule.ctx) =
  let rec has = function
    | "lib" :: "par" :: _ -> true
    | _ :: rest -> has rest
    | [] -> false
  in
  has (String.split_on_char '/' ctx.path)

let concurrency_root = function
  | "Domain" | "Atomic" | "Mutex" | "Condition" | "Semaphore" -> true
  | _ -> false

let mentions_concurrency li =
  match components (strip_stdlib li) with
  | root :: _ -> concurrency_root root
  | [] -> false

let rec r7 =
  {
    Rule.id = "R7";
    name = "concurrency-confinement";
    doc =
      "Domain/Atomic/Mutex/Condition/Semaphore only under lib/par/ — \
       parallelism goes through Rumor_par.Pool";
    applies = (fun ctx -> Rule.everywhere ctx && not (under_par ctx));
    check =
      (fun ctx str ->
        let msg =
          "shared-memory concurrency outside lib/par/: use Rumor_par.Pool so \
           scheduling, teardown and determinism stay in one audited module"
        in
        collect
          (fun acc ->
            let open Ast_iterator in
            let expr self e =
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } when mentions_concurrency txt ->
                  acc := finding ~rule:r7 ctx loc msg :: !acc
              | _ -> ());
              default_iterator.expr self e
            in
            let module_expr self m =
              (match m.pmod_desc with
              | Pmod_ident { txt; loc } when mentions_concurrency txt ->
                  acc := finding ~rule:r7 ctx loc msg :: !acc
              | _ -> ());
              default_iterator.module_expr self m
            in
            { default_iterator with expr; module_expr })
          str);
  }

(* ------------------------------------------------------------------ *)
(* R8 clock-confinement                                               *)
(* ------------------------------------------------------------------ *)

(* lib/obs owns the wall clock (Rumor_obs.Clock is the one audited call
   site); like lib/par with R7, its dune lint rule passes bare filenames
   and opts out with --except R8 rather than relying on this path check. *)
let under_obs (ctx : Rule.ctx) =
  let rec has = function
    | "lib" :: "obs" :: _ -> true
    | _ :: rest -> has rest
    | [] -> false
  in
  has (String.split_on_char '/' ctx.path)

let clock_ident li =
  match components (strip_stdlib li) with
  | [ "Unix"; ("gettimeofday" | "time" | "times") ] -> true
  | [ "Sys"; "time" ] -> true
  | ("Mtime" | "Mtime_clock") :: _ -> true
  | _ -> false

let rec r8 =
  {
    Rule.id = "R8";
    name = "clock-confinement";
    doc =
      "Unix.gettimeofday / Sys.time / Mtime only under lib/obs/ — wall-clock \
       reads go through Rumor_obs.Clock";
    applies = (fun ctx -> Rule.everywhere ctx && not (under_obs ctx));
    check =
      (fun ctx str ->
        let msg =
          "wall-clock read outside lib/obs/: use Rumor_obs.Clock so the time \
           source stays swappable and simulation logic provably never reads \
           real time"
        in
        collect
          (fun acc ->
            let open Ast_iterator in
            let expr self e =
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } when clock_ident txt ->
                  acc := finding ~rule:r8 ctx loc msg :: !acc
              | _ -> ());
              default_iterator.expr self e
            in
            { default_iterator with expr })
          str);
  }

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let all : Rule.t list = [ r1; r2; r3; r4; r5; r6; r7; r8 ]
