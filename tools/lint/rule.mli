(** The rule interface: what a lint rule sees and what it produces. *)

type scope = Lib | Bin | Bench | Test | Other

val scope_of_string : string -> scope option
val scope_to_string : scope -> string

type ctx = {
  path : string;  (** path as reported in findings *)
  scope : scope;
  mli_exists : bool;  (** a sibling [.mli] exists next to this [.ml] *)
}

type t = {
  id : string;  (** "R1" *)
  name : string;  (** "poly-compare" *)
  doc : string;  (** one-line description for [--list-rules] *)
  applies : ctx -> bool;  (** scope filter; checked before [check] runs *)
  check : ctx -> Parsetree.structure -> Finding.t list;
}

val everywhere : ctx -> bool
val lib_only : ctx -> bool
