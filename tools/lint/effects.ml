(* The interprocedural effect fixpoint over Cmt_loader summaries.

   Each definition gets a set of reached facts (Summary.fact), each with
   one witness origin: Direct (this body touches the primitive) or Via
   (a callee reaches it). Propagation follows the call graph to a fixed
   point, cutting at the two sanctioned absorber layers: lib/par absorbs
   concurrency and shared-mutation facts (that is R7's boundary), and
   lib/obs absorbs wall-clock facts (R8's boundary).

   Name resolution works on the dotted paths recorded in summaries:
   first local [module X = P] aliases of the calling module, then the
   global alias table harvested from every summary — dune's generated
   wrapper modules ([module Rng = Rumor_prob__Rng] inside Rumor_prob)
   are ordinary aliases there, which is what undoes the __ mangling.
   A final fallback matches a lone head component against the known
   compilation units ("Engine.push" -> "Rumor_protocols__Engine.push")
   when the match is unambiguous. *)

type origin =
  | Direct of { prim : string; oline : int }
  | Via of { callee : string; vline : int }

type info = {
  key : string;  (** "Rumor_protocols__Engine.push" *)
  modname : string;
  source : string;  (** source path recorded in the cmt, "" if unknown *)
  def : Summary.def;
  mutable reach : (Summary.fact * origin) list;
}

type t = {
  infos : (string, info) Hashtbl.t;
  order : string list;  (** sorted keys: deterministic iteration *)
  global_aliases : (string, string list) Hashtbl.t;
  local_aliases : (string, (string, string list) Hashtbl.t) Hashtbl.t;
  by_digest : (string, Summary.t) Hashtbl.t;
  modnames : string list;
}

(* "Rumor_par__Pool.init" -> "Rumor_par.Pool.init": undo dune's wrapped
   library mangling for display and for canonical comparisons. *)
let display key =
  let b = Buffer.create (String.length key) in
  let n = String.length key in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && key.[!i] = '_' && key.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b key.[!i];
      incr i
    end
  done;
  Buffer.contents b

let under_par_source source =
  Rules.under_par { Rule.path = source; scope = Rule.Lib; mli_exists = false }

let under_obs_source source =
  Rules.under_obs { Rule.path = source; scope = Rule.Lib; mli_exists = false }

(* ------------------------------------------------------------------ *)
(* Builtin effect classification                                      *)
(* ------------------------------------------------------------------ *)

let is_stdout_ident parts =
  List.exists (fun known -> known = parts) Rules.stdout_idents
  || (match parts with [ "Fmt"; ("pr" | "epr") ] -> true | _ -> false)

let classify_builtin parts : (Summary.fact * string) option =
  let parts = match parts with "Stdlib" :: rest -> rest | _ -> parts in
  let prim = String.concat "." parts in
  match parts with
  | "Random" :: _ :: _ -> Some (Summary.Rng, prim)
  | ("Domain" | "Atomic" | "Mutex" | "Condition" | "Semaphore") :: _ ->
      Some (Summary.Conc, prim)
  | [ "Unix"; ("gettimeofday" | "time" | "times") ] | [ "Sys"; "time" ] ->
      Some (Summary.Clock, prim)
  | ("Mtime" | "Mtime_clock") :: _ -> Some (Summary.Clock, prim)
  | _ -> if is_stdout_ident parts then Some (Summary.Io, prim) else None

(* ------------------------------------------------------------------ *)
(* Name resolution                                                    *)
(* ------------------------------------------------------------------ *)

let take n xs =
  let rec go n xs acc =
    match (n, xs) with
    | 0, _ | _, [] -> List.rev acc
    | n, x :: rest -> go (n - 1) rest (x :: acc)
  in
  go n xs []

let drop n xs =
  let rec go n xs = match (n, xs) with 0, _ -> xs | _, [] -> [] | n, _ :: r -> go (n - 1) r in
  go n xs

(* Rewrite the leading components of [parts] through the alias tables
   until nothing changes (with fuel, in case of alias cycles). *)
let rewrite t ~modname parts =
  let local = Hashtbl.find_opt t.local_aliases modname in
  let step parts =
    (* longest matching prefix wins, local aliases first *)
    let try_local =
      match (local, parts) with
      | Some tbl, head :: rest -> (
          match Hashtbl.find_opt tbl head with
          | Some target -> Some (target @ rest)
          | None -> None)
      | _ -> None
    in
    match try_local with
    | Some p -> Some p
    | None ->
        let n = List.length parts in
        let rec prefix k =
          if k < 1 then None
          else
            let key = String.concat "." (take k parts) in
            match Hashtbl.find_opt t.global_aliases key with
            | Some target -> Some (target @ drop k parts)
            | None -> prefix (k - 1)
        in
        prefix (min n 4)
  in
  let rec go fuel parts =
    if fuel = 0 then parts
    else match step parts with Some p when p <> parts -> go (fuel - 1) p | _ -> parts
  in
  go 8 parts

let resolve t ~modname (target : Summary.target) : string =
  match target with
  | Summary.Local name -> modname ^ "." ^ name
  | Summary.Global parts -> String.concat "." (rewrite t ~modname parts)

(* Find the definition a resolved dotted name denotes, if it is in the
   loaded summaries. *)
let find_info t ~modname resolved : info option =
  match Hashtbl.find_opt t.infos resolved with
  | Some i -> Some i
  | None -> (
      (* same-unit nested module reference: "Builder.add_edge" *)
      match Hashtbl.find_opt t.infos (modname ^ "." ^ resolved) with
      | Some i -> Some i
      | None -> (
          (* unambiguous unwrapped unit: "Engine.push" when exactly one
             known unit is Engine or *__Engine *)
          match String.index_opt resolved '.' with
          | None -> None
          | Some dot -> (
              let head = String.sub resolved 0 dot in
              let rest =
                String.sub resolved (dot + 1) (String.length resolved - dot - 1)
              in
              let suffix = "__" ^ head in
              let matches =
                List.filter
                  (fun mn ->
                    String.equal mn head
                    || (String.length mn > String.length suffix
                       && String.equal suffix
                            (String.sub mn
                               (String.length mn - String.length suffix)
                               (String.length suffix))))
                  t.modnames
              in
              match matches with
              | [ mn ] -> Hashtbl.find_opt t.infos (mn ^ "." ^ rest)
              | _ -> None)))

(* ------------------------------------------------------------------ *)
(* Reach manipulation                                                 *)
(* ------------------------------------------------------------------ *)

let reach_of info fact =
  List.find_map
    (fun (f, o) -> if Summary.fact_equal f fact then Some o else None)
    info.reach

let add_reach info fact origin =
  match reach_of info fact with
  | Some _ -> false
  | None ->
      info.reach <- (fact, origin) :: info.reach;
      true

let reach t key fact =
  match Hashtbl.find_opt t.infos key with
  | None -> None
  | Some info -> reach_of info fact

let origin_is_direct t key fact =
  match reach t key fact with Some (Direct _) -> true | _ -> false

(* The witness chain for a reached fact: the flagged definition first,
   then each callee hop, ending at the offending primitive. *)
let chain t key fact : string list =
  let rec go key acc visited =
    if List.mem key visited then List.rev acc
    else
      match reach t key fact with
      | None -> List.rev acc
      | Some (Direct { prim; _ }) -> List.rev (display prim :: display key :: acc)
      | Some (Via { callee; _ }) -> go callee (display key :: acc) (key :: visited)
  in
  go key [] []

(* ------------------------------------------------------------------ *)
(* Build: tables, seeding, fixpoint                                   *)
(* ------------------------------------------------------------------ *)

(* The base rule whose suppression also silences this fact's seed: an
   intentional, commented primitive use (e.g. Table.print's R3 allow)
   should not re-surface at every caller through R9. *)
let seed_rule = function
  | Summary.Rng -> ("R2", "no-global-random")
  | Summary.Io -> ("R3", "no-stdout-in-lib")
  | Summary.Conc -> ("R7", "concurrency-confinement")
  | Summary.Clock -> ("R8", "clock-confinement")
  | Summary.Mut -> ("R11", "domain-race")
  | Summary.Alloc -> ("R10", "hot-path-alloc")

let seed_allowed sup fact line =
  match sup with
  | None -> false
  | Some table ->
      let id, name = seed_rule fact in
      Suppress.allows table ~line ~id ~name
      || Suppress.allows table ~line ~id:"R9" ~name:"effect-confinement"

let build (summaries : Summary.t list) ~suppress_for : t =
  let infos = Hashtbl.create 256 in
  let global_aliases = Hashtbl.create 64 in
  let local_aliases = Hashtbl.create 64 in
  let by_digest = Hashtbl.create 64 in
  List.iter
    (fun (s : Summary.t) ->
      if s.digest <> "" then Hashtbl.replace by_digest s.digest s;
      let local = Hashtbl.create 8 in
      List.iter
        (fun (name, parts) ->
          Hashtbl.replace local name parts;
          Hashtbl.replace global_aliases (s.modname ^ "." ^ name) parts)
        s.aliases;
      Hashtbl.replace local_aliases s.modname local;
      List.iter
        (fun (d : Summary.def) ->
          let key = s.modname ^ "." ^ d.dname in
          Hashtbl.replace infos key
            { key; modname = s.modname; source = s.source; def = d; reach = [] })
        s.defs)
    summaries;
  let order =
    Hashtbl.fold (fun k _ acc -> k :: acc) infos [] |> List.sort String.compare
  in
  let modnames = List.map (fun (s : Summary.t) -> s.modname) summaries in
  let t = { infos; order; global_aliases; local_aliases; by_digest; modnames } in
  (* seed direct facts *)
  List.iter
    (fun key ->
      let info = Hashtbl.find infos key in
      let sup = suppress_for info.source in
      List.iter
        (fun (c : Summary.call) ->
          match c.target with
          | Summary.Local _ -> ()
          | Summary.Global parts -> (
              let parts = rewrite t ~modname:info.modname parts in
              match classify_builtin parts with
              | Some (fact, prim) ->
                  if not (seed_allowed sup fact c.cline) then
                    ignore
                      (add_reach info fact (Direct { prim; oline = c.cline }))
              | None -> ()))
        info.def.calls;
      (match info.def.mutates with
      | Some w ->
          if not (seed_allowed sup Summary.Mut w.wline) then
            ignore
              (add_reach info Summary.Mut
                 (Direct { prim = w.wdesc; oline = w.wline }))
      | None -> ());
      match info.def.allocs with
      | a :: _ ->
          if not (seed_allowed sup Summary.Alloc a.aline) then
            ignore
              (add_reach info Summary.Alloc
                 (Direct { prim = "allocation"; oline = a.aline }))
      | [] -> ())
    order;
  (* propagate to a fixed point, cutting at the absorber layers *)
  let absorbed callee fact =
    (under_par_source callee.source
    && (Summary.fact_equal fact Summary.Conc
       || Summary.fact_equal fact Summary.Mut))
    || (under_obs_source callee.source && Summary.fact_equal fact Summary.Clock)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun key ->
        let info = Hashtbl.find infos key in
        List.iter
          (fun (c : Summary.call) ->
            let resolved = resolve t ~modname:info.modname c.target in
            match find_info t ~modname:info.modname resolved with
            | None -> ()
            | Some callee ->
                if not (String.equal callee.key info.key) then
                  List.iter
                    (fun (fact, _) ->
                      if not (absorbed callee fact) then
                        if
                          add_reach info fact
                            (Via { callee = callee.key; vline = c.cline })
                        then changed := true)
                    callee.reach)
          info.def.calls)
      order
  done;
  t

let summary_for_digest t digest = Hashtbl.find_opt t.by_digest digest
