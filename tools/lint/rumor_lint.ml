(* rumor_lint: determinism and comparison discipline for the rumor tree.

   Usage:
     rumor_lint [options] <file-or-dir>...

   Parses every .ml/.mli it is given (directories are walked recursively)
   with compiler-libs and runs the rule registry over each implementation.
   With --typed (or --only naming a typed rule) it additionally loads the
   .cmt files under --cmt-root, builds the interprocedural effect fixpoint
   (see Effects) and runs the typedtree rules R9-R11 over every input file
   whose digest matches a compiled module. Exit codes mirror rumor_report's
   contract:

     0  clean
     1  at least one finding
     2  parse or I/O error (reported on stderr)

   Suppression: a line containing  (* lint: allow R1 — reason *)  silences
   the listed rules on that line and the next one. *)

let usage = "rumor_lint [options] <file-or-dir>...\noptions:"

(* ------------------------------------------------------------------ *)
(* CLI state                                                          *)
(* ------------------------------------------------------------------ *)

type format = Text | Json

let root = ref "."
let forced_scope = ref None
let only = ref None
let except = ref []
let excludes = ref []
let list_rules = ref false
let typed = ref false
let cmt_root = ref None
let format = ref Text
let paths = ref []

let set_scope s =
  match Rule.scope_of_string s with
  | Some sc -> forced_scope := Some sc
  | None -> raise (Arg.Bad (Printf.sprintf "unknown scope %S" s))

let set_format s =
  match s with
  | "text" -> format := Text
  | "json" -> format := Json
  | _ -> raise (Arg.Bad (Printf.sprintf "unknown format %S (text|json)" s))

let rule_tokens s =
  String.split_on_char ',' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun t -> t <> "")
  |> List.map String.lowercase_ascii

(* Both registries, as (id, name) keys, for --only/--except validation. *)
let registry_keys =
  List.map (fun (r : Rule.t) -> (r.id, r.name)) Rules.all
  @ List.map (fun (r : Typed_rules.t) -> (r.id, r.name)) Typed_rules.all

let key_matches (id, name) tokens =
  List.mem (String.lowercase_ascii id) tokens
  || List.mem (String.lowercase_ascii name) tokens

let matches_token (r : Rule.t) tokens = key_matches (r.id, r.name) tokens

let typed_matches_token (r : Typed_rules.t) tokens =
  key_matches (r.id, r.name) tokens

let set_only s =
  let wanted = rule_tokens s in
  if not (List.exists (fun k -> key_matches k wanted) registry_keys) then
    raise (Arg.Bad (Printf.sprintf "--only %s selects no rules" s));
  only := Some wanted

let set_except s =
  let wanted = rule_tokens s in
  List.iter
    (fun w ->
      if not (List.exists (fun k -> key_matches k [ w ]) registry_keys) then
        raise (Arg.Bad (Printf.sprintf "--except %s names no rule" w)))
    wanted;
  except := wanted @ !except

let spec =
  [
    ( "--root",
      Arg.Set_string root,
      "DIR resolve lib/bin/bench/test scopes relative to DIR (default .)" );
    ( "--scope",
      Arg.String set_scope,
      "S force scope for all inputs: lib|bin|bench|test|other (default: from \
       path)" );
    ( "--only",
      Arg.String set_only,
      "IDS run only these rules (comma-separated ids or names)" );
    ( "--except",
      Arg.String set_except,
      "IDS skip these rules (comma-separated ids or names; repeatable)" );
    ( "--exclude",
      Arg.String (fun s -> excludes := s :: !excludes),
      "SUB skip paths containing SUB (repeatable; scratch/, examples/ and \
       lint_fixtures/ are always skipped unless named explicitly)" );
    ( "--typed",
      Arg.Set typed,
      " run the typedtree rules (R9-R11) against the cmts under --cmt-root" );
    ( "--cmt-root",
      Arg.String (fun s -> cmt_root := Some s),
      "DIR where to discover .cmt files (default: _build/default if present, \
       else .)" );
    ( "--format",
      Arg.String set_format,
      "F output format: text (default) or json (a rumor-lint/1 document)" );
    ("--list-rules", Arg.Set list_rules, " print the rule table and exit");
  ]

(* ------------------------------------------------------------------ *)
(* File collection                                                    *)
(* ------------------------------------------------------------------ *)

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let excluded path =
  let has_sub sub =
    let n = String.length path and m = String.length sub in
    let rec at i = i + m <= n && (String.sub path i m = sub || at (i + 1)) in
    m > 0 && at 0
  in
  List.exists has_sub !excludes

(* Directory entries never linted unless passed as an explicit root:
   scratch/ and examples/ are demo code outside the discipline, and
   lint_fixtures/ is a corpus of deliberate offenders. *)
let default_skip = [ "scratch"; "examples"; "lint_fixtures" ]

let rec walk path acc =
  if excluded path then acc
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.filter (fun name ->
           (not (String.length name > 0 && (name.[0] = '_' || name.[0] = '.')))
           && not (List.mem name default_skip))
    |> List.fold_left (fun acc name -> walk (Filename.concat path name) acc) acc
  else if is_source path then path :: acc
  else acc

let collect_files args =
  List.fold_left (fun acc p -> walk p acc) [] args
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* Scope resolution                                                   *)
(* ------------------------------------------------------------------ *)

(* Path of [path] relative to [root], textually: enough for scope sniffing. *)
let relativize ~root path =
  let norm p =
    if String.length p >= 2 && String.sub p 0 2 = "./" then
      String.sub p 2 (String.length p - 2)
    else p
  in
  let root = norm root and path = norm path in
  if root = "." || root = "" then path
  else
    let root = if Filename.check_suffix root "/" then root else root ^ "/" in
    let rl = String.length root in
    if String.length path > rl && String.sub path 0 rl = root then
      String.sub path rl (String.length path - rl)
    else path

let scope_of_path path =
  match !forced_scope with
  | Some s -> s
  | None -> (
      let rel = relativize ~root:!root path in
      match String.split_on_char '/' rel with
      | first :: _ :: _ -> (
          (* only a directory component counts, hence the two-element match *)
          match Rule.scope_of_string first with
          | Some s -> s
          | None -> Rule.Other)
      | _ -> Rule.Other)

let ctx_of_path path =
  {
    Rule.path;
    scope = scope_of_path path;
    mli_exists =
      Filename.check_suffix path ".ml"
      && Sys.file_exists (Filename.remove_extension path ^ ".mli");
  }

(* ------------------------------------------------------------------ *)
(* Linting one file (parsetree rules)                                 *)
(* ------------------------------------------------------------------ *)

type outcome = Findings of Finding.t list | Failed of string

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_error_message exn =
  match Location.error_of_exn exn with
  | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
  | Some `Already_displayed | None -> Printexc.to_string exn

let lint_file rules path =
  match read_file path with
  | exception Sys_error msg -> Failed msg
  | source -> (
      let lexbuf = Lexing.from_string source in
      Location.init lexbuf path;
      let parsed =
        if Filename.check_suffix path ".mli" then (
          (* interfaces are parsed so syntax errors surface as exit 2, but
             the rules only inspect implementations *)
          match Parse.interface lexbuf with
          | (_ : Parsetree.signature) -> Ok []
          (* lint: allow R6 — any parse failure becomes an exit-2 diagnostic *)
          | exception exn -> Error (parse_error_message exn))
        else
          match Parse.implementation lexbuf with
          | str -> Ok [ str ]
          (* lint: allow R6 — any parse failure becomes an exit-2 diagnostic *)
          | exception exn -> Error (parse_error_message exn)
      in
      match parsed with
      | Error msg -> Failed msg
      | Ok structures ->
          let ctx = ctx_of_path path in
          let suppressions = Suppress.scan source in
          let findings =
            List.concat_map
              (fun str ->
                List.concat_map
                  (fun (r : Rule.t) ->
                    if r.applies ctx then r.check ctx str else [])
                  rules)
              structures
            |> List.filter (fun (f : Finding.t) ->
                   not
                     (Suppress.allows suppressions ~line:f.line ~id:f.rule
                        ~name:f.name))
          in
          Findings findings)

(* ------------------------------------------------------------------ *)
(* The typed pass (R9-R11 over cmts)                                  *)
(* ------------------------------------------------------------------ *)

(* Inputs are matched to compiled modules by source digest, so the pass
   is immune to path spelling differences between the walk and the cmts
   (workspace root vs _build/default). A file with no matching cmt is
   skipped: only compiled code can be analyzed. *)
let typed_pass trules files =
  let croot =
    match !cmt_root with
    | Some d -> d
    | None ->
        let d = Filename.concat "_build" "default" in
        if Sys.file_exists d && Sys.is_directory d then d else "."
  in
  let summaries = Cmt_loader.load_all croot in
  let sup_cache = Hashtbl.create 32 in
  let suppress_for source =
    match Hashtbl.find_opt sup_cache source with
    | Some s -> s
    | None ->
        let s =
          if source <> "" && Sys.file_exists source then
            match read_file source with
            | src -> Some (Suppress.scan src)
            | exception Sys_error _ -> None
          else None
        in
        Hashtbl.add sup_cache source s;
        s
  in
  let env = Effects.build summaries ~suppress_for in
  let matched = ref 0 in
  let findings =
    List.concat_map
      (fun path ->
        if not (Filename.check_suffix path ".ml") then []
        else
          match Digest.file path with
          | exception Sys_error _ -> []
          | digest -> (
              match
                Effects.summary_for_digest env (Digest.to_hex digest)
              with
              | None -> []
              | Some summary -> (
                  incr matched;
                  match read_file path with
                  | exception Sys_error _ -> []
                  | source ->
                      let ctx = ctx_of_path path in
                      let suppressions = Suppress.scan source in
                      let tc =
                        {
                          Typed_rules.rctx = ctx;
                          summary;
                          env;
                          hot_lines = Suppress.hot_lines source;
                        }
                      in
                      List.concat_map
                        (fun (r : Typed_rules.t) ->
                          if r.applies ctx then r.check tc else [])
                        trules
                      |> List.filter (fun (f : Finding.t) ->
                             not
                               (Suppress.allows suppressions ~line:f.line
                                  ~id:f.rule ~name:f.name)))))
      files
  in
  if !matched = 0 && List.exists (fun p -> Filename.check_suffix p ".ml") files
  then
    Printf.eprintf
      "rumor_lint: note: typed rules matched no inputs under cmt root %s \
       (run `dune build @check` first?)\n"
      croot;
  findings

(* ------------------------------------------------------------------ *)
(* Output                                                             *)
(* ------------------------------------------------------------------ *)

let print_text findings errors =
  List.iter (fun f -> print_endline (Finding.to_string f)) findings;
  List.iter
    (fun (path, msg) -> Printf.eprintf "rumor_lint: %s: %s\n" path msg)
    errors

let print_json findings errors =
  let doc =
    Rumor_obs.Json.Obj
      [
        ("schema", Rumor_obs.Json.String "rumor-lint/1");
        ("findings", Rumor_obs.Json.List (List.map Finding.to_json findings));
        ( "errors",
          Rumor_obs.Json.List
            (List.map
               (fun (path, msg) ->
                 Rumor_obs.Json.Obj
                   [
                     ("file", Rumor_obs.Json.String path);
                     ("message", Rumor_obs.Json.String msg);
                   ])
               errors) );
      ]
  in
  print_endline (Rumor_obs.Json.to_string_json doc);
  List.iter
    (fun (path, msg) -> Printf.eprintf "rumor_lint: %s: %s\n" path msg)
    errors

(* ------------------------------------------------------------------ *)
(* Main                                                               *)
(* ------------------------------------------------------------------ *)

let print_rule_table () =
  let bin_ctx = { Rule.path = ""; scope = Rule.Bin; mli_exists = true } in
  List.iter
    (fun (r : Rule.t) ->
      let scopes = if r.applies bin_ctx then "everywhere" else "lib/ only" in
      Printf.printf "%s  %-20s %-10s %s\n" r.id r.name scopes r.doc)
    Rules.all;
  List.iter
    (fun (r : Typed_rules.t) ->
      let scopes = if r.applies bin_ctx then "everywhere" else "lib/ only" in
      Printf.printf "%s %-20s %-10s (typed) %s\n" r.id r.name scopes r.doc)
    Typed_rules.all

let () =
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then (
    print_rule_table ();
    exit 0);
  (match !paths with
  | [] ->
      prerr_endline
        "rumor_lint: no inputs (try: rumor_lint lib bin bench test)";
      exit 2
  | _ :: _ -> ());
  let parse_rules =
    (match !only with
    | Some toks -> List.filter (fun r -> matches_token r toks) Rules.all
    | None -> Rules.all)
    |> List.filter (fun r -> not (matches_token r !except))
  in
  let typed_enabled =
    !typed
    || match !only with
       | Some toks ->
           List.exists (fun r -> typed_matches_token r toks) Typed_rules.all
       | None -> false
  in
  let typed_rules =
    if not typed_enabled then []
    else
      (match !only with
      | Some toks ->
          List.filter (fun r -> typed_matches_token r toks) Typed_rules.all
      | None -> Typed_rules.all)
      |> List.filter (fun r -> not (typed_matches_token r !except))
  in
  let files =
    match collect_files (List.rev !paths) with
    | files -> files
    | exception Sys_error msg ->
        Printf.eprintf "rumor_lint: %s\n" msg;
        exit 2
  in
  let findings, errors =
    List.fold_left
      (fun (fs, errs) path ->
        match lint_file parse_rules path with
        | Findings f -> (f @ fs, errs)
        | Failed msg -> (fs, (path, msg) :: errs))
      ([], []) files
  in
  let findings =
    match typed_rules with
    | [] -> findings
    | _ :: _ -> typed_pass typed_rules files @ findings
  in
  let findings = List.sort Finding.order findings in
  let errors = List.rev errors in
  (match !format with
  | Text -> print_text findings errors
  | Json -> print_json findings errors);
  let n = List.length findings in
  if n > 0 then
    Printf.eprintf "rumor_lint: %d finding%s in %d file%s\n" n
      (if n = 1 then "" else "s")
      (List.length files)
      (if List.length files = 1 then "" else "s");
  match (errors, findings) with
  | _ :: _, _ -> exit 2
  | [], _ :: _ -> exit 1
  | [], [] -> exit 0
