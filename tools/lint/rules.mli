(** The rule registry. See rules.ml for how to add a rule. *)

val all : Rule.t list
(** All registered rules, in id order: R1 poly-compare, R2 no-global-random,
    R3 no-stdout-in-lib, R4 mli-required, R5 no-obj-magic, R6 no-catchall. *)

(** {1 Shared vocabulary} — reused by the typed layer (Effects, Typed_rules). *)

val stdout_idents : string list list
(** The dotted idents R3 treats as printing to stdout. *)

val under_par : Rule.ctx -> bool
(** The path has a [lib/par/] component: R7's sanctioned concurrency layer. *)

val under_obs : Rule.ctx -> bool
(** The path has a [lib/obs/] component: R8's sanctioned wall-clock layer. *)
