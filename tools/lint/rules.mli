(** The rule registry. See rules.ml for how to add a rule. *)

val all : Rule.t list
(** All registered rules, in id order: R1 poly-compare, R2 no-global-random,
    R3 no-stdout-in-lib, R4 mli-required, R5 no-obj-magic, R6 no-catchall. *)
