(* Per-module facts extracted from one .cmt file.

   A summary is plain marshalable data: no Ident.t, no Path.t, no
   Location.t — just strings and ints — so it can be cached on disk
   keyed by the cmt digest (see Cmt_loader) and compared across
   compiler versions only via the cache version stamp.

   Field-name prefixes (dname/aline/wline/pline) keep the records
   unambiguous to read at use sites; all positions are 1-based lines
   and 0-based columns, matching Finding. *)

(* Effects propagated by the fixpoint in Effects. *)
type fact =
  | Rng  (** uses the global [Random] state *)
  | Clock  (** reads the wall clock *)
  | Conc  (** touches a concurrency primitive *)
  | Io  (** prints to stdout *)
  | Mut  (** writes mutable state it does not own (ref/field/array) *)
  | Alloc  (** allocates inside a loop *)

let fact_equal a b =
  match (a, b) with
  | Rng, Rng | Clock, Clock | Conc, Conc | Io, Io | Mut, Mut | Alloc, Alloc ->
      true
  | (Rng | Clock | Conc | Io | Mut | Alloc), _ -> false

let fact_name = function
  | Rng -> "global-rng"
  | Clock -> "wall-clock"
  | Conc -> "concurrency"
  | Io -> "stdout"
  | Mut -> "shared-mutation"
  | Alloc -> "loop-allocation"

(* A call (or any use of a function-valued identifier: passing [f] to a
   higher-order function also creates an edge, which keeps the effect
   propagation conservative). *)
type target =
  | Local of string  (** resolved to a definition in the same module *)
  | Global of string list  (** written path components, e.g. ["Rng";"int"] *)

type call = { target : target; cline : int }

type alloc_kind =
  | Closure
  | Tuple
  | Record
  | Variant of string  (** non-constant constructor, e.g. "Some" or "::" *)
  | Array_lit
  | Ref_cell
  | Partial_app

type alloc = { kind : alloc_kind; aline : int; acol : int }

(* A mutation of state the function does not own: the written root is
   neither a local binding nor a parameter. *)
type write = { wdesc : string; wline : int; wcol : int }

(* One application of a (potential) parallel-run entry point that takes a
   literal closure argument; the closure body has been pre-analyzed for
   shard-unsafe writes and for the calls it makes. *)
type par_call = {
  fn : target;
  pline : int;
  pcol : int;
  unsafe_writes : write list;
  closure_calls : call list;
}

type def = {
  dname : string;  (** nested modules prefixed: "Builder.add_edge" *)
  dline : int;
  dcol : int;
  calls : call list;  (** deduplicated by target, first occurrence *)
  allocs : alloc list;  (** allocation sites inside this def's loops *)
  par_calls : par_call list;
  mutates : write option;  (** first shared-state write, if any *)
}

type t = {
  modname : string;  (** compilation unit name, e.g. "Rumor_prob__Rng" *)
  source : string;  (** cmt_sourcefile, "" when absent *)
  digest : string;  (** hex digest of the source, "" when absent *)
  aliases : (string * string list) list;
      (** [module X = P] bindings, including dune wrapper modules *)
  defs : def list;
}

let target_key = function
  | Local s -> "." ^ s
  | Global parts -> String.concat "." parts
