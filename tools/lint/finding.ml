(* A single lint finding, pointing at file:line:col. *)

type t = {
  rule : string;  (** rule id, e.g. "R1" *)
  name : string;  (** rule short name, e.g. "poly-compare" *)
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  msg : string;
  chain : string list;
      (** interprocedural witness, outermost first (R9/R11); [] otherwise *)
}

let make ~rule ~name ~file (loc : Location.t) msg =
  let p = loc.loc_start in
  {
    rule;
    name;
    file;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    msg;
    chain = [];
  }

let make_at ~rule ~name ~file ~line ~col ?(chain = []) msg =
  { rule; name; file; line; col; msg; chain }

let order a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s %s] %s" f.file f.line f.col f.rule f.name f.msg

(* JSON shape for the rumor-lint/1 document (see the driver): the chain
   field is present only when the finding carries one. *)
let to_json f : Rumor_obs.Json.t =
  let base =
    [
      ("file", Rumor_obs.Json.String f.file);
      ("line", Rumor_obs.Json.Int f.line);
      ("col", Rumor_obs.Json.Int f.col);
      ("rule", Rumor_obs.Json.String f.rule);
      ("name", Rumor_obs.Json.String f.name);
      ("message", Rumor_obs.Json.String f.msg);
    ]
  in
  let chain =
    match f.chain with
    | [] -> []
    | steps ->
        [
          ( "chain",
            Rumor_obs.Json.List
              (List.map (fun s -> Rumor_obs.Json.String s) steps) );
        ]
  in
  Rumor_obs.Json.Obj (base @ chain)
