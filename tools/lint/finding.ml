(* A single lint finding, pointing at file:line:col. *)

type t = {
  rule : string;  (** rule id, e.g. "R1" *)
  name : string;  (** rule short name, e.g. "poly-compare" *)
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  msg : string;
}

let make ~rule ~name ~file (loc : Location.t) msg =
  let p = loc.loc_start in
  { rule; name; file; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; msg }

let order a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s %s] %s" f.file f.line f.col f.rule f.name f.msg
