(* Loading .cmt files into Summary.t values.

   dune writes one .cmt per compiled module under _build (the @check
   alias is the cheapest way to produce them all). [load_all] walks a
   root for *.cmt files, reads each with Cmt_format, and extracts the
   plain-data summary the Effects fixpoint and the typed rules consume:
   top-level definitions, the calls they make, allocation sites inside
   their loops, writes to state they do not own, and applications of
   parallel-run entry points with their closure arguments pre-analyzed.

   Extraction is syntactic over the *typed* tree, so module aliases,
   dune's wrapped-library name mangling ([Rumor_prob.Rng] vs
   [Rumor_prob__Rng]) and value idents are resolved later, in Effects,
   using the alias tables each summary carries.

   Summaries are cached twice: in memory per process, and on disk under
   [_build/.rumor-lint-cache] keyed by the digest of the .cmt file (so a
   recompile invalidates naturally). The disk cache is best-effort: any
   read/write failure, version mismatch, or missing _build directory
   silently falls back to re-extraction. *)

open Typedtree

(* ------------------------------------------------------------------ *)
(* Path helpers                                                       *)
(* ------------------------------------------------------------------ *)

let rec path_parts (p : Path.t) =
  match p with
  | Path.Pident id -> Some [ Ident.name id ]
  | Path.Pdot (p, s) -> (
      match path_parts p with Some ps -> Some (ps @ [ s ]) | None -> None)
  | Path.Papply _ | Path.Pextra_ty _ -> None

let rec head_ident (p : Path.t) =
  match p with
  | Path.Pident id -> Some id
  | Path.Pdot (p, _) -> head_ident p
  | Path.Papply _ | Path.Pextra_ty _ -> None

(* The root of a write target: [t.buf.len <- e] roots at [t]. *)
let rec exp_root e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_field (e, _, _) -> exp_root e
  | _ -> None

let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

let pos_of (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

(* A ref-cell update spelled as an application: [:=], [incr], [decr]. *)
let is_ref_update = function
  | [ ":=" ] | [ "incr" ] | [ "decr" ] -> true
  | _ -> false

(* An array/bytes store spelled as an application. [set]/[unsafe_set]
   carry an index argument the race heuristic can inspect; [fill]/[blit]
   are treated as opaque stores. *)
let store_family = function
  | ("Array" | "Bytes" | "Float" | "Bigarray") :: rest -> (
      match List.rev rest with
      | ("set" | "unsafe_set") :: _ -> Some `Indexed
      | ("fill" | "blit" | "unsafe_fill" | "unsafe_blit") :: _ -> Some `Opaque
      | _ -> None)
  | _ -> None

let first_some_arg args =
  List.find_map (fun ((_ : Asttypes.arg_label), a) -> a) args

let nth_some_arg args n =
  let somes = List.filter_map (fun ((_ : Asttypes.arg_label), a) -> a) args in
  List.nth_opt somes n

(* Names worth pre-filtering as parallel-run entry points; Effects does
   the exact canonical match later (Rumor_par.Pool.init / init_traced /
   map, Rumor_par.Parallel_for.parallel_for). *)
let par_entry_suffix = function
  | [] -> false
  | parts -> (
      match List.rev parts with
      | ("init" | "init_traced" | "map" | "parallel_for") :: _ -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Ident sets (tiny, list-backed: defs are small)                     *)
(* ------------------------------------------------------------------ *)

let mem_id id ids = List.exists (Ident.same id) ids

(* All head idents mentioned in an expression. *)
let idents_of_expr e =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.exp_desc with
          | Texp_ident (p, _, _) -> (
              match head_ident p with
              | Some id -> acc := id :: !acc
              | None -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !acc

let mentions_any ids e = List.exists (fun id -> mem_id id ids) (idents_of_expr e)

let calls_shard_bounds e =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.exp_desc with
          | Texp_ident (p, _, _) -> (
              match path_parts p with
              | Some parts -> (
                  match List.rev parts with
                  | "shard_bounds" :: _ -> found := true
                  | _ -> ())
              | None -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* Closure analysis for the R11 race heuristic                        *)
(* ------------------------------------------------------------------ *)

(* Walk a literal closure passed to a parallel-run entry point and
   collect (a) writes whose target is neither closure-local nor indexed
   by a shard-derived value, and (b) every call the closure makes (for
   the transitive shared-mutation check).

   Two ident sets evolve during the walk, in evaluation order:
   [local] — bound inside the closure (writes rooted there are private);
   [safe]  — derived from the closure's parameters or a [shard_bounds]
   call, usable as a race-free array index. *)
let analyze_closure ~resolve_call closure =
  let local = ref [] and safe = ref [] in
  let writes = ref [] in
  let calls = ref [] and seen_calls = Hashtbl.create 8 in
  let add_call target line =
    let k = Summary.target_key target in
    if not (Hashtbl.mem seen_calls k) then begin
      Hashtbl.add seen_calls k ();
      calls := { Summary.target; cline = line } :: !calls
    end
  in
  let add_write desc loc =
    let line, col = pos_of loc in
    writes := { Summary.wdesc = desc; wline = line; wcol = col } :: !writes
  in
  let root_is_local e =
    match exp_root e with
    | None -> false (* complex target: be conservative, treat as shared *)
    | Some p -> (
        match head_ident p with
        | Some id -> mem_id id !local
        | None -> false)
  in
  let desc_of e fallback =
    match exp_root e with
    | Some p -> (
        match path_parts p with
        | Some parts -> String.concat "." parts
        | None -> fallback)
    | None -> fallback
  in
  (* peel leading parameters: nested single-case Texp_function chains *)
  let rec peel e =
    match e.exp_desc with
    | Texp_function { cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ } ->
        let ids = pat_bound_idents c_lhs in
        local := ids @ !local;
        safe := ids @ !safe;
        peel c_rhs
    | _ -> e
  in
  let body = peel closure in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.exp_desc with
          | Texp_ident (p, _, _) -> (
              match p with
              | Path.Pident id ->
                  if not (mem_id id !local) then
                    Option.iter (fun t -> add_call t (fst (pos_of e.exp_loc)))
                      (resolve_call p)
              | _ ->
                  Option.iter (fun t -> add_call t (fst (pos_of e.exp_loc)))
                    (resolve_call p))
          | Texp_let (_, vbs, body_e) ->
              List.iter (fun vb -> self.expr self vb.vb_expr) vbs;
              List.iter
                (fun vb ->
                  let ids = pat_bound_idents vb.vb_pat in
                  local := ids @ !local;
                  if mentions_any !safe vb.vb_expr || calls_shard_bounds vb.vb_expr
                  then safe := ids @ !safe)
                vbs;
              self.expr self body_e
          | Texp_function { cases; _ } ->
              List.iter
                (fun c ->
                  local := pat_bound_idents c.c_lhs @ !local;
                  Option.iter (self.expr self) c.c_guard;
                  self.expr self c.c_rhs)
                cases
          | Texp_match (scrut, cases, _) ->
              self.expr self scrut;
              let scrut_safe = mentions_any !safe scrut in
              List.iter
                (fun c ->
                  let ids = pat_bound_idents c.c_lhs in
                  local := ids @ !local;
                  if scrut_safe then safe := ids @ !safe;
                  Option.iter (self.expr self) c.c_guard;
                  self.expr self c.c_rhs)
                cases
          | Texp_try (body_e, cases) ->
              self.expr self body_e;
              List.iter
                (fun c ->
                  local := pat_bound_idents c.c_lhs @ !local;
                  Option.iter (self.expr self) c.c_guard;
                  self.expr self c.c_rhs)
                cases
          | Texp_for (id, _, lo, hi, _, body_e) ->
              self.expr self lo;
              self.expr self hi;
              local := id :: !local;
              if mentions_any !safe lo || mentions_any !safe hi then
                safe := id :: !safe;
              self.expr self body_e
          | Texp_setfield (base, _, lbl, v) ->
              if not (root_is_local base) then
                add_write
                  (desc_of base "<expr>" ^ "." ^ lbl.lbl_name)
                  e.exp_loc;
              self.expr self base;
              self.expr self v
          | Texp_apply (f, args) ->
              (match f.exp_desc with
              | Texp_ident (p, _, _) -> (
                  match Option.map strip_stdlib (path_parts p) with
                  | Some parts when is_ref_update parts -> (
                      match first_some_arg args with
                      | Some base when not (root_is_local base) ->
                          add_write (desc_of base "<expr>" ^ " (ref)") e.exp_loc
                      | _ -> ())
                  | Some parts -> (
                      match store_family parts with
                      | Some kind -> (
                          match first_some_arg args with
                          | Some base when not (root_is_local base) ->
                              let safe_index =
                                match kind with
                                | `Opaque -> false
                                | `Indexed -> (
                                    match nth_some_arg args 1 with
                                    | Some idx -> mentions_any !safe idx
                                    | None -> false)
                              in
                              if not safe_index then
                                add_write
                                  (desc_of base "<expr>" ^ ".(_)")
                                  e.exp_loc
                          | _ -> ())
                      | None -> ())
                  | None -> ())
              | _ -> ());
              Tast_iterator.default_iterator.expr self e
          | _ -> Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it body;
  (List.rev !writes, List.rev !calls)

(* ------------------------------------------------------------------ *)
(* Structure walk: top-level defs and module aliases                  *)
(* ------------------------------------------------------------------ *)

let rec unwrap_mod me =
  match me.mod_desc with
  | Tmod_constraint (me, _, _, _) -> unwrap_mod me
  | d -> d

(* Collect (ident, dotted name, binding) for every top-level [let] —
   including inside literal submodules, prefixed "Sub.f" — plus the
   [module X = P] aliases (dune's generated wrapper modules are exactly
   these, which is what lets Effects undo the __ name mangling). *)
let collect_structure str =
  let defs = ref [] and aliases = ref [] in
  let rec items prefix its = List.iter (item prefix) its
  and item prefix it =
    match it.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) ->
                defs := (id, prefix ^ Ident.name id, vb) :: !defs
            | _ -> ())
          vbs
    | Tstr_module mb -> mbinding prefix mb
    | Tstr_recmodule mbs -> List.iter (mbinding prefix) mbs
    | _ -> ()
  and mbinding prefix mb =
    match mb.mb_id with
    | None -> ()
    | Some id -> (
        let name = prefix ^ Ident.name id in
        match unwrap_mod mb.mb_expr with
        | Tmod_ident (p, _) -> (
            match path_parts p with
            | Some parts -> aliases := (name, parts) :: !aliases
            | None -> ())
        | Tmod_structure s -> items (name ^ ".") s.str_items
        | _ -> ())
  in
  items "" str.str_items;
  (List.rev !defs, List.rev !aliases)

(* ------------------------------------------------------------------ *)
(* Per-definition analysis                                            *)
(* ------------------------------------------------------------------ *)

let analyze_def ~def_idents dname (vb : value_binding) : Summary.def =
  let dline, dcol = pos_of vb.vb_loc in
  let loop_depth = ref 0 in
  let bound = ref [] in
  let calls = ref [] and seen_calls = Hashtbl.create 16 in
  let allocs = ref [] and seen_allocs = Hashtbl.create 8 in
  let par_calls = ref [] in
  let mutates = ref None in
  let resolve_call p : Summary.target option =
    match p with
    | Path.Pident id -> (
        match
          List.find_opt (fun (di, _) -> Ident.same id di) def_idents
        with
        | Some (_, full) -> Some (Summary.Local full)
        | None -> None (* a local binding, not a module-level def *))
    | _ -> (
        match path_parts p with
        | Some parts -> Some (Summary.Global parts)
        | None -> None)
  in
  let add_call target line =
    let k = Summary.target_key target in
    if not (Hashtbl.mem seen_calls k) then begin
      Hashtbl.add seen_calls k ();
      calls := { Summary.target; cline = line } :: !calls
    end
  in
  let add_alloc kind loc =
    if !loop_depth > 0 then begin
      let aline, acol = pos_of loc in
      if not (Hashtbl.mem seen_allocs (aline, acol)) then begin
        Hashtbl.add seen_allocs (aline, acol) ();
        allocs := { Summary.kind; aline; acol } :: !allocs
      end
    end
  in
  let note_mut desc loc =
    if Option.is_none !mutates then begin
      let wline, wcol = pos_of loc in
      mutates := Some { Summary.wdesc = desc; wline; wcol }
    end
  in
  let root_free e =
    match exp_root e with
    | None -> false
    | Some p -> (
        match head_ident p with
        | Some id ->
            (* a persistent ident is a module root: always shared state *)
            not (mem_id id !bound) || Ident.persistent id
        | None -> false)
  in
  let desc_of e fallback =
    match exp_root e with
    | Some p -> (
        match path_parts p with
        | Some parts -> String.concat "." parts
        | None -> fallback)
    | None -> fallback
  in
  (* result-type-is-arrow detection for partial applications that the
     arg list does not reveal (e.g. [f x] where f takes two args) *)
  let returns_arrow e =
    match Types.get_desc e.exp_type with
    | Types.Tarrow _ -> true
    | _ -> false
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.exp_desc with
          | Texp_ident (p, _, _) ->
              Option.iter
                (fun t -> add_call t (fst (pos_of e.exp_loc)))
                (resolve_call p)
          | Texp_let (_, vbs, _) ->
              bound := let_bound_idents vbs @ !bound;
              Tast_iterator.default_iterator.expr self e
          | Texp_function { cases; _ } ->
              add_alloc Summary.Closure e.exp_loc;
              List.iter
                (fun c -> bound := pat_bound_idents c.c_lhs @ !bound)
                cases;
              let saved = !loop_depth in
              loop_depth := 0;
              Tast_iterator.default_iterator.expr self e;
              loop_depth := saved
          | Texp_match (_, cases, _) ->
              List.iter
                (fun c -> bound := pat_bound_idents c.c_lhs @ !bound)
                cases;
              Tast_iterator.default_iterator.expr self e
          | Texp_try (_, cases) ->
              List.iter
                (fun c -> bound := pat_bound_idents c.c_lhs @ !bound)
                cases;
              Tast_iterator.default_iterator.expr self e
          | Texp_for (id, _, lo, hi, _, body) ->
              bound := id :: !bound;
              self.expr self lo;
              self.expr self hi;
              incr loop_depth;
              self.expr self body;
              decr loop_depth
          | Texp_while (cond, body) ->
              (* the condition re-evaluates every iteration too *)
              incr loop_depth;
              self.expr self cond;
              self.expr self body;
              decr loop_depth
          | Texp_tuple _ ->
              add_alloc Summary.Tuple e.exp_loc;
              Tast_iterator.default_iterator.expr self e
          | Texp_record _ ->
              add_alloc Summary.Record e.exp_loc;
              Tast_iterator.default_iterator.expr self e
          | Texp_array _ ->
              add_alloc Summary.Array_lit e.exp_loc;
              Tast_iterator.default_iterator.expr self e
          | Texp_construct (_, cd, args) ->
              (match args with
              | [] -> ()
              | _ :: _ -> add_alloc (Summary.Variant cd.cstr_name) e.exp_loc);
              Tast_iterator.default_iterator.expr self e
          | Texp_setfield (base, _, lbl, _) ->
              if root_free base then
                note_mut (desc_of base "<expr>" ^ "." ^ lbl.lbl_name) e.exp_loc;
              Tast_iterator.default_iterator.expr self e
          | Texp_apply (f, args) ->
              (match f.exp_desc with
              | Texp_ident (p, _, _) -> (
                  let parts = Option.map strip_stdlib (path_parts p) in
                  (match parts with
                  | Some ps when is_ref_update ps -> (
                      match first_some_arg args with
                      | Some base when root_free base ->
                          note_mut (desc_of base "<expr>" ^ " (ref)") e.exp_loc
                      | _ -> ())
                  | Some ps -> (
                      match store_family ps with
                      | Some _ -> (
                          match first_some_arg args with
                          | Some base when root_free base ->
                              note_mut (desc_of base "<expr>" ^ ".(_)")
                                e.exp_loc
                          | _ -> ())
                      | None -> ())
                  | None -> ());
                  (* allocation classification of the application *)
                  (match parts with
                  | Some [ "ref" ] -> add_alloc Summary.Ref_cell e.exp_loc
                  | _ ->
                      if
                        List.exists
                          (fun ((_ : Asttypes.arg_label), a) ->
                            Option.is_none a)
                          args
                        || returns_arrow e
                      then add_alloc Summary.Partial_app e.exp_loc);
                  (* parallel-run entry point with literal closure args *)
                  match parts with
                  | Some ps when par_entry_suffix ps -> (
                      let closures =
                        List.filter_map
                          (fun ((_ : Asttypes.arg_label), a) ->
                            match a with
                            | Some ({ exp_desc = Texp_function _; _ } as c) ->
                                Some c
                            | _ -> None)
                          args
                      in
                      match (closures, resolve_call p) with
                      | _ :: _, Some fn ->
                          let pline, pcol = pos_of e.exp_loc in
                          let unsafe_writes, closure_calls =
                            List.fold_left
                              (fun (ws, cs) c ->
                                let w, cl =
                                  analyze_closure ~resolve_call c
                                in
                                (ws @ w, cs @ cl))
                              ([], []) closures
                          in
                          par_calls :=
                            {
                              Summary.fn;
                              pline;
                              pcol;
                              unsafe_writes;
                              closure_calls;
                            }
                            :: !par_calls
                      | _ -> ())
                  | _ -> ())
              | _ ->
                  if returns_arrow e then
                    add_alloc Summary.Partial_app e.exp_loc);
              Tast_iterator.default_iterator.expr self e
          | _ -> Tast_iterator.default_iterator.expr self e);
    }
  in
  (* top of the definition: peel parameters without counting the outer
     fun-chain as closure allocations *)
  let rec peel e =
    match e.exp_desc with
    | Texp_function { cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ } ->
        bound := pat_bound_idents c_lhs @ !bound;
        peel c_rhs
    | _ -> e
  in
  let body = peel vb.vb_expr in
  it.expr it body;
  {
    Summary.dname;
    dline;
    dcol;
    calls = List.rev !calls;
    allocs = List.rev !allocs;
    par_calls = List.rev !par_calls;
    mutates = !mutates;
  }

(* ------------------------------------------------------------------ *)
(* Reading one cmt                                                    *)
(* ------------------------------------------------------------------ *)

let extract (cmt : Cmt_format.cmt_infos) (str : structure) : Summary.t =
  let raw_defs, aliases = collect_structure str in
  let def_idents = List.map (fun (id, full, _) -> (id, full)) raw_defs in
  let defs =
    List.map (fun (_, full, vb) -> analyze_def ~def_idents full vb) raw_defs
  in
  {
    Summary.modname = cmt.cmt_modname;
    source = (match cmt.cmt_sourcefile with Some s -> s | None -> "");
    digest =
      (match cmt.cmt_source_digest with
      | Some d -> Digest.to_hex d
      | None -> "");
    aliases;
    defs;
  }

let read_cmt path : Summary.t option =
  match Cmt_format.read_cmt path with
  (* lint: allow R6 — an unreadable or foreign cmt is skipped, not fatal *)
  | exception _ -> None
  | cmt -> (
      match cmt.cmt_annots with
      | Cmt_format.Implementation str -> Some (extract cmt str)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Caching                                                            *)
(* ------------------------------------------------------------------ *)

let cache_version = "rumor-lint-summary/1 ocaml:" ^ Sys.ocaml_version

let cache_dir = Filename.concat "_build" ".rumor-lint-cache"

let cache_path key = Filename.concat cache_dir (key ^ ".summary")

let cache_read key : Summary.t option =
  match open_in_bin (cache_path key) with
  | exception Sys_error _ -> None
  | ic -> (
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match (Marshal.from_channel ic : string * Summary.t) with
          | v, s when String.equal v cache_version -> Some s
          | _ -> None
          (* lint: allow R6 — a corrupt cache entry falls back to re-extraction *)
          | exception _ -> None))

let cache_write key (s : Summary.t) =
  if Sys.file_exists "_build" then begin
    (try if not (Sys.file_exists cache_dir) then Sys.mkdir cache_dir 0o755
     (* lint: allow R6 — cache directory creation is best-effort *)
     with _ -> ());
    match open_out_bin (cache_path key) with
    | exception Sys_error _ -> ()
    | oc ->
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> Marshal.to_channel oc (cache_version, s) [])
  end

let memo : (string, Summary.t option) Hashtbl.t = Hashtbl.create 64

let load path : Summary.t option =
  match Hashtbl.find_opt memo path with
  | Some r -> r
  | None ->
      let r =
        match Digest.file path with
        | exception Sys_error _ -> read_cmt path
        | digest -> (
            let key = Digest.to_hex digest in
            match cache_read key with
            | Some s -> Some s
            | None ->
                let r = read_cmt path in
                (match r with Some s -> cache_write key s | None -> ());
                r)
      in
      Hashtbl.add memo path r;
      r

(* ------------------------------------------------------------------ *)
(* Discovery                                                          *)
(* ------------------------------------------------------------------ *)

(* Directories never worth scanning for cmts: demo/scratch code is not
   part of the linted tree (same default as the driver's source walk). *)
let skip_dirs = [ "scratch"; "examples" ]

let rec walk_cmts path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.filter (fun name -> not (List.mem name skip_dirs))
    |> List.fold_left
         (fun acc name -> walk_cmts (Filename.concat path name) acc)
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let load_all root : Summary.t list =
  match walk_cmts root [] with
  | exception Sys_error _ -> []
  | cmts -> List.sort String.compare cmts |> List.filter_map load
