(* Typedtree-based rules R9-R11: these see one module's Summary plus the
   whole-program Effects fixpoint, unlike the parsetree rules in Rules
   which see one file's AST in isolation.

   Findings are reported against the *input source file* (tctx.rctx.path)
   so the ordinary per-line suppression comments in that file apply,
   exactly as for R1-R8. *)

type tctx = {
  rctx : Rule.ctx;
  summary : Summary.t;
  env : Effects.t;
  hot_lines : int list;  (** lines bearing a [(* lint: hot *)] marker *)
}

type t = {
  id : string;
  name : string;
  doc : string;
  applies : Rule.ctx -> bool;
  check : tctx -> Finding.t list;
}

let key_of tc (d : Summary.def) = tc.summary.modname ^ "." ^ d.dname

(* ------------------------------------------------------------------ *)
(* R9 effect-confinement                                              *)
(* ------------------------------------------------------------------ *)

(* The interprocedural closure of R2/R3/R7/R8: a lib function whose
   transitive effect set escapes its layer's confinement. Only the
   deepest boundary-crossing caller is flagged (its callee uses the
   primitive *directly* and is already R2/R3/R7/R8's business), so one
   leak produces one finding per caller chain, not a cascade. *)

let fact_verb = function
  | Summary.Rng -> "uses the global Random state"
  | Summary.Io -> "prints to stdout"
  | Summary.Conc -> "touches a concurrency primitive"
  | Summary.Clock -> "reads the wall clock"
  | Summary.Mut | Summary.Alloc -> "escapes confinement"

let fact_advice = function
  | Summary.Rng -> "thread a split Rng.t instead (R2's closure)"
  | Summary.Io -> "return values or go through lib/obs (R3's closure)"
  | Summary.Conc -> "confine it behind lib/par (R7's closure)"
  | Summary.Clock -> "go through Rumor_obs.Clock (R8's closure)"
  | Summary.Mut | Summary.Alloc -> "confine it"

let r9 =
  {
    id = "R9";
    name = "effect-confinement";
    doc =
      "lib functions must not transitively reach global RNG / stdout / \
       concurrency / wall-clock primitives outside their sanctioned layer \
       (interprocedural closure of R2/R3/R7/R8, with the call chain printed)";
    applies = Rule.lib_only;
    check =
      (fun tc ->
        let facts =
          List.concat
            [
              [ Summary.Rng; Summary.Io ];
              (if Rules.under_par tc.rctx then [] else [ Summary.Conc ]);
              (if Rules.under_obs tc.rctx then [] else [ Summary.Clock ]);
            ]
        in
        List.concat_map
          (fun (d : Summary.def) ->
            let key = key_of tc d in
            List.filter_map
              (fun fact ->
                match Effects.reach tc.env key fact with
                | Some (Effects.Via { callee; vline })
                  when Effects.origin_is_direct tc.env callee fact ->
                    let chain = Effects.chain tc.env key fact in
                    let msg =
                      Printf.sprintf
                        "%s transitively %s via %s (call on line %d): %s — %s"
                        d.dname (fact_verb fact) (Effects.display callee) vline
                        (String.concat " -> " chain)
                        (fact_advice fact)
                    in
                    Some
                      (Finding.make_at ~rule:"R9" ~name:"effect-confinement"
                         ~file:tc.rctx.path ~line:d.dline ~col:d.dcol ~chain
                         msg)
                | _ -> None)
              facts)
          tc.summary.defs);
  }

(* ------------------------------------------------------------------ *)
(* R10 hot-path allocation                                            *)
(* ------------------------------------------------------------------ *)

let alloc_what = function
  | Summary.Closure -> "builds a closure"
  | Summary.Tuple -> "allocates a tuple"
  | Summary.Record -> "allocates a record"
  | Summary.Variant "::" -> "allocates a list cell"
  | Summary.Variant c -> Printf.sprintf "allocates a %s block" c
  | Summary.Array_lit -> "allocates an array literal"
  | Summary.Ref_cell -> "allocates a ref cell"
  | Summary.Partial_app -> "makes a partial application (allocates a closure)"

let is_hot tc (d : Summary.def) =
  List.exists (fun l -> l = d.dline || l = d.dline - 1) tc.hot_lines

let r10 =
  {
    id = "R10";
    name = "hot-path-alloc";
    doc =
      "(* lint: hot *)-marked functions must not allocate per iteration: \
       closures, tuples/records, non-constant constructors, array literals, \
       ref cells and partial applications inside their loops are flagged";
    applies = Rule.everywhere;
    check =
      (fun tc ->
        List.concat_map
          (fun (d : Summary.def) ->
            if not (is_hot tc d) then []
            else
              List.map
                (fun (a : Summary.alloc) ->
                  let msg =
                    Printf.sprintf
                      "hot function %s %s inside a loop — hoist it out of the \
                       iteration or drop the hot marker"
                      d.dname (alloc_what a.kind)
                  in
                  Finding.make_at ~rule:"R10" ~name:"hot-path-alloc"
                    ~file:tc.rctx.path ~line:a.aline ~col:a.acol msg)
                d.allocs)
          tc.summary.defs);
  }

(* ------------------------------------------------------------------ *)
(* R11 domain-race heuristic                                          *)
(* ------------------------------------------------------------------ *)

(* Canonical names of the parallel-run entry points whose closure runs
   on worker domains. *)
let par_entry_points =
  [
    "Rumor_par.Pool.init";
    "Rumor_par.Pool.init_traced";
    "Rumor_par.Pool.map";
    "Rumor_par.Parallel_for.parallel_for";
  ]

let r11 =
  {
    id = "R11";
    name = "domain-race";
    doc =
      "mutable state written from a closure passed to Pool.init/init_traced/\
       map or Parallel_for.parallel_for is flagged unless the write is \
       closure-local or indexed by a shard-derived value; calls from the \
       closure into shared-state mutators are chased transitively";
    applies = (fun ctx -> Rule.lib_only ctx && not (Rules.under_par ctx));
    check =
      (fun tc ->
        List.concat_map
          (fun (d : Summary.def) ->
            List.concat_map
              (fun (pc : Summary.par_call) ->
                let resolved =
                  Effects.resolve tc.env ~modname:tc.summary.modname pc.fn
                in
                let entry = Effects.display resolved in
                if not (List.mem entry par_entry_points) then []
                else
                  let write_findings =
                    List.map
                      (fun (w : Summary.write) ->
                        let msg =
                          Printf.sprintf
                            "%s writes %s from a closure passed to %s: the \
                             target is not closure-local and the index is not \
                             derived from the shard bounds — shard the write \
                             or keep the state behind lib/par"
                            d.dname w.wdesc entry
                        in
                        Finding.make_at ~rule:"R11" ~name:"domain-race"
                          ~file:tc.rctx.path ~line:w.wline ~col:w.wcol msg)
                      pc.unsafe_writes
                  in
                  let seen = Hashtbl.create 4 in
                  let call_findings =
                    List.filter_map
                      (fun (c : Summary.call) ->
                        let rkey =
                          Effects.resolve tc.env ~modname:tc.summary.modname
                            c.target
                        in
                        match
                          Effects.find_info tc.env
                            ~modname:tc.summary.modname rkey
                        with
                        | Some g
                          when (not (Hashtbl.mem seen g.Effects.key))
                               && not
                                    (Effects.under_par_source g.Effects.source)
                          -> (
                            Hashtbl.add seen g.Effects.key ();
                            match
                              Effects.reach tc.env g.Effects.key Summary.Mut
                            with
                            | Some o ->
                                let chain =
                                  Effects.chain tc.env g.Effects.key
                                    Summary.Mut
                                in
                                let where =
                                  match o with
                                  | Effects.Direct { oline; _ } ->
                                      Printf.sprintf " (write on line %d of %s)"
                                        oline g.Effects.source
                                  | Effects.Via _ -> ""
                                in
                                let msg =
                                  Printf.sprintf
                                    "closure passed to %s in %s calls %s, \
                                     which writes shared state%s: %s — shard \
                                     it or move it behind lib/par"
                                    entry d.dname
                                    (Effects.display g.Effects.key)
                                    where
                                    (String.concat " -> " chain)
                                in
                                Some
                                  (Finding.make_at ~rule:"R11"
                                     ~name:"domain-race" ~file:tc.rctx.path
                                     ~line:pc.pline ~col:pc.pcol ~chain msg)
                            | None -> None)
                        | _ -> None)
                      pc.closure_calls
                  in
                  write_findings @ call_findings)
              d.par_calls)
          tc.summary.defs);
  }

let all = [ r9; r10; r11 ]
