(* The rule interface: what a lint rule sees and what it produces. *)

type scope = Lib | Bin | Bench | Test | Other

let scope_of_string = function
  | "lib" -> Some Lib
  | "bin" -> Some Bin
  | "bench" -> Some Bench
  | "test" -> Some Test
  | "other" -> Some Other
  | _ -> None

let scope_to_string = function
  | Lib -> "lib"
  | Bin -> "bin"
  | Bench -> "bench"
  | Test -> "test"
  | Other -> "other"

type ctx = {
  path : string;  (** path as reported in findings *)
  scope : scope;
  mli_exists : bool;  (** a sibling [.mli] exists next to this [.ml] *)
}

type t = {
  id : string;  (** "R1" *)
  name : string;  (** "poly-compare" *)
  doc : string;  (** one-line description for [--list-rules] *)
  applies : ctx -> bool;  (** scope filter; checked before [check] runs *)
  check : ctx -> Parsetree.structure -> Finding.t list;
}

let everywhere (_ : ctx) = true
let lib_only ctx = ctx.scope = Lib
