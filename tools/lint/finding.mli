(** A single lint finding, pointing at file:line:col. *)

type t = {
  rule : string;  (** rule id, e.g. "R1" *)
  name : string;  (** rule short name, e.g. "poly-compare" *)
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  msg : string;
}

val make :
  rule:string -> name:string -> file:string -> Location.t -> string -> t
(** Build a finding at the start position of [loc]. *)

val order : t -> t -> int
(** Sort by file, then line, then column, then rule id. *)

val to_string : t -> string
(** ["file:line:col: [R1 poly-compare] message"] *)
