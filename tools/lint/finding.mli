(** A single lint finding, pointing at file:line:col. *)

type t = {
  rule : string;  (** rule id, e.g. "R1" *)
  name : string;  (** rule short name, e.g. "poly-compare" *)
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  msg : string;
  chain : string list;
      (** interprocedural witness, outermost first (R9/R11); [] otherwise *)
}

val make :
  rule:string -> name:string -> file:string -> Location.t -> string -> t
(** Build a finding at the start position of [loc] (empty chain). *)

val make_at :
  rule:string ->
  name:string ->
  file:string ->
  line:int ->
  col:int ->
  ?chain:string list ->
  string ->
  t
(** Build a finding from explicit coordinates (the typed rules work from
    Summary positions, not compiler locations). *)

val order : t -> t -> int
(** Sort by file, then line, then column, then rule id. *)

val to_string : t -> string
(** ["file:line:col: [R1 poly-compare] message"] *)

val to_json : t -> Rumor_obs.Json.t
(** The finding object of the rumor-lint/1 JSON document; [chain] is
    included only when non-empty. *)
