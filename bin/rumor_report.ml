(* rumor_report: the read side of the metrics pipeline.

   Examples:
     rumor_run --graph star:1000 -p push --reps 20 --metrics m.jsonl
     rumor_report summary m.jsonl
     rumor_report baseline m.jsonl --out BENCH_baseline.json
     rumor_report check new.jsonl --baseline BENCH_baseline.json --tolerance 25
     rumor_report compare BENCH_1.json BENCH_2.json *)

open Cmdliner
module Run_record = Rumor_obs.Run_record
module Aggregate = Rumor_obs.Aggregate
module Baseline = Rumor_obs.Baseline
module Bench_record = Rumor_obs.Bench_record
module Json = Rumor_obs.Json
module Table = Rumor_sim.Table
module Sparkline = Rumor_sim.Sparkline
module Curve_stats = Rumor_sim.Curve_stats
module Stats = Rumor_prob.Stats

exception Fail of string

let failf fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt

(* ------------------------------------------------------------------ *)
(* Input detection: a metrics file is either JSONL run records, a      *)
(* baseline snapshot, or a bench snapshot.                              *)
(* ------------------------------------------------------------------ *)

type input =
  | Records of Run_record.t list
  | Snapshot of Aggregate.t
  | Bench of Bench_record.t

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> text
  | exception Sys_error msg -> failf "%s" msg

let load_input path =
  let text = read_file path in
  match Json.parse_result (String.trim text) with
  | Ok j -> (
      (* the whole file is one JSON value: a snapshot of some kind, or a
         single-record JSONL file *)
      match Json.member "schema" j with
      | Some (Json.String "rumor-bench/1") -> (
          match Bench_record.of_json text with
          | Ok b -> Bench b
          | Error msg -> failf "%s: %s" path msg)
      | Some (Json.String "rumor-baseline/1") -> (
          match Baseline.of_json text with
          | Ok a -> Snapshot a
          | Error msg -> failf "%s" msg)
      | Some (Json.String other) -> failf "%s: unsupported schema %S" path other
      | _ -> (
          match Run_record.of_json (String.trim text) with
          | Ok r -> Records [ r ]
          | Error msg -> failf "%s: %s" path msg))
  | Error _ -> (
      (* multiple lines: JSONL *)
      match Run_record.read_jsonl path with
      | records -> Records records
      | exception Run_record.Jsonl_error { path; line; msg } ->
          failf "%s:%d: %s" path line msg)

let aggregate_of_input path = function
  | Records [] -> failf "%s: no records" path
  | Records rs -> Aggregate.of_records rs
  | Snapshot a -> a
  | Bench _ ->
      failf "%s: bench snapshot where run records or a baseline were expected"
        path

(* ------------------------------------------------------------------ *)
(* Formatting helpers                                                   *)
(* ------------------------------------------------------------------ *)

let fmt_ns t =
  if t >= 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
  else if t >= 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
  else if t >= 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
  else Printf.sprintf "%.1f ns" t

let fmt_ratio r =
  if r = infinity then "inf" else Printf.sprintf "%.3fx" r

let fmt_words w =
  if Float.abs w >= 1e6 then Printf.sprintf "%.2fMw" (w /. 1e6)
  else if Float.abs w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let status_string = function
  | Baseline.Pass -> "ok"
  | Baseline.Regressed -> "REGRESSED"
  | Baseline.Improved -> "improved"

let tolerances_of_pct = function
  | None -> Baseline.default_tolerances
  | Some pct ->
      if pct < 0.0 then failf "--tolerance must be non-negative"
      else Baseline.uniform (pct /. 100.0)

let print_check_report report =
  let rows =
    List.map
      (fun (c : Baseline.check) ->
        [
          c.Baseline.graph;
          c.Baseline.protocol;
          c.Baseline.metric;
          Printf.sprintf "%.4g" c.Baseline.baseline_mean;
          Printf.sprintf "%.4g" c.Baseline.current_mean;
          fmt_ratio c.Baseline.ratio;
          Printf.sprintf "%.0f%%" (100.0 *. c.Baseline.tolerance);
          status_string c.Baseline.status;
        ])
      report.Baseline.checks
  in
  Table.print
    (Table.make ~title:"regression check" ~claim:""
       ~aligns:[ Table.Left; Table.Left; Table.Left ]
       ~header:
         [ "graph"; "protocol"; "metric"; "baseline"; "current"; "ratio";
           "tol"; "status" ]
       rows);
  List.iter
    (fun (g, p) -> Printf.printf "MISSING: %s/%s present in baseline, absent now\n" g p)
    report.Baseline.missing;
  List.iter
    (fun (g, p) -> Printf.printf "new (no baseline): %s/%s\n" g p)
    report.Baseline.added;
  let regressed = List.length (Baseline.regressions report) in
  Printf.printf "\n%d metric(s) regressed, %d group(s) missing — %s\n" regressed
    (List.length report.Baseline.missing)
    (if Baseline.passed report then "PASS" else "FAIL")

(* ------------------------------------------------------------------ *)
(* summary                                                              *)
(* ------------------------------------------------------------------ *)

let summary path ascii width =
  let agg = aggregate_of_input path (load_input path) in
  let rows =
    List.map
      (fun (g : Aggregate.group) ->
        let b = g.Aggregate.broadcast in
        let s = b.Aggregate.summary in
        [
          g.Aggregate.graph;
          g.Aggregate.protocol;
          string_of_int g.Aggregate.runs;
          string_of_int g.Aggregate.capped;
          Printf.sprintf "%.1f" s.Stats.mean;
          Printf.sprintf "%.1f" s.Stats.median;
          Printf.sprintf "%.1f" b.Aggregate.p90;
          Printf.sprintf "%.1f" b.Aggregate.p99;
          Printf.sprintf "%.3g"
            g.Aggregate.contacts.Aggregate.summary.Stats.mean;
          Printf.sprintf "%.2f"
            (1000.0 *. g.Aggregate.wall_seconds.Aggregate.summary.Stats.mean);
          fmt_words g.Aggregate.alloc_words.Aggregate.summary.Stats.mean;
        ])
      agg
  in
  Table.print
    (Table.make
       ~title:(Printf.sprintf "per-(graph, protocol) summary of %s" path)
       ~claim:""
       ~aligns:[ Table.Left; Table.Left ]
       ~header:
         [ "graph"; "protocol"; "runs"; "capped"; "bt mean"; "bt med";
           "bt p90"; "bt p99"; "contacts"; "wall ms"; "alloc" ]
       rows);
  let with_curves =
    List.filter
      (fun (g : Aggregate.group) -> Array.length g.Aggregate.mean_curve > 0)
      agg
  in
  if not (List.is_empty with_curves) then begin
    Printf.printf "\nmean informed-count curves:\n";
    let label_width =
      List.fold_left
        (fun m (g : Aggregate.group) ->
          max m
            (String.length g.Aggregate.graph
            + String.length g.Aggregate.protocol + 1))
        0 with_curves
    in
    List.iter
      (fun (g : Aggregate.group) ->
        let label = g.Aggregate.graph ^ "/" ^ g.Aggregate.protocol in
        let curve = g.Aggregate.mean_curve in
        let int_curve = Array.map int_of_float curve in
        let half =
          Curve_stats.time_to_fraction_curve
            ~completed:(g.Aggregate.capped < g.Aggregate.runs)
            int_curve 0.5
        in
        Printf.printf "  %-*s %s%s\n" label_width label
          (Sparkline.render ~width ~ascii curve)
          (match half with
          | Some h -> Printf.sprintf "  (50%% at round %d)" h
          | None -> ""))
      with_curves
  end;
  0

(* ------------------------------------------------------------------ *)
(* compare                                                              *)
(* ------------------------------------------------------------------ *)

let compare_bench (base : Bench_record.t) (current : Bench_record.t) =
  let d = Bench_record.diff ~base ~current in
  let rows =
    List.map
      (fun (delta : Bench_record.delta) ->
        [
          delta.Bench_record.name;
          fmt_ns delta.Bench_record.base_ns;
          fmt_ns delta.Bench_record.current_ns;
          fmt_ratio delta.Bench_record.ratio;
        ])
      d.Bench_record.deltas
  in
  Table.print
    (Table.make
       ~title:
         (Printf.sprintf "microbenchmarks: seed %d (jobs %d) -> seed %d (jobs %d)"
            base.Bench_record.seed base.Bench_record.jobs
            current.Bench_record.seed current.Bench_record.jobs)
       ~claim:"" ~aligns:[ Table.Left ]
       ~header:[ "benchmark"; "old"; "new"; "ratio" ]
       rows);
  List.iter (Printf.printf "missing in new run: %s\n") d.Bench_record.missing;
  List.iter (Printf.printf "new benchmark: %s\n") d.Bench_record.added;
  0

let compare_files old_path new_path tolerance_pct =
  let old_input = load_input old_path and new_input = load_input new_path in
  match (old_input, new_input) with
  | Bench b, Bench c -> compare_bench b c
  | Bench _, _ | _, Bench _ ->
      failf "cannot compare a bench snapshot against run records"
  | _ ->
      let tol = tolerances_of_pct tolerance_pct in
      let baseline = aggregate_of_input old_path old_input in
      let current = aggregate_of_input new_path new_input in
      let report = Baseline.check ~tol ~baseline ~current () in
      print_check_report report;
      (* compare is informational: only malformed input exits nonzero *)
      0

(* ------------------------------------------------------------------ *)
(* check / baseline                                                     *)
(* ------------------------------------------------------------------ *)

let check path baseline_path tolerance_pct =
  let tol = tolerances_of_pct tolerance_pct in
  let baseline =
    aggregate_of_input baseline_path (load_input baseline_path)
  in
  let current = aggregate_of_input path (load_input path) in
  let report = Baseline.check ~tol ~baseline ~current () in
  print_check_report report;
  if Baseline.passed report then 0 else 1

let make_baseline path out =
  let agg = aggregate_of_input path (load_input path) in
  Baseline.save out agg;
  Printf.printf "wrote baseline of %d group(s) to %s\n" (List.length agg) out;
  0

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let handle f = try f () with Fail msg -> prerr_endline ("rumor_report: " ^ msg); 2

let file_pos ~docv n =
  Arg.(required & pos n (some string) None & info [] ~docv)

let tolerance_arg =
  let doc =
    "Uniform relative tolerance in percent for every metric (overrides the \
     per-metric defaults: broadcast/contacts 10%, wall-clock 50%, \
     allocation 15%)."
  in
  Arg.(value & opt (some float) None & info [ "tolerance" ] ~docv:"PCT" ~doc)

let summary_cmd =
  let doc = "per-(graph, protocol) summary table of a metrics file" in
  let ascii =
    Arg.(value & flag & info [ "ascii" ] ~doc:"ASCII sparklines (no Unicode).")
  in
  let width =
    Arg.(value & opt int 50 & info [ "width" ] ~docv:"N" ~doc:"Sparkline width.")
  in
  Cmd.v
    (Cmd.info "summary" ~doc)
    Term.(
      const (fun path ascii width -> handle (fun () -> summary path ascii width))
      $ file_pos ~docv:"FILE.jsonl" 0 $ ascii $ width)

let compare_cmd =
  let doc =
    "diff two metrics files (JSONL runs, baseline snapshots, or BENCH \
     microbenchmark snapshots)"
  in
  Cmd.v
    (Cmd.info "compare" ~doc)
    Term.(
      const (fun old_path new_path tol ->
          handle (fun () -> compare_files old_path new_path tol))
      $ file_pos ~docv:"OLD" 0 $ file_pos ~docv:"NEW" 1 $ tolerance_arg)

let check_cmd =
  let doc =
    "gate a metrics file against a baseline snapshot; exits 1 on regression"
  in
  let baseline_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE.json"
          ~doc:"Baseline snapshot written by $(b,rumor_report baseline).")
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const (fun path b tol -> handle (fun () -> check path b tol))
      $ file_pos ~docv:"FILE.jsonl" 0 $ baseline_arg $ tolerance_arg)

let baseline_cmd =
  let doc = "snapshot a metrics file's aggregate as a baseline" in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_baseline.json"
      & info [ "o"; "out" ] ~docv:"FILE.json" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "baseline" ~doc)
    Term.(
      const (fun path out -> handle (fun () -> make_baseline path out))
      $ file_pos ~docv:"FILE.jsonl" 0 $ out_arg)

let cmd =
  let doc = "analyze recorded rumor-spreading metrics" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Consumes the JSONL files written by the $(b,--metrics) flag of \
         rumor_run, rumor_experiments and bench/main.exe, plus the \
         BENCH_<seed>.json microbenchmark snapshots: groups records by \
         (graph, protocol), reports mean/median/p90/p99, and gates new runs \
         against saved baselines.";
      `S Manpage.s_examples;
      `Pre
        "  rumor_run -g star:1000 -p push --reps 20 --metrics m.jsonl\n\
        \  rumor_report summary m.jsonl\n\
        \  rumor_report baseline m.jsonl -o BENCH_baseline.json\n\
        \  rumor_report check new.jsonl --baseline BENCH_baseline.json \
         --tolerance 25";
    ]
  in
  Cmd.group
    (Cmd.info "rumor_report" ~version:"1.0.0" ~doc ~man)
    [ summary_cmd; compare_cmd; check_cmd; baseline_cmd ]

let () = exit (Cmd.eval' cmd)
