(* rumor_report: the read side of the metrics pipeline.

   Examples:
     rumor_run --graph star:1000 -p push --reps 20 --metrics m.jsonl
     rumor_report summary m.jsonl
     rumor_report baseline m.jsonl --out BENCH_baseline.json
     rumor_report check new.jsonl --baseline BENCH_baseline.json --tolerance 25
     rumor_report compare BENCH_1.json BENCH_2.json *)

open Cmdliner
module Run_record = Rumor_obs.Run_record
module Aggregate = Rumor_obs.Aggregate
module Baseline = Rumor_obs.Baseline
module Bench_record = Rumor_obs.Bench_record
module Json = Rumor_obs.Json
module Table = Rumor_sim.Table
module Sparkline = Rumor_sim.Sparkline
module Curve_stats = Rumor_sim.Curve_stats
module Stats = Rumor_prob.Stats

exception Fail of string

let failf fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt

(* ------------------------------------------------------------------ *)
(* Input detection: a metrics file is either JSONL run records, a      *)
(* baseline snapshot, or a bench snapshot.                              *)
(* ------------------------------------------------------------------ *)

type input =
  | Records of Run_record.t list
  | Snapshot of Aggregate.t
  | Bench of Bench_record.t

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> text
  | exception Sys_error msg -> failf "%s" msg

let load_input path =
  let text = read_file path in
  match Json.parse_result (String.trim text) with
  | Ok j -> (
      (* the whole file is one JSON value: a snapshot of some kind, or a
         single-record JSONL file *)
      match Json.member "schema" j with
      | Some (Json.String "rumor-bench/1") -> (
          match Bench_record.of_json text with
          | Ok b -> Bench b
          | Error msg -> failf "%s: %s" path msg)
      | Some (Json.String "rumor-baseline/1") -> (
          match Baseline.of_json text with
          | Ok a -> Snapshot a
          | Error msg -> failf "%s" msg)
      | Some (Json.String other) -> failf "%s: unsupported schema %S" path other
      | _ -> (
          match Run_record.of_json (String.trim text) with
          | Ok r -> Records [ r ]
          | Error msg -> failf "%s: %s" path msg))
  | Error _ -> (
      (* multiple lines: JSONL *)
      match Run_record.read_jsonl path with
      | records -> Records records
      | exception Run_record.Jsonl_error { path; line; msg } ->
          failf "%s:%d: %s" path line msg)

let aggregate_of_input path = function
  | Records [] -> failf "%s: no records" path
  | Records rs -> Aggregate.of_records rs
  | Snapshot a -> a
  | Bench _ ->
      failf "%s: bench snapshot where run records or a baseline were expected"
        path

(* ------------------------------------------------------------------ *)
(* Formatting helpers                                                   *)
(* ------------------------------------------------------------------ *)

let fmt_ns t =
  if t >= 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
  else if t >= 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
  else if t >= 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
  else Printf.sprintf "%.1f ns" t

let fmt_ratio r =
  if r = infinity then "inf" else Printf.sprintf "%.3fx" r

let fmt_words w =
  if Float.abs w >= 1e6 then Printf.sprintf "%.2fMw" (w /. 1e6)
  else if Float.abs w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let status_string = function
  | Baseline.Pass -> "ok"
  | Baseline.Regressed -> "REGRESSED"
  | Baseline.Improved -> "improved"

let tolerances_of_pct = function
  | None -> Baseline.default_tolerances
  | Some pct ->
      if pct < 0.0 then failf "--tolerance must be non-negative"
      else Baseline.uniform (pct /. 100.0)

let print_check_report report =
  let rows =
    List.map
      (fun (c : Baseline.check) ->
        [
          c.Baseline.graph;
          c.Baseline.protocol;
          c.Baseline.metric;
          Printf.sprintf "%.4g" c.Baseline.baseline_mean;
          Printf.sprintf "%.4g" c.Baseline.current_mean;
          fmt_ratio c.Baseline.ratio;
          Printf.sprintf "%.0f%%" (100.0 *. c.Baseline.tolerance);
          status_string c.Baseline.status;
        ])
      report.Baseline.checks
  in
  Table.print
    (Table.make ~title:"regression check" ~claim:""
       ~aligns:[ Table.Left; Table.Left; Table.Left ]
       ~header:
         [ "graph"; "protocol"; "metric"; "baseline"; "current"; "ratio";
           "tol"; "status" ]
       rows);
  List.iter
    (fun (g, p) -> Printf.printf "MISSING: %s/%s present in baseline, absent now\n" g p)
    report.Baseline.missing;
  List.iter
    (fun (g, p) -> Printf.printf "new (no baseline): %s/%s\n" g p)
    report.Baseline.added;
  let regressed = List.length (Baseline.regressions report) in
  Printf.printf "\n%d metric(s) regressed, %d group(s) missing — %s\n" regressed
    (List.length report.Baseline.missing)
    (if Baseline.passed report then "PASS" else "FAIL")

(* ------------------------------------------------------------------ *)
(* summary                                                              *)
(* ------------------------------------------------------------------ *)

let summary path ascii width =
  let agg = aggregate_of_input path (load_input path) in
  let rows =
    List.map
      (fun (g : Aggregate.group) ->
        let b = g.Aggregate.broadcast in
        let s = b.Aggregate.summary in
        [
          g.Aggregate.graph;
          g.Aggregate.protocol;
          string_of_int g.Aggregate.runs;
          string_of_int g.Aggregate.capped;
          Printf.sprintf "%.1f" s.Stats.mean;
          Printf.sprintf "%.1f" s.Stats.median;
          Printf.sprintf "%.1f" b.Aggregate.p90;
          Printf.sprintf "%.1f" b.Aggregate.p99;
          Printf.sprintf "%.3g"
            g.Aggregate.contacts.Aggregate.summary.Stats.mean;
          Printf.sprintf "%.2f"
            (1000.0 *. g.Aggregate.wall_seconds.Aggregate.summary.Stats.mean);
          fmt_words g.Aggregate.alloc_words.Aggregate.summary.Stats.mean;
        ])
      agg
  in
  Table.print
    (Table.make
       ~title:(Printf.sprintf "per-(graph, protocol) summary of %s" path)
       ~claim:""
       ~aligns:[ Table.Left; Table.Left ]
       ~header:
         [ "graph"; "protocol"; "runs"; "capped"; "bt mean"; "bt med";
           "bt p90"; "bt p99"; "contacts"; "wall ms"; "alloc" ]
       rows);
  let with_curves =
    List.filter
      (fun (g : Aggregate.group) -> Array.length g.Aggregate.mean_curve > 0)
      agg
  in
  if not (List.is_empty with_curves) then begin
    Printf.printf "\nmean informed-count curves:\n";
    let label_width =
      List.fold_left
        (fun m (g : Aggregate.group) ->
          max m
            (String.length g.Aggregate.graph
            + String.length g.Aggregate.protocol + 1))
        0 with_curves
    in
    List.iter
      (fun (g : Aggregate.group) ->
        let label = g.Aggregate.graph ^ "/" ^ g.Aggregate.protocol in
        let curve = g.Aggregate.mean_curve in
        let int_curve = Array.map int_of_float curve in
        let half =
          Curve_stats.time_to_fraction_curve
            ~completed:(g.Aggregate.capped < g.Aggregate.runs)
            int_curve 0.5
        in
        Printf.printf "  %-*s %s%s\n" label_width label
          (Sparkline.render ~width ~ascii curve)
          (match half with
          | Some h -> Printf.sprintf "  (50%% at round %d)" h
          | None -> ""))
      with_curves
  end;
  0

(* ------------------------------------------------------------------ *)
(* compare                                                              *)
(* ------------------------------------------------------------------ *)

let compare_bench (base : Bench_record.t) (current : Bench_record.t) =
  let d = Bench_record.diff ~base ~current in
  let rows =
    List.map
      (fun (delta : Bench_record.delta) ->
        [
          delta.Bench_record.name;
          fmt_ns delta.Bench_record.base_ns;
          fmt_ns delta.Bench_record.current_ns;
          fmt_ratio delta.Bench_record.ratio;
        ])
      d.Bench_record.deltas
  in
  Table.print
    (Table.make
       ~title:
         (Printf.sprintf "microbenchmarks: seed %d (jobs %d) -> seed %d (jobs %d)"
            base.Bench_record.seed base.Bench_record.jobs
            current.Bench_record.seed current.Bench_record.jobs)
       ~claim:"" ~aligns:[ Table.Left ]
       ~header:[ "benchmark"; "old"; "new"; "ratio" ]
       rows);
  List.iter (Printf.printf "missing in new run: %s\n") d.Bench_record.missing;
  List.iter (Printf.printf "new benchmark: %s\n") d.Bench_record.added;
  (* run metadata (e.g. the DES benches' calendar geometry), old vs new *)
  let print_meta label (t : Bench_record.t) =
    match t.Bench_record.meta with
    | [] -> ()
    | meta ->
        Printf.printf "%s meta:\n" label;
        List.iter (fun (k, v) -> Printf.printf "  %s = %s\n" k v) meta
  in
  print_meta "old" base;
  print_meta "new" current;
  0

let compare_files old_path new_path tolerance_pct =
  let old_input = load_input old_path and new_input = load_input new_path in
  match (old_input, new_input) with
  | Bench b, Bench c -> compare_bench b c
  | Bench _, _ | _, Bench _ ->
      failf "cannot compare a bench snapshot against run records"
  | _ ->
      let tol = tolerances_of_pct tolerance_pct in
      let baseline = aggregate_of_input old_path old_input in
      let current = aggregate_of_input new_path new_input in
      let report = Baseline.check ~tol ~baseline ~current () in
      print_check_report report;
      (* compare is informational: only malformed input exits nonzero *)
      0

(* ------------------------------------------------------------------ *)
(* check / baseline                                                     *)
(* ------------------------------------------------------------------ *)

let check path baseline_path tolerance_pct =
  let tol = tolerances_of_pct tolerance_pct in
  let baseline =
    aggregate_of_input baseline_path (load_input baseline_path)
  in
  let current = aggregate_of_input path (load_input path) in
  let report = Baseline.check ~tol ~baseline ~current () in
  print_check_report report;
  if Baseline.passed report then 0 else 1

let make_baseline path out =
  let agg = aggregate_of_input path (load_input path) in
  Baseline.save out agg;
  Printf.printf "wrote baseline of %d group(s) to %s\n" (List.length agg) out;
  0

(* ------------------------------------------------------------------ *)
(* trace: self-time profile of a recorded execution trace              *)
(* ------------------------------------------------------------------ *)

module Trace = Rumor_obs.Trace
module Counters = Rumor_obs.Counters

(* Self time is a span's duration minus its direct children's durations.
   Spans on one track, sorted by start time (ties: outermost — longest —
   first), nest properly, so a stack sweep finds each span's parent: pop
   finished spans, and whatever remains on top when a span starts is the
   span that contains it. *)
type span_acc = { ev : Trace.event; mutable self_us : float }

let self_times spans =
  let recs =
    Array.of_list
      (List.map (fun e -> { ev = e; self_us = e.Trace.dur_us }) spans)
  in
  Array.sort
    (fun a b ->
      match Int.compare a.ev.Trace.tid b.ev.Trace.tid with
      | 0 -> (
          match Float.compare a.ev.Trace.ts_us b.ev.Trace.ts_us with
          | 0 -> Float.compare b.ev.Trace.dur_us a.ev.Trace.dur_us
          | c -> c)
      | c -> c)
    recs;
  let ends r = r.ev.Trace.ts_us +. r.ev.Trace.dur_us in
  let stack = ref [] in
  let track = ref min_int in
  Array.iter
    (fun r ->
      if r.ev.Trace.tid <> !track then begin
        stack := [];
        track := r.ev.Trace.tid
      end;
      let rec pop () =
        match !stack with
        | top :: rest when ends top < ends r ->
            stack := rest;
            pop ()
        | _ -> ()
      in
      pop ();
      (match !stack with
      | parent :: _ -> parent.self_us <- parent.self_us -. r.ev.Trace.dur_us
      | [] -> ());
      stack := r :: !stack)
    recs;
  recs

type prof = {
  mutable count : int;
  mutable total_us : float;
  mutable self_total_us : float;
  mutable alloc_w : float;
  mutable majors : int;
  mutable durs : float list;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let fmt_us us = fmt_ns (1e3 *. us)

(* The parallel_for shard labels: the engine's per-shard draw phases plus
   the generic default.  Per-rep chunks ("rep.chunk") and round spans carry
   args too, so the imbalance ratio keys on these names only. *)
let is_shard_span (e : Trace.event) =
  Option.is_some e.Trace.arg
  && (Filename.check_suffix e.Trace.name ".draw"
     || String.equal e.Trace.name "shard")

let shard_imbalance spans =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      if is_shard_span e then
        match e.Trace.arg with
        | Some s ->
            let t = try Hashtbl.find totals s with Not_found -> 0.0 in
            Hashtbl.replace totals s (t +. e.Trace.dur_us)
        | None -> ())
    spans;
  if Hashtbl.length totals < 2 then None
  else begin
    let sum = Hashtbl.fold (fun _ t acc -> acc +. t) totals 0.0 in
    let mx = Hashtbl.fold (fun _ t acc -> Float.max t acc) totals 0.0 in
    let mean = sum /. float_of_int (Hashtbl.length totals) in
    if mean > 0.0 then Some (Hashtbl.length totals, mx /. mean) else None
  end

let print_trace_counters cs =
  if not (Counters.is_empty cs) then begin
    let j = Counters.to_json cs in
    (match Json.member "counters" j with
    | Some (Json.Obj ((_ :: _) as kvs)) ->
        Printf.printf "\ncounters:\n";
        List.iter
          (fun (name, v) ->
            match Json.to_int v with
            | Some v -> Printf.printf "  %-24s %d\n" name v
            | None -> ())
          kvs
    | _ -> ());
    match Json.member "histograms" j with
    | Some (Json.Obj ((_ :: _) as kvs)) ->
        Printf.printf "histograms:\n";
        List.iter
          (fun (name, h) ->
            let floats m =
              match Json.member m h with
              | Some (Json.List l) -> List.filter_map Json.to_float l
              | _ -> []
            in
            let bounds = floats "bounds" and counts = floats "counts" in
            Printf.printf "  %s: " name;
            List.iteri
              (fun i c ->
                let label =
                  match List.nth_opt bounds i with
                  | Some b -> Printf.sprintf "<=%g" b
                  | None -> "over"
                in
                Printf.printf "%s%s:%g" (if i = 0 then "" else " ") label c)
              counts;
            print_newline ())
          kvs
    | _ -> ()
  end

let trace_profile path top max_imbalance =
  let { Trace.file_events; file_counters } =
    match Trace.read_file path with Ok f -> f | Error msg -> failf "%s" msg
  in
  let spans =
    List.filter (fun e -> e.Trace.ph = `Span) file_events
  in
  if List.is_empty spans then begin
    Printf.printf "%s: no spans recorded\n" path;
    print_trace_counters file_counters;
    0
  end
  else begin
    let recs = self_times spans in
    let wall =
      Array.fold_left
        (fun acc r -> Float.max acc (r.ev.Trace.ts_us +. r.ev.Trace.dur_us))
        0.0 recs
    in
    let tids =
      List.sort_uniq Int.compare (List.map (fun e -> e.Trace.tid) spans)
    in
    let by_name : (string, prof) Hashtbl.t = Hashtbl.create 32 in
    Array.iter
      (fun r ->
        let e = r.ev in
        let p =
          match Hashtbl.find_opt by_name e.Trace.name with
          | Some p -> p
          | None ->
              let p =
                {
                  count = 0;
                  total_us = 0.0;
                  self_total_us = 0.0;
                  alloc_w = 0.0;
                  majors = 0;
                  durs = [];
                }
              in
              Hashtbl.add by_name e.Trace.name p;
              p
        in
        p.count <- p.count + 1;
        p.total_us <- p.total_us +. e.Trace.dur_us;
        p.self_total_us <- p.self_total_us +. r.self_us;
        p.alloc_w <- p.alloc_w +. e.Trace.alloc_w;
        p.majors <- p.majors + e.Trace.major_gcs;
        p.durs <- e.Trace.dur_us :: p.durs)
      recs;
    let profs =
      Hashtbl.fold (fun name p acc -> (name, p) :: acc) by_name []
      |> List.sort (fun (_, a) (_, b) ->
             Float.compare b.self_total_us a.self_total_us)
    in
    let total_self =
      List.fold_left (fun acc (_, p) -> acc +. p.self_total_us) 0.0 profs
    in
    let rows =
      List.filteri (fun i _ -> i < top) profs
      |> List.map (fun (name, p) ->
             let sorted = Array.of_list p.durs in
             Array.sort Float.compare sorted;
             [
               name;
               string_of_int p.count;
               fmt_us p.total_us;
               fmt_us p.self_total_us;
               (if total_self > 0.0 then
                  Printf.sprintf "%.1f%%" (100.0 *. p.self_total_us /. total_self)
                else "-");
               fmt_us (percentile sorted 0.50);
               fmt_us (percentile sorted 0.99);
               fmt_words p.alloc_w;
               string_of_int p.majors;
             ])
    in
    Table.print
      (Table.make
         ~title:
           (Printf.sprintf "span profile of %s (wall %s, %d span(s), %d track(s))"
              path (fmt_us wall) (List.length spans) (List.length tids))
         ~claim:"" ~aligns:[ Table.Left ]
         ~header:
           [ "span"; "count"; "total"; "self"; "self%"; "p50"; "p99"; "alloc";
             "majGC" ]
         rows);
    if List.length profs > top then
      Printf.printf "(%d more span name(s); --top to widen)\n"
        (List.length profs - top);
    let imbalance = shard_imbalance spans in
    (match imbalance with
    | Some (shards, ratio) ->
        Printf.printf "\nshard imbalance over %d shard(s): max/mean = %.3f\n"
          shards ratio
    | None -> ());
    print_trace_counters file_counters;
    match (max_imbalance, imbalance) with
    | Some cap, Some (_, ratio) when ratio > cap ->
        Printf.printf "\nshard imbalance %.3f exceeds --max-imbalance %.3f — FAIL\n"
          ratio cap;
        1
    | Some cap, None ->
        Printf.printf
          "\nno shard spans to check against --max-imbalance %.3f — FAIL\n" cap;
        1
    | _ -> 0
  end

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let handle f = try f () with Fail msg -> prerr_endline ("rumor_report: " ^ msg); 2

let file_pos ~docv n =
  Arg.(required & pos n (some string) None & info [] ~docv)

let tolerance_arg =
  let doc =
    "Uniform relative tolerance in percent for every metric (overrides the \
     per-metric defaults: broadcast/contacts 10%, wall-clock 50%, \
     allocation 15%)."
  in
  Arg.(value & opt (some float) None & info [ "tolerance" ] ~docv:"PCT" ~doc)

let summary_cmd =
  let doc = "per-(graph, protocol) summary table of a metrics file" in
  let ascii =
    Arg.(value & flag & info [ "ascii" ] ~doc:"ASCII sparklines (no Unicode).")
  in
  let width =
    Arg.(value & opt int 50 & info [ "width" ] ~docv:"N" ~doc:"Sparkline width.")
  in
  Cmd.v
    (Cmd.info "summary" ~doc)
    Term.(
      const (fun path ascii width -> handle (fun () -> summary path ascii width))
      $ file_pos ~docv:"FILE.jsonl" 0 $ ascii $ width)

let compare_cmd =
  let doc =
    "diff two metrics files (JSONL runs, baseline snapshots, or BENCH \
     microbenchmark snapshots)"
  in
  Cmd.v
    (Cmd.info "compare" ~doc)
    Term.(
      const (fun old_path new_path tol ->
          handle (fun () -> compare_files old_path new_path tol))
      $ file_pos ~docv:"OLD" 0 $ file_pos ~docv:"NEW" 1 $ tolerance_arg)

let check_cmd =
  let doc =
    "gate a metrics file against a baseline snapshot; exits 1 on regression"
  in
  let baseline_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE.json"
          ~doc:"Baseline snapshot written by $(b,rumor_report baseline).")
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const (fun path b tol -> handle (fun () -> check path b tol))
      $ file_pos ~docv:"FILE.jsonl" 0 $ baseline_arg $ tolerance_arg)

let baseline_cmd =
  let doc = "snapshot a metrics file's aggregate as a baseline" in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_baseline.json"
      & info [ "o"; "out" ] ~docv:"FILE.json" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "baseline" ~doc)
    Term.(
      const (fun path out -> handle (fun () -> make_baseline path out))
      $ file_pos ~docv:"FILE.jsonl" 0 $ out_arg)

let trace_cmd =
  let doc =
    "self-time profile of a --trace file (Chrome JSON or rumor-trace/1 JSONL)"
  in
  let top_arg =
    Arg.(
      value & opt int 15
      & info [ "top" ] ~docv:"N" ~doc:"Show the N hottest span names.")
  in
  let max_imbalance_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-imbalance" ] ~docv:"RATIO"
          ~doc:
            "Exit 1 if the shard load-imbalance ratio (max over mean of \
             per-shard draw-span totals) exceeds $(docv), or if the trace \
             has no shard spans to measure.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      const (fun path top mi -> handle (fun () -> trace_profile path top mi))
      $ file_pos ~docv:"TRACE" 0 $ top_arg $ max_imbalance_arg)

let cmd =
  let doc = "analyze recorded rumor-spreading metrics" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Consumes the JSONL files written by the $(b,--metrics) flag of \
         rumor_run, rumor_experiments and bench/main.exe, plus the \
         BENCH_<seed>.json microbenchmark snapshots: groups records by \
         (graph, protocol), reports mean/median/p90/p99, and gates new runs \
         against saved baselines.";
      `S Manpage.s_examples;
      `Pre
        "  rumor_run -g star:1000 -p push --reps 20 --metrics m.jsonl\n\
        \  rumor_report summary m.jsonl\n\
        \  rumor_report baseline m.jsonl -o BENCH_baseline.json\n\
        \  rumor_report check new.jsonl --baseline BENCH_baseline.json \
         --tolerance 25";
    ]
  in
  Cmd.group
    (Cmd.info "rumor_report" ~version:"1.0.0" ~doc ~man)
    [ summary_cmd; compare_cmd; check_cmd; baseline_cmd; trace_cmd ]

let () = exit (Cmd.eval' cmd)
