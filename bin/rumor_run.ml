(* rumor_run: run one protocol on one graph and report broadcast times.

   Examples:
     rumor_run --graph star:1000 --protocol push --reps 10
     rumor_run --graph double-star:512 --protocol push-pull --protocol visit-exchange
     rumor_run --graph random-regular:4096,12 --protocol meet-exchange --alpha 2 *)

open Cmdliner
module Rng = Rumor_prob.Rng
module Placement = Rumor_agents.Placement
module Protocol = Rumor_sim.Protocol
module Graph_spec = Rumor_sim.Graph_spec
module Replicate = Rumor_sim.Replicate
module Run_record = Rumor_obs.Run_record
module Trace = Rumor_obs.Trace
module Stats = Rumor_prob.Stats

(* .jsonl gets the streaming rumor-trace/1 form; anything else the Chrome
   trace_event JSON that Perfetto / chrome://tracing loads directly *)
let write_trace tr path =
  if Filename.check_suffix path ".jsonl" then Trace.write_jsonl tr path
  else Trace.write_chrome tr path

let protocol_of_string ~alpha ~laziness name =
  let agents = Placement.Linear alpha in
  match String.lowercase_ascii name with
  | "push" -> Ok Protocol.Push
  | "push-pull" | "pushpull" | "ppull" -> Ok Protocol.Push_pull
  | "pull" -> Ok Protocol.pull
  | "visit-exchange" | "visitx" -> Ok (Protocol.Visit_exchange { agents; laziness })
  | "meet-exchange" | "meetx" -> Ok (Protocol.Meet_exchange { agents; laziness })
  | "combined" -> Ok (Protocol.Combined { agents; laziness })
  | "quasi-push" | "quasipush" -> Ok Protocol.Quasi_push
  | "cobra" -> Ok (Protocol.cobra ())
  | "frog" -> Ok (Protocol.frog ())
  | "flood" -> Ok Protocol.flood
  | "async-push" | "apush" -> Ok Protocol.async_push
  | "async-push-pull" | "apushpull" -> Ok Protocol.async_push_pull
  | "async-meet-exchange" | "ameetx" ->
      Ok (Protocol.Async_meet_exchange { agents; laziness })
  | other ->
      Error
        (Printf.sprintf
           "unknown protocol %S (known: push, push-pull, visit-exchange, \
            meet-exchange, combined, quasi-push, cobra, frog, flood, \
            async-push, async-push-pull, async-meet-exchange)"
           other)

let laziness_of_string = function
  | "off" -> Ok Protocol.Lazy_off
  | "on" -> Ok Protocol.Lazy_on
  | "auto" -> Ok Protocol.Lazy_auto
  | other -> Error (Printf.sprintf "bad laziness %S (off|on|auto)" other)

let run graph_text protocols source_override seed reps max_rounds alpha lazy_text
    show_curve metrics_path jobs engine shards walkers_text trace_path =
  let ( let* ) r f = match r with Ok v -> f v | Error m -> `Error (false, m) in
  let* spec =
    match Graph_spec.parse graph_text with Ok s -> Ok s | Error m -> Error m
  in
  let* laziness = laziness_of_string lazy_text in
  let* () =
    if jobs >= 0 then Ok ()
    else Error (Printf.sprintf "bad --jobs %d (want >= 0; 0 = all cores)" jobs)
  in
  let* () =
    if shards >= 1 then Ok ()
    else Error (Printf.sprintf "bad --shards %d (want >= 1)" shards)
  in
  let* () =
    if engine || shards = 1 then Ok ()
    else Error "--shards requires --engine"
  in
  let* walkers =
    match Protocol.walkers_of_string walkers_text with
    | Some w -> Ok w
    | None ->
        Error
          (Printf.sprintf "bad --walkers %S (dense|sparse|auto)" walkers_text)
  in
  let* () =
    if engine || walkers = Protocol.Dense then Ok ()
    else Error "--walkers requires --engine"
  in
  let* protocol_specs =
    List.fold_left
      (fun acc name ->
        match acc with
        | Error _ as e -> e
        | Ok acc -> (
            match protocol_of_string ~alpha ~laziness name with
            | Ok p -> Ok (p :: acc)
            | Error m -> Error m))
      (Ok []) (List.rev protocols)
  in
  let protocol_specs =
    match protocol_specs with [] -> [ Protocol.Push ] | specs -> specs
  in
  let trace = Option.map (fun _ -> Trace.create ()) trace_path in
  (* describe the graph once; under --trace this probe build contributes the
     builder phase spans (edge-gen / CSR fill / sort) *)
  let probe_rng = Rng.of_int seed in
  let g0, default_source = Graph_spec.build ?trace probe_rng spec in
  Printf.printf "graph %s: %s\n" (Graph_spec.to_string spec)
    (Format.asprintf "%a" Rumor_graph.Graph.pp g0);
  let source = Option.value source_override ~default:default_source in
  if source < 0 || source >= Rumor_graph.Graph.n g0 then
    `Error (false, Printf.sprintf "source %d out of range" source)
  else begin
    Printf.printf "source %d, %d replication(s), seed %d, round cap %d\n\n" source
      reps seed max_rounds;
    let run_protocols sink =
      List.iter
        (fun p ->
          let graph rng =
            if Graph_spec.is_random spec then
              let g, s = Graph_spec.build rng spec in
              (g, Option.value source_override ~default:s)
            else (g0, source)
          in
          (* --curve prints replicate 0's curve, captured through the record
             sink so it belongs to one of the measured runs (an extra
             simulation with a fresh generator would belong to none). *)
          let rep0 = ref None in
          let sink =
            if not show_curve then sink
            else begin
              let capture (r : Run_record.t) =
                if r.Run_record.rep = 0 then rep0 := Some r
              in
              Some
                (match sink with
                | None -> capture
                | Some s ->
                    fun r ->
                      capture r;
                      s r)
            end
          in
          let m =
            Replicate.broadcast_times ?sink ?trace
              ~graph_name:(Graph_spec.to_string spec) ~jobs ~engine ~walkers
              ~shards ~seed ~reps ~graph ~spec:p ~max_rounds ()
          in
          let s = m.Replicate.summary in
          Printf.printf "%-14s mean %.1f  median %.1f  min %.0f  max %.0f%s\n"
            (Protocol.name p) s.Stats.mean s.Stats.median s.Stats.min s.Stats.max
            (if m.Replicate.capped > 0 then
               Printf.sprintf "  (%d/%d capped)" m.Replicate.capped reps
             else "");
          match (show_curve, !rep0) with
          | false, _ | true, None -> ()
          | true, Some r ->
              let curve = r.Run_record.informed_curve in
              Printf.printf "  curve %s"
                (Rumor_sim.Sparkline.render_ints ~width:50 curve);
              (match
                 Rumor_sim.Curve_stats.time_to_fraction_curve
                   ~completed:(r.Run_record.broadcast_time <> None)
                   curve 0.5
               with
              | Some h -> Printf.printf "  (50%% at round %d)" h
              | None -> ());
              Printf.printf "\n")
        protocol_specs
    in
    let finish_trace () =
      match (trace, trace_path) with
      | Some tr, Some path -> (
          match write_trace tr path with
          | () ->
              Printf.printf "wrote trace (%d events) to %s\n" (Trace.events tr)
                path;
              Ok ()
          | exception Sys_error m -> Error ("cannot write trace: " ^ m))
      | _ -> Ok ()
    in
    match metrics_path with
    | None -> (
        run_protocols None;
        match finish_trace () with Ok () -> `Ok () | Error m -> `Error (false, m))
    | Some path -> (
        match
          Run_record.with_jsonl_file path (fun sink -> run_protocols (Some sink))
        with
        | () -> (
            Printf.printf "\nwrote per-replicate metrics to %s\n" path;
            match finish_trace () with
            | Ok () -> `Ok ()
            | Error m -> `Error (false, m))
        | exception Sys_error m -> `Error (false, "cannot write metrics: " ^ m))
  end

let graph_arg =
  let doc =
    "Graph specification, e.g. star:1000, double-star:512, heavy-tree:11, \
     random-regular:4096,12.  Families: " ^ String.concat ", " Graph_spec.families
  in
  Arg.(required & opt (some string) None & info [ "g"; "graph" ] ~docv:"SPEC" ~doc)

let protocol_arg =
  let doc =
    "Protocol to run (repeatable): push, push-pull, visit-exchange, \
     meet-exchange, combined, async-push, async-push-pull, \
     async-meet-exchange, ...  The async-* protocols are continuous-time: \
     --max-rounds caps their time horizon."
  in
  Arg.(value & opt_all string [] & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

let source_arg =
  let doc = "Source vertex (default: the family's natural source)." in
  Arg.(value & opt (some int) None & info [ "source" ] ~docv:"V" ~doc)

let seed_arg =
  let doc = "Random seed; every output is a deterministic function of it." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let reps_arg =
  let doc = "Number of independent replications." in
  Arg.(value & opt int 5 & info [ "r"; "reps" ] ~docv:"N" ~doc)

let max_rounds_arg =
  let doc = "Round cap per replication." in
  Arg.(value & opt int 1_000_000 & info [ "max-rounds" ] ~docv:"N" ~doc)

let alpha_arg =
  let doc = "Agent density: the agent-based protocols use round(alpha * n) agents." in
  Arg.(value & opt float 1.0 & info [ "alpha" ] ~docv:"A" ~doc)

let lazy_arg =
  let doc = "Laziness of the random walks: off, on, or auto (lazy iff bipartite)." in
  Arg.(value & opt string "auto" & info [ "lazy" ] ~docv:"MODE" ~doc)

let curve_arg =
  let doc = "Also print replicate 0's informed-count curve." in
  Arg.(value & flag & info [ "curve" ] ~doc)

let metrics_arg =
  let doc =
    "Write one JSONL record per replicate (seed, informed curve, wall-clock, \
     GC counters) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Run replications on $(docv) domains (0 = all cores).  Results and \
     metrics are bit-identical for every value; only wall-clock changes."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let engine_arg =
  let doc =
    "Use the flat engine kernels: flat-frontier rounds for push, push-pull, \
     visit-exchange and meet-exchange, the calendar-queue DES for the \
     async-* protocols (others fall back).  Bit-identical to the default \
     path at --shards 1; required for million-node graphs."
  in
  Arg.(value & flag & info [ "engine" ] ~doc)

let shards_arg =
  let doc =
    "With --engine, draw each round's randomness from $(docv) per-round \
     generator splits.  Results depend only on (seed, shards), never on \
     --jobs."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let walkers_arg =
  let doc =
    "With --engine, the walker representation for visit-exchange, \
     meet-exchange and async-meet-exchange: dense (per-agent positions, \
     bit-identical to the legacy path), sparse (count-compressed per-vertex \
     occupancy — seed-deterministic but not bit-identical; required for \
     10^7 agents), or auto (sparse above the agent-count threshold)."
  in
  Arg.(value & opt string "dense" & info [ "walkers" ] ~docv:"MODE" ~doc)

let trace_arg =
  let doc =
    "Record an execution trace (spans, counters, per-worker tracks) to \
     $(docv): Chrome trace_event JSON by default (load in Perfetto or \
     chrome://tracing), or rumor-trace/1 JSONL if $(docv) ends in .jsonl.  \
     Inspect with rumor_report trace.  Results are unchanged by tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "run rumor-spreading protocols on a graph" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Simulates the protocols of Giakkoupis, Mallmann-Trenn and Saribekyan, \
         \"How to Spread a Rumor: Call Your Neighbors or Take a Walk?\" (PODC \
         2019) on a chosen graph and reports broadcast-time statistics.";
    ]
  in
  Cmd.v
    (Cmd.info "rumor_run" ~version:"1.0.0" ~doc ~man)
    Term.(
      ret
        (const run $ graph_arg $ protocol_arg $ source_arg $ seed_arg $ reps_arg
       $ max_rounds_arg $ alpha_arg $ lazy_arg $ curve_arg $ metrics_arg
       $ jobs_arg $ engine_arg $ shards_arg $ walkers_arg $ trace_arg))

let () = exit (Cmd.eval cmd)
