(* rumor_graphgen: generate, inspect, and export the graph families.

   Examples:
     rumor_graphgen --graph heavy-tree:10
     rumor_graphgen --graph random-regular:1024,10 --seed 7 --edges -o g.edges
     rumor_graphgen --graph csc:6 --dot -o csc.dot *)

open Cmdliner
module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Algo = Rumor_graph.Algo
module Graph_io = Rumor_graph.Graph_io
module Graph_spec = Rumor_sim.Graph_spec
module Clock = Rumor_obs.Clock
module Trace = Rumor_obs.Trace

let write_trace tr path =
  if Filename.check_suffix path ".jsonl" then Trace.write_jsonl tr path
  else Trace.write_chrome tr path

let output text = function
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n" path

let print_analysis g =
  let spectral_iterations = 2000 in
  let gap = Rumor_graph.Spectral.spectral_gap ~iterations:spectral_iterations g in
  Printf.printf "spectral gap (lazy walk): %.5f\n" gap;
  Printf.printf "relaxation time: %.1f\n" (1.0 /. gap);
  let phi =
    if Graph.n g <= 16 then Rumor_graph.Spectral.conductance_exact g
    else Rumor_graph.Spectral.conductance_sweep ~iterations:spectral_iterations g
  in
  Printf.printf "conductance%s: %.5f\n"
    (if Graph.n g <= 16 then " (exact)" else " (sweep upper bound)")
    phi;
  Printf.printf "push-pull bound [11], ln n / phi: %.0f\n"
    (log (float_of_int (Graph.n g)) /. phi);
  if Graph.n g <= 200 then begin
    let h = Rumor_graph.Hitting.hitting_times g 0 in
    let worst = Array.fold_left Float.max 0.0 h in
    Printf.printf "max hitting time to vertex 0 (exact): %.1f\n" worst
  end;
  if Graph.n g <= 30 then
    try
      let lazy_walk = Rumor_graph.Algo.is_bipartite g in
      Printf.printf "max meeting time (exact%s): %.1f\n"
        (if lazy_walk then ", lazy walks" else "")
        (Rumor_graph.Hitting.max_meeting_time ~lazy_walk g)
    with Invalid_argument _ -> ()

let run graph_text seed dot edges analysis timing trace_path out =
  match Graph_spec.parse graph_text with
  | Error m -> `Error (false, m)
  | Ok spec ->
      let rng = Rng.of_int seed in
      let trace = Option.map (fun _ -> Trace.create ()) trace_path in
      let started = Clock.now_s () in
      let allocated_before = Gc.allocated_bytes () in
      let g, source = Graph_spec.build ?trace rng spec in
      let build_seconds = Clock.elapsed_s ~since:started in
      let build_allocated = Gc.allocated_bytes () -. allocated_before in
      if timing then begin
        (* the CSR footprint is what a simulation keeps resident; the
           allocation figure shows the streaming builders' small surplus *)
        let words = Graph.n g + 1 + (2 * Graph.num_edges g) in
        Printf.printf "build: %.3fs, CSR %.1f MB, %.1f MB allocated on the way\n"
          build_seconds
          (float_of_int (8 * words) /. 1e6)
          (build_allocated /. 1e6)
      end;
      if dot then output (Graph_io.to_dot g) out
      else if edges then output (Graph_io.to_edge_list g) out
      else begin
        Printf.printf "%s\n" (Format.asprintf "%a" Graph.pp g);
        Printf.printf "default source: %d\n" source;
        Printf.printf "connected: %b\n" (Algo.is_connected g);
        Printf.printf "bipartite: %b\n" (Algo.is_bipartite g);
        if Algo.is_connected g then
          if Graph.n g <= 4096 then
            Printf.printf "diameter: %d\n" (Algo.diameter g)
          else
            Printf.printf "diameter (double-sweep lower bound): %d\n"
              (Algo.diameter_lower_bound g);
        Printf.printf "degree histogram:\n";
        List.iter
          (fun (d, c) -> Printf.printf "  degree %d: %d vertices\n" d c)
          (Algo.degree_histogram g);
        if analysis && Algo.is_connected g then print_analysis g
      end;
      (match (trace, trace_path) with
      | Some tr, Some path -> (
          match write_trace tr path with
          | () ->
              Printf.printf "wrote trace (%d events) to %s\n" (Trace.events tr)
                path;
              `Ok ()
          | exception Sys_error m -> `Error (false, "cannot write trace: " ^ m))
      | _ -> `Ok ())

let graph_arg =
  let doc = "Graph specification (see rumor_run --help for the families)." in
  Arg.(required & opt (some string) None & info [ "g"; "graph" ] ~docv:"SPEC" ~doc)

let seed_arg =
  let doc = "Random seed (used by the random families)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let dot_arg =
  let doc = "Emit Graphviz DOT instead of statistics." in
  Arg.(value & flag & info [ "dot" ] ~doc)

let edges_arg =
  let doc = "Emit the edge-list format instead of statistics." in
  Arg.(value & flag & info [ "edges" ] ~doc)

let analysis_arg =
  let doc =
    "Also print random-walk analysis: spectral gap, conductance, and (on \
     small graphs) exact hitting and meeting times."
  in
  Arg.(value & flag & info [ "analysis" ] ~doc)

let timing_arg =
  let doc =
    "Print generation wall-clock, the CSR memory footprint, and the bytes \
     allocated while building (the streaming builders keep the latter close \
     to the former)."
  in
  Arg.(value & flag & info [ "timing" ] ~doc)

let trace_arg =
  let doc =
    "Record the builder's phase spans (edge generation, CSR fill, sort) to \
     $(docv): Chrome trace_event JSON, or rumor-trace/1 JSONL if $(docv) \
     ends in .jsonl.  Only the random families are traced."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let out_arg =
  let doc = "Write the output to this file instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "generate and inspect the graph families used by the experiments" in
  Cmd.v
    (Cmd.info "rumor_graphgen" ~version:"1.0.0" ~doc)
    Term.(
      ret
        (const run $ graph_arg $ seed_arg $ dot_arg $ edges_arg $ analysis_arg
       $ timing_arg $ trace_arg $ out_arg))

let () = exit (Cmd.eval cmd)
