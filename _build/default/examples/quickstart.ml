(* Quickstart: build a graph, run all four protocols, compare broadcast
   times.

     dune exec examples/quickstart.exe

   This is the 60-second tour of the public API:
   - Rumor_graph.Gen_random / Gen_basic / Gen_paper build graphs;
   - Rumor_protocols.{Push, Push_pull, Visit_exchange, Meet_exchange} run
     one protocol each and return a Run_result.t;
   - everything is deterministic given the Rng seed. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module P = Rumor_protocols
open Rumor_agents.Placement

let () =
  (* a random 10-regular graph on 1024 vertices: the setting of Theorem 1,
     where all four protocols finish in O(log n) rounds *)
  let rng = Rng.of_int 42 in
  let g = Rumor_graph.Gen_random.random_regular_connected rng ~n:1024 ~d:10 in
  let source = 0 in
  Format.printf "graph: %a@." Graph.pp g;
  Format.printf "source: vertex %d@.@." source;

  (* the paper's default agent population: |A| = n agents started from the
     stationary distribution *)
  let agents = Linear 1.0 in
  let max_rounds = 100_000 in

  let show name (r : P.Run_result.t) =
    Format.printf "  %-14s %a@." name P.Run_result.pp r
  in
  Format.printf "broadcast times (ln n = %.1f):@." (log (float_of_int (Graph.n g)));
  show "push" (P.Push.run (Rng.of_int 1) g ~source ~max_rounds ());
  show "push-pull" (P.Push_pull.run (Rng.of_int 2) g ~source ~max_rounds ());
  show "visit-exchange"
    (P.Visit_exchange.run (Rng.of_int 3) g ~source ~agents ~max_rounds ());
  show "meet-exchange"
    (P.Meet_exchange.run_auto (Rng.of_int 4) g ~source ~agents ~max_rounds ());

  (* the informed-count curve shows the classic logistic shape *)
  let r = P.Push.run (Rng.of_int 5) g ~source ~max_rounds () in
  Format.printf "@.push informed-count curve:@.";
  Array.iteri
    (fun t c ->
      let bar = String.make (60 * c / Graph.n g) '#' in
      Format.printf "  round %2d %5d %s@." t c bar)
    r.P.Run_result.informed_curve
