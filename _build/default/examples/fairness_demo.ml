(* Bandwidth fairness: why the agent-based protocols win on bottleneck
   topologies (Section 1's "locally fair use of bandwidth").

     dune exec examples/fairness_demo.exe

   Both push-pull and visit-exchange run for the same fixed number of rounds
   on the double star, recording per-edge traffic.  push-pull hammers the
   leaf edges (every leaf calls its center every round) but crosses the
   center-center bridge only with probability ~4/n per round; the agents use
   every edge at the same expected rate, bridge included. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Gen_paper = Rumor_graph.Gen_paper
module P = Rumor_protocols
open Rumor_agents.Placement

let () =
  let leaves = 512 in
  let ds = Gen_paper.double_star ~leaves_per_star:leaves in
  let g = ds.Gen_paper.ds_graph in
  let rounds = 400 in
  Format.printf "double star, n = %d, both protocols run exactly %d rounds@.@."
    (Graph.n g) rounds;

  let traffic_of name run =
    let traffic = P.Traffic.create g in
    run traffic;
    let f = P.Traffic.fairness traffic in
    let bridge = P.Traffic.count traffic ds.Gen_paper.ds_center_a ds.Gen_paper.ds_center_b in
    let leaf_edge = P.Traffic.count traffic ds.Gen_paper.ds_center_a ds.Gen_paper.ds_leaf_a in
    Format.printf "%s:@." name;
    Format.printf "  mean edge load     %.1f@." f.P.Traffic.mean;
    Format.printf "  a typical leaf edge %d uses@." leaf_edge;
    Format.printf "  the bridge edge     %d uses (%.3f of the mean)@." bridge
      (float_of_int bridge /. f.P.Traffic.mean);
    Format.printf "  min/max edge load  %d / %d@.@." f.P.Traffic.min_load
      f.P.Traffic.max_load
  in

  traffic_of "push-pull" (fun traffic ->
      ignore
        (P.Push_pull.run ~traffic (Rng.of_int 1) g ~source:ds.Gen_paper.ds_leaf_a
           ~max_rounds:rounds ()));
  traffic_of "visit-exchange" (fun traffic ->
      ignore
        (P.Visit_exchange.run ~traffic (Rng.of_int 2) g ~source:ds.Gen_paper.ds_leaf_a
           ~agents:(Linear 1.0) ~max_rounds:rounds ()));

  Format.printf
    "the bridge is the only route between the stars: push-pull starves it,@.";
  Format.printf
    "so its broadcast time is Omega(n); the agents cross it every O(1) rounds.@."
