(* The full protocol zoo on one graph.

     dune exec examples/protocol_zoo.exe

   Runs every information-spreading process in the library — the paper's
   four protocols, the hybrid, and the related-work processes (quasirandom
   push, COBRA walks, the frog model, asynchronous push) — on the same
   random regular graph, printing broadcast times and informed-curve
   sparklines.  A compact tour of the whole public API. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module P = Rumor_protocols
module Protocol = Rumor_sim.Protocol
module Sparkline = Rumor_sim.Sparkline
open Rumor_agents.Placement

let () =
  let rng = Rng.of_int 2024 in
  let n = 1024 in
  let g = Rumor_graph.Gen_random.random_regular_connected rng ~n ~d:10 in
  Format.printf "graph: %a   (ln n = %.1f)@.@." Graph.pp g (log (float_of_int n));

  let specs =
    [
      Protocol.push;
      Protocol.push_pull;
      Protocol.pull;
      Protocol.quasi_push;
      Protocol.visit_exchange ();
      Protocol.meet_exchange ();
      Protocol.combined ();
      Protocol.cobra ();
      Protocol.frog ();
    ]
  in
  Format.printf "%-16s %6s %5s  %-40s@." "protocol" "rounds" "t50" "informed curve";
  List.iteri
    (fun i spec ->
      let r = Protocol.run spec (Rng.of_int (100 + i)) g ~source:0 ~max_rounds:100_000 in
      let time =
        match r.P.Run_result.broadcast_time with
        | Some t -> string_of_int t
        | None -> ">" ^ string_of_int r.P.Run_result.rounds_run
      in
      let half =
        match Rumor_sim.Curve_stats.half_time r with
        | Some h -> string_of_int h
        | None -> "-"
      in
      Format.printf "%-16s %6s %5s  %s@." (Protocol.name spec) time half
        (Sparkline.render_ints ~width:40 r.P.Run_result.informed_curve))
    specs;

  (* the asynchronous variants live outside the synchronous dispatcher *)
  Format.printf "@.asynchronous variants (continuous time):@.";
  List.iter
    (fun (name, variant) ->
      let r =
        P.Async_push.run (Rng.of_int 999) g ~variant ~source:0 ~max_time:1e6
      in
      match r.P.Async_push.broadcast_time with
      | Some t ->
          Format.printf "  %-18s %.1f time units (%d clock rings)@." name t
            r.P.Async_push.rings
      | None -> Format.printf "  %-18s did not complete@." name)
    [
      ("async push", P.Async_push.Async_push);
      ("async push-pull", P.Async_push.Async_push_pull);
    ];

  (* and the dynamic population variant, under churn *)
  Format.printf "@.visit-exchange under 20%% churn per round (with births):@.";
  let o =
    P.Dynamic_visit_exchange.run (Rng.of_int 7) g ~source:0 ~agents:(Linear 1.0)
      ~churn:0.2 ~replace:true ~max_rounds:100_000 ()
  in
  Format.printf "  %a; %d births, %d deaths, final population %d@."
    P.Run_result.pp o.P.Dynamic_visit_exchange.result
    o.P.Dynamic_visit_exchange.births o.P.Dynamic_visit_exchange.deaths
    o.P.Dynamic_visit_exchange.final_population
