examples/fairness_demo.mli:
