examples/protocol_zoo.ml: Format List Rumor_agents Rumor_graph Rumor_prob Rumor_protocols Rumor_sim
