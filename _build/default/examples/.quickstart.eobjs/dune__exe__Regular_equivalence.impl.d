examples/regular_equivalence.ml: Array Float Format List Option Printf Rumor_agents Rumor_graph Rumor_prob Rumor_protocols
