examples/regular_equivalence.mli:
