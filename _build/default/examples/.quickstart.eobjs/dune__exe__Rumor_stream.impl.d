examples/rumor_stream.ml: Array Format Rumor_agents Rumor_graph Rumor_prob Rumor_protocols String
