examples/double_star_demo.mli:
