examples/quickstart.mli:
