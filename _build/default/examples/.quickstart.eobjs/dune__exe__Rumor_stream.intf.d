examples/rumor_stream.mli:
