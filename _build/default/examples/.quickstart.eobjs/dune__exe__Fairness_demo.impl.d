examples/fairness_demo.ml: Format Rumor_agents Rumor_graph Rumor_prob Rumor_protocols
