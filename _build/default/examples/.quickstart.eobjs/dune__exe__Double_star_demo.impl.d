examples/double_star_demo.ml: Array Format List Rumor_agents Rumor_graph Rumor_prob Rumor_protocols
