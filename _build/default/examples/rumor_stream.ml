(* A stream of rumors over one agent population (the paper's Section 1
   motivation for stationary starts).

     dune exec examples/rumor_stream.exe

   Injects a new rumor every few rounds from rotating sources, all carried
   by the same n stationary random walks, and shows that each rumor's
   broadcast time matches the single-rumor baseline: the agents are a
   shared dissemination fabric, and rumors do not interfere. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module P = Rumor_protocols
open Rumor_agents.Placement

let () =
  let rng = Rng.of_int 5150 in
  let n = 2048 in
  let g = Rumor_graph.Gen_random.random_regular_connected rng ~n ~d:11 in
  Format.printf "graph: %a@.@." Graph.pp g;

  let rumor_count = 24 in
  let gap = 4 in
  let injections =
    Array.init rumor_count (fun i ->
        { P.Multi_rumor.rumor_source = i * 37 mod n; start_round = i * gap })
  in
  let r =
    P.Multi_rumor.run (Rng.of_int 1) g ~injections ~agents:(Linear 1.0)
      ~max_rounds:100_000
  in
  Format.printf "%d rumors, one injected every %d rounds; run ended at round %d@.@."
    rumor_count gap r.P.Multi_rumor.rounds_run;
  Format.printf "%5s %8s %7s  %s@." "rumor" "injected" "done in" "";
  Array.iteri
    (fun i t ->
      let bar = String.make (min t 60) '#' in
      Format.printf "%5d %8d %7d  %s@." i injections.(i).P.Multi_rumor.start_round t bar)
    r.P.Multi_rumor.per_rumor_time;

  (* baseline: the same graph, a single rumor *)
  let baseline =
    P.Visit_exchange.run (Rng.of_int 2) g ~source:0 ~agents:(Linear 1.0)
      ~max_rounds:100_000 ()
  in
  let times = Array.map float_of_int r.P.Multi_rumor.per_rumor_time in
  let mean = Array.fold_left ( +. ) 0.0 times /. float_of_int rumor_count in
  Format.printf "@.mean per-rumor time: %.1f; single-rumor baseline: %d@." mean
    (P.Run_result.time_exn baseline);
  Format.printf
    "the shared walks carry all %d rumors at once — this is why the paper@."
    rumor_count;
  Format.printf "assumes agents start from (and stay at) the stationary distribution.@."
