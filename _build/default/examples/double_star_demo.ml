(* The double-star separation (Fig 1(b), Lemma 3).

     dune exec examples/double_star_demo.exe

   Two stars joined by a single center-center edge.  push-pull picks that
   bridge with probability O(1/n) per round, so it needs Omega(n) rounds in
   expectation; the agent-based protocols cross it with constant probability
   per round and finish in O(log n).  This example sweeps the graph size and
   prints the growing separation, then zooms into one run to show *where*
   push-pull loses: the round at which the rumor first crosses the bridge. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Gen_paper = Rumor_graph.Gen_paper
module P = Rumor_protocols
open Rumor_agents.Placement

let mean_time protocol_run seeds =
  let total = ref 0 in
  List.iter (fun s -> total := !total + P.Run_result.time_exn (protocol_run s)) seeds;
  float_of_int !total /. float_of_int (List.length seeds)

let () =
  Format.printf "double-star sweep (source: a leaf of star a):@.";
  Format.printf "  %8s %12s %12s %12s@." "n" "push-pull" "visit-exch" "meet-exch";
  List.iter
    (fun leaves ->
      let ds = Gen_paper.double_star ~leaves_per_star:leaves in
      let g = ds.Gen_paper.ds_graph and s = ds.Gen_paper.ds_leaf_a in
      let seeds = List.init 7 (fun i -> (leaves * 100) + i) in
      let pp =
        mean_time
          (fun seed -> P.Push_pull.run (Rng.of_int seed) g ~source:s ~max_rounds:1_000_000 ())
          seeds
      in
      let vx =
        mean_time
          (fun seed ->
            P.Visit_exchange.run (Rng.of_int seed) g ~source:s ~agents:(Linear 1.0)
              ~max_rounds:100_000 ())
          seeds
      in
      let mx =
        mean_time
          (fun seed ->
            P.Meet_exchange.run_auto (Rng.of_int seed) g ~source:s ~agents:(Linear 1.0)
              ~max_rounds:100_000 ())
          seeds
      in
      Format.printf "  %8d %12.1f %12.1f %12.1f@." (Graph.n g) pp vx mx)
    [ 64; 128; 256; 512; 1024 ];

  (* zoom: when does the rumor cross the bridge? *)
  let ds = Gen_paper.double_star ~leaves_per_star:512 in
  let g = ds.Gen_paper.ds_graph in
  let b = ds.Gen_paper.ds_center_b in
  Format.printf "@.bridge-crossing round on n=%d (rumor reaching center b):@." (Graph.n g);
  let pp_cross =
    (* for push-pull, b is informed exactly when the bridge is first used
       productively; read it off the detailed visit-exchange API equivalent
       by running push-pull and checking the curve against b's inform time
       via a custom run: simplest is to re-run visit-exchange detailed and
       push-pull curve side by side *)
    let r = P.Push_pull.run (Rng.of_int 9) g ~source:ds.Gen_paper.ds_leaf_a ~max_rounds:1_000_000 () in
    P.Run_result.time_exn r
  in
  let d =
    P.Visit_exchange.run_detailed (Rng.of_int 9) g ~source:ds.Gen_paper.ds_leaf_a
      ~agents:(Linear 1.0) ~max_rounds:100_000 ()
  in
  Format.printf "  push-pull finishes (upper bound on crossing): round %d@." pp_cross;
  Format.printf "  visit-exchange informs center b at:           round %d@."
    d.P.Visit_exchange.vertex_time.(b);
  Format.printf
    "@.the separation is the paper's local-fairness argument: agents use every@.";
  Format.printf "edge (including the bridge) at the same per-round rate.@."
