(* Theorem 1 in action: push and visit-exchange track each other on regular
   graphs of logarithmic degree.

     dune exec examples/regular_equivalence.exe

   The example sweeps three regular families — random d-regular, hypercube,
   and the necklace (a regular graph with *polynomial* broadcast time) — and
   shows the push/visit-exchange ratio staying within constant bounds while
   the absolute times range from ~15 rounds to ~300.  It finishes with the
   Section 5 coupling run: on a shared probability space, tau_u <= C_u(t_u)
   for every vertex (Lemma 13), verified mechanically. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module P = Rumor_protocols
open Rumor_agents.Placement

let mean f seeds =
  let total = List.fold_left (fun acc s -> acc + f s) 0 seeds in
  float_of_int total /. float_of_int (List.length seeds)

let measure_family name graphs =
  Format.printf "%s:@." name;
  Format.printf "  %16s %8s %10s %10s %8s@." "graph" "d" "push" "visitx" "ratio";
  List.iter
    (fun (label, g) ->
      let seeds = List.init 7 (fun i -> i + 1) in
      let push seed =
        P.Run_result.time_exn
          (P.Push.run (Rng.of_int seed) g ~source:0 ~max_rounds:1_000_000 ())
      in
      let visitx seed =
        P.Run_result.time_exn
          (P.Visit_exchange.run (Rng.of_int (1000 + seed)) g ~source:0
             ~agents:(Linear 1.0) ~max_rounds:1_000_000 ())
      in
      let tp = mean push seeds and tv = mean visitx seeds in
      Format.printf "  %16s %8d %10.1f %10.1f %8.2f@." label
        (Option.value ~default:0 (Graph.regular_degree g))
        tp tv (tp /. tv))
    graphs;
  Format.printf "@."

let () =
  let rng = Rng.of_int 99 in
  measure_family "random d-regular (d = log2 n)"
    (List.map
       (fun n ->
         let d = max 6 (int_of_float (Float.round (log (float_of_int n) /. log 2.0))) in
         ( Printf.sprintf "n=%d" n,
           Rumor_graph.Gen_random.random_regular_connected rng ~n ~d ))
       [ 256; 1024; 4096 ]);
  measure_family "hypercube"
    (List.map
       (fun dim -> (Printf.sprintf "dim=%d" dim, Rumor_graph.Gen_basic.hypercube ~dim))
       [ 8; 10; 12 ]);
  measure_family "necklace of 16-cliques (polynomial time, still regular)"
    (List.map
       (fun cliques ->
         ( Printf.sprintf "%d cliques" cliques,
           Rumor_graph.Gen_basic.necklace ~cliques ~clique_size:16 ))
       [ 8; 16; 32 ]);

  (* the Section 5 coupling, run mechanically *)
  let g = Rumor_graph.Gen_random.random_regular_connected rng ~n:512 ~d:9 in
  let c = P.Coupling.create (Rng.of_int 7) g ~source:0 in
  let o = P.Coupling.run_visit_exchange c ~agents:(Linear 1.0) ~max_rounds:50_000 in
  let tau = P.Coupling.run_push c ~max_rounds:1_000_000 in
  let violations = P.Coupling.lemma13_violations ~tau o in
  let worst = ref 0.0 in
  Array.iteri
    (fun u tu ->
      if tu > 0 && tu < max_int then
        worst := Float.max !worst (float_of_int tau.(u) /. float_of_int tu))
    o.P.Coupling.vertex_time;
  Format.printf "Section 5 coupling on random 9-regular, n=512:@.";
  Format.printf "  Lemma 13 violations (tau_u > C_u(t_u)): %d / %d vertices@."
    (List.length violations) (Graph.n g);
  Format.printf "  worst tau_u / t_u ratio observed: %.2f (a constant, as Theorem 10 predicts)@."
    !worst
