(** A population of synchronized independent random walks.

    One {!step} advances every agent by one round: each agent moves to a
    uniformly random neighbor of its current vertex (or, for lazy walks,
    first flips a fair coin to stay put — the variant the paper uses for
    meet-exchange on bipartite graphs).  Per-vertex occupancy counts are
    maintained incrementally, so protocols can ask "how many agents are on
    [v] right now" in O(1). *)

type t

val create :
  ?lazy_walk:bool -> Rumor_prob.Rng.t -> Rumor_graph.Graph.t -> int array -> t
(** [create rng g positions] takes ownership of the [positions] array (agent
    index → vertex).  [lazy_walk] defaults to [false].  The generator is
    retained and consumed by subsequent {!step}s. *)

val of_spec :
  ?lazy_walk:bool -> Rumor_prob.Rng.t -> Rumor_graph.Graph.t -> Placement.spec -> t
(** Convenience: {!Placement.place} then {!create}. *)

val graph : t -> Rumor_graph.Graph.t
val agent_count : t -> int
val is_lazy : t -> bool

val position : t -> int -> int
(** [position w a] is agent [a]'s current vertex. *)

val positions : t -> int array
(** The live positions array (not a copy); callers must not mutate it. *)

val occupancy : t -> int -> int
(** [occupancy w v] is the number of agents currently on [v]. *)

val round : t -> int
(** Number of steps taken so far (round 0 = initial placement). *)

val step : t -> unit
(** Advance every agent one round, in agent-index order. *)

val step_with : t -> (int -> int -> int -> unit) -> unit
(** [step_with w f] is {!step} but calls [f agent from to_] for every agent
    after its move (lazy stays report [from = to_]). *)

(** {1 Per-round vertex buckets}

    meet-exchange needs, each round, the set of agents co-located at each
    vertex.  [Buckets] computes this grouping in O(agents + n) with no
    allocation after the first call. *)
module Buckets : sig
  type b

  val create : t -> b
  (** Allocate bucket storage sized for [t]'s graph and population. *)

  val refresh : b -> t -> unit
  (** Recompute the grouping from the walker's current positions. *)

  val agents_at : b -> int -> int -> int
  (** [agents_at b v i] is the [i]-th agent on vertex [v], in increasing
      agent order, [0 <= i < count_at b v]. *)

  val count_at : b -> int -> int

  val iter_at : b -> int -> (int -> unit) -> unit
  (** Iterate the agents on a vertex in increasing agent order. *)
end
