lib/agents/walkers.mli: Placement Rumor_graph Rumor_prob
