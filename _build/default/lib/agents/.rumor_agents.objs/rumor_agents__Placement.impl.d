lib/agents/placement.ml: Array Float Rumor_graph Rumor_prob
