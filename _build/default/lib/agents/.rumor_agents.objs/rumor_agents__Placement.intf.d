lib/agents/placement.mli: Rumor_graph Rumor_prob
