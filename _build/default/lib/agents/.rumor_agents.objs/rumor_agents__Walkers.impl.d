lib/agents/walkers.ml: Array Placement Rumor_graph Rumor_prob
