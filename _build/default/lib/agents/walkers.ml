module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph

type t = {
  graph : Graph.t;
  rng : Rng.t;
  pos : int array;
  occ : int array;
  lazy_walk : bool;
  mutable round : int;
}

let create ?(lazy_walk = false) rng graph pos =
  let n = Graph.n graph in
  let occ = Array.make n 0 in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Walkers.create: position out of range";
      if Graph.degree graph v = 0 then
        invalid_arg "Walkers.create: agent on isolated vertex";
      occ.(v) <- occ.(v) + 1)
    pos;
  if Array.length pos = 0 then invalid_arg "Walkers.create: no agents";
  { graph; rng; pos; occ; lazy_walk; round = 0 }

let of_spec ?lazy_walk rng graph spec =
  create ?lazy_walk rng graph (Placement.place rng spec graph)

let graph w = w.graph
let agent_count w = Array.length w.pos
let is_lazy w = w.lazy_walk
let position w a = w.pos.(a)
let positions w = w.pos
let occupancy w v = w.occ.(v)
let round w = w.round

let move_one w a =
  let u = w.pos.(a) in
  if w.lazy_walk && Rng.bool w.rng then u
  else begin
    let v = Graph.random_neighbor w.graph w.rng u in
    w.occ.(u) <- w.occ.(u) - 1;
    w.occ.(v) <- w.occ.(v) + 1;
    w.pos.(a) <- v;
    v
  end

let step w =
  for a = 0 to Array.length w.pos - 1 do
    ignore (move_one w a)
  done;
  w.round <- w.round + 1

let step_with w f =
  for a = 0 to Array.length w.pos - 1 do
    let from = w.pos.(a) in
    let to_ = move_one w a in
    f a from to_
  done;
  w.round <- w.round + 1

module Buckets = struct
  type b = {
    starts : int array;  (* length n+1: prefix sums of per-vertex counts *)
    ids : int array;     (* length = agent count: agent ids grouped by vertex *)
  }

  let create w =
    {
      starts = Array.make (Graph.n w.graph + 1) 0;
      ids = Array.make (Array.length w.pos) 0;
    }

  let refresh b w =
    let n = Graph.n w.graph in
    Array.fill b.starts 0 (n + 1) 0;
    (* counting sort keyed by vertex; stable in agent order *)
    Array.iter (fun v -> b.starts.(v + 1) <- b.starts.(v + 1) + 1) w.pos;
    for v = 0 to n - 1 do
      b.starts.(v + 1) <- b.starts.(v + 1) + b.starts.(v)
    done;
    let cursor = Array.copy b.starts in
    Array.iteri
      (fun a v ->
        b.ids.(cursor.(v)) <- a;
        cursor.(v) <- cursor.(v) + 1)
      w.pos

  let count_at b v = b.starts.(v + 1) - b.starts.(v)
  let agents_at b v i = b.ids.(b.starts.(v) + i)

  let iter_at b v f =
    for i = b.starts.(v) to b.starts.(v + 1) - 1 do
      f b.ids.(i)
    done
end
