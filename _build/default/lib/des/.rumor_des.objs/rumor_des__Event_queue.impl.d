lib/des/event_queue.ml: Array Float
