lib/des/event_queue.mli:
