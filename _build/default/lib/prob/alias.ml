type t = {
  prob : float array;  (* prob.(i): probability of keeping i in column i *)
  alias : int array;   (* alias.(i): the other category stored in column i *)
}

let create w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Alias.create: empty weights";
  let total = ref 0.0 in
  Array.iter
    (fun x ->
      if x < 0.0 then invalid_arg "Alias.create: negative weight";
      total := !total +. x)
    w;
  if not (!total > 0.0) then invalid_arg "Alias.create: zero total weight";
  (* Vose's stable construction: scale weights to mean 1, split into
     under-full and over-full columns, pair them off. *)
  let scaled = Array.map (fun x -> x *. float_of_int n /. !total) w in
  let prob = Array.make n 1.0 in
  let alias = Array.init n (fun i -> i) in
  let small = Stack.create () and large = Stack.create () in
  Array.iteri
    (fun i p -> if p < 1.0 then Stack.push i small else Stack.push i large)
    scaled;
  while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
    let s = Stack.pop small and l = Stack.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) -. (1.0 -. scaled.(s));
    if scaled.(l) < 1.0 then Stack.push l small else Stack.push l large
  done;
  (* leftovers are within rounding error of 1 *)
  Stack.iter (fun i -> prob.(i) <- 1.0) small;
  Stack.iter (fun i -> prob.(i) <- 1.0) large;
  { prob; alias }

let of_ints w = create (Array.map float_of_int w)

let sample t g =
  let n = Array.length t.prob in
  let i = Rng.int g n in
  if Rng.float g 1.0 < t.prob.(i) then i else t.alias.(i)

let size t = Array.length t.prob

let probability t i =
  let n = Array.length t.prob in
  if i < 0 || i >= n then invalid_arg "Alias.probability: index out of range";
  (* column i contributes prob.(i)/n to i; every column j with alias j = i
     contributes (1 - prob.(j))/n *)
  let acc = ref (t.prob.(i) /. float_of_int n) in
  Array.iteri
    (fun j a -> if a = i && j <> i then acc := !acc +. ((1.0 -. t.prob.(j)) /. float_of_int n))
    t.alias;
  !acc
