(** Least-squares fits used to check asymptotic shapes on finite-n sweeps.

    The experiment suite verifies claims like [T = Theta(n log n)] or
    [T = O(log n)] by fitting growth models to measured broadcast times over
    a geometric grid of [n] and inspecting the fitted exponent. *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination of the linear fit *)
}

val linear_fit : float array -> float array -> fit
(** [linear_fit xs ys] is the ordinary least-squares line [y = slope*x +
    intercept].  @raise Invalid_argument if lengths differ or fewer than two
    points. *)

val power_fit : float array -> float array -> fit
(** [power_fit ns ts] fits [t = C * n^e] by linear regression on log–log
    scale; [slope] is the empirical growth exponent [e].  Points with
    non-positive coordinates are rejected with [Invalid_argument]. *)

val log_fit : float array -> float array -> fit
(** [log_fit ns ts] fits [t = a * ln n + b]; [slope] is [a].  A process that
    is Theta(log n) has a stable positive [a] and a {!power_fit} exponent
    tending to 0. *)

val pp_fit : Format.formatter -> fit -> unit
