(** Small dense linear algebra: just enough to compute exact random-walk
    quantities (hitting times, stationary equations) on test-sized graphs.

    Matrices are [float array array] in row-major order; all operations are
    O(n^3) or better and intended for n up to a few hundred. *)

val solve : float array array -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting.  [a] and [b] are not modified.
    @raise Invalid_argument on non-square/mismatched input or a (numerically)
    singular matrix. *)

val mat_vec : float array array -> float array -> float array
(** [mat_vec a x] is the product [a x].
    @raise Invalid_argument on dimension mismatch. *)

val residual_norm : float array array -> float array -> float array -> float
(** [residual_norm a x b] is [max_i |(a x - b)_i|], for checking solutions. *)
