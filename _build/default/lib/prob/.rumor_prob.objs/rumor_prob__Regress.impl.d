lib/prob/regress.ml: Array Format
