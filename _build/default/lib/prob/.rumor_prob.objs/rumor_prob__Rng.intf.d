lib/prob/rng.mli:
