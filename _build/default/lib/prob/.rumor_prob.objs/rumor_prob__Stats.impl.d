lib/prob/stats.ml: Array Format
