lib/prob/alias.ml: Array Rng Stack
