lib/prob/dist.mli: Rng
