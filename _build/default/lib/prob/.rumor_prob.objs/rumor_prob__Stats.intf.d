lib/prob/stats.mli: Format
