lib/prob/rng.ml: Array Int64
