lib/prob/alias.mli: Rng
