lib/prob/linalg.ml: Array Float
