lib/prob/regress.mli: Format
