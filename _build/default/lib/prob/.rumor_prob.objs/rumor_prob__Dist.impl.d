lib/prob/dist.ml: Array Printf Rng
