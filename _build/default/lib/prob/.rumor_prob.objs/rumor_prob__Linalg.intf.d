lib/prob/linalg.mli:
