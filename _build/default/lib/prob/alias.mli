(** Walker's alias method: O(1) sampling from a fixed discrete distribution
    after O(n) preprocessing.

    Used to place agents at the stationary distribution (probability of
    vertex [v] proportional to its degree) in a single pass over the agent
    array, which matters for graphs with hundreds of thousands of vertices. *)

type t

val create : float array -> t
(** [create w] preprocesses non-negative weights [w] (not necessarily
    normalised).  @raise Invalid_argument if [w] is empty, contains a
    negative weight, or sums to zero. *)

val of_ints : int array -> t
(** [of_ints w] is [create] on integer weights (e.g. vertex degrees). *)

val sample : t -> Rng.t -> int
(** [sample t g] draws index [i] with probability [w.(i) / sum w]. *)

val size : t -> int
(** Number of categories. *)

val probability : t -> int -> float
(** [probability t i] is the exact normalised probability of category [i],
    reconstructed from the alias tables (useful in tests). *)
