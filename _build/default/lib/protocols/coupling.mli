(** The Section 5 coupling of push and visit-exchange, as executable code.

    The paper's main technical device couples the two protocols through
    shared per-vertex lists of i.i.d. uniform neighbors [w_u(1), w_u(2), ...]:

    - in push, [w_u(i)] is the [i]-th neighbor vertex [u] samples after it
      becomes informed;
    - in visit-exchange, [w_u(i)] is the destination of the [i]-th departure
      from [u] by an agent that found [u] informed (departures ordered by
      round, ties by agent id) — exactly the [p_u(i)] of Section 5.1.

    Because both protocols consume the {e same} lists, their executions are
    coupled on one probability space.  The module also maintains the
    C-counters of Eq. (4) during the coupled visit-exchange run, so the key
    invariant of Lemma 13 — [tau_u <= C_u(t_u)] for every vertex [u], where
    [tau_u] is [u]'s informing round in the coupled push — can be checked
    mechanically on any instance (experiment E9).

    Optionally the full visit history [|Z_v(t)|] is recorded, which allows
    reconstructing the canonical walk of Lemma 14 and verifying that its
    congestion [Q(theta)] equals [C_u(t_u)] by an independent computation. *)

type t
(** Shared randomness: the [w_u] lists (generated lazily, memoized) plus the
    walk randomness for the visit-exchange side. *)

val create : Rumor_prob.Rng.t -> Rumor_graph.Graph.t -> source:int -> t
(** [create rng g ~source].  The generator is split internally; a given
    [rng] seed determines the whole coupled experiment. *)

val graph : t -> Rumor_graph.Graph.t
val source : t -> int

val shared_choice : t -> int -> int -> int
(** [shared_choice c u i] is [w_u(i)] (0-based [i]), generating and
    memoizing it if not yet drawn.  Exposed for tests. *)

(** Outcome of the coupled visit-exchange run. *)
type visitx_outcome = {
  vertex_time : int array;
      (** [t_u]: informing round per vertex; [max_int] if the cap hit first *)
  agent_time : int array;
  c_counter : int array;
      (** [C_u(t_u)] per vertex (Eq. 4); [max_int] where uninformed *)
  parent : int array;
      (** the minimizing neighbor of [S_u] (Lemma 13's path); -1 at the
          source and at uninformed vertices *)
  completed : bool;
  rounds_run : int;
  history : int array array option;
      (** with [~record_history:true]: [history.(t).(v) = |Z_v(t)|] *)
}

val run_visit_exchange :
  ?record_history:bool ->
  t ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  visitx_outcome
(** Runs visit-exchange once, with informed departures consuming the shared
    lists.  May be called once per coupling (the shared lists are consumed
    in a deterministic order, so a second run would be identically
    distributed but is rejected to avoid confusion).
    @raise Invalid_argument if called twice. *)

val run_push : t -> max_rounds:int -> int array
(** Runs the coupled push process: vertex [u], once informed, contacts
    [w_u(1), w_u(2), ...] in successive rounds.  Returns [tau_u] per vertex
    ([max_int] if the cap hit first).  push consumes no randomness beyond
    the shared lists, so this is deterministic given the coupling state. *)

val lemma13_violations : tau:int array -> visitx_outcome -> int list
(** Vertices informed in both coupled runs for which [tau_u > C_u(t_u)] —
    Lemma 13 says this list is always empty. *)

val canonical_walk : visitx_outcome -> int -> int array
(** [canonical_walk o u] reconstructs the Lemma 14 canonical walk
    [theta_0 = source, ..., theta_{t_u} = u] along the [parent] chain with
    stay-put rounds inserted.  @raise Invalid_argument if [u] was not
    informed. *)

val congestion : visitx_outcome -> int array -> int
(** [congestion o walk] is [Q(theta) = sum over t < length-1 of
    |Z_(theta_t)(t)|], computed from the recorded history.  Lemma 14:
    [congestion o (canonical_walk o u) = o.c_counter.(u)].
    @raise Invalid_argument if the history was not recorded. *)

val max_neighborhood_load : visitx_outcome -> Rumor_graph.Graph.t -> int
(** The largest [sum over v in N(u) of |Z_v(t)|] seen over all vertices [u]
    and recorded rounds — the quantity Eq. (3) clamps in t-visit-exchange.
    Lemma 12 says it stays O(d) w.h.p. for d-regular graphs with
    [d = Omega(log n)].  Requires history. *)
