(** A growable population of walk agents with O(1) spawn and kill, shared by
    the protocols whose agent set changes during the run (dynamic
    visit-exchange, and the tweaked processes of Sections 5.2 and 6.2).

    Each live agent has a position and an informed-round mark; dead slots
    are recycled through a free list, so a round over the population costs
    O(live agents + high-water mark). *)

type t

val uninformed : int
(** The informed-round mark of an agent that has not learned the rumor
    ([max_int]). *)

val create : capacity:int -> t

val spawn : t -> int -> int
(** [spawn p vertex] adds a live, uninformed agent at [vertex] and returns
    its slot. *)

val kill : t -> int -> unit
(** [kill p slot] removes the agent in [slot].  The slot may be reused by a
    later {!spawn}. *)

val alive : t -> int
(** Number of live agents. *)

val position : t -> int -> int
val set_position : t -> int -> int -> unit

val informed_at : t -> int -> int
(** The round the agent was informed, or {!uninformed}. *)

val set_informed_at : t -> int -> int -> unit

val iter_alive : t -> (int -> unit) -> unit
(** Iterate live slots in increasing slot order. *)

val find_alive_at : ?prefer_uninformed:bool -> t -> int -> int option
(** [find_alive_at p v] is some live slot whose agent stands on [v], if
    any; with [prefer_uninformed] (default true) an uninformed one is
    returned when available.  O(high-water mark). *)
