type t = {
  mutable pos : int array;
  mutable informed : int array;  (* max_int = uninformed, -1 = dead slot *)
  mutable used : int;
  mutable free : int list;
  mutable alive : int;
}

let uninformed = max_int
let dead = -1

let create ~capacity =
  {
    pos = Array.make (max capacity 1) 0;
    informed = Array.make (max capacity 1) dead;
    used = 0;
    free = [];
    alive = 0;
  }

let spawn p vertex =
  let slot =
    match p.free with
    | s :: rest ->
        p.free <- rest;
        s
    | [] ->
        if p.used = Array.length p.pos then begin
          let capacity = 2 * p.used in
          let pos = Array.make capacity 0 and informed = Array.make capacity dead in
          Array.blit p.pos 0 pos 0 p.used;
          Array.blit p.informed 0 informed 0 p.used;
          p.pos <- pos;
          p.informed <- informed
        end;
        let s = p.used in
        p.used <- p.used + 1;
        s
  in
  p.pos.(slot) <- vertex;
  p.informed.(slot) <- uninformed;
  p.alive <- p.alive + 1;
  slot

let kill p slot =
  if p.informed.(slot) = dead then invalid_arg "Agent_pool.kill: slot already dead";
  p.informed.(slot) <- dead;
  p.free <- slot :: p.free;
  p.alive <- p.alive - 1

let alive p = p.alive

let position p slot = p.pos.(slot)
let set_position p slot v = p.pos.(slot) <- v

let informed_at p slot = p.informed.(slot)

let set_informed_at p slot round =
  if p.informed.(slot) = dead then invalid_arg "Agent_pool.set_informed_at: dead slot";
  p.informed.(slot) <- round

let iter_alive p f =
  for slot = 0 to p.used - 1 do
    if p.informed.(slot) <> dead then f slot
  done

let find_alive_at ?(prefer_uninformed = true) p v =
  let any = ref None in
  let fresh = ref None in
  (try
     for slot = 0 to p.used - 1 do
       if p.informed.(slot) <> dead && p.pos.(slot) = v then begin
         if !any = None then any := Some slot;
         if p.informed.(slot) = uninformed then begin
           fresh := Some slot;
           raise Exit
         end;
         if not prefer_uninformed then raise Exit
       end
     done
   with Exit -> ());
  match (prefer_uninformed, !fresh) with
  | true, Some s -> Some s
  | _ -> !any
