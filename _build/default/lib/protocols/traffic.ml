module Graph = Rumor_graph.Graph

type t = {
  graph : Graph.t;
  counters : int array;  (* indexed by the canonical (u < v) arc index *)
  mutable total : int;
}

let create graph = { graph; counters = Array.make (Graph.arc_count graph) 0; total = 0 }

let slot t u v = Graph.edge_index t.graph (min u v) (max u v)

let record t u v =
  let i = slot t u v in
  t.counters.(i) <- t.counters.(i) + 1;
  t.total <- t.total + 1

let count t u v = t.counters.(slot t u v)

let total t = t.total

let loads t =
  let acc = ref [] in
  Graph.iter_edges t.graph (fun u v -> acc := count t u v :: !acc);
  Array.of_list (List.rev !acc)

type fairness = {
  edges : int;
  mean : float;
  cv : float;
  min_load : int;
  max_load : int;
  max_over_mean : float;
}

let fairness t =
  if t.total = 0 then invalid_arg "Traffic.fairness: no traffic recorded";
  let ls = loads t in
  let stats = Rumor_prob.Stats.create () in
  Array.iter (Rumor_prob.Stats.add_int stats) ls;
  let mean = Rumor_prob.Stats.mean stats in
  let sd = if Array.length ls < 2 then 0.0 else Rumor_prob.Stats.stddev stats in
  let min_load = Array.fold_left min max_int ls in
  let max_load = Array.fold_left max 0 ls in
  {
    edges = Array.length ls;
    mean;
    cv = (if mean > 0.0 then sd /. mean else 0.0);
    min_load;
    max_load;
    max_over_mean = (if mean > 0.0 then float_of_int max_load /. mean else 0.0);
  }

let pp_fairness ppf f =
  Format.fprintf ppf "edges=%d mean=%.2f cv=%.2f min=%d max=%d max/mean=%.2f"
    f.edges f.mean f.cv f.min_load f.max_load f.max_over_mean
