module Graph = Rumor_graph.Graph
module Placement = Rumor_agents.Placement
module Walkers = Rumor_agents.Walkers

type detailed = {
  result : Run_result.t;
  agent_time : int array;
  first_pickup : int option;
}

let run_detailed ?traffic ?lazy_walk rng g ~source ~agents ~max_rounds () =
  let n = Graph.n g in
  if source < 0 || source >= n then
    invalid_arg "Meet_exchange.run: source out of range";
  if max_rounds < 0 then invalid_arg "Meet_exchange.run: negative round cap";
  let w = Walkers.of_spec ?lazy_walk rng g agents in
  let k = Walkers.agent_count w in
  let agent_time = Array.make k max_int in
  let buckets = Walkers.Buckets.create w in
  let contacts = ref 0 in
  let informed = ref 0 in
  (* round 0: agents standing on the source are informed *)
  for a = 0 to k - 1 do
    if Walkers.position w a = source then begin
      agent_time.(a) <- 0;
      incr informed;
      incr contacts
    end
  done;
  let source_active = ref (!informed = 0) in
  let first_pickup = ref (if !informed > 0 then Some 0 else None) in
  let curve = Array.make (max_rounds + 1) 0 in
  curve.(0) <- !informed;
  let t = ref 0 in
  while !informed < k && !t < max_rounds do
    incr t;
    let round = !t in
    (match traffic with
    | None -> Walkers.step w
    | Some tr ->
        Walkers.step_with w (fun _ from to_ ->
            if from <> to_ then Traffic.record tr from to_));
    Walkers.Buckets.refresh buckets w;
    (* source hand-off: the first agents to visit s become informed (all of
       them if simultaneous); they start spreading only next round *)
    if !source_active && Walkers.Buckets.count_at buckets source > 0 then begin
      Walkers.Buckets.iter_at buckets source (fun a ->
          if agent_time.(a) = max_int then begin
            agent_time.(a) <- round;
            incr informed;
            incr contacts
          end);
      source_active := false;
      first_pickup := Some round
    end;
    (* meetings: a vertex holding some agent informed in a previous round
       informs every agent standing on it.  Chains within a round cannot
       occur: an agent informed this round shares its vertex with the
       (< round)-informed agent that informed it, so any third co-located
       agent is informed by that same witness directly. *)
    for v = 0 to n - 1 do
      if Walkers.Buckets.count_at buckets v >= 2 then begin
        let witness = ref false in
        Walkers.Buckets.iter_at buckets v (fun a ->
            if agent_time.(a) < round then witness := true);
        if !witness then
          Walkers.Buckets.iter_at buckets v (fun a ->
              if agent_time.(a) = max_int then begin
                agent_time.(a) <- round;
                incr informed;
                incr contacts
              end)
      end
    done;
    curve.(round) <- !informed
  done;
  let rounds_run = !t in
  let broadcast_time = if !informed = k then Some rounds_run else None in
  let result =
    Run_result.make ~all_agents_informed:broadcast_time ~broadcast_time
      ~rounds_run
      ~informed_curve:(Array.sub curve 0 (rounds_run + 1))
      ~contacts:!contacts ()
  in
  { result; agent_time; first_pickup = !first_pickup }

let run ?traffic ?lazy_walk rng g ~source ~agents ~max_rounds () =
  (run_detailed ?traffic ?lazy_walk rng g ~source ~agents ~max_rounds ()).result

let run_auto ?traffic rng g ~source ~agents ~max_rounds () =
  let lazy_walk = Rumor_graph.Algo.is_bipartite g in
  run ?traffic ~lazy_walk rng g ~source ~agents ~max_rounds ()
