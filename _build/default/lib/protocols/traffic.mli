(** Per-edge traffic accounting, for the paper's bandwidth-fairness claim.

    The introduction attributes the strength of the agent-based protocols to
    "locally fair use of bandwidth: all edges are used with the same
    frequency".  This accumulator counts traversals/contacts per undirected
    edge so experiments can compare the empirical edge-load distribution of
    push-pull against visit-exchange (ablation A4). *)

type t

val create : Rumor_graph.Graph.t -> t
(** One counter per undirected edge, all zero. *)

val record : t -> int -> int -> unit
(** [record t u v] counts one use of edge {u,v} (direction ignored).
    @raise Not_found if [u] and [v] are not adjacent. *)

val count : t -> int -> int -> int
(** Accumulated uses of edge {u,v}. *)

val total : t -> int

val loads : t -> int array
(** Per-edge totals in {!Rumor_graph.Graph.iter_edges} order. *)

(** Dispersion summary of the per-edge load distribution. *)
type fairness = {
  edges : int;
  mean : float;
  cv : float;        (** coefficient of variation: stddev / mean *)
  min_load : int;
  max_load : int;
  max_over_mean : float;
}

val fairness : t -> fairness
(** @raise Invalid_argument if no traffic was recorded. *)

val pp_fairness : Format.formatter -> fairness -> unit
