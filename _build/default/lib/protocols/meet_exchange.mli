(** The meet-exchange protocol (Section 3 of the paper).

    Only agents store information.  Round 0 informs every agent standing on
    the source; if there is none, the {e first} agents to visit the source
    later become informed (all of them, if several arrive simultaneously),
    after which the source stops informing.  In each round, whenever two
    agents meet on a vertex and exactly one of them was informed in a
    previous round, the other becomes informed.  Broadcast completes when
    all {e agents} are informed.

    On bipartite graphs the non-lazy process can fail to complete (walks in
    opposite parity classes never meet); pass [~lazy_walk:true] as the paper
    does, or use {!run_auto} which decides by testing bipartiteness. *)

val run :
  ?traffic:Traffic.t ->
  ?lazy_walk:bool ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** [run rng g ~source ~agents ~max_rounds ()].  The informed curve counts
    informed {e agents}.  Contacts count one per agent→agent transfer plus
    one per source→agent transfer. *)

val run_auto :
  ?traffic:Traffic.t ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  unit ->
  Run_result.t
(** Like {!run}, with [lazy_walk] set automatically to whether the graph is
    bipartite. *)

(** Detailed outcome with per-agent informing rounds. *)
type detailed = {
  result : Run_result.t;
  agent_time : int array;
  first_pickup : int option;  (** round the source handed off the rumor *)
}

val run_detailed :
  ?traffic:Traffic.t ->
  ?lazy_walk:bool ->
  Rumor_prob.Rng.t ->
  Rumor_graph.Graph.t ->
  source:int ->
  agents:Rumor_agents.Placement.spec ->
  max_rounds:int ->
  unit ->
  detailed
