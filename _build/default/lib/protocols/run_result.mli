(** Outcome of a single protocol run.

    Every protocol returns this record so experiments and examples can be
    written generically.  Rounds are counted as in the paper: round 0 is the
    initial state (source informed, agents placed), and the broadcast time
    is the first round at the end of which the protocol's completion
    condition holds. *)

type t = {
  broadcast_time : int option;
      (** first round at which every vertex (push / push-pull /
          visit-exchange) or every agent (meet-exchange) is informed;
          [None] if the run hit its round cap first *)
  rounds_run : int;
      (** number of rounds actually simulated (= broadcast time unless
          capped) *)
  informed_curve : int array;
      (** [informed_curve.(r)] is the number of informed parties after round
          [r], for [r = 0 .. rounds_run].  Parties are vertices, except for
          meet-exchange where they are agents. *)
  contacts : int;
      (** total number of pairwise communications: neighbor calls for the
          rumor-spreading protocols, agent–vertex or agent–agent
          information exchanges for the agent-based ones *)
  all_agents_informed : int option;
      (** for the agent-based protocols, the first round at which every
          agent is informed (what Theorem 23 calls [R_visitx]); [None] for
          agent-free protocols or capped runs *)
}

val completed : t -> bool
val time_exn : t -> int
(** Broadcast time; @raise Invalid_argument on a capped run. *)

val make :
  ?all_agents_informed:int option ->
  broadcast_time:int option ->
  rounds_run:int ->
  informed_curve:int array ->
  contacts:int ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
