type t = {
  broadcast_time : int option;
  rounds_run : int;
  informed_curve : int array;
  contacts : int;
  all_agents_informed : int option;
}

let completed t = t.broadcast_time <> None

let time_exn t =
  match t.broadcast_time with
  | Some r -> r
  | None -> invalid_arg "Run_result.time_exn: run was capped"

let make ?(all_agents_informed = None) ~broadcast_time ~rounds_run ~informed_curve
    ~contacts () =
  { broadcast_time; rounds_run; informed_curve; contacts; all_agents_informed }

let pp ppf t =
  match t.broadcast_time with
  | Some r -> Format.fprintf ppf "broadcast in %d rounds (%d contacts)" r t.contacts
  | None ->
      Format.fprintf ppf "capped after %d rounds (%d contacts)" t.rounds_run
        t.contacts
