lib/protocols/visit_exchange.mli: Rumor_agents Rumor_graph Rumor_prob Run_result Traffic
