lib/protocols/coupling.mli: Rumor_agents Rumor_graph Rumor_prob
