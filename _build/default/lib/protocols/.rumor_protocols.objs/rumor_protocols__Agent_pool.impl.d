lib/protocols/agent_pool.ml: Array
