lib/protocols/async_meet_exchange.ml: Array List Rumor_agents Rumor_des Rumor_graph Rumor_prob
