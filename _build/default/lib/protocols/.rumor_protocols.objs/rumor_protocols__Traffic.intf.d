lib/protocols/traffic.mli: Format Rumor_graph
