lib/protocols/cobra.mli: Rumor_graph Rumor_prob Run_result
