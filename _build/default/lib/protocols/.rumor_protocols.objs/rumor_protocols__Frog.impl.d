lib/protocols/frog.ml: Array Rumor_graph Rumor_prob Run_result
