lib/protocols/tweaked_visit_exchange.ml: Agent_pool Array Rumor_agents Rumor_graph Rumor_prob Run_result
