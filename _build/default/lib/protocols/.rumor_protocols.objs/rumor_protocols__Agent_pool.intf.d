lib/protocols/agent_pool.mli:
