lib/protocols/combined.mli: Rumor_agents Rumor_graph Rumor_prob Run_result
