lib/protocols/push.ml: Array Rumor_graph Rumor_prob Run_result Traffic
