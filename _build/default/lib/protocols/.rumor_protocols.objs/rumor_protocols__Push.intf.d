lib/protocols/push.mli: Rumor_graph Rumor_prob Run_result Traffic
