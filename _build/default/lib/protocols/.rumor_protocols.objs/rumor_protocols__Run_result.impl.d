lib/protocols/run_result.ml: Format
