lib/protocols/combined.ml: Array Rumor_agents Rumor_graph Run_result
