lib/protocols/push_pull.ml: Array Rumor_graph Rumor_prob Run_result Traffic
