lib/protocols/async_push.ml: Array Rumor_des Rumor_graph Rumor_prob
