lib/protocols/frog.mli: Rumor_graph Rumor_prob Run_result
