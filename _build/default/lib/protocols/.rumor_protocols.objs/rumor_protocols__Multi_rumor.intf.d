lib/protocols/multi_rumor.mli: Rumor_agents Rumor_graph Rumor_prob
