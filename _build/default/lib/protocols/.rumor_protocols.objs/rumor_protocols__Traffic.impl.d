lib/protocols/traffic.ml: Array Format List Rumor_graph Rumor_prob
