lib/protocols/async_push.mli: Rumor_graph Rumor_prob
