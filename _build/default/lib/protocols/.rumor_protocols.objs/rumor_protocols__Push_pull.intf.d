lib/protocols/push_pull.mli: Rumor_graph Rumor_prob Run_result Traffic
