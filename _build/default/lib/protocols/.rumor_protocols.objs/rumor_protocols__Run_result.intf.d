lib/protocols/run_result.mli: Format
