lib/protocols/quasi_push.ml: Array Rumor_graph Rumor_prob Run_result
