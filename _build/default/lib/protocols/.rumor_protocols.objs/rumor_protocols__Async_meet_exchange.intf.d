lib/protocols/async_meet_exchange.mli: Rumor_agents Rumor_graph Rumor_prob
