lib/protocols/cobra.ml: Array Rumor_graph Rumor_prob Run_result
