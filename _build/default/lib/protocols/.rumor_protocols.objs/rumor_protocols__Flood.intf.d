lib/protocols/flood.mli: Rumor_graph Run_result
