lib/protocols/flood.ml: Array List Rumor_graph Run_result
