lib/protocols/multi_rumor.ml: Array Rumor_agents Rumor_graph
