lib/protocols/coupling.ml: Array List Rumor_agents Rumor_graph Rumor_prob
