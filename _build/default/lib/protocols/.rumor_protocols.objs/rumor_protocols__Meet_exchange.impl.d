lib/protocols/meet_exchange.ml: Array Rumor_agents Rumor_graph Run_result Traffic
