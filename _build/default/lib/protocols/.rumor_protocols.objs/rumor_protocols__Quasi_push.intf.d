lib/protocols/quasi_push.mli: Rumor_graph Rumor_prob Run_result
