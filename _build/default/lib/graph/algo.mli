(** Graph algorithms used for validation and for calibrating experiments
    (broadcast time is trivially bounded below by source eccentricity). *)

val bfs_distances : Graph.t -> int -> int array
(** [bfs_distances g src] is the array of hop distances from [src];
    unreachable vertices get [-1]. *)

val is_connected : Graph.t -> bool

val component_count : Graph.t -> int

val components : Graph.t -> int array
(** [components g] labels each vertex with a component id in
    [0 .. component_count - 1]; ids are assigned in order of discovery. *)

val eccentricity : Graph.t -> int -> int
(** [eccentricity g src] is the maximum BFS distance from [src].
    @raise Invalid_argument if [g] is disconnected. *)

val diameter : Graph.t -> int
(** Exact diameter by all-pairs BFS; O(n * m), intended for test-sized
    graphs. @raise Invalid_argument if [g] is disconnected. *)

val diameter_lower_bound : Graph.t -> int
(** Double-sweep heuristic: one BFS from vertex 0, a second from the
    farthest vertex found.  Exact on trees; a lower bound in general.
    O(m). *)

val is_bipartite : Graph.t -> bool
(** 2-colorability check; meet-exchange must use lazy walks on bipartite
    graphs (Section 3 of the paper). *)

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, count)] pairs sorted by degree. *)
