(** Textual import/export of graphs.

    The edge-list format is one [u v] pair per line with a leading header
    line [n <vertices>]; lines starting with ['#'] are comments.  DOT export
    is provided for eyeballing small instances with Graphviz. *)

val to_edge_list : Graph.t -> string
(** Serialize to the edge-list format (edges with [u < v], sorted). *)

val of_edge_list : string -> Graph.t
(** Parse the edge-list format. @raise Invalid_argument on malformed
    input. *)

val to_dot : ?name:string -> Graph.t -> string
(** Graphviz [graph { ... }] source. *)

val save : Graph.t -> string -> unit
(** [save g path] writes {!to_edge_list} output to [path]. *)

val load : string -> Graph.t
(** [load path] reads a graph written by {!save}. *)
