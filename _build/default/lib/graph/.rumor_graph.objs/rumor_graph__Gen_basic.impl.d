lib/graph/gen_basic.ml: Graph List
