lib/graph/gen_random.mli: Graph Rumor_prob
