lib/graph/spectral.ml: Algo Array Float Graph Printf
