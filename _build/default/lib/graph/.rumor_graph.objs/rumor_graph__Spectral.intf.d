lib/graph/spectral.mli: Graph
