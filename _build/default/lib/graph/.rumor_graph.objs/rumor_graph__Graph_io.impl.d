lib/graph/graph_io.ml: Buffer Fun Graph List Printf String
