lib/graph/gen_paper.mli: Graph
