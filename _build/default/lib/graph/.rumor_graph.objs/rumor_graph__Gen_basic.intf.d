lib/graph/gen_basic.mli: Graph
