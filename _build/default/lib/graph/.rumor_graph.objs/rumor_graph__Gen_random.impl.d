lib/graph/gen_random.ml: Algo Array Graph Hashtbl List Rumor_prob
