lib/graph/hitting.ml: Algo Array Float Graph List Printf Rumor_prob
