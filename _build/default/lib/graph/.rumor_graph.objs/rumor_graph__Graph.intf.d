lib/graph/graph.mli: Format Rumor_prob
