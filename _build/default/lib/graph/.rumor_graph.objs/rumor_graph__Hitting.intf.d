lib/graph/hitting.mli: Graph
