lib/graph/graph.ml: Array Format Printf Rumor_prob
