lib/graph/gen_paper.ml: Array Graph List
