lib/graph/algo.ml: Array Graph Hashtbl List Option
