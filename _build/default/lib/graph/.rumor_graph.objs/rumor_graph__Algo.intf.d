lib/graph/algo.mli: Graph
