module Linalg = Rumor_prob.Linalg

(* Hitting times to [target] satisfy, for u <> target:
     h(u) = 1 + sum_{v in N(u)} h(v) / deg(u),   h(target) = 0.
   We index the n-1 non-target vertices and solve (I - Q) h = 1 where Q is
   the walk restricted to them.  A lazy walk doubles every hitting time
   (each step is a coin flip times a real move), so it is computed by
   scaling rather than re-solving. *)
let hitting_times ?(lazy_walk = false) g target =
  let n = Graph.n g in
  if target < 0 || target >= n then
    invalid_arg "Hitting.hitting_times: target out of range";
  if not (Algo.is_connected g) then
    invalid_arg "Hitting.hitting_times: disconnected graph";
  if n = 1 then [| 0.0 |]
  else begin
    (* map vertices != target to equation indices *)
    let index = Array.make n (-1) in
    let count = ref 0 in
    for v = 0 to n - 1 do
      if v <> target then begin
        index.(v) <- !count;
        incr count
      end
    done;
    let size = n - 1 in
    let a = Array.make_matrix size size 0.0 in
    let b = Array.make size 1.0 in
    for u = 0 to n - 1 do
      if u <> target then begin
        let i = index.(u) in
        a.(i).(i) <- 1.0;
        let p = 1.0 /. float_of_int (Graph.degree g u) in
        Graph.iter_neighbors g u (fun v ->
            if v <> target then begin
              let j = index.(v) in
              a.(i).(j) <- a.(i).(j) -. p
            end)
      end
    done;
    let h = Linalg.solve a b in
    let scale = if lazy_walk then 2.0 else 1.0 in
    Array.init n (fun v -> if v = target then 0.0 else scale *. h.(index.(v)))
  end

let hitting_time ?lazy_walk g u v = (hitting_times ?lazy_walk g v).(u)

let commute_time g u v = hitting_time g u v +. hitting_time g v u

(* Meeting time of two independent walks: the product chain on ordered
   pairs (a, b), absorbing on the diagonal.  m(a,b) = 1 + average over the
   joint next states of m; for lazy walks each walk independently stays
   with probability 1/2. *)
let max_meeting_time ?(lazy_walk = false) ?(max_n = 40) g =
  let n = Graph.n g in
  if n > max_n then
    invalid_arg
      (Printf.sprintf "Hitting.max_meeting_time: n = %d exceeds max_n = %d" n max_n);
  if not (Algo.is_connected g) then
    invalid_arg "Hitting.max_meeting_time: disconnected graph";
  (* off-diagonal ordered pairs *)
  let index = Array.make (n * n) (-1) in
  let count = ref 0 in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b then begin
        index.((a * n) + b) <- !count;
        incr count
      end
    done
  done;
  let size = !count in
  let m = Array.make_matrix size size 0.0 in
  let rhs = Array.make size 1.0 in
  (* enumerate one walk's moves including the lazy stay *)
  let moves u =
    let deg = float_of_int (Graph.degree g u) in
    let step_prob = if lazy_walk then 0.5 /. deg else 1.0 /. deg in
    let out = ref (if lazy_walk then [ (u, 0.5) ] else []) in
    Graph.iter_neighbors g u (fun v -> out := (v, step_prob) :: !out);
    !out
  in
  for a = 0 to n - 1 do
    let moves_a = moves a in
    for b = 0 to n - 1 do
      if a <> b then begin
        let i = index.((a * n) + b) in
        m.(i).(i) <- m.(i).(i) +. 1.0;
        let moves_b = moves b in
        List.iter
          (fun (a', pa) ->
            List.iter
              (fun (b', pb) ->
                if a' <> b' then begin
                  let j = index.((a' * n) + b') in
                  m.(i).(j) <- m.(i).(j) -. (pa *. pb)
                end)
              moves_b)
          moves_a
      end
    done
  done;
  let sol =
    try Linalg.solve m rhs
    with Invalid_argument _ ->
      invalid_arg
        "Hitting.max_meeting_time: singular system (bipartite parity trap; \
         use ~lazy_walk:true)"
  in
  Array.fold_left Float.max 0.0 sol
