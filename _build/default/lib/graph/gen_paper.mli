(** The separator graph families of Figure 1 of the paper.

    Each generator also returns the landmark vertices the paper's lemmas
    refer to (star centers, tree root, leaf ranges), so experiments can pick
    the exact source vertices the proofs assume. *)

(** Fig 1(b): two stars whose centers are joined by an edge.  push-pull needs
    Omega(n) expected rounds to cross the center–center edge; the agent-based
    protocols cross it in O(log n) (Lemma 3). *)
type double_star = {
  ds_graph : Graph.t;
  ds_center_a : int;
  ds_center_b : int;
  ds_leaf_a : int;  (** a representative leaf of star [a] *)
}

val double_star : leaves_per_star:int -> double_star
(** [double_star ~leaves_per_star] has [2 * (leaves_per_star + 1)] vertices. *)

(** Fig 1(c): balanced binary tree whose leaves are joined into a clique
    ("heavy" because almost all volume sits on the leaf clique).  push is
    O(log n); visit-exchange needs Omega(n) because no agent finds the root
    (Lemma 4). *)
type heavy_tree = {
  ht_graph : Graph.t;
  ht_root : int;
  ht_first_leaf : int;  (** leaves are [ht_first_leaf .. Graph.n - 1] *)
  ht_leaf_count : int;
}

val heavy_binary_tree : levels:int -> heavy_tree
(** [heavy_binary_tree ~levels] has [2^levels - 1] vertices of which
    [2^(levels-1)] are clique leaves.  [levels >= 2]. *)

(** Fig 1(d): two heavy binary trees sharing their root.  Both agent-based
    protocols need Omega(n) (Lemma 8); push remains O(log n). *)
type siamese = {
  si_graph : Graph.t;
  si_root : int;
  si_leaf_left : int;   (** a leaf of the left tree *)
  si_leaf_right : int;  (** a leaf of the right tree *)
}

val siamese_heavy_tree : levels:int -> siamese

(** Fig 1(e): a cycle of [k] stars, each leaf carrying a K_{k+1} clique,
    [k = n^(1/3)].  Nearly regular; visit-exchange beats meet-exchange by a
    Theta(log n) factor (Lemma 9). *)
type csc = {
  csc_graph : Graph.t;
  csc_k : int;
  csc_ring : int array;        (** the cycle vertices c_i *)
  csc_a_clique_vertex : int;   (** a vertex inside clique Q_{0,0} *)
}

val cycle_stars_cliques : k:int -> csc
(** [cycle_stars_cliques ~k] has [k + k^2 + k^3] vertices.  [k >= 3]. *)
