type double_star = {
  ds_graph : Graph.t;
  ds_center_a : int;
  ds_center_b : int;
  ds_leaf_a : int;
}

let double_star ~leaves_per_star =
  if leaves_per_star < 1 then invalid_arg "Gen_paper.double_star: leaves < 1";
  let l = leaves_per_star in
  (* centers 0 and 1; leaves of a: 2 .. l+1; leaves of b: l+2 .. 2l+1 *)
  let edges = ref [ (0, 1) ] in
  for i = 0 to l - 1 do
    edges := (0, 2 + i) :: !edges;
    edges := (1, 2 + l + i) :: !edges
  done;
  let g = Graph.of_edges ~n:(2 + (2 * l)) !edges in
  { ds_graph = g; ds_center_a = 0; ds_center_b = 1; ds_leaf_a = 2 }

type heavy_tree = {
  ht_graph : Graph.t;
  ht_root : int;
  ht_first_leaf : int;
  ht_leaf_count : int;
}

(* Binary-heap numbering: vertex i's children are 2i+1 and 2i+2; with
   [levels] levels the tree has 2^levels - 1 vertices and the leaves are the
   last 2^(levels-1). *)
let heavy_tree_edges ~levels =
  let n = (1 lsl levels) - 1 in
  let first_leaf = (1 lsl (levels - 1)) - 1 in
  let edges = ref [] in
  for i = 1 to n - 1 do
    edges := (i, (i - 1) / 2) :: !edges
  done;
  for a = first_leaf to n - 1 do
    for b = a + 1 to n - 1 do
      edges := (a, b) :: !edges
    done
  done;
  (n, first_leaf, !edges)

let heavy_binary_tree ~levels =
  if levels < 2 then invalid_arg "Gen_paper.heavy_binary_tree: levels < 2";
  let n, first_leaf, edges = heavy_tree_edges ~levels in
  {
    ht_graph = Graph.of_edges ~n edges;
    ht_root = 0;
    ht_first_leaf = first_leaf;
    ht_leaf_count = n - first_leaf;
  }

type siamese = {
  si_graph : Graph.t;
  si_root : int;
  si_leaf_left : int;
  si_leaf_right : int;
}

let siamese_heavy_tree ~levels =
  if levels < 2 then invalid_arg "Gen_paper.siamese_heavy_tree: levels < 2";
  let n1, first_leaf, edges_left = heavy_tree_edges ~levels in
  (* The right copy reuses vertex 0 as the shared root; its vertex i > 0 is
     renamed to n1 + i - 1. *)
  let rename i = if i = 0 then 0 else n1 + i - 1 in
  let edges_right = List.map (fun (u, v) -> (rename u, rename v)) edges_left in
  let n = (2 * n1) - 1 in
  let g = Graph.of_edges ~n (edges_left @ edges_right) in
  {
    si_graph = g;
    si_root = 0;
    si_leaf_left = first_leaf;
    si_leaf_right = rename first_leaf;
  }

type csc = {
  csc_graph : Graph.t;
  csc_k : int;
  csc_ring : int array;
  csc_a_clique_vertex : int;
}

let cycle_stars_cliques ~k =
  if k < 3 then invalid_arg "Gen_paper.cycle_stars_cliques: k < 3";
  (* layout: ring vertices c_i = i (i < k); star leaves l_{i,j} = k + i*k + j;
     clique vertices q_{i,j,t} = k + k^2 + ((i*k + j) * k) + t. *)
  let c i = i in
  let l i j = k + (i * k) + j in
  let q i j t = k + (k * k) + (((i * k) + j) * k) + t in
  let n = k + (k * k) + (k * k * k) in
  let edges = ref [] in
  for i = 0 to k - 1 do
    edges := (c i, c ((i + 1) mod k)) :: !edges;
    for j = 0 to k - 1 do
      edges := (c i, l i j) :: !edges;
      for t = 0 to k - 1 do
        edges := (l i j, q i j t) :: !edges;
        for t' = t + 1 to k - 1 do
          edges := (q i j t, q i j t') :: !edges
        done
      done
    done
  done;
  {
    csc_graph = Graph.of_edges ~n !edges;
    csc_k = k;
    csc_ring = Array.init k c;
    csc_a_clique_vertex = q 0 0 0;
  }
