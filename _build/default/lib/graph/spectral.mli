(** Spectral analysis of the random walk on a graph: spectral gap,
    relaxation time, and conductance estimates.

    The paper's related work bounds rumor-spreading times by expansion
    quantities — conductance (Chierichetti–Giakkoupis–Lattanzi–Panconesi
    [11]: push-pull finishes in O(phi^-1 log n)) and vertex expansion [26].
    This module computes the quantities those bounds need:

    - the spectral gap of the {e lazy} transition matrix (lazy so the
      spectrum is nonnegative and bipartiteness is harmless), by power
      iteration with stationary deflation, exploiting CSR adjacency for
      O(m) per iteration;
    - conductance: exact by exhaustive search on tiny graphs, and the
      standard sweep-cut upper bound from the second eigenvector in
      general. *)

val spectral_gap : ?iterations:int -> Graph.t -> float
(** [spectral_gap g] is [1 - lambda_2] of the lazy walk matrix
    [(I + P) / 2], estimated by [iterations] (default 300) rounds of
    deflated power iteration.  In [0, 1]; larger means faster mixing.
    @raise Invalid_argument on a disconnected graph. *)

val relaxation_time : ?iterations:int -> Graph.t -> float
(** [1 / spectral_gap]. *)

val second_eigenvector : ?iterations:int -> Graph.t -> float array
(** The (approximate) second eigenvector of the lazy walk matrix, the input
    to sweep-cut partitioning. *)

val cut_conductance : Graph.t -> bool array -> float
(** [cut_conductance g side] is [cut(S, V-S) / min(vol S, vol V-S)] for the
    cut indicated by [side].  @raise Invalid_argument if either side is
    empty. *)

val conductance_sweep : ?iterations:int -> Graph.t -> float
(** Upper bound on the graph conductance: the best sweep cut of the second
    eigenvector.  Exact on graphs whose minimum cut is a sweep cut of the
    eigenvector (e.g. the double star, the necklace). *)

val conductance_exact : ?max_n:int -> Graph.t -> float
(** Exact conductance by exhaustive enumeration of all 2^(n-1) cuts; guarded
    by [max_n] (default 20). @raise Invalid_argument on larger graphs. *)

val vertex_expansion_exact : ?max_n:int -> Graph.t -> float
(** Exact vertex expansion [min over nonempty S with |S| <= n/2 of
    |boundary(S)| / |S|], where [boundary(S)] is the set of vertices outside
    [S] adjacent to [S] — the quantity in Giakkoupis's vertex-expansion
    bound for push-pull ([26] in the paper's related work).  Exhaustive over
    all cuts; guarded by [max_n] (default 20). *)

val cheeger_check : Graph.t -> bool
(** Verifies the Cheeger inequalities [gap / 2 <= phi] and
    [phi <= sqrt(2 gap)] hold for the computed estimates (using the sweep
    bound for phi on large graphs, exact on tiny ones); used in tests. *)
