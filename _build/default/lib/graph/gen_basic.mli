(** Deterministic graph families: classic topologies used as substrates and
    baselines throughout the experiments.

    Conventions: generators return simple connected graphs; vertex 0 is
    always a natural "root" (star center, first path vertex, tree root), so
    examples can pick sources without extra lookups. *)

val complete : int -> Graph.t
(** [complete n] is K_n.  @raise Invalid_argument if [n < 1]. *)

val path : int -> Graph.t
(** [path n] is the path on [n] vertices (0 — 1 — ... — n-1). *)

val cycle : int -> Graph.t
(** [cycle n] is the n-cycle; requires [n >= 3]. *)

val star : leaves:int -> Graph.t
(** [star ~leaves] is the star S_leaves of Fig 1(a): vertex 0 is the center,
    vertices 1..leaves are leaves.  [leaves >= 1]. *)

val complete_binary_tree : levels:int -> Graph.t
(** [complete_binary_tree ~levels] has [2^levels - 1] vertices; vertex 0 is
    the root and vertex [i]'s children are [2i+1], [2i+2].  [levels >= 1]. *)

val grid : rows:int -> cols:int -> Graph.t
(** [grid ~rows ~cols] is the rows×cols 4-neighbor grid. *)

val torus : rows:int -> cols:int -> Graph.t
(** [torus ~rows ~cols] is the grid with wrap-around edges; 4-regular when
    [rows >= 3] and [cols >= 3]. *)

val hypercube : dim:int -> Graph.t
(** [hypercube ~dim] is the dim-dimensional Boolean hypercube on [2^dim]
    vertices; [dim]-regular with degree logarithmic in n — the canonical
    sparse graph satisfying Theorem 1's [d = Omega(log n)] hypothesis. *)

val necklace : cliques:int -> clique_size:int -> Graph.t
(** [necklace ~cliques ~clique_size] is a ring of [cliques] cliques K_s with
    one internal edge of each clique replaced by two "port" edges to the
    neighboring cliques.  The result is connected and (s-1)-regular with
    diameter Theta(cliques): a regular graph on which push and
    visit-exchange both take polynomial time (the "path of d-cliques"
    example after Theorem 1).  Requires [cliques >= 3], [clique_size >= 4]. *)

val barbell : clique_size:int -> bridge_len:int -> Graph.t
(** [barbell ~clique_size ~bridge_len] is two K_s joined by a path of
    [bridge_len] extra vertices. *)

val lollipop : clique_size:int -> tail_len:int -> Graph.t
(** [lollipop ~clique_size ~tail_len] is K_s with a path of [tail_len]
    vertices attached. *)
