let to_edge_list g =
  let buf = Buffer.create (16 * Graph.num_edges g) in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.n g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let of_edge_list text =
  let lines = String.split_on_char '\n' text in
  let n = ref (-1) in
  let edges = ref [] in
  let parse_line lineno line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then ()
    else
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [ "n"; count ] ->
          if !n >= 0 then invalid_arg "Graph_io.of_edge_list: duplicate header";
          (match int_of_string_opt count with
          | Some c when c >= 0 -> n := c
          | _ -> invalid_arg "Graph_io.of_edge_list: bad vertex count")
      | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some u, Some v -> edges := (u, v) :: !edges
          | _ ->
              invalid_arg
                (Printf.sprintf "Graph_io.of_edge_list: bad edge on line %d" lineno))
      | _ ->
          invalid_arg
            (Printf.sprintf "Graph_io.of_edge_list: malformed line %d" lineno)
  in
  List.iteri parse_line lines;
  if !n < 0 then invalid_arg "Graph_io.of_edge_list: missing 'n <count>' header";
  Graph.of_edges ~n:!n !edges

let to_dot ?(name = "g") g =
  let buf = Buffer.create (16 * Graph.num_edges g) in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_edge_list g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = really_input_string ic len in
      of_edge_list buf)
