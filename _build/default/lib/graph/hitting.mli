(** Exact random-walk quantities on small graphs, by solving the linear
    systems the walk satisfies.

    These are the ground-truth values the simulation engine is validated
    against (hitting times have textbook closed forms on paths, cycles and
    cliques), and the inputs to the Dimitriou–Nikoletseas–Spirakis bound
    the paper cites ([16]: the meet-exchange broadcast time is at most
    O(log n) times the maximum meeting time).

    Complexities: {!hitting_times} solves one n×n system (O(n^3));
    {!meeting_times} solves a system over ordered vertex pairs (O(n^6)) and
    is guarded to small n. *)

val hitting_times : ?lazy_walk:bool -> Graph.t -> int -> float array
(** [hitting_times g target] is the exact expected number of steps for a
    simple random walk to first reach [target], from each start vertex
    (entry [target] is 0).  [lazy_walk] (default false) computes the
    lazy-walk variant, which is exactly twice the simple one.
    @raise Invalid_argument if [g] is disconnected or [target] is out of
    range. *)

val hitting_time : ?lazy_walk:bool -> Graph.t -> int -> int -> float
(** [hitting_time g u v] is the expected time for a walk started at [u] to
    reach [v]. *)

val commute_time : Graph.t -> int -> int -> float
(** [commute_time g u v] = hitting u->v + hitting v->u.  For a connected
    graph this equals [2 m R_eff(u,v)] (effective resistance), which tests
    exploit on trees where [R_eff] is the path length. *)

val max_meeting_time : ?lazy_walk:bool -> ?max_n:int -> Graph.t -> float
(** [max_meeting_time g] is the exact maximum over start pairs of the
    expected time until two independent walks occupy the same vertex
    (simultaneously).  Solves an (n^2)-variable system, so it is guarded by
    [max_n] (default 40): graphs with more vertices are rejected.
    On bipartite graphs the non-lazy walks may never meet from odd-parity
    pairs; use [lazy_walk:true] there.
    @raise Invalid_argument if [g] is too large, disconnected, or the
    non-lazy system is singular (bipartite parity trap). *)
