(** Plain-text table rendering and CSV export for experiment output.

    Rendering is deliberately dependency-free: aligned monospace columns
    with a rule under the header, suitable for terminals and for pasting
    into EXPERIMENTS.md. *)

type align = Left | Right

type t = {
  title : string;
  claim : string;  (** the paper's claim this table checks, quoted verbatim-ish *)
  header : string list;
  aligns : align list;  (** per column; missing entries default to Right *)
  rows : string list list;
  notes : string list;  (** free-form lines printed after the table *)
}

val make :
  ?aligns:align list ->
  ?notes:string list ->
  title:string ->
  claim:string ->
  header:string list ->
  string list list ->
  t

val render : t -> string
(** Multi-line rendering, ends with a newline. *)

val print : t -> unit
(** [render] to stdout. *)

val to_csv : t -> string
(** Header + rows as RFC-4180-ish CSV (quotes doubled, fields quoted when
    needed). *)

val to_markdown : t -> string
(** GitHub-flavored markdown: a bold title line, the claim as a quote, a
    pipe table with per-column alignment markers, and the notes as a
    bulleted list.  Used to generate EXPERIMENTS.md. *)

(** {1 Cell formatting helpers} *)

val fmt_float : float -> string
(** Compact float: integers render bare, otherwise one decimal. *)

val fmt_mean_pm : Rumor_prob.Stats.summary -> string
(** ["mean ± ci"] style cell using the normal 95% interval. *)

val fmt_opt_time : float -> capped:bool -> string
(** Render a broadcast time, marking capped measurements with [">="]. *)
