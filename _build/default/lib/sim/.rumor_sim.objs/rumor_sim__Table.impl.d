lib/sim/table.ml: Array Buffer Float List Printf Rumor_prob String
