lib/sim/replicate.mli: Protocol Rumor_graph Rumor_prob Rumor_protocols
