lib/sim/sparkline.ml: Array Buffer Float Printf
