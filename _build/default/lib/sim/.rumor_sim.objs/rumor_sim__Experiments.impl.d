lib/sim/experiments.ml: Array Float List Printf Protocol Replicate Rumor_agents Rumor_graph Rumor_prob Rumor_protocols String Table
