lib/sim/graph_spec.ml: List Printf Rumor_graph String
