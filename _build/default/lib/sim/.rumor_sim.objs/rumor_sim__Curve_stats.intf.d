lib/sim/curve_stats.mli: Rumor_protocols
