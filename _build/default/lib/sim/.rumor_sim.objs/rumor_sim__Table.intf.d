lib/sim/table.mli: Rumor_prob
