lib/sim/protocol.mli: Rumor_agents Rumor_graph Rumor_prob Rumor_protocols
