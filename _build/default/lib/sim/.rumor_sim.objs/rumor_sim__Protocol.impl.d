lib/sim/protocol.ml: Rumor_agents Rumor_graph Rumor_protocols
