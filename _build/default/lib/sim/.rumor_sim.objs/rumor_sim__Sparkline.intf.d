lib/sim/sparkline.mli:
