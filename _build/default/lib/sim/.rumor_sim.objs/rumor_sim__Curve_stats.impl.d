lib/sim/curve_stats.ml: Array Float Rumor_protocols
