lib/sim/replicate.ml: Array Protocol Rumor_prob Rumor_protocols
