lib/sim/experiments.mli: Table
