lib/sim/graph_spec.mli: Rumor_graph Rumor_prob
