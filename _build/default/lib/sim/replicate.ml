module Rng = Rumor_prob.Rng
module Stats = Rumor_prob.Stats
module Run_result = Rumor_protocols.Run_result

type measurement = {
  times : float array;
  capped : int;
  summary : Stats.summary;
}

let measure ~seed ~reps f =
  if reps <= 0 then invalid_arg "Replicate.measure: reps <= 0";
  let master = Rng.of_int seed in
  let capped = ref 0 in
  let times =
    Array.init reps (fun _ ->
        let rng = Rng.split master in
        let result = f rng in
        match result.Run_result.broadcast_time with
        | Some t -> float_of_int t
        | None ->
            incr capped;
            float_of_int result.Run_result.rounds_run)
  in
  { times; capped = !capped; summary = Stats.summarize times }

let broadcast_times ~seed ~reps ~graph ~spec ~max_rounds =
  measure ~seed ~reps (fun rng ->
      let g, source = graph rng in
      Protocol.run spec rng g ~source ~max_rounds)

let mean m = m.summary.Stats.mean
let median m = m.summary.Stats.median
let max_time m = m.summary.Stats.max
