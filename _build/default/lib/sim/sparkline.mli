(** One-line charts for informed-count curves in terminal output.

    Renders a numeric series as a fixed-width string of block characters
    (or ASCII with [~ascii:true]), downsampling long series by taking the
    maximum in each bucket so completion spikes are never lost. *)

val render : ?width:int -> ?ascii:bool -> float array -> string
(** [render xs] is a [width]-character (default 60) sparkline of [xs],
    scaled to [0 .. max xs].  An empty series renders as "".  Negative
    values are clamped to 0. *)

val render_ints : ?width:int -> ?ascii:bool -> int array -> string

val with_scale : ?width:int -> ?ascii:bool -> float array -> string
(** Like {!render}, suffixed with [" (max <value>)"]. *)
