(** Replicated measurements with independent, reproducible random streams.

    The paper's statements are "in expectation" and "w.h.p."; their
    finite-sample analogue is the mean/median over independent replications.
    Each replication gets a generator split off a master seed, so a whole
    table is reproducible from one integer. *)

(** A replicated broadcast-time measurement. *)
type measurement = {
  times : float array;
      (** per-replication broadcast times; a capped run contributes its
          round cap (an under-estimate — see [capped]) *)
  capped : int;  (** number of replications that hit the round cap *)
  summary : Rumor_prob.Stats.summary;
}

val measure :
  seed:int ->
  reps:int ->
  (Rumor_prob.Rng.t -> Rumor_protocols.Run_result.t) ->
  measurement
(** [measure ~seed ~reps f] calls [f] with [reps] independent generators.
    @raise Invalid_argument if [reps <= 0]. *)

val broadcast_times :
  seed:int ->
  reps:int ->
  graph:(Rumor_prob.Rng.t -> Rumor_graph.Graph.t * int) ->
  spec:Protocol.spec ->
  max_rounds:int ->
  measurement
(** Convenience wrapper: [graph rng] builds (or re-samples, for random
    models) the graph and source for each replication, then [spec] runs on
    it.  The same split generator drives graph sampling and the protocol, so
    replications are fully independent. *)

val mean : measurement -> float
val median : measurement -> float
val max_time : measurement -> float
