let unicode_levels = [| " "; "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]
let ascii_levels = [| " "; "."; ":"; "-"; "="; "+"; "*"; "#"; "@" |]

let render ?(width = 60) ?(ascii = false) xs =
  let n = Array.length xs in
  if n = 0 || width <= 0 then ""
  else begin
    let levels = if ascii then ascii_levels else unicode_levels in
    let top = float_of_int (Array.length levels - 1) in
    let max_v = Array.fold_left (fun acc x -> Float.max acc x) 0.0 xs in
    let width = min width n in
    let buf = Buffer.create (width * 3) in
    for i = 0 to width - 1 do
      (* bucket [lo, hi): downsample by maximum *)
      let lo = i * n / width and hi = max (((i + 1) * n / width) - 1) (i * n / width) in
      let bucket_max = ref 0.0 in
      for j = lo to hi do
        if xs.(j) > !bucket_max then bucket_max := xs.(j)
      done;
      let level =
        if max_v <= 0.0 then 0
        else
          let scaled = !bucket_max /. max_v *. top in
          let l = int_of_float (Float.round scaled) in
          if l < 0 then 0 else if l > int_of_float top then int_of_float top else l
      in
      Buffer.add_string buf levels.(level)
    done;
    Buffer.contents buf
  end

let render_ints ?width ?ascii xs = render ?width ?ascii (Array.map float_of_int xs)

let with_scale ?width ?ascii xs =
  let max_v = Array.fold_left (fun acc x -> Float.max acc x) 0.0 xs in
  Printf.sprintf "%s (max %g)" (render ?width ?ascii xs) max_v
