let () =
  let ids = match Sys.argv with
    | [| _ |] -> None
    | argv -> Some (Array.to_list (Array.sub argv 1 (Array.length argv - 1)))
  in
  let t0 = Unix.gettimeofday () in
  let results = Rumor_sim.Experiments.run_all ?ids Rumor_sim.Experiments.Quick ~seed:1 in
  List.iter (fun ((e : Rumor_sim.Experiments.t), tables) ->
    Printf.printf "\n### %s: %s [%s] (%.1fs elapsed)\n" e.id e.title e.paper_ref (Unix.gettimeofday () -. t0);
    List.iter Rumor_sim.Table.print tables) results;
  Printf.printf "\ntotal: %.1fs\n" (Unix.gettimeofday () -. t0)
