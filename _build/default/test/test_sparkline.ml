(* Tests for Rumor_sim.Sparkline. *)

module Sparkline = Rumor_sim.Sparkline

let test_empty () =
  Alcotest.(check string) "empty series" "" (Sparkline.render [||])

let test_width () =
  let xs = Array.init 100 float_of_int in
  let line = Sparkline.render ~ascii:true ~width:20 xs in
  Alcotest.(check int) "width respected" 20 (String.length line)

let test_short_series_not_padded () =
  let line = Sparkline.render ~ascii:true ~width:60 [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "one char per point" 3 (String.length line)

let test_ascii_monotone () =
  (* increasing data yields non-decreasing glyph levels *)
  let levels = " .:-=+*#@" in
  let xs = Array.init 9 (fun i -> float_of_int i) in
  let line = Sparkline.render ~ascii:true ~width:9 xs in
  let rank c = String.index levels c in
  for i = 1 to String.length line - 1 do
    if rank line.[i] < rank line.[i - 1] then Alcotest.fail "not monotone"
  done;
  Alcotest.(check char) "max glyph at the top" '@' line.[8]

let test_all_zero () =
  let line = Sparkline.render ~ascii:true [| 0.0; 0.0; 0.0 |] in
  Alcotest.(check string) "flat at zero" "   " line

let test_downsampling_keeps_peak () =
  (* a single spike must survive bucketed downsampling *)
  let xs = Array.make 600 0.0 in
  xs.(300) <- 10.0;
  let line = Sparkline.render ~ascii:true ~width:30 xs in
  Alcotest.(check bool) "peak visible" true (String.contains line '@')

let test_render_ints () =
  let line = Sparkline.render_ints ~ascii:true [| 0; 5; 10 |] in
  Alcotest.(check int) "length" 3 (String.length line);
  Alcotest.(check char) "last at max" '@' line.[2]

let test_with_scale () =
  let text = Sparkline.with_scale ~ascii:true [| 1.0; 4.0 |] in
  let suffix = " (max 4)" in
  let len = String.length text and slen = String.length suffix in
  Alcotest.(check bool) "mentions the max" true
    (len >= slen && String.sub text (len - slen) slen = suffix)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "width" `Quick test_width;
    Alcotest.test_case "short series" `Quick test_short_series_not_padded;
    Alcotest.test_case "monotone levels" `Quick test_ascii_monotone;
    Alcotest.test_case "all zero" `Quick test_all_zero;
    Alcotest.test_case "downsampling keeps peaks" `Quick test_downsampling_keeps_peak;
    Alcotest.test_case "render_ints" `Quick test_render_ints;
    Alcotest.test_case "with_scale" `Quick test_with_scale;
  ]
