(* Tests for Rumor_graph.Hitting against textbook closed forms, plus a
   cross-validation of the simulation engine against the exact values. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Gen = Rumor_graph.Gen_basic
module Hitting = Rumor_graph.Hitting
module Walkers = Rumor_agents.Walkers

let check label expected actual =
  if Float.abs (expected -. actual) > 1e-6 *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: %.6f, want %.6f" label actual expected

let test_path_closed_form () =
  (* on the path 0..L, hitting time from k to 0 is k (2L - k) *)
  let l = 7 in
  let g = Gen.path (l + 1) in
  let h = Hitting.hitting_times g 0 in
  for k = 0 to l do
    check (Printf.sprintf "path h(%d->0)" k) (float_of_int (k * ((2 * l) - k))) h.(k)
  done

let test_cycle_closed_form () =
  (* on the n-cycle, hitting time at distance d is d (n - d) *)
  let n = 9 in
  let g = Gen.cycle n in
  let h = Hitting.hitting_times g 0 in
  for v = 0 to n - 1 do
    let d = min v (n - v) in
    check (Printf.sprintf "cycle h(%d->0)" v) (float_of_int (d * (n - d))) h.(v)
  done

let test_complete_closed_form () =
  (* on K_n every hitting time is n - 1 (geometric with p = 1/(n-1)) *)
  let n = 11 in
  let g = Gen.complete n in
  let h = Hitting.hitting_times g 3 in
  for v = 0 to n - 1 do
    if v <> 3 then check "K_n hitting" (float_of_int (n - 1)) h.(v)
  done

let test_star_closed_form () =
  (* star with l leaves: leaf -> center is 1; center -> leaf is 2l - 1;
     leaf -> other leaf is 2l *)
  let l = 6 in
  let g = Gen.star ~leaves:l in
  check "leaf->center" 1.0 (Hitting.hitting_time g 1 0);
  check "center->leaf" (float_of_int ((2 * l) - 1)) (Hitting.hitting_time g 0 1);
  check "leaf->leaf" (float_of_int (2 * l)) (Hitting.hitting_time g 2 1)

let test_lazy_doubles () =
  let g = Gen.cycle 7 in
  let plain = Hitting.hitting_times g 0 in
  let lazy_h = Hitting.hitting_times ~lazy_walk:true g 0 in
  Array.iteri
    (fun v h -> check (Printf.sprintf "lazy double at %d" v) (2.0 *. h) lazy_h.(v))
    plain

let test_commute_time_on_tree () =
  (* commute(u,v) = 2 m R_eff(u,v); on a tree R_eff is the distance *)
  let g = Gen.complete_binary_tree ~levels:4 in
  let m = float_of_int (Graph.num_edges g) in
  let dist = Rumor_graph.Algo.bfs_distances g 0 in
  List.iter
    (fun v ->
      check
        (Printf.sprintf "commute(0,%d)" v)
        (2.0 *. m *. float_of_int dist.(v))
        (Hitting.commute_time g 0 v))
    [ 1; 4; 10; 14 ]

let test_invalid () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  (try
     ignore (Hitting.hitting_times g 0);
     Alcotest.fail "disconnected accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Hitting.hitting_times (Gen.path 3) 5);
    Alcotest.fail "bad target accepted"
  with Invalid_argument _ -> ()

let test_single_vertex () =
  let g = Graph.of_edges ~n:1 [] in
  Alcotest.(check (array (float 1e-12))) "trivial" [| 0.0 |] (Hitting.hitting_times g 0)

let test_meeting_time_k2_lazy () =
  (* two lazy walks on K2 meet when exactly one of them moves: probability
     1/2 per round, so the meeting time is 2 *)
  let g = Gen.complete 2 in
  check "lazy K2" 2.0 (Hitting.max_meeting_time ~lazy_walk:true g)

let test_meeting_time_k2_nonlazy_singular () =
  let g = Gen.complete 2 in
  try
    ignore (Hitting.max_meeting_time g);
    Alcotest.fail "parity trap not detected"
  with Invalid_argument _ -> ()

let test_meeting_time_k3 () =
  (* two walks on K3 from distinct vertices collide with probability 1/4
     per round: meeting time 4 *)
  let g = Gen.complete 3 in
  check "K3" 4.0 (Hitting.max_meeting_time g)

let test_meeting_time_guard () =
  let g = Gen.cycle 50 in
  try
    ignore (Hitting.max_meeting_time ~max_n:40 g);
    Alcotest.fail "size guard not applied"
  with Invalid_argument _ -> ()

let test_simulation_matches_exact_hitting () =
  (* the walk engine's empirical hitting time must match the solved value;
     this validates Walkers + Rng end to end against ground truth *)
  let g = Gen.complete 8 in
  let exact = Hitting.hitting_time g 0 7 in
  let rng = Rng.of_int 401 in
  let trials = 4000 in
  let total = ref 0 in
  for _ = 1 to trials do
    let w = Walkers.create rng g [| 0 |] in
    let steps = ref 0 in
    while Walkers.position w 0 <> 7 do
      Walkers.step w;
      incr steps
    done;
    total := !total + !steps
  done;
  let empirical = float_of_int !total /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.2f vs exact %.2f" empirical exact)
    true
    (Float.abs (empirical -. exact) < 0.1 *. exact)

let test_simulation_matches_exact_on_path () =
  let g = Gen.path 6 in
  let exact = Hitting.hitting_time g 5 0 in
  let rng = Rng.of_int 402 in
  let trials = 3000 in
  let total = ref 0 in
  for _ = 1 to trials do
    let w = Walkers.create rng g [| 5 |] in
    let steps = ref 0 in
    while Walkers.position w 0 <> 0 do
      Walkers.step w;
      incr steps
    done;
    total := !total + !steps
  done;
  let empirical = float_of_int !total /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.2f vs exact %.2f" empirical exact)
    true
    (Float.abs (empirical -. exact) < 0.1 *. exact)

let test_simulation_matches_exact_meeting () =
  (* two simulated walks on K5 from fixed distinct starts; their empirical
     meeting time must match the solved product-chain value.  On K5 the
     meeting time is the same from every distinct pair by symmetry, so the
     max over pairs equals the pairwise value. *)
  let g = Gen.complete 5 in
  let exact = Hitting.max_meeting_time g in
  let rng = Rng.of_int 403 in
  let trials = 4000 in
  let total = ref 0 in
  for _ = 1 to trials do
    let w = Walkers.create rng g [| 0; 3 |] in
    let steps = ref 0 in
    while Walkers.position w 0 <> Walkers.position w 1 do
      Walkers.step w;
      incr steps
    done;
    total := !total + !steps
  done;
  let empirical = float_of_int !total /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.2f vs exact %.2f" empirical exact)
    true
    (Float.abs (empirical -. exact) < 0.1 *. exact)

let suite =
  [
    Alcotest.test_case "path closed form" `Quick test_path_closed_form;
    Alcotest.test_case "simulation matches exact meeting time" `Quick
      test_simulation_matches_exact_meeting;
    Alcotest.test_case "cycle closed form" `Quick test_cycle_closed_form;
    Alcotest.test_case "complete closed form" `Quick test_complete_closed_form;
    Alcotest.test_case "star closed form" `Quick test_star_closed_form;
    Alcotest.test_case "lazy walk doubles hitting times" `Quick test_lazy_doubles;
    Alcotest.test_case "commute time on a tree" `Quick test_commute_time_on_tree;
    Alcotest.test_case "invalid inputs" `Quick test_invalid;
    Alcotest.test_case "single vertex" `Quick test_single_vertex;
    Alcotest.test_case "meeting time lazy K2" `Quick test_meeting_time_k2_lazy;
    Alcotest.test_case "meeting time non-lazy K2 singular" `Quick
      test_meeting_time_k2_nonlazy_singular;
    Alcotest.test_case "meeting time K3" `Quick test_meeting_time_k3;
    Alcotest.test_case "meeting time size guard" `Quick test_meeting_time_guard;
    Alcotest.test_case "simulation matches exact (clique)" `Quick
      test_simulation_matches_exact_hitting;
    Alcotest.test_case "simulation matches exact (path)" `Quick
      test_simulation_matches_exact_on_path;
  ]
