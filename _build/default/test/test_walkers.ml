(* Tests for Rumor_agents.Walkers. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Gen = Rumor_graph.Gen_basic
module Placement = Rumor_agents.Placement
module Walkers = Rumor_agents.Walkers

let make ?lazy_walk seed g spec =
  Walkers.of_spec ?lazy_walk (Rng.of_int seed) g spec

let test_initial_state () =
  let g = Gen.cycle 6 in
  let w = make 81 g Placement.One_per_vertex in
  Alcotest.(check int) "agent count" 6 (Walkers.agent_count w);
  Alcotest.(check int) "round 0" 0 (Walkers.round w);
  for v = 0 to 5 do
    Alcotest.(check int) "occupancy 1 each" 1 (Walkers.occupancy w v)
  done

let test_moves_follow_edges () =
  let g = Gen.cycle 8 in
  let w = make 82 g Placement.One_per_vertex in
  for _ = 1 to 50 do
    let before = Array.copy (Walkers.positions w) in
    Walkers.step w;
    Array.iteri
      (fun a u ->
        let v = Walkers.position w a in
        if not (Graph.mem_edge g u v) then
          Alcotest.failf "agent %d moved %d -> %d, not an edge" a u v)
      before
  done;
  Alcotest.(check int) "round counter" 50 (Walkers.round w)

let test_occupancy_tracks_positions () =
  let g = Gen.complete 5 in
  let w = make 83 g (Placement.Stationary 20) in
  for _ = 1 to 30 do
    Walkers.step w;
    let counts = Array.make 5 0 in
    Array.iter (fun v -> counts.(v) <- counts.(v) + 1) (Walkers.positions w);
    for v = 0 to 4 do
      Alcotest.(check int) "occupancy matches" counts.(v) (Walkers.occupancy w v)
    done
  done

let test_occupancy_sums_to_agents () =
  let g = Gen.torus ~rows:4 ~cols:4 in
  let w = make 84 g (Placement.Stationary 37) in
  for _ = 1 to 20 do
    Walkers.step w;
    let sum = ref 0 in
    for v = 0 to Graph.n g - 1 do
      sum := !sum + Walkers.occupancy w v
    done;
    Alcotest.(check int) "total occupancy" 37 !sum
  done

let test_lazy_walk_sometimes_stays () =
  let g = Gen.cycle 10 in
  let w = make ~lazy_walk:true 85 g Placement.One_per_vertex in
  let stays = ref 0 and moves = ref 0 in
  for _ = 1 to 100 do
    let before = Array.copy (Walkers.positions w) in
    Walkers.step w;
    Array.iteri
      (fun a u -> if Walkers.position w a = u then incr stays else incr moves)
      before
  done;
  let total = float_of_int (!stays + !moves) in
  let stay_rate = float_of_int !stays /. total in
  Alcotest.(check bool)
    (Printf.sprintf "stay rate %.3f near 0.5" stay_rate)
    true
    (Float.abs (stay_rate -. 0.5) < 0.05)

let test_non_lazy_always_moves () =
  (* on a cycle a non-lazy walk can never stay (no self-loops) *)
  let g = Gen.cycle 10 in
  let w = make 86 g Placement.One_per_vertex in
  for _ = 1 to 50 do
    let before = Array.copy (Walkers.positions w) in
    Walkers.step w;
    Array.iteri
      (fun a u ->
        if Walkers.position w a = u then Alcotest.failf "agent %d stayed put" a)
      before
  done

let test_step_with_reports_moves () =
  let g = Gen.complete 4 in
  let w = make 87 g (Placement.Stationary 10) in
  let before = Array.copy (Walkers.positions w) in
  Walkers.step_with w (fun a from to_ ->
      Alcotest.(check int) "from is previous position" before.(a) from;
      Alcotest.(check int) "to is new position" (Walkers.position w a) to_)

let test_walk_is_uniform_over_neighbors () =
  let g = Gen.star ~leaves:4 in
  (* an agent on the center picks each leaf with probability 1/4 *)
  let w = make 88 g (Placement.All_at (0, 1)) in
  let counts = Array.make 5 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    (* odd rounds: agent is on a leaf; even rounds: back at center *)
    Walkers.step w;
    counts.(Walkers.position w 0) <- counts.(Walkers.position w 0) + 1;
    Walkers.step w
  done;
  for leaf = 1 to 4 do
    let p = float_of_int counts.(leaf) /. float_of_int trials in
    if Float.abs (p -. 0.25) > 0.02 then Alcotest.failf "leaf %d rate %.3f" leaf p
  done

let test_rejects_agent_on_isolated_vertex () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  try
    ignore (Walkers.create (Rng.of_int 89) g [| 2 |]);
    Alcotest.fail "isolated start accepted"
  with Invalid_argument _ -> ()

let test_buckets_group_by_vertex () =
  let g = Gen.complete 6 in
  let w = make 90 g (Placement.Stationary 25) in
  let b = Walkers.Buckets.create w in
  for _ = 1 to 10 do
    Walkers.step w;
    Walkers.Buckets.refresh b w;
    (* bucket counts agree with occupancy, members are at the right vertex,
       and ids within a bucket are increasing *)
    for v = 0 to 5 do
      Alcotest.(check int) "count matches occupancy" (Walkers.occupancy w v)
        (Walkers.Buckets.count_at b v);
      let last = ref (-1) in
      Walkers.Buckets.iter_at b v (fun a ->
          Alcotest.(check int) "member is on vertex" v (Walkers.position w a);
          Alcotest.(check bool) "ids increasing" true (a > !last);
          last := a)
    done
  done

let test_buckets_agents_at_indexing () =
  let g = Gen.path 3 in
  let w = Walkers.create (Rng.of_int 91) g [| 1; 1; 0 |] in
  let b = Walkers.Buckets.create w in
  Walkers.Buckets.refresh b w;
  Alcotest.(check int) "two agents at 1" 2 (Walkers.Buckets.count_at b 1);
  Alcotest.(check int) "first by id" 0 (Walkers.Buckets.agents_at b 1 0);
  Alcotest.(check int) "second by id" 1 (Walkers.Buckets.agents_at b 1 1);
  Alcotest.(check int) "agent at 0" 2 (Walkers.Buckets.agents_at b 0 0);
  Alcotest.(check int) "nobody at 2" 0 (Walkers.Buckets.count_at b 2)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "moves follow edges" `Quick test_moves_follow_edges;
    Alcotest.test_case "occupancy tracks positions" `Quick test_occupancy_tracks_positions;
    Alcotest.test_case "occupancy sums to agent count" `Quick test_occupancy_sums_to_agents;
    Alcotest.test_case "lazy walk stays ~half the time" `Quick test_lazy_walk_sometimes_stays;
    Alcotest.test_case "non-lazy always moves" `Quick test_non_lazy_always_moves;
    Alcotest.test_case "step_with reports moves" `Quick test_step_with_reports_moves;
    Alcotest.test_case "uniform neighbor choice" `Quick test_walk_is_uniform_over_neighbors;
    Alcotest.test_case "rejects isolated start" `Quick test_rejects_agent_on_isolated_vertex;
    Alcotest.test_case "buckets group by vertex" `Quick test_buckets_group_by_vertex;
    Alcotest.test_case "buckets indexing" `Quick test_buckets_agents_at_indexing;
  ]
