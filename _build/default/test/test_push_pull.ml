(* Tests for Rumor_protocols.Push_pull. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Gen = Rumor_graph.Gen_basic
module Algo = Rumor_graph.Algo
module Push_pull = Rumor_protocols.Push_pull
module Run_result = Rumor_protocols.Run_result

let run ?traffic seed g source =
  Push_pull.run ?traffic (Rng.of_int seed) g ~source ~max_rounds:1_000_000 ()

let test_k2_exact () =
  let r = run 121 (Gen.complete 2) 0 in
  Alcotest.(check (option int)) "one round" (Some 1) r.Run_result.broadcast_time

let test_star_from_center_one_round () =
  (* every leaf pulls from the center in round 1 *)
  let g = Gen.star ~leaves:30 in
  for seed = 0 to 9 do
    let r = run (1210 + seed) g 0 in
    Alcotest.(check (option int)) "one round from center" (Some 1)
      r.Run_result.broadcast_time
  done

let test_star_from_leaf_two_rounds () =
  (* Lemma 2(b): at most 2 rounds from a leaf *)
  let g = Gen.star ~leaves:30 in
  for seed = 0 to 9 do
    let r = run (1220 + seed) g 3 in
    Alcotest.(check bool) "at most 2 rounds" true (Run_result.time_exn r <= 2)
  done

let test_contacts_are_n_per_round () =
  let g = Gen.complete 20 in
  let r = run 122 g 0 in
  Alcotest.(check int) "n contacts per round" (20 * r.Run_result.rounds_run)
    r.Run_result.contacts

let test_time_at_least_eccentricity () =
  List.iter
    (fun (g, s) ->
      let r = run 123 g s in
      Alcotest.(check bool) "T >= ecc" true
        (Run_result.time_exn r >= Algo.eccentricity g s))
    [ (Gen.path 25, 0); (Gen.cycle 20, 0); (Gen.complete_binary_tree ~levels:5, 0) ]

let test_curve_monotone () =
  let g = Gen.torus ~rows:6 ~cols:6 in
  let r = run 124 g 0 in
  let curve = r.Run_result.informed_curve in
  Alcotest.(check int) "starts at 1" 1 curve.(0);
  Alcotest.(check int) "ends at n" 36 curve.(Array.length curve - 1);
  for i = 1 to Array.length curve - 1 do
    if curve.(i) < curve.(i - 1) then Alcotest.fail "curve not monotone"
  done

let test_round_cap () =
  let g = Gen.path 200 in
  let r = Push_pull.run (Rng.of_int 125) g ~source:0 ~max_rounds:3 () in
  Alcotest.(check (option int)) "capped" None r.Run_result.broadcast_time;
  Alcotest.(check int) "rounds" 3 r.Run_result.rounds_run

let test_faster_than_push_on_star () =
  (* push-pull needs O(1) rounds on the star, push needs Omega(n log n) *)
  let g = Gen.star ~leaves:128 in
  let pp = Run_result.time_exn (run 126 g 0) in
  let p =
    Run_result.time_exn
      (Rumor_protocols.Push.run (Rng.of_int 126) g ~source:0 ~max_rounds:1_000_000 ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "push-pull %d << push %d" pp p)
    true
    (pp * 20 < p)

let test_no_isolated_exchange_inflation () =
  (* a vertex must not be counted informed twice: final curve value is n *)
  let g = Gen.complete 10 in
  let r = run 127 g 0 in
  let curve = r.Run_result.informed_curve in
  Alcotest.(check int) "exactly n at the end" 10 curve.(Array.length curve - 1)

let prop_completes_and_bounded_by_push =
  QCheck.Test.make ~count:15 ~name:"push-pull completes on random regular graphs"
    QCheck.(int_range 5 30)
    (fun half ->
      let n = 2 * half in
      let rng = Rng.of_int (n * 31) in
      let g = Rumor_graph.Gen_random.random_regular_connected rng ~n ~d:4 in
      let r = Push_pull.run rng g ~source:0 ~max_rounds:100_000 () in
      Run_result.completed r)

let suite =
  [
    Alcotest.test_case "K2 exact" `Quick test_k2_exact;
    Alcotest.test_case "star from center: 1 round" `Quick test_star_from_center_one_round;
    Alcotest.test_case "star from leaf: <= 2 rounds" `Quick test_star_from_leaf_two_rounds;
    Alcotest.test_case "contacts = n per round" `Quick test_contacts_are_n_per_round;
    Alcotest.test_case "time >= eccentricity" `Quick test_time_at_least_eccentricity;
    Alcotest.test_case "curve monotone" `Quick test_curve_monotone;
    Alcotest.test_case "round cap" `Quick test_round_cap;
    Alcotest.test_case "beats push on the star" `Quick test_faster_than_push_on_star;
    Alcotest.test_case "no double counting" `Quick test_no_isolated_exchange_inflation;
    QCheck_alcotest.to_alcotest prop_completes_and_bounded_by_push;
  ]
