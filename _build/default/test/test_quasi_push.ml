(* Tests for Rumor_protocols.Quasi_push. *)

module Rng = Rumor_prob.Rng
module Graph = Rumor_graph.Graph
module Gen = Rumor_graph.Gen_basic
module Algo = Rumor_graph.Algo
module Quasi = Rumor_protocols.Quasi_push
module Push = Rumor_protocols.Push
module Run_result = Rumor_protocols.Run_result

let run ?(max_rounds = 1_000_000) seed g source =
  Quasi.run (Rng.of_int seed) g ~source ~max_rounds ()

let test_k2 () =
  let r = run 411 (Gen.complete 2) 0 in
  Alcotest.(check (option int)) "one round" (Some 1) r.Run_result.broadcast_time

let test_completes () =
  List.iter
    (fun (g, s) ->
      Alcotest.(check bool) "completed" true (Run_result.completed (run 412 g s)))
    [ (Gen.complete 20, 0); (Gen.cycle 15, 3); (Gen.hypercube ~dim:6, 0); (Gen.star ~leaves:10, 0) ]

let test_star_is_exactly_linear () =
  (* the center cycles through its leaves deterministically: exactly l
     rounds after the center is informed, independent of randomness *)
  let l = 20 in
  let g = Gen.star ~leaves:l in
  for seed = 0 to 4 do
    let r = run (4130 + seed) g 0 in
    Alcotest.(check (option int)) "exactly l rounds" (Some l) r.Run_result.broadcast_time
  done

let test_beats_random_push_on_star () =
  (* quasirandomness removes the coupon-collector log factor on the star *)
  let l = 64 in
  let g = Gen.star ~leaves:l in
  let quasi = Run_result.time_exn (run 414 g 0) in
  let random =
    Run_result.time_exn (Push.run (Rng.of_int 414) g ~source:0 ~max_rounds:1_000_000 ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "quasi %d < random %d" quasi random)
    true (quasi < random)

let test_cycle_deterministic_structure () =
  (* on the cycle, informed vertices spread at least one hop per round once
     both directions are engaged; time is Theta(n) and >= eccentricity *)
  let g = Gen.cycle 20 in
  let r = run 415 g 0 in
  Alcotest.(check bool) "at least ecc" true
    (Run_result.time_exn r >= Algo.eccentricity g 0)

let test_curve_monotone () =
  let r = run 416 (Gen.hypercube ~dim:7) 0 in
  let curve = r.Run_result.informed_curve in
  for i = 1 to Array.length curve - 1 do
    if curve.(i) < curve.(i - 1) then Alcotest.fail "curve not monotone"
  done

let test_comparable_to_push_on_regular () =
  (* [19]: quasirandom matches random push on hypercubes and expanders *)
  let rng = Rng.of_int 417 in
  let g = Rumor_graph.Gen_random.random_regular_connected rng ~n:512 ~d:9 in
  let mean f =
    let total = ref 0 in
    for seed = 0 to 9 do
      total := !total + f (4170 + seed)
    done;
    float_of_int !total /. 10.0
  in
  let quasi = mean (fun s -> Run_result.time_exn (run s g 0)) in
  let random =
    mean (fun s ->
        Run_result.time_exn (Push.run (Rng.of_int s) g ~source:0 ~max_rounds:100_000 ()))
  in
  let ratio = quasi /. random in
  Alcotest.(check bool)
    (Printf.sprintf "quasi %.1f vs random %.1f within 50%%" quasi random)
    true
    (ratio > 0.5 && ratio < 1.5)

let test_round_cap () =
  let r = run ~max_rounds:3 418 (Gen.path 100) 0 in
  Alcotest.(check (option int)) "capped" None r.Run_result.broadcast_time

let test_bad_source () =
  try
    ignore (run 419 (Gen.complete 3) 5);
    Alcotest.fail "bad source accepted"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "K2" `Quick test_k2;
    Alcotest.test_case "completes" `Quick test_completes;
    Alcotest.test_case "star takes exactly l rounds" `Quick test_star_is_exactly_linear;
    Alcotest.test_case "beats random push on star" `Quick test_beats_random_push_on_star;
    Alcotest.test_case "cycle structure" `Quick test_cycle_deterministic_structure;
    Alcotest.test_case "curve monotone" `Quick test_curve_monotone;
    Alcotest.test_case "matches push on regular graphs" `Quick
      test_comparable_to_push_on_regular;
    Alcotest.test_case "round cap" `Quick test_round_cap;
    Alcotest.test_case "bad source" `Quick test_bad_source;
  ]
