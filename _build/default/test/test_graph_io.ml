(* Tests for Rumor_graph.Graph_io. *)

module Graph = Rumor_graph.Graph
module Io = Rumor_graph.Graph_io
module Gen = Rumor_graph.Gen_basic

let graphs_equal g1 g2 =
  Graph.n g1 = Graph.n g2
  && Graph.num_edges g1 = Graph.num_edges g2
  &&
  let same = ref true in
  Graph.iter_edges g1 (fun u v -> if not (Graph.mem_edge g2 u v) then same := false);
  !same

let test_roundtrip () =
  List.iter
    (fun g ->
      let g' = Io.of_edge_list (Io.to_edge_list g) in
      Alcotest.(check bool) "roundtrip preserves graph" true (graphs_equal g g'))
    [ Gen.complete 6; Gen.star ~leaves:5; Gen.torus ~rows:3 ~cols:4; Graph.of_edges ~n:3 [] ]

let test_format_shape () =
  let g = Graph.of_edges ~n:3 [ (0, 2) ] in
  Alcotest.(check string) "exact text" "n 3\n0 2\n" (Io.to_edge_list g)

let test_parse_comments_and_blanks () =
  let g = Io.of_edge_list "# a comment\n\nn 4\n0 1\n\n# trailing\n2 3\n" in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 2 (Graph.num_edges g)

let test_parse_errors () =
  let expect_invalid name text =
    try
      ignore (Io.of_edge_list text);
      Alcotest.failf "%s accepted" name
    with Invalid_argument _ -> ()
  in
  expect_invalid "missing header" "0 1\n";
  expect_invalid "duplicate header" "n 2\nn 2\n0 1\n";
  expect_invalid "bad count" "n x\n";
  expect_invalid "bad edge" "n 3\n0 q\n";
  expect_invalid "too many fields" "n 3\n0 1 2\n";
  expect_invalid "edge out of range" "n 2\n0 5\n"

let test_dot_output () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let dot = Io.to_dot ~name:"demo" g in
  Alcotest.(check bool) "header" true (String.length dot > 0 && String.sub dot 0 10 = "graph demo");
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "edge 0--1" true (contains "0 -- 1;" dot);
  Alcotest.(check bool) "edge 1--2" true (contains "1 -- 2;" dot)

let test_save_load () =
  let g = Gen.hypercube ~dim:4 in
  let path = Filename.temp_file "rumor_test" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save g path;
      let g' = Io.load path in
      Alcotest.(check bool) "file roundtrip" true (graphs_equal g g'))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "format shape" `Quick test_format_shape;
    Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blanks;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "dot output" `Quick test_dot_output;
    Alcotest.test_case "save/load" `Quick test_save_load;
  ]
