test/test_gen_paper.ml: Alcotest Array List Printf Rumor_graph
