test/test_async_push.ml: Alcotest List Printf Rumor_graph Rumor_prob Rumor_protocols
