test/test_experiments.ml: Alcotest List Rumor_sim String
