test/test_quasi_push.ml: Alcotest Array List Printf Rumor_graph Rumor_prob Rumor_protocols
