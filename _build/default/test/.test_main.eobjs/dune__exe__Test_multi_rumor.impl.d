test/test_multi_rumor.ml: Alcotest Array Float Printf Rumor_agents Rumor_graph Rumor_prob Rumor_protocols
