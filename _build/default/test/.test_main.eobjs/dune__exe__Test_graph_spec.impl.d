test/test_graph_spec.ml: Alcotest List Rumor_graph Rumor_prob Rumor_sim String
