test/test_async_meet_exchange.ml: Alcotest List Printf Rumor_agents Rumor_graph Rumor_prob Rumor_protocols
