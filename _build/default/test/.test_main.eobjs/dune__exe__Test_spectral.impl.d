test/test_spectral.ml: Alcotest Array Float List Printf Rumor_graph
