test/test_sparkline.ml: Alcotest Array Rumor_sim String
