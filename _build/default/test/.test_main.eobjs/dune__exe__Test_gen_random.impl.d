test/test_gen_random.ml: Alcotest Float List Printf QCheck QCheck_alcotest Rumor_graph Rumor_prob
