test/test_table.ml: Alcotest List Rumor_prob Rumor_sim String
