test/test_gen_basic.ml: Alcotest List Printf Rumor_graph
