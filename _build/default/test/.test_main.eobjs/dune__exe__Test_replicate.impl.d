test/test_replicate.ml: Alcotest Array List Rumor_graph Rumor_prob Rumor_protocols Rumor_sim
