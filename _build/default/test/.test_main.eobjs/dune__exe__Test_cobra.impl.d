test/test_cobra.ml: Alcotest Array List Printf Rumor_graph Rumor_prob Rumor_protocols
