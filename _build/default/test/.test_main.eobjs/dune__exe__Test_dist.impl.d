test/test_dist.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Rumor_prob
