test/test_visit_exchange.ml: Alcotest Array List Printf QCheck QCheck_alcotest Rumor_agents Rumor_graph Rumor_prob Rumor_protocols
