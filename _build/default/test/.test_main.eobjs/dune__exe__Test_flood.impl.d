test/test_flood.ml: Alcotest Array List Printf Rumor_graph Rumor_protocols
