test/test_invariants.ml: Alcotest Array List QCheck QCheck_alcotest Rumor_graph Rumor_prob Rumor_protocols Rumor_sim
