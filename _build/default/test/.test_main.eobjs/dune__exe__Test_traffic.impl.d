test/test_traffic.ml: Alcotest Array Rumor_graph Rumor_protocols
