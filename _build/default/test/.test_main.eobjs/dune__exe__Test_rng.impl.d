test/test_rng.ml: Alcotest Array Float Hashtbl Option Printf Rumor_prob
