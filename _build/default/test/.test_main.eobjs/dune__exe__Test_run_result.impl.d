test/test_run_result.ml: Alcotest Format Rumor_protocols
