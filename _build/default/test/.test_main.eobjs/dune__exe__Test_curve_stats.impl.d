test/test_curve_stats.ml: Alcotest Array Rumor_graph Rumor_prob Rumor_protocols Rumor_sim
