test/test_meet_exchange.ml: Alcotest Array List QCheck QCheck_alcotest Rumor_agents Rumor_graph Rumor_prob Rumor_protocols
