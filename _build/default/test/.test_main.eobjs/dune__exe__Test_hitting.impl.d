test/test_hitting.ml: Alcotest Array Float List Printf Rumor_agents Rumor_graph Rumor_prob
