test/test_push_pull.ml: Alcotest Array List Printf QCheck QCheck_alcotest Rumor_graph Rumor_prob Rumor_protocols
