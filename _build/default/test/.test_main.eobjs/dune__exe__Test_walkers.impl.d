test/test_walkers.ml: Alcotest Array Float Printf Rumor_agents Rumor_graph Rumor_prob
