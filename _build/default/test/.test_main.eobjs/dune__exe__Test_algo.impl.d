test/test_algo.ml: Alcotest Array QCheck QCheck_alcotest Rumor_graph Rumor_prob
